package tablehound

import (
	"os"
	"path/filepath"
	"testing"

	"tablehound/internal/annotate"
	"tablehound/internal/apps"
	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// buildIntegrationSystem generates a lake, persists it through the
// CSV path (exercising ingest), and builds the full system — the
// end-to-end pipeline a user of the library runs.
func buildIntegrationSystem(t *testing.T) (*core.System, *datagen.Lake) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{
		Seed:              99,
		NumDomains:        14,
		DomainSize:        100,
		NumTemplates:      6,
		TablesPerTemplate: 5,
	})
	dir := t.TempDir()
	for _, tbl := range gen.Tables {
		f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	cat, err := lake.LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != len(gen.Tables) {
		t.Fatalf("CSV round trip lost tables: %d vs %d", cat.Len(), len(gen.Tables))
	}
	// Reattach metadata lost by CSV (names/descriptions), as a user
	// with a metadata sidecar would.
	for _, tbl := range gen.Tables {
		got := cat.Table(tbl.ID)
		got.Name = tbl.Name
		got.Description = tbl.Description
		got.Tags = tbl.Tags
	}
	sys, err := core.Build(cat, core.Options{KB: gen.BuildKB(0.8), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestEndToEndDiscoveryPipeline(t *testing.T) {
	sys, gen := buildIntegrationSystem(t)

	// 1. Keyword search reaches topically relevant tables.
	topic := gen.DomainNames[gen.Templates[2].Domains[0]]
	kres, err := sys.KeywordSearch(topic, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kres) == 0 {
		t.Fatalf("keyword search for %q found nothing", topic)
	}

	// 2. Joinable search: a ground-truth same-domain column must
	// surface for a query column.
	qt := gen.Tables[7]
	qc := qt.Columns[0]
	jres, err := sys.JoinableColumns(qc.Values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(jres) == 0 {
		t.Fatal("joinable search found nothing")
	}
	sameDomain := gen.SameDomainColumns(table.ColumnKey(qt.ID, qc.Name))
	foundSame := false
	for _, m := range jres {
		if sameDomain[m.ColumnKey] {
			foundSame = true
			break
		}
	}
	if !foundSame {
		t.Error("joinable results contain no ground-truth same-domain column")
	}

	// 3. Unionable search (all three engines) against ground truth.
	truth := gen.UnionableWith(qt.ID)
	check := func(name string, ids []string) {
		if p := metrics.PrecisionAtK(ids, truth, 3); p < 1.0/3 {
			t.Errorf("%s precision@3 = %v (ids %v)", name, p, ids)
		}
	}
	tres, err := sys.UnionableTables(qt, 3)
	if err != nil {
		t.Fatal(err)
	}
	check("tus", resultIDs(tres))
	sres, err := sys.Santos.Search(qt, 3, union.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	check("santos", resultIDs(sres))
	stres, err := sys.Starmie.SearchTables(qt, 3, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	stIDs := make([]string, len(stres))
	for i, r := range stres {
		stIDs[i] = r.TableID
	}
	check("starmie", stIDs)

	// 4. Navigation reaches a table.
	labels, reached, err := sys.Navigate(topic)
	if err != nil || reached == "" || len(labels) == 0 {
		t.Errorf("navigation failed: %v %q %v", labels, reached, err)
	}

	// 5. Annotation round trip using lake ground truth for training.
	var examples []annotate.Example
	for _, tbl := range gen.Tables[:15] {
		for _, c := range tbl.Columns {
			if d, ok := gen.ColumnDomain[table.ColumnKey(tbl.ID, c.Name)]; ok {
				examples = append(examples, annotate.Example{Values: c.Values, Header: c.Name, Label: gen.DomainNames[d]})
			}
		}
	}
	if err := sys.TrainAnnotator(examples); err != nil {
		t.Fatal(err)
	}
	preds, err := sys.AnnotateTable(gen.Tables[20])
	if err != nil {
		t.Fatal(err)
	}
	hit, total := 0, 0
	for i, c := range gen.Tables[20].Columns {
		d, ok := gen.ColumnDomain[table.ColumnKey(gen.Tables[20].ID, c.Name)]
		if !ok {
			continue
		}
		total++
		if preds[i].Label == gen.DomainNames[d] {
			hit++
		}
	}
	if total > 0 && hit == 0 {
		t.Error("annotator got every ground-truth column wrong")
	}
}

func resultIDs(rs []union.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TableID
	}
	return out
}

func TestCatalogPersistenceWithSystemRebuild(t *testing.T) {
	gen := datagen.Generate(datagen.Config{
		Seed: 123, NumDomains: 8, DomainSize: 60, NumTemplates: 3, TablesPerTemplate: 3,
	})
	cat := lake.NewCatalog()
	for _, tbl := range gen.Tables {
		if err := cat.Add(tbl); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "lake.gob")
	if err := cat.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := lake.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(back, core.Options{SkipOrganization: true})
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Tables[0]
	res, err := sys.UnionableTables(back.Table(q.ID), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("system over reloaded catalog returned nothing")
	}
}

func TestAugmentationOverDiscoveredJoins(t *testing.T) {
	// Cross-module: join engine feeds the augmenter; ridge model
	// validates the discovered feature end to end.
	sys, gen := buildIntegrationSystem(t)
	base := gen.Tables[0]
	keyCol := base.Columns[0]
	// The generated numeric metric correlates with the entity index,
	// so tables of the same template provide real features.
	aug := apps.NewAugmenter(sys.Join, func(id string) *table.Table { return sys.Catalog.Table(id) })
	feats, err := aug.Discover(base, keyCol.Name, "metric_0", 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Skip("no features above coverage threshold in this lake")
	}
	augmented, err := apps.Apply(base, feats)
	if err != nil {
		t.Fatal(err)
	}
	if augmented.NumCols() != base.NumCols()+len(feats) {
		t.Error("augmented table column count wrong")
	}
}

func TestHomographsInGeneratedLake(t *testing.T) {
	gen := datagen.Generate(datagen.Config{
		Seed: 77, NumDomains: 10, DomainSize: 50,
		NumTemplates: 8, TablesPerTemplate: 4, NumHomographs: 4,
		NoiseCols: -1, NumericCols: -1,
	})
	var cols []apps.ValueColumn
	for _, tbl := range gen.Tables {
		for _, c := range tbl.Columns {
			cols = append(cols, apps.ValueColumn{Key: table.ColumnKey(tbl.ID, c.Name), Values: c.Values})
		}
	}
	ranked := apps.DetectHomographs(cols, 8)
	truth := map[string]bool{}
	for _, h := range gen.Homographs {
		truth[h] = true
	}
	found := 0
	for _, r := range ranked {
		if truth[r.Value] {
			found++
		}
	}
	if found == 0 {
		t.Error("no planted homograph in top-8 centrality ranking")
	}
}
