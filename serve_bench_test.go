package tablehound

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"tablehound/internal/server"
)

// BenchmarkServeQPS measures end-to-end serving throughput over
// loopback HTTP — JSON decode, admission, query, JSON encode — with
// the query cache cold (disabled) vs warm (every request a hit). The
// warm/cold p50 gap is the measured value of the serving layer's
// cache; reported as p50-us alongside qps.
func BenchmarkServeQPS(b *testing.B) {
	sys := queryBenchSystem(b)
	qt, qvals := queryBenchInputs(sys)

	run := func(b *testing.B, cacheEntries int) {
		srv := server.New(sys, server.Config{
			CacheEntries: cacheEntries,
			MaxInFlight:  64,
			MaxQueue:     4096,
			QueryTimeout: time.Minute,
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c := server.NewClient(ts.URL)
		ctx := context.Background()

		reqs := []func() error{
			func() error {
				_, err := c.Join(ctx, server.JoinRequest{Values: qvals, K: 10})
				return err
			},
			func() error {
				_, err := c.Union(ctx, server.UnionRequest{TableID: qt.ID, K: 10})
				return err
			},
			func() error {
				_, err := c.Keyword(ctx, server.KeywordRequest{Query: qt.Name, K: 10})
				return err
			},
		}
		// Prime: with the cache enabled this makes every timed request
		// a hit; with it disabled it just warms the HTTP connection.
		for _, r := range reqs {
			if err := r(); err != nil {
				b.Fatal(err)
			}
		}

		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if err := reqs[i%len(reqs)](); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2])/float64(time.Microsecond), "p50-us")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}

	b.Run("cold-cache", func(b *testing.B) { run(b, 0) })
	b.Run("warm-cache", func(b *testing.B) { run(b, 4096) })
}
