// Quickstart: build a discovery system over a small synthetic data
// lake and run every query modality once — keyword search, joinable
// column search, unionable table search, and navigation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
)

func main() {
	// 1. A data lake. Real deployments call lake.LoadCSVDir on a
	// directory of CSV files; here we generate a synthetic lake with
	// known structure.
	gen := datagen.Generate(datagen.Config{
		Seed:              42,
		NumDomains:        14,
		NumTemplates:      6,
		TablesPerTemplate: 4,
	})
	catalog := lake.NewCatalog()
	for _, t := range gen.Tables {
		if err := catalog.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	stats := catalog.Stats()
	fmt.Printf("lake: %d tables, %d columns, %d rows, %d distinct values\n\n",
		stats.Tables, stats.Columns, stats.Rows, stats.DistinctValues)

	// 2. Build the full discovery system: embeddings, keyword index,
	// join indexes (JOSIE + LSH Ensemble), union search (TUS, SANTOS,
	// Starmie), and the navigation hierarchy.
	sys, err := core.Build(catalog, core.Options{KB: gen.BuildKB(0.8)})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Keyword search over table metadata.
	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	fmt.Printf("keyword search %q:\n", topic)
	kres, err := sys.KeywordSearch(topic, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range kres {
		fmt.Printf("  %-12s score=%.2f  %s\n", r.TableID, r.Score, catalog.Table(r.TableID).Name)
	}

	// 4. Joinable column search: which lake columns can extend this
	// table with new attributes?
	query := gen.Tables[0]
	qcol := query.Columns[0]
	fmt.Printf("\njoinable columns for %s.%s:\n", query.ID, qcol.Name)
	jres, err := sys.JoinableColumns(qcol.Values, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range jres {
		fmt.Printf("  %-28s overlap=%d containment=%.2f\n", m.ColumnKey, m.Overlap, m.Containment)
	}

	// 5. Unionable table search: which tables could contribute more
	// rows to this one?
	fmt.Printf("\nunionable tables for %s:\n", query.ID)
	ures, err := sys.UnionableTables(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ures {
		fmt.Printf("  %-12s score=%.3f\n", r.TableID, r.Score)
	}

	// 6. Navigate the lake organization toward a topic.
	labels, reached, err := sys.Navigate(topic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnavigation to %q:\n  path: %v\n  reached: %s\n", topic, labels, reached)
}
