// Data augmentation for machine learning (the ARDA scenario from
// Section 2.7 of the tutorial): a data scientist has a small training
// table and uses joinable-table discovery to pull predictive features
// out of the lake, then verifies that the augmented model beats the
// base model on held-out data.
//
//	go run ./examples/dataaug
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tablehound/internal/apps"
	"tablehound/internal/join"
	"tablehound/internal/table"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n = 300

	// The base training table: entity IDs and a target to predict.
	// The signal that explains the target lives elsewhere in the lake.
	keys := make([]string, n)
	hidden := make([]float64, n)
	target := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("store_%04d", i)
		hidden[i] = rng.NormFloat64() * 8
		target[i] = fmt.Sprintf("%.2f", 3*hidden[i]+rng.NormFloat64())
	}
	base := table.MustNew("sales", "store sales", []*table.Column{
		table.NewColumn("store_id", keys),
		table.NewColumn("revenue", target),
	})

	// The lake: one table holds the hidden driver (foot traffic),
	// others hold noise.
	num := func(vs []float64) []string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = fmt.Sprintf("%.2f", v)
		}
		return out
	}
	lakeTables := []*table.Table{
		table.MustNew("traffic", "store foot traffic", []*table.Column{
			table.NewColumn("store_id", keys),
			table.NewColumn("visitors", num(hidden)),
		}),
	}
	for j := 0; j < 4; j++ {
		junk := make([]float64, n)
		for i := range junk {
			junk[i] = rng.NormFloat64()
		}
		lakeTables = append(lakeTables, table.MustNew(
			fmt.Sprintf("survey%d", j), "unrelated survey",
			[]*table.Column{
				table.NewColumn("store_id", keys),
				table.NewColumn("answers", num(junk)),
			}))
	}

	// Index the lake for joinable search and wire the augmenter.
	b := join.NewBuilder(2)
	byID := map[string]*table.Table{}
	for _, t := range append(lakeTables, base) {
		b.AddTable(t)
		byID[t.ID] = t
	}
	engine, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	augmenter := apps.NewAugmenter(engine, func(id string) *table.Table { return byID[id] })

	// Discover features joinable on store_id that correlate with
	// revenue.
	feats, err := augmenter.Discover(base, "store_id", "revenue", 3, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered features:")
	for _, f := range feats {
		fmt.Printf("  %-24s corr=%.3f coverage=%.2f\n", f.Source, f.Score, f.Coverage)
	}

	// Train/test split and the before/after comparison.
	y, _ := base.Column("revenue").Numbers()
	split := n * 7 / 10
	matrix := func(fs []apps.Feature) [][]float64 {
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, len(fs))
			for j, f := range fs {
				x[i][j] = f.Values[i]
			}
		}
		return x
	}
	baseX := matrix(nil)
	augX := matrix(feats[:1])
	baseModel := apps.FitRidge(baseX[:split], y[:split], 0.01, 300)
	augModel := apps.FitRidge(augX[:split], y[:split], 0.01, 300)
	fmt.Printf("\nheld-out RMSE without augmentation: %.3f\n", baseModel.RMSE(baseX[split:], y[split:]))
	fmt.Printf("held-out RMSE with top feature:     %.3f\n", augModel.RMSE(augX[split:], y[split:]))

	// Materialize the augmented table.
	augmented, err := apps.Apply(base, feats[:1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naugmented table %s: %d columns, %d rows\n",
		augmented.ID, augmented.NumCols(), augmented.NumRows())
}
