// Data lake navigation (Section 2.6 of the tutorial): instead of
// searching, a user explores a topic hierarchy built over the lake,
// and — RONIN-style — over the results of a keyword search. The
// example also prints the navigation-cost comparison against scanning
// a flat table list.
//
//	go run ./examples/navigation
package main

import (
	"fmt"
	"log"
	"strings"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/navigation"
	"tablehound/internal/table"
)

func main() {
	gen := datagen.Generate(datagen.Config{
		Seed:              11,
		NumDomains:        18,
		NumTemplates:      9,
		TablesPerTemplate: 9,
	})
	model := embedding.Train(gen.ColumnContexts(), embedding.Config{Dim: 48, Seed: 11})

	// Build the organization over the whole lake.
	org := navigation.Organize(gen.Tables, model, navigation.Config{Fanout: 4, Seed: 11})
	fmt.Printf("organized %d tables, depth %d\n\n", org.NumTables(), org.Depth())

	// Print the top of the hierarchy.
	fmt.Println("top levels:")
	printTree(org.Root, 0, 2)

	// Navigation cost vs flat scanning.
	total := 0
	for _, t := range gen.Tables {
		total += org.NavigationCost(t.ID)
	}
	mean := float64(total) / float64(len(gen.Tables))
	fmt.Printf("\nmean items examined, hierarchy: %.1f\n", mean)
	fmt.Printf("mean items examined, flat list: %.1f\n", navigation.FlatCost(len(gen.Tables)))

	// Navigate toward a topic.
	topic := gen.DomainNames[gen.Templates[3].Domains[0]]
	labels, reached := org.Navigate(model.ColumnVector([]string{topic}))
	fmt.Printf("\nnavigating toward %q:\n  %s -> table %s\n", topic, strings.Join(labels, " > "), reached)
	if reached == "" {
		log.Fatal("navigation failed")
	}

	// RONIN-style: organize just a result set (here: one template's
	// tables plus a few others) for post-search refinement.
	var results []*table.Table
	results = append(results, gen.Tables[:12]...)
	sub := navigation.OrganizeResults(results, model, navigation.Config{Fanout: 3, Seed: 2})
	fmt.Printf("\nonline organization of %d search results (depth %d):\n", sub.NumTables(), sub.Depth())
	printTree(sub.Root, 0, 2)
}

// printTree prints the hierarchy down to maxDepth.
func printTree(n *navigation.Node, depth, maxDepth int) {
	if depth > maxDepth {
		return
	}
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Printf("%s- [%s]\n", indent, n.TableID)
		return
	}
	fmt.Printf("%s+ %s (%d children)\n", indent, n.Label, len(n.Children))
	for _, c := range n.Children {
		printTree(c, depth+1, maxDepth)
	}
}
