// Knowledge-base completion via table stitching (the Lehmberg & Bizer
// scenario from Section 2.7): many small same-schema web tables each
// hold a couple of facts — too few to support inference individually.
// Stitching them into one table consolidates the evidence and lets a
// partially-populated KB absorb the missing facts.
//
//	go run ./examples/kbcompletion
package main

import (
	"fmt"
	"math/rand"

	"tablehound/internal/apps"
	"tablehound/internal/kb"
	"tablehound/internal/table"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const nFacts = 80

	// The ground-truth relation: capitalOf(city, country).
	cities := make([]string, nFacts)
	countries := make([]string, nFacts)
	for i := range cities {
		cities[i] = fmt.Sprintf("city_%03d", i)
		countries[i] = fmt.Sprintf("country_%03d", i)
	}

	// The KB starts with a third of the facts.
	knowledge := kb.New()
	for i := 0; i < nFacts/3; i++ {
		knowledge.AddFact(cities[i], "capitalOf", countries[i])
	}
	fmt.Printf("KB starts with %d capitalOf facts (of %d true)\n", knowledge.NumFacts(), nFacts)

	// The lake: 50 tiny web-table shards, two facts each.
	var shards []*table.Table
	for s := 0; s < 50; s++ {
		var cs, os []string
		for j := 0; j < 2; j++ {
			i := rng.Intn(nFacts)
			cs = append(cs, cities[i])
			os = append(os, countries[i])
		}
		shards = append(shards, table.MustNew(
			fmt.Sprintf("webtable%02d", s), "capitals",
			[]*table.Column{
				table.NewColumn("city", cs),
				table.NewColumn("country", os),
			}))
	}

	// Completion straight from the shards: each is too small to carry
	// statistical support for the relation.
	direct := apps.CompleteKB(knowledge, shards, "capitalOf", 0.25)
	fmt.Printf("facts recovered from raw shards:      %d\n", direct)

	// Stitch same-schema shards, then complete.
	stitched := apps.Stitch(shards)
	fmt.Printf("stitching merged %d shards into %d table(s)\n", len(shards), len(stitched))
	recovered := apps.CompleteKB(knowledge, stitched, "capitalOf", 0.25)
	fmt.Printf("facts recovered after stitching:      %d\n", recovered)
	fmt.Printf("KB now holds %d capitalOf facts\n", knowledge.PredicateCount("capitalOf"))
}
