// Join-path discovery over an Aurum-style linkage graph (the
// navigation-over-a-linkage-graph mode of Section 2.6): a data
// scientist needs to connect two tables that share no column
// directly, and asks the discovery graph for a chain of joins,
// checking each hop's profile before committing.
//
//	go run ./examples/joinpaths
package main

import (
	"fmt"
	"log"

	"tablehound/internal/aurum"
	"tablehound/internal/profile"
	"tablehound/internal/table"
)

func main() {
	// A small enterprise lake: orders reference customers, customers
	// live in cities, cities carry demographics. Orders and
	// demographics share no column — only a 3-hop join connects them.
	lake := buildLake()
	g, err := aurum.Build(lake, aurum.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery graph: %d columns, %d edges\n\n", g.NumColumns(), g.NumEdges())

	// What is directly joinable with the orders table?
	fmt.Println("neighbors of orders.customer_id:")
	for _, e := range g.Neighbors("orders.customer_id", -1) {
		fmt.Printf("  %-22s %-7s %.2f\n", e.To, e.Kind, e.Weight)
	}

	// Find the join chain from orders to demographics.
	path := g.JoinPath("orders", "demographics", aurum.ContentSim, 4)
	if path == nil {
		log.Fatal("no join path found")
	}
	fmt.Println("\njoin path orders -> demographics:")
	for i, h := range path {
		fmt.Printf("  %d. %s JOIN %s (%s, %.2f)\n", i+1, h.FromColumn, h.ToColumn, h.Kind, h.Weight)
	}

	// Profile the hop targets before running the join.
	profiles := profile.NewIndex(lake)
	fmt.Println("\nprofiles of tables on the path:")
	for _, id := range []string{"orders", "customers", "cities", "demographics"} {
		tp, _ := profiles.Profile(id)
		fmt.Print(tp.FormatSummary())
	}

	// And everything reachable from orders within two hops.
	fmt.Println("related tables within 2 hops of orders:")
	for _, id := range g.RelatedTables("orders", aurum.ContentSim, 2) {
		fmt.Printf("  %s\n", id)
	}
}

func buildLake() []*table.Table {
	n := 50
	custIDs := make([]string, n)
	custCity := make([]string, n)
	for i := range custIDs {
		custIDs[i] = fmt.Sprintf("cust_%03d", i)
		custCity[i] = fmt.Sprintf("city_%02d", i%10)
	}
	orderCust := make([]string, 80)
	orderAmt := make([]string, 80)
	for i := range orderCust {
		orderCust[i] = custIDs[i%30]
		orderAmt[i] = fmt.Sprintf("%d.%02d", 10+i%90, i%100)
	}
	cityNames := make([]string, 10)
	cityState := make([]string, 10)
	for i := range cityNames {
		cityNames[i] = fmt.Sprintf("city_%02d", i)
		cityState[i] = fmt.Sprintf("state_%d", i%4)
	}
	demoCity := make([]string, 10)
	demoPop := make([]string, 10)
	for i := range demoCity {
		demoCity[i] = fmt.Sprintf("city_%02d", i)
		demoPop[i] = fmt.Sprintf("%d", (i+1)*25000)
	}
	return []*table.Table{
		table.MustNew("orders", "orders", []*table.Column{
			table.NewColumn("customer_id", orderCust),
			table.NewColumn("amount", orderAmt),
		}),
		table.MustNew("customers", "customers", []*table.Column{
			table.NewColumn("id", custIDs),
			table.NewColumn("home_city", custCity),
		}),
		table.MustNew("cities", "cities", []*table.Column{
			table.NewColumn("city", cityNames),
			table.NewColumn("state", cityState),
		}),
		table.MustNew("demographics", "demographics", []*table.Column{
			table.NewColumn("city", demoCity),
			table.NewColumn("population", demoPop),
		}),
	}
}
