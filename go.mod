module tablehound

go 1.22
