# Developer entry points. `make check` is the tier-1 verify gate;
# `make race` exercises the concurrent build pipeline under the race
# detector (slower, so it targets the packages that share state).

GO ?= go

.PHONY: check race bench-build

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/hnsw/... ./internal/join/... \
		./internal/union/... ./internal/starmie/... ./internal/table/... \
		./internal/lake/... ./internal/parallel/...

bench-build:
	$(GO) test -run xxx -bench 'BenchmarkSystemBuild' -benchtime 2x .
