# Developer entry points. `make check` is the tier-1 verify gate;
# `make race` exercises the concurrent build pipeline and the
# concurrent query paths under the race detector (slower, so it
# targets the packages that share state).

GO ?= go
COUNT ?= 1

.PHONY: check race bench-build bench-query bench-mem bench-snapshot bench-vec bench-delta serve-smoke snapshot-smoke shard-smoke delta-smoke discover-smoke

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/hnsw/... ./internal/join/... \
		./internal/union/... ./internal/starmie/... ./internal/table/... \
		./internal/lake/... ./internal/parallel/... ./internal/keyword/... \
		./internal/dict/... ./internal/server/... ./internal/qcache/... \
		./internal/obs/... ./internal/snap/... ./internal/invindex/... \
		./internal/lshensemble/... ./internal/router/... ./internal/vecstore/... \
		./internal/discover/... ./internal/josie/...

# End-to-end smoke of the serving layer: real lakeserved process over
# a generated 100-table lake, one query per endpoint via lakectl's
# client mode, graceful SIGTERM shutdown.
serve-smoke:
	bash scripts/serve_smoke.sh

# End-to-end smoke of the snapshot lifecycle: lakectl build writes a
# snapshot, lakeserved serves from it, hot reload via SIGHUP and
# POST /v1/admin/reload, graceful SIGTERM shutdown.
snapshot-smoke:
	bash scripts/snapshot_smoke.sh

# End-to-end smoke of sharded serving: lakectl build -shards 2, two
# shard servers plus the router, queries through the fan-out, graceful
# degradation when a shard dies, recovery, and a rolling reload.
shard-smoke:
	bash scripts/shard_smoke.sh

# End-to-end smoke of incremental maintenance: lakectl add/remove
# build delta snapshots over a frozen base, lakeserved serves the
# chain merge-on-read, POST /v1/admin/compact folds it back into the
# base in place (retiring the delta files), and merged queries are
# bit-identical to the compacted fold.
delta-smoke:
	bash scripts/delta_smoke.sh

# End-to-end smoke of conditional discovery: structured /v1/discover
# queries (predicates, explain, parity with the bare endpoints)
# against a single server, then through the router over a 2-shard
# fleet including degradation with one shard down, graceful drain.
discover-smoke:
	bash scripts/discover_smoke.sh

bench-build:
	$(GO) test -run xxx -bench 'BenchmarkSystemBuild' -benchtime 2x .

# Snapshot save/load over the 500-table lake. The Load/BuildPar ratio
# is the startup speedup of serving from a snapshot.
bench-snapshot:
	$(GO) test -run xxx -bench 'BenchmarkSnapshot|BenchmarkSystemBuildPar' -benchtime 2x .

# Incremental-vs-full cost of adding 10 tables to the 500-table lake:
# BenchmarkDeltaAdd10 (lakectl add) against BenchmarkDeltaFullRebuild
# (the from-scratch build it replaces), plus the merge-on-load cost a
# compaction reclaims. Results recorded in EXPERIMENTS.md.
bench-delta:
	$(GO) test -run xxx -bench 'BenchmarkDelta' -benchtime 2x -timeout 1200s .

# Query-serving benchmarks over the 500-table lake, including the
# loopback-HTTP serving benchmark (cold vs warm cache). Set COUNT=10
# for benchstat-worthy samples: make bench-query COUNT=10 > new.txt
bench-query:
	$(GO) test -run xxx -bench 'BenchmarkQuery|BenchmarkServeQPS' -benchmem -count $(COUNT) .

# Vector-store benchmarks over a 100k-column-vector datagen corpus:
# centroid-pruned exact search (recall@10 + dot-reduction per nprobe),
# the exhaustive baseline, the heap-vs-mmap section reload ratio, and
# the cosine-with-precomputed-norms micro-benchmark. Results are
# recorded in EXPERIMENTS.md.
bench-vec:
	$(GO) test -run xxx -bench 'BenchmarkVsearch|BenchmarkVecBlobLoad' \
		-benchtime 200x -timeout 900s -count $(COUNT) ./internal/vecstore/
	$(GO) test -run xxx -bench 'BenchmarkCosine' -benchmem -count $(COUNT) \
		./internal/embedding/

# Allocation-focused comparison of the string query surfaces against
# their dictionary-encoded (pre-interned query) variants.
bench-mem:
	$(GO) test -run xxx -bench 'BenchmarkQuery(Josie|TUS|Containment)(Dict)?$$' \
		-benchmem -count $(COUNT) .
