# Developer entry points. `make check` is the tier-1 verify gate;
# `make race` exercises the concurrent build pipeline and the
# concurrent query paths under the race detector (slower, so it
# targets the packages that share state).

GO ?= go
COUNT ?= 1

.PHONY: check race bench-build bench-query bench-mem

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/hnsw/... ./internal/join/... \
		./internal/union/... ./internal/starmie/... ./internal/table/... \
		./internal/lake/... ./internal/parallel/... ./internal/keyword/... \
		./internal/dict/...

bench-build:
	$(GO) test -run xxx -bench 'BenchmarkSystemBuild' -benchtime 2x .

# Query-serving benchmarks over the 500-table lake. Set COUNT=10 for
# benchstat-worthy samples: make bench-query COUNT=10 > new.txt
bench-query:
	$(GO) test -run xxx -bench 'BenchmarkQuery' -benchmem -count $(COUNT) .

# Allocation-focused comparison of the string query surfaces against
# their dictionary-encoded (pre-interned query) variants.
bench-mem:
	$(GO) test -run xxx -bench 'BenchmarkQuery(Josie|TUS|Containment)(Dict)?$$' \
		-benchmem -count $(COUNT) .
