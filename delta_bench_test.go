// Incremental-maintenance benchmarks: the cost of indexing 10 new
// tables into a 500-table lake as a delta snapshot (lakectl add),
// against the full from-scratch rebuild the delta replaces. The ratio
// is the headline number recorded in EXPERIMENTS.md — delta builds
// read only the base snapshot's prefix (options, model, dictionary)
// and analyze only the new tables, so the cost tracks the increment,
// not the lake.
package tablehound

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/table"
)

// deltaBench prepares, once per process and outside every timer: the
// 500-table bench lake split into a 490-table base (built and saved to
// disk) plus the 10 held-out tables a delta will add, and the full
// catalog for the rebuild comparator.
var deltaBench struct {
	once     sync.Once
	dir      string
	basePath string
	add      []*table.Table
	fullCat  *lake.Catalog
	opts     core.Options
	err      error
}

func deltaBenchSetup(b *testing.B) {
	deltaBench.once.Do(func() {
		gen := datagen.Generate(datagen.Config{
			Seed:              41,
			NumDomains:        20,
			DomainSize:        80,
			NumTemplates:      10,
			TablesPerTemplate: 50,
		})
		tables := append([]*table.Table(nil), gen.Tables...)
		sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
		baseTables, add := tables[:len(tables)-10], tables[len(tables)-10:]

		opts := core.Options{KB: gen.BuildKB(0.8), Seed: 7, SkipGraph: true}
		cat := lake.NewCatalog()
		if deltaBench.err = cat.AddBatch(baseTables); deltaBench.err != nil {
			return
		}
		sys, err := core.Build(cat, opts)
		if err != nil {
			deltaBench.err = err
			return
		}
		dir, err := os.MkdirTemp("", "tablehound-delta-bench")
		if err != nil {
			deltaBench.err = err
			return
		}
		basePath := filepath.Join(dir, "base.snap")
		if deltaBench.err = sys.SaveFile(basePath); deltaBench.err != nil {
			return
		}
		full := lake.NewCatalog()
		if deltaBench.err = full.AddBatch(tables); deltaBench.err != nil {
			return
		}
		deltaBench.dir = dir
		deltaBench.basePath = basePath
		deltaBench.add = add
		deltaBench.fullCat = full
		deltaBench.opts = opts
	})
	if deltaBench.err != nil {
		b.Fatal(deltaBench.err)
	}
}

// BenchmarkDeltaAdd10 measures `lakectl add` over a 500-table lake:
// read the base snapshot prefix, analyze 10 new tables against the
// frozen model and extended dictionary, and persist the delta file.
// Compare against BenchmarkDeltaFullRebuild — the acceptance target is
// a ≥50x gap.
func BenchmarkDeltaAdd10(b *testing.B) {
	deltaBenchSetup(b)
	out := filepath.Join(deltaBench.dir, "bench.thdb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.BuildDelta(deltaBench.basePath, nil, deltaBench.add, nil, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.SaveFile(out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	os.Remove(out)
}

// BenchmarkDeltaFullRebuild is what the delta replaces: a from-scratch
// build over all 500 tables (same options as the base).
func BenchmarkDeltaFullRebuild(b *testing.B) {
	deltaBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(deltaBench.fullCat, deltaBench.opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaChainLoad measures serving-side merge-on-load: base
// snapshot plus one 10-table delta folded into a queryable system.
// Compare against BenchmarkSnapshotLoad for the merge overhead a
// compaction reclaims.
func BenchmarkDeltaChainLoad(b *testing.B) {
	deltaBenchSetup(b)
	deltaPath := filepath.Join(deltaBench.dir, "chainload.thdb")
	d, err := core.BuildDelta(deltaBench.basePath, nil, deltaBench.add, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.SaveFile(deltaPath); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LoadChainFiles(deltaBench.basePath, []string{deltaPath}, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	os.Remove(deltaPath)
}
