// Command lakeserved builds a discovery system over a lake directory
// once and serves it over HTTP: joinable-column, unionable-table, and
// keyword search as JSON endpoints, plus /healthz, /stats, and a
// Prometheus-format /metrics.
//
// Usage:
//
//	lakeserved -lake DIR [-addr :8080] [-parallel N] [-qparallel N]
//	           [-max-inflight N] [-queue N] [-cache-entries N]
//	           [-timeout D] [-drain D]
//
// The serving layer bounds concurrent query execution (-max-inflight)
// with a bounded wait queue (-queue); beyond both, requests are shed
// with 429. Query results are cached (-cache-entries; 0 disables).
// SIGINT/SIGTERM trigger a graceful shutdown: new requests get 503
// while in-flight queries get up to -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/lake"
	"tablehound/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lakeserved:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("lakeserved", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory of CSV files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", 0, "construction workers (0 = all CPUs)")
	qparallel := fs.Int("qparallel", 0, "per-query workers (0 = all CPUs)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing queries (0 = NumCPU)")
	queue := fs.Int("queue", 0, "max queries waiting for a slot (0 = 4x max-inflight)")
	cacheEntries := fs.Int("cache-entries", 4096, "query-result cache size (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query execution budget")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain deadline")
	timing := fs.Bool("timing", false, "print per-stage build timing to stderr")
	fs.Parse(os.Args[1:])
	if *dir == "" {
		return fmt.Errorf("-lake is required")
	}

	log.SetPrefix("lakeserved: ")
	log.SetFlags(log.LstdFlags)

	start := time.Now()
	cat, err := lake.LoadCSVDirN(*dir, *parallel)
	if err != nil {
		return err
	}
	sys, err := core.Build(cat, core.Options{
		Parallelism:      *parallel,
		QueryParallelism: *qparallel,
	})
	if err != nil {
		return err
	}
	if *timing {
		fmt.Fprint(os.Stderr, sys.BuildStats.Report())
	}
	st := cat.Stats()
	log.Printf("built system over %s: %d tables, %d columns, %d distinct values in %v",
		*dir, st.Tables, st.Columns, st.DistinctValues, time.Since(start).Round(time.Millisecond))

	srv := server.New(sys, server.Config{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *queue,
		QueryTimeout: *timeout,
		DrainTimeout: *drain,
		CacheEntries: *cacheEntries,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("received %v, draining", sig)
	}

	// Drain in-flight queries first (new requests get 503), then close
	// the listener and idle connections.
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}
