// Command lakeserved serves a discovery system over HTTP:
// joinable-column, unionable-table, and keyword search as JSON
// endpoints, plus /healthz, /stats, a Prometheus-format /metrics, and
// an admin reload endpoint.
//
// Usage:
//
//	lakeserved -lake DIR | -snapshot FILE
//	           [-deltas GLOB] [-compact-depth N]
//	           [-manifest FILE -shard N]
//	           [-addr :8080] [-parallel N] [-qparallel N]
//	           [-max-inflight N] [-queue N] [-cache-entries N]
//	           [-timeout D] [-drain D]
//	lakeserved -router -shard-addrs HOST:PORT,HOST:PORT,...
//	           [-addr :8080] [-cache-entries N]
//	           [-shard-timeout D] [-health-interval D]
//
// With -lake the system is built from a directory of CSVs at startup;
// with -snapshot it is loaded from a file written by `lakectl build
// -o`, which starts in a small fraction of the build time. SIGHUP (or
// POST /v1/admin/reload) re-reads the source and atomically swaps the
// new system in without dropping traffic; with both flags given,
// -snapshot is what startup and reloads read.
//
// With -manifest (from `lakectl build -shards N`) the daemon serves
// one shard of a partitioned lake: -shard picks the index, -snapshot
// defaults to that shard's entry in the manifest, and /healthz reports
// the shard identity so a router can verify the partitioning.
//
// With -deltas (a glob or comma list of `lakectl add`/`lakectl
// remove` delta files) the daemon serves the base snapshot with the
// delta chain merged on top; the spec is re-expanded on every reload,
// so `lakectl add` + SIGHUP makes new tables searchable with no
// restart and no rebuild. POST /v1/admin/compact folds the chain into
// the base snapshot in place, retires the consumed delta files as
// *.applied, and hot-swaps the merged system without purging the query
// cache (the fold is bit-identical). -compact-depth N does the same
// automatically in the background whenever a (re)load leaves the chain
// N deltas deep.
//
// With -router the daemon serves no lake itself: it fans every query
// across the shard servers in -shard-addrs (one per shard, in shard
// order), merges their top-k answers exactly, and degrades to partial
// 200 responses when shards fail. SIGHUP (or POST /v1/admin/reload)
// rolls a reload across the shards one at a time.
//
// The serving layer bounds concurrent query execution (-max-inflight)
// with a bounded FIFO wait queue (-queue); beyond both, requests are
// shed with 429. Query results are cached (-cache-entries; 0
// disables). SIGINT/SIGTERM trigger a graceful shutdown: new requests
// get 503 while in-flight queries get up to -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/lake"
	"tablehound/internal/router"
	"tablehound/internal/server"
	"tablehound/internal/snap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lakeserved:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("lakeserved", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory of CSV files")
	snapPath := fs.String("snapshot", "", "system snapshot file from `lakectl build -o` (replaces -lake)")
	deltaSpec := fs.String("deltas", "", "comma-separated delta snapshots (globs allowed) applied on top of -snapshot; re-expanded on every reload")
	compactDepth := fs.Int("compact-depth", 0, "fold the delta chain into the base in the background when it reaches this depth (0 = manual via POST /v1/admin/compact)")
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", 0, "construction workers (0 = all CPUs)")
	qparallel := fs.Int("qparallel", 0, "per-query workers (0 = all CPUs)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing queries (0 = NumCPU)")
	queue := fs.Int("queue", 0, "max queries waiting for a slot (0 = 4x max-inflight)")
	cacheEntries := fs.Int("cache-entries", 4096, "query-result cache size (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query execution budget")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain deadline")
	timing := fs.Bool("timing", false, "print per-stage build timing to stderr")
	vecMode := fs.String("vec-mode", "auto", "snapshot vector materialization: auto | heap | mmap (zero-copy)")
	nprobe := fs.Int("nprobe", 0, "clusters visited by pruned exact vector search (0 = all = exhaustive-identical)")
	centroids := fs.Int("centroids", 0, "coarse-quantizer clusters when building from -lake (0 = auto, -1 = off)")
	fixedPlanner := fs.Bool("fixed-planner", false, "pin /v1/discover to the fixed cheap-to-expensive prefilter order instead of cost-based reordering (results identical; for A/B-ing stage costs)")
	routerMode := fs.Bool("router", false, "route queries across shard servers instead of serving a lake")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard server addresses (router mode)")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "per-shard sub-request budget (router mode)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "shard health polling period (router mode)")
	manifestPath := fs.String("manifest", "", "shard manifest from `lakectl build -shards` (serve one shard)")
	shardIdx := fs.Int("shard", -1, "shard index to serve from -manifest")
	fs.Parse(os.Args[1:])

	log.SetPrefix("lakeserved: ")
	log.SetFlags(log.LstdFlags)

	if *routerMode {
		addrs := strings.Split(*shardAddrs, ",")
		out := addrs[:0]
		for _, a := range addrs {
			if a = strings.TrimSpace(a); a != "" {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			return fmt.Errorf("-router requires -shard-addrs")
		}
		return runRouter(*addr, out, *shardTimeout, *healthInterval, *cacheEntries, *drain)
	}

	// Shard mode: resolve identity (and, by default, the snapshot path)
	// from the manifest.
	var shardIdent *server.ShardIdentity
	if *manifestPath != "" {
		man, err := snap.ReadManifestFile(*manifestPath)
		if err != nil {
			return err
		}
		if *shardIdx < 0 || *shardIdx >= len(man.Shards) {
			return fmt.Errorf("-manifest has %d shards; -shard must be in [0, %d)", len(man.Shards), len(man.Shards))
		}
		shardIdent = &server.ShardIdentity{
			Index:        *shardIdx,
			Count:        len(man.Shards),
			ManifestHash: man.Hash(),
		}
		if *snapPath == "" {
			*snapPath = filepath.Join(filepath.Dir(*manifestPath), man.Shards[*shardIdx].Snapshot)
		}
		log.Printf("serving shard %d/%d of manifest %s (hash %016x)",
			*shardIdx, len(man.Shards), *manifestPath, man.Hash())
	} else if *shardIdx >= 0 {
		return fmt.Errorf("-shard requires -manifest")
	}
	if *dir == "" && *snapPath == "" {
		return fmt.Errorf("one of -lake, -snapshot, or -manifest is required")
	}

	if *deltaSpec != "" && *snapPath == "" {
		return fmt.Errorf("-deltas requires -snapshot (deltas chain onto a base snapshot)")
	}

	opts := func() core.Options {
		return core.Options{
			Parallelism:      *parallel,
			QueryParallelism: *qparallel,
			VecMode:          *vecMode,
			VecNProbe:        *nprobe,
			VecCentroids:     *centroids,
		}
	}

	// load produces a fresh system from the configured source; it backs
	// both startup and every subsequent reload. The -deltas spec is
	// re-expanded on every call, so a reload picks up delta files that
	// appeared (lakectl add) or were retired (compaction) since the last
	// load — new tables become searchable with no restart and no
	// rebuild.
	load := func() (*core.System, error) {
		if *snapPath != "" {
			chain, err := core.ExpandDeltas(*deltaSpec)
			if err != nil {
				return nil, err
			}
			sys, err := core.LoadChainFiles(*snapPath, chain, opts())
			if err != nil {
				return nil, err
			}
			// Deltas already folded into the base — a compaction was
			// interrupted (or a retirement rename failed) after the new
			// base was installed. The loader skipped them; finish the
			// retirement here so later reloads stop seeing them.
			for _, p := range sys.Lineage.Folded {
				if rerr := os.Rename(p, p+".applied"); rerr != nil {
					log.Printf("retiring already-compacted delta %s: %v (serving is unaffected)", p, rerr)
				} else {
					log.Printf("retired already-compacted delta %s (left over from an interrupted compaction)", p)
				}
			}
			return sys, nil
		}
		cat, err := lake.LoadCSVDirN(*dir, *parallel)
		if err != nil {
			return nil, err
		}
		return core.Build(cat, opts())
	}

	start := time.Now()
	sys, err := load()
	if err != nil {
		return err
	}
	if *timing {
		fmt.Fprint(os.Stderr, sys.BuildStats.Report())
	}
	st := sys.Catalog.Stats()
	source := *snapPath
	verb := "loaded snapshot"
	if source == "" {
		source, verb = *dir, "built system over"
	}
	log.Printf("%s %s: %d tables, %d columns, %d distinct values in %v",
		verb, source, st.Tables, st.Columns, st.DistinctValues, time.Since(start).Round(time.Millisecond))
	if depth := sys.Lineage.Depth(); depth > 0 {
		log.Printf("serving a delta chain of depth %d (%d tombstones)",
			depth, sys.Lineage.TombstoneCount())
	}

	srv := server.New(sys, server.Config{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *queue,
		QueryTimeout: *timeout,
		DrainTimeout: *drain,
		CacheEntries: *cacheEntries,
		Shard:        shardIdent,

		FixedOrderPlanner: *fixedPlanner,
	})
	srv.SetReloader(load)

	// Compaction folds the serving delta chain into the base snapshot
	// in place (CompactFiles writes through a temp file + rename, so a
	// concurrent load of the old base never sees a torn file), retires
	// the consumed delta files as *.applied so later reloads do not
	// re-apply them, and hands the merged system to the server to swap
	// in. The merge has the same data generation as the chain it folds,
	// so the swap keeps the query cache warm. A crash or rename failure
	// between the base install and delta retirement is recoverable:
	// loaders recognize deltas already folded into the base (their
	// chain ends at the base's generation), skip them, and the load
	// path above finishes the retirement.
	if *snapPath != "" {
		srv.SetCompactor(func() (*core.System, error) {
			chain, err := core.ExpandDeltas(*deltaSpec)
			if err != nil {
				return nil, err
			}
			if len(chain) == 0 {
				return nil, fmt.Errorf("compact: no delta files to fold")
			}
			t0 := time.Now()
			merged, err := core.CompactFiles(*snapPath, chain, *snapPath, opts())
			if err != nil {
				return nil, err
			}
			for _, d := range chain {
				if err := os.Rename(d, d+".applied"); err != nil {
					log.Printf("compact: retiring %s: %v", d, err)
				}
			}
			log.Printf("compacted %d deltas into %s (%d tables) in %v",
				len(chain), *snapPath, merged.Catalog.Stats().Tables, time.Since(t0).Round(time.Millisecond))
			return merged, nil
		})
	}

	// maybeCompact starts a background compaction when the serving
	// chain is at least -compact-depth deep. srv.Compact serializes on
	// the server's reload mutex; the flag keeps a slow compaction from
	// stacking goroutines behind it. Failure is logged and the chain
	// keeps serving — merge-on-read is correct at any depth, compaction
	// only reclaims per-query merge overhead.
	var compacting atomic.Bool
	maybeCompact := func(s *core.System) {
		if *compactDepth <= 0 || s.Lineage.Depth() < *compactDepth {
			return
		}
		if !compacting.CompareAndSwap(false, true) {
			return
		}
		go func() {
			defer compacting.Store(false)
			if _, err := srv.Compact(); err != nil {
				log.Printf("background compaction failed (still serving the delta chain): %v", err)
			}
		}()
	}
	maybeCompact(sys)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			return err
		case sig := <-sigCh:
			if sig != syscall.SIGHUP {
				log.Printf("received %v, draining", sig)
				break loop
			}
			// SIGHUP: reload off the serving path and swap atomically.
			t0 := time.Now()
			newSys, err := srv.Reload()
			if err != nil {
				log.Printf("reload failed (still serving the old snapshot): %v", err)
				continue
			}
			ns := newSys.Catalog.Stats()
			log.Printf("reloaded: %d tables, %d columns, delta depth %d in %v",
				ns.Tables, ns.Columns, newSys.Lineage.Depth(), time.Since(t0).Round(time.Millisecond))
			maybeCompact(newSys)
		}
	}

	// Drain in-flight queries first (new requests get 503), then close
	// the listener and idle connections.
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}

// runRouter serves the scatter-gather tier: no lake of its own, just a
// fan-out over the shard servers with exact top-k merging and graceful
// degradation. SIGHUP rolls a reload across the shards.
func runRouter(addr string, shardAddrs []string, shardTimeout, healthInterval time.Duration, cacheEntries int, drain time.Duration) error {
	rt, err := router.New(router.Config{
		Addrs:          shardAddrs,
		ShardTimeout:   shardTimeout,
		HealthInterval: healthInterval,
		CacheEntries:   cacheEntries,
	})
	if err != nil {
		return err
	}
	up := rt.CheckShards(context.Background())
	log.Printf("routing over %d shards (%d up)", len(shardAddrs), up)
	rt.Start()
	defer rt.Stop()

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			return err
		case sig := <-sigCh:
			if sig != syscall.SIGHUP {
				log.Printf("received %v, draining", sig)
				break loop
			}
			t0 := time.Now()
			res := rt.ReloadAll(context.Background())
			log.Printf("rolling reload: %s shards ok in %v", res.ShardsOK, time.Since(t0).Round(time.Millisecond))
			for _, sh := range res.Shards {
				if !sh.OK {
					log.Printf("  shard %d reload failed: %s", sh.Shard, sh.Error)
				}
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}
