package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"tablehound/internal/discover"
	"tablehound/internal/server"
)

// cmdDiscover runs a conditional-discovery query: a relational seed
// (a lake table or a bare value column) plus predicates over the
// result tables, compiled into a staged plan (cheap prefilters →
// sketch candidates → exact verification).
//
// Offline mode builds or loads the system locally (-lake, or
// -snapshot/-deltas); client mode (-addr) queries a running
// lakeserved or lakerouter.
func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	addr := fs.String("addr", "", "running lakeserved/lakerouter address (replaces -lake/-snapshot)")
	dir := fs.String("lake", "", "lake directory")
	tableID := fs.String("table", "", "seed table ID")
	values := fs.String("values", "", "comma-separated seed column values (join relation)")
	column := fs.String("column", "", "seed-table column feeding the join side (default: first usable)")
	relation := fs.String("relation", "any", "relation: join | union | any")
	mode := fs.String("mode", "overlap", "join scoring mode: overlap | containment")
	method := fs.String("method", "tus", "union method: tus | santos | starmie | d3l")
	k := fs.Int("k", 10, "results")
	threshold := fs.Float64("threshold", 0.5, "containment threshold (join -mode containment)")
	explain := fs.Bool("explain", false, "print the per-stage explanation block")
	colNames := fs.String("col-names", "", "predicate: comma-separated column names the result must have")
	colTypes := fs.String("col-types", "", "predicate: comma-separated column types the result must have (bool,int,float,date,string)")
	minRows := fs.Int("min-rows", 0, "predicate: minimum row count")
	maxRows := fs.Int("max-rows", 0, "predicate: maximum row count (0 = unbounded)")
	minCols := fs.Int("min-cols", 0, "predicate: minimum column count")
	maxCols := fs.Int("max-cols", 0, "predicate: maximum column count (0 = unbounded)")
	keywords := fs.String("keywords", "", "predicate: metadata keywords (all must match)")
	predValues := fs.String("pred-values", "", "predicate: comma-separated cell values the result must contain")
	bf := addBuildFlags(fs)
	fs.Parse(args)

	preds := discover.Predicates{
		ColumnNames: splitCSV(*colNames),
		ColumnTypes: splitCSV(*colTypes),
		MinRows:     *minRows,
		MaxRows:     *maxRows,
		MinCols:     *minCols,
		MaxCols:     *maxCols,
		Keywords:    *keywords,
		Values:      splitCSV(*predValues),
	}
	if (*tableID == "") == (*values == "") {
		return fmt.Errorf("discover: exactly one of -table and -values is required")
	}

	if *addr != "" {
		req := server.DiscoverRequest{
			TableID:    *tableID,
			Values:     splitCSV(*values),
			Column:     *column,
			Relation:   *relation,
			Mode:       *mode,
			Method:     *method,
			Threshold:  *threshold,
			K:          *k,
			Predicates: preds,
			Explain:    *explain,
		}
		res, err := server.NewClient(*addr).Discover(context.Background(), req)
		if err != nil {
			return err
		}
		if res.Matches != nil {
			for i, m := range *res.Matches {
				fmt.Printf("%2d. %-32s overlap=%-5d containment=%.2f\n", i+1, m.ColumnKey, m.Overlap, m.Containment)
			}
		}
		if res.Results != nil {
			for i, r := range *res.Results {
				fmt.Printf("%2d. %-20s %.3f\n", i+1, r.TableID, r.Score)
			}
		}
		printExplain(res.Explain)
		return nil
	}

	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	q := discover.Query{
		Values:     splitCSV(*values),
		Column:     *column,
		Relation:   *relation,
		Mode:       *mode,
		Method:     *method,
		Threshold:  *threshold,
		K:          *k,
		Predicates: preds,
	}
	if *tableID != "" {
		t := sys.Catalog.Table(*tableID)
		if t == nil {
			return fmt.Errorf("discover: no table %q", *tableID)
		}
		q.Seed = t
		q.Values = nil
	}
	plan, err := discover.NewPlan(sys, q)
	if err != nil {
		return err
	}
	res, err := plan.Execute(context.Background())
	if err != nil {
		return err
	}
	for i, m := range res.Matches {
		fmt.Printf("%2d. %-32s overlap=%-5d containment=%.2f\n", i+1, m.ColumnKey, m.Overlap, m.Containment)
	}
	for i, r := range res.Tables {
		fmt.Printf("%2d. %-20s %.3f\n", i+1, r.TableID, r.Score)
	}
	if *explain {
		printExplain(res.Explain)
	}
	return nil
}

func printExplain(stages []discover.StageExplain) {
	if len(stages) == 0 {
		return
	}
	fmt.Println("plan:")
	for _, st := range stages {
		if st.Skipped {
			fmt.Printf("  %-18s in=%-6d out=%-6d skipped (predicate provably total)\n", st.Stage, st.In, st.Out)
			continue
		}
		est := ""
		if st.EstOut > 0 || st.Cost > 0 {
			est = fmt.Sprintf(" est_out=%-5d cost=%-7d", st.EstOut, st.Cost)
		}
		fmt.Printf("  %-18s in=%-6d out=%-6d%s %dµs\n", st.Stage, st.In, st.Out, est, st.ElapsedUS)
	}
}

// splitCSV splits a comma-separated flag value, dropping empty items.
func splitCSV(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
