package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tablehound/internal/server"
)

// benchRemote measures query throughput against running lakeserved
// daemons. Each address is benched alone (per-shard numbers), and with
// more than one address a final aggregate pass drives all of them
// concurrently — the scatter-gather scaling check: aggregate QPS
// should approach the per-shard sum when shards don't contend.
func benchRemote(addrs []string, queries, goroutines, k int, q string, values []string, tableID string) error {
	type surface struct {
		name string
		run  func(c *server.Client) error
	}
	var surfaces []surface
	if q != "" {
		surfaces = append(surfaces, surface{"keyword", func(c *server.Client) error {
			_, err := c.Keyword(context.Background(), server.KeywordRequest{Query: q, K: k})
			return err
		}})
	}
	if len(values) > 0 {
		surfaces = append(surfaces, surface{"join-overlap", func(c *server.Client) error {
			_, err := c.Join(context.Background(), server.JoinRequest{Values: values, K: k})
			return err
		}})
	}
	if tableID != "" {
		surfaces = append(surfaces, surface{"union-tus", func(c *server.Client) error {
			_, err := c.Union(context.Background(), server.UnionRequest{TableID: tableID, K: k})
			return err
		}})
	}
	if len(surfaces) == 0 {
		return fmt.Errorf("bench-qps: remote mode needs a query: -q, -values, and/or -table")
	}

	clients := make([]*server.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = server.NewClient(a)
	}

	fmt.Printf("load: %d queries/surface/target, %d goroutines, k=%d\n\n", queries, goroutines, k)
	fmt.Printf("%-14s %-22s %10s %12s %10s %10s\n", "surface", "target", "queries", "qps", "p50", "p99")
	for _, s := range surfaces {
		for i, c := range clients {
			r, err := driveLoad([]*server.Client{c}, queries, goroutines, s.run)
			if err != nil {
				return fmt.Errorf("bench-qps: %s against %s: %w", s.name, addrs[i], err)
			}
			fmt.Printf("%-14s %-22s %10d %12.1f %10v %10v\n",
				s.name, addrs[i], queries, r.qps, r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
		}
		if len(clients) > 1 {
			total := queries * len(clients)
			r, err := driveLoad(clients, total, goroutines*len(clients), s.run)
			if err != nil {
				return fmt.Errorf("bench-qps: %s aggregate: %w", s.name, err)
			}
			fmt.Printf("%-14s %-22s %10d %12.1f %10v %10v\n",
				s.name, "aggregate", total, r.qps, r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
		}
	}
	return nil
}

type loadResult struct {
	qps      float64
	p50, p99 time.Duration
}

// driveLoad runs total requests over the clients (round-robin across
// goroutines) and reports throughput and latency quantiles.
func driveLoad(clients []*server.Client, total, goroutines int, run func(c *server.Client) error) (loadResult, error) {
	var (
		next     int64
		mu       sync.Mutex
		lat      = make([]time.Duration, 0, total)
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		c := clients[g%len(clients)]
		wg.Add(1)
		go func(c *server.Client) {
			defer wg.Done()
			for atomic.AddInt64(&next, 1) <= int64(total) {
				t0 := time.Now()
				if err := run(c); err != nil {
					once.Do(func() { firstErr = err })
					return
				}
				d := time.Since(t0)
				mu.Lock()
				lat = append(lat, d)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return loadResult{}, firstErr
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return loadResult{
		qps: float64(len(lat)) / elapsed.Seconds(),
		p50: quantileDur(lat, 0.50),
		p99: quantileDur(lat, 0.99),
	}, nil
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
