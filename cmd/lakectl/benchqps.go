package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// cmdBenchQPS builds a discovery system and measures query throughput
// on each search surface under concurrent load. With no -lake it
// generates the same 500-table synthetic lake the Go benchmarks use,
// so numbers are comparable with `make bench-query`.
//
// With -addr the bench runs over HTTP against running lakeserved
// daemons instead: each comma-separated address is benched alone, and
// several addresses get a final aggregate pass driving all of them
// concurrently (per-shard vs fleet throughput). Remote mode takes its
// queries from -q, -values, and -table.
func cmdBenchQPS(args []string) error {
	fs := flag.NewFlagSet("bench-qps", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory (omit for the 500-table synthetic lake)")
	queries := fs.Int("queries", 200, "queries per surface")
	goroutines := fs.Int("goroutines", 4, "concurrent client goroutines")
	k := fs.Int("k", 10, "top-k per query")
	qpar := fs.Int("qparallel", 1, "per-query scoring workers (0 = all CPUs)")
	addrFlag := fs.String("addr", "", "comma-separated lakeserved addresses (remote mode; replaces -lake)")
	q := fs.String("q", "", "keyword query (remote mode)")
	valuesFlag := fs.String("values", "", "comma-separated join query values (remote mode)")
	tableID := fs.String("table", "", "union query table ID (remote mode)")
	bf := addBuildFlags(fs)
	fs.Parse(args)

	if *addrFlag != "" {
		var addrs []string
		for _, a := range strings.Split(*addrFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		var values []string
		for _, v := range strings.Split(*valuesFlag, ",") {
			if v = strings.TrimSpace(v); v != "" {
				values = append(values, v)
			}
		}
		return benchRemote(addrs, *queries, *goroutines, *k, *q, values, *tableID)
	}

	var (
		cat  *lake.Catalog
		opts core.Options
		err  error
	)
	if *dir == "" {
		gen := datagen.Generate(datagen.Config{
			Seed:              41,
			NumDomains:        20,
			DomainSize:        80,
			NumTemplates:      10,
			TablesPerTemplate: 50,
		})
		cat = lake.NewCatalog()
		if err := cat.AddBatch(gen.Tables); err != nil {
			return err
		}
		opts = core.Options{KB: gen.BuildKB(0.8), Seed: 7, SkipGraph: true}
	} else {
		cat, err = bf.loadCatalog(*dir)
		if err != nil {
			return err
		}
	}
	opts.Parallelism = *bf.parallel
	opts.QueryParallelism = *qpar

	buildStart := time.Now()
	sys, err := core.Build(cat, opts)
	if err != nil {
		return err
	}
	if *bf.timing {
		fmt.Fprint(os.Stderr, sys.BuildStats.Report())
	}
	fmt.Printf("lake: %d tables, built in %v\n", cat.Len(), time.Since(buildStart).Round(time.Millisecond))
	fmt.Printf("load: %d queries/surface, %d goroutines, k=%d, qparallel=%d\n\n",
		*queries, *goroutines, *k, *qpar)

	tbls := cat.Tables()
	qt := tbls[len(tbls)/2]
	var vals []string
	for _, c := range qt.Columns {
		if c.Type == table.TypeString && len(c.Values) > len(vals) {
			vals = c.Values
		}
	}
	if len(vals) == 0 {
		vals = qt.Columns[0].Values
	}
	kw := qt.Name

	surfaces := []struct {
		name string
		run  func() error
	}{
		{"keyword", func() error { _, err := sys.KeywordSearch(kw, *k); return err }},
		{"join-overlap", func() error { _, err := sys.JoinableColumns(vals, *k); return err }},
		{"containment", func() error { _, err := sys.ContainmentSearch(vals, 0.5, *k); return err }},
		{"union-tus", func() error { _, err := sys.TUS.Search(qt, *k, union.EnsembleMeasure); return err }},
	}
	fmt.Printf("%-14s %10s %12s %12s\n", "surface", "queries", "qps", "mean")
	for _, s := range surfaces {
		var next int64
		var wg sync.WaitGroup
		var once sync.Once
		var firstErr error
		start := time.Now()
		for g := 0; g < *goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for atomic.AddInt64(&next, 1) <= int64(*queries) {
					if err := s.run(); err != nil {
						once.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return fmt.Errorf("bench-qps: %s: %w", s.name, firstErr)
		}
		elapsed := time.Since(start)
		qps := float64(*queries) / elapsed.Seconds()
		mean := elapsed / time.Duration(*queries)
		fmt.Printf("%-14s %10d %12.1f %12v\n", s.name, *queries, qps, mean.Round(time.Microsecond))
	}
	return nil
}
