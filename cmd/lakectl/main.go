// Command lakectl is the command-line interface to the tablehound
// table-discovery system: generate a synthetic data lake, inspect it,
// run keyword/joinable/unionable searches and navigation over it, and
// regenerate the reproduction experiments indexed in DESIGN.md.
//
// Usage:
//
//	lakectl gen -out DIR [-templates N] [-tables N] [-seed S]
//	lakectl build -lake DIR -o FILE.snap [-shards N]
//	lakectl add -base FILE.snap [-deltas D1,D2] -o DELTA.thdb FILE.csv...
//	lakectl remove -base FILE.snap [-deltas D1,D2] -ids ID1,ID2 -o DELTA.thdb
//	lakectl compact -base FILE.snap -deltas D1,D2 -o NEW.snap
//	lakectl stats -lake DIR | -addr HOST:PORT
//	lakectl query <search|vsearch|join|union> -addr HOST:PORT [flags]
//	lakectl search -lake DIR -q "topic keywords" [-k 10]
//	lakectl join -lake DIR -table ID -column NAME [-k 10]
//	lakectl union -lake DIR -table ID [-k 10] [-method tus|santos|starmie]
//	lakectl discover -lake DIR|-addr HOST:PORT -table ID|-values V1,V2
//	        [-relation join|union|any] [-k 10] [-col-names A,B] [-min-rows N]
//	        [-keywords "topic"] [-pred-values V1,V2] [-explain]
//	lakectl navigate -lake DIR -topic WORD
//	lakectl exp ID|all
//
// Every command that builds a discovery system accepts -parallel N
// (construction worker count; 0 = all CPUs, 1 = sequential), -timing
// (print the per-stage build report to stderr), and -snapshot FILE
// (load a prebuilt system from a `lakectl build -o` snapshot instead
// of rebuilding from CSVs) plus -deltas D1,D2 (delta snapshots from
// `lakectl add`/`lakectl remove`, applied on top of -snapshot in
// order; globs allowed). The snapshot's shared vector block is
// governed by -centroids K (coarse-quantizer clusters per searchable
// segment; 0 = automatic ≈√n policy, -1 disables), -nprobe N (clusters
// visited by pruned exact search; 0 = all, bit-identical to an
// exhaustive scan), and -vec-mode auto|heap|mmap (how a loaded
// snapshot materializes vectors; mmap is zero-copy).
//
// A lake is a directory of CSV files (one table per file).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/exp"
	"tablehound/internal/lake"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "add":
		err = cmdAdd(os.Args[2:])
	case "remove":
		err = cmdRemove(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "join":
		err = cmdJoin(os.Args[2:])
	case "union":
		err = cmdUnion(os.Args[2:])
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "navigate":
		err = cmdNavigate(os.Args[2:])
	case "vsearch":
		err = cmdVSearch(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "match":
		err = cmdMatch(os.Args[2:])
	case "joinpath":
		err = cmdJoinPath(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "bench-qps":
		err = cmdBenchQPS(os.Args[2:])
	case "memstats":
		err = cmdMemStats(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lakectl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lakectl <command> [flags]

commands:
  gen       generate a synthetic data lake as a directory of CSVs
  build     build the discovery system and save it as a snapshot file
            (-shards N partitions into N shard snapshots + a manifest)
  add       index new CSV tables as a delta snapshot chained to a base
            (no rebuild; query with -snapshot BASE -deltas DELTA,...)
  remove    tombstone tables as a delta snapshot chained to a base
  compact   fold a delta chain into a fresh full base snapshot
  stats     print catalog statistics for a lake (or -addr for a daemon)
  query     run a search against a running lakeserved daemon
  search    keyword search over table metadata
  join      find joinable columns for a query column
  union     find unionable tables for a query table
  discover  conditional discovery: seed + relation + predicates,
            compiled into a staged plan (-addr for client mode,
            -explain for the per-stage breakdown)
  navigate  descend the lake organization toward a topic
  vsearch   keyword search over cell values, clustered by schema
  profile   print a table's Auctus-style data profile
  match     align the schemas of two tables
  joinpath  find a chain of joins connecting two tables
  bench-qps measure query throughput across the search surfaces
  memstats  report per-index memory footprint vs the string forms
  exp       run a reproduction experiment (e1..e23 or "all")`)
}

// buildFlags carries the system-construction flags shared by every
// command that builds a discovery system.
type buildFlags struct {
	parallel  *int
	timing    *bool
	snapshot  *string
	deltas    *string
	centroids *int
	nprobe    *int
	vecMode   *string
}

func addBuildFlags(fs *flag.FlagSet) buildFlags {
	return buildFlags{
		parallel:  fs.Int("parallel", 0, "construction workers (0 = all CPUs, 1 = sequential)"),
		timing:    fs.Bool("timing", false, "print per-stage build timing to stderr"),
		snapshot:  fs.String("snapshot", "", "load the system from a snapshot file instead of building from -lake"),
		deltas:    fs.String("deltas", "", "comma-separated delta snapshots (globs allowed) applied on top of -snapshot, in order"),
		centroids: fs.Int("centroids", 0, "coarse-quantizer clusters per vector segment (0 = auto, -1 = off)"),
		nprobe:    fs.Int("nprobe", 0, "clusters visited by pruned exact search (0 = all = exhaustive-identical)"),
		vecMode:   fs.String("vec-mode", "auto", "snapshot vector materialization: auto | heap | mmap"),
	}
}

func (bf buildFlags) deltaPaths() ([]string, error) { return core.ExpandDeltas(*bf.deltas) }

func (bf buildFlags) options() core.Options {
	return core.Options{
		Parallelism:  *bf.parallel,
		VecCentroids: *bf.centroids,
		VecNProbe:    *bf.nprobe,
		VecMode:      *bf.vecMode,
	}
}

func (bf buildFlags) loadCatalog(dir string) (*lake.Catalog, error) {
	if dir == "" {
		return nil, fmt.Errorf("missing -lake directory")
	}
	return lake.LoadCSVDirN(dir, *bf.parallel)
}

func (bf buildFlags) buildSystem(dir string) (*core.System, error) {
	var sys *core.System
	if *bf.snapshot != "" {
		chain, err := bf.deltaPaths()
		if err != nil {
			return nil, err
		}
		sys, err = core.LoadChainFiles(*bf.snapshot, chain, bf.options())
		if err != nil {
			return nil, err
		}
	} else if *bf.deltas != "" {
		return nil, fmt.Errorf("-deltas requires -snapshot (deltas chain onto a base snapshot)")
	} else {
		cat, err := bf.loadCatalog(dir)
		if err != nil {
			return nil, err
		}
		sys, err = core.Build(cat, bf.options())
		if err != nil {
			return nil, err
		}
	}
	if *bf.timing {
		fmt.Fprint(os.Stderr, sys.BuildStats.Report())
	}
	return sys, nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	out := fs.String("o", "", "output snapshot file (required)")
	shards := fs.Int("shards", 1, "partition the lake into N shard snapshots plus a manifest")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}
	if *shards > 1 {
		return buildSharded(*dir, *out, *shards, bf)
	}
	start := time.Now()
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	built := time.Since(start)
	if err := sys.SaveFile(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	st := sys.Catalog.Stats()
	fmt.Printf("built %d tables (%d columns, %d distinct values) in %v\nwrote %s (%.1f MiB) in %v\n",
		st.Tables, st.Columns, st.DistinctValues, built.Round(time.Millisecond),
		*out, float64(fi.Size())/(1<<20), time.Since(start).Round(time.Millisecond)-built.Round(time.Millisecond))
	return nil
}

// csvTableID derives a table ID from a CSV path the same way
// lake.LoadCSVDir does: base name minus extension, dots to dashes. A
// table added incrementally gets the ID a from-scratch directory build
// would give it.
func csvTableID(path string) string {
	name := filepath.Base(path)
	return strings.ReplaceAll(strings.TrimSuffix(name, filepath.Ext(name)), ".", "-")
}

func cmdAdd(args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	base := fs.String("base", "", "base snapshot file (required)")
	deltas := fs.String("deltas", "", "delta snapshots already chained onto -base, in order (globs allowed)")
	out := fs.String("o", "", "output delta file (required)")
	parallel := fs.Int("parallel", 0, "analysis workers (0 = all CPUs)")
	fs.Parse(args)
	if *base == "" || *out == "" {
		return fmt.Errorf("add: -base and -o are required")
	}
	csvs := fs.Args()
	if len(csvs) == 0 {
		return fmt.Errorf("add: no CSV files given")
	}
	chain, err := core.ExpandDeltas(*deltas)
	if err != nil {
		return err
	}
	tables := make([]*table.Table, 0, len(csvs))
	for _, path := range csvs {
		t, err := table.FromCSVFile(csvTableID(path), path)
		if err != nil {
			return fmt.Errorf("add: load %s: %w", path, err)
		}
		tables = append(tables, t)
	}
	start := time.Now()
	d, err := core.BuildDelta(*base, chain, tables, nil, core.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	if err := d.SaveFile(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("delta %s: +%d tables, %d new values, gen %016x -> %016x (%s) in %v\n",
		*out, len(tables), len(d.NewValues), d.ParentGen, d.ResultGen,
		memBytes(fi.Size()), time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdRemove(args []string) error {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	base := fs.String("base", "", "base snapshot file (required)")
	deltas := fs.String("deltas", "", "delta snapshots already chained onto -base, in order (globs allowed)")
	ids := fs.String("ids", "", "comma-separated table IDs to remove (required)")
	out := fs.String("o", "", "output delta file (required)")
	fs.Parse(args)
	if *base == "" || *out == "" || *ids == "" {
		return fmt.Errorf("remove: -base, -ids, and -o are required")
	}
	chain, err := core.ExpandDeltas(*deltas)
	if err != nil {
		return err
	}
	var remove []string
	for _, id := range strings.Split(*ids, ",") {
		if id = strings.TrimSpace(id); id != "" {
			remove = append(remove, id)
		}
	}
	d, err := core.BuildDelta(*base, chain, nil, remove, core.Options{})
	if err != nil {
		return err
	}
	if err := d.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("delta %s: -%d tables (tombstones), gen %016x -> %016x\n",
		*out, len(d.Tombstones), d.ParentGen, d.ResultGen)
	return nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	base := fs.String("base", "", "base snapshot file (required)")
	deltas := fs.String("deltas", "", "delta chain to fold in, in order (required; globs allowed)")
	out := fs.String("o", "", "output snapshot file (required)")
	parallel := fs.Int("parallel", 0, "merge workers (0 = all CPUs)")
	fs.Parse(args)
	if *base == "" || *out == "" {
		return fmt.Errorf("compact: -base and -o are required")
	}
	chain, err := core.ExpandDeltas(*deltas)
	if err != nil {
		return err
	}
	if len(chain) == 0 {
		return fmt.Errorf("compact: -deltas matched no files (nothing to fold)")
	}
	start := time.Now()
	sys, err := core.CompactFiles(*base, chain, *out, core.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	st := sys.Catalog.Stats()
	fmt.Printf("compacted %d deltas into %s: %d tables, gen %016x (%s) in %v\n",
		len(chain), *out, st.Tables, sys.Lineage.Gen,
		memBytes(fi.Size()), time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output directory (required)")
	templates := fs.Int("templates", 8, "number of table templates")
	tables := fs.Int("tables", 5, "tables per template")
	domains := fs.Int("domains", 16, "number of value domains")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	gen := datagen.Generate(datagen.Config{
		Seed:              *seed,
		NumDomains:        *domains,
		NumTemplates:      *templates,
		TablesPerTemplate: *tables,
	})
	for _, t := range gen.Tables {
		f, err := os.Create(filepath.Join(*out, t.ID+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d tables to %s\n", len(gen.Tables), *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	addr := fs.String("addr", "", "running lakeserved address (replaces -lake)")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	if *addr != "" {
		return remoteStats(*addr)
	}
	cat, err := bf.loadCatalog(*dir)
	if err != nil {
		return err
	}
	s := cat.Stats()
	fmt.Printf("tables:          %d\ncolumns:         %d\nrows:            %d\ndistinct values: %d\n",
		s.Tables, s.Columns, s.Rows, s.DistinctValues)
	return nil
}

func cmdMemStats(args []string) error {
	fs := flag.NewFlagSet("memstats", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("value dictionary: %d distinct values\n", sys.Dict.Size())
	if lin := sys.Lineage; lin.Depth() > 0 {
		fmt.Printf("delta chain:      depth %d, %d tombstones, base gen %016x, live gen %016x\n",
			lin.Depth(), lin.TombstoneCount(), lin.LastCompactGen(), lin.Gen)
		for i, di := range lin.Deltas {
			fmt.Printf("  delta %d: %-32s +%d tables, %d tombstones, %s on disk, gen %016x\n",
				i+1, filepath.Base(di.Path), di.Tables, di.Tombstones, memBytes(di.Bytes), di.Gen)
		}
	}
	if lin := sys.Lineage; lin != nil && len(lin.Folded) > 0 {
		fmt.Printf("already folded:   %d delta file(s) skipped (inside the base; safe to delete):\n", len(lin.Folded))
		for _, p := range lin.Folded {
			fmt.Printf("  %s\n", filepath.Base(p))
		}
	}
	if v := sys.Vecs; v != nil {
		residency := "heap"
		if v.Mapped() {
			residency = "mmap (file-backed, zero-copy)"
		}
		fmt.Printf("vector block:     %d vectors x %d dims in %d segments, %s on disk, residency %s",
			v.Count(), v.Dim(), len(v.Segments()), memBytes(v.DataBytes()+v.NormBytes()), residency)
		if cb := v.CentroidBytes(); cb > 0 {
			fmt.Printf(", centroid tables %s", memBytes(cb))
		}
		fmt.Println()
	}
	fmt.Print(sys.MemStats().Report())
	return nil
}

// memBytes renders a byte count like the memstats table does.
func memBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	q := fs.String("q", "", "query keywords")
	k := fs.Int("k", 10, "results")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("search: -q is required")
	}
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	res, err := sys.KeywordSearch(*q, *k)
	if err != nil {
		return err
	}
	for i, r := range res {
		t := sys.Catalog.Table(r.TableID)
		fmt.Printf("%2d. %-20s %6.2f  %s\n", i+1, r.TableID, r.Score, t.Name)
	}
	return nil
}

func cmdJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	tableID := fs.String("table", "", "query table ID")
	column := fs.String("column", "", "query column name")
	k := fs.Int("k", 10, "results")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	t := sys.Catalog.Table(*tableID)
	if t == nil {
		return fmt.Errorf("join: no table %q", *tableID)
	}
	c := t.Column(*column)
	if c == nil {
		return fmt.Errorf("join: table %q has no column %q", *tableID, *column)
	}
	ms, err := sys.JoinableColumns(c.Values, *k)
	if err != nil {
		return err
	}
	for i, m := range ms {
		fmt.Printf("%2d. %-32s overlap=%-5d containment=%.2f\n", i+1, m.ColumnKey, m.Overlap, m.Containment)
	}
	return nil
}

func cmdUnion(args []string) error {
	fs := flag.NewFlagSet("union", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	tableID := fs.String("table", "", "query table ID")
	k := fs.Int("k", 10, "results")
	method := fs.String("method", "tus", "tus | santos | starmie | d3l")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	t := sys.Catalog.Table(*tableID)
	if t == nil {
		return fmt.Errorf("union: no table %q", *tableID)
	}
	type row struct {
		id    string
		score float64
	}
	var rows []row
	switch *method {
	case "tus":
		res, err := sys.TUS.Search(t, *k, union.EnsembleMeasure)
		if err != nil {
			return err
		}
		for _, r := range res {
			rows = append(rows, row{r.TableID, r.Score})
		}
	case "santos":
		res, err := sys.Santos.Search(t, *k, union.Hybrid)
		if err != nil {
			return err
		}
		for _, r := range res {
			rows = append(rows, row{r.TableID, r.Score})
		}
	case "starmie":
		res, err := sys.Starmie.SearchTables(t, *k, 64, false)
		if err != nil {
			return err
		}
		for _, r := range res {
			rows = append(rows, row{r.TableID, r.Score})
		}
	case "d3l":
		res, err := sys.D3L.Search(t, *k)
		if err != nil {
			return err
		}
		for _, r := range res {
			rows = append(rows, row{r.TableID, r.Score})
		}
	default:
		return fmt.Errorf("union: unknown method %q", *method)
	}
	for i, r := range rows {
		fmt.Printf("%2d. %-20s %.3f\n", i+1, r.id, r.score)
	}
	return nil
}

func cmdNavigate(args []string) error {
	fs := flag.NewFlagSet("navigate", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	topic := fs.String("topic", "", "topic keyword")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	if *topic == "" {
		return fmt.Errorf("navigate: -topic is required")
	}
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	labels, tableID, err := sys.Navigate(*topic)
	if err != nil {
		return err
	}
	fmt.Printf("path:   %s\nreached: %s\n", strings.Join(labels, " > "), tableID)
	return nil
}

func cmdVSearch(args []string) error {
	fs := flag.NewFlagSet("vsearch", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	q := fs.String("q", "", "query keywords")
	k := fs.Int("k", 10, "max tables")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("vsearch: -q is required")
	}
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	clusters, err := sys.ValueSearch(*q, *k)
	if err != nil {
		return err
	}
	for i, cl := range clusters {
		fmt.Printf("cluster %d (score %.2f, schema [%s]):\n", i+1, cl.Score, strings.Join(cl.Schema, ", "))
		for _, id := range cl.TableIDs {
			fmt.Printf("  %s\n", id)
		}
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	tableID := fs.String("table", "", "table ID")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	tp, ok := sys.Profiles.Profile(*tableID)
	if !ok {
		return fmt.Errorf("profile: no table %q", *tableID)
	}
	fmt.Print(tp.FormatSummary())
	return nil
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	src := fs.String("src", "", "source table ID")
	dst := fs.String("dst", "", "target table ID")
	threshold := fs.Float64("threshold", 0.4, "minimum correspondence score")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	st := sys.Catalog.Table(*src)
	dt := sys.Catalog.Table(*dst)
	if st == nil || dt == nil {
		return fmt.Errorf("match: tables %q, %q not both found", *src, *dst)
	}
	for _, c := range sys.MatchSchemas(st, dt, *threshold) {
		fmt.Printf("%-20s <-> %-20s %.3f\n", c.Source, c.Target, c.Score)
	}
	return nil
}

func cmdJoinPath(args []string) error {
	fs := flag.NewFlagSet("joinpath", flag.ExitOnError)
	dir := fs.String("lake", "", "lake directory")
	from := fs.String("from", "", "source table ID")
	to := fs.String("to", "", "target table ID")
	hops := fs.Int("hops", 4, "maximum join hops")
	bf := addBuildFlags(fs)
	fs.Parse(args)
	sys, err := bf.buildSystem(*dir)
	if err != nil {
		return err
	}
	path := sys.JoinPath(*from, *to, *hops)
	if path == nil {
		fmt.Printf("no join path from %s to %s within %d hops\n", *from, *to, *hops)
		return nil
	}
	for i, h := range path {
		fmt.Printf("%d. %s  JOIN  %s  (%s, %.2f)\n", i+1, h.FromColumn, h.ToColumn, h.Kind, h.Weight)
	}
	return nil
}

func cmdExp(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("exp: usage: lakectl exp <%s|all>", strings.Join(exp.IDs(), "|"))
	}
	id := strings.ToLower(args[0])
	if id == "all" {
		for _, eid := range exp.IDs() {
			fmt.Println(exp.Registry[eid]())
		}
		return nil
	}
	run, ok := exp.Registry[id]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(exp.IDs(), ", "))
	}
	fmt.Println(run())
	return nil
}
