package main

import (
	"os"
	"path/filepath"
	"testing"
)

// silence redirects stdout to /dev/null for the duration of a test so
// command output does not pollute the test log.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

// genLake generates a small lake directory once per test.
func genLake(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "lake")
	if err := cmdGen([]string{"-out", dir, "-templates", "4", "-tables", "3", "-domains", "10", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCmdGenAndStats(t *testing.T) {
	silence(t)
	dir := genLake(t)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 12 {
		t.Fatalf("generated %d files, err=%v", len(entries), err)
	}
	if err := cmdStats([]string{"-lake", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-lake", filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing lake should fail")
	}
	if err := cmdGen([]string{}); err == nil {
		t.Error("gen without -out should fail")
	}
}

func TestCmdSearchJoinUnion(t *testing.T) {
	silence(t)
	dir := genLake(t)
	if err := cmdSearch([]string{"-lake", dir, "-q", "city", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSearch([]string{"-lake", dir}); err == nil {
		t.Error("search without -q should fail")
	}
	if err := cmdJoin([]string{"-lake", dir, "-table", "t000_00", "-column", "note_0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJoin([]string{"-lake", dir, "-table", "nope", "-column", "x"}); err == nil {
		t.Error("unknown table should fail")
	}
	for _, method := range []string{"tus", "santos", "starmie", "d3l"} {
		if err := cmdUnion([]string{"-lake", dir, "-table", "t000_00", "-method", method, "-k", "3"}); err != nil {
			t.Fatalf("union %s: %v", method, err)
		}
	}
	if err := cmdUnion([]string{"-lake", dir, "-table", "t000_00", "-method", "bogus"}); err == nil {
		t.Error("bogus union method should fail")
	}
}

func TestCmdNavigateProfileMatchJoinPath(t *testing.T) {
	silence(t)
	dir := genLake(t)
	if err := cmdNavigate([]string{"-lake", dir, "-topic", "city"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdNavigate([]string{"-lake", dir}); err == nil {
		t.Error("navigate without -topic should fail")
	}
	if err := cmdProfile([]string{"-lake", dir, "-table", "t000_00"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-lake", dir, "-table", "nope"}); err == nil {
		t.Error("unknown profile table should fail")
	}
	if err := cmdMatch([]string{"-lake", dir, "-src", "t000_00", "-dst", "t000_01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMatch([]string{"-lake", dir, "-src", "t000_00", "-dst", "nope"}); err == nil {
		t.Error("unknown match table should fail")
	}
	if err := cmdJoinPath([]string{"-lake", dir, "-from", "t000_00", "-to", "t000_01", "-hops", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVSearch([]string{"-lake", dir, "-q", "city_0001"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVSearch([]string{"-lake", dir}); err == nil {
		t.Error("vsearch without -q should fail")
	}
}

func TestCmdExp(t *testing.T) {
	silence(t)
	// Run one cheap experiment end to end.
	if err := cmdExp([]string{"e8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExp([]string{"nope"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := cmdExp(nil); err == nil {
		t.Error("exp without args should fail")
	}
}
