package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"tablehound/internal/discover"
	"tablehound/internal/server"
)

// cmdQuery is lakectl's client mode: instead of loading a lake and
// building a system locally, it queries a running lakeserved daemon.
//
//	lakectl query search -addr HOST:PORT -q "topic" [-k 10]
//	lakectl query vsearch -addr HOST:PORT -q "value" [-k 10]
//	lakectl query join -addr HOST:PORT -values "v1,v2,..." [-k 10]
//	        [-mode overlap|containment] [-threshold 0.5]
//	lakectl query union -addr HOST:PORT -table ID [-k 10]
//	        [-method tus|santos|starmie|d3l]
func cmdQuery(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("query: usage: lakectl query <search|vsearch|join|union> -addr HOST:PORT [flags]")
	}
	kind := args[0]
	fs := flag.NewFlagSet("query "+kind, flag.ExitOnError)
	addr := fs.String("addr", "", "lakeserved address (required)")
	k := fs.Int("k", 10, "results")
	q := fs.String("q", "", "query keywords (search, vsearch)")
	values := fs.String("values", "", "comma-separated query column values (join)")
	mode := fs.String("mode", "overlap", "join mode: overlap | containment")
	threshold := fs.Float64("threshold", 0.5, "containment threshold (join -mode containment)")
	tableID := fs.String("table", "", "query table ID (union)")
	method := fs.String("method", "tus", "union method: tus | santos | starmie | d3l")
	fs.Parse(args[1:])
	if *addr == "" {
		return fmt.Errorf("query: -addr is required")
	}
	c := server.NewClient(*addr)
	ctx := context.Background()

	switch kind {
	case "search":
		res, err := c.Keyword(ctx, server.KeywordRequest{Query: *q, K: *k})
		if err != nil {
			return err
		}
		for i, r := range res.Results {
			fmt.Printf("%2d. %-20s %6.2f\n", i+1, r.TableID, r.Score)
		}
	case "vsearch":
		res, err := c.Keyword(ctx, server.KeywordRequest{Query: *q, K: *k, Mode: "values"})
		if err != nil {
			return err
		}
		for i, cl := range res.Clusters {
			fmt.Printf("cluster %d (score %.2f, schema [%s]):\n", i+1, cl.Score, strings.Join(cl.Schema, ", "))
			for _, id := range cl.TableIDs {
				fmt.Printf("  %s\n", id)
			}
		}
	case "join":
		if *values == "" {
			return fmt.Errorf("query join: -values is required")
		}
		res, err := c.Join(ctx, server.JoinRequest{
			Values: strings.Split(*values, ","), K: *k, Mode: *mode, Threshold: *threshold,
		})
		if err != nil {
			return err
		}
		for i, m := range res.Matches {
			fmt.Printf("%2d. %-32s overlap=%-5d containment=%.2f\n", i+1, m.ColumnKey, m.Overlap, m.Containment)
		}
	case "union":
		if *tableID == "" {
			return fmt.Errorf("query union: -table is required")
		}
		res, err := c.Union(ctx, server.UnionRequest{TableID: *tableID, K: *k, Method: *method})
		if err != nil {
			return err
		}
		for i, r := range res.Results {
			fmt.Printf("%2d. %-20s %.3f\n", i+1, r.TableID, r.Score)
		}
	default:
		return fmt.Errorf("query: unknown kind %q (want search, vsearch, join, or union)", kind)
	}
	return nil
}

// remoteStats prints a running daemon's serving statistics.
func remoteStats(addr string) error {
	st, err := server.NewClient(addr).Stats(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("uptime:          %.1fs (snapshot gen %d)\n", st.UptimeSeconds, st.SnapshotGen)
	fmt.Printf("tables:          %d\ncolumns:         %d\nrows:            %d\ndistinct values: %d\n",
		st.Lake.Tables, st.Lake.Columns, st.Lake.Rows, st.Lake.DistinctValues)
	fmt.Printf("cache:           %d hits / %d misses (ratio %.2f), %d entries, %d evictions\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.HitRatio, st.Cache.Entries, st.Cache.Evictions)
	fmt.Printf("admission:       %d in flight, %d queued, %d shed, %d timeouts\n",
		st.InFlight, st.QueueDepth, st.Shed, st.Timeouts)
	for _, name := range []string{"join", "union", "keyword", "discover"} {
		ep, ok := st.Endpoints[name]
		if !ok {
			continue
		}
		fmt.Printf("%-8s         %d reqs (%.1f qps), %d errors, p50 %.1fms p95 %.1fms p99 %.1fms\n",
			name, ep.Requests, ep.QPS, ep.Errors, ep.P50Ms, ep.P95Ms, ep.P99Ms)
	}
	for _, stage := range []string{
		discover.StageMeta, discover.StageKeyword, discover.StageValues,
		discover.StageCandidates, discover.StageVerify,
	} {
		ds, ok := st.Discover[stage]
		if !ok || (ds.CandidatesIn == 0 && ds.CandidatesOut == 0) {
			continue
		}
		est := ""
		if ds.EstOut > 0 || ds.EstAbsErr > 0 {
			est = fmt.Sprintf(", est %d (abs err %d)", ds.EstOut, ds.EstAbsErr)
		}
		fmt.Printf("  stage %-18s %d in -> %d out%s, p50 %.2fms p95 %.2fms\n",
			stage, ds.CandidatesIn, ds.CandidatesOut, est, ds.P50Ms, ds.P95Ms)
	}
	return nil
}
