package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/lake"
	"tablehound/internal/parallel"
	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// shardSnapshotPath names shard i's snapshot: "lake.snap" with
// -shards 4 becomes lake.0.snap … lake.3.snap.
func shardSnapshotPath(out string, i int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.%d%s", strings.TrimSuffix(out, ext), i, ext)
}

// shardManifestPath names the manifest next to the shard snapshots:
// "lake.snap" becomes "lake.manifest".
func shardManifestPath(out string) string {
	return strings.TrimSuffix(out, filepath.Ext(out)) + ".manifest"
}

// buildSharded partitions the lake by the stable table→shard
// assignment (snap.ShardOf), builds one independent discovery system
// per shard, writes each as its own snapshot, and records the
// partitioning in a manifest so lakeserved shard servers and the
// router agree on who owns what. The -parallel budget is split: up to
// N shard builds run concurrently, each with the remaining workers.
func buildSharded(dir, out string, n int, bf buildFlags) error {
	if *bf.snapshot != "" {
		return fmt.Errorf("build: -shards partitions a lake directory; it cannot repartition -snapshot")
	}
	start := time.Now()
	cat, err := bf.loadCatalog(dir)
	if err != nil {
		return err
	}
	tbls := cat.Tables()
	parts := make([][]*table.Table, n)
	ids := make([][]string, n)
	for _, t := range tbls {
		i := snap.ShardOf(t.ID, n)
		parts[i] = append(parts[i], t)
		ids[i] = append(ids[i], t.ID)
	}
	for i, p := range parts {
		if len(p) == 0 {
			return fmt.Errorf("build: shard %d of %d is empty (%d tables in the lake): use fewer shards", i, n, len(tbls))
		}
	}

	workers := parallel.Resolve(*bf.parallel)
	outer := workers
	if outer > n {
		outer = n
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}

	type shardResult struct {
		path   string
		size   int64
		built  time.Duration
		report string
	}
	results, err := parallel.Map(n, outer, func(i int) (shardResult, error) {
		sc := lake.NewCatalog()
		if err := sc.AddBatch(parts[i]); err != nil {
			return shardResult{}, fmt.Errorf("shard %d: %w", i, err)
		}
		t0 := time.Now()
		shardOpts := bf.options()
		shardOpts.Parallelism = inner
		sys, err := core.Build(sc, shardOpts)
		if err != nil {
			return shardResult{}, fmt.Errorf("shard %d: %w", i, err)
		}
		r := shardResult{built: time.Since(t0), path: shardSnapshotPath(out, i)}
		if *bf.timing {
			r.report = sys.BuildStats.Report()
		}
		if err := sys.SaveFile(r.path); err != nil {
			return shardResult{}, fmt.Errorf("shard %d: %w", i, err)
		}
		fi, err := os.Stat(r.path)
		if err != nil {
			return shardResult{}, err
		}
		r.size = fi.Size()
		return r, nil
	})
	if err != nil {
		return err
	}

	man := &snap.Manifest{Assign: snap.AssignFNV1a}
	for i, r := range results {
		man.Shards = append(man.Shards, snap.ShardEntry{
			Snapshot:   filepath.Base(r.path),
			Generation: snap.HashIDs(ids[i]),
			Tables:     len(parts[i]),
		})
		if r.report != "" {
			fmt.Fprintf(os.Stderr, "--- shard %d build ---\n%s", i, r.report)
		}
	}
	manPath := shardManifestPath(out)
	if err := snap.WriteManifestFile(manPath, man); err != nil {
		return err
	}

	st := cat.Stats()
	fmt.Printf("partitioned %d tables (%d columns) into %d shards in %v\n",
		st.Tables, st.Columns, n, time.Since(start).Round(time.Millisecond))
	for i, r := range results {
		fmt.Printf("  shard %d: %4d tables  %s (%.1f MiB) built in %v\n",
			i, len(parts[i]), r.path, float64(r.size)/(1<<20), r.built.Round(time.Millisecond))
	}
	fmt.Printf("wrote manifest %s (assign %s, hash %016x)\n", manPath, man.Assign, man.Hash())
	return nil
}
