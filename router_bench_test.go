package tablehound

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/router"
	"tablehound/internal/server"
	"tablehound/internal/snap"
)

// ---- Sharded serving (router fan-out QPS) ----

// routerBench holds the 2000-table lake the sharding benchmarks
// partition, plus one built shard set per shard count. Generation and
// builds run once per process, outside every timer.
var routerBench struct {
	mu     sync.Mutex
	gen    *datagen.Lake
	shards map[int][]*core.System
	mans   map[int]*snap.Manifest
}

// routerBenchShards partitions the shared 2000-table lake into n
// shards with the production assignment function (snap.ShardOf) and
// builds one System per shard, exactly as `lakectl build -shards n`
// does. Results are cached per shard count.
func routerBenchShards(b *testing.B, n int) ([]*core.System, *snap.Manifest) {
	b.Helper()
	routerBench.mu.Lock()
	defer routerBench.mu.Unlock()
	if routerBench.gen == nil {
		routerBench.gen = datagen.Generate(datagen.Config{
			Seed:              41,
			NumDomains:        20,
			DomainSize:        80,
			NumTemplates:      40,
			TablesPerTemplate: 50,
		})
		routerBench.shards = make(map[int][]*core.System)
		routerBench.mans = make(map[int]*snap.Manifest)
	}
	if sys, ok := routerBench.shards[n]; ok {
		return sys, routerBench.mans[n]
	}
	gen := routerBench.gen
	// Organization, fuzzy, and graph stages are not exercised by the
	// fan-out surfaces and would dominate the 7 builds this file needs.
	opts := core.Options{
		KB:               gen.BuildKB(0.8),
		Seed:             7,
		SkipOrganization: true,
		SkipFuzzy:        true,
		SkipGraph:        true,
	}
	parts := make([]*lake.Catalog, n)
	ids := make([][]string, n)
	for i := range parts {
		parts[i] = lake.NewCatalog()
	}
	for _, tbl := range gen.Tables {
		i := snap.ShardOf(tbl.ID, n)
		if err := parts[i].Add(tbl); err != nil {
			b.Fatal(err)
		}
		ids[i] = append(ids[i], tbl.ID)
	}
	systems := make([]*core.System, n)
	man := &snap.Manifest{Assign: snap.AssignFNV1a}
	for i := range parts {
		sys, err := core.Build(parts[i], opts)
		if err != nil {
			b.Fatal(err)
		}
		systems[i] = sys
		man.Shards = append(man.Shards, snap.ShardEntry{
			Snapshot:   fmt.Sprintf("lake.%d.snap", i),
			Generation: snap.HashIDs(ids[i]),
			Tables:     len(ids[i]),
		})
	}
	routerBench.shards[n] = systems
	routerBench.mans[n] = man
	return systems, man
}

// BenchmarkRouterQPS measures aggregate throughput and tail latency of
// the scatter-gather tier over a 2000-table lake at 1, 2, and 4
// shards. Each timed request goes through the router: fan-out to every
// shard, per-shard query, and top-k merge. Caches are disabled on both
// tiers so every request pays the full engine cost — the number the
// shard count is supposed to improve. On a single-core runner the
// curve is expected to be flat (the shards share the CPU the fan-out
// is trying to multiply); the scaling needs real cores.
func BenchmarkRouterQPS(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			benchRouterQPS(b, n)
		})
	}
}

func benchRouterQPS(b *testing.B, n int) {
	systems, man := routerBenchShards(b, n)

	addrs := make([]string, n)
	for i, sys := range systems {
		srv := server.New(sys, server.Config{
			MaxInFlight:  64,
			MaxQueue:     4096,
			QueryTimeout: time.Minute,
			Shard:        &server.ShardIdentity{Index: i, Count: n, ManifestHash: man.Hash()},
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		addrs[i] = ts.URL
	}
	rt, err := router.New(router.Config{Addrs: addrs, ShardTimeout: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	rt.CheckShards(context.Background())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	c := server.NewClient(front.URL)
	ctx := context.Background()

	gen := routerBench.gen
	qt := gen.Tables[len(gen.Tables)/2]
	var qvals []string
	for _, col := range qt.Columns {
		if len(col.Values) > len(qvals) {
			qvals = col.Values
		}
	}
	reqs := []func() error{
		func() error {
			_, err := c.Join(ctx, server.JoinRequest{Values: qvals, K: 10})
			return err
		},
		func() error {
			_, err := c.Union(ctx, server.UnionRequest{TableID: qt.ID, K: 10})
			return err
		},
		func() error {
			_, err := c.Keyword(ctx, server.KeywordRequest{Query: qt.Name, K: 10})
			return err
		},
	}
	for _, r := range reqs {
		if err := r(); err != nil {
			b.Fatal(err)
		}
	}

	var mu sync.Mutex
	lat := make([]time.Duration, 0, b.N)
	var next atomic.Uint64
	b.SetParallelism(4) // concurrent clients: fan-out QPS needs load
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 512)
		for pb.Next() {
			i := next.Add(1)
			t0 := time.Now()
			if err := reqs[i%uint64(len(reqs))](); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2])/float64(time.Microsecond), "p50-us")
	b.ReportMetric(float64(lat[len(lat)*99/100])/float64(time.Microsecond), "p99-us")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}
