// Package tablehound's root benchmark harness regenerates every
// experiment indexed in DESIGN.md (one benchmark per reproduced table
// or figure; the series itself is printed via b.Log and summarized in
// ReportMetric), plus microbenchmarks of the core substrates.
//
// Run with:
//
//	go test -bench=. -benchmem
package tablehound

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/exp"
	"tablehound/internal/hnsw"
	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lake"
	"tablehound/internal/lsh"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
	"tablehound/internal/sketch"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// benchExperiment runs one experiment per iteration, logging the
// regenerated table once and reporting a headline metric.
func benchExperiment(b *testing.B, id string, metricRow, metricCol int, metricName string) {
	b.Helper()
	run, ok := exp.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rep exp.Report
	for i := 0; i < b.N; i++ {
		rep = run()
	}
	b.Log("\n" + rep.String())
	if metricRow < len(rep.Rows) && metricCol < len(rep.Rows[metricRow]) {
		if v, err := strconv.ParseFloat(rep.Rows[metricRow][metricCol], 64); err == nil {
			b.ReportMetric(v, metricName)
		}
	}
}

// One benchmark per reproduced table/figure (see DESIGN.md index).

func BenchmarkE1LSHEnsemble(b *testing.B) { benchExperiment(b, "e1", 5, 2, "precision@32parts") }
func BenchmarkE2Josie(b *testing.B)       { benchExperiment(b, "e2", 14, 2, "adaptive_cost_k50") }
func BenchmarkE3TUS(b *testing.B)         { benchExperiment(b, "e3", 3, 1, "ensemble_MAP") }
func BenchmarkE4Santos(b *testing.B)      { benchExperiment(b, "e4", 0, 1, "santos_P@5") }
func BenchmarkE5Starmie(b *testing.B)     { benchExperiment(b, "e5", 2, 2, "contextual_MAP") }
func BenchmarkE6HNSW(b *testing.B)        { benchExperiment(b, "e6", 5, 1, "recall@ef320") }
func BenchmarkE7Annotate(b *testing.B)    { benchExperiment(b, "e7", 2, 1, "learned_accuracy") }
func BenchmarkE8Domain(b *testing.B)      { benchExperiment(b, "e8", 0, 1, "d4_NMI") }
func BenchmarkE9QCR(b *testing.B)         { benchExperiment(b, "e9", 2, 2, "qcr_precision@10") }
func BenchmarkE10Mate(b *testing.B)       { benchExperiment(b, "e10", 3, 4, "pruned_rows") }
func BenchmarkE11Pexeso(b *testing.B)     { benchExperiment(b, "e11", 4, 2, "fuzzy@0.8corruption") }
func BenchmarkE12Homograph(b *testing.B)  { benchExperiment(b, "e12", 1, 1, "precision@6") }
func BenchmarkE13Nav(b *testing.B)        { benchExperiment(b, "e13", 2, 2, "nav_cost_256") }
func BenchmarkE14Arda(b *testing.B)       { benchExperiment(b, "e14", 2, 1, "arda_RMSE") }
func BenchmarkE15Keyword(b *testing.B)    { benchExperiment(b, "e15", 0, 1, "bm25_MAP") }
func BenchmarkE16Scale(b *testing.B)      { benchExperiment(b, "e16", 6, 3, "josie_query_ms_16k") }
func BenchmarkE17KBvsLM(b *testing.B)     { benchExperiment(b, "e17", 2, 4, "hybrid_F1_cov0.3") }
func BenchmarkE18Stitch(b *testing.B)     { benchExperiment(b, "e18", 1, 2, "stitched_facts") }
func BenchmarkE19Learned(b *testing.B)    { benchExperiment(b, "e19", 4, 3, "learned_ns_1M_eps64") }
func BenchmarkE20QueryTime(b *testing.B)  { benchExperiment(b, "e20", 0, 1, "online_ms_1query") }
func BenchmarkE21Valentine(b *testing.B)  { benchExperiment(b, "e21", 8, 2, "combined_acc_renamed") }
func BenchmarkE22Aurum(b *testing.B)      { benchExperiment(b, "e22", 0, 1, "chains_recovered") }
func BenchmarkE23D3L(b *testing.B)        { benchExperiment(b, "e23", 11, 2, "combined_MAP_disjoint") }

// ---- Whole-system build pipeline ----

// benchLake is the 500-table lake both build benchmarks construct
// their System over; generation runs outside the timer.
func benchLake() (*lake.Catalog, core.Options) {
	gen := datagen.Generate(datagen.Config{
		Seed:              41,
		NumDomains:        20,
		DomainSize:        80,
		NumTemplates:      10,
		TablesPerTemplate: 50,
	})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		panic(err)
	}
	// The graph stage (Aurum) is quadratic in columns and would
	// dominate either run; skip it to measure the parallelizable work.
	return cat, core.Options{KB: gen.BuildKB(0.8), Seed: 7, SkipGraph: true}
}

func benchBuild(b *testing.B, parallelism int) {
	cat, opts := benchLake()
	opts.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemBuildSeq is the historical sequential build.
func BenchmarkSystemBuildSeq(b *testing.B) { benchBuild(b, 1) }

// BenchmarkSystemBuildPar is the concurrent pipeline at full width
// (Parallelism=0 → GOMAXPROCS). On a single-core runner the two are
// expected to tie; the speedup needs real cores.
func BenchmarkSystemBuildPar(b *testing.B) { benchBuild(b, 0) }

// ---- Snapshot save/load (vs BenchmarkSystemBuildPar) ----

// snapshotBench builds the 500-table bench system once and serializes
// it once; both run outside every timer.
var snapshotBench struct {
	once sync.Once
	sys  *core.System
	blob []byte
}

func snapshotBenchBlob(b *testing.B) (*core.System, []byte) {
	snapshotBench.once.Do(func() {
		cat, opts := benchLake()
		sys, err := core.Build(cat, opts)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			panic(err)
		}
		snapshotBench.sys = sys
		snapshotBench.blob = buf.Bytes()
	})
	if snapshotBench.sys == nil {
		b.Fatal("snapshot bench system failed to build")
	}
	return snapshotBench.sys, snapshotBench.blob
}

// BenchmarkSnapshotSave serializes the built 500-table system.
func BenchmarkSnapshotSave(b *testing.B) {
	sys, blob := snapshotBenchBlob(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad deserializes the snapshot back into a serving
// system. Compare against BenchmarkSystemBuildPar: the ratio is the
// startup speedup `lakeserved -snapshot` gets over building from CSVs.
func BenchmarkSnapshotLoad(b *testing.B) {
	_, blob := snapshotBenchBlob(b)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Load(bytes.NewReader(blob), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Query serving (per-surface latency + QPS throughput) ----

// querySystem builds one shared System over the 500-table bench lake
// for the query benchmarks; construction runs once per process,
// outside every timer.
var querySystem struct {
	once sync.Once
	sys  *core.System
}

func queryBenchSystem(b *testing.B) *core.System {
	querySystem.once.Do(func() {
		cat, opts := benchLake()
		sys, err := core.Build(cat, opts)
		if err != nil {
			panic(err)
		}
		querySystem.sys = sys
	})
	if querySystem.sys == nil {
		b.Fatal("query bench system failed to build")
	}
	return querySystem.sys
}

// queryBenchInputs picks deterministic representative queries: a mid-
// catalog table for union search and its widest string column for
// join search.
func queryBenchInputs(sys *core.System) (*table.Table, []string) {
	tables := sys.Catalog.Tables()
	qt := tables[len(tables)/2]
	var qvals []string
	for _, c := range qt.Columns {
		if c.Type == table.TypeString && len(c.Values) > len(qvals) {
			qvals = c.Values
		}
	}
	return qt, qvals
}

// BenchmarkQueryTUS measures one sequential TUS ensemble search — the
// bipartite-matching + hypergeometric hot loop.
func BenchmarkQueryTUS(b *testing.B) {
	sys := queryBenchSystem(b)
	qt, _ := queryBenchInputs(sys)
	sys.TUS.QueryParallelism = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TUS.Search(qt, 10, union.EnsembleMeasure); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTUSPar is the same search with per-query candidate
// scoring fanned over all cores (the latency knob for isolated
// queries; ties the sequential run on a single-core machine).
func BenchmarkQueryTUSPar(b *testing.B) {
	sys := queryBenchSystem(b)
	qt, _ := queryBenchInputs(sys)
	sys.TUS.QueryParallelism = 0
	defer func() { sys.TUS.QueryParallelism = 1 }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TUS.Search(qt, 10, union.EnsembleMeasure); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryJosie measures one exact top-k overlap search.
func BenchmarkQueryJosie(b *testing.B) {
	sys := queryBenchSystem(b)
	_, qvals := queryBenchInputs(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Join.TopKOverlap(qvals, 10)
	}
}

// BenchmarkQueryContainment measures one verified LSH Ensemble
// containment search.
func BenchmarkQueryContainment(b *testing.B) {
	sys := queryBenchSystem(b)
	_, qvals := queryBenchInputs(sys)
	sys.Join.QueryParallelism = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Join.ContainmentSearch(qvals, 0.5, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryJosieDict is BenchmarkQueryJosie with the query
// pre-encoded to dictionary IDs once, outside the loop — isolating
// the integer posting merge from normalization and encoding, the shape
// of a server re-running one query column against many k values.
func BenchmarkQueryJosieDict(b *testing.B) {
	sys := queryBenchSystem(b)
	_, qvals := queryBenchInputs(sys)
	q := sys.Join.EncodeQuery(qvals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Join.TopKOverlapQuery(q, 10)
	}
}

// BenchmarkQueryContainmentDict is BenchmarkQueryContainment over a
// pre-encoded query: signing runs from cached hashes and verification
// is a sorted-integer merge per candidate.
func BenchmarkQueryContainmentDict(b *testing.B) {
	sys := queryBenchSystem(b)
	_, qvals := queryBenchInputs(sys)
	sys.Join.QueryParallelism = 1
	q := sys.Join.EncodeQuery(qvals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Join.ContainmentSearchQuery(q, 0.5, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTUSDict measures the TUS set measure alone — the
// surface the dictionary rebuilt as hypergeometric scoring over
// integer-set overlaps.
func BenchmarkQueryTUSDict(b *testing.B) {
	sys := queryBenchSystem(b)
	qt, _ := queryBenchInputs(sys)
	sys.TUS.QueryParallelism = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TUS.Search(qt, 10, union.SetMeasure); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryKeyword measures one BM25 metadata search.
func BenchmarkQueryKeyword(b *testing.B) {
	sys := queryBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.KeywordSearch("records data", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryQPS drives a mixed read workload (keyword, join,
// containment, union) from GOMAXPROCS goroutines via b.RunParallel
// and reports aggregate throughput — the serving-side headline number.
func BenchmarkQueryQPS(b *testing.B) {
	sys := queryBenchSystem(b)
	qt, qvals := queryBenchInputs(sys)
	// Concurrent queries already saturate the cores; per-query fan-out
	// stays off so the measurement is pure inter-query throughput.
	sys.TUS.QueryParallelism = 1
	sys.Join.QueryParallelism = 1
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			switch i % 4 {
			case 0:
				if _, err := sys.KeywordSearch("records data", 10); err != nil {
					b.Fatal(err)
				}
			case 1:
				sys.Join.TopKOverlap(qvals, 10)
			case 2:
				if _, err := sys.Join.ContainmentSearch(qvals, 0.5, true); err != nil {
					b.Fatal(err)
				}
			case 3:
				if _, err := sys.TUS.Search(qt, 10, union.EnsembleMeasure); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// ---- Microbenchmarks of the substrates ----

func benchValues(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("value_%06d", i)
	}
	return out
}

func BenchmarkMinHashSign1k(b *testing.B) {
	h := minhash.NewHasher(128, 1)
	vals := benchValues(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sign(vals)
	}
}

func BenchmarkMinHashJaccard(b *testing.B) {
	h := minhash.NewHasher(128, 1)
	s1 := h.Sign(benchValues(500))
	s2 := h.Sign(benchValues(600))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minhash.Jaccard(s1, s2)
	}
}

func BenchmarkLSHQuery(b *testing.B) {
	h := minhash.NewHasher(128, 1)
	ix := lsh.New(32, 4)
	for i := 0; i < 5000; i++ {
		vals := make([]string, 50)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d_%d", i, j)
		}
		ix.Add(fmt.Sprintf("k%d", i), h.Sign(vals))
	}
	q := h.Sign(benchValues(50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q)
	}
}

func BenchmarkLSHEnsembleQuery(b *testing.B) {
	h := minhash.NewHasher(128, 1)
	ix := lshensemble.New(128, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := 10 + rng.Intn(500)
		vals := make([]string, n)
		for j := range vals {
			vals[j] = fmt.Sprintf("v%d_%d", i, j)
		}
		ix.Add(lshensemble.Domain{Key: fmt.Sprintf("k%d", i), Size: n, Sig: h.Sign(vals)})
	}
	if err := ix.Build(); err != nil {
		b.Fatal(err)
	}
	q := benchValues(100)
	sig := h.Sign(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(sig, 100, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJosieTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.2, 1, 20000)
	bld := invindex.NewBuilder()
	var query []string
	for i := 0; i < 10000; i++ {
		n := 10 + rng.Intn(40)
		vals := make([]string, n)
		for j := range vals {
			vals[j] = fmt.Sprintf("t%d", zipf.Uint64())
		}
		if i == 500 {
			query = vals
		}
		bld.Add(fmt.Sprintf("s%d", i), vals)
	}
	ix, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := josie.NewSearcher(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(query, 10, josie.Adaptive)
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := hnsw.New(hnsw.Config{M: 16, EfConstruction: 100, Seed: 3})
	dim := 64
	mk := func() embedding.Vector {
		v := make(embedding.Vector, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v.Normalize()
	}
	for i := 0; i < 10000; i++ {
		g.Add(fmt.Sprintf("v%d", i), mk())
	}
	q := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(q, 10, 64)
	}
}

func BenchmarkEmbeddingTrain(b *testing.B) {
	contexts := make([][]string, 200)
	for i := range contexts {
		contexts[i] = make([]string, 40)
		for j := range contexts[i] {
			contexts[i][j] = fmt.Sprintf("w%d", (i*7+j)%800)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embedding.Train(contexts, embedding.Config{Dim: 64, Seed: 1})
	}
}

func BenchmarkQCRTokens(b *testing.B) {
	keys := benchValues(1000)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i%97) - 48
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketch.QCRTokens(keys, vals, 256)
	}
}

func BenchmarkKMVAdd(b *testing.B) {
	s := sketch.NewKMV(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
