// Package tablehound is a from-scratch Go implementation of the table
// discovery architecture surveyed in "Table Discovery in Data Lakes:
// State-of-the-art and Future Directions" (Fan, Wang, Li, Miller —
// SIGMOD 2023): table understanding, indexing, query-driven search
// (keyword, joinable, unionable), navigation, and the data-science
// applications built on top of them.
//
// The implementation lives under internal/; the core entry point is
// internal/core.Build, which wires a lake catalog into a full
// discovery System. See README.md for the architecture map, DESIGN.md
// for the system inventory and experiment index, and EXPERIMENTS.md
// for the reproduced results of the surveyed systems.
package tablehound
