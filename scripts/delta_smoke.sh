#!/usr/bin/env bash
# Incremental-maintenance smoke test: build a 100-table base snapshot,
# index 10 new tables as a delta with `lakectl add` (no rebuild) and
# verify they are immediately queryable through the chain, tombstone
# one with `lakectl remove`, check merged queries are bit-identical to
# the compacted fold of the same chain, then serve the chain with
# lakeserved: /healthz reports the delta depth, POST /v1/admin/compact
# folds the chain into the base in place (retiring the delta files),
# and a SIGHUP reload lands on the compacted base — all with no
# restart.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
ADDR=127.0.0.1:18747
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/lakectl" ./cmd/lakectl
go build -o "$TMP/lakeserved" ./cmd/lakeserved

echo "== generating a 100-table lake plus 10 held-out tables"
"$TMP/lakectl" gen -out "$TMP/lake" -templates 20 -tables 5 -domains 16 -seed 3
"$TMP/lakectl" gen -out "$TMP/lake2" -templates 22 -tables 5 -domains 16 -seed 4
mkdir -p "$TMP/add" "$TMP/deltas"
cp "$TMP/lake2"/t020_*.csv "$TMP/lake2"/t021_*.csv "$TMP/add/"
[ "$(ls "$TMP/add" | wc -l)" -eq 10 ] || { echo "FAIL: expected 10 held-out tables" >&2; exit 1; }

echo "== building the base snapshot"
"$TMP/lakectl" build -lake "$TMP/lake" -o "$TMP/base.snap"

echo "== lakectl add: 10 new tables as a delta (no rebuild)"
"$TMP/lakectl" add -base "$TMP/base.snap" -o "$TMP/deltas/d1.thdb" "$TMP/add"/*.csv

echo "== added tables are queryable through the chain"
"$TMP/lakectl" union -snapshot "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" -table t020_00 -k 5
COL=$(head -1 "$TMP/add/t020_00.csv" | cut -d, -f1)
"$TMP/lakectl" join -snapshot "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" \
    -table t020_00 -column "$COL" -k 5 > "$TMP/join.out"
grep -q "t020_00\." "$TMP/join.out" \
    || { echo "FAIL: added table not joinable through the chain" >&2; exit 1; }

echo "== lakectl remove: tombstone one added table"
"$TMP/lakectl" remove -base "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" \
    -ids t020_01 -o "$TMP/deltas/d2.thdb"
if "$TMP/lakectl" union -snapshot "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" \
    -table t020_01 -k 5 2>/dev/null; then
    echo "FAIL: tombstoned table still resolvable through the chain" >&2
    exit 1
fi

echo "== delta chain visible in memstats"
"$TMP/lakectl" memstats -snapshot "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" > "$TMP/memstats.out"
grep -q "delta chain:      depth 2" "$TMP/memstats.out" \
    || { echo "FAIL: memstats does not report the chain" >&2; exit 1; }

echo "== compacted fold answers bit-identically to the merged chain"
"$TMP/lakectl" compact -base "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" -o "$TMP/compacted.snap"
for q in "search -q \"records data\" -k 5" \
         "join -table t020_00 -column $COL -k 5" \
         "union -table t020_00 -k 5" \
         "union -table t020_00 -k 5 -method d3l"; do
    eval "\"$TMP/lakectl\" $q -snapshot \"$TMP/base.snap\" -deltas \"$TMP/deltas/*.thdb\"" > "$TMP/chain.out"
    eval "\"$TMP/lakectl\" $q -snapshot \"$TMP/compacted.snap\"" > "$TMP/compact.out"
    diff "$TMP/chain.out" "$TMP/compact.out" \
        || { echo "FAIL: chain and compacted results differ for: $q" >&2; exit 1; }
done

echo "== serving the chain with lakeserved"
"$TMP/lakeserved" -snapshot "$TMP/base.snap" -deltas "$TMP/deltas/*.thdb" \
    -addr "$ADDR" -cache-entries 1024 &
SERVER_PID=$!

ready=""
for _ in $(seq 1 150); do
    if "$TMP/lakectl" stats -addr "$ADDR" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: server never became ready" >&2; exit 1; }

depth() {
    curl -sf "http://$ADDR/healthz" | sed -n 's/.*"delta_depth":\([0-9]*\).*/\1/p'
}

echo "== /healthz reports the chain depth"
[ "$(depth)" = "2" ] || { echo "FAIL: expected delta_depth 2, got '$(depth)'" >&2; exit 1; }
curl -sf "http://$ADDR/stats" | grep -q '"delta_count":2' \
    || { echo "FAIL: /stats missing the delta block" >&2; exit 1; }

echo "== queries see the delta tables while serving"
"$TMP/lakectl" query union -addr "$ADDR" -table t020_00 -k 5

echo "== POST /v1/admin/compact folds the chain in place"
curl -sf -X POST "http://$ADDR/v1/admin/compact"
echo
[ -z "$(depth)" ] || { echo "FAIL: expected delta_depth 0 after compact, got '$(depth)'" >&2; exit 1; }
ls "$TMP/deltas"/*.thdb 2>/dev/null && { echo "FAIL: delta files not retired after compact" >&2; exit 1; }
ls "$TMP/deltas"/*.thdb.applied >/dev/null \
    || { echo "FAIL: retired delta files missing" >&2; exit 1; }

echo "== SIGHUP reload lands on the compacted base"
kill -HUP "$SERVER_PID"
sleep 1
"$TMP/lakectl" query union -addr "$ADDR" -table t020_00 -k 5 >/dev/null
"$TMP/lakectl" query search -addr "$ADDR" -q "records data" -k 5 >/dev/null

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
    echo "FAIL: lakeserved exited non-zero on SIGTERM" >&2
    exit 1
fi
SERVER_PID=""

echo "PASS: delta smoke"
