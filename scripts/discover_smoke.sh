#!/usr/bin/env bash
# Conditional-discovery smoke test: structured /v1/discover queries
# against a real daemon — offline planner, client mode, predicates +
# explain, byte parity with the bare union endpoint, uniform 400 on
# bad queries, per-stage observability — then the same endpoint
# through the router over a 2-shard fleet, including graceful
# degradation with one shard down, and clean SIGTERM drains.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
ADDR=127.0.0.1:18761
SHARD0=127.0.0.1:18762
SHARD1=127.0.0.1:18763
ROUTER=127.0.0.1:18764
PID=""
PID0=""
PID1=""
PIDR=""
cleanup() {
    for p in "$PID" "$PID0" "$PID1" "$PIDR"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_healthy() { # url pattern
    for _ in $(seq 1 150); do
        if curl -sf "$1" 2>/dev/null | grep -q "$2"; then
            return 0
        fi
        sleep 0.2
    done
    echo "FAIL: $1 never matched $2" >&2
    exit 1
}

echo "== building binaries"
go build -o "$TMP/lakectl" ./cmd/lakectl
go build -o "$TMP/lakeserved" ./cmd/lakeserved

echo "== generating 40-table lake"
"$TMP/lakectl" gen -out "$TMP/lake" -templates 10 -tables 4 -domains 8 -seed 7

TABLE=$(basename "$(ls "$TMP/lake"/*.csv | head -1)" .csv)
COL=$(head -1 "$TMP/lake/$TABLE.csv" | cut -d, -f1)
VALUES=$(awk -F, 'NR>1 && $1 != "" {print $1}' "$TMP/lake/$TABLE.csv" | head -8 | paste -sd, -)

echo "== offline planner: union seed + schema predicate + explain"
"$TMP/lakectl" discover -lake "$TMP/lake" -table "$TABLE" -relation union \
    -col-names "$COL" -min-rows 1 -k 5 -explain | tee "$TMP/offline.txt"
grep -q prefilter_meta "$TMP/offline.txt" \
    || { echo "FAIL: offline explain lacks prefilter_meta" >&2; exit 1; }

echo "== cost planner: selective keyword reorders ahead of a total meta predicate"
"$TMP/lakectl" discover -lake "$TMP/lake" -table "$TABLE" -relation union \
    -keywords "$TABLE" -min-rows 1 -k 5 -explain | tee "$TMP/reorder.txt"
FIRST=$(grep -Eo 'prefilter_[a-z]+' "$TMP/reorder.txt" | head -1)
[ "$FIRST" = prefilter_keyword ] \
    || { echo "FAIL: first prefilter is $FIRST, want prefilter_keyword" >&2; exit 1; }
grep -E 'prefilter_meta .*skipped' "$TMP/reorder.txt" >/dev/null \
    || { echo "FAIL: provably-total min-rows=1 meta stage not skipped" >&2; exit 1; }
grep -q 'est_out=' "$TMP/reorder.txt" \
    || { echo "FAIL: explain lacks est_out estimates" >&2; exit 1; }

echo "== building snapshot, serving on $ADDR"
"$TMP/lakectl" build -lake "$TMP/lake" -o "$TMP/lake.snap"
"$TMP/lakeserved" -snapshot "$TMP/lake.snap" -addr "$ADDR" \
    -cache-entries 1024 >"$TMP/serve.log" 2>&1 &
PID=$!
wait_healthy "http://$ADDR/healthz" '"status":"ok"'

echo "== client mode: join relation seeded by values"
"$TMP/lakectl" discover -addr "$ADDR" -values "$VALUES" -relation join -k 5

echo "== predicated discover with explain over HTTP"
curl -sf "http://$ADDR/v1/discover" -d "{
    \"table_id\": \"$TABLE\", \"relation\": \"union\", \"k\": 5,
    \"predicates\": {\"column_names\": [\"$COL\"], \"min_rows\": 1},
    \"explain\": true
}" | tee "$TMP/explain.json" | grep -q '"stage":"prefilter_meta"' \
    || { echo "FAIL: no prefilter_meta stage: $(cat "$TMP/explain.json")" >&2; exit 1; }
grep -q '"stage":"verify"' "$TMP/explain.json" \
    || { echo "FAIL: no verify stage" >&2; exit 1; }

echo "== unpredicated discover is byte-identical to /v1/union"
curl -sf "http://$ADDR/v1/union" \
    -d "{\"table_id\":\"$TABLE\",\"k\":5,\"method\":\"tus\"}" >"$TMP/union.json"
curl -sf "http://$ADDR/v1/discover" \
    -d "{\"table_id\":\"$TABLE\",\"relation\":\"union\",\"k\":5,\"method\":\"tus\"}" >"$TMP/discover.json"
cmp -s "$TMP/union.json" "$TMP/discover.json" \
    || { echo "FAIL: discover != union:" >&2; diff "$TMP/union.json" "$TMP/discover.json" >&2; exit 1; }

echo "== bad queries are uniform 400s"
for body in \
    "{\"table_id\":\"$TABLE\",\"relation\":\"union\"}" \
    "{\"table_id\":\"$TABLE\",\"relation\":\"psychic\",\"k\":5}" \
    "{\"k\":5}"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/discover" -d "$body")
    [ "$code" = 400 ] || { echo "FAIL: $body returned $code, want 400" >&2; exit 1; }
done

echo "== per-stage observability in /stats and /metrics"
curl -sf "http://$ADDR/stats" | grep -q '"prefilter_meta"' \
    || { echo "FAIL: /stats has no discover stage block" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q lakeserved_discover_stage_seconds \
    || { echo "FAIL: /metrics has no discover stage histogram" >&2; exit 1; }

echo "== draining single server"
kill -TERM "$PID"
wait "$PID" || { echo "FAIL: lakeserved exited non-zero on SIGTERM" >&2; exit 1; }
PID=""

echo "== partitioning into a 2-shard fleet behind the router"
"$TMP/lakectl" build -lake "$TMP/lake" -o "$TMP/shards.snap" -shards 2
"$TMP/lakeserved" -manifest "$TMP/shards.manifest" -shard 0 -addr "$SHARD0" \
    >"$TMP/shard0.log" 2>&1 &
PID0=$!
"$TMP/lakeserved" -manifest "$TMP/shards.manifest" -shard 1 -addr "$SHARD1" \
    >"$TMP/shard1.log" 2>&1 &
PID1=$!
"$TMP/lakeserved" -router -shard-addrs "$SHARD0,$SHARD1" -addr "$ROUTER" \
    -health-interval 300ms >"$TMP/router.log" 2>&1 &
PIDR=$!
wait_healthy "http://$ROUTER/healthz" '"shards_ok":"2/2"'

echo "== discover through the router (table owned by one shard)"
"$TMP/lakectl" discover -addr "$ROUTER" -table "$TABLE" -relation union \
    -col-names "$COL" -k 5 -explain

echo "== killing shard 1; discover must degrade, not fail"
kill -TERM "$PID1" && wait "$PID1" || true
PID1=""
code=$(curl -s -o "$TMP/degraded.json" -w '%{http_code}' "http://$ROUTER/v1/discover" \
    -d "{\"values\":[\"${VALUES%%,*}\"],\"relation\":\"join\",\"k\":4}")
[ "$code" = 200 ] || { echo "FAIL: degraded discover returned $code" >&2; exit 1; }
grep -q '"shards_ok":"1/2"' "$TMP/degraded.json" \
    || { echo "FAIL: degraded discover lacks shards_ok 1/2: $(cat "$TMP/degraded.json")" >&2; exit 1; }

echo "== graceful shutdown (router, then surviving shard)"
kill -TERM "$PIDR"
wait "$PIDR" || { echo "FAIL: router exited non-zero on SIGTERM" >&2; exit 1; }
PIDR=""
kill -TERM "$PID0"
wait "$PID0" || { echo "FAIL: shard 0 exited non-zero" >&2; exit 1; }
PID0=""

echo "PASS: discover smoke"
