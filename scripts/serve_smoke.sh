#!/usr/bin/env bash
# Serving-layer smoke test: build the binaries, generate a 100-table
# lake, start lakeserved, run one query per endpoint through lakectl's
# client mode, and verify a clean SIGTERM shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
ADDR=127.0.0.1:18742
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/lakectl" ./cmd/lakectl
go build -o "$TMP/lakeserved" ./cmd/lakeserved

echo "== generating 100-table lake"
"$TMP/lakectl" gen -out "$TMP/lake" -templates 20 -tables 5 -domains 16 -seed 3

echo "== starting lakeserved on $ADDR"
"$TMP/lakeserved" -lake "$TMP/lake" -addr "$ADDR" -cache-entries 1024 &
SERVER_PID=$!

echo "== waiting for readiness"
ready=""
for _ in $(seq 1 150); do
    if "$TMP/lakectl" stats -addr "$ADDR" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: server never became ready" >&2; exit 1; }

TABLE=$(basename "$(ls "$TMP/lake"/*.csv | head -1)" .csv)
VALUES=$(awk -F, 'NR>1 && $1 != "" {print $1}' "$TMP/lake/$TABLE.csv" | head -8 | paste -sd, -)
FIRST_VALUE=${VALUES%%,*}

echo "== /v1/keyword (lakectl query search)"
"$TMP/lakectl" query search -addr "$ADDR" -q "$FIRST_VALUE data" -k 5

echo "== /v1/keyword values mode (lakectl query vsearch)"
"$TMP/lakectl" query vsearch -addr "$ADDR" -q "$FIRST_VALUE" -k 5

echo "== /v1/join (lakectl query join)"
"$TMP/lakectl" query join -addr "$ADDR" -values "$VALUES" -k 5

echo "== /v1/join containment mode"
"$TMP/lakectl" query join -addr "$ADDR" -values "$VALUES" -k 5 -mode containment -threshold 0.3

echo "== /v1/union (lakectl query union)"
"$TMP/lakectl" query union -addr "$ADDR" -table "$TABLE" -k 5

echo "== /stats (lakectl stats -addr)"
"$TMP/lakectl" stats -addr "$ADDR"

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
    echo "FAIL: lakeserved exited non-zero on SIGTERM" >&2
    exit 1
fi
SERVER_PID=""

echo "PASS: serve smoke"
