#!/usr/bin/env bash
# Sharded-serving smoke test: partition a generated lake into 2 shard
# snapshots with `lakectl build -shards`, serve each shard with its
# own lakeserved, put the router in front, query every endpoint
# through it, kill one shard and verify graceful degradation (HTTP 200
# with shards_ok 1/2, never a 5xx), bring the shard back, roll a
# reload across the fleet, and shut everything down cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SHARD0=127.0.0.1:18751
SHARD1=127.0.0.1:18752
ROUTER=127.0.0.1:18753
PID0=""
PID1=""
PIDR=""
cleanup() {
    for p in "$PID0" "$PID1" "$PIDR"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/lakectl" ./cmd/lakectl
go build -o "$TMP/lakeserved" ./cmd/lakeserved

echo "== generating 100-table lake"
"$TMP/lakectl" gen -out "$TMP/lake" -templates 20 -tables 5 -domains 16 -seed 3

echo "== partitioning into 2 shard snapshots"
"$TMP/lakectl" build -lake "$TMP/lake" -o "$TMP/lake.snap" -shards 2
for f in lake.0.snap lake.1.snap lake.manifest; do
    [ -f "$TMP/$f" ] || { echo "FAIL: missing $f" >&2; exit 1; }
done

# The daemon's output must be redirected away from our stdout, and the
# process must be backgrounded in this shell (not a command-substitution
# subshell) so that `wait` can observe its exit status. The caller reads
# the pid from $! after the function returns.
start_shard() { # index addr
    "$TMP/lakeserved" -manifest "$TMP/lake.manifest" -shard "$1" -addr "$2" \
        -cache-entries 1024 >"$TMP/shard$1.log" 2>&1 &
}

echo "== starting shard servers"
start_shard 0 "$SHARD0"
PID0=$!
start_shard 1 "$SHARD1"
PID1=$!

echo "== starting router on $ROUTER"
"$TMP/lakeserved" -router -shard-addrs "$SHARD0,$SHARD1" -addr "$ROUTER" \
    -cache-entries 1024 -health-interval 300ms >"$TMP/router.log" 2>&1 &
PIDR=$!

echo "== waiting for the fleet"
ready=""
for _ in $(seq 1 150); do
    if curl -sf "http://$ROUTER/healthz" 2>/dev/null | grep -q '"shards_ok":"2/2"'; then
        ready=1
        break
    fi
    for p in "$PID0" "$PID1" "$PIDR"; do
        kill -0 "$p" 2>/dev/null || { echo "FAIL: a process exited during startup" >&2; exit 1; }
    done
    sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: router never saw 2/2 shards" >&2; exit 1; }

echo "== shard /healthz reports identity"
curl -sf "http://$SHARD0/healthz" | grep -q '"shard":{"index":0,"count":2' \
    || { echo "FAIL: shard 0 healthz has no shard block" >&2; exit 1; }

TABLE=$(basename "$(ls "$TMP/lake"/*.csv | head -1)" .csv)
VALUES=$(awk -F, 'NR>1 && $1 != "" {print $1}' "$TMP/lake/$TABLE.csv" | head -8 | paste -sd, -)
FIRST_VALUE=${VALUES%%,*}

echo "== every endpoint through the router"
"$TMP/lakectl" query search -addr "$ROUTER" -q "$FIRST_VALUE data" -k 5
"$TMP/lakectl" query vsearch -addr "$ROUTER" -q "$FIRST_VALUE" -k 5
"$TMP/lakectl" query join -addr "$ROUTER" -values "$VALUES" -k 5
"$TMP/lakectl" query union -addr "$ROUTER" -table "$TABLE" -k 5

echo "== complete responses carry no shards_ok"
body=$(curl -sf -X POST "http://$ROUTER/v1/join" -d "{\"values\":[\"$FIRST_VALUE\"],\"k\":3}")
echo "$body" | grep -q shards_ok && { echo "FAIL: complete response has shards_ok: $body" >&2; exit 1; }

echo "== remote bench fan-out (per-shard vs aggregate)"
"$TMP/lakectl" bench-qps -addr "$SHARD0,$SHARD1" -q "$FIRST_VALUE data" \
    -values "$VALUES" -queries 20 -goroutines 2 -k 5

echo "== killing shard 1; router must degrade, not fail"
kill -TERM "$PID1" && wait "$PID1" || true
PID1=""
# Use a request body the fleet has not seen: the complete k=3 answer
# above is cached, and the router deliberately keeps serving cached
# complete answers through an outage (no shards_ok on a cache hit).
code=$(curl -s -o "$TMP/degraded.json" -w '%{http_code}' -X POST \
    "http://$ROUTER/v1/join" -d "{\"values\":[\"$FIRST_VALUE\"],\"k\":4}")
[ "$code" = 200 ] || { echo "FAIL: degraded query returned $code" >&2; exit 1; }
grep -q '"shards_ok":"1/2"' "$TMP/degraded.json" \
    || { echo "FAIL: degraded response lacks shards_ok 1/2: $(cat "$TMP/degraded.json")" >&2; exit 1; }

echo "== router /healthz shows the outage (still HTTP 200)"
hcode=$(curl -s -o "$TMP/health.json" -w '%{http_code}' "http://$ROUTER/healthz")
[ "$hcode" = 200 ] || { echo "FAIL: degraded healthz returned $hcode" >&2; exit 1; }

echo "== restarting shard 1"
start_shard 1 "$SHARD1"
PID1=$!
recovered=""
for _ in $(seq 1 150); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"shards_ok":"2/2"'; then
        recovered=1
        break
    fi
    sleep 0.2
done
[ -n "$recovered" ] || { echo "FAIL: router never recovered to 2/2" >&2; exit 1; }

echo "== rolling reload across the fleet"
curl -sf -X POST "http://$ROUTER/v1/admin/reload" | tee "$TMP/reload.json" | grep -q '"shards_ok":"2/2"' \
    || { echo "FAIL: rolling reload not 2/2: $(cat "$TMP/reload.json")" >&2; exit 1; }
echo

echo "== queries still answer after the reload"
"$TMP/lakectl" query search -addr "$ROUTER" -q "$FIRST_VALUE data" -k 5 >/dev/null

echo "== graceful shutdown (router first, then shards)"
kill -TERM "$PIDR"
wait "$PIDR" || { echo "FAIL: router exited non-zero on SIGTERM" >&2; exit 1; }
PIDR=""
kill -TERM "$PID0" "$PID1"
wait "$PID0" || { echo "FAIL: shard 0 exited non-zero" >&2; exit 1; }
wait "$PID1" || { echo "FAIL: shard 1 exited non-zero" >&2; exit 1; }
PID0=""
PID1=""

echo "PASS: shard smoke"
