#!/usr/bin/env bash
# Snapshot-lifecycle smoke test: build the binaries, generate a
# 100-table lake, build it once into a snapshot with `lakectl build`,
# start lakeserved from the snapshot (no CSV parsing on the serving
# path), run one query per endpoint, hot-reload a second snapshot via
# SIGHUP and via POST /v1/admin/reload, and verify a clean SIGTERM
# shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
ADDR=127.0.0.1:18743
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/lakectl" ./cmd/lakectl
go build -o "$TMP/lakeserved" ./cmd/lakeserved

echo "== generating 100-table lake"
"$TMP/lakectl" gen -out "$TMP/lake" -templates 20 -tables 5 -domains 16 -seed 3

echo "== building snapshot with lakectl build"
"$TMP/lakectl" build -lake "$TMP/lake" -o "$TMP/lake.snap"

echo "== verifying the snapshot round-trips through lakectl"
"$TMP/lakectl" memstats -snapshot "$TMP/lake.snap" >/dev/null

echo "== starting lakeserved from the snapshot on $ADDR"
"$TMP/lakeserved" -snapshot "$TMP/lake.snap" -addr "$ADDR" -cache-entries 1024 &
SERVER_PID=$!

echo "== waiting for readiness"
ready=""
for _ in $(seq 1 150); do
    if "$TMP/lakectl" stats -addr "$ADDR" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: server never became ready" >&2; exit 1; }

TABLE=$(basename "$(ls "$TMP/lake"/*.csv | head -1)" .csv)
VALUES=$(awk -F, 'NR>1 && $1 != "" {print $1}' "$TMP/lake/$TABLE.csv" | head -8 | paste -sd, -)
FIRST_VALUE=${VALUES%%,*}

echo "== /v1/keyword (lakectl query search)"
"$TMP/lakectl" query search -addr "$ADDR" -q "$FIRST_VALUE data" -k 5

echo "== /v1/keyword values mode (lakectl query vsearch)"
"$TMP/lakectl" query vsearch -addr "$ADDR" -q "$FIRST_VALUE" -k 5

echo "== /v1/join (lakectl query join)"
"$TMP/lakectl" query join -addr "$ADDR" -values "$VALUES" -k 5

echo "== /v1/join containment mode"
"$TMP/lakectl" query join -addr "$ADDR" -values "$VALUES" -k 5 -mode containment -threshold 0.3

echo "== /v1/union (lakectl query union)"
"$TMP/lakectl" query union -addr "$ADDR" -table "$TABLE" -k 5

echo "== /stats (lakectl stats -addr)"
"$TMP/lakectl" stats -addr "$ADDR"

swaps() {
    curl -sf "http://$ADDR/metrics" | awk '/^lakeserved_snapshot_swaps_total/ {print $2}'
}

echo "== hot reload via SIGHUP"
before=$(swaps)
kill -HUP "$SERVER_PID"
reloaded=""
for _ in $(seq 1 100); do
    after=$(swaps || echo "$before")
    if [ "${after:-0}" -gt "${before:-0}" ]; then
        reloaded=1
        break
    fi
    sleep 0.2
done
[ -n "$reloaded" ] || { echo "FAIL: SIGHUP did not swap the snapshot" >&2; exit 1; }

echo "== hot reload via POST /v1/admin/reload"
before=$(swaps)
curl -sf -X POST "http://$ADDR/v1/admin/reload"
echo
after=$(swaps)
if [ "${after:-0}" -le "${before:-0}" ]; then
    echo "FAIL: admin reload did not swap the snapshot" >&2
    exit 1
fi

echo "== queries still answer after reloads"
"$TMP/lakectl" query search -addr "$ADDR" -q "$FIRST_VALUE data" -k 5 >/dev/null
"$TMP/lakectl" stats -addr "$ADDR" >/dev/null

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
    echo "FAIL: lakeserved exited non-zero on SIGTERM" >&2
    exit 1
fi
SERVER_PID=""

echo "PASS: snapshot smoke"
