package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Hello  World ", "hello world"},
		{"ABC", "abc"},
		{"a\t b\n c", "a b c"},
		{"", ""},
		{"   ", ""},
		{"single", "single"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool { return Normalize(Normalize(s)) == Normalize(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	got := Words("Hello, World! foo_bar 42")
	want := []string{"hello", "world", "foo", "bar", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
	if Words("") != nil {
		t.Error("Words(\"\") should be nil")
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("The price of a car")
	want := []string{"price", "car"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("database") {
		t.Error("stopword classification wrong")
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams = %v, want %v", got, want)
	}
	if QGrams("x", 0) != nil {
		t.Error("q=0 should yield nil")
	}
	// Unicode safety.
	for _, g := range QGrams("héllo", 3) {
		if len([]rune(g)) != 3 {
			t.Errorf("gram %q has %d runes", g, len([]rune(g)))
		}
	}
}

func TestQGramCount(t *testing.T) {
	f := func(s string, q uint8) bool {
		qq := int(q%5) + 1
		grams := QGrams(s, qq)
		want := len([]rune(s)) + qq - 1 // padded length minus q plus 1
		if want < 1 {
			want = 1
		}
		return len(grams) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSet(t *testing.T) {
	got := NormalizeSet([]string{"A", " a ", "b", "", "B"})
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeSet = %v, want %v", got, want)
	}
}
