// Package tokenize provides value normalization and tokenization
// shared by every text-processing component: set-similarity search
// works on normalized cell values, keyword search and embeddings work
// on word tokens, and fuzzy matching works on character q-grams.
package tokenize

import (
	"strings"
	"unicode"
)

// Normalize canonicalizes a cell value: lowercase, trim, and collapse
// internal whitespace runs to single spaces. All set-overlap measures
// in the library compare normalized values.
func Normalize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.ContainsAny(s, " \t\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// Words splits a string into lowercase alphanumeric word tokens.
func Words(s string) []string {
	s = strings.ToLower(s)
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// stopwords is a compact English stopword list adequate for table
// metadata; discovery quality is insensitive to its exact contents.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"of": true, "in": true, "on": true, "to": true, "for": true,
	"by": true, "with": true, "at": true, "from": true, "as": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"this": true, "that": true, "it": true, "its": true,
}

// IsStopword reports whether w is a common English stopword.
func IsStopword(w string) bool { return stopwords[w] }

// ContentWords returns Words(s) with stopwords removed.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0]
	for _, w := range ws {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

// QGrams returns the padded character q-grams of s. Padding with '#'
// and '$' gives prefix/suffix grams weight, the standard construction
// for error-tolerant matching.
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	padded := strings.Repeat("#", q-1) + s + strings.Repeat("$", q-1)
	r := []rune(padded)
	if len(r) < q {
		return []string{string(r)}
	}
	out := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		out = append(out, string(r[i:i+q]))
	}
	return out
}

// NormalizeSet normalizes every value and deduplicates, returning the
// distinct normalized set. Empty values are dropped.
func NormalizeSet(values []string) []string {
	seen := make(map[string]bool, len(values))
	out := make([]string, 0, len(values))
	for _, v := range values {
		n := Normalize(v)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}
