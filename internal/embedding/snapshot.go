package embedding

import (
	"fmt"
	"sort"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the trained model: its config (the OOV
// fallback path re-derives char-gram vectors from Dim/CharGramQ/Seed
// at query time, so the config is part of the model's behavior) and
// the token vectors in sorted token order.
func (m *Model) AppendSnapshot(e *snap.Encoder) {
	e.U32(uint32(m.cfg.Dim))
	e.U64(m.cfg.Seed)
	e.U32(uint32(m.cfg.MinCount))
	e.U32(uint32(m.cfg.CharGramQ))
	toks := make([]string, 0, len(m.vecs))
	for t := range m.vecs {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	e.U32(uint32(len(toks)))
	for _, t := range toks {
		e.Str(t)
		e.F32s(m.vecs[t])
	}
}

// DecodeSnapshot rebuilds a model written by AppendSnapshot.
func DecodeSnapshot(d *snap.Decoder) (*Model, error) {
	cfg := Config{
		Dim:       int(d.U32()),
		Seed:      d.U64(),
		MinCount:  int(d.U32()),
		CharGramQ: int(d.U32()),
	}
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("%w: model dimension %d", snap.ErrCorrupt, cfg.Dim)
	}
	m := &Model{cfg: cfg, vecs: make(map[string]Vector, n)}
	for i := 0; i < n; i++ {
		tok := d.Str()
		vec := d.F32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if len(vec) != cfg.Dim {
			return nil, fmt.Errorf("%w: token %q vector has %d dims, want %d", snap.ErrCorrupt, tok, len(vec), cfg.Dim)
		}
		m.vecs[tok] = vec
	}
	if len(m.vecs) != n {
		return nil, fmt.Errorf("%w: duplicate token in model snapshot", snap.ErrCorrupt)
	}
	return m, nil
}
