package embedding

import (
	"fmt"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the trained model: its config (the OOV
// fallback path re-derives char-gram vectors from Dim/CharGramQ/Seed
// at query time, so the config is part of the model's behavior) and
// the vocabulary in sorted order. The vectors themselves live in the
// snapshot's shared vector block — row i of the model's segment is
// Tokens()[i]'s vector — so decoding the section never copies them.
func (m *Model) AppendSnapshot(e *snap.Encoder) {
	e.U32(uint32(m.cfg.Dim))
	e.U64(m.cfg.Seed)
	e.U32(uint32(m.cfg.MinCount))
	e.U32(uint32(m.cfg.CharGramQ))
	e.Strs(m.Tokens())
}

// DecodeSnapshot rebuilds a model written by AppendSnapshot; at(i)
// must return row i of the model's vector-store segment, which holds
// n rows.
func DecodeSnapshot(d *snap.Decoder, at func(int) []float32, n int) (*Model, error) {
	cfg := Config{
		Dim:       int(d.U32()),
		Seed:      d.U64(),
		MinCount:  int(d.U32()),
		CharGramQ: int(d.U32()),
	}
	toks := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("%w: model dimension %d", snap.ErrCorrupt, cfg.Dim)
	}
	if len(toks) != n {
		return nil, fmt.Errorf("%w: model has %d tokens, vector segment %d rows", snap.ErrCorrupt, len(toks), n)
	}
	m := &Model{cfg: cfg, vecs: make(map[string]Vector, len(toks))}
	for i, tok := range toks {
		vec := Vector(at(i))
		if len(vec) != cfg.Dim {
			return nil, fmt.Errorf("%w: token %q vector has %d dims, want %d", snap.ErrCorrupt, tok, len(vec), cfg.Dim)
		}
		m.vecs[tok] = vec
	}
	if len(m.vecs) != len(toks) {
		return nil, fmt.Errorf("%w: duplicate token in model snapshot", snap.ErrCorrupt)
	}
	return m, nil
}
