package embedding

import "math"

// Vector is a dense float32 embedding.
type Vector []float32

// Zero returns an all-zero vector of the given dimension.
func Zero(dim int) Vector { return make(Vector, dim) }

// Dot returns the inner product.
func (v Vector) Dot(o Vector) float64 {
	var s float64
	for i := range v {
		s += float64(v[i]) * float64(o[i])
	}
	return s
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Cosine returns the cosine similarity of a and b (0 for zero vectors).
func Cosine(a, b Vector) float64 {
	return CosineWithNorms(a, b, a.Norm(), b.Norm())
}

// CosineWithNorms is Cosine for callers that already know both norms
// (the vector store precomputes them at build time), reducing the hot
// path to a single dot product. Passing exactly a.Norm() and b.Norm()
// makes the result bit-identical to Cosine.
func CosineWithNorms(a, b Vector, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Normalize scales v to unit norm in place and returns it. Zero
// vectors are returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Add accumulates o into v.
func (v Vector) Add(o Vector) {
	for i := range v {
		v[i] += o[i]
	}
}

// AddScaled accumulates f*o into v.
func (v Vector) AddScaled(o Vector, f float64) {
	ff := float32(f)
	for i := range v {
		v[i] += ff * o[i]
	}
}

// Scale multiplies v by f in place.
func (v Vector) Scale(f float64) {
	ff := float32(f)
	for i := range v {
		v[i] *= ff
	}
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Mean returns the arithmetic mean of the vectors, or a zero vector of
// dimension dim when the list is empty.
func Mean(vs []Vector, dim int) Vector {
	out := Zero(dim)
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		out.Add(v)
	}
	out.Scale(1 / float64(len(vs)))
	return out
}
