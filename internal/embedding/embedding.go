// Package embedding provides deterministic, corpus-trained dense
// representations of data-lake values and columns. It substitutes for
// the pre-trained word embeddings and language-model encoders the
// surveyed systems use (TUS's fastText, PEXESO's word vectors,
// Starmie's contextualized encoders) while remaining fully offline:
//
//   - Training uses random indexing: every token owns a deterministic
//     hash-derived ±1 "index vector", and a token's embedding is the
//     idf-weighted sum of the index vectors of tokens it co-occurs
//     with. This is a streaming random projection of the co-occurrence
//     (PMI-like) matrix, so values from the same semantic domain —
//     which co-occur in the lake's columns — land close in cosine
//     space, the property TUS and PEXESO rely on.
//   - Out-of-vocabulary values fall back to character q-gram vectors
//     (fastText subword style), so typo variants of the same string
//     remain close — the property fuzzy joins rely on.
package embedding

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"tablehound/internal/tokenize"
)

// hashToken maps a token+seed to a 64-bit value.
func hashToken(tok string, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tok))
	x := h.Sum64() ^ (seed * 0x9e3779b97f4a7c15)
	// splitmix finalizer.
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RandomVector returns the deterministic ±1 index vector of a token.
func RandomVector(tok string, dim int, seed uint64) Vector {
	v := make(Vector, dim)
	x := hashToken(tok, seed)
	for i := 0; i < dim; i++ {
		// Refresh the bit pool every 64 dims.
		if i%64 == 0 && i > 0 {
			x = hashToken(tok, seed+uint64(i))
		}
		if x&(1<<(uint(i)%64)) != 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}

// CharGramVector returns the unit-normalized sum of the index vectors
// of the string's padded character q-grams. Strings at small edit
// distance share most grams and therefore have high cosine similarity.
func CharGramVector(s string, dim, q int, seed uint64) Vector {
	out := Zero(dim)
	for _, g := range tokenize.QGrams(tokenize.Normalize(s), q) {
		out.Add(RandomVector(g, dim, seed))
	}
	return out.Normalize()
}

// Config controls training.
type Config struct {
	Dim  int    // embedding dimension (default 64)
	Seed uint64 // determinism seed
	// MinCount drops tokens seen in fewer contexts (default 1).
	MinCount int
	// CharGramQ is the q used for OOV fallback vectors (default 3).
	CharGramQ int
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.MinCount <= 0 {
		c.MinCount = 1
	}
	if c.CharGramQ <= 0 {
		c.CharGramQ = 3
	}
	return c
}

// Model holds trained token embeddings plus the OOV fallback.
type Model struct {
	cfg  Config
	vecs map[string]Vector
}

// Train learns embeddings from contexts: each context is a bag of
// tokens considered mutually related (typically the distinct values of
// one data-lake column). Tokens are used verbatim; callers normalize.
func Train(contexts [][]string, cfg Config) *Model {
	cfg = cfg.withDefaults()
	// Pass 1: context frequency per token, for idf weighting.
	df := make(map[string]int)
	for _, ctx := range contexts {
		seen := make(map[string]bool, len(ctx))
		for _, t := range ctx {
			if t != "" && !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(contexts))
	idf := func(t string) float64 {
		return math.Log(1 + n/float64(df[t]))
	}
	// Pass 2: accumulate idf-weighted context sums.
	m := &Model{cfg: cfg, vecs: make(map[string]Vector)}
	for _, ctx := range contexts {
		distinct := make([]string, 0, len(ctx))
		seen := make(map[string]bool, len(ctx))
		for _, t := range ctx {
			if t != "" && !seen[t] {
				seen[t] = true
				distinct = append(distinct, t)
			}
		}
		if len(distinct) < 2 {
			continue
		}
		sum := Zero(cfg.Dim)
		rvs := make([]Vector, len(distinct))
		ws := make([]float64, len(distinct))
		for i, t := range distinct {
			rvs[i] = RandomVector(t, cfg.Dim, cfg.Seed)
			ws[i] = idf(t)
			sum.AddScaled(rvs[i], ws[i])
		}
		for i, t := range distinct {
			v, ok := m.vecs[t]
			if !ok {
				v = Zero(cfg.Dim)
				m.vecs[t] = v
			}
			// Context sum minus own contribution: a token is embedded
			// by its company, not itself.
			v.Add(sum)
			v.AddScaled(rvs[i], -ws[i])
		}
	}
	for t, v := range m.vecs {
		if df[t] < cfg.MinCount {
			delete(m.vecs, t)
			continue
		}
		v.Normalize()
	}
	return m
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.cfg.Dim }

// Clone returns a deep copy of the model. Rebind mutates the vector
// map in place, so two systems that must not share backing memory
// (e.g. a base snapshot and a delta build pinned to its model) each
// take their own clone.
func (m *Model) Clone() *Model {
	out := &Model{cfg: m.cfg, vecs: make(map[string]Vector, len(m.vecs))}
	for t, v := range m.vecs {
		cp := make(Vector, len(v))
		copy(cp, v)
		out.vecs[t] = cp
	}
	return out
}

// Tokens returns the vocabulary in sorted order — the canonical row
// order of the model's segment in the shared vector store.
func (m *Model) Tokens() []string {
	toks := make([]string, 0, len(m.vecs))
	for t := range m.vecs {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	return toks
}

// Rebind replaces every token's vector with the store-backed row at
// the token's sorted position: at(i) must hold exactly the bytes of
// Tokens()[i]'s vector. Values are unchanged — only the backing
// memory moves (duplicate heap copies are freed, or mmap'd pages get
// shared) — so all downstream scores stay bit-identical.
func (m *Model) Rebind(at func(int) []float32, n int) error {
	toks := m.Tokens()
	if n != len(toks) {
		return fmt.Errorf("embedding: rebind over %d rows, vocabulary has %d", n, len(toks))
	}
	for i, t := range toks {
		m.vecs[t] = Vector(at(i))
	}
	return nil
}

// VocabSize returns the number of trained tokens.
func (m *Model) VocabSize() int { return len(m.vecs) }

// Has reports whether the token was seen in training.
func (m *Model) Has(tok string) bool {
	_, ok := m.vecs[tok]
	return ok
}

// TokenVector returns the trained vector for a token, falling back to
// its character-gram vector when out of vocabulary. The result is
// unit-normalized and must not be mutated.
func (m *Model) TokenVector(tok string) Vector {
	if v, ok := m.vecs[tok]; ok {
		return v
	}
	return CharGramVector(tok, m.cfg.Dim, m.cfg.CharGramQ, m.cfg.Seed)
}

// ValueVector embeds one cell value: the normalized value is looked up
// as a whole token first; otherwise the mean of its word vectors;
// otherwise its character-gram vector.
func (m *Model) ValueVector(value string) Vector {
	norm := tokenize.Normalize(value)
	if v, ok := m.vecs[norm]; ok {
		return v
	}
	words := tokenize.Words(norm)
	var known []Vector
	for _, w := range words {
		if v, ok := m.vecs[w]; ok {
			known = append(known, v)
		}
	}
	if len(known) > 0 {
		return Mean(known, m.cfg.Dim).Normalize()
	}
	return CharGramVector(norm, m.cfg.Dim, m.cfg.CharGramQ, m.cfg.Seed)
}

// ColumnVector embeds a column as the unit-normalized mean of its
// distinct values' vectors — the column representation TUS's natural-
// language unionability measure compares.
func (m *Model) ColumnVector(values []string) Vector {
	distinct := tokenize.NormalizeSet(values)
	vs := make([]Vector, 0, len(distinct))
	for _, v := range distinct {
		vs = append(vs, m.ValueVector(v))
	}
	return Mean(vs, m.cfg.Dim).Normalize()
}
