package embedding

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	b := Vector{1, 0}
	if got := a.Dot(b); got != 3 {
		t.Errorf("Dot = %v", got)
	}
	c := a.Clone()
	c.Normalize()
	if math.Abs(c.Norm()-1) > 1e-6 {
		t.Errorf("normalized norm = %v", c.Norm())
	}
	if a[0] != 3 {
		t.Error("Clone aliased storage")
	}
	z := Zero(2)
	z.Normalize() // must not NaN
	if z[0] != 0 {
		t.Error("Zero normalize changed values")
	}
	if Cosine(z, a) != 0 {
		t.Error("cosine with zero vector should be 0")
	}
	d := Zero(2)
	d.AddScaled(b, 2.5)
	if d[0] != 2.5 {
		t.Errorf("AddScaled = %v", d)
	}
	m := Mean([]Vector{{2, 0}, {0, 2}}, 2)
	if m[0] != 1 || m[1] != 1 {
		t.Errorf("Mean = %v", m)
	}
	if got := Mean(nil, 3); len(got) != 3 {
		t.Error("Mean of empty should be zero vector of dim")
	}
}

func TestRandomVectorDeterministic(t *testing.T) {
	a := RandomVector("tok", 64, 1)
	b := RandomVector("tok", 64, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomVector not deterministic")
		}
	}
	c := RandomVector("tok", 64, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seed does not change vector")
	}
	// ±1 entries only.
	for _, x := range a {
		if x != 1 && x != -1 {
			t.Fatalf("entry %v not ±1", x)
		}
	}
}

func TestRandomVectorsNearOrthogonal(t *testing.T) {
	// Distinct tokens should have small cosine; that is the property
	// random indexing relies on.
	var worst float64
	for i := 0; i < 20; i++ {
		a := RandomVector(fmt.Sprintf("a%d", i), 256, 7)
		b := RandomVector(fmt.Sprintf("b%d", i), 256, 7)
		if c := math.Abs(Cosine(a, b)); c > worst {
			worst = c
		}
	}
	if worst > 0.25 {
		t.Errorf("random vectors too correlated: %v", worst)
	}
}

func TestCharGramVectorTypoTolerance(t *testing.T) {
	a := CharGramVector("mississippi", 128, 3, 1)
	typo := CharGramVector("missisippi", 128, 3, 1)
	other := CharGramVector("california", 128, 3, 1)
	if Cosine(a, typo) < Cosine(a, other)+0.2 {
		t.Errorf("typo cos %.3f should far exceed unrelated cos %.3f",
			Cosine(a, typo), Cosine(a, other))
	}
}

// domainCorpus builds columns (contexts) from two disjoint domains:
// cities and fruits. Columns mix values within a domain only.
func domainCorpus() [][]string {
	cities := []string{"boston", "chicago", "seattle", "denver", "austin", "portland", "miami", "dallas"}
	fruits := []string{"apple", "banana", "cherry", "grape", "mango", "peach", "plum", "kiwi"}
	var contexts [][]string
	for i := 0; i < 30; i++ {
		var c1, c2 []string
		for j := 0; j < 5; j++ {
			c1 = append(c1, cities[(i+j)%len(cities)])
			c2 = append(c2, fruits[(i*3+j)%len(fruits)])
		}
		contexts = append(contexts, c1, c2)
	}
	return contexts
}

func TestTrainGroupsDomains(t *testing.T) {
	m := Train(domainCorpus(), Config{Dim: 64, Seed: 42})
	if m.VocabSize() != 16 {
		t.Fatalf("VocabSize = %d, want 16", m.VocabSize())
	}
	sameDomain := Cosine(m.TokenVector("boston"), m.TokenVector("chicago"))
	crossDomain := Cosine(m.TokenVector("boston"), m.TokenVector("apple"))
	if sameDomain < crossDomain+0.2 {
		t.Errorf("same-domain cos %.3f should exceed cross-domain %.3f", sameDomain, crossDomain)
	}
}

func TestColumnVectorSameDomainSimilar(t *testing.T) {
	m := Train(domainCorpus(), Config{Dim: 64, Seed: 42})
	colA := m.ColumnVector([]string{"boston", "seattle", "denver"})
	colB := m.ColumnVector([]string{"chicago", "austin", "miami"})
	colF := m.ColumnVector([]string{"apple", "grape", "kiwi"})
	if Cosine(colA, colB) < Cosine(colA, colF)+0.2 {
		t.Errorf("disjoint same-domain columns cos %.3f should exceed cross-domain %.3f",
			Cosine(colA, colB), Cosine(colA, colF))
	}
}

func TestValueVectorFallbacks(t *testing.T) {
	m := Train(domainCorpus(), Config{Dim: 64, Seed: 42})
	if !m.Has("boston") || m.Has("neverseen") {
		t.Fatal("Has wrong")
	}
	// OOV single word: char-gram fallback, still unit-ish norm.
	v := m.ValueVector("neverseen")
	if math.Abs(v.Norm()-1) > 1e-5 {
		t.Errorf("OOV vector norm = %v", v.Norm())
	}
	// Multi-word value with known words: mean of word vectors.
	mv := m.ValueVector("boston chicago")
	if Cosine(mv, m.TokenVector("boston")) < 0.4 {
		t.Error("multi-word value should resemble constituent words")
	}
	// Case/space normalization applies.
	v1 := m.ValueVector("  BOSTON ")
	if Cosine(v1, m.TokenVector("boston")) < 0.99 {
		t.Error("normalization not applied")
	}
}

func TestTrainedVectorsUnitNorm(t *testing.T) {
	m := Train(domainCorpus(), Config{Dim: 64, Seed: 1})
	f := func(i uint8) bool {
		toks := []string{"boston", "apple", "grape", "seattle"}
		v := m.TokenVector(toks[int(i)%len(toks)])
		return math.Abs(v.Norm()-1) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrainDefaults(t *testing.T) {
	m := Train([][]string{{"a", "b"}, {"a", "b"}}, Config{})
	if m.Dim() != 64 {
		t.Errorf("default Dim = %d", m.Dim())
	}
	// Singleton and empty contexts are skipped without panic.
	m2 := Train([][]string{{"only"}, {}, {"", ""}}, Config{Dim: 16})
	if m2.VocabSize() != 0 {
		t.Errorf("degenerate contexts trained %d tokens", m2.VocabSize())
	}
}

func TestMinCountFilters(t *testing.T) {
	contexts := [][]string{{"a", "b"}, {"a", "b"}, {"a", "c"}}
	m := Train(contexts, Config{Dim: 16, MinCount: 2})
	if m.Has("c") {
		t.Error("MinCount should drop rare token c")
	}
	if !m.Has("a") || !m.Has("b") {
		t.Error("frequent tokens should survive MinCount")
	}
}
