package embedding

import "testing"

// benchVecs generates deterministic pseudo-random unit-scale vectors
// (splitmix64-style walk, no external RNG) for the cosine benchmarks.
func benchVecs(n, dim int, seed uint64) []Vector {
	out := make([]Vector, n)
	s := seed
	next := func() float32 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float32(z>>40)/(1<<24) - 0.5
	}
	for i := range out {
		v := make(Vector, dim)
		for d := range v {
			v[d] = next()
		}
		out[i] = v
	}
	return out
}

// BenchmarkCosine is the pre-vecstore hot path: both norms recomputed
// on every call — three dot products per similarity.
func BenchmarkCosine(b *testing.B) {
	vecs := benchVecs(256, 64, 11)
	q := benchVecs(1, 64, 99)[0]
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Cosine(q, vecs[i%len(vecs)])
	}
	_ = sink
}

// BenchmarkCosineWithNorms is the vecstore-backed path: norms
// precomputed at build time, one dot product per similarity.
func BenchmarkCosineWithNorms(b *testing.B) {
	vecs := benchVecs(256, 64, 11)
	norms := make([]float64, len(vecs))
	for i, v := range vecs {
		norms[i] = v.Norm()
	}
	q := benchVecs(1, 64, 99)[0]
	qn := q.Norm()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		j := i % len(vecs)
		sink += CosineWithNorms(q, vecs[j], qn, norms[j])
	}
	_ = sink
}
