package union

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/graph"
	"tablehound/internal/hnsw"
	"tablehound/internal/kb"
	"tablehound/internal/lsh"
	"tablehound/internal/minhash"
	"tablehound/internal/parallel"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// TUSConfig wires the resources TUS's measures need.
type TUSConfig struct {
	// Model supplies value embeddings for the NL measure; required.
	Model *embedding.Model
	// KB supplies the ontology for the semantic measure; optional —
	// without it the semantic measure scores 0 everywhere.
	KB *kb.KB
	// Dict is the lake-wide value dictionary; optional. When it covers
	// every staged value, columns are encoded through it so the set
	// measure shares the lake ID space; otherwise Build falls back to a
	// self-built dictionary over the staged universe.
	Dict *dict.Dict
	// Exhaustive disables index-based candidate generation and scores
	// every table (the accuracy ceiling; slow).
	Exhaustive bool
	// NumHashes is the MinHash signature length (default 128).
	NumHashes int
}

// TUS is a table union search engine. Add tables, Build, then Search.
// Search is read-only and safe for concurrent use once Build has
// returned; AddTable/AddTables/Build must not run concurrently with
// each other or with Search.
type TUS struct {
	cfg     TUSConfig
	tables  map[string]*tusTable
	ids     []string
	univ    map[string]bool // distinct value universe (for set measure)
	dict    *dict.Dict      // dictionary the columns are encoded in
	setLSH  *lsh.Index
	nlIndex *hnsw.Graph
	hasher  *minhash.Hasher
	lfact   logFactTable // ln n! cache for the hypergeometric CDF
	built   bool

	// QueryParallelism bounds the per-query candidate-scoring fan-out
	// in Search: 0 = GOMAXPROCS, negative or 1 = sequential. Results
	// are bit-identical at every setting. Set before serving queries;
	// it must not change while searches are in flight.
	QueryParallelism int
}

type tusTable struct {
	tbl  *table.Table
	cols []*tusColumn
}

type tusColumn struct {
	name string
	// values holds the distinct normalized values between staging and
	// Build; Build encodes them into ids and clears the slice. Query
	// columns are encoded immediately and never carry values.
	values []string
	ids    dict.IDSet // same values as sorted dictionary IDs
	sig    minhash.Signature
	vec    embedding.Vector
	// Semantic annotation (dominant ontology type), when covered.
	semType  string
	semCover float64
}

// NewTUS creates an engine.
func NewTUS(cfg TUSConfig) (*TUS, error) {
	if cfg.Model == nil {
		return nil, errors.New("union: TUSConfig.Model is required")
	}
	if cfg.NumHashes <= 0 {
		cfg.NumHashes = 128
	}
	return &TUS{
		cfg:    cfg,
		tables: make(map[string]*tusTable),
		univ:   make(map[string]bool),
		hasher: minhash.NewHasher(cfg.NumHashes, 7),
	}, nil
}

// AddTable stages a table for indexing.
func (t *TUS) AddTable(tbl *table.Table) {
	if _, dup := t.tables[tbl.ID]; dup {
		return
	}
	entry := &tusTable{tbl: tbl}
	for _, c := range stringColumns(tbl) {
		tc := t.makeColumn(c)
		entry.cols = append(entry.cols, tc)
		for _, v := range tc.values {
			t.univ[t.cfg.Dict.Intern(v)] = true
		}
	}
	if len(entry.cols) == 0 {
		return
	}
	t.tables[tbl.ID] = entry
	t.ids = append(t.ids, tbl.ID)
	t.built = false
}

// AddTables stages a batch of tables using up to workers goroutines.
// Column analysis (normalization, MinHash signing, embedding, KB
// annotation) — the dominant cost — fans out per table; registration
// (universe accumulation, ID ordering) commits sequentially in batch
// order, so the engine state is identical at any worker count. The
// hasher, model, and KB are only read.
func (t *TUS) AddTables(tbls []*table.Table, workers int) {
	entries, _ := parallel.Map(len(tbls), workers, func(i int) (*tusTable, error) {
		entry := &tusTable{tbl: tbls[i]}
		for _, c := range stringColumns(tbls[i]) {
			entry.cols = append(entry.cols, t.makeColumn(c))
		}
		return entry, nil
	})
	for _, entry := range entries {
		if _, dup := t.tables[entry.tbl.ID]; dup {
			continue
		}
		if len(entry.cols) == 0 {
			continue
		}
		for _, tc := range entry.cols {
			for _, v := range tc.values {
				t.univ[t.cfg.Dict.Intern(v)] = true
			}
		}
		t.tables[entry.tbl.ID] = entry
		t.ids = append(t.ids, entry.tbl.ID)
		t.built = false
	}
}

func (t *TUS) makeColumn(c *table.Column) *tusColumn {
	values := tokenize.NormalizeSet(c.Values)
	tc := &tusColumn{
		name:   c.Name,
		values: values,
		sig:    t.hasher.Sign(values),
		vec:    t.cfg.Model.ColumnVector(values),
	}
	if t.cfg.KB != nil {
		if typ, cover, ok := t.cfg.KB.DominantType(values, 0.5); ok {
			tc.semType, tc.semCover = typ, cover
		}
	}
	return tc
}

// queryColumn analyzes an ad-hoc column and encodes it through enc.
// Out-of-vocabulary values get ephemeral IDs shared across columns of
// the same encoder, so two query columns still see their mutual
// overlap even off the lake vocabulary.
func (t *TUS) queryColumn(c *table.Column, enc *dict.Encoder) *tusColumn {
	tc := t.makeColumn(c)
	tc.ids = enc.Encode(tc.values)
	tc.values = nil
	return tc
}

// Build freezes the candidate-generation indexes.
func (t *TUS) Build() error {
	if len(t.tables) == 0 {
		return errors.New("union: no tables added")
	}
	sort.Strings(t.ids)
	t.encodeColumns()
	// Low-threshold LSH: candidate columns need only weak set overlap;
	// scoring decides.
	b, r := lsh.OptimalParams(0.3, t.cfg.NumHashes, 0.8, 0.2)
	t.setLSH = lsh.New(b, r)
	t.nlIndex = hnsw.New(hnsw.Config{M: 12, EfConstruction: 80, Seed: 11})
	for _, id := range t.ids {
		for _, c := range t.tables[id].cols {
			key := table.ColumnKey(id, c.name)
			if err := t.setLSH.Add(key, c.sig); err != nil {
				return err
			}
			if err := t.nlIndex.Add(key, c.vec); err != nil {
				return err
			}
		}
	}
	// Freeze the ln n! cache for the hypergeometric CDF: every
	// logChoose argument is at most d+1 where d = len(t.univ) (query
	// columns larger than the universe fall back to math.Lgamma).
	t.lfact = newLogFactTable(len(t.univ) + 1)
	t.built = true
	return nil
}

// encodeColumns picks the dictionary for this build and encodes every
// column's values into sorted ID sets. The configured lake dictionary
// is used when it covers the whole staged universe; otherwise a
// dictionary is built over the universe itself. When the dictionary
// changes between builds (the self-built one grows with new tables),
// previously encoded columns are re-encoded — IDs from different
// dictionaries must never mix, or cross-column overlap breaks.
func (t *TUS) encodeColumns() {
	d := t.cfg.Dict
	covered := d != nil
	if covered {
		for v := range t.univ {
			if _, ok := d.ID(v); !ok {
				covered = false
				break
			}
		}
	}
	if !covered {
		db := dict.NewBuilder()
		for v := range t.univ {
			db.Add(v)
		}
		d = db.Build()
	}
	rebuild := d != t.dict
	for _, id := range t.ids {
		for _, c := range t.tables[id].cols {
			if c.ids != nil && !rebuild {
				continue
			}
			if c.values == nil {
				c.values = t.dict.Decode(c.ids)
			}
			c.ids, _ = d.EncodeKnown(c.values)
			c.values = nil
		}
	}
	t.dict = d
}

// NumTables returns the number of indexed tables.
func (t *TUS) NumTables() int { return len(t.tables) }

// Dict returns the dictionary the engine's columns are encoded in
// (nil before the first Build).
func (t *TUS) Dict() *dict.Dict { return t.dict }

// SetsFootprint reports the resident cost of the ID-encoded column
// sets next to an estimate of the per-column string maps they
// replaced.
func (t *TUS) SetsFootprint() dict.Footprint {
	var f dict.Footprint
	for _, id := range t.ids {
		for _, c := range t.tables[id].cols {
			f.Accumulate(t.dict.SetFootprint(c.ids))
		}
	}
	return f
}

// ColumnUnionability scores two value sets under a measure; exported
// for benchmarking the measures in isolation. Inputs are raw values
// (normalized internally).
func (t *TUS) ColumnUnionability(a, b []string, m Measure) float64 {
	enc := t.dict.Encoder()
	ca := t.queryColumn(table.NewColumn("a", a), enc)
	cb := t.queryColumn(table.NewColumn("b", b), enc)
	return t.columnScore(ca, cb, m)
}

func (t *TUS) columnScore(a, b *tusColumn, m Measure) float64 {
	switch m {
	case SetMeasure:
		return t.setUnionability(a, b)
	case SemMeasure:
		return t.semUnionability(a, b)
	case NLMeasure:
		return nlUnionability(a, b)
	default:
		s := t.setUnionability(a, b)
		if v := t.semUnionability(a, b); v > s {
			s = v
		}
		if v := nlUnionability(a, b); v > s {
			s = v
		}
		return s
	}
}

// setUnionability is the TUS set measure: the probability that two
// random draws of |A| and |B| values from the universe share at most
// the observed overlap — i.e. the hypergeometric CDF at the overlap.
// High observed overlap relative to chance drives the score to 1.
func (t *TUS) setUnionability(a, b *tusColumn) float64 {
	overlap := dict.Overlap(a.ids, b.ids)
	if overlap == 0 {
		return 0
	}
	d := len(t.univ)
	na, nb := len(a.ids), len(b.ids)
	if d < na+nb { // universe estimate too small for a valid model
		d = na + nb
	}
	return t.lfact.hypergeomCDF(overlap-1, d, na, nb)
}

// logFactTable caches ln(n!) = Lgamma(n+1) for n in [0, len). Indexes
// beyond the table (or a nil table) fall back to math.Lgamma, so every
// lookup is bit-identical to the uncached computation. Read-only after
// construction; safe for concurrent use.
type logFactTable []float64

func newLogFactTable(maxN int) logFactTable {
	lf := make(logFactTable, maxN+1)
	for i := range lf {
		lf[i], _ = math.Lgamma(float64(i + 1))
	}
	return lf
}

func (lf logFactTable) logFact(n int) float64 {
	if n >= 0 && n < len(lf) {
		return lf[n]
	}
	v, _ := math.Lgamma(float64(n + 1))
	return v
}

func (lf logFactTable) logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lf.logFact(n) - lf.logFact(k) - lf.logFact(n-k)
}

// hypergeomCDF returns P[X <= k] for X ~ Hypergeom(D, na, nb).
func (lf logFactTable) hypergeomCDF(k, d, na, nb int) float64 {
	lo := na + nb - d
	if lo < 0 {
		lo = 0
	}
	hi := na
	if nb < hi {
		hi = nb
	}
	if k >= hi {
		return 1
	}
	denom := lf.logChoose(d, nb)
	var cdf float64
	for x := lo; x <= k; x++ {
		cdf += math.Exp(lf.logChoose(na, x) + lf.logChoose(d-na, nb-x) - denom)
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}

// hypergeomCDF is the uncached variant (reference for tests).
func hypergeomCDF(k, d, na, nb int) float64 {
	return logFactTable(nil).hypergeomCDF(k, d, na, nb)
}

// semUnionability scores by ontology: Wu-Palmer similarity of the
// columns' dominant types, damped by annotation coverage. Uncovered
// columns score 0 — the KB precision/coverage trade-off surfaces here.
func (t *TUS) semUnionability(a, b *tusColumn) float64 {
	if t.cfg.KB == nil || a.semType == "" || b.semType == "" {
		return 0
	}
	sim := t.cfg.KB.TypeSimilarity(a.semType, b.semType)
	cover := a.semCover
	if b.semCover < cover {
		cover = b.semCover
	}
	return sim * cover
}

// nlUnionability maps embedding cosine from [-1, 1] to [0, 1].
func nlUnionability(a, b *tusColumn) float64 {
	return (embedding.Cosine(a.vec, b.vec) + 1) / 2
}

// ErrNotBuilt is returned by Search when the index has pending tables
// that Build has not frozen yet.
var ErrNotBuilt = errors.New("union: index not built (call Build after adding tables)")

// Search returns the k tables most unionable with the query under the
// measure. The query need not be indexed. Search is a pure read: it
// requires a prior Build (ErrNotBuilt otherwise, never an implicit
// rebuild) and is safe for concurrent use. Candidate scoring — the
// bipartite-matching + hypergeometric hot loop — fans out over
// QueryParallelism workers into indexed slots, so results are
// bit-identical to the sequential scan.
func (t *TUS) Search(query *table.Table, k int, m Measure) ([]Result, error) {
	return t.SearchCtx(context.Background(), query, k, m)
}

// SearchCtx is Search with cooperative cancellation: candidate scoring
// checks ctx between candidate tables and a cancelled context returns
// ctx.Err() instead of finishing the scan. A query without usable
// string columns wraps table.ErrBadQuery. Results of a run that
// completes are bit-identical to Search.
func (t *TUS) SearchCtx(ctx context.Context, query *table.Table, k int, m Measure) ([]Result, error) {
	pq, err := t.Prepare(query)
	if err != nil {
		return nil, err
	}
	return t.ScoreAmongCtx(ctx, pq, t.Candidates(pq), k, m)
}

// TUSQuery is a query table pre-encoded against the frozen index —
// the table-level analogue of join.EncodeQuery. Prepare once, then
// reuse across Candidates and ScoreAmongCtx so staged planners do not
// re-encode per stage.
type TUSQuery struct {
	id    string
	query *table.Table
	qcols []*tusColumn
}

// Prepare encodes a query table's string columns against the frozen
// dictionary. A query without usable string columns wraps
// table.ErrBadQuery.
func (t *TUS) Prepare(query *table.Table) (*TUSQuery, error) {
	if !t.built {
		return nil, ErrNotBuilt
	}
	enc := t.dict.Encoder()
	qcols := make([]*tusColumn, 0)
	for _, c := range stringColumns(query) {
		qcols = append(qcols, t.queryColumn(c, enc))
	}
	if len(qcols) == 0 {
		return nil, fmt.Errorf("union: query table has no usable string columns: %w", table.ErrBadQuery)
	}
	return &TUSQuery{id: query.ID, query: query, qcols: qcols}, nil
}

// Candidates returns the sorted candidate table IDs the sketch
// indexes generate for a prepared query (all tables when exhaustive).
func (t *TUS) Candidates(pq *TUSQuery) []string {
	return t.candidateTables(pq.query, pq.qcols)
}

// ScoreAmongCtx exactly scores the given candidate tables and returns
// the top k. Because per-candidate scores are independent and the
// final order is a total order, restricting ids before scoring yields
// exactly the results SearchCtx would after dropping the same tables;
// with ids = Candidates(pq) it is bit-identical to SearchCtx.
func (t *TUS) ScoreAmongCtx(ctx context.Context, pq *TUSQuery, ids []string, k int, m Measure) ([]Result, error) {
	scores, err := parallel.MapCtx(ctx, len(ids), parallel.Resolve(t.QueryParallelism), func(i int) (float64, error) {
		if ids[i] == pq.id {
			return 0, nil
		}
		return t.tableScore(pq.qcols, t.tables[ids[i]].cols, m), nil
	})
	if err != nil {
		return nil, err
	}
	var res []Result
	for i, id := range ids {
		if id == pq.id {
			continue
		}
		if scores[i] > 0 {
			res = append(res, Result{TableID: id, Score: scores[i]})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// tableScore aligns query columns to candidate columns by maximum-
// weight bipartite matching and normalizes by query column count.
func (t *TUS) tableScore(qcols, ccols []*tusColumn, m Measure) float64 {
	w := make([][]float64, len(qcols))
	for i, qc := range qcols {
		w[i] = make([]float64, len(ccols))
		for j, cc := range ccols {
			w[i][j] = t.columnScore(qc, cc, m)
		}
	}
	_, total := graph.MaxWeightBipartiteMatching(w)
	return total / float64(len(qcols))
}

// candidateTables returns table IDs to score: all tables when
// exhaustive, otherwise tables owning columns retrieved by the set-LSH
// or the NL vector index.
func (t *TUS) candidateTables(query *table.Table, qcols []*tusColumn) []string {
	if t.cfg.Exhaustive {
		return t.ids
	}
	seen := make(map[string]bool)
	var out []string
	add := func(key string) {
		id, _ := table.SplitColumnKey(key)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, qc := range qcols {
		for _, key := range t.setLSH.Query(qc.sig) {
			add(key)
		}
		for _, r := range t.nlIndex.Search(qc.vec, 10, 60) {
			add(r.Key)
		}
	}
	sort.Strings(out)
	return out
}
