package union

import (
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
)

func lakeAndTUS(t *testing.T, exhaustive bool, useKB bool) (*datagen.Lake, *TUS) {
	t.Helper()
	lake := datagen.Generate(datagen.Config{
		Seed:              11,
		NumDomains:        16,
		DomainSize:        120,
		NumTemplates:      6,
		TablesPerTemplate: 5,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 64, Seed: 3})
	cfg := TUSConfig{Model: model, Exhaustive: exhaustive}
	if useKB {
		cfg.KB = lake.BuildKB(0.9)
	}
	tus, err := NewTUS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range lake.Tables {
		tus.AddTable(tbl)
	}
	if err := tus.Build(); err != nil {
		t.Fatal(err)
	}
	return lake, tus
}

func TestTUSFindsUnionableTables(t *testing.T) {
	lake, tus := lakeAndTUS(t, false, true)
	query := lake.Tables[0]
	truth := lake.UnionableWith(query.ID)
	res, err := tus.Search(query, 4, EnsembleMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	ids := make([]string, len(res))
	for i, r := range res {
		ids[i] = r.TableID
	}
	p := metrics.PrecisionAtK(ids, truth, 4)
	if p < 0.75 {
		t.Errorf("precision@4 = %v; results %v", p, ids)
	}
}

func TestTUSEnsembleAtLeastAsGoodAsSingles(t *testing.T) {
	lake, tus := lakeAndTUS(t, true, true)
	measures := []Measure{SetMeasure, SemMeasure, NLMeasure, EnsembleMeasure}
	maps := map[Measure]float64{}
	for _, m := range measures {
		var retrieved [][]string
		var relevant []map[string]bool
		for i := 0; i < 6; i++ {
			q := lake.Tables[i*5] // one query per template
			res, err := tus.Search(q, 4, m)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]string, len(res))
			for j, r := range res {
				ids[j] = r.TableID
			}
			retrieved = append(retrieved, ids)
			relevant = append(relevant, lake.UnionableWith(q.ID))
		}
		maps[m] = metrics.MAP(retrieved, relevant)
	}
	for _, m := range []Measure{SetMeasure, SemMeasure, NLMeasure} {
		if maps[EnsembleMeasure] < maps[m]-0.05 {
			t.Errorf("ensemble MAP %.3f below %v MAP %.3f", maps[EnsembleMeasure], m, maps[m])
		}
	}
	if maps[EnsembleMeasure] < 0.6 {
		t.Errorf("ensemble MAP = %.3f, too low", maps[EnsembleMeasure])
	}
}

func TestTUSColumnMeasures(t *testing.T) {
	lake, tus := lakeAndTUS(t, true, true)
	domA := lake.Domains[0]
	domB := lake.Domains[1]
	// Same-domain disjoint halves: set overlap is zero but sem + NL
	// recognize the shared domain.
	a, b := domA[:40], domA[40:80]
	if s := tus.ColumnUnionability(a, b, SetMeasure); s != 0 {
		t.Errorf("disjoint set measure = %v, want 0", s)
	}
	semSame := tus.ColumnUnionability(a, b, SemMeasure)
	semCross := tus.ColumnUnionability(a, domB[:40], SemMeasure)
	if semSame <= semCross {
		t.Errorf("sem measure: same-domain %v should beat cross-domain %v", semSame, semCross)
	}
	nlSame := tus.ColumnUnionability(a, b, NLMeasure)
	nlCross := tus.ColumnUnionability(a, domB[:40], NLMeasure)
	if nlSame <= nlCross {
		t.Errorf("nl measure: same-domain %v should beat cross-domain %v", nlSame, nlCross)
	}
	// Overlapping columns: set measure near 1.
	if s := tus.ColumnUnionability(domA[:50], domA[25:75], SetMeasure); s < 0.99 {
		t.Errorf("high-overlap set measure = %v", s)
	}
	// Ensemble is the max.
	ens := tus.ColumnUnionability(a, b, EnsembleMeasure)
	if ens < semSame || ens < nlSame {
		t.Errorf("ensemble %v below components %v/%v", ens, semSame, nlSame)
	}
}

func TestTUSWithoutKBSemIsZero(t *testing.T) {
	lake, tus := lakeAndTUS(t, true, false)
	a := lake.Domains[0][:30]
	b := lake.Domains[0][30:60]
	if s := tus.ColumnUnionability(a, b, SemMeasure); s != 0 {
		t.Errorf("sem without KB = %v, want 0", s)
	}
}

func TestTUSErrors(t *testing.T) {
	if _, err := NewTUS(TUSConfig{}); err == nil {
		t.Error("nil model should fail")
	}
	model := embedding.Train(nil, embedding.Config{Dim: 16})
	tus, _ := NewTUS(TUSConfig{Model: model})
	if err := tus.Build(); err == nil {
		t.Error("Build with no tables should fail")
	}
	tus.AddTable(table.MustNew("t", "t", []*table.Column{
		table.NewColumn("a", []string{"x", "y", "z"}),
		table.NewColumn("b", []string{"p", "q", "r"}),
	}))
	if err := tus.Build(); err != nil {
		t.Fatal(err)
	}
	// Query with only numeric columns fails.
	numQuery := table.MustNew("n", "n", []*table.Column{
		table.NewColumn("v", []string{"1", "2", "3"}),
	})
	if _, err := tus.Search(numQuery, 3, SetMeasure); err == nil {
		t.Error("numeric-only query should fail")
	}
	if tus.NumTables() != 1 {
		t.Error("NumTables wrong")
	}
}

func TestHypergeomCDF(t *testing.T) {
	// Overlap beyond the max is certain.
	if v := hypergeomCDF(10, 100, 5, 5); v != 1 {
		t.Errorf("CDF beyond max = %v", v)
	}
	// CDF is monotone in k.
	prev := -1.0
	for k := 0; k <= 10; k++ {
		v := hypergeomCDF(k, 50, 10, 10)
		if v < prev {
			t.Fatalf("CDF not monotone at k=%d", k)
		}
		prev = v
	}
	// Large overlap is very unlikely by chance: CDF(overlap-1) ~ 1.
	if v := hypergeomCDF(7, 1000, 10, 10); v < 0.999 {
		t.Errorf("CDF(7; 1000,10,10) = %v", v)
	}
}

func TestMeasureString(t *testing.T) {
	if SetMeasure.String() != "set" || EnsembleMeasure.String() != "ensemble" || Measure(9).String() != "unknown" {
		t.Error("Measure.String wrong")
	}
}
