// Merge support for incremental (delta) index maintenance: each union
// engine can be decomposed into portable per-table parts and
// reassembled from parts gathered across a base snapshot and a delta
// chain. The reassembly paths replay each engine's own Build freeze —
// same sorted orders, same index parameters, same encodings — so a
// merged engine answers every query bit-identically to a from-scratch
// build over the merged catalog.
package union

import (
	"errors"
	"fmt"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/kb"
	"tablehound/internal/minhash"
	"tablehound/internal/table"
)

// --- TUS ---

// TUSColumnParts is one analyzed TUS column: the encoded value set,
// its MinHash signature, embedding, and KB annotation. IDs are encoded
// in the dictionary the parts travel with (for a delta, the extended
// base dictionary — base IDs stay valid verbatim).
type TUSColumnParts struct {
	Name     string
	IDs      dict.IDSet
	Sig      minhash.Signature
	Vec      embedding.Vector
	SemType  string
	SemCover float64
}

// TUSTableParts is one table's analyzed columns.
type TUSTableParts struct {
	ID   string
	Cols []TUSColumnParts
}

// Parts returns the engine's per-table column analyses in indexed-ID
// order. The engine must be built (column sets are only encoded by
// Build). Slices alias the engine's frozen state; do not mutate.
func (t *TUS) Parts() ([]TUSTableParts, error) {
	if !t.built {
		return nil, ErrNotBuilt
	}
	out := make([]TUSTableParts, 0, len(t.ids))
	for _, id := range t.ids {
		p := TUSTableParts{ID: id}
		for _, c := range t.tables[id].cols {
			p.Cols = append(p.Cols, TUSColumnParts{
				Name: c.name, IDs: c.ids, Sig: c.sig, Vec: c.vec,
				SemType: c.semType, SemCover: c.semCover,
			})
		}
		out = append(out, p)
	}
	return out, nil
}

// NewTUSFromParts assembles a built TUS engine from parts whose column
// sets are all encoded in cfg.Dict (required). The value universe is
// recovered by decoding every column set, then Build freezes the
// candidate indexes exactly as a from-scratch build would (sorted
// table-ID insertion order, same LSH/HNSW parameters). lookup resolves
// table IDs against the merged catalog.
func NewTUSFromParts(cfg TUSConfig, parts []TUSTableParts, lookup func(id string) *table.Table) (*TUS, error) {
	if cfg.Dict == nil {
		return nil, errors.New("union: TUS parts require the dictionary they are encoded in")
	}
	t, err := NewTUS(cfg)
	if err != nil {
		return nil, err
	}
	t.dict = cfg.Dict
	for _, p := range parts {
		tbl := lookup(p.ID)
		if tbl == nil {
			return nil, fmt.Errorf("union: TUS table %q missing from catalog", p.ID)
		}
		if _, dup := t.tables[p.ID]; dup {
			return nil, fmt.Errorf("union: duplicate TUS table %q", p.ID)
		}
		entry := &tusTable{tbl: tbl}
		for _, c := range p.Cols {
			for _, id := range c.IDs {
				if int(id) >= cfg.Dict.Size() {
					return nil, fmt.Errorf("union: TUS column %s.%s references ID %d beyond dictionary size %d", p.ID, c.Name, id, cfg.Dict.Size())
				}
			}
			entry.cols = append(entry.cols, &tusColumn{
				name: c.Name, ids: c.IDs, sig: c.Sig, vec: c.Vec,
				semType: c.SemType, semCover: c.SemCover,
			})
			for _, v := range cfg.Dict.Decode(c.IDs) {
				t.univ[v] = true
			}
		}
		if len(entry.cols) == 0 {
			continue
		}
		t.tables[p.ID] = entry
		t.ids = append(t.ids, p.ID)
	}
	if len(t.tables) == 0 {
		return nil, errors.New("union: no tables in TUS parts")
	}
	// Build sorts the IDs and freezes setLSH/nlIndex/lfact; the columns
	// are already encoded in t.dict, so encodeColumns keeps them as-is.
	if err := t.Build(); err != nil {
		return nil, err
	}
	return t, nil
}

// --- SANTOS ---

// SantosRelParts is one relationship: the raw "subject||object" pair
// tokens (dictionary-independent — SANTOS re-interns its pair
// vocabulary on every Build) and the curated-KB annotation.
type SantosRelParts struct {
	ColName  string
	Pairs    []string
	Pred     string
	PredFrac float64
}

// SantosTableParts is one table's relationships.
type SantosTableParts struct {
	ID   string
	Rels []SantosRelParts
}

// Parts returns the engine's per-table relationships with pair tokens
// in raw string form, decoding through the pair dictionary when the
// engine is built (pair sets come back sorted; SANTOS scoring is
// order-independent). Works on both built engines (a loaded base) and
// staged-only engines (a delta scratch build).
func (s *Santos) Parts() []SantosTableParts {
	ids := append([]string(nil), s.ids...)
	out := make([]SantosTableParts, 0, len(ids))
	for _, id := range ids {
		p := SantosTableParts{ID: id}
		for _, rel := range s.tables[id].rels {
			pairs := rel.pairs
			if pairs == nil && rel.pairIDs != nil {
				pairs = s.pairDict.Decode(rel.pairIDs)
			}
			p.Rels = append(p.Rels, SantosRelParts{
				ColName: rel.colName, Pairs: pairs,
				Pred: rel.pred, PredFrac: rel.predFrac,
			})
		}
		out = append(out, p)
	}
	return out
}

// NewSantosFromParts assembles a built SANTOS engine from parts.
// Build re-interns the pair vocabulary into a fresh lexicographic
// dictionary over the union of all pairs — the very thing a
// from-scratch build does — so the merged engine is bit-identical to
// one built over the merged catalog. lookup resolves table IDs.
func NewSantosFromParts(curated *kb.KB, parts []SantosTableParts, lookup func(id string) *table.Table) (*Santos, error) {
	s := NewSantos(curated)
	for _, p := range parts {
		tbl := lookup(p.ID)
		if tbl == nil {
			return nil, fmt.Errorf("union: SANTOS table %q missing from catalog", p.ID)
		}
		if _, dup := s.tables[p.ID]; dup {
			return nil, fmt.Errorf("union: duplicate SANTOS table %q", p.ID)
		}
		st := &santosTable{tbl: tbl}
		for _, r := range p.Rels {
			st.rels = append(st.rels, santosRel{
				colName: r.ColName, pairs: r.Pairs,
				pred: r.Pred, predFrac: r.PredFrac,
			})
		}
		s.tables[p.ID] = st
		s.ids = append(s.ids, p.ID)
	}
	if len(s.tables) == 0 {
		// An empty SANTOS engine is legal (Build is only called when
		// tables exist — mirrors core.Build's stageSantos).
		return s, nil
	}
	if err := s.Build(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- D3L ---

// D3LColumnParts is one analyzed D3L column. ColIdx locates the source
// column within its table so reassembly can rewire the pointer the
// name evidence reads.
type D3LColumnParts struct {
	ColIdx   int
	Distinct []string
	Format   []float64
	Words    map[string]float64
	Vec      embedding.Vector
}

// D3LTableParts is one table's analyzed columns.
type D3LTableParts struct {
	ID   string
	Cols []D3LColumnParts
}

// Parts returns the engine's per-table column analyses in indexed
// order.
func (d *D3L) Parts() []D3LTableParts {
	out := make([]D3LTableParts, 0, len(d.ids))
	for _, id := range d.ids {
		entry := d.tables[id]
		p := D3LTableParts{ID: id}
		for _, c := range entry.cols {
			colIdx := -1
			for i, tc := range entry.tbl.Columns {
				if tc == c.col {
					colIdx = i
					break
				}
			}
			p.Cols = append(p.Cols, D3LColumnParts{
				ColIdx: colIdx, Distinct: c.distinct, Format: c.format,
				Words: c.words, Vec: c.vec,
			})
		}
		out = append(out, p)
	}
	return out
}

// NewD3LFromParts assembles a D3L engine from parts. D3L has no global
// index — Search scans tables in sorted-ID order — so reassembly is a
// straight re-registration. lookup resolves table IDs.
func NewD3LFromParts(model *embedding.Model, parts []D3LTableParts, lookup func(id string) *table.Table) (*D3L, error) {
	d3, err := NewD3L(model)
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		tbl := lookup(p.ID)
		if tbl == nil {
			return nil, fmt.Errorf("union: D3L table %q missing from catalog", p.ID)
		}
		if _, dup := d3.tables[p.ID]; dup {
			return nil, fmt.Errorf("union: duplicate D3L table %q", p.ID)
		}
		entry := &d3lTable{tbl: tbl}
		for _, c := range p.Cols {
			if c.ColIdx < 0 || c.ColIdx >= len(tbl.Columns) {
				return nil, fmt.Errorf("union: D3L column index %d out of range for table %q", c.ColIdx, p.ID)
			}
			entry.cols = append(entry.cols, &d3lColumn{
				col: tbl.Columns[c.ColIdx], distinct: c.Distinct,
				format: c.Format, words: c.Words, vec: c.Vec,
			})
		}
		if len(entry.cols) == 0 {
			continue
		}
		d3.tables[p.ID] = entry
		d3.ids = append(d3.ids, p.ID)
	}
	sort.Strings(d3.ids)
	return d3, nil
}
