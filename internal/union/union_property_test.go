package union

import (
	"testing"
	"testing/quick"
)

// TestHypergeomCDFBounds: the CDF is a probability for arbitrary
// valid parameterizations.
func TestHypergeomCDFBounds(t *testing.T) {
	type spec struct {
		D, Na, Nb, K uint8
	}
	f := func(s spec) bool {
		d := int(s.D%200) + 2
		na := int(s.Na)%d + 1
		nb := int(s.Nb)%d + 1
		k := int(s.K) % (na + 1)
		v := hypergeomCDF(k, d, na, nb)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHypergeomCDFSumsToOne: the PMF implied by CDF differences sums
// to 1 over the support.
func TestHypergeomCDFSumsToOne(t *testing.T) {
	for _, c := range []struct{ d, na, nb int }{
		{50, 10, 10}, {100, 3, 80}, {20, 20, 5},
	} {
		hi := c.na
		if c.nb < hi {
			hi = c.nb
		}
		if v := hypergeomCDF(hi, c.d, c.na, c.nb); v < 0.999999 {
			t.Errorf("CDF at max overlap = %v for %+v", v, c)
		}
	}
}

// TestColumnScoreSymmetry: every measure is symmetric in its
// arguments, which the bipartite aggregation assumes.
func TestColumnScoreSymmetry(t *testing.T) {
	_, tus := lakeAndTUS(t, true, true)
	vals1 := []string{"alpha", "beta", "gamma", "delta"}
	vals2 := []string{"beta", "gamma", "epsilon"}
	for _, m := range []Measure{SetMeasure, SemMeasure, NLMeasure, EnsembleMeasure} {
		a := tus.ColumnUnionability(vals1, vals2, m)
		b := tus.ColumnUnionability(vals2, vals1, m)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v not symmetric: %v vs %v", m, a, b)
		}
	}
}

// TestScoresInUnitInterval across random value sets.
func TestScoresInUnitInterval(t *testing.T) {
	_, tus := lakeAndTUS(t, true, true)
	f := func(a, b []string) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		for _, m := range []Measure{SetMeasure, SemMeasure, NLMeasure, EnsembleMeasure} {
			s := tus.ColumnUnionability(a, b, m)
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
