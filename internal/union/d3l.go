package union

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"tablehound/internal/embedding"
	"tablehound/internal/graph"
	"tablehound/internal/minhash"
	"tablehound/internal/schema"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// D3L implements the five-evidence related-table search of Bogatu et
// al. (ICDE 2020, "Dataset Discovery in Data Lakes", [2] in the
// tutorial): columns are compared on attribute NAMES, exact VALUE
// overlap, FORMAT (character-class shape of values), WORD
// distributions for text, and embedding semantics — and the evidence
// is averaged into one relatedness score that surfaces joinable and
// unionable tables simultaneously, without committing to either
// definition.
type D3L struct {
	model  *embedding.Model
	tables map[string]*d3lTable
	ids    []string
}

type d3lTable struct {
	tbl  *table.Table
	cols []*d3lColumn
}

type d3lColumn struct {
	col      *table.Column
	distinct []string
	format   []float64 // normalized character-class histogram
	words    map[string]float64
	vec      embedding.Vector
}

// NewD3L creates an engine over an embedding model.
func NewD3L(model *embedding.Model) (*D3L, error) {
	if model == nil {
		return nil, errors.New("union: D3L requires an embedding model")
	}
	return &D3L{model: model, tables: make(map[string]*d3lTable)}, nil
}

// AddTable stages a table.
func (d *D3L) AddTable(t *table.Table) {
	if _, dup := d.tables[t.ID]; dup {
		return
	}
	entry := &d3lTable{tbl: t}
	for _, c := range stringColumns(t) {
		entry.cols = append(entry.cols, d.analyzeColumn(c))
	}
	if len(entry.cols) == 0 {
		return
	}
	d.tables[t.ID] = entry
	d.ids = append(d.ids, t.ID)
	sort.Strings(d.ids)
}

func (d *D3L) analyzeColumn(c *table.Column) *d3lColumn {
	distinct := tokenize.NormalizeSet(c.Values)
	dc := &d3lColumn{
		col:      c,
		distinct: distinct,
		format:   FormatSignature(distinct),
		words:    wordDist(distinct),
		vec:      d.model.ColumnVector(distinct),
	}
	return dc
}

// NumTables returns the number of staged tables.
func (d *D3L) NumTables() int { return len(d.tables) }

// FormatSignature summarizes value shapes as a normalized histogram
// over character classes and length buckets — D3L's format evidence.
// Two columns of phone numbers match on format even with zero value
// overlap; a name column and an ID column do not.
func FormatSignature(values []string) []float64 {
	// Classes: lower, upper, digit, space, punct; plus 4 length
	// buckets (<=4, <=8, <=16, >16).
	const dims = 9
	h := make([]float64, dims)
	if len(values) == 0 {
		return h
	}
	for _, v := range values {
		for _, r := range v {
			switch {
			case r >= 'a' && r <= 'z':
				h[0]++
			case r >= 'A' && r <= 'Z':
				h[1]++
			case r >= '0' && r <= '9':
				h[2]++
			case r == ' ':
				h[3]++
			default:
				h[4]++
			}
		}
		switch l := len(v); {
		case l <= 4:
			h[5]++
		case l <= 8:
			h[6]++
		case l <= 16:
			h[7]++
		default:
			h[8]++
		}
	}
	var sum float64
	for _, x := range h[:5] {
		sum += x
	}
	for i := 0; i < 5; i++ {
		if sum > 0 {
			h[i] /= sum
		}
	}
	n := float64(len(values))
	for i := 5; i < 9; i++ {
		h[i] /= n
	}
	return h
}

// formatSimilarity is 1 - half the L1 distance of the histograms.
func formatSimilarity(a, b []float64) float64 {
	var l1 float64
	for i := range a {
		l1 += math.Abs(a[i] - b[i])
	}
	s := 1 - l1/2
	if s < 0 {
		s = 0
	}
	return s
}

// wordDist is the normalized word-frequency distribution of values.
func wordDist(values []string) map[string]float64 {
	m := make(map[string]float64)
	var total float64
	for _, v := range values {
		for _, w := range tokenize.Words(v) {
			m[w]++
			total++
		}
	}
	for w := range m {
		m[w] /= total
	}
	return m
}

// wordSimilarity is the Bhattacharyya-like overlap of distributions.
// The shared words are summed in sorted order: float addition is not
// associative, so summing in map-iteration order would make repeated
// queries differ in the last bit — the kind of nondeterminism the
// build pipeline's parallelism contract (identical results at every
// worker count) cannot tolerate.
func wordSimilarity(a, b map[string]float64) float64 {
	small, big := a, b
	if len(big) < len(small) {
		small, big = big, small
	}
	shared := make([]string, 0, len(small))
	for w := range small {
		if _, ok := big[w]; ok {
			shared = append(shared, w)
		}
	}
	sort.Strings(shared)
	var s float64
	for _, w := range shared {
		s += math.Sqrt(small[w] * big[w])
	}
	return s
}

// Evidence carries the five per-pair signals, for introspection.
type Evidence struct {
	Name   float64
	Value  float64
	Format float64
	Words  float64
	Embed  float64
}

// Combined averages the evidence, D3L's aggregation.
func (e Evidence) Combined() float64 {
	return (e.Name + e.Value + e.Format + e.Words + e.Embed) / 5
}

// ColumnEvidence computes the five signals between two raw columns.
func (d *D3L) ColumnEvidence(a, b *table.Column) Evidence {
	ca := d.analyzeColumn(a)
	cb := d.analyzeColumn(b)
	return d.evidence(ca, cb)
}

func (d *D3L) evidence(a, b *d3lColumn) Evidence {
	return Evidence{
		Name:   (schema.NameMatcher{}).Score(a.col, b.col),
		Value:  minhash.ExactJaccard(a.distinct, b.distinct),
		Format: formatSimilarity(a.format, b.format),
		Words:  wordSimilarity(a.words, b.words),
		Embed:  (embedding.Cosine(a.vec, b.vec) + 1) / 2,
	}
}

// Search ranks staged tables by relatedness to the query: column
// pairs are scored by combined evidence and aggregated to table level
// with maximum-weight bipartite matching.
func (d *D3L) Search(query *table.Table, k int) ([]Result, error) {
	pq, err := d.Prepare(query)
	if err != nil {
		return nil, err
	}
	return d.ScoreAmong(pq, d.ids, k), nil
}

// D3LQuery is a query table's analyzed columns. Prepare once, then
// reuse across ScoreAmong calls so staged planners do not re-analyze
// per stage.
type D3LQuery struct {
	id    string
	qcols []*d3lColumn
}

// Prepare analyzes a query table's string columns. A query without
// usable string columns wraps table.ErrBadQuery.
func (d *D3L) Prepare(query *table.Table) (*D3LQuery, error) {
	qcols := make([]*d3lColumn, 0)
	for _, c := range stringColumns(query) {
		qcols = append(qcols, d.analyzeColumn(c))
	}
	if len(qcols) == 0 {
		return nil, fmt.Errorf("union: D3L query has no usable string columns: %w", table.ErrBadQuery)
	}
	return &D3LQuery{id: query.ID, qcols: qcols}, nil
}

// TableIDs returns the staged table IDs in insertion order. D3L has
// no candidate sketch — its candidate set is the whole lake.
func (d *D3L) TableIDs() []string { return d.ids }

// ScoreAmong scores the given staged tables by combined evidence and
// returns the top k; with ids = TableIDs() it is bit-identical to
// Search.
func (d *D3L) ScoreAmong(pq *D3LQuery, ids []string, k int) []Result {
	var res []Result
	for _, id := range ids {
		if id == pq.id {
			continue
		}
		ccols := d.tables[id].cols
		w := make([][]float64, len(pq.qcols))
		for i, qc := range pq.qcols {
			w[i] = make([]float64, len(ccols))
			for j, cc := range ccols {
				w[i][j] = d.evidence(qc, cc).Combined()
			}
		}
		_, total := graph.MaxWeightBipartiteMatching(w)
		res = append(res, Result{TableID: id, Score: total / float64(len(pq.qcols))})
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// FormatExample returns a compact textual rendering of a format
// signature for debugging and CLI display.
func FormatExample(sig []float64) string {
	if len(sig) != 9 {
		return "invalid"
	}
	parts := []string{"lower", "upper", "digit", "space", "punct"}
	var b strings.Builder
	for i, p := range parts {
		if sig[i] >= 0.15 {
			if b.Len() > 0 {
				b.WriteByte('+')
			}
			b.WriteString(p)
		}
	}
	if b.Len() == 0 {
		return "mixed"
	}
	return b.String()
}
