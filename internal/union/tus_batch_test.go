package union

import (
	"reflect"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
)

// TestTUSAddTablesMatchesSequential checks the batch loader's parity
// contract: AddTables at any worker count must produce the same engine
// state — and therefore the same search results — as the historical
// one-at-a-time AddTable loop.
func TestTUSAddTablesMatchesSequential(t *testing.T) {
	lake := datagen.Generate(datagen.Config{
		Seed:              31,
		NumDomains:        10,
		DomainSize:        80,
		NumTemplates:      4,
		TablesPerTemplate: 4,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 64, Seed: 3})
	kb := lake.BuildKB(0.9)

	newEngine := func() *TUS {
		tus, err := NewTUS(TUSConfig{Model: model, KB: kb})
		if err != nil {
			t.Fatal(err)
		}
		return tus
	}
	seq := newEngine()
	for _, tbl := range lake.Tables {
		seq.AddTable(tbl)
	}
	if err := seq.Build(); err != nil {
		t.Fatal(err)
	}
	query := lake.Tables[0]
	want, err := seq.Search(query, 5, EnsembleMeasure)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		par := newEngine()
		par.AddTables(lake.Tables, workers)
		if par.NumTables() != seq.NumTables() {
			t.Fatalf("workers=%d: staged %d tables, want %d", workers, par.NumTables(), seq.NumTables())
		}
		if err := par.Build(); err != nil {
			t.Fatal(err)
		}
		got, err := par.Search(query, 5, EnsembleMeasure)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}
