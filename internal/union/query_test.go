package union

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestTUSSearchRequiresBuild pins the read-path contract: Search never
// mutates the engine, so an unbuilt (or re-staged) engine reports
// ErrNotBuilt instead of building implicitly.
func TestTUSSearchRequiresBuild(t *testing.T) {
	lake, tus := lakeAndTUS(t, false, false)
	fresh, err := NewTUS(TUSConfig{Model: tus.cfg.Model})
	if err != nil {
		t.Fatal(err)
	}
	fresh.AddTable(lake.Tables[0])
	if _, err := fresh.Search(lake.Tables[1], 3, SetMeasure); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Search before Build: err = %v, want ErrNotBuilt", err)
	}
	// Staging a table after Build un-freezes the index again.
	tus.AddTable(confusableTables("restaged", 0, 1, 20)[0])
	if _, err := tus.Search(lake.Tables[1], 3, SetMeasure); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Search after post-Build AddTable: err = %v, want ErrNotBuilt", err)
	}
}

// TestTUSQueryParallelismParity checks the serving determinism
// contract: candidate scoring fanned over 8 workers returns results
// bit-identical to the sequential scan, for every measure.
func TestTUSQueryParallelismParity(t *testing.T) {
	lake, tus := lakeAndTUS(t, false, true)
	for _, m := range []Measure{SetMeasure, SemMeasure, NLMeasure, EnsembleMeasure} {
		for _, q := range []int{0, 2} {
			query := lake.Tables[q*7]
			tus.QueryParallelism = 1
			want, err := tus.Search(query, 6, m)
			if err != nil {
				t.Fatal(err)
			}
			tus.QueryParallelism = 8
			got, err := tus.Search(query, 6, m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("measure %v query %d: parallel results differ\ngot  %+v\nwant %+v", m, q, got, want)
			}
		}
	}
}

// TestTUSConcurrentSearch hammers Search from many goroutines; run
// under -race (make race) it proves the read path is mutation-free.
func TestTUSConcurrentSearch(t *testing.T) {
	lake, tus := lakeAndTUS(t, false, true)
	tus.QueryParallelism = 2 // exercise the per-query fan-out too
	want, err := tus.Search(lake.Tables[0], 5, EnsembleMeasure)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				query := lake.Tables[(g*4+i)%len(lake.Tables)]
				res, err := tus.Search(query, 5, EnsembleMeasure)
				if err != nil {
					errs <- err
					return
				}
				if query == lake.Tables[0] && !reflect.DeepEqual(res, want) {
					t.Errorf("concurrent result diverged for table 0")
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSantosSearchRequiresBuild mirrors the TUS contract for SANTOS.
func TestSantosSearchRequiresBuild(t *testing.T) {
	groupA := confusableTables("locA", 0, 3, 40)
	s := NewSantos(nil)
	for _, tbl := range groupA {
		s.AddTable(tbl)
	}
	if _, err := s.Search(groupA[0], 3, SynthOnly); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("Search before Build: err = %v, want ErrNotBuilt", err)
	}
}

// TestSantosQueryParallelismParity checks bit-identical results across
// worker counts for every knowledge mode.
func TestSantosQueryParallelismParity(t *testing.T) {
	s, groupA, groupB := buildSantos(t, curatedKB())
	for _, mode := range []SantosMode{CuratedOnly, SynthOnly, Hybrid} {
		for _, query := range []int{0, 1} {
			q := append(groupA, groupB...)[query*3]
			s.QueryParallelism = 1
			want, err := s.Search(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			s.QueryParallelism = 8
			got, err := s.Search(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("mode %v: parallel results differ\ngot  %+v\nwant %+v", mode, got, want)
			}
		}
	}
}

// TestSantosConcurrentSearch proves the SANTOS read path is race-free
// under -race.
func TestSantosConcurrentSearch(t *testing.T) {
	s, groupA, groupB := buildSantos(t, curatedKB())
	s.QueryParallelism = 2
	tables := append(groupA, groupB...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := s.Search(tables[(g+i)%len(tables)], 5, Hybrid); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLogFactTableMatchesLgamma pins the cache's bit-identity
// contract: cached CDF values equal the uncached reference both
// inside and beyond the table's range.
func TestLogFactTableMatchesLgamma(t *testing.T) {
	lf := newLogFactTable(50)
	for n := 0; n <= 60; n++ {
		want, _ := math.Lgamma(float64(n + 1))
		if got := lf.logFact(n); got != want {
			t.Fatalf("logFact(%d) = %v, want %v", n, got, want)
		}
	}
	for _, c := range [][4]int{{3, 50, 10, 10}, {7, 1000, 10, 10}, {5, 20, 30, 40}} {
		want := hypergeomCDF(c[0], c[1], c[2], c[3])
		if got := lf.hypergeomCDF(c[0], c[1], c[2], c[3]); got != want {
			t.Fatalf("cached CDF%v = %v, want %v", c, got, want)
		}
	}
}
