package union

import (
	"fmt"
	"testing"

	"tablehound/internal/embedding"
	"tablehound/internal/kb"
	"tablehound/internal/table"
)

// confusableLakes builds two groups of tables over the SAME two
// domains (city, country) but with DIFFERENT relationships: group A
// pairs city i with country i ("locatedIn"), group B pairs city i
// with country (i+7)%n ("visitedFrom"). Column-only union search
// cannot tell the groups apart; relationship-aware search can.
func confusableTables(group string, shift, nTables, nRows int) []*table.Table {
	var out []*table.Table
	for t := 0; t < nTables; t++ {
		cities := make([]string, nRows)
		countries := make([]string, nRows)
		for r := 0; r < nRows; r++ {
			i := (t*13 + r) % 30
			cities[r] = fmt.Sprintf("city_%02d", i)
			countries[r] = fmt.Sprintf("country_%02d", (i+shift)%30)
		}
		out = append(out, table.MustNew(
			fmt.Sprintf("%s_%d", group, t), group,
			[]*table.Column{
				table.NewColumn("city", cities),
				table.NewColumn("country", countries),
			}))
	}
	return out
}

func curatedKB() *kb.KB {
	k := kb.New()
	for i := 0; i < 30; i++ {
		city := fmt.Sprintf("city_%02d", i)
		k.AddEntity(city, "city")
		k.AddEntity(fmt.Sprintf("country_%02d", i), "country")
		k.AddFact(city, "locatedIn", fmt.Sprintf("country_%02d", i))
		k.AddFact(city, "visitedFrom", fmt.Sprintf("country_%02d", (i+7)%30))
	}
	return k
}

func buildSantos(t *testing.T, curated *kb.KB) (*Santos, []*table.Table, []*table.Table) {
	t.Helper()
	groupA := confusableTables("locA", 0, 5, 60)
	groupB := confusableTables("visB", 7, 5, 60)
	s := NewSantos(curated)
	for _, tbl := range append(append([]*table.Table{}, groupA...), groupB...) {
		s.AddTable(tbl)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	return s, groupA, groupB
}

func topIDs(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TableID
	}
	return out
}

func TestSantosDistinguishesRelationships(t *testing.T) {
	for _, mode := range []SantosMode{SynthOnly, CuratedOnly, Hybrid} {
		s, groupA, _ := buildSantos(t, curatedKB())
		res, err := s.Search(groupA[0], 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) < 4 {
			t.Fatalf("%v: only %d results", mode, len(res))
		}
		for _, r := range res[:4] {
			if r.TableID[:4] != "locA" {
				t.Errorf("%v: wrong-relationship table %s in top-4: %v", mode, r.TableID, topIDs(res))
			}
		}
	}
}

func TestSantosColumnOnlyBaselineConfused(t *testing.T) {
	// Contrast: TUS set measure sees identical domains in both groups.
	groupA := confusableTables("locA", 0, 5, 60)
	groupB := confusableTables("visB", 7, 5, 60)
	model := embedding.Train(nil, embedding.Config{Dim: 32, Seed: 1})
	tus, err := NewTUS(TUSConfig{Model: model, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range append(append([]*table.Table{}, groupA...), groupB...) {
		tus.AddTable(tbl)
	}
	if err := tus.Build(); err != nil {
		t.Fatal(err)
	}
	res, err := tus.Search(groupA[0], 9, SetMeasure)
	if err != nil {
		t.Fatal(err)
	}
	// The wrong-relationship group scores as high as the right one.
	var bestWrong, worstRight float64 = 0, 1
	for _, r := range res {
		if r.TableID[:4] == "visB" && r.Score > bestWrong {
			bestWrong = r.Score
		}
		if r.TableID[:4] == "locA" && r.Score < worstRight {
			worstRight = r.Score
		}
	}
	if bestWrong < worstRight-0.1 {
		t.Skip("column-only baseline unexpectedly separated the groups")
	}
	// This is the confusion SANTOS removes; no assertion failure —
	// the point is documented by TestSantosDistinguishesRelationships.
}

func TestSantosCuratedDetectsPredicateMismatch(t *testing.T) {
	// Hybrid mode with full coverage must use the curated verdict:
	// tables with overlapping pairs but different predicates score low.
	s, groupA, groupB := buildSantos(t, curatedKB())
	res, err := s.Search(groupA[0], 10, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, r := range res {
		scores[r.TableID] = r.Score
	}
	if scores[groupA[1].ID] <= scores[groupB[0].ID] {
		t.Errorf("same-relationship %v should beat different-relationship %v",
			scores[groupA[1].ID], scores[groupB[0].ID])
	}
}

func TestSantosWithoutKB(t *testing.T) {
	s, groupA, _ := buildSantos(t, nil)
	res, err := s.Search(groupA[0], 4, SynthOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res[:4] {
		if r.TableID[:4] != "locA" {
			t.Errorf("synth-only without KB failed: %v", topIDs(res))
		}
	}
	// CuratedOnly without a KB finds nothing.
	res, err = s.Search(groupA[0], 4, CuratedOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("curated-only without KB returned %v", topIDs(res))
	}
}

func TestSantosErrors(t *testing.T) {
	s := NewSantos(nil)
	if err := s.Build(); err == nil {
		t.Error("empty Build should fail")
	}
	// Single-column tables are unusable.
	s.AddTable(table.MustNew("one", "one", []*table.Column{
		table.NewColumn("only", []string{"a", "b"}),
	}))
	if s.NumTables() != 0 {
		t.Error("single-column table should be skipped")
	}
	s2, groupA, _ := buildSantos(t, nil)
	oneCol := table.MustNew("q", "q", []*table.Column{
		table.NewColumn("only", []string{"a", "b"}),
	})
	if _, err := s2.Search(oneCol, 3, SynthOnly); err == nil {
		t.Error("unusable query should fail")
	}
	_ = groupA
}

func TestSantosModeString(t *testing.T) {
	if CuratedOnly.String() != "curated" || SynthOnly.String() != "synth" || Hybrid.String() != "hybrid" || SantosMode(9).String() != "unknown" {
		t.Error("SantosMode.String wrong")
	}
}
