package union

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/kb"
	"tablehound/internal/parallel"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// SantosMode selects which knowledge source annotates relationships.
type SantosMode int

// Modes. Hybrid prefers the curated KB where it covers the pair and
// falls back to the synthesized (lake-mined) evidence elsewhere —
// exploiting the precision/coverage trade-off the tutorial discusses.
const (
	CuratedOnly SantosMode = iota
	SynthOnly
	Hybrid
)

func (m SantosMode) String() string {
	switch m {
	case CuratedOnly:
		return "curated"
	case SynthOnly:
		return "synth"
	case Hybrid:
		return "hybrid"
	}
	return "unknown"
}

// Santos is a relationship-aware union search engine. A table is
// modeled as its intent column (the first usable string column, the
// subject of the table) plus the binary relationships between the
// intent column and every other column. A candidate is unionable when
// its columns AND its relationships align with the query's.
//
// Search is read-only and safe for concurrent use once Build has
// returned; AddTable/Build must not run concurrently with Search.
type Santos struct {
	curated *kb.KB
	tables  map[string]*santosTable
	ids     []string
	// pairDict interns every "subject||object" pair token mined from
	// the lake; relationships hold sorted ID sets over it, so pair
	// containment is an integer merge. Rebuilt by Build (the pair
	// vocabulary is lake-derived, never external).
	pairDict *dict.Dict
	// pairIndex maps a pair token ID to tables containing it — the
	// synthesized KB, mined from the lake itself.
	pairIndex map[uint32][]string
	built     bool

	// QueryParallelism bounds the per-query candidate-verification
	// fan-out in Search: 0 = GOMAXPROCS, negative or 1 = sequential.
	// Results are bit-identical at every setting. Set before serving
	// queries.
	QueryParallelism int
}

type santosTable struct {
	tbl *table.Table
	// rels[i] holds the relationship between the intent column and
	// non-intent column i.
	rels []santosRel
}

type santosRel struct {
	colName string
	// pairs holds the "subject||object" value-pair tokens between
	// staging and Build; Build encodes them into pairIDs and clears the
	// slice. Query relationships are encoded immediately.
	pairs []string
	// pairIDs is the same token set as sorted pair-dictionary IDs.
	pairIDs dict.IDSet
	// pred is the curated-KB dominant predicate, when covered.
	pred     string
	predFrac float64
}

// NewSantos creates an engine; curated may be nil (SynthOnly then).
func NewSantos(curated *kb.KB) *Santos {
	return &Santos{
		curated:   curated,
		tables:    make(map[string]*santosTable),
		pairIndex: make(map[uint32][]string),
	}
}

// AddTable stages a table.
func (s *Santos) AddTable(tbl *table.Table) {
	if _, dup := s.tables[tbl.ID]; dup {
		return
	}
	st := s.analyze(tbl)
	if st == nil {
		return
	}
	s.tables[tbl.ID] = st
	s.ids = append(s.ids, tbl.ID)
	s.built = false
}

// analyze extracts the intent column and its relationships.
func (s *Santos) analyze(tbl *table.Table) *santosTable {
	cols := stringColumns(tbl)
	if len(cols) < 2 {
		return nil
	}
	intent := cols[0]
	st := &santosTable{tbl: tbl}
	for _, c := range cols[1:] {
		rel := santosRel{colName: c.Name}
		seen := make(map[string]bool)
		var kbPairs [][2]string
		for r := 0; r < tbl.NumRows(); r++ {
			a := tokenize.Normalize(intent.Values[r])
			b := tokenize.Normalize(c.Values[r])
			if a == "" || b == "" {
				continue
			}
			tok := a + "||" + b
			if !seen[tok] {
				seen[tok] = true
				rel.pairs = append(rel.pairs, tok)
				kbPairs = append(kbPairs, [2]string{a, b})
			}
		}
		if s.curated != nil && len(kbPairs) > 0 {
			if pred, frac, ok := s.curated.DominantPredicate(kbPairs); ok && frac >= 0.5 {
				rel.pred, rel.predFrac = pred, frac
			}
		}
		st.rels = append(st.rels, rel)
	}
	return st
}

// Build freezes the synthesized pair index: it interns the pair
// vocabulary into a fresh dictionary, encodes every relationship's
// pair set to sorted IDs, and indexes pair ID -> owning tables.
// Relationships encoded by an earlier Build are first decoded through
// the old dictionary — IDs from two dictionaries must never mix.
func (s *Santos) Build() error {
	if len(s.tables) == 0 {
		return errors.New("union: no tables added to SANTOS")
	}
	sort.Strings(s.ids)
	db := dict.NewBuilder()
	for _, id := range s.ids {
		for i := range s.tables[id].rels {
			rel := &s.tables[id].rels[i]
			if rel.pairs == nil && rel.pairIDs != nil {
				rel.pairs = s.pairDict.Decode(rel.pairIDs)
			}
			db.Add(rel.pairs...)
		}
	}
	s.pairDict = db.Build()
	s.pairIndex = make(map[uint32][]string)
	for _, id := range s.ids {
		for i := range s.tables[id].rels {
			rel := &s.tables[id].rels[i]
			rel.pairIDs, _ = s.pairDict.EncodeKnown(rel.pairs)
			rel.pairs = nil
			for _, p := range rel.pairIDs {
				s.pairIndex[p] = append(s.pairIndex[p], id)
			}
		}
	}
	s.built = true
	return nil
}

// NumTables returns the number of indexed tables.
func (s *Santos) NumTables() int { return len(s.tables) }

// PairDict returns the pair-token dictionary (nil before Build).
func (s *Santos) PairDict() *dict.Dict { return s.pairDict }

// PairFootprint reports the resident cost of the ID-encoded pair sets
// next to an estimate of the per-relationship string maps they
// replaced.
func (s *Santos) PairFootprint() dict.Footprint {
	var f dict.Footprint
	for _, id := range s.ids {
		for _, rel := range s.tables[id].rels {
			f.Accumulate(s.pairDict.SetFootprint(rel.pairIDs))
		}
	}
	return f
}

// Search returns the k tables whose relationships best align with the
// query's, under the given knowledge mode. Search is a pure read: it
// requires a prior Build (ErrNotBuilt otherwise) and is safe for
// concurrent use; candidate verification fans out over
// QueryParallelism workers with bit-identical results.
func (s *Santos) Search(query *table.Table, k int, mode SantosMode) ([]Result, error) {
	return s.SearchCtx(context.Background(), query, k, mode)
}

// SearchCtx is Search with cooperative cancellation: candidate
// verification checks ctx between candidate tables. A query table
// without the shape SANTOS needs wraps table.ErrBadQuery.
func (s *Santos) SearchCtx(ctx context.Context, query *table.Table, k int, mode SantosMode) ([]Result, error) {
	pq, err := s.Prepare(query)
	if err != nil {
		return nil, err
	}
	return s.ScoreAmongCtx(ctx, pq, s.Candidates(pq, mode), k, mode)
}

// SantosQuery is a query table analyzed and pair-encoded against the
// frozen pair dictionary. Prepare once, then reuse across Candidates
// and ScoreAmongCtx so staged planners do not re-encode per stage.
type SantosQuery struct {
	id string
	q  *santosTable
}

// Prepare analyzes a query table into relationships and encodes its
// pair sets against the frozen pair dictionary. One encoder across
// relationships: pairs absent from the lake get ephemeral IDs (never
// matching an indexed pair) that are shared between query
// relationships. A query without the shape SANTOS needs wraps
// table.ErrBadQuery.
func (s *Santos) Prepare(query *table.Table) (*SantosQuery, error) {
	if !s.built {
		return nil, ErrNotBuilt
	}
	q := s.analyze(query)
	if q == nil {
		return nil, fmt.Errorf("union: query table needs an intent column and one other string column: %w", table.ErrBadQuery)
	}
	enc := s.pairDict.Encoder()
	for i := range q.rels {
		q.rels[i].pairIDs = enc.Encode(q.rels[i].pairs)
		q.rels[i].pairs = nil
	}
	return &SantosQuery{id: query.ID, q: q}, nil
}

// Candidates returns the sorted candidate table IDs for a prepared
// query: tables sharing any value pair with the query, plus (curated
// modes) tables sharing a predicate.
func (s *Santos) Candidates(pq *SantosQuery, mode SantosMode) []string {
	return s.candidates(pq.q, mode)
}

// ScoreAmongCtx exactly scores the given candidate tables and returns
// the top k; with ids = Candidates(pq, mode) it is bit-identical to
// SearchCtx.
func (s *Santos) ScoreAmongCtx(ctx context.Context, pq *SantosQuery, ids []string, k int, mode SantosMode) ([]Result, error) {
	scores, err := parallel.MapCtx(ctx, len(ids), parallel.Resolve(s.QueryParallelism), func(i int) (float64, error) {
		if ids[i] == pq.id {
			return 0, nil
		}
		return s.tableScore(pq.q, s.tables[ids[i]], mode), nil
	})
	if err != nil {
		return nil, err
	}
	var res []Result
	for i, id := range ids {
		if id == pq.id {
			continue
		}
		if scores[i] > 0 {
			res = append(res, Result{TableID: id, Score: scores[i]})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

func (s *Santos) candidates(q *santosTable, mode SantosMode) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if mode != CuratedOnly {
		for _, rel := range q.rels {
			for _, p := range rel.pairIDs {
				for _, id := range s.pairIndex[p] {
					add(id)
				}
			}
		}
	}
	if mode != SynthOnly {
		for _, rel := range q.rels {
			if rel.pred == "" {
				continue
			}
			for _, id := range s.ids {
				for _, crel := range s.tables[id].rels {
					if crel.pred == rel.pred {
						add(id)
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// tableScore averages, over the query's relationships, the best
// relationship alignment found in the candidate.
func (s *Santos) tableScore(q, c *santosTable, mode SantosMode) float64 {
	if len(q.rels) == 0 {
		return 0
	}
	var total float64
	for _, qr := range q.rels {
		best := 0.0
		for _, cr := range c.rels {
			if v := relScore(qr, cr, mode); v > best {
				best = v
			}
		}
		total += best
	}
	return total / float64(len(q.rels))
}

// relScore scores one relationship pair. Curated predicate equality is
// decisive evidence; synthesized evidence is the containment of the
// smaller pair set in the larger.
func relScore(a, b santosRel, mode SantosMode) float64 {
	var curated, synth float64
	if a.pred != "" && a.pred == b.pred {
		curated = (a.predFrac + b.predFrac) / 2
	}
	if mode != CuratedOnly {
		small, big := a.pairIDs, b.pairIDs
		if len(big) < len(small) {
			small, big = big, small
		}
		synth = dict.Containment(small, big)
	}
	switch mode {
	case CuratedOnly:
		return curated
	case SynthOnly:
		return synth
	default:
		if a.pred != "" && b.pred != "" {
			// Both covered: trust the curated verdict (including a
			// decisive mismatch — different predicates mean different
			// relationships even when value pairs overlap).
			return curated
		}
		return synth
	}
}
