package union

import (
	"errors"
	"sort"

	"tablehound/internal/kb"
	"tablehound/internal/minhash"
	"tablehound/internal/parallel"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// SantosMode selects which knowledge source annotates relationships.
type SantosMode int

// Modes. Hybrid prefers the curated KB where it covers the pair and
// falls back to the synthesized (lake-mined) evidence elsewhere —
// exploiting the precision/coverage trade-off the tutorial discusses.
const (
	CuratedOnly SantosMode = iota
	SynthOnly
	Hybrid
)

func (m SantosMode) String() string {
	switch m {
	case CuratedOnly:
		return "curated"
	case SynthOnly:
		return "synth"
	case Hybrid:
		return "hybrid"
	}
	return "unknown"
}

// Santos is a relationship-aware union search engine. A table is
// modeled as its intent column (the first usable string column, the
// subject of the table) plus the binary relationships between the
// intent column and every other column. A candidate is unionable when
// its columns AND its relationships align with the query's.
//
// Search is read-only and safe for concurrent use once Build has
// returned; AddTable/Build must not run concurrently with Search.
type Santos struct {
	curated *kb.KB
	tables  map[string]*santosTable
	ids     []string
	// pairIndex maps a value-pair token to tables containing it — the
	// synthesized KB, mined from the lake itself.
	pairIndex map[string][]string
	built     bool

	// QueryParallelism bounds the per-query candidate-verification
	// fan-out in Search: 0 = GOMAXPROCS, negative or 1 = sequential.
	// Results are bit-identical at every setting. Set before serving
	// queries.
	QueryParallelism int
}

type santosTable struct {
	tbl *table.Table
	// rels[i] holds the relationship between the intent column and
	// non-intent column i.
	rels []santosRel
}

type santosRel struct {
	colName string
	// pairs is the set of "subject||object" value-pair tokens.
	pairs []string
	// pairSet is the same tokens precomputed for containment scoring.
	pairSet minhash.Set
	// pred is the curated-KB dominant predicate, when covered.
	pred     string
	predFrac float64
}

// NewSantos creates an engine; curated may be nil (SynthOnly then).
func NewSantos(curated *kb.KB) *Santos {
	return &Santos{
		curated:   curated,
		tables:    make(map[string]*santosTable),
		pairIndex: make(map[string][]string),
	}
}

// AddTable stages a table.
func (s *Santos) AddTable(tbl *table.Table) {
	if _, dup := s.tables[tbl.ID]; dup {
		return
	}
	st := s.analyze(tbl)
	if st == nil {
		return
	}
	s.tables[tbl.ID] = st
	s.ids = append(s.ids, tbl.ID)
	s.built = false
}

// analyze extracts the intent column and its relationships.
func (s *Santos) analyze(tbl *table.Table) *santosTable {
	cols := stringColumns(tbl)
	if len(cols) < 2 {
		return nil
	}
	intent := cols[0]
	st := &santosTable{tbl: tbl}
	for _, c := range cols[1:] {
		rel := santosRel{colName: c.Name}
		seen := make(map[string]bool)
		var kbPairs [][2]string
		for r := 0; r < tbl.NumRows(); r++ {
			a := tokenize.Normalize(intent.Values[r])
			b := tokenize.Normalize(c.Values[r])
			if a == "" || b == "" {
				continue
			}
			tok := a + "||" + b
			if !seen[tok] {
				seen[tok] = true
				rel.pairs = append(rel.pairs, tok)
				kbPairs = append(kbPairs, [2]string{a, b})
			}
		}
		rel.pairSet = minhash.NewSet(rel.pairs)
		if s.curated != nil && len(kbPairs) > 0 {
			if pred, frac, ok := s.curated.DominantPredicate(kbPairs); ok && frac >= 0.5 {
				rel.pred, rel.predFrac = pred, frac
			}
		}
		st.rels = append(st.rels, rel)
	}
	return st
}

// Build freezes the synthesized pair index.
func (s *Santos) Build() error {
	if len(s.tables) == 0 {
		return errors.New("union: no tables added to SANTOS")
	}
	sort.Strings(s.ids)
	s.pairIndex = make(map[string][]string)
	for _, id := range s.ids {
		for _, rel := range s.tables[id].rels {
			for _, p := range rel.pairs {
				s.pairIndex[p] = append(s.pairIndex[p], id)
			}
		}
	}
	s.built = true
	return nil
}

// NumTables returns the number of indexed tables.
func (s *Santos) NumTables() int { return len(s.tables) }

// Search returns the k tables whose relationships best align with the
// query's, under the given knowledge mode. Search is a pure read: it
// requires a prior Build (ErrNotBuilt otherwise) and is safe for
// concurrent use; candidate verification fans out over
// QueryParallelism workers with bit-identical results.
func (s *Santos) Search(query *table.Table, k int, mode SantosMode) ([]Result, error) {
	if !s.built {
		return nil, ErrNotBuilt
	}
	q := s.analyze(query)
	if q == nil {
		return nil, errors.New("union: query table needs an intent column and one other string column")
	}
	// Candidates: tables sharing any value pair with the query, plus
	// (curated modes) tables sharing a predicate.
	cands := s.candidates(q, mode)
	scores, _ := parallel.Map(len(cands), parallel.Resolve(s.QueryParallelism), func(i int) (float64, error) {
		if cands[i] == query.ID {
			return 0, nil
		}
		return s.tableScore(q, s.tables[cands[i]], mode), nil
	})
	var res []Result
	for i, id := range cands {
		if id == query.ID {
			continue
		}
		if scores[i] > 0 {
			res = append(res, Result{TableID: id, Score: scores[i]})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

func (s *Santos) candidates(q *santosTable, mode SantosMode) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if mode != CuratedOnly {
		for _, rel := range q.rels {
			for _, p := range rel.pairs {
				for _, id := range s.pairIndex[p] {
					add(id)
				}
			}
		}
	}
	if mode != SynthOnly {
		for _, rel := range q.rels {
			if rel.pred == "" {
				continue
			}
			for _, id := range s.ids {
				for _, crel := range s.tables[id].rels {
					if crel.pred == rel.pred {
						add(id)
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// tableScore averages, over the query's relationships, the best
// relationship alignment found in the candidate.
func (s *Santos) tableScore(q, c *santosTable, mode SantosMode) float64 {
	if len(q.rels) == 0 {
		return 0
	}
	var total float64
	for _, qr := range q.rels {
		best := 0.0
		for _, cr := range c.rels {
			if v := relScore(qr, cr, mode); v > best {
				best = v
			}
		}
		total += best
	}
	return total / float64(len(q.rels))
}

// relScore scores one relationship pair. Curated predicate equality is
// decisive evidence; synthesized evidence is the containment of the
// smaller pair set in the larger.
func relScore(a, b santosRel, mode SantosMode) float64 {
	var curated, synth float64
	if a.pred != "" && a.pred == b.pred {
		curated = (a.predFrac + b.predFrac) / 2
	}
	if mode != CuratedOnly {
		small, big := a.pairSet, b.pairSet
		if len(big) < len(small) {
			small, big = big, small
		}
		synth = minhash.ContainmentSets(small, big)
	}
	switch mode {
	case CuratedOnly:
		return curated
	case SynthOnly:
		return synth
	default:
		if a.pred != "" && b.pred != "" {
			// Both covered: trust the curated verdict (including a
			// decisive mismatch — different predicates mean different
			// relationships even when value pairs overlap).
			return curated
		}
		return synth
	}
}
