package union

import (
	"fmt"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/hnsw"
	"tablehound/internal/kb"
	"tablehound/internal/lsh"
	"tablehound/internal/minhash"
	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// AppendSnapshot encodes a built TUS engine against the system
// dictionary sysDict. Per-column analyses (ID sets, signatures,
// embeddings, KB annotations) and the HNSW topology are stored
// verbatim; the banded set-LSH index is rebuilt on decode — its
// construction is a deterministic function of the stored signatures in
// table/column order — and so is the ln n! cache.
func (t *TUS) AppendSnapshot(e *snap.Encoder, sysDict *dict.Dict) {
	e.Bool(t.cfg.Exhaustive)
	e.U32(uint32(t.cfg.NumHashes))
	t.hasher.AppendSnapshot(e)
	shared := t.dict == sysDict
	e.Bool(shared)
	if !shared {
		t.dict.AppendSnapshot(e)
	}
	univ := make([]string, 0, len(t.univ))
	for v := range t.univ {
		univ = append(univ, v)
	}
	sort.Strings(univ)
	e.Strs(univ)
	e.Strs(t.ids)
	for _, id := range t.ids {
		entry := t.tables[id]
		e.U32(uint32(len(entry.cols)))
		for _, c := range entry.cols {
			e.Str(c.name)
			e.U32s(c.ids)
			e.U64s(c.sig)
			e.F32s(c.vec)
			e.Str(c.semType)
			e.F64(c.semCover)
		}
	}
	t.nlIndex.AppendSnapshot(e)
}

// DecodeTUSSnapshot rebuilds a TUS engine written by AppendSnapshot.
// cfg supplies the runtime resources (model, KB, lake dictionary) the
// snapshot references rather than stores; lookup resolves table IDs
// against the loaded catalog.
func DecodeTUSSnapshot(d *snap.Decoder, cfg TUSConfig, lookup func(id string) *table.Table) (*TUS, error) {
	cfg.Exhaustive = d.Bool()
	cfg.NumHashes = int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	hasher, err := minhash.DecodeSnapshot(d)
	if err != nil {
		return nil, err
	}
	t, err := NewTUS(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
	}
	t.hasher = hasher
	shared := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if shared {
		if cfg.Dict == nil {
			return nil, fmt.Errorf("%w: TUS shares a dictionary the snapshot does not carry", snap.ErrCorrupt)
		}
		t.dict = cfg.Dict
	} else {
		if t.dict, err = dict.DecodeSnapshot(d); err != nil {
			return nil, err
		}
	}
	univ := d.Strs()
	ids := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !sort.StringsAreSorted(ids) {
		return nil, fmt.Errorf("%w: TUS table IDs not sorted", snap.ErrCorrupt)
	}
	for _, v := range univ {
		t.univ[v] = true
	}
	t.ids = ids
	for _, id := range ids {
		if lookup(id) == nil {
			return nil, fmt.Errorf("%w: TUS table %q missing from catalog", snap.ErrCorrupt, id)
		}
		numCols := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		entry := &tusTable{tbl: lookup(id)}
		for j := 0; j < numCols; j++ {
			c := &tusColumn{
				name:     d.Str(),
				ids:      dict.IDSet(d.U32s()),
				sig:      minhash.Signature(d.U64s()),
				vec:      d.F32s(),
				semType:  d.Str(),
				semCover: d.F64(),
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			entry.cols = append(entry.cols, c)
		}
		if _, dup := t.tables[id]; dup {
			return nil, fmt.Errorf("%w: duplicate TUS table %q", snap.ErrCorrupt, id)
		}
		t.tables[id] = entry
	}
	if t.nlIndex, err = hnsw.DecodeSnapshot(d); err != nil {
		return nil, err
	}
	// Rebuild the candidate-generation LSH exactly as Build does: same
	// banding parameters, same insertion order.
	b, r := lsh.OptimalParams(0.3, t.cfg.NumHashes, 0.8, 0.2)
	t.setLSH = lsh.New(b, r)
	for _, id := range t.ids {
		for _, c := range t.tables[id].cols {
			if err := t.setLSH.Add(table.ColumnKey(id, c.name), c.sig); err != nil {
				return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
			}
		}
	}
	t.lfact = newLogFactTable(len(t.univ) + 1)
	t.built = true
	return t, nil
}

// AppendSnapshot encodes a SANTOS engine: the pair dictionary, each
// table's encoded relationships, and the built flag. The pair-to-table
// index is rebuilt on decode by replaying Build's indexing loop over
// the stored (sorted) table order.
func (s *Santos) AppendSnapshot(e *snap.Encoder) {
	e.Bool(s.built)
	hasPairDict := s.pairDict != nil
	e.Bool(hasPairDict)
	if hasPairDict {
		s.pairDict.AppendSnapshot(e)
	}
	e.Strs(s.ids)
	for _, id := range s.ids {
		st := s.tables[id]
		e.U32(uint32(len(st.rels)))
		for _, rel := range st.rels {
			e.Str(rel.colName)
			e.U32s(rel.pairIDs)
			e.Str(rel.pred)
			e.F64(rel.predFrac)
		}
	}
}

// DecodeSantosSnapshot rebuilds a SANTOS engine written by
// AppendSnapshot. curated is the loaded KB (may be nil); lookup
// resolves table IDs against the loaded catalog.
func DecodeSantosSnapshot(d *snap.Decoder, curated *kb.KB, lookup func(id string) *table.Table) (*Santos, error) {
	s := NewSantos(curated)
	built := d.Bool()
	hasPairDict := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if hasPairDict {
		var err error
		if s.pairDict, err = dict.DecodeSnapshot(d); err != nil {
			return nil, err
		}
	}
	ids := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !sort.StringsAreSorted(ids) && built {
		return nil, fmt.Errorf("%w: SANTOS table IDs not sorted", snap.ErrCorrupt)
	}
	s.ids = ids
	for _, id := range ids {
		tbl := lookup(id)
		if tbl == nil {
			return nil, fmt.Errorf("%w: SANTOS table %q missing from catalog", snap.ErrCorrupt, id)
		}
		numRels := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		st := &santosTable{tbl: tbl}
		for j := 0; j < numRels; j++ {
			rel := santosRel{
				colName:  d.Str(),
				pairIDs:  dict.IDSet(d.U32s()),
				pred:     d.Str(),
				predFrac: d.F64(),
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			st.rels = append(st.rels, rel)
		}
		if _, dup := s.tables[id]; dup {
			return nil, fmt.Errorf("%w: duplicate SANTOS table %q", snap.ErrCorrupt, id)
		}
		s.tables[id] = st
	}
	// Replay Build's pair-indexing loop over the stored order.
	for _, id := range s.ids {
		for i := range s.tables[id].rels {
			for _, p := range s.tables[id].rels[i].pairIDs {
				s.pairIndex[p] = append(s.pairIndex[p], id)
			}
		}
	}
	s.built = built
	return s, nil
}

// AppendSnapshot encodes a D3L engine: every staged table's per-column
// analyses (distinct values, format histogram, word distribution,
// embedding) plus the index of the source column within its table, so
// decode can rewire the column pointer the name evidence reads.
func (d3 *D3L) AppendSnapshot(e *snap.Encoder) {
	e.Strs(d3.ids)
	for _, id := range d3.ids {
		entry := d3.tables[id]
		e.U32(uint32(len(entry.cols)))
		for _, c := range entry.cols {
			colIdx := -1
			for i, tc := range entry.tbl.Columns {
				if tc == c.col {
					colIdx = i
					break
				}
			}
			e.U32(uint32(colIdx))
			e.Strs(c.distinct)
			e.F64s(c.format)
			words := make([]string, 0, len(c.words))
			for w := range c.words {
				words = append(words, w)
			}
			sort.Strings(words)
			e.U32(uint32(len(words)))
			for _, w := range words {
				e.Str(w)
				e.F64(c.words[w])
			}
			e.F32s(c.vec)
		}
	}
}

// DecodeD3LSnapshot rebuilds a D3L engine written by AppendSnapshot.
func DecodeD3LSnapshot(d *snap.Decoder, model *embedding.Model, lookup func(id string) *table.Table) (*D3L, error) {
	d3, err := NewD3L(model)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
	}
	ids := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !sort.StringsAreSorted(ids) {
		return nil, fmt.Errorf("%w: D3L table IDs not sorted", snap.ErrCorrupt)
	}
	d3.ids = ids
	for _, id := range ids {
		tbl := lookup(id)
		if tbl == nil {
			return nil, fmt.Errorf("%w: D3L table %q missing from catalog", snap.ErrCorrupt, id)
		}
		numCols := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		entry := &d3lTable{tbl: tbl}
		for j := 0; j < numCols; j++ {
			colIdx := int(int32(d.U32()))
			distinct := d.Strs()
			format := d.F64s()
			numWords := int(d.U32())
			if d.Err() != nil {
				return nil, d.Err()
			}
			if colIdx < 0 || colIdx >= len(tbl.Columns) {
				return nil, fmt.Errorf("%w: D3L column index %d out of range for table %q", snap.ErrCorrupt, colIdx, id)
			}
			words := make(map[string]float64, numWords)
			for k := 0; k < numWords; k++ {
				w := d.Str()
				f := d.F64()
				if d.Err() != nil {
					return nil, d.Err()
				}
				words[w] = f
			}
			if len(words) != numWords {
				return nil, fmt.Errorf("%w: duplicate word in D3L column of table %q", snap.ErrCorrupt, id)
			}
			vec := d.F32s()
			if d.Err() != nil {
				return nil, d.Err()
			}
			entry.cols = append(entry.cols, &d3lColumn{
				col:      tbl.Columns[colIdx],
				distinct: distinct,
				format:   format,
				words:    words,
				vec:      vec,
			})
		}
		if _, dup := d3.tables[id]; dup {
			return nil, fmt.Errorf("%w: duplicate D3L table %q", snap.ErrCorrupt, id)
		}
		d3.tables[id] = entry
	}
	return d3, nil
}
