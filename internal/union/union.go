// Package union implements unionable table search (Section 2.5 of the
// tutorial): given a query table, find data-lake tables whose tuples
// could extend it. Two systems are provided:
//
//   - TUS (Nargesian et al., VLDB 2018): column-level unionability
//     under three measures — set overlap significance, ontology-based
//     semantic similarity, and embedding-based natural-language
//     similarity — plus their ensemble, aggregated to table level by
//     maximum-weight bipartite matching of column alignments.
//   - SANTOS (Khatiwada et al., SIGMOD 2023): relationship-aware
//     search that also requires the binary relationships between
//     column pairs to align, using a curated KB where it covers the
//     values and a KB synthesized from the lake elsewhere.
package union

import (
	"sort"

	"tablehound/internal/table"
)

// Result is one ranked unionable table.
type Result struct {
	TableID string
	Score   float64
}

// Measure selects the TUS column-unionability measure.
type Measure int

// TUS measures. Ensemble takes the maximum of the three.
const (
	SetMeasure Measure = iota
	SemMeasure
	NLMeasure
	EnsembleMeasure
)

func (m Measure) String() string {
	switch m {
	case SetMeasure:
		return "set"
	case SemMeasure:
		return "sem"
	case NLMeasure:
		return "nl"
	case EnsembleMeasure:
		return "ensemble"
	}
	return "unknown"
}

// stringColumns returns the text-like columns union search aligns.
func stringColumns(t *table.Table) []*table.Column {
	var out []*table.Column
	for _, c := range t.Columns {
		if c.Type == table.TypeString || c.Type == table.TypeDate || c.Type == table.TypeUnknown {
			if c.Cardinality() >= 2 {
				out = append(out, c)
			}
		}
	}
	return out
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].TableID < rs[j].TableID
	})
}
