package union

import (
	"fmt"
	"math"
	"testing"

	"tablehound/internal/embedding"
	"tablehound/internal/table"
)

func d3lModel() *embedding.Model {
	return embedding.Train(nil, embedding.Config{Dim: 48, Seed: 3})
}

func TestFormatSignature(t *testing.T) {
	phones := FormatSignature([]string{"555-0001", "555-9873", "555-1212"})
	names := FormatSignature([]string{"alice smith", "bob jones"})
	codes := FormatSignature([]string{"AB-12", "CD-99"})
	// Phones are digit+punct heavy; names are lower+space heavy.
	if phones[2] < 0.5 {
		t.Errorf("phone digit fraction = %v", phones[2])
	}
	if names[0] < 0.5 {
		t.Errorf("name lowercase fraction = %v", names[0])
	}
	// Same-format columns more similar than cross-format.
	phones2 := FormatSignature([]string{"444-1000", "333-2000"})
	if formatSimilarity(phones, phones2) <= formatSimilarity(phones, names) {
		t.Error("same-format similarity should beat cross-format")
	}
	if len(FormatSignature(nil)) != 9 {
		t.Error("empty signature wrong size")
	}
	_ = codes
}

func TestFormatExample(t *testing.T) {
	if got := FormatExample(FormatSignature([]string{"555-0001"})); got == "" || got == "invalid" {
		t.Errorf("FormatExample = %q", got)
	}
	if FormatExample([]float64{1}) != "invalid" {
		t.Error("short signature should be invalid")
	}
}

func TestColumnEvidenceSignals(t *testing.T) {
	d, err := NewD3L(d3lModel())
	if err != nil {
		t.Fatal(err)
	}
	a := table.NewColumn("phone", []string{"555-0001", "555-1212", "555-8080"})
	b := table.NewColumn("phone_number", []string{"444-9999", "333-1111"})
	c := table.NewColumn("name", []string{"alice smith", "bob jones"})
	evAB := d.ColumnEvidence(a, b)
	evAC := d.ColumnEvidence(a, c)
	if evAB.Value != 0 {
		t.Errorf("disjoint phones value overlap = %v", evAB.Value)
	}
	if evAB.Format <= evAC.Format {
		t.Error("format evidence should favor phone-phone")
	}
	if evAB.Name <= evAC.Name {
		t.Error("name evidence should favor phone-phone_number")
	}
	if evAB.Combined() <= evAC.Combined() {
		t.Errorf("combined %v should beat %v", evAB.Combined(), evAC.Combined())
	}
	// Combined is the mean of the five signals.
	want := (evAB.Name + evAB.Value + evAB.Format + evAB.Words + evAB.Embed) / 5
	if math.Abs(evAB.Combined()-want) > 1e-12 {
		t.Error("Combined is not the mean")
	}
}

func TestD3LSearchFindsRelatedTables(t *testing.T) {
	d, err := NewD3L(d3lModel())
	if err != nil {
		t.Fatal(err)
	}
	mkPhones := func(id string, offset int) *table.Table {
		ph := make([]string, 20)
		who := make([]string, 20)
		for i := range ph {
			ph[i] = fmt.Sprintf("555-%04d", offset+i)
			who[i] = fmt.Sprintf("person_%03d", offset+i)
		}
		return table.MustNew(id, id, []*table.Column{
			table.NewColumn("phone", ph),
			table.NewColumn("owner", who),
		})
	}
	genes := table.MustNew("genes", "genes", []*table.Column{
		table.NewColumn("gene", []string{"BRCA1", "TP53", "EGFR", "MYC"}),
		table.NewColumn("chrom", []string{"chr17", "chr17", "chr7", "chr8"}),
	})
	d.AddTable(mkPhones("phones1", 0))
	d.AddTable(mkPhones("phones2", 1000)) // zero value overlap, same shape
	d.AddTable(genes)
	if d.NumTables() != 3 {
		t.Fatal("staging failed")
	}
	res, err := d.Search(mkPhones("query", 2000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	// Both phone tables outrank the gene table despite no shared values.
	if res[0].TableID == "genes" || res[1].TableID == "genes" {
		t.Errorf("gene table ranked above a phone table: %+v", res)
	}
}

func TestD3LErrors(t *testing.T) {
	if _, err := NewD3L(nil); err == nil {
		t.Error("nil model should fail")
	}
	d, _ := NewD3L(d3lModel())
	numeric := table.MustNew("n", "n", []*table.Column{
		table.NewColumn("v", []string{"1", "2", "3"}),
	})
	d.AddTable(numeric) // no string columns: skipped
	if d.NumTables() != 0 {
		t.Error("numeric-only table staged")
	}
	if _, err := d.Search(numeric, 3); err == nil {
		t.Error("numeric-only query should fail")
	}
}

func TestD3LDuplicateAdd(t *testing.T) {
	d, _ := NewD3L(d3lModel())
	tbl := table.MustNew("t", "t", []*table.Column{
		table.NewColumn("a", []string{"x", "y"}),
	})
	d.AddTable(tbl)
	d.AddTable(tbl)
	if d.NumTables() != 1 {
		t.Error("duplicate add changed count")
	}
}
