package lake

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tablehound/internal/table"
)

func demoTable(id string) *table.Table {
	t := table.MustNew(id, "demo "+id, []*table.Column{
		table.NewColumn("name", []string{"alice", "bob"}),
		table.NewColumn("age", []string{"30", "25"}),
	})
	t.Description = "people data"
	t.Tags = []string{"people"}
	return t
}

func TestCatalogAddAndLookup(t *testing.T) {
	c := NewCatalog()
	if err := c.Add(demoTable("t1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(demoTable("t1")); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := c.Add(demoTable("")); err == nil {
		t.Error("empty ID should fail")
	}
	if err := c.Add(demoTable("has.dot")); err == nil {
		t.Error("dotted ID should fail")
	}
	if c.Table("t1") == nil || c.Table("zz") != nil {
		t.Error("lookup wrong")
	}
	if c.Len() != 1 || len(c.Tables()) != 1 {
		t.Error("length wrong")
	}
}

func TestStats(t *testing.T) {
	c := NewCatalog()
	c.Add(demoTable("t1"))
	c.Add(demoTable("t2"))
	s := c.Stats()
	if s.Tables != 2 || s.Columns != 4 || s.Rows != 4 {
		t.Errorf("stats = %+v", s)
	}
	// alice, bob, 30, 25 shared across both tables.
	if s.DistinctValues != 4 {
		t.Errorf("distinct = %d", s.DistinctValues)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := NewCatalog()
	c.Add(demoTable("t1"))
	c.Add(demoTable("t2"))
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d tables", back.Len())
	}
	got := back.Table("t1")
	if got.Description != "people data" || got.Tags[0] != "people" {
		t.Error("metadata lost")
	}
	if got.Column("age").Type != table.TypeInt {
		t.Error("column type lost")
	}
	if got.Column("name").Values[1] != "bob" {
		t.Error("values lost")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lake.gob")
	c := NewCatalog()
	c.Add(demoTable("t1"))
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Error("file round trip failed")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "cities.csv"), []byte("city,pop\nboston,600000\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "teams.v2.csv"), []byte("team\nsox\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644)
	c, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d tables", c.Len())
	}
	if c.Table("cities") == nil {
		t.Error("cities missing")
	}
	// Dots in file names become dashes so IDs stay column-key safe.
	if c.Table("teams-v2") == nil {
		t.Error("dotted file name not sanitized")
	}
	if _, err := LoadCSVDir(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage input should fail")
	}
}
