package lake

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"tablehound/internal/table"
)

func TestAddBatchOrderAndErrors(t *testing.T) {
	c := NewCatalog()
	if err := c.AddBatch([]*table.Table{demoTable("b"), demoTable("a"), demoTable("c")}); err != nil {
		t.Fatal(err)
	}
	tabs := c.Tables()
	if len(tabs) != 3 || tabs[0].ID != "b" || tabs[1].ID != "a" || tabs[2].ID != "c" {
		t.Errorf("batch order lost: %v", idsOf(tabs))
	}
	// A failing batch keeps the tables registered before the failure
	// and drops the rest.
	err := c.AddBatch([]*table.Table{demoTable("d"), demoTable("a"), demoTable("e")})
	if err == nil {
		t.Fatal("duplicate in batch should fail")
	}
	if c.Table("d") == nil || c.Table("e") != nil {
		t.Errorf("partial-batch semantics wrong: %v", idsOf(c.Tables()))
	}
}

// TestCatalogConcurrentAdd registers tables from many goroutines; run
// with -race to verify ingestion is mutex-guarded.
func TestCatalogConcurrentAdd(t *testing.T) {
	c := NewCatalog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.Add(demoTable(fmt.Sprintf("t%d_%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 160 {
		t.Errorf("Len = %d, want 160", c.Len())
	}
}

// TestLoadCSVDirNParity checks that parallel CSV ingestion produces
// the same catalog, in the same order, as the sequential loader.
func TestLoadCSVDirNParity(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 9; i++ {
		body := fmt.Sprintf("name,score\nrow%d,%d\nother%d,%d\n", i, i*10, i, i*10+1)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("file%d.csv", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := LoadCSVDirN(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := LoadCSVDirN(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idsOf(seq.Tables()), idsOf(par.Tables())) {
		t.Errorf("order differs:\nseq %v\npar %v", idsOf(seq.Tables()), idsOf(par.Tables()))
	}
	for _, st := range seq.Tables() {
		pt := par.Table(st.ID)
		if pt == nil || !reflect.DeepEqual(st.Columns, pt.Columns) {
			t.Errorf("table %s differs between loaders", st.ID)
		}
	}
}

func idsOf(tabs []*table.Table) []string {
	ids := make([]string, len(tabs))
	for i, t := range tabs {
		ids[i] = t.ID
	}
	return ids
}
