package lake

import (
	"fmt"

	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// AppendSnapshot encodes the catalog in the framed snapshot format:
// tables in insertion order, each with its metadata and typed columns.
// Column types are stored rather than re-inferred so a loaded catalog
// is structurally identical to the saved one even for columns whose
// inference is ambiguous.
func (c *Catalog) AppendSnapshot(e *snap.Encoder) {
	e.U32(uint32(len(c.order)))
	for _, id := range c.order {
		t := c.tables[id]
		e.Str(t.ID)
		e.Str(t.Name)
		e.Str(t.Description)
		e.Strs(t.Tags)
		e.U32(uint32(len(t.Columns)))
		for _, col := range t.Columns {
			e.Str(col.Name)
			e.U8(uint8(col.Type))
			e.Strs(col.Values)
		}
	}
}

// DecodeSnapshot rebuilds a catalog written by AppendSnapshot.
func DecodeSnapshot(d *snap.Decoder) (*Catalog, error) {
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	c := NewCatalog()
	for i := 0; i < n; i++ {
		id := d.Str()
		name := d.Str()
		desc := d.Str()
		tags := d.Strs()
		numCols := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		cols := make([]*table.Column, numCols)
		for j := 0; j < numCols; j++ {
			cname := d.Str()
			ctype := table.Type(d.U8())
			vals := d.Strs()
			if d.Err() != nil {
				return nil, d.Err()
			}
			cols[j] = &table.Column{Name: cname, Type: ctype, Values: vals}
		}
		t, err := table.New(id, name, cols)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
		}
		t.Description = desc
		t.Tags = tags
		if err := c.Add(t); err != nil {
			return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
		}
	}
	return c, nil
}
