// Package lake provides the data-lake catalog: the registry of raw
// tables every discovery component reads from, with CSV ingestion and
// binary persistence. It corresponds to the "Data Lake Management
// System" box of the tutorial's Figure 1.
package lake

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tablehound/internal/parallel"
	"tablehound/internal/table"
)

// Catalog is an ordered registry of tables keyed by ID.
//
// Concurrency contract: ingestion (Add, AddBatch) is mutex-guarded, so
// parallel loaders may register tables concurrently. Read accessors
// (Table, Tables, Len, Stats, Save) take no lock and are safe for
// concurrent use only once ingestion has finished — the catalog is
// read-only during an index build.
type Catalog struct {
	mu     sync.Mutex
	tables map[string]*table.Table
	order  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*table.Table)}
}

// Add registers a table; IDs must be unique and dot-free (dots are
// reserved for column keys). Safe to call concurrently with other
// Add/AddBatch calls.
func (c *Catalog) Add(t *table.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addLocked(t)
}

// AddBatch registers the tables in slice order under one lock
// acquisition. On error, tables before the failing one stay
// registered; the rest are not added.
func (c *Catalog) AddBatch(tables []*table.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tables {
		if err := c.addLocked(t); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) addLocked(t *table.Table) error {
	if t.ID == "" {
		return fmt.Errorf("lake: table has empty ID")
	}
	if strings.Contains(t.ID, ".") {
		return fmt.Errorf("lake: table ID %q contains a dot", t.ID)
	}
	if _, dup := c.tables[t.ID]; dup {
		return fmt.Errorf("lake: duplicate table ID %q", t.ID)
	}
	c.tables[t.ID] = t
	c.order = append(c.order, t.ID)
	return nil
}

// Table returns the table with the given ID, or nil.
func (c *Catalog) Table(id string) *table.Table { return c.tables[id] }

// Tables returns all tables in insertion order. Callers must not
// mutate the slice.
func (c *Catalog) Tables() []*table.Table {
	out := make([]*table.Table, len(c.order))
	for i, id := range c.order {
		out[i] = c.tables[id]
	}
	return out
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.order) }

// Stats summarizes the catalog.
type Stats struct {
	Tables         int
	Columns        int
	Rows           int
	DistinctValues int
}

// Stats computes catalog-wide statistics.
func (c *Catalog) Stats() Stats {
	var s Stats
	distinct := make(map[string]bool)
	for _, id := range c.order {
		t := c.tables[id]
		s.Tables++
		s.Columns += t.NumCols()
		s.Rows += t.NumRows()
		for _, col := range t.Columns {
			for _, v := range col.Values {
				if v != "" {
					distinct[v] = true
				}
			}
		}
	}
	s.DistinctValues = len(distinct)
	return s
}

// snapshot is the gob-encodable form of a catalog.
type snapshot struct {
	Tables []tableSnapshot
}

type tableSnapshot struct {
	ID, Name, Description string
	Tags                  []string
	ColNames              []string
	ColTypes              []int
	ColValues             [][]string
}

// Save writes the catalog in binary (gob) form.
func (c *Catalog) Save(w io.Writer) error {
	var s snapshot
	for _, id := range c.order {
		t := c.tables[id]
		ts := tableSnapshot{ID: t.ID, Name: t.Name, Description: t.Description, Tags: t.Tags}
		for _, col := range t.Columns {
			ts.ColNames = append(ts.ColNames, col.Name)
			ts.ColTypes = append(ts.ColTypes, int(col.Type))
			ts.ColValues = append(ts.ColValues, col.Values)
		}
		s.Tables = append(s.Tables, ts)
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a catalog previously written by Save.
func Load(r io.Reader) (*Catalog, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("lake: decode: %w", err)
	}
	c := NewCatalog()
	for _, ts := range s.Tables {
		cols := make([]*table.Column, len(ts.ColNames))
		for i := range ts.ColNames {
			cols[i] = &table.Column{
				Name:   ts.ColNames[i],
				Type:   table.Type(ts.ColTypes[i]),
				Values: ts.ColValues[i],
			}
		}
		t, err := table.New(ts.ID, ts.Name, cols)
		if err != nil {
			return nil, err
		}
		t.Description = ts.Description
		t.Tags = ts.Tags
		if err := c.Add(t); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SaveFile and LoadFile are file-path conveniences.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile loads a catalog from a file written by SaveFile.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadCSVDir ingests every .csv file in a directory as one table; the
// table ID is the file's base name with dots replaced by dashes.
func LoadCSVDir(dir string) (*Catalog, error) { return LoadCSVDirN(dir, 1) }

// LoadCSVDirN is LoadCSVDir with workers parallel CSV parsers
// (0 = GOMAXPROCS). Whatever the worker count, the catalog's table
// order is the sorted file-name order LoadCSVDir has always produced:
// files are parsed concurrently into per-index slots and registered in
// one ordered AddBatch.
func LoadCSVDirN(dir string, workers int) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	tables, err := parallel.Map(len(names), parallel.Limit(workers), func(i int) (*table.Table, error) {
		name := names[i]
		id := strings.ReplaceAll(strings.TrimSuffix(name, filepath.Ext(name)), ".", "-")
		t, err := table.FromCSVFile(id, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("lake: load %s: %w", name, err)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	c := NewCatalog()
	if err := c.AddBatch(tables); err != nil {
		return nil, err
	}
	return c, nil
}
