// Package metrics implements the retrieval and clustering quality
// measures the surveyed papers report: precision/recall at k, average
// precision and MAP, NDCG, F1, and normalized mutual information.
package metrics

import (
	"math"
	"sort"
)

// PrecisionAtK returns |relevant ∩ retrieved[:k]| / k. If fewer than k
// results were retrieved, the denominator is still k (penalizing short
// result lists), matching the papers' convention.
func PrecisionAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	hits := 0
	for _, r := range retrieved {
		if relevant[r] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns |relevant ∩ retrieved[:k]| / |relevant|.
func RecallAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k < len(retrieved) {
		retrieved = retrieved[:k]
	}
	hits := 0
	for _, r := range retrieved {
		if relevant[r] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// AveragePrecision computes AP over the full ranked list.
func AveragePrecision(retrieved []string, relevant map[string]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, r := range retrieved {
		if relevant[r] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// MAP averages AveragePrecision over queries; the two slices are
// parallel.
func MAP(retrieved [][]string, relevant []map[string]bool) float64 {
	if len(retrieved) == 0 {
		return 0
	}
	sum := 0.0
	for i := range retrieved {
		sum += AveragePrecision(retrieved[i], relevant[i])
	}
	return sum / float64(len(retrieved))
}

// NDCGAtK computes normalized discounted cumulative gain with graded
// relevance gains (missing keys gain 0).
func NDCGAtK(retrieved []string, gains map[string]float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	dcg := 0.0
	for i, r := range retrieved {
		dcg += gains[r] / math.Log2(float64(i)+2)
	}
	ideal := make([]float64, 0, len(gains))
	for _, g := range gains {
		ideal = append(ideal, g)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	if len(ideal) > k {
		ideal = ideal[:k]
	}
	idcg := 0.0
	for i, g := range ideal {
		idcg += g / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// F1 combines precision and recall harmonically.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PRF computes precision, recall, and F1 from hit counts.
func PRF(truePos, falsePos, falseNeg int) (p, r, f1 float64) {
	if truePos+falsePos > 0 {
		p = float64(truePos) / float64(truePos+falsePos)
	}
	if truePos+falseNeg > 0 {
		r = float64(truePos) / float64(truePos+falseNeg)
	}
	return p, r, F1(p, r)
}

// NMI computes normalized mutual information between a predicted
// clustering and a ground-truth labeling. Inputs are parallel slices
// of cluster/label IDs. Returns a value in [0, 1]; 1 means identical
// partitions (up to renaming).
func NMI(pred, truth []int) float64 {
	n := len(pred)
	if n == 0 || n != len(truth) {
		return 0
	}
	joint := make(map[[2]int]int)
	cp := make(map[int]int)
	ct := make(map[int]int)
	for i := 0; i < n; i++ {
		joint[[2]int{pred[i], truth[i]}]++
		cp[pred[i]]++
		ct[truth[i]]++
	}
	fn := float64(n)
	mi := 0.0
	for key, c := range joint {
		pxy := float64(c) / fn
		px := float64(cp[key[0]]) / fn
		py := float64(ct[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	hp, ht := 0.0, 0.0
	for _, c := range cp {
		p := float64(c) / fn
		hp -= p * math.Log(p)
	}
	for _, c := range ct {
		p := float64(c) / fn
		ht -= p * math.Log(p)
	}
	if hp == 0 && ht == 0 {
		return 1 // both partitions trivial and identical
	}
	denom := math.Sqrt(hp * ht)
	if denom == 0 {
		return 0
	}
	v := mi / denom
	if v > 1 {
		v = 1 // numeric noise
	}
	return v
}

// MeanStd returns the mean and sample standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// Pearson returns the Pearson correlation of two equal-length series
// (0 when undefined).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	mx, _ := MeanStd(x)
	my, _ := MeanStd(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
