package metrics

import (
	"math"
	"testing"
)

func rel(keys ...string) map[string]bool {
	m := make(map[string]bool)
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestPrecisionRecallAtK(t *testing.T) {
	retrieved := []string{"a", "x", "b", "y"}
	relevant := rel("a", "b", "c")
	if p := PrecisionAtK(retrieved, relevant, 2); p != 0.5 {
		t.Errorf("P@2 = %v", p)
	}
	if p := PrecisionAtK(retrieved, relevant, 4); p != 0.5 {
		t.Errorf("P@4 = %v", p)
	}
	// Short list penalized: 2 hits / k=10.
	if p := PrecisionAtK(retrieved, relevant, 10); p != 0.2 {
		t.Errorf("P@10 = %v", p)
	}
	if r := RecallAtK(retrieved, relevant, 4); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("R@4 = %v", r)
	}
	if PrecisionAtK(retrieved, relevant, 0) != 0 || RecallAtK(retrieved, nil, 3) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestAveragePrecision(t *testing.T) {
	// Hits at ranks 1 and 3 of 2 relevant: AP = (1/1 + 2/3)/2.
	ap := AveragePrecision([]string{"a", "x", "b"}, rel("a", "b"))
	want := (1.0 + 2.0/3.0) / 2
	if math.Abs(ap-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", ap, want)
	}
	if AveragePrecision([]string{"x"}, rel("a")) != 0 {
		t.Error("no hits should give AP 0")
	}
	if AveragePrecision(nil, nil) != 0 {
		t.Error("empty relevant should give 0")
	}
}

func TestMAP(t *testing.T) {
	m := MAP(
		[][]string{{"a"}, {"x"}},
		[]map[string]bool{rel("a"), rel("b")},
	)
	if m != 0.5 {
		t.Errorf("MAP = %v", m)
	}
	if MAP(nil, nil) != 0 {
		t.Error("empty MAP should be 0")
	}
}

func TestNDCG(t *testing.T) {
	gains := map[string]float64{"a": 3, "b": 2, "c": 1}
	// Perfect ordering scores 1.
	if n := NDCGAtK([]string{"a", "b", "c"}, gains, 3); math.Abs(n-1) > 1e-12 {
		t.Errorf("perfect NDCG = %v", n)
	}
	// Reversed ordering scores less.
	if n := NDCGAtK([]string{"c", "b", "a"}, gains, 3); n >= 1 {
		t.Errorf("reversed NDCG = %v", n)
	}
	if NDCGAtK([]string{"a"}, map[string]float64{}, 3) != 0 {
		t.Error("no gains should be 0")
	}
}

func TestF1AndPRF(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Error("F1(0,0)")
	}
	if f := F1(1, 1); f != 1 {
		t.Errorf("F1(1,1) = %v", f)
	}
	p, r, f := PRF(8, 2, 2)
	if p != 0.8 || r != 0.8 || math.Abs(f-0.8) > 1e-12 {
		t.Errorf("PRF = %v %v %v", p, r, f)
	}
	p, r, _ = PRF(0, 0, 0)
	if p != 0 || r != 0 {
		t.Error("PRF zero case")
	}
}

func TestNMI(t *testing.T) {
	// Identical partitions (up to renaming) => 1.
	if n := NMI([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); math.Abs(n-1) > 1e-9 {
		t.Errorf("identical NMI = %v", n)
	}
	// Independent partitions => near 0.
	if n := NMI([]int{0, 1, 0, 1}, []int{0, 0, 1, 1}); n > 0.01 {
		t.Errorf("independent NMI = %v", n)
	}
	if NMI(nil, nil) != 0 {
		t.Error("empty NMI")
	}
	if NMI([]int{0}, []int{0, 1}) != 0 {
		t.Error("length mismatch should be 0")
	}
	// Both trivial single-cluster partitions are identical.
	if n := NMI([]int{3, 3}, []int{7, 7}); n != 1 {
		t.Errorf("trivial NMI = %v", n)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	if math.Abs(s-2.138) > 0.01 {
		t.Errorf("std = %v", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd")
	}
	if _, s := MeanStd([]float64{3}); s != 0 {
		t.Error("singleton std should be 0")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if p := Pearson(x, y); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect corr = %v", p)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if p := Pearson(x, neg); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anticorr = %v", p)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if Pearson(x, flat) != 0 {
		t.Error("zero-variance corr should be 0")
	}
	if Pearson(x, []float64{1}) != 0 {
		t.Error("length mismatch should be 0")
	}
}
