package vecstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/snap"
)

// benchCorpus is the shared ≥100k-column-vector corpus every benchmark
// in this file uses: a datagen synthetic lake, an embedding model
// trained on its columns, and 100k column vectors embedded from
// sliding windows over the lake's domain vocabularies (so the corpus
// has the clustered structure real lakes have: columns from the same
// domain are near each other, columns from different domains are far).
// Built once per `go test -bench` process; ~25 MiB of vector data.
var benchCorpus struct {
	once    sync.Once
	store   *Store      // 100k rows, dim 64, centroids trained
	queries [][]float32 // held-out column vectors
	raw     []byte      // directory section + pad + blob, core's layout
	blobOff int64
}

const (
	benchRows = 100_000
	benchDim  = 64
	benchK    = 10 // recall@10
)

// benchColumn embeds one synthetic column: a wrap-around window of
// domain values, window start and length varied by i so the corpus is
// a smooth manifold per domain rather than 24 point masses.
func benchColumn(m *embedding.Model, dom []string, i, stride int) []float32 {
	wlen := 12 + i%9
	off := (i * stride) % len(dom)
	vals := make([]string, 0, wlen)
	for j := 0; j < wlen; j++ {
		vals = append(vals, dom[(off+j)%len(dom)])
	}
	return m.ColumnVector(vals)
}

func ensureBenchCorpus(tb testing.TB) {
	benchCorpus.once.Do(func() {
		gen := datagen.Generate(datagen.Config{
			Seed:              7,
			NumDomains:        24,
			DomainSize:        200,
			NumTemplates:      10,
			TablesPerTemplate: 8,
		})
		var contexts [][]string
		for _, t := range gen.Tables {
			for _, c := range t.Columns {
				contexts = append(contexts, c.Values)
			}
		}
		model := embedding.Train(contexts, embedding.Config{Dim: benchDim, Seed: 7})

		b := NewBuilder(benchDim)
		for i := 0; i < benchRows; i++ {
			dom := gen.Domains[i%len(gen.Domains)]
			b.Append("cols", benchColumn(model, dom, i, 13))
		}
		store, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		// k ≈ √n, the same shape core's auto policy picks.
		if err := store.TrainCentroids("cols", 316, HashStrings([]string{"bench"})); err != nil {
			tb.Fatal(err)
		}
		benchCorpus.store = store

		for i := 0; i < 64; i++ {
			dom := gen.Domains[(i*5+3)%len(gen.Domains)]
			benchCorpus.queries = append(benchCorpus.queries, benchColumn(model, dom, i*7+1, 29))
		}

		// Serialize exactly the way core's snapshot tail does:
		// directory in a CRC-framed section, zero pad to 64-byte
		// alignment, then the raw blob.
		var buf bytes.Buffer
		sw := snap.NewWriter(&buf)
		if err := sw.Section(1, store.AppendDirectory); err != nil {
			tb.Fatal(err)
		}
		pad := PadTo(sw.Written())
		buf.Write(make([]byte, pad))
		benchCorpus.blobOff = int64(buf.Len())
		if err := store.WriteBlob(&buf); err != nil {
			tb.Fatal(err)
		}
		benchCorpus.raw = buf.Bytes()
	})
}

// BenchmarkVsearchPruned measures centroid-pruned exact vector search
// over the 100k-vector corpus at several nprobe settings. Alongside
// ns/op it reports, per query:
//
//	recall@10    — fraction of the true top-10 returned (1.0 at
//	               nprobe=all, which is lossless by construction)
//	xfewer-dots  — exhaustive row count / exact dots actually computed
//
// The numbers recorded in EXPERIMENTS.md come from this benchmark.
func BenchmarkVsearchPruned(b *testing.B) {
	ensureBenchCorpus(b)
	v, ok := benchCorpus.store.View("cols")
	if !ok {
		b.Fatal("no cols segment")
	}
	queries := benchCorpus.queries

	for _, bc := range []struct {
		name   string
		nprobe int
	}{
		{"nprobe=all", 0},
		{"nprobe=64", 64},
		{"nprobe=32", 32},
		{"nprobe=16", 16},
		{"nprobe=8", 8},
		{"nprobe=4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			// Quality and work accounting over the fixed query set,
			// outside the timed region.
			var st SearchStats
			hits := 0
			for _, q := range queries {
				got := v.TopK(q, benchK, bc.nprobe, &st)
				want := v.scanAll(q, benchK, nil)
				truth := make(map[int]bool, len(want))
				for _, h := range want {
					truth[h.Row] = true
				}
				for _, h := range got {
					if truth[h.Row] {
						hits++
					}
				}
			}
			recall := float64(hits) / float64(len(queries)*benchK)
			exhaustive := len(queries) * v.Len()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.TopK(queries[i%len(queries)], benchK, bc.nprobe, nil)
			}
			// After the loop: ResetTimer would have deleted these.
			b.ReportMetric(recall, "recall@10")
			b.ReportMetric(float64(exhaustive)/float64(st.VecDots), "xfewer-dots")
		})
	}
}

// BenchmarkVsearchExhaustiveNoCentroids is the baseline the pruned
// numbers are against: a plain full scan with no centroid table.
func BenchmarkVsearchExhaustiveNoCentroids(b *testing.B) {
	ensureBenchCorpus(b)
	v, _ := benchCorpus.store.View("cols")
	queries := benchCorpus.queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.scanAll(queries[i%len(queries)], benchK, nil)
	}
}

// BenchmarkVecBlobLoad measures materializing the 100k-vector section
// from its on-disk form: the heap path (read + CRC verify, O(bytes))
// vs the mmap path (map the region, O(1) in vector count). The ≥5×
// reload-speedup criterion in EXPERIMENTS.md is the ratio of these.
func BenchmarkVecBlobLoad(b *testing.B) {
	ensureBenchCorpus(b)
	raw, blobOff := benchCorpus.raw, benchCorpus.blobOff

	decodeDir := func(b *testing.B) *Directory {
		sr := snap.NewReader(bytes.NewReader(raw))
		var dir *Directory
		if err := sr.Section(1, func(d *snap.Decoder) error {
			var derr error
			dir, derr = DecodeDirectory(d)
			return derr
		}); err != nil {
			b.Fatal(err)
		}
		return dir
	}

	b.Run("heap", func(b *testing.B) {
		b.SetBytes(int64(len(raw)) - blobOff)
		for i := 0; i < b.N; i++ {
			dir := decodeDir(b)
			s, err := dir.ReadBlob(bytes.NewReader(raw[blobOff:]))
			if err != nil {
				b.Fatal(err)
			}
			if s.Count() != benchRows {
				b.Fatal("short load")
			}
		}
	})

	b.Run("mmap", func(b *testing.B) {
		if !MmapSupported() {
			b.Skip("mmap unsupported here")
		}
		path := filepath.Join(b.TempDir(), "vec.bin")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			b.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.SetBytes(int64(len(raw)) - blobOff)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dir := decodeDir(b)
			s, err := dir.MmapBlob(f, blobOff)
			if err != nil {
				b.Fatal(err)
			}
			if s.Count() != benchRows {
				b.Fatal("short load")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
