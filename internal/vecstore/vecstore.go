// Package vecstore is the bottom storage layer for column/value
// embeddings: one flat, contiguous float32 block (row-major, fixed
// dimension) with precomputed L2 norms, carved into named segments
// ("model" tokens, "starmie" columns, ...). The block has a stable
// on-disk layout and is loaded either by a portable heap read or
// zero-copy via mmap, so snapshot reload cost for vectors is
// independent of how many there are and replica processes share pages.
//
// An optional coarse quantizer (deterministic k-means, see
// centroids.go) can be attached per segment; View.TopK then visits
// clusters in ascending centroid distance and prunes whole clusters
// with triangle-inequality dot-product bounds before exact rescoring.
// With nprobe <= 0 every cluster is visited or provably excluded, and
// results are bit-identical to an exhaustive scan.
package vecstore

import (
	"fmt"
	"math"
	"sort"
	"unsafe"
)

// hostLittleEndian reports whether float32 values in memory already
// have the on-disk (little-endian) byte layout, which is what makes
// the zero-copy mmap view legal.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// segment is a contiguous run of rows owned by one named index.
type segment struct {
	name string
	off  int // first row
	n    int // row count
}

// Store is an immutable vector block plus per-row norms and optional
// per-segment centroid tables. Row data either lives on the Go heap
// or aliases an mmap'd region of the snapshot file.
type Store struct {
	dim     int
	data    []float32 // count*dim, row-major
	norms   []float64 // count, norms[i] == ||row i||
	segs    []segment
	segIx   map[string]int
	cents   map[string]*Centroids
	blobCRC uint32
	mapping []byte // whole mmap region when mapped, else nil
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Count returns the total number of rows across all segments.
func (s *Store) Count() int {
	if s.dim == 0 {
		return 0
	}
	return len(s.data) / s.dim
}

// Mapped reports whether row data aliases an mmap'd file region.
func (s *Store) Mapped() bool { return s.mapping != nil }

// BlobCRC returns the CRC32-IEEE over the on-disk blob bytes,
// computed at build time and carried in the snapshot directory.
func (s *Store) BlobCRC() uint32 { return s.blobCRC }

// DataBytes returns the on-disk size of the raw vector data.
func (s *Store) DataBytes() int64 { return int64(len(s.data)) * 4 }

// NormBytes returns the on-disk size of the precomputed norms.
func (s *Store) NormBytes() int64 { return int64(len(s.norms)) * 8 }

// CentroidBytes returns the approximate in-memory footprint of all
// attached centroid tables (centroids, bounds, assignments, members).
func (s *Store) CentroidBytes() int64 {
	var b int64
	for _, c := range s.cents {
		b += c.footprint()
	}
	return b
}

// Segments returns the segment names in row order.
func (s *Store) Segments() []string {
	out := make([]string, len(s.segs))
	for i, sg := range s.segs {
		out[i] = sg.name
	}
	return out
}

// View returns the named segment's view, or ok=false if absent.
func (s *Store) View(name string) (View, bool) {
	ix, ok := s.segIx[name]
	if !ok {
		return View{}, false
	}
	return View{s: s, seg: s.segs[ix]}, true
}

// Centroids returns the centroid table attached to the named
// segment, or nil.
func (s *Store) Centroids(name string) *Centroids { return s.cents[name] }

// TrainCentroids builds and attaches a deterministic k-means table
// over the named segment. k is clamped to the segment's row count;
// the same (rows, k, seed) always yields the same table bit for bit.
func (s *Store) TrainCentroids(name string, k int, seed uint64) error {
	v, ok := s.View(name)
	if !ok {
		return fmt.Errorf("vecstore: no segment %q", name)
	}
	if v.Len() == 0 || k <= 0 {
		return nil
	}
	c := Train(v.Vec, v.Len(), s.dim, k, seed)
	if s.cents == nil {
		s.cents = make(map[string]*Centroids)
	}
	s.cents[name] = c
	return nil
}

// Close releases the mmap mapping, if any. Only tests should call
// this: production code keeps mappings alive for the life of the
// process because query paths may hold aliased row slices.
func (s *Store) Close() error {
	if s.mapping == nil {
		return nil
	}
	m := s.mapping
	s.mapping = nil
	s.data = nil
	s.norms = nil
	return munmapRegion(m)
}

// View is a read-only window over one segment. The zero View is
// empty and safe to query.
type View struct {
	s   *Store
	seg segment
}

// Len returns the number of rows in the segment.
func (v View) Len() int { return v.seg.n }

// Dim returns the vector dimensionality.
func (v View) Dim() int {
	if v.s == nil {
		return 0
	}
	return v.s.dim
}

// Vec returns row i of the segment. The slice aliases the store
// (possibly an mmap'd page) and is capacity-capped: callers cannot
// append into a neighbouring row.
func (v View) Vec(i int) []float32 {
	off := (v.seg.off + i) * v.s.dim
	return v.s.data[off : off+v.s.dim : off+v.s.dim]
}

// Norm returns the precomputed L2 norm of row i, bit-identical to
// computing it from the row at query time.
func (v View) Norm(i int) float64 { return v.s.norms[v.seg.off+i] }

// Centroids returns the segment's attached centroid table, or nil.
func (v View) Centroids() *Centroids {
	if v.s == nil {
		return nil
	}
	return v.s.cents[v.seg.name]
}

// Hit is one TopK result: a segment-relative row and its raw dot
// product with the query.
type Hit struct {
	Row   int
	Score float64
}

// SearchStats counts the work one or more TopK calls performed.
type SearchStats struct {
	VecDots         int // exact row dot products
	CentroidDots    int // centroid distance evaluations
	ClustersScanned int
	ClustersSkipped int // skipped by bound or nprobe cutoff
}

// TopK returns the k rows with the highest dot product against q,
// ordered by (score desc, row asc). Without an attached centroid
// table it scans exhaustively. With one, clusters are visited in
// ascending centroid distance; a cluster is skipped when its upper
// dot bound cannot beat the current k-th score (lossless) or when
// nprobe > 0 clusters have already been scanned (lossy). nprobe <= 0
// means "all": bit-identical to the exhaustive scan.
func (v View) TopK(q []float32, k, nprobe int, st *SearchStats) []Hit {
	if v.s == nil || v.seg.n == 0 || k <= 0 || len(q) != v.s.dim {
		return nil
	}
	c := v.Centroids()
	if c == nil {
		return v.scanAll(q, k, st)
	}
	return v.scanPruned(c, q, k, nprobe, st)
}

func (v View) scanAll(q []float32, k int, st *SearchStats) []Hit {
	h := newTopHeap(k)
	for i := 0; i < v.seg.n; i++ {
		h.offer(i, dot(q, v.Vec(i)))
	}
	if st != nil {
		st.VecDots += v.seg.n
	}
	return h.sorted()
}

func (v View) scanPruned(c *Centroids, q []float32, k, nprobe int, st *SearchStats) []Hit {
	order, maxDot := c.queryBounds(q)
	if st != nil {
		st.CentroidDots += c.k
	}
	h := newTopHeap(k)
	scanned := 0
	for _, j := range order {
		if nprobe > 0 && scanned >= nprobe {
			if st != nil {
				st.ClustersSkipped += len(order) - scanned
			}
			break
		}
		// Lossless skip: even the best possible row in this cluster
		// cannot displace the current k-th hit. BoundEps absorbs the
		// (tiny, well-bounded) floating-point error in the bound so
		// the skip never fires on a row the exhaustive scan would keep.
		if h.full() && maxDot[j]+BoundEps < h.worstScore() {
			if st != nil {
				st.ClustersSkipped++
			}
			continue
		}
		scanned++
		if st != nil {
			st.ClustersScanned++
			st.VecDots += len(c.members[j])
		}
		for _, row := range c.members[j] {
			h.offer(int(row), dot(q, v.Vec(int(row))))
		}
	}
	return h.sorted()
}

// dot accumulates in float64 in index order — the exact expression
// embedding.Vector.Dot uses, so scores here are bit-identical to the
// pre-vecstore comparators.
func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// norm matches embedding.Vector.Norm bit for bit.
func norm(a []float32) float64 { return math.Sqrt(dot(a, a)) }

// --- top-k selection ---

// topHeap keeps the k best (score desc, row asc) hits seen so far as
// a min-heap keyed by "worst first".
type topHeap struct {
	k    int
	hits []Hit
}

func newTopHeap(k int) *topHeap { return &topHeap{k: k, hits: make([]Hit, 0, k)} }

func (h *topHeap) full() bool { return len(h.hits) == h.k }

func (h *topHeap) worstScore() float64 { return h.hits[0].Score }

// worse reports whether a ranks strictly below b under
// (score desc, row asc).
func worse(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Row > b.Row
}

func (h *topHeap) offer(row int, score float64) {
	nh := Hit{Row: row, Score: score}
	if len(h.hits) < h.k {
		h.hits = append(h.hits, nh)
		h.up(len(h.hits) - 1)
		return
	}
	if !worse(h.hits[0], nh) {
		return
	}
	h.hits[0] = nh
	h.down(0)
}

func (h *topHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.hits[i], h.hits[p]) {
			return
		}
		h.hits[i], h.hits[p] = h.hits[p], h.hits[i]
		i = p
	}
}

func (h *topHeap) down(i int) {
	n := len(h.hits)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worse(h.hits[l], h.hits[m]) {
			m = l
		}
		if r < n && worse(h.hits[r], h.hits[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.hits[i], h.hits[m] = h.hits[m], h.hits[i]
		i = m
	}
}

// sorted drains the heap into (score desc, row asc) order.
func (h *topHeap) sorted() []Hit {
	out := h.hits
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// --- builder ---

// Builder accumulates rows segment by segment. Segments are laid out
// in first-Append order and must not be interleaved.
type Builder struct {
	dim   int
	data  []float32
	norms []float64
	segs  []segment
	segIx map[string]int
	err   error
}

// NewBuilder returns a builder for dim-dimensional vectors.
func NewBuilder(dim int) *Builder {
	return &Builder{dim: dim, segIx: make(map[string]int)}
}

// Append adds one row to the named segment, which must be the
// segment most recently appended to (or new). The vector is copied.
func (b *Builder) Append(seg string, vec []float32) {
	if b.err != nil {
		return
	}
	if len(vec) != b.dim {
		b.err = fmt.Errorf("vecstore: segment %q: vector dim %d, store dim %d", seg, len(vec), b.dim)
		return
	}
	ix, ok := b.segIx[seg]
	if !ok {
		b.segIx[seg] = len(b.segs)
		b.segs = append(b.segs, segment{name: seg, off: len(b.norms)})
		ix = len(b.segs) - 1
	} else if ix != len(b.segs)-1 {
		b.err = fmt.Errorf("vecstore: segment %q appended out of order", seg)
		return
	}
	b.data = append(b.data, vec...)
	b.norms = append(b.norms, norm(vec))
	b.segs[ix].n++
}

// Build seals the builder into an immutable heap-backed Store.
func (b *Builder) Build() (*Store, error) {
	if b.err != nil {
		return nil, b.err
	}
	s := &Store{
		dim:   b.dim,
		data:  b.data,
		norms: b.norms,
		segs:  b.segs,
		segIx: b.segIx,
	}
	s.blobCRC = blobCRC(s.data, s.norms)
	b.data, b.norms, b.segs, b.segIx = nil, nil, nil, nil
	b.err = fmt.Errorf("vecstore: builder already built")
	return s, nil
}
