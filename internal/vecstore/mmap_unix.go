//go:build linux || darwin

package vecstore

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// MmapSupported reports whether this build can serve the vector blob
// zero-copy: a unix mmap plus a little-endian host (the on-disk
// float layout). Big-endian hosts fall back to the heap reader.
func MmapSupported() bool { return hostLittleEndian }

// mmapRegion maps length bytes of f starting at byte offset off
// (which need not be page-aligned) read-only and shared, returning
// the requested view and the whole mapping for later munmap.
func mmapRegion(f *os.File, off int64, length int) (view, mapping []byte, err error) {
	page := int64(os.Getpagesize())
	pageOff := off &^ (page - 1)
	lead := int(off - pageOff)
	mapping, err = syscall.Mmap(int(f.Fd()), pageOff, lead+length, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("vecstore: mmap: %w", err)
	}
	return mapping[lead : lead+length : lead+length], mapping, nil
}

func munmapRegion(mapping []byte) error {
	return syscall.Munmap(mapping)
}

// f32sOf reinterprets little-endian float32 bytes in place. The
// caller guarantees 4-byte alignment (the blob sits at a 64-aligned
// file offset inside a page-aligned mapping) and len(b)%4 == 0.
func f32sOf(b []byte) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// f64sOf reinterprets little-endian float64 bytes in place; the blob
// layout 8-aligns the norms block.
func f64sOf(b []byte) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
