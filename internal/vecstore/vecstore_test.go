package vecstore

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"tablehound/internal/snap"
)

// synthVecs produces n clustered unit-ish vectors: c centers with
// Gaussian noise, deterministic.
func synthVecs(n, dim, c int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, c)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for d := range centers[i] {
			centers[i][d] = rng.NormFloat64()
		}
	}
	out := make([][]float32, n)
	for i := range out {
		ctr := centers[i%c]
		v := make([]float32, dim)
		var n2 float64
		for d := range v {
			x := ctr[d] + 0.25*rng.NormFloat64()
			v[d] = float32(x)
			n2 += x * x
		}
		if n2 > 0 {
			s := float32(1 / math.Sqrt(n2))
			for d := range v {
				v[d] *= s
			}
		}
		out[i] = v
	}
	return out
}

func buildStore(t testing.TB, vecs [][]float32, seg string) *Store {
	t.Helper()
	b := NewBuilder(len(vecs[0]))
	for _, v := range vecs {
		b.Append(seg, v)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// refTopK is the independent exhaustive reference: full sort by
// (score desc, row asc), truncate.
func refTopK(vecs [][]float32, q []float32, k int) []Hit {
	hits := make([]Hit, len(vecs))
	for i, v := range vecs {
		hits[i] = Hit{Row: i, Score: dot(q, v)}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Row < hits[j].Row
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func TestBuilderNormsMatchVectorNorm(t *testing.T) {
	vecs := synthVecs(100, 16, 4, 1)
	s := buildStore(t, vecs, "a")
	v, _ := s.View("a")
	for i := range vecs {
		if got, want := v.Norm(i), norm(vecs[i]); got != want {
			t.Fatalf("norm[%d] = %v, want %v", i, got, want)
		}
		if !reflect.DeepEqual(v.Vec(i), vecs[i]) {
			t.Fatalf("vec[%d] mismatch", i)
		}
	}
}

func TestTopKExhaustiveMatchesReference(t *testing.T) {
	vecs := synthVecs(500, 24, 7, 2)
	s := buildStore(t, vecs, "a")
	v, _ := s.View("a")
	queries := synthVecs(25, 24, 7, 3)
	for _, k := range []int{1, 3, 10, 499, 500, 600} {
		for _, q := range queries {
			got := v.TopK(q, k, 0, nil)
			want := refTopK(vecs, q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d: exhaustive TopK differs from reference", k)
			}
		}
	}
}

func TestPrunedNProbeAllBitIdentical(t *testing.T) {
	vecs := synthVecs(2000, 32, 13, 4)
	s := buildStore(t, vecs, "a")
	if err := s.TrainCentroids("a", 24, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View("a")
	queries := synthVecs(50, 32, 13, 5)
	for _, k := range []int{1, 10, 100} {
		for _, q := range queries {
			var st SearchStats
			got := v.TopK(q, k, 0, &st)
			want := refTopK(vecs, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d hits, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] { // exact == on score and row
					t.Fatalf("k=%d hit %d: got %+v, want %+v", k, i, got[i], want[i])
				}
			}
			if st.VecDots+0 > len(vecs) {
				t.Fatalf("scanned %d dots over %d rows", st.VecDots, len(vecs))
			}
		}
	}
}

func TestPrunedActuallyPrunes(t *testing.T) {
	vecs := synthVecs(5000, 32, 16, 6)
	s := buildStore(t, vecs, "a")
	if err := s.TrainCentroids("a", 70, 7); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View("a")
	var st SearchStats
	queries := synthVecs(20, 32, 16, 8)
	for _, q := range queries {
		v.TopK(q, 10, 0, &st)
	}
	exhaustive := len(queries) * len(vecs)
	if st.VecDots >= exhaustive {
		t.Fatalf("lossless pruning did no work reduction: %d dots vs %d exhaustive", st.VecDots, exhaustive)
	}
	if st.ClustersSkipped == 0 {
		t.Fatal("no clusters were skipped")
	}
	t.Logf("lossless: %d/%d dots (%.1fx), %d skipped clusters",
		st.VecDots, exhaustive, float64(exhaustive)/float64(st.VecDots), st.ClustersSkipped)
}

func TestNProbeLimitsWork(t *testing.T) {
	vecs := synthVecs(3000, 32, 10, 9)
	s := buildStore(t, vecs, "a")
	if err := s.TrainCentroids("a", 50, 11); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View("a")
	q := synthVecs(1, 32, 10, 10)[0]
	var st SearchStats
	v.TopK(q, 10, 3, &st)
	if st.ClustersScanned > 3 {
		t.Fatalf("nprobe=3 scanned %d clusters", st.ClustersScanned)
	}
}

func TestTrainDeterministic(t *testing.T) {
	vecs := synthVecs(800, 16, 6, 12)
	at := func(i int) []float32 { return vecs[i] }
	a := Train(at, len(vecs), 16, 20, 42)
	b := Train(at, len(vecs), 16, 20, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different centroid tables")
	}
	c := Train(at, len(vecs), 16, 20, 43)
	if reflect.DeepEqual(a.assign, c.assign) && reflect.DeepEqual(a.cents, c.cents) {
		t.Log("different seeds converged to identical tables (possible but suspicious)")
	}
}

func TestTrainDegenerate(t *testing.T) {
	// All-identical vectors: k collapses, everything still assigned.
	vecs := make([][]float32, 50)
	for i := range vecs {
		vecs[i] = []float32{1, 2, 3, 4}
	}
	c := Train(func(i int) []float32 { return vecs[i] }, 50, 4, 8, 1)
	total := 0
	for j := 0; j < c.K(); j++ {
		total += len(c.Members(j))
	}
	if total != 50 {
		t.Fatalf("members cover %d of 50 rows", total)
	}
}

// roundTrip serializes a store the way core does (directory section
// via snap framing, then pad, then blob) and reloads it on the heap.
func roundTrip(t *testing.T, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	if err := sw.Section(1, s.AppendDirectory); err != nil {
		t.Fatal(err)
	}
	pad := PadTo(sw.Written())
	buf.Write(make([]byte, pad))
	if err := s.WriteBlob(&buf); err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(buf.Bytes())
	sr := snap.NewReader(r)
	var dir *Directory
	if err := sr.Section(1, func(d *snap.Decoder) error {
		var err error
		dir, err = DecodeDirectory(d)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	skip := make([]byte, PadTo(sr.Consumed()))
	if _, err := r.Read(skip); err != nil {
		t.Fatal(err)
	}
	got, err := dir.ReadBlob(r)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSnapshotRoundTripHeap(t *testing.T) {
	vecs := synthVecs(300, 16, 5, 20)
	b := NewBuilder(16)
	for i, v := range vecs {
		seg := "a"
		if i >= 200 {
			seg = "b"
		}
		b.Append(seg, v)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TrainCentroids("a", 9, HashStrings([]string{"x", "y"})); err != nil {
		t.Fatal(err)
	}

	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.data, s.data) || !reflect.DeepEqual(got.norms, s.norms) {
		t.Fatal("blob data changed across round trip")
	}
	if !reflect.DeepEqual(got.segs, s.segs) {
		t.Fatalf("segments changed: %+v vs %+v", got.segs, s.segs)
	}
	if !reflect.DeepEqual(got.cents["a"], s.cents["a"]) {
		t.Fatal("centroid table changed across round trip")
	}
	if got.BlobCRC() != s.BlobCRC() {
		t.Fatal("CRC changed")
	}

	// Loaded store answers identically.
	va, _ := s.View("a")
	ga, _ := got.View("a")
	q := synthVecs(1, 16, 5, 21)[0]
	if !reflect.DeepEqual(va.TopK(q, 7, 0, nil), ga.TopK(q, 7, 0, nil)) {
		t.Fatal("loaded store search differs")
	}
}

func TestMmapParity(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap unsupported here")
	}
	vecs := synthVecs(400, 12, 4, 30)
	s := buildStore(t, vecs, "a")
	if err := s.TrainCentroids("a", 10, 3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	if err := sw.Section(1, s.AppendDirectory); err != nil {
		t.Fatal(err)
	}
	pad := PadTo(sw.Written())
	buf.Write(make([]byte, pad))
	blobOff := int64(buf.Len())
	if err := s.WriteBlob(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vec.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sr := snap.NewReader(bytes.NewReader(buf.Bytes()))
	var dir *Directory
	if err := sr.Section(1, func(d *snap.Decoder) error {
		var derr error
		dir, derr = DecodeDirectory(d)
		return derr
	}); err != nil {
		t.Fatal(err)
	}
	m, err := dir.MmapBlob(f, blobOff)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Mapped() {
		t.Fatal("store not mapped")
	}
	if !reflect.DeepEqual(m.data, s.data) || !reflect.DeepEqual(m.norms, s.norms) {
		t.Fatal("mmap view differs from built data")
	}
	mv, _ := m.View("a")
	sv, _ := s.View("a")
	q := synthVecs(1, 12, 4, 31)[0]
	if !reflect.DeepEqual(mv.TopK(q, 5, 0, nil), sv.TopK(q, 5, 0, nil)) {
		t.Fatal("mmap search differs from heap search")
	}
}

func TestDirectoryRejectsShapeMismatch(t *testing.T) {
	s := buildStore(t, synthVecs(50, 8, 2, 40), "a")

	// Encode a directory whose declared blob length disagrees with
	// dim*count*4: must be rejected before any blob is read.
	corrupt := func(mut func(e *snap.Encoder)) error {
		e := &snap.Encoder{}
		mut(e)
		d := snap.NewDecoder(e.Bytes())
		_, err := DecodeDirectory(d)
		return err
	}

	err := corrupt(func(e *snap.Encoder) {
		e.U32(vecFormatV1)
		e.U64(8)
		e.U64(50)
		e.U64(uint64(s.BlobLen()) + 8) // lies about the blob
		e.U32(s.blobCRC)
		e.U64(1)
		e.Str("a")
		e.U64(50)
		e.U64(0)
	})
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("blob-length lie not rejected: %v", err)
	}

	err = corrupt(func(e *snap.Encoder) {
		e.U32(vecFormatV1)
		e.U64(1 << 30) // dim * count * 4 would overflow naive int32 math
		e.U64(1 << 30)
		e.U64(0)
		e.U32(0)
		e.U64(0)
		e.U64(0)
	})
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("implausible shape not rejected: %v", err)
	}

	err = corrupt(func(e *snap.Encoder) {
		e.U32(vecFormatV1)
		e.U64(8)
		e.U64(50)
		e.U64(s.BlobLen())
		e.U32(s.blobCRC)
		e.U64(1)
		e.Str("a")
		e.U64(49) // segment table does not cover the store
		e.U64(0)
	})
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("short segment table not rejected: %v", err)
	}
}

func TestReadBlobRejectsCorruption(t *testing.T) {
	s := buildStore(t, synthVecs(64, 8, 2, 50), "a")
	var blob bytes.Buffer
	if err := s.WriteBlob(&blob); err != nil {
		t.Fatal(err)
	}
	dirOf := func() *Directory {
		e := &snap.Encoder{}
		s.AppendDirectory(e)
		d := snap.NewDecoder(e.Bytes())
		dir, err := DecodeDirectory(d)
		if err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Bit flip anywhere in the blob fails the CRC.
	for off := 0; off < blob.Len(); off += 101 {
		raw := append([]byte(nil), blob.Bytes()...)
		raw[off] ^= 0x10
		if _, err := dirOf().ReadBlob(bytes.NewReader(raw)); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("bit flip at %d not rejected: %v", off, err)
		}
	}
	// Truncation fails the length read.
	if _, err := dirOf().ReadBlob(bytes.NewReader(blob.Bytes()[:blob.Len()-3])); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("truncation not rejected: %v", err)
	}
	// Pristine blob loads.
	if _, err := dirOf().ReadBlob(bytes.NewReader(blob.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTopK(t *testing.T) {
	vecs := synthVecs(1000, 16, 8, 60)
	s := buildStore(t, vecs, "a")
	if err := s.TrainCentroids("a", 16, 1); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View("a")
	queries := synthVecs(64, 16, 8, 61)
	done := make(chan []Hit, len(queries))
	for _, q := range queries {
		q := q
		go func() { done <- v.TopK(q, 5, 0, nil) }()
	}
	for range queries {
		<-done
	}
}
