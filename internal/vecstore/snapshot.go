package vecstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"tablehound/internal/snap"
)

// On-disk model: the snapshot carries a small *directory* section
// (dim, count, segment table, centroid tables, blob length + CRC)
// through the normal CRC-framed section stream, and the raw *blob*
// (row-major float32 data, zero pad to 8, float64 norms) as a tail
// after the last section, zero-padded so its first byte sits at a
// 64-byte-aligned file offset. The blob's layout is exactly its
// in-memory layout on a little-endian machine, which is what makes
// the mmap view zero-copy; the heap fallback decodes the same bytes
// portably and is byte-for-byte equivalent.

const (
	vecFormatV1 = 1

	// maxBlobBytes bounds the declared blob size before any
	// allocation or slice construction (matches snap's section cap).
	maxBlobBytes = 1 << 34

	// maxDim and maxRows bound the declared shape so dim*count*4
	// arithmetic below cannot overflow and rows always fit int32.
	maxDim  = 1 << 20
	maxRows = 1<<31 - 1
)

// blobAlign is the file alignment of the blob's first byte. Keeping
// it a multiple of the float32 size (and generously cache-line
// sized) means the mmap'd data slice is always well aligned.
const blobAlign = 64

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// PadTo returns how many zero bytes must follow offset off so the
// next byte is blobAlign-aligned.
func PadTo(off int64) int {
	return int((blobAlign - off%blobAlign) % blobAlign)
}

// BlobLen returns the byte length of the store's raw blob.
func (s *Store) BlobLen() uint64 {
	dataBytes := uint64(len(s.data)) * 4
	return align8(dataBytes) + uint64(len(s.norms))*8
}

// AppendDirectory encodes everything about the store except the raw
// blob bytes: shape, segment table, centroid tables, and the blob's
// length and CRC for cross-checking at load time.
func (s *Store) AppendDirectory(e *snap.Encoder) {
	e.U32(vecFormatV1)
	e.U64(uint64(s.dim))
	e.U64(uint64(s.Count()))
	e.U64(s.BlobLen())
	e.U32(s.blobCRC)
	e.U64(uint64(len(s.segs)))
	for _, sg := range s.segs {
		e.Str(sg.name)
		e.U64(uint64(sg.n))
	}
	e.U64(uint64(len(s.cents)))
	for _, sg := range s.segs { // deterministic order: segment order
		c, ok := s.cents[sg.name]
		if !ok {
			continue
		}
		e.Str(sg.name)
		e.U64(uint64(c.k))
		e.F32s(c.cents)
		e.F64s(c.radius)
		e.F64s(c.maxNorm2)
		e.I32s(c.assign)
	}
}

// Directory is the decoded, validated metadata for a vector blob; it
// is consumed by exactly one of ReadBlob (heap) or MmapBlob.
type Directory struct {
	Dim     int
	Count   int
	BlobLen uint64
	CRC     uint32

	segs  []segment
	segIx map[string]int
	cents map[string]*Centroids
}

// DecodeDirectory decodes and fully validates a directory. Every
// declared size is checked against the others — in particular
// dim*count*4 (computed overflow-safe) must agree with the declared
// blob length — before any slice or mapping is constructed, so a
// corrupt directory can never produce an out-of-bounds view.
func DecodeDirectory(d *snap.Decoder) (*Directory, error) {
	corrupt := func(format string, args ...any) (*Directory, error) {
		return nil, fmt.Errorf("%w: vecstore: %s", snap.ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if f := d.U32(); f != vecFormatV1 {
		return corrupt("unknown format %d", f)
	}
	dim := d.U64()
	count := d.U64()
	blobLen := d.U64()
	crc := d.U32()
	if dim > maxDim || count > maxRows {
		return corrupt("implausible shape %dx%d", count, dim)
	}
	if count > 0 && dim == 0 {
		return corrupt("%d rows with dim 0", count)
	}
	// dim <= 2^20 and count <= 2^31, so dim*count*4 <= 2^53: no overflow.
	dataBytes := dim * count * 4
	wantBlob := align8(dataBytes) + count*8
	if blobLen != wantBlob || blobLen > maxBlobBytes {
		return corrupt("blob length %d disagrees with shape %dx%d (want %d)", blobLen, count, dim, wantBlob)
	}

	dir := &Directory{
		Dim:     int(dim),
		Count:   int(count),
		BlobLen: blobLen,
		CRC:     crc,
		segIx:   make(map[string]int),
	}
	nsegs := d.U64()
	if nsegs > count {
		return corrupt("%d segments over %d rows", nsegs, count)
	}
	off := 0
	for i := uint64(0); i < nsegs; i++ {
		name := d.Str()
		n := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if name == "" {
			return corrupt("empty segment name")
		}
		if _, dup := dir.segIx[name]; dup {
			return corrupt("duplicate segment %q", name)
		}
		if n == 0 || n > count-uint64(off) {
			return corrupt("segment %q: %d rows over store count %d", name, n, count)
		}
		dir.segIx[name] = len(dir.segs)
		dir.segs = append(dir.segs, segment{name: name, off: off, n: int(n)})
		off += int(n)
	}
	if uint64(off) != count {
		return corrupt("segments cover %d of %d rows", off, count)
	}

	ncents := d.U64()
	if ncents > nsegs {
		return corrupt("%d centroid tables over %d segments", ncents, nsegs)
	}
	for i := uint64(0); i < ncents; i++ {
		name := d.Str()
		k := d.U64()
		cents := d.F32s()
		radius := d.F64s()
		maxNorm2 := d.F64s()
		assign := d.I32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		ix, ok := dir.segIx[name]
		if !ok {
			return corrupt("centroid table for unknown segment %q", name)
		}
		segN := dir.segs[ix].n
		if k < 1 || k > uint64(segN) {
			return corrupt("segment %q: %d centroids over %d rows", name, k, segN)
		}
		if uint64(len(cents)) != k*dim || uint64(len(radius)) != k || uint64(len(maxNorm2)) != k {
			return corrupt("segment %q: centroid table shape mismatch", name)
		}
		if len(assign) != segN {
			return corrupt("segment %q: %d assignments for %d rows", name, len(assign), segN)
		}
		c := &Centroids{
			k:         int(k),
			dim:       int(dim),
			cents:     cents,
			radius:    radius,
			maxNorm2:  maxNorm2,
			assign:    assign,
			centNorm2: make([]float64, k),
			members:   make([][]int32, k),
		}
		for j := 0; j < c.k; j++ {
			c.centNorm2[j] = dot(c.cent(j), c.cent(j))
		}
		for row, j := range assign {
			if j < 0 || int(j) >= c.k {
				return corrupt("segment %q: row %d assigned to cluster %d of %d", name, row, j, k)
			}
			c.members[j] = append(c.members[j], int32(row))
		}
		if dir.cents == nil {
			dir.cents = make(map[string]*Centroids)
		}
		if _, dup := dir.cents[name]; dup {
			return corrupt("duplicate centroid table for segment %q", name)
		}
		dir.cents[name] = c
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return dir, nil
}

// WriteBlob writes the raw blob (data, pad to 8, norms). The caller
// must have positioned w at a blobAlign-aligned file offset.
func (s *Store) WriteBlob(w io.Writer) error {
	return writeBlob(w, s.data, s.norms)
}

func writeBlob(w io.Writer, data []float32, norms []float64) error {
	var buf [32 * 1024]byte
	fill := 0
	flush := func() error {
		if fill == 0 {
			return nil
		}
		_, err := w.Write(buf[:fill])
		fill = 0
		return err
	}
	for _, v := range data {
		if fill+4 > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(buf[fill:], math.Float32bits(v))
		fill += 4
	}
	if pad := int(align8(uint64(len(data))*4) - uint64(len(data))*4); pad > 0 {
		if fill+pad > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		for i := 0; i < pad; i++ {
			buf[fill+i] = 0
		}
		fill += pad
	}
	for _, v := range norms {
		if fill+8 > len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[fill:], math.Float64bits(v))
		fill += 8
	}
	return flush()
}

// blobCRC is the CRC32-IEEE of exactly the bytes WriteBlob emits.
func blobCRC(data []float32, norms []float64) uint32 {
	h := crc32.NewIEEE()
	writeBlob(h, data, norms) // hash.Hash never errors
	return h.Sum32()
}

// ReadBlob consumes the blob from r, verifies its CRC, and decodes
// it onto the heap — the portable fallback, byte-identical in effect
// to the mmap path.
func (dir *Directory) ReadBlob(r io.Reader) (*Store, error) {
	raw := make([]byte, dir.BlobLen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("%w: vecstore: short blob: %v", snap.ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(raw); got != dir.CRC {
		return nil, fmt.Errorf("%w: vecstore: blob checksum mismatch", snap.ErrCorrupt)
	}
	nData := dir.Count * dir.Dim
	data := make([]float32, nData)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	normsOff := int(align8(uint64(nData) * 4))
	for i := nData * 4; i < normsOff; i++ {
		if raw[i] != 0 {
			return nil, fmt.Errorf("%w: vecstore: nonzero blob padding", snap.ErrCorrupt)
		}
	}
	norms := make([]float64, dir.Count)
	for i := range norms {
		norms[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[normsOff+i*8:]))
	}
	return dir.assemble(data, norms, nil), nil
}

// MmapBlob maps the blob at byte offset off of f (off must be
// blobAlign-aligned, as produced by PadTo) and returns a store whose
// data and norms alias the mapping. The blob CRC is intentionally
// not verified here — reading every page would make load O(bytes)
// again; the directory's shape checks plus the kernel's page cache
// are the integrity story for the mmap path, and ReadBlob exists for
// full verification.
func (dir *Directory) MmapBlob(f *os.File, off int64) (*Store, error) {
	if dir.BlobLen == 0 {
		return dir.assemble(nil, nil, nil), nil
	}
	if !MmapSupported() {
		return nil, fmt.Errorf("vecstore: mmap unsupported on this platform")
	}
	if off < 0 || off%blobAlign != 0 {
		return nil, fmt.Errorf("%w: vecstore: blob offset %d not %d-aligned", snap.ErrCorrupt, off, blobAlign)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if uint64(st.Size()) < uint64(off)+dir.BlobLen {
		return nil, fmt.Errorf("%w: vecstore: file holds %d bytes, blob needs %d at offset %d",
			snap.ErrCorrupt, st.Size(), dir.BlobLen, off)
	}
	view, mapping, err := mmapRegion(f, off, int(dir.BlobLen))
	if err != nil {
		return nil, err
	}
	nData := dir.Count * dir.Dim
	normsOff := int(align8(uint64(nData) * 4))
	var data []float32
	var norms []float64
	if nData > 0 {
		data = f32sOf(view[:nData*4])
	}
	if dir.Count > 0 {
		norms = f64sOf(view[normsOff : normsOff+dir.Count*8])
	}
	return dir.assemble(data, norms, mapping), nil
}

func (dir *Directory) assemble(data []float32, norms []float64, mapping []byte) *Store {
	return &Store{
		dim:     dir.Dim,
		data:    data,
		norms:   norms,
		segs:    dir.segs,
		segIx:   dir.segIx,
		cents:   dir.cents,
		blobCRC: dir.CRC,
		mapping: mapping,
	}
}
