package vecstore

import (
	"math"
	"sort"
)

// BoundEps is added to every upper dot bound before comparing against
// a threshold or the current k-th score. The bounds below are exact
// in real arithmetic; in float64 each is a handful of operations over
// O(dim)-term sums, so the accumulated error is < 1e-12 for any sane
// embedding scale. 1e-9 is a conservative margin that keeps pruning
// lossless without giving up measurable selectivity.
const BoundEps = 1e-9

// Centroids is a coarse quantizer over one segment: k centers, the
// rows assigned to each, and per-cluster bounds (max member norm²,
// max member distance to center) that let a search discard a whole
// cluster when its best possible dot product is provably too small.
type Centroids struct {
	k         int
	dim       int
	cents     []float32 // k*dim
	centNorm2 []float64 // ||c_j||², derived
	radius    []float64 // max_j member distance to centroid j
	maxNorm2  []float64 // max_j member norm²
	assign    []int32   // row -> cluster
	members   [][]int32 // cluster -> rows, ascending
}

// K returns the number of clusters.
func (c *Centroids) K() int { return c.k }

// AssignOf returns the cluster row i belongs to.
func (c *Centroids) AssignOf(i int) int32 { return c.assign[i] }

// Members returns the rows of cluster j, ascending. Read-only.
func (c *Centroids) Members(j int) []int32 { return c.members[j] }

func (c *Centroids) footprint() int64 {
	return int64(len(c.cents))*4 +
		int64(len(c.centNorm2)+len(c.radius)+len(c.maxNorm2))*8 +
		int64(len(c.assign))*4 + int64(c.k)*24 // member slice headers
}

// splitmix64 is the deterministic RNG behind k-means seeding: tiny,
// well-distributed, and identical on every platform.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// HashStrings is the generation hash used to seed k-means: FNV-1a 64
// over the given strings in order, NUL-separated. Builds over the
// same key set always train the same centroids.
func HashStrings(ss []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range ss {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0
		h *= prime64
	}
	return h
}

const kmeansMaxIters = 12

// Train runs deterministic k-means (k-means++ seeding from a
// splitmix64 stream, Lloyd iterations with smallest-index
// tie-breaking, float64 accumulation in row order) over rows
// at(0)..at(n-1) of dimension dim. The same inputs always produce
// the same table, bit for bit.
func Train(at func(int) []float32, n, dim, k int, seed uint64) *Centroids {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	rng := splitmix64(seed)

	norm2 := make([]float64, n)
	for i := 0; i < n; i++ {
		norm2[i] = dot(at(i), at(i))
	}

	// k-means++ seeding: first center uniform, each next center drawn
	// proportionally to squared distance from the chosen set.
	cents := make([]float64, k*dim) // f64 during training
	centN2 := make([]float64, k)
	pick := func(j, row int) {
		v := at(row)
		for d := 0; d < dim; d++ {
			cents[j*dim+d] = float64(v[d])
		}
		centN2[j] = norm2[row]
	}
	pick(0, int(rng.next()%uint64(n)))
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = distSq(at(i), norm2[i], cents[:dim], centN2[0])
	}
	for j := 1; j < k; j++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		row := 0
		if sum > 0 {
			r := rng.float() * sum
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += d2[i]
				if acc > r {
					row = i
					break
				}
			}
		} else {
			// All points coincide with chosen centers; any row works.
			row = int(rng.next() % uint64(n))
		}
		pick(j, row)
		cj := cents[j*dim : (j+1)*dim]
		for i := 0; i < n; i++ {
			if d := distSq(at(i), norm2[i], cj, centN2[j]); d < d2[i] {
				d2[i] = d
			}
		}
	}

	// Lloyd iterations: assign to nearest center (smallest index on
	// ties), recompute centers as float64 means in row order.
	assign := make([]int32, n)
	sums := make([]float64, k*dim)
	counts := make([]int, k)
	for iter := 0; iter < kmeansMaxIters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			v := at(i)
			best, bestD := int32(0), math.Inf(1)
			for j := 0; j < k; j++ {
				if d := distSq(v, norm2[i], cents[j*dim:(j+1)*dim], centN2[j]); d < bestD {
					best, bestD = int32(j), d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		for i := range sums {
			sums[i] = 0
		}
		for j := range counts {
			counts[j] = 0
		}
		for i := 0; i < n; i++ {
			j := int(assign[i])
			v := at(i)
			for d := 0; d < dim; d++ {
				sums[j*dim+d] += float64(v[d])
			}
			counts[j]++
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue // empty cluster keeps its previous center
			}
			inv := 1 / float64(counts[j])
			var n2 float64
			for d := 0; d < dim; d++ {
				m := sums[j*dim+d] * inv
				cents[j*dim+d] = m
				n2 += m * m
			}
			centN2[j] = n2
		}
	}

	c := &Centroids{
		k:         k,
		dim:       dim,
		cents:     make([]float32, k*dim),
		assign:    assign,
		members:   make([][]int32, k),
		radius:    make([]float64, k),
		maxNorm2:  make([]float64, k),
		centNorm2: make([]float64, k),
	}
	for i, v := range cents {
		c.cents[i] = float32(v)
	}
	c.finish(at, norm2)
	return c
}

// finish derives members, centNorm2, radius, and maxNorm2 from the
// float32 centroids and assignments — the same derivation snapshot
// decode performs, so a loaded table equals a trained one.
func (c *Centroids) finish(at func(int) []float32, norm2 []float64) {
	for j := 0; j < c.k; j++ {
		c.centNorm2[j] = dot(c.cent(j), c.cent(j))
	}
	for i, j := range c.assign {
		c.members[j] = append(c.members[j], int32(i))
	}
	for j := 0; j < c.k; j++ {
		cj := f64View(c.cent(j))
		for _, row := range c.members[j] {
			n2 := norm2[row]
			d := distSq(at(int(row)), n2, cj, c.centNorm2[j])
			if r := math.Sqrt(d); r > c.radius[j] {
				c.radius[j] = r
			}
			if n2 > c.maxNorm2[j] {
				c.maxNorm2[j] = n2
			}
		}
	}
}

func (c *Centroids) cent(j int) []float32 { return c.cents[j*c.dim : (j+1)*c.dim] }

// distSq returns ||v - c||² = ||v||² + ||c||² - 2 v·c, clamped at 0.
func distSq(v []float32, vN2 float64, cent []float64, cN2 float64) float64 {
	var dp float64
	for i := range v {
		dp += float64(v[i]) * cent[i]
	}
	d := vN2 + cN2 - 2*dp
	if d < 0 {
		return 0
	}
	return d
}

// f64View adapts a float32 centroid row for distSq.
func f64View(c []float32) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v)
	}
	return out
}

// queryBounds computes, for a query q, the cluster visit order
// (ascending distance from q to each centroid, index-ascending on
// ties) and each cluster's upper dot-product bound:
//
//	d(q, x) >= max(0, d(q, c_j) - radius_j)       (triangle inequality)
//	q·x      = (||q||² + ||x||² - d(q,x)²) / 2
//	        <= (||q||² + maxNorm2_j - minD_j²) / 2
func (c *Centroids) queryBounds(q []float32) (order []int32, maxDot []float64) {
	qn2 := dot(q, q)
	dist := make([]float64, c.k)
	maxDot = make([]float64, c.k)
	for j := 0; j < c.k; j++ {
		var dp float64
		cj := c.cent(j)
		for i := range q {
			dp += float64(q[i]) * float64(cj[i])
		}
		d2 := qn2 + c.centNorm2[j] - 2*dp
		if d2 < 0 {
			d2 = 0
		}
		d := math.Sqrt(d2)
		dist[j] = d
		minD := d - c.radius[j]
		if minD < 0 {
			minD = 0
		}
		maxDot[j] = (qn2 + c.maxNorm2[j] - minD*minD) / 2
	}
	order = make([]int32, c.k)
	for j := range order {
		order[j] = int32(j)
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if dist[ja] != dist[jb] {
			return dist[ja] < dist[jb]
		}
		return ja < jb
	})
	return order, maxDot
}

// MaxDots fills out (len >= K) with each cluster's upper bound on
// q·x over members x, for callers that do their own thresholding
// (PEXESO's tau cut). Returns out[:K].
func (c *Centroids) MaxDots(q []float32, out []float64) []float64 {
	_, maxDot := c.queryBounds(q)
	if out == nil || cap(out) < c.k {
		return maxDot
	}
	out = out[:c.k]
	copy(out, maxDot)
	return out
}
