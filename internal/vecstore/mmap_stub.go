//go:build !(linux || darwin)

package vecstore

import (
	"fmt"
	"os"
)

// MmapSupported reports that this platform has no mmap path; loads
// use the portable heap reader.
func MmapSupported() bool { return false }

func mmapRegion(f *os.File, off int64, length int) (view, mapping []byte, err error) {
	return nil, nil, fmt.Errorf("vecstore: mmap unsupported on this platform")
}

func munmapRegion(mapping []byte) error { return nil }

func f32sOf(b []byte) []float32 { panic("vecstore: no mmap on this platform") }

func f64sOf(b []byte) []float64 { panic("vecstore: no mmap on this platform") }
