package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tablehound/internal/embedding"
)

// randUnit returns a random unit vector.
func randUnit(rng *rand.Rand, dim int) embedding.Vector {
	v := make(embedding.Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v.Normalize()
}

// clustered builds vectors around nClusters centers.
func clustered(rng *rand.Rand, n, nClusters, dim int) []embedding.Vector {
	centers := make([]embedding.Vector, nClusters)
	for i := range centers {
		centers[i] = randUnit(rng, dim)
	}
	out := make([]embedding.Vector, n)
	for i := range out {
		c := centers[i%nClusters]
		v := c.Clone()
		noise := randUnit(rng, dim)
		v.AddScaled(noise, 0.3)
		out[i] = v.Normalize()
	}
	return out
}

func buildGraph(t testing.TB, vecs []embedding.Vector, cfg Config) *Graph {
	t.Helper()
	g := New(cfg)
	for i, v := range vecs {
		if err := g.Add(fmt.Sprintf("v%05d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func recallAtK(g *Graph, queries []embedding.Vector, k, ef int) float64 {
	hits, total := 0, 0
	for _, q := range queries {
		truth := g.BruteForce(q, k)
		got := g.Search(q, k, ef)
		truthSet := map[string]bool{}
		for _, r := range truth {
			truthSet[r.Key] = true
		}
		for _, r := range got {
			if truthSet[r.Key] {
				hits++
			}
		}
		total += len(truth)
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func TestSearchHighRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := clustered(rng, 2000, 20, 32)
	g := buildGraph(t, vecs, Config{M: 16, EfConstruction: 100, Seed: 1})
	queries := make([]embedding.Vector, 20)
	for i := range queries {
		queries[i] = randUnit(rng, 32)
	}
	if r := recallAtK(g, queries, 10, 100); r < 0.9 {
		t.Errorf("recall@10 = %.3f, want >= 0.9", r)
	}
}

func TestRecallImprovesWithEf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := clustered(rng, 3000, 30, 32)
	g := buildGraph(t, vecs, Config{M: 8, EfConstruction: 60, Seed: 2})
	queries := make([]embedding.Vector, 30)
	for i := range queries {
		queries[i] = randUnit(rng, 32)
	}
	rLow := recallAtK(g, queries, 10, 10)
	rHigh := recallAtK(g, queries, 10, 200)
	if rHigh < rLow {
		t.Errorf("recall should not drop with ef: ef=10 %.3f, ef=200 %.3f", rLow, rHigh)
	}
	if rHigh < 0.85 {
		t.Errorf("recall@ef=200 = %.3f, want >= 0.85", rHigh)
	}
}

func TestExactSelfLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := clustered(rng, 500, 5, 16)
	g := buildGraph(t, vecs, Config{M: 16, EfConstruction: 100, Seed: 3})
	miss := 0
	for i := 0; i < 50; i++ {
		res := g.Search(vecs[i], 1, 50)
		if len(res) == 0 {
			t.Fatal("no results")
		}
		if math.Abs(res[0].Score-1) > 1e-5 {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("self lookup missed %d/50 times", miss)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	g := New(Config{})
	v := embedding.Vector{1, 0}
	if err := g.Add("k", v); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("k", v); err == nil {
		t.Error("duplicate key should fail")
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	g := New(Config{})
	if got := g.Search(embedding.Vector{1, 0}, 5, 10); got != nil {
		t.Error("empty graph should return nil")
	}
	g.Add("a", embedding.Vector{1, 0})
	if got := g.Search(embedding.Vector{1, 0}, 0, 10); got != nil {
		t.Error("k=0 should return nil")
	}
	got := g.Search(embedding.Vector{1, 0}, 10, 1)
	if len(got) != 1 || got[0].Key != "a" {
		t.Errorf("singleton search = %v", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
	v, ok := g.Vector("a")
	if !ok || v[0] != 1 {
		t.Error("Vector lookup failed")
	}
	if _, ok := g.Vector("zzz"); ok {
		t.Error("missing key reported present")
	}
}

func TestBruteForceOrdering(t *testing.T) {
	g := New(Config{Seed: 4})
	g.Add("far", embedding.Vector{0, 1})
	g.Add("near", embedding.Vector{1, 0})
	g.Add("mid", embedding.Vector{0.7071, 0.7071})
	res := g.BruteForce(embedding.Vector{1, 0}, 2)
	if len(res) != 2 || res[0].Key != "near" || res[1].Key != "mid" {
		t.Errorf("BruteForce = %v", res)
	}
}

func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs := clustered(rng, 300, 3, 16)
	g1 := buildGraph(t, vecs, Config{M: 8, EfConstruction: 50, Seed: 9})
	g2 := buildGraph(t, vecs, Config{M: 8, EfConstruction: 50, Seed: 9})
	q := randUnit(rng, 16)
	r1 := g1.Search(q, 5, 50)
	r2 := g2.Search(q, 5, 50)
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic result size")
	}
	for i := range r1 {
		if r1[i].Key != r2[i].Key {
			t.Fatal("nondeterministic results for same seed")
		}
	}
}
