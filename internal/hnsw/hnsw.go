// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, TPAMI 2020) for approximate nearest-neighbor
// search over unit vectors, the graph index the tutorial highlights
// (and Starmie uses) for scaling embedding-based table discovery.
//
// Similarity is the dot product (= cosine for unit vectors); distance
// is 1 - dot. Construction and search follow the paper: exponentially
// distributed level assignment, greedy descent through upper layers,
// and beam search with dynamic candidate lists at the target layer.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"tablehound/internal/embedding"
)

// Result is one nearest-neighbor hit.
type Result struct {
	Key   string
	Score float64 // dot-product similarity (higher is closer)
}

// Config controls graph shape.
type Config struct {
	M              int   // max neighbors per node per layer (default 16)
	EfConstruction int   // beam width during insertion (default 200)
	Seed           int64 // level-assignment seed
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	return c
}

type node struct {
	key       string
	vec       embedding.Vector
	neighbors [][]int32 // level -> neighbor node IDs
}

// Graph is an HNSW index. Adds must be serialized; searches may run
// concurrently with each other but not with Add.
type Graph struct {
	cfg      Config
	ml       float64
	rng      *rand.Rand
	nodes    []node
	byKey    map[string]int32
	entry    int32
	maxLevel int
	mu       sync.RWMutex
}

// New creates an empty graph.
func New(cfg Config) *Graph {
	cfg = cfg.withDefaults()
	return &Graph{
		cfg:   cfg,
		ml:    1 / math.Log(float64(cfg.M)),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		byKey: make(map[string]int32),
		entry: -1,
	}
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

func dist(a, b embedding.Vector) float64 { return 1 - a.Dot(b) }

// Add inserts a unit vector under a unique key.
func (g *Graph) Add(key string, vec embedding.Vector) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byKey[key]; dup {
		return fmt.Errorf("hnsw: duplicate key %q", key)
	}
	level := int(math.Floor(-math.Log(g.rng.Float64()+1e-12) * g.ml))
	id := int32(len(g.nodes))
	n := node{key: key, vec: vec, neighbors: make([][]int32, level+1)}
	g.nodes = append(g.nodes, n)
	g.byKey[key] = id

	if g.entry < 0 {
		g.entry = id
		g.maxLevel = level
		return nil
	}
	ep := g.entry
	// Greedy descent through layers above the new node's level.
	for l := g.maxLevel; l > level; l-- {
		ep = g.greedyClosest(vec, ep, l)
	}
	// Insert at each layer from min(level, maxLevel) down to 0.
	top := level
	if top > g.maxLevel {
		top = g.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := g.searchLayer(vec, []int32{ep}, g.cfg.EfConstruction, l)
		maxM := g.cfg.M
		if l == 0 {
			maxM = 2 * g.cfg.M
		}
		selected := g.selectNeighbors(vec, cands, g.cfg.M)
		g.nodes[id].neighbors[l] = selected
		for _, nb := range selected {
			g.nodes[nb].neighbors[l] = append(g.nodes[nb].neighbors[l], id)
			if len(g.nodes[nb].neighbors[l]) > maxM {
				g.nodes[nb].neighbors[l] = g.selectNeighbors(
					g.nodes[nb].vec, g.nodes[nb].neighbors[l], maxM)
			}
		}
		if len(cands) > 0 {
			ep = cands[0]
		}
	}
	if level > g.maxLevel {
		g.maxLevel = level
		g.entry = id
	}
	return nil
}

// greedyClosest walks layer l greedily toward q from ep.
func (g *Graph) greedyClosest(q embedding.Vector, ep int32, l int) int32 {
	cur := ep
	curDist := dist(q, g.nodes[cur].vec)
	for {
		improved := false
		for _, nb := range g.neighborsAt(cur, l) {
			if d := dist(q, g.nodes[nb].vec); d < curDist {
				cur, curDist = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (g *Graph) neighborsAt(id int32, l int) []int32 {
	if l >= len(g.nodes[id].neighbors) {
		return nil
	}
	return g.nodes[id].neighbors[l]
}

// distHeap is a min-heap or max-heap over (id, dist) by dist.
type distItem struct {
	id int32
	d  float64
}
type distHeap struct {
	items []distItem
	max   bool
}

func (h *distHeap) Len() int { return len(h.items) }
func (h *distHeap) Less(i, j int) bool {
	if h.max {
		return h.items[i].d > h.items[j].d
	}
	return h.items[i].d < h.items[j].d
}
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// searchLayer is the beam search of the paper (Algorithm 2): returns
// up to ef node IDs closest to q at layer l, sorted by distance.
func (g *Graph) searchLayer(q embedding.Vector, eps []int32, ef, l int) []int32 {
	visited := make(map[int32]bool, ef*4)
	cand := &distHeap{}            // min-heap of frontier
	result := &distHeap{max: true} // max-heap of best ef
	for _, ep := range eps {
		d := dist(q, g.nodes[ep].vec)
		visited[ep] = true
		heap.Push(cand, distItem{ep, d})
		heap.Push(result, distItem{ep, d})
	}
	for cand.Len() > 0 {
		c := heap.Pop(cand).(distItem)
		worst := result.items[0].d
		if c.d > worst && result.Len() >= ef {
			break
		}
		for _, nb := range g.neighborsAt(c.id, l) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := dist(q, g.nodes[nb].vec)
			if result.Len() < ef || d < result.items[0].d {
				heap.Push(cand, distItem{nb, d})
				heap.Push(result, distItem{nb, d})
				if result.Len() > ef {
					heap.Pop(result)
				}
			}
		}
	}
	out := make([]distItem, len(result.items))
	copy(out, result.items)
	sort.Slice(out, func(i, j int) bool { return out[i].d < out[j].d })
	ids := make([]int32, len(out))
	for i, it := range out {
		ids[i] = it.id
	}
	return ids
}

// selectNeighbors is the heuristic selection of the paper (Algorithm
// 4): take candidates closest-first, but admit one only if it is
// closer to the base than to every already-admitted neighbor. This
// yields spatially diverse links that keep clustered data connected —
// with simple closest-m selection, well-separated clusters fragment
// into disconnected components. Pruned candidates backfill remaining
// slots (keepPrunedConnections).
func (g *Graph) selectNeighbors(base embedding.Vector, cands []int32, m int) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		copy(out, cands)
		return out
	}
	type cd struct {
		id int32
		d  float64
	}
	ds := make([]cd, len(cands))
	for i, c := range cands {
		ds[i] = cd{c, dist(base, g.nodes[c].vec)}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	selected := make([]cd, 0, m)
	var pruned []cd
	for _, c := range ds {
		if len(selected) >= m {
			break
		}
		diverse := true
		for _, s := range selected {
			if dist(g.nodes[c.id].vec, g.nodes[s.id].vec) < c.d {
				diverse = false
				break
			}
		}
		if diverse {
			selected = append(selected, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(selected) >= m {
			break
		}
		selected = append(selected, c)
	}
	out := make([]int32, len(selected))
	for i, s := range selected {
		out[i] = s.id
	}
	return out
}

// Search returns the k most similar indexed vectors to q, best first.
// efSearch controls the recall/latency trade-off; values below k are
// raised to k.
func (g *Graph) Search(q embedding.Vector, k, efSearch int) []Result {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.entry < 0 || k <= 0 {
		return nil
	}
	if efSearch < k {
		efSearch = k
	}
	ep := g.entry
	for l := g.maxLevel; l > 0; l-- {
		ep = g.greedyClosest(q, ep, l)
	}
	ids := g.searchLayer(q, []int32{ep}, efSearch, 0)
	if len(ids) > k {
		ids = ids[:k]
	}
	out := make([]Result, len(ids))
	for i, id := range ids {
		out[i] = Result{Key: g.nodes[id].key, Score: q.Dot(g.nodes[id].vec)}
	}
	return out
}

// Vector returns the stored vector for key, if present.
func (g *Graph) Vector(key string) (embedding.Vector, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.byKey[key]
	if !ok {
		return nil, false
	}
	return g.nodes[id].vec, true
}

// BruteForce returns the exact top-k by scanning all vectors; the
// recall baseline for benchmarks.
func (g *Graph) BruteForce(q embedding.Vector, k int) []Result {
	g.mu.RLock()
	defer g.mu.RUnlock()
	res := make([]Result, 0, len(g.nodes))
	for i := range g.nodes {
		res = append(res, Result{Key: g.nodes[i].key, Score: q.Dot(g.nodes[i].vec)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Key < res[j].Key
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}
