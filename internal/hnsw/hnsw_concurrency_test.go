package hnsw

import (
	"math/rand"
	"sync"
	"testing"

	"tablehound/internal/embedding"
)

// TestConcurrentSearch exercises the documented guarantee that
// searches may run concurrently with each other after building.
func TestConcurrentSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vecs := clustered(rng, 1000, 8, 16)
	g := buildGraph(t, vecs, Config{M: 8, EfConstruction: 40, Seed: 7})
	queries := make([]embedding.Vector, 16)
	for i := range queries {
		queries[i] = randUnit(rng, 16)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res := g.Search(queries[(w+i)%len(queries)], 5, 30)
				if len(res) == 0 {
					errs <- "empty result"
					return
				}
				// Scores must be non-increasing.
				for j := 1; j < len(res); j++ {
					if res[j].Score > res[j-1].Score+1e-9 {
						errs <- "results not sorted"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSearchResultsSorted verifies the descending-score contract that
// downstream aggregators rely on.
func TestSearchResultsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vecs := clustered(rng, 500, 5, 16)
	g := buildGraph(t, vecs, Config{M: 8, EfConstruction: 40, Seed: 8})
	for i := 0; i < 10; i++ {
		res := g.Search(randUnit(rng, 16), 10, 50)
		for j := 1; j < len(res); j++ {
			if res[j].Score > res[j-1].Score+1e-9 {
				t.Fatalf("unsorted results at query %d", i)
			}
		}
	}
}
