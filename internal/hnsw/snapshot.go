package hnsw

import (
	"fmt"
	"math"
	"math/rand"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the full graph topology. HNSW construction
// is insertion-order- and RNG-dependent, so unlike the LSH indexes it
// cannot be rebuilt deterministically from its inputs alone — the
// nodes, their per-level neighbor lists, the entry point, and the top
// level are all serialized verbatim.
func (g *Graph) AppendSnapshot(e *snap.Encoder) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e.U32(uint32(g.cfg.M))
	e.U32(uint32(g.cfg.EfConstruction))
	e.I64(g.cfg.Seed)
	e.I64(int64(g.entry))
	e.U32(uint32(g.maxLevel))
	e.U32(uint32(len(g.nodes)))
	for i := range g.nodes {
		n := &g.nodes[i]
		e.Str(n.key)
		e.F32s(n.vec)
		e.U32(uint32(len(n.neighbors)))
		for _, level := range n.neighbors {
			e.I32s(level)
		}
	}
}

// DecodeSnapshot rebuilds a graph written by AppendSnapshot. The RNG
// is re-seeded from the stored config; it only matters if the caller
// keeps inserting after load.
func DecodeSnapshot(d *snap.Decoder) (*Graph, error) {
	cfg := Config{
		M:              int(d.U32()),
		EfConstruction: int(d.U32()),
		Seed:           d.I64(),
	}
	entry := int32(d.I64())
	maxLevel := int(d.U32())
	numNodes := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("%w: hnsw M=%d", snap.ErrCorrupt, cfg.M)
	}
	g := &Graph{
		cfg:      cfg,
		ml:       1 / math.Log(float64(cfg.M)),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		byKey:    make(map[string]int32, numNodes),
		entry:    entry,
		maxLevel: maxLevel,
	}
	g.nodes = make([]node, numNodes)
	for i := 0; i < numNodes; i++ {
		key := d.Str()
		vec := d.F32s()
		levels := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		neighbors := make([][]int32, levels)
		for l := range neighbors {
			nbs := d.I32s()
			for _, nb := range nbs {
				if nb < 0 || int(nb) >= numNodes {
					return nil, fmt.Errorf("%w: hnsw neighbor %d out of range", snap.ErrCorrupt, nb)
				}
			}
			neighbors[l] = nbs
		}
		if _, dup := g.byKey[key]; dup {
			return nil, fmt.Errorf("%w: hnsw duplicate key %q", snap.ErrCorrupt, key)
		}
		g.nodes[i] = node{key: key, vec: vec, neighbors: neighbors}
		g.byKey[key] = int32(i)
	}
	if numNodes == 0 {
		if entry != -1 {
			return nil, fmt.Errorf("%w: hnsw empty graph with entry %d", snap.ErrCorrupt, entry)
		}
	} else if entry < 0 || int(entry) >= numNodes {
		return nil, fmt.Errorf("%w: hnsw entry %d out of range", snap.ErrCorrupt, entry)
	}
	return g, nil
}
