package hnsw

import (
	"fmt"
	"math"
	"math/rand"

	"tablehound/internal/embedding"
	"tablehound/internal/snap"
)

// AppendSnapshot encodes the full graph topology. HNSW construction
// is insertion-order- and RNG-dependent, so unlike the LSH indexes it
// cannot be rebuilt deterministically from its inputs alone — the
// nodes, their per-level neighbor lists, the entry point, and the top
// level are all serialized verbatim.
func (g *Graph) AppendSnapshot(e *snap.Encoder) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e.U32(uint32(g.cfg.M))
	e.U32(uint32(g.cfg.EfConstruction))
	e.I64(g.cfg.Seed)
	e.I64(int64(g.entry))
	e.U32(uint32(g.maxLevel))
	e.U32(uint32(len(g.nodes)))
	for i := range g.nodes {
		n := &g.nodes[i]
		e.Str(n.key)
		e.F32s(n.vec)
		e.U32(uint32(len(n.neighbors)))
		for _, level := range n.neighbors {
			e.I32s(level)
		}
	}
}

// AppendSnapshotShared encodes the graph topology only: node keys,
// neighbor lists, entry point. Vectors are omitted — the caller
// stores them in the shared vector block, whose row i backs node i —
// which keeps big graphs' snapshot sections small and their decode
// copy-free. Graphs whose vectors are not externalized (TUS's
// natural-language index) keep using AppendSnapshot.
func (g *Graph) AppendSnapshotShared(e *snap.Encoder) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e.U32(uint32(g.cfg.M))
	e.U32(uint32(g.cfg.EfConstruction))
	e.I64(g.cfg.Seed)
	e.I64(int64(g.entry))
	e.U32(uint32(g.maxLevel))
	e.U32(uint32(len(g.nodes)))
	for i := range g.nodes {
		n := &g.nodes[i]
		e.Str(n.key)
		e.U32(uint32(len(n.neighbors)))
		for _, level := range n.neighbors {
			e.I32s(level)
		}
	}
}

// DecodeSnapshotShared rebuilds a graph written by
// AppendSnapshotShared: at(i) supplies node i's vector (typically a
// vector-store row, possibly mmap-backed) and must be valid for n
// nodes.
func DecodeSnapshotShared(d *snap.Decoder, at func(int) []float32, n int) (*Graph, error) {
	return decodeSnapshot(d, at, n)
}

// RebindVecs replaces every node's vector with at(i), for callers
// that move the backing storage after construction. Vector values
// must be identical; only the memory moves.
func (g *Graph) RebindVecs(at func(int) []float32, n int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n != len(g.nodes) {
		return fmt.Errorf("hnsw: rebind over %d rows, graph has %d nodes", n, len(g.nodes))
	}
	for i := range g.nodes {
		g.nodes[i].vec = embedding.Vector(at(i))
	}
	return nil
}

// DecodeSnapshot rebuilds a graph written by AppendSnapshot. The RNG
// is re-seeded from the stored config; it only matters if the caller
// keeps inserting after load.
func DecodeSnapshot(d *snap.Decoder) (*Graph, error) {
	return decodeSnapshot(d, nil, 0)
}

// decodeSnapshot handles both layouts: with at == nil vectors are
// inline per node; otherwise they come from at and n is the required
// node count.
func decodeSnapshot(d *snap.Decoder, at func(int) []float32, n int) (*Graph, error) {
	cfg := Config{
		M:              int(d.U32()),
		EfConstruction: int(d.U32()),
		Seed:           d.I64(),
	}
	entry := int32(d.I64())
	maxLevel := int(d.U32())
	numNodes := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("%w: hnsw M=%d", snap.ErrCorrupt, cfg.M)
	}
	if at != nil && numNodes != n {
		return nil, fmt.Errorf("%w: hnsw has %d nodes, vector segment %d rows", snap.ErrCorrupt, numNodes, n)
	}
	g := &Graph{
		cfg:      cfg,
		ml:       1 / math.Log(float64(cfg.M)),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		byKey:    make(map[string]int32, numNodes),
		entry:    entry,
		maxLevel: maxLevel,
	}
	g.nodes = make([]node, numNodes)
	for i := 0; i < numNodes; i++ {
		key := d.Str()
		var vec embedding.Vector
		if at == nil {
			vec = d.F32s()
		} else {
			vec = embedding.Vector(at(i))
		}
		levels := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		neighbors := make([][]int32, levels)
		for l := range neighbors {
			nbs := d.I32s()
			for _, nb := range nbs {
				if nb < 0 || int(nb) >= numNodes {
					return nil, fmt.Errorf("%w: hnsw neighbor %d out of range", snap.ErrCorrupt, nb)
				}
			}
			neighbors[l] = nbs
		}
		if _, dup := g.byKey[key]; dup {
			return nil, fmt.Errorf("%w: hnsw duplicate key %q", snap.ErrCorrupt, key)
		}
		g.nodes[i] = node{key: key, vec: vec, neighbors: neighbors}
		g.byKey[key] = int32(i)
	}
	if numNodes == 0 {
		if entry != -1 {
			return nil, fmt.Errorf("%w: hnsw empty graph with entry %d", snap.ErrCorrupt, entry)
		}
	} else if entry < 0 || int(entry) >= numNodes {
		return nil, fmt.Errorf("%w: hnsw entry %d out of range", snap.ErrCorrupt, entry)
	}
	return g, nil
}
