// Package discover implements conditional table discovery: a single
// structured query combines a relational seed (a joinable column or a
// unionable table) with predicates over schema, metadata, and cell
// values. A small planner compiles the query into an ordered
// cheap→expensive pipeline of stages — metadata and keyword
// prefilters over the catalog and the keyword index first, sketch/LSH
// candidate generation second, exact verification and scoring through
// the existing join/union engines last — each stage narrowing the
// candidate set handed to the next. The executor runs the plan as a
// pure read over a frozen core.System and reports per-stage candidate
// counts and timings.
package discover

import (
	"fmt"
	"strings"

	"tablehound/internal/table"
)

// Stage names, in the fixed cheap→expensive order the planner emits
// them. Prefilter stages appear only when their predicate group is
// present; candidates and verify always run.
const (
	StageMeta       = "prefilter_meta"
	StageKeyword    = "prefilter_keyword"
	StageValues     = "prefilter_values"
	StageCandidates = "candidates"
	StageVerify     = "verify"
)

// Relation selects which discovery primitive ranks the final results.
type Relation byte

// Relation kinds. The byte values double as cache-key bytes, so they
// must stay stable.
const (
	RelationJoin Relation = iota
	RelationUnion
	RelationAny
)

// ParseRelation maps a wire string to a Relation. The empty string
// defaults to "any"; anything else unknown wraps table.ErrBadQuery.
func ParseRelation(s string) (Relation, error) {
	switch s {
	case "", "any":
		return RelationAny, nil
	case "join":
		return RelationJoin, nil
	case "union":
		return RelationUnion, nil
	}
	return 0, fmt.Errorf("discover: unknown relation %q (want join, union, or any): %w", s, table.ErrBadQuery)
}

// JoinMode selects the join scoring regime. Byte values match the
// server's join cache-key mode byte.
type JoinMode byte

// Join modes.
const (
	ModeOverlap JoinMode = iota
	ModeContainment
)

// ParseJoinMode maps a wire string to a JoinMode; "" defaults to
// overlap, unknown wraps table.ErrBadQuery.
func ParseJoinMode(s string) (JoinMode, error) {
	switch s {
	case "", "overlap":
		return ModeOverlap, nil
	case "containment":
		return ModeContainment, nil
	}
	return 0, fmt.Errorf("discover: unknown join mode %q (want overlap or containment): %w", s, table.ErrBadQuery)
}

// UnionMethod selects the union engine. Byte values match the
// server's union cache-key method byte.
type UnionMethod byte

// Union methods.
const (
	MethodTUS UnionMethod = iota
	MethodSantos
	MethodStarmie
	MethodD3L
)

// ParseUnionMethod maps a wire string to a UnionMethod; "" defaults
// to tus, unknown wraps table.ErrBadQuery.
func ParseUnionMethod(s string) (UnionMethod, error) {
	switch s {
	case "", "tus":
		return MethodTUS, nil
	case "santos":
		return MethodSantos, nil
	case "starmie":
		return MethodStarmie, nil
	case "d3l":
		return MethodD3L, nil
	}
	return 0, fmt.Errorf("discover: unknown union method %q (want tus, santos, starmie, or d3l): %w", s, table.ErrBadQuery)
}

// Predicates restrict which lake tables may appear in the results.
// All set predicates must hold (AND semantics); zero values mean
// "unconstrained". The JSON tags are the wire schema shared with the
// server's DiscoverRequest.
type Predicates struct {
	// ColumnNames requires every listed column name to be present
	// (case-insensitive exact match).
	ColumnNames []string `json:"column_names,omitempty"`
	// ColumnTypes requires at least one column of every listed
	// inferred type ("bool", "int", "float", "date", "string").
	ColumnTypes []string `json:"column_types,omitempty"`
	MinRows     int      `json:"min_rows,omitempty"`
	MaxRows     int      `json:"max_rows,omitempty"`
	MinCols     int      `json:"min_cols,omitempty"`
	MaxCols     int      `json:"max_cols,omitempty"`
	// Keywords requires every term to hit the table's metadata
	// (boolean AND over the keyword index).
	Keywords string `json:"keywords,omitempty"`
	// Values requires every listed cell value to appear in some
	// join-indexed column of the table.
	Values []string `json:"values,omitempty"`
}

// HasMeta reports whether any catalog-level (schema/shape) predicate
// is set.
func (p Predicates) HasMeta() bool {
	return len(p.ColumnNames) > 0 || len(p.ColumnTypes) > 0 ||
		p.MinRows > 0 || p.MaxRows > 0 || p.MinCols > 0 || p.MaxCols > 0
}

// HasKeywords reports whether the keyword predicate is set.
func (p Predicates) HasKeywords() bool { return strings.TrimSpace(p.Keywords) != "" }

// HasValues reports whether the cell-value predicate is set.
func (p Predicates) HasValues() bool { return len(p.Values) > 0 }

// Empty reports whether no predicate is set at all — the degenerate
// case where discover must rank exactly like the bare engine.
func (p Predicates) Empty() bool {
	return !p.HasMeta() && !p.HasKeywords() && !p.HasValues()
}

// Query is a structured conditional-discovery request. The seed is
// either a resolved table (Seed) or a bare column (Values); table_id
// resolution against a catalog happens before the planner sees the
// query.
type Query struct {
	// Seed is the resolved seed table (union/any relation, or join
	// relation seeded by one of its columns).
	Seed *table.Table
	// Values is a bare seed column for the join relation, exclusive
	// with Seed.
	Values []string
	// Column names the seed-table column that seeds the join side;
	// empty picks the first column with usable values.
	Column string
	// Relation is "join", "union", or "any" (default).
	Relation string
	// Mode is the join scoring mode: "overlap" (default) or
	// "containment".
	Mode string
	// Method is the union engine: "tus" (default), "santos",
	// "starmie", or "d3l".
	Method string
	// Threshold is the containment cutoff (default 0.5).
	Threshold float64
	// K is the number of results; it must be positive.
	K int
	// Predicates restrict the result tables.
	Predicates Predicates
}

// StageExplain is one row of the per-stage explanation block: the
// stage name, candidate count entering and leaving the stage, and
// wall time in microseconds. Out of stage i equals In of stage i+1
// for the prefilter chain; the candidates stage may emit more
// candidates than tables entered it (join candidates are columns).
//
// The cost-model fields are omitted when zero, so explain rows from
// stages the model does not price marshal exactly as before: EstOut is
// the planner's pre-execution survivor estimate for prefilter stages
// (compare against Out for the estimate error), Cost is the
// deterministic work units the stage actually spent (per-table
// predicate checks, posting entries scanned, set tokens merged — not
// wall time, so it is stable across runs), and Skipped marks a stage
// the planner proved total (its predicate admits every table) or moot
// (the allowed set was already empty) and therefore elided.
type StageExplain struct {
	Stage     string `json:"stage"`
	In        int    `json:"in"`
	Out       int    `json:"out"`
	EstOut    int    `json:"est_out,omitempty"`
	Cost      int64  `json:"cost,omitempty"`
	Skipped   bool   `json:"skipped,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
}
