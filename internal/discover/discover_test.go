package discover

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// The fixture system is expensive to build, so all tests share one.
var (
	sysOnce sync.Once
	sysVal  *core.System
	genVal  *datagen.Lake
)

func fixture(t *testing.T) (*core.System, *datagen.Lake) {
	t.Helper()
	sysOnce.Do(func() {
		gen := datagen.Generate(datagen.Config{
			Seed:              51,
			NumDomains:        12,
			DomainSize:        80,
			NumTemplates:      5,
			TablesPerTemplate: 4,
		})
		cat := lake.NewCatalog()
		for _, tbl := range gen.Tables {
			if err := cat.Add(tbl); err != nil {
				panic(err)
			}
		}
		sys, err := core.Build(cat, core.Options{KB: gen.BuildKB(0.8), Seed: 3})
		if err != nil {
			panic(err)
		}
		sysVal, genVal = sys, gen
	})
	return sysVal, genVal
}

func mustExecute(t *testing.T, sys *core.System, q Query) *Result {
	t.Helper()
	p, err := NewPlan(sys, q)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// --- planner shape ---

func TestStageOrdering(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	cases := []struct {
		name  string
		preds Predicates
		want  []string
	}{
		{"no predicates", Predicates{}, []string{StageCandidates, StageVerify}},
		{"meta only", Predicates{MinRows: 1}, []string{StageMeta, StageCandidates, StageVerify}},
		{"keywords only", Predicates{Keywords: "x"}, []string{StageKeyword, StageCandidates, StageVerify}},
		{"values only", Predicates{Values: []string{"x"}}, []string{StageValues, StageCandidates, StageVerify}},
		{"all groups", Predicates{MinRows: 1, Keywords: "x", Values: []string{"x"}},
			[]string{StageMeta, StageKeyword, StageValues, StageCandidates, StageVerify}},
	}
	for _, c := range cases {
		q := Query{Seed: seed, Relation: "union", K: 5, Predicates: c.preds}
		p, err := NewPlanOrdered(sys, q, OrderFixed)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := p.Stages(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: fixed stages = %v, want %v", c.name, got, c.want)
		}
		// Cost ordering may permute the prefilters but must plan exactly
		// the same stage set, with candidates and verify closing the plan.
		pc, err := NewPlan(sys, q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := pc.Stages()
		if len(got) != len(c.want) {
			t.Fatalf("%s: cost stages = %v, want a permutation of %v", c.name, got, c.want)
		}
		set := make(map[string]bool, len(got))
		for _, s := range got {
			set[s] = true
		}
		for _, s := range c.want {
			if !set[s] {
				t.Errorf("%s: cost stages %v missing %s", c.name, got, s)
			}
		}
		if got[len(got)-2] != StageCandidates || got[len(got)-1] != StageVerify {
			t.Errorf("%s: cost stages %v do not end with candidates, verify", c.name, got)
		}
	}
}

func TestBadQueries(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	cases := []struct {
		name string
		q    Query
	}{
		{"zero k", Query{Seed: seed, K: 0}},
		{"negative k", Query{Seed: seed, K: -3}},
		{"unknown relation", Query{Seed: seed, K: 5, Relation: "psychic"}},
		{"unknown mode", Query{Seed: seed, K: 5, Relation: "join", Mode: "fuzzy"}},
		{"unknown method", Query{Seed: seed, K: 5, Relation: "union", Method: "magic"}},
		{"unknown column type", Query{Seed: seed, K: 5, Predicates: Predicates{ColumnTypes: []string{"uuid"}}}},
		{"seed and values both", Query{Seed: seed, Values: []string{"x"}, K: 5, Relation: "join"}},
		{"union without seed table", Query{Values: []string{"x"}, K: 5, Relation: "union"}},
		{"any without seed table", Query{Values: []string{"x"}, K: 5}},
		{"join without any seed", Query{K: 5, Relation: "join"}},
		{"join seed column missing", Query{Seed: seed, K: 5, Relation: "join", Column: "no-such-column"}},
	}
	for _, c := range cases {
		if _, err := NewPlan(sys, c.q); !errors.Is(err, table.ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", c.name, err)
		}
	}
}

// --- degenerate-case parity: no predicates, single relation kind ---

func TestJoinOverlapParity(t *testing.T) {
	sys, gen := fixture(t)
	vals := gen.Tables[0].Columns[0].Values
	want, err := sys.JoinableColumns(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := mustExecute(t, sys, Query{Values: vals, Relation: "join", K: 10})
	if !reflect.DeepEqual(res.Matches, want) {
		t.Errorf("unfiltered overlap discover != JoinableColumns\n got %v\nwant %v", res.Matches, want)
	}
}

func TestJoinContainmentParity(t *testing.T) {
	sys, gen := fixture(t)
	vals := gen.Tables[0].Columns[0].Values
	want, err := sys.ContainmentSearch(vals, 0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := mustExecute(t, sys, Query{Values: vals, Relation: "join", Mode: "containment", Threshold: 0.3, K: 10})
	if !reflect.DeepEqual(res.Matches, want) {
		t.Errorf("unfiltered containment discover != ContainmentSearch\n got %v\nwant %v", res.Matches, want)
	}
}

func TestUnionParity(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	for _, method := range []string{"tus", "santos", "starmie", "d3l"} {
		var want []union.Result
		var err error
		switch method {
		case "tus":
			want, err = sys.TUS.Search(seed, 8, union.EnsembleMeasure)
		case "santos":
			want, err = sys.Santos.Search(seed, 8, union.Hybrid)
		case "starmie":
			rs, serr := sys.Starmie.SearchTables(seed, 8, 64, false)
			err = serr
			for _, r := range rs {
				want = append(want, union.Result{TableID: r.TableID, Score: r.Score})
			}
		case "d3l":
			want, err = sys.D3L.Search(seed, 8)
		}
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		res := mustExecute(t, sys, Query{Seed: seed, Relation: "union", Method: method, K: 8})
		if !reflect.DeepEqual(res.Tables, want) {
			t.Errorf("%s: unfiltered union discover != bare engine\n got %v\nwant %v", method, res.Tables, want)
		}
	}
}

// --- predicate evaluation ---

func TestMetaPredicates(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]

	// min_rows: every result table satisfies it, and the prefilter's
	// out-count matches the catalog census.
	minRows := seed.NumRows()
	res := mustExecute(t, sys, Query{Seed: seed, Relation: "union", K: 50,
		Predicates: Predicates{MinRows: minRows}})
	admitted := 0
	for _, tbl := range sys.Catalog.Tables() {
		if tbl.NumRows() >= minRows {
			admitted++
		}
	}
	if res.Explain[0].Stage != StageMeta || res.Explain[0].Out != admitted {
		t.Errorf("meta prefilter out = %+v, want %d admitted", res.Explain[0], admitted)
	}
	for _, r := range res.Tables {
		if got := sys.Catalog.Table(r.TableID).NumRows(); got < minRows {
			t.Errorf("result %s has %d rows < min %d", r.TableID, got, minRows)
		}
	}

	// column_names: results all carry the named column.
	colName := seed.Columns[0].Name
	res = mustExecute(t, sys, Query{Seed: seed, Relation: "union", K: 50,
		Predicates: Predicates{ColumnNames: []string{colName}}})
	for _, r := range res.Tables {
		if !hasColumnNamed(sys.Catalog.Table(r.TableID), colName) {
			t.Errorf("result %s lacks required column %q", r.TableID, colName)
		}
	}
}

func TestValuesPredicate(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	// A value from another template's table: only tables actually
	// containing it may appear.
	probe := gen.Tables[7].Columns[0].Values[0]
	res := mustExecute(t, sys, Query{Seed: seed, Relation: "union", K: 50,
		Predicates: Predicates{Values: []string{probe}}})
	for _, r := range res.Tables {
		tbl := sys.Catalog.Table(r.TableID)
		found := false
		for _, c := range tbl.Columns {
			for _, v := range c.Values {
				if v == probe {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("result %s does not contain predicate value %q", r.TableID, probe)
		}
	}

	// An out-of-vocabulary value admits nothing.
	res = mustExecute(t, sys, Query{Seed: seed, Relation: "union", K: 50,
		Predicates: Predicates{Values: []string{"zz-absent-everywhere"}}})
	if len(res.Tables) != 0 {
		t.Errorf("OOV values predicate returned %d tables, want 0", len(res.Tables))
	}
}

// --- filtered-vs-brute-force correctness ---

// The staged execution must equal "run the bare engine over the whole
// lake, drop tables failing the predicates, truncate to k".
func TestFilteredEqualsPostFiltered(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	pr := Predicates{MinRows: 1, ColumnNames: []string{seed.Columns[0].Name}}

	// Oracle allowed set from the meta prefilter semantics.
	allowed := make(map[string]bool)
	for _, tbl := range sys.Catalog.Tables() {
		ok := tbl.NumRows() >= 1 && hasColumnNamed(tbl, seed.Columns[0].Name)
		if ok {
			allowed[tbl.ID] = true
		}
	}
	if len(allowed) == 0 || len(allowed) == sys.Catalog.Len() {
		t.Fatalf("degenerate predicate: admits %d of %d", len(allowed), sys.Catalog.Len())
	}

	k := 5
	t.Run("union-tus", func(t *testing.T) {
		full, err := sys.TUS.Search(seed, sys.Catalog.Len(), union.EnsembleMeasure)
		if err != nil {
			t.Fatal(err)
		}
		var want []union.Result
		for _, r := range full {
			if allowed[r.TableID] {
				want = append(want, r)
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		res := mustExecute(t, sys, Query{Seed: seed, Relation: "union", K: k, Predicates: pr})
		if !reflect.DeepEqual(res.Tables, want) {
			t.Errorf("filtered union != post-filtered bare ranking\n got %v\nwant %v", res.Tables, want)
		}
	})
	t.Run("join-overlap", func(t *testing.T) {
		full, err := sys.JoinableColumns(seed.Columns[0].Values, sys.Join.NumColumns())
		if err != nil {
			t.Fatal(err)
		}
		want := full[:0:0]
		for _, m := range full {
			id, _ := table.SplitColumnKey(m.ColumnKey)
			if allowed[id] {
				want = append(want, m)
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		res := mustExecute(t, sys, Query{Values: seed.Columns[0].Values, Relation: "join", K: k, Predicates: pr})
		if !reflect.DeepEqual(res.Matches, want) {
			t.Errorf("filtered join != post-filtered bare ranking\n got %v\nwant %v", res.Matches, want)
		}
	})
	t.Run("join-containment", func(t *testing.T) {
		full, err := sys.ContainmentSearch(seed.Columns[0].Values, 0.3, sys.Join.NumColumns())
		if err != nil {
			t.Fatal(err)
		}
		want := full[:0:0]
		for _, m := range full {
			id, _ := table.SplitColumnKey(m.ColumnKey)
			if allowed[id] {
				want = append(want, m)
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		res := mustExecute(t, sys, Query{Values: seed.Columns[0].Values, Relation: "join",
			Mode: "containment", Threshold: 0.3, K: k, Predicates: pr})
		if !reflect.DeepEqual(res.Matches, want) {
			t.Errorf("filtered containment != post-filtered bare ranking\n got %v\nwant %v", res.Matches, want)
		}
	})
}

// --- explain block ---

func TestExplainChain(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	p, err := NewPlanOrdered(sys, Query{Seed: seed, Relation: "union", K: 5,
		Predicates: Predicates{MinRows: 1, Keywords: gen.DomainNames[0]}}, OrderFixed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stages := make([]string, len(res.Explain))
	for i, st := range res.Explain {
		stages[i] = st.Stage
	}
	want := []string{StageMeta, StageKeyword, StageCandidates, StageVerify}
	if !reflect.DeepEqual(stages, want) {
		t.Fatalf("explain stages = %v, want %v", stages, want)
	}
	// The prefilter chain hands its out-count to the next stage's in.
	if res.Explain[0].In != sys.Catalog.Len() {
		t.Errorf("first stage in = %d, want lake size %d", res.Explain[0].In, sys.Catalog.Len())
	}
	for i := 0; i+1 < 2; i++ {
		if res.Explain[i].Out != res.Explain[i+1].In {
			t.Errorf("stage %d out %d != stage %d in %d",
				i, res.Explain[i].Out, i+1, res.Explain[i+1].In)
		}
	}
	if last := res.Explain[len(res.Explain)-1]; last.Out != len(res.Tables) {
		t.Errorf("verify out = %d, want result count %d", last.Out, len(res.Tables))
	}
}

// --- stage caching ---

type mapCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	hits int
}

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *mapCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

func TestPrefilterCaching(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	cache := &mapCache{m: make(map[string][]byte)}
	q := Query{Seed: seed, Relation: "union", K: 5,
		Predicates: Predicates{MinRows: 1, Keywords: gen.DomainNames[0]}}
	// Fixed order: both prefilters always evaluate, so the cache sees
	// exactly one entry per stage per generation. (Under cost ordering a
	// provably-total stage is skipped and never touches the cache.)
	p, err := NewPlanOrdered(sys, q, OrderFixed)
	if err != nil {
		t.Fatal(err)
	}
	opts := ExecOptions{Cache: cache, Gen: 7}
	first, err := p.ExecuteOpts(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 0 || len(cache.m) != 2 {
		t.Fatalf("after first run: hits=%d entries=%d, want 0 hits, 2 entries", cache.hits, len(cache.m))
	}
	second, err := p.ExecuteOpts(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 2 {
		t.Errorf("after second run: hits=%d, want 2 (both prefilters recalled)", cache.hits)
	}
	if !reflect.DeepEqual(first.Tables, second.Tables) {
		t.Errorf("cached run diverged: %v vs %v", first.Tables, second.Tables)
	}

	// A different generation misses: stale sets cannot leak across
	// snapshot swaps.
	if _, err := p.ExecuteOpts(context.Background(), ExecOptions{Cache: cache, Gen: 8}); err != nil {
		t.Fatal(err)
	}
	if len(cache.m) != 4 {
		t.Errorf("after gen bump: entries=%d, want 4 (fresh keys per gen)", len(cache.m))
	}
}

// --- relation "any" ---

func TestAnyRelation(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	res := mustExecute(t, sys, Query{Seed: seed, K: 10})
	if len(res.Tables) == 0 {
		t.Fatal("any-relation discover found nothing for a template table")
	}
	for i := 1; i < len(res.Tables); i++ {
		a, b := res.Tables[i-1], res.Tables[i]
		if a.Score < b.Score || (a.Score == b.Score && a.TableID > b.TableID) {
			t.Errorf("any ranking not (score desc, id asc) at %d: %v then %v", i, a, b)
		}
	}
	for _, r := range res.Tables {
		if r.TableID == seed.ID {
			t.Errorf("seed table %s in its own results", seed.ID)
		}
	}
	// Determinism.
	again := mustExecute(t, sys, Query{Seed: seed, K: 10})
	if !reflect.DeepEqual(res.Tables, again.Tables) {
		t.Error("any-relation discover is not deterministic")
	}
}

// JSON wire shape of the explain block is part of the API contract.
func TestStageExplainJSON(t *testing.T) {
	b, err := json.Marshal(StageExplain{Stage: StageMeta, In: 20, Out: 5, ElapsedUS: 12})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"stage":"prefilter_meta","in":20,"out":5,"elapsed_us":12}`
	if string(b) != want {
		t.Errorf("explain JSON = %s, want %s", b, want)
	}
}
