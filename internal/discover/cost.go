// Planner cost model: per-prefilter selectivity and cost estimates
// derived from the build-time catalog statistics block
// (core.CatalogStats) plus the postings lengths already persisted in
// the keyword and join indexes. The planner orders prefilters by
// estimated (cost × survivor fraction) and elides stages that provably
// admit every table; because prefilters intersect commutatively, every
// ordering — and every elision of a provably-total stage — yields
// bit-identical results, so the estimates only ever move work, never
// answers.
package discover

import (
	"math"
	"sort"

	"tablehound/internal/tokenize"
)

// Order selects the planner's prefilter ordering policy.
type Order byte

const (
	// OrderCost (the default) orders prefilters by estimated
	// (cost × survivor fraction), skips provably-total stages, and
	// evaluates a later stage over the narrowed allowed set when that
	// is cheaper than a full-lake pass.
	OrderCost Order = iota
	// OrderFixed runs prefilters in the fixed cheap→expensive
	// declaration order (meta, keyword, values), always over the full
	// lake — the pre-cost-model baseline the parity tests and the e25
	// experiment compare against.
	OrderFixed
)

// stagePlan carries one planned prefilter's cost-model estimates.
type stagePlan struct {
	name string
	// sel is the estimated fraction of lake tables the stage admits
	// (the product of its predicate factors' marginal fractions).
	sel float64
	// cost is the estimated full-lake evaluation cost in deterministic
	// work units (per-table predicate checks, or posting entries).
	cost int64
	// unit is the per-table cost of the stage's restricted evaluation
	// path; 0 when the stage has none (keyword and values always run
	// their full path).
	unit int64
	// estOut is the estimated surviving table count after this stage,
	// chained through the planned order from the lake size.
	estOut int
	// skip marks a stage whose predicate provably admits every table
	// (each marginal factor's exact count equals the lake size): the
	// executor records it and elides the evaluation.
	skip bool
}

// score is the ordering key: expected cost weighted by how little the
// stage narrows the chain. Lower runs earlier.
func (sp stagePlan) score() float64 { return float64(sp.cost) * sp.sel }

// estimateMeta prices the metadata prefilter from the catalog stats
// block. Each predicate factor's marginal fraction is exact (row/col
// range counts by binary search, column-name and type document
// frequencies); only the independence assumption across ANDed factors
// is approximate. The stage is provably total exactly when every
// factor admits all N tables — then their conjunction does too.
func (p *Plan) estimateMeta() stagePlan {
	sp := stagePlan{name: StageMeta, sel: 1}
	pr := p.q.Predicates
	stats := p.sys.Stats
	n := p.sys.Catalog.Len()
	sp.unit = int64(1 + len(pr.ColumnNames) + len(p.colTypes))
	sp.cost = int64(n) * sp.unit
	if stats == nil || n == 0 {
		return sp
	}
	total := true
	factor := func(count int) {
		sp.sel *= float64(count) / float64(n)
		total = total && count == n
	}
	if pr.MinRows > 0 || pr.MaxRows > 0 {
		factor(stats.CountRows(pr.MinRows, pr.MaxRows))
	}
	if pr.MinCols > 0 || pr.MaxCols > 0 {
		factor(stats.CountCols(pr.MinCols, pr.MaxCols))
	}
	for _, name := range pr.ColumnNames {
		factor(stats.CountColName(name))
	}
	for _, t := range p.colTypes {
		factor(stats.CountType(t))
	}
	sp.skip = total
	return sp
}

// estimateKeyword prices the keyword prefilter from the metadata
// index's per-term document frequencies. BooleanSearch is a full scan
// of the corpus whatever the query, so the cost is N × terms and there
// is no restricted path. A query whose terms are all stopwords admits
// nothing (selectivity 0); a query whose every term appears in every
// document provably admits all tables.
func (p *Plan) estimateKeyword() stagePlan {
	sp := stagePlan{name: StageKeyword, sel: 1}
	n := p.sys.Catalog.Len()
	dfs := p.sys.Keyword.QueryDFs(p.q.Predicates.Keywords)
	terms := len(dfs)
	if terms == 0 {
		sp.sel = 0
		sp.cost = int64(n)
		return sp
	}
	sp.cost = int64(n) * int64(terms)
	if n == 0 {
		return sp
	}
	total := true
	for _, df := range dfs {
		sp.sel *= float64(df) / float64(n)
		total = total && df == n
	}
	sp.skip = total
	return sp
}

// estimateValues prices the cell-value prefilter from the join
// inverted index's posting-list lengths: the postings-based filter
// scans exactly the predicate values' posting lists. Posting lengths
// count columns, not tables, so per-value fractions are clamped to 1;
// the stage is never provably total (that would require every table to
// contain every value, which the column-level DF cannot establish).
func (p *Plan) estimateValues() stagePlan {
	sp := stagePlan{name: StageValues, sel: 1}
	n := p.sys.Catalog.Len()
	d := p.sys.Dict
	vals := tokenize.NormalizeSet(p.q.Predicates.Values)
	if len(vals) == 0 || d == nil || n == 0 {
		sp.sel = 0
		return sp
	}
	for _, v := range vals {
		id, ok := d.ID(v)
		if !ok {
			// Out of vocabulary: the filter admits nothing and costs
			// only the dictionary lookups.
			sp.sel = 0
			sp.cost = int64(len(vals))
			return sp
		}
		df := int64(p.sys.Join.ValueDF(id))
		sp.cost += df
		sp.sel *= math.Min(1, float64(df)/float64(n))
	}
	return sp
}

// planPrefilters builds, orders, and chains the prefilter stage plans
// for the query's present predicate groups.
func (p *Plan) planPrefilters() []stagePlan {
	var pre []stagePlan
	if p.q.Predicates.HasMeta() {
		pre = append(pre, p.estimateMeta())
	}
	if p.q.Predicates.HasKeywords() {
		pre = append(pre, p.estimateKeyword())
	}
	if p.q.Predicates.HasValues() {
		pre = append(pre, p.estimateValues())
	}
	if p.order == OrderFixed {
		// The baseline neither reorders, skips, nor restricts.
		for i := range pre {
			pre[i].skip = false
			pre[i].unit = 0
		}
	} else {
		// Stable sort: equal scores keep the canonical fixed order.
		sort.SliceStable(pre, func(i, j int) bool { return pre[i].score() < pre[j].score() })
	}
	// Chain the survivor estimates through the planned order. Skipped
	// stages have selectivity exactly 1, so they pass the estimate
	// through unchanged.
	est := float64(p.sys.Catalog.Len())
	for i := range pre {
		est *= pre[i].sel
		pre[i].estOut = int(math.Round(est))
	}
	return pre
}
