package discover

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// --- cost model: planning behavior ---

// TestCostOrderReordersAndSkips drives the adversarial shape the cost
// model exists for: a broad metadata predicate (admits everything)
// next to a selective keyword. The planner must run the keyword first
// and record the provably-total meta stage as skipped, untouched.
func TestCostOrderReordersAndSkips(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	q := Query{Seed: seed, Relation: "union", K: 5,
		// Every generated table has rows, so min_rows=1 is provably total
		// from the stats block; template0 tags only a few tables.
		Predicates: Predicates{MinRows: 1, Keywords: "template0"}}
	p, err := NewPlan(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stages(); got[0] != StageKeyword {
		t.Fatalf("cost order stages = %v, want keyword first", got)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var meta, kw *StageExplain
	for i := range res.Explain {
		switch res.Explain[i].Stage {
		case StageMeta:
			meta = &res.Explain[i]
		case StageKeyword:
			kw = &res.Explain[i]
		}
	}
	if meta == nil || kw == nil {
		t.Fatalf("explain rows missing: %+v", res.Explain)
	}
	if !meta.Skipped || meta.In != meta.Out || meta.Cost != 0 {
		t.Errorf("total meta stage not skipped cleanly: %+v", *meta)
	}
	if kw.Skipped || kw.Cost == 0 {
		t.Errorf("keyword stage should have run with cost: %+v", *kw)
	}
	if kw.EstOut <= 0 || kw.EstOut > sys.Catalog.Len() {
		t.Errorf("keyword est_out = %d out of range", kw.EstOut)
	}
	// The skip must not change the answer.
	fixed, err := NewPlanOrdered(sys, q, OrderFixed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fixed.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, want.Tables) {
		t.Errorf("cost order diverged from fixed order:\n got %v\nwant %v", res.Tables, want.Tables)
	}
}

// TestEstimateChainMonotone checks the planned estimates are chained
// through the execution order: est_out never exceeds the lake and the
// rows appear for every prefilter stage.
func TestEstimateChainMonotone(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	p, err := NewPlan(sys, Query{Seed: seed, Relation: "union", K: 5,
		Predicates: Predicates{ColumnNames: []string{seed.Columns[0].Name},
			Keywords: gen.DomainNames[0], Values: []string{seed.Columns[0].Values[0]}}})
	if err != nil {
		t.Fatal(err)
	}
	n := sys.Catalog.Len()
	prev := n
	for _, sp := range p.pre {
		if sp.estOut < 0 || sp.estOut > n {
			t.Errorf("stage %s est_out = %d out of [0,%d]", sp.name, sp.estOut, n)
		}
		if sp.estOut > prev {
			t.Errorf("stage %s est_out %d above previous %d (chain not monotone)", sp.name, sp.estOut, prev)
		}
		prev = sp.estOut
	}
}

// --- satellite: stored column types (no per-query re-inference) ---

// TestMetaStoredTypeParity pins that matching on the ingest-time
// stored column type admits exactly the tables a fresh re-inference
// over the cell values would — the stored type IS the inferred type.
func TestMetaStoredTypeParity(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	for name, want := range typeByName {
		if name == "unknown" {
			continue
		}
		p, err := NewPlanOrdered(sys, Query{Seed: seed, Relation: "union", K: 5,
			Predicates: Predicates{ColumnTypes: []string{name}}}, OrderFixed)
		if err != nil {
			t.Fatal(err)
		}
		got := p.metaFilter()
		var oracle []string
		for _, tbl := range sys.Catalog.Tables() {
			for _, c := range tbl.Columns {
				if table.InferType(c.Values) == want {
					oracle = append(oracle, tbl.ID)
					break
				}
			}
		}
		sort.Strings(got)
		sort.Strings(oracle)
		if !reflect.DeepEqual(got, oracle) {
			t.Errorf("type %s: stored-type admit set %v != re-inferred %v", name, got, oracle)
		}
	}
}

// --- satellite: per-stage cache keys ---

// TestStageCacheKeyPerGroup pins that each prefilter caches under its
// own predicate group only: changing the keyword must not evict or
// miss the cached meta entry.
func TestStageCacheKeyPerGroup(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	cache := &mapCache{m: make(map[string][]byte)}
	meta := Predicates{ColumnNames: []string{seed.Columns[0].Name}}
	run := func(keywords string) {
		pr := meta
		pr.Keywords = keywords
		p, err := NewPlanOrdered(sys, Query{Seed: seed, Relation: "union", K: 5,
			Predicates: pr}, OrderFixed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.ExecuteOpts(context.Background(), ExecOptions{Cache: cache, Gen: 3}); err != nil {
			t.Fatal(err)
		}
	}
	run("template0")
	if cache.hits != 0 || len(cache.m) != 2 {
		t.Fatalf("first run: hits=%d entries=%d, want 0 and 2", cache.hits, len(cache.m))
	}
	// Different keyword, same meta group: meta must hit, keyword must
	// miss and add exactly one entry.
	run("template1")
	if cache.hits != 1 {
		t.Errorf("after keyword change: hits=%d, want 1 (the meta entry)", cache.hits)
	}
	if len(cache.m) != 3 {
		t.Errorf("after keyword change: entries=%d, want 3", len(cache.m))
	}
}

// --- satellite: postings-answered values prefilter ---

// TestValuesFilterPostingsParity compares the posting-list values
// filter against the brute-force oracle it replaced — per table, every
// predicate value must be contained in some indexed column's ID set —
// over present values, out-of-vocabulary values, and duplicates.
func TestValuesFilterPostingsParity(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	cases := [][]string{
		{gen.Tables[7].Columns[0].Values[0]},
		{seed.Columns[0].Values[0], seed.Columns[0].Values[1]},
		{seed.Columns[0].Values[0], seed.Columns[0].Values[0]}, // duplicate
		{gen.Tables[3].Columns[0].Values[2], gen.Tables[15].Columns[0].Values[0]},
		{"zz-absent-everywhere"},                          // OOV
		{seed.Columns[0].Values[0], "zz-absent-anywhere"}, // mixed OOV
	}
	for i, vals := range cases {
		p, err := NewPlanOrdered(sys, Query{Seed: seed, Relation: "union", K: 5,
			Predicates: Predicates{Values: vals}}, OrderFixed)
		if err != nil {
			t.Fatal(err)
		}
		got := p.valuesFilter()

		// Brute-force oracle: the pre-postings implementation.
		d, e := sys.Dict, sys.Join
		norm := tokenize.NormalizeSet(vals)
		var ids []uint32
		oov := false
		for _, v := range norm {
			id, ok := d.ID(v)
			if !ok {
				oov = true
				break
			}
			ids = append(ids, id)
		}
		var oracle []string
		if !oov && len(norm) > 0 {
			for _, tbl := range sys.Catalog.Tables() {
				keys := e.ColumnKeysOf(tbl.ID)
				all := true
				for _, id := range ids {
					found := false
					for _, key := range keys {
						if e.IDSet(key).Contains(id) {
							found = true
							break
						}
					}
					if !found {
						all = false
						break
					}
				}
				if all {
					oracle = append(oracle, tbl.ID)
				}
			}
		}
		sort.Strings(got)
		sort.Strings(oracle)
		if !reflect.DeepEqual(got, oracle) {
			t.Errorf("case %d %v: postings admit set %v != oracle %v", i, vals, got, oracle)
		}
	}
}

// --- satellite: randomized fixed-vs-cost parity ---

// TestCostOrderParityRandomized sweeps seed tables × predicate
// combinations × relations and demands the cost-ordered plan's results
// be deeply equal to the fixed-order plan's. Reordering, skipping,
// restricted evaluation, and the JOSIE pushdown must all be invisible
// in the answer.
func TestCostOrderParityRandomized(t *testing.T) {
	sys, gen := fixture(t)
	preds := []Predicates{
		{},
		{MinRows: 1},
		{MinRows: 1, Keywords: "template0"},
		{ColumnNames: []string{gen.Tables[0].Columns[0].Name}, Keywords: gen.DomainNames[0]},
		{Keywords: gen.DomainNames[1], Values: []string{gen.Tables[7].Columns[0].Values[0]}},
		{MinRows: 1, MinCols: 1, Keywords: "template1",
			Values: []string{gen.Tables[4].Columns[0].Values[0]}},
		{MaxRows: gen.Tables[0].NumRows(), ColumnTypes: []string{"string"}},
	}
	for _, si := range []int{0, 5, 13} {
		seed := gen.Tables[si]
		for pi, pr := range preds {
			for _, rel := range []string{"join", "union", "any"} {
				q := Query{Seed: seed, Relation: rel, K: 7, Predicates: pr}
				if rel == "join" {
					q = Query{Values: seed.Columns[0].Values, Relation: "join", K: 7, Predicates: pr}
				}
				name := fmt.Sprintf("seed%d/pred%d/%s", si, pi, rel)
				fp, err := NewPlanOrdered(sys, q, OrderFixed)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				cp, err := NewPlanOrdered(sys, q, OrderCost)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := fp.Execute(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got, err := cp.Execute(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(got.Matches, want.Matches) {
					t.Errorf("%s: matches diverged\n got %v\nwant %v", name, got.Matches, want.Matches)
				}
				if !reflect.DeepEqual(got.Tables, want.Tables) {
					t.Errorf("%s: tables diverged\n got %v\nwant %v", name, got.Tables, want.Tables)
				}
			}
		}
	}
}

// TestConcurrentCostExecution runs both orderings concurrently over a
// shared cache — the data-race check for the stats block, restricted
// evaluation, and masked-traversal paths.
func TestConcurrentCostExecution(t *testing.T) {
	sys, gen := fixture(t)
	seed := gen.Tables[0]
	q := Query{Seed: seed, Relation: "union", K: 5,
		Predicates: Predicates{MinRows: 1, Keywords: "template0",
			Values: []string{seed.Columns[0].Values[0]}}}
	jq := Query{Values: seed.Columns[0].Values, Relation: "join", K: 5, Predicates: q.Predicates}
	cache := &mapCache{m: make(map[string][]byte)}
	baseline := mustExecute(t, sys, q)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		for _, ord := range []Order{OrderCost, OrderFixed} {
			for _, qq := range []Query{q, jq} {
				wg.Add(1)
				go func(qq Query, ord Order) {
					defer wg.Done()
					p, err := NewPlanOrdered(sys, qq, ord)
					if err != nil {
						errs <- err
						return
					}
					res, err := p.ExecuteOpts(context.Background(), ExecOptions{Cache: cache, Gen: 1})
					if err != nil {
						errs <- err
						return
					}
					if qq.Relation == "union" && !reflect.DeepEqual(res.Tables, baseline.Tables) {
						errs <- fmt.Errorf("concurrent run diverged: %v vs %v", res.Tables, baseline.Tables)
					}
				}(qq, ord)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
