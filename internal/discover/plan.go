package discover

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/join"
	"tablehound/internal/qcache"
	"tablehound/internal/starmie"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/union"
)

// Result is a ranked discovery answer. Join-relation queries rank
// columns (Matches); union/any-relation queries rank tables (Tables).
// Explain carries one row per executed stage in execution order.
type Result struct {
	Matches []join.Match
	Tables  []union.Result
	Explain []StageExplain
}

// StageCache is the per-stage cache contract; qcache.Cache satisfies
// it. Only prefilter stages cache: their output (the table-ID set a
// predicate group admits) is seed-independent, so it is shared across
// every discover query with the same predicates on the same
// generation.
type StageCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// ExecOptions tune one execution. The zero value runs uncached.
type ExecOptions struct {
	// Cache, when set, memoizes prefilter-stage outputs keyed by
	// (Gen, stage, predicates).
	Cache StageCache
	// Gen is the data generation folded into stage cache keys, so a
	// snapshot swap invalidates them.
	Gen uint64
}

// Plan is a compiled discover query: validated parameters, the
// pre-encoded seed (EncodeQuery / Prepare run once at compile time,
// not per stage), and the ordered stage list. A Plan is a pure read
// over the frozen System and safe for concurrent Execute calls.
type Plan struct {
	sys       *core.System
	q         Query
	relation  Relation
	mode      JoinMode
	method    UnionMethod
	threshold float64
	order     Order
	stages    []string
	pre       []stagePlan // prefilters in execution order, with estimates
	colTypes  []table.Type

	// Pre-encoded seeds, filled per relation at compile time.
	joinQ    join.Query      // join or any
	tusQ     *union.TUSQuery // union/tus or any
	santosQ  *union.SantosQuery
	starmieQ *starmie.TableQuery
	d3lQ     *union.D3LQuery
}

// Stages returns the ordered stage names the planner compiled, for
// display and tests.
func (p *Plan) Stages() []string { return append([]string(nil), p.stages...) }

// typeByName mirrors table.Type's String() names for predicate
// parsing.
var typeByName = map[string]table.Type{
	"unknown": table.TypeUnknown,
	"bool":    table.TypeBool,
	"int":     table.TypeInt,
	"float":   table.TypeFloat,
	"date":    table.TypeDate,
	"string":  table.TypeString,
}

// NewPlan validates and compiles a query against a frozen System with
// the default cost-based stage ordering. Invalid parameters
// (non-positive k, unknown relation/mode/method or column type,
// missing or unusable seed) wrap table.ErrBadQuery.
func NewPlan(sys *core.System, q Query) (*Plan, error) {
	return NewPlanOrdered(sys, q, OrderCost)
}

// NewPlanOrdered is NewPlan with an explicit ordering policy.
//
// Stage ordering rule: a prefilter stage is planned only when its
// predicate group is present. Under OrderCost, present prefilters are
// ordered by estimated (cost × survivor fraction) from the catalog
// stats block and index postings lengths, and a stage whose predicate
// provably admits every table is marked skipped; under OrderFixed they
// run in the fixed cheap→expensive order (meta, keyword, values) with
// no skips. Prefilter intersection is commutative, so both policies
// return bit-identical results. Candidates and verify always close
// the plan.
func NewPlanOrdered(sys *core.System, q Query, ord Order) (*Plan, error) {
	p := &Plan{sys: sys, q: q, threshold: q.Threshold, order: ord}
	if q.K <= 0 {
		return nil, fmt.Errorf("discover: k must be positive (got %d): %w", q.K, table.ErrBadQuery)
	}
	var err error
	if p.relation, err = ParseRelation(q.Relation); err != nil {
		return nil, err
	}
	if p.mode, err = ParseJoinMode(q.Mode); err != nil {
		return nil, err
	}
	if p.method, err = ParseUnionMethod(q.Method); err != nil {
		return nil, err
	}
	if p.threshold <= 0 {
		p.threshold = 0.5
	}
	for _, name := range q.Predicates.ColumnTypes {
		t, ok := typeByName[name]
		if !ok {
			return nil, fmt.Errorf("discover: unknown column type %q: %w", name, table.ErrBadQuery)
		}
		p.colTypes = append(p.colTypes, t)
	}
	if q.Seed != nil && len(q.Values) > 0 {
		return nil, fmt.Errorf("discover: seed table and seed values are exclusive: %w", table.ErrBadQuery)
	}
	if err := p.prepareSeed(); err != nil {
		return nil, err
	}
	p.pre = p.planPrefilters()
	for _, sp := range p.pre {
		p.stages = append(p.stages, sp.name)
	}
	p.stages = append(p.stages, StageCandidates, StageVerify)
	return p, nil
}

// prepareSeed pre-encodes the seed against the engines the relation
// needs, mirroring exactly what the bare endpoints do so unfiltered
// plans rank bit-identically.
func (p *Plan) prepareSeed() error {
	sys, q := p.sys, p.q
	switch p.relation {
	case RelationJoin:
		vals := q.Values
		if len(vals) == 0 {
			if q.Seed == nil {
				return fmt.Errorf("discover: join relation needs seed values or a seed table: %w", table.ErrBadQuery)
			}
			var err error
			if vals, err = seedColumnValues(q.Seed, q.Column); err != nil {
				return err
			}
		}
		p.joinQ = sys.Join.EncodeQuery(vals)
		if len(p.joinQ.IDs) == 0 {
			return fmt.Errorf("discover: seed column has no usable values: %w", table.ErrBadQuery)
		}
	case RelationUnion:
		if q.Seed == nil {
			return fmt.Errorf("discover: union relation needs a seed table: %w", table.ErrBadQuery)
		}
		var err error
		switch p.method {
		case MethodTUS:
			p.tusQ, err = sys.TUS.Prepare(q.Seed)
		case MethodSantos:
			p.santosQ, err = sys.Santos.Prepare(q.Seed)
		case MethodStarmie:
			p.starmieQ, err = sys.Starmie.PrepareTable(q.Seed)
		case MethodD3L:
			p.d3lQ, err = sys.D3L.Prepare(q.Seed)
		}
		if err != nil {
			return err
		}
	case RelationAny:
		if q.Seed == nil {
			return fmt.Errorf("discover: relation \"any\" needs a seed table: %w", table.ErrBadQuery)
		}
		var err error
		if p.tusQ, err = sys.TUS.Prepare(q.Seed); err != nil {
			return err
		}
		// The join side is best-effort: a seed table whose columns all
		// fall out of the join vocabulary still discovers by union.
		if vals, err := seedColumnValues(q.Seed, q.Column); err == nil {
			p.joinQ = sys.Join.EncodeQuery(vals)
		} else if q.Column != "" {
			return err
		}
	}
	return nil
}

// seedColumnValues picks the seed column from a seed table: the named
// column, or the first column with values usable after normalization.
func seedColumnValues(t *table.Table, column string) ([]string, error) {
	if column != "" {
		c := t.Column(column)
		if c == nil {
			return nil, fmt.Errorf("discover: seed table %q has no column %q: %w", t.ID, column, table.ErrBadQuery)
		}
		return c.Values, nil
	}
	for _, c := range t.Columns {
		if len(tokenize.NormalizeSet(c.Values)) > 0 {
			return c.Values, nil
		}
	}
	return nil, fmt.Errorf("discover: seed table %q has no usable column: %w", t.ID, table.ErrBadQuery)
}

// Execute runs the plan uncached.
func (p *Plan) Execute(ctx context.Context) (*Result, error) {
	return p.ExecuteOpts(ctx, ExecOptions{})
}

// ExecuteOpts runs the compiled stages in order. Prefilter stages
// narrow an allowed-table set (nil = unrestricted); the candidates
// stage intersects engine candidate generation with it; the verify
// stage exactly scores what is left. Because every engine scores
// candidates independently and ranks by a total order
// (score desc, key asc), restricting candidates before scoring
// returns exactly the bare engine's ranking restricted to allowed
// tables — and with no predicates, the bare ranking itself.
//
// Under OrderCost, three executor shortcuts apply, each preserving
// bit-identical results:
//   - a stage the planner proved total is recorded skipped (allowing
//     every table intersects to the identity);
//   - once the allowed set is empty, remaining prefilters are
//     recorded skipped (intersecting with the empty set is absorbing);
//   - a prefilter whose restricted evaluation over the current
//     allowed set is cheaper than its full-lake pass evaluates only
//     the allowed tables (allowed ∩ fullAdmit ≡ the per-allowed-table
//     predicate checks, since the predicate is per-table).
func (p *Plan) ExecuteOpts(ctx context.Context, opts ExecOptions) (*Result, error) {
	res := &Result{}
	lakeN := p.sys.Catalog.Len()
	var allowed map[string]bool // nil = unrestricted
	count := func() int {
		if allowed == nil {
			return lakeN
		}
		return len(allowed)
	}
	for _, stage := range p.stages {
		switch stage {
		case StageMeta, StageKeyword, StageValues:
			sp := p.stagePlanOf(stage)
			in := count()
			start := time.Now()
			if p.order == OrderCost && (sp.skip || (allowed != nil && len(allowed) == 0)) {
				res.recordStage(StageExplain{Stage: stage, In: in, Out: in,
					EstOut: sp.estOut, Skipped: true}, start)
				continue
			}
			ids, cost := p.prefilter(stage, opts, allowed)
			next := make(map[string]bool, len(ids))
			for _, id := range ids {
				if allowed == nil || allowed[id] {
					next[id] = true
				}
			}
			allowed = next
			res.recordStage(StageExplain{Stage: stage, In: in, Out: len(allowed),
				EstOut: sp.estOut, Cost: cost}, start)
		case StageCandidates:
			if err := p.runSearch(ctx, res, allowed, count()); err != nil {
				return nil, err
			}
		case StageVerify:
			// Recorded by runSearch together with the candidates stage;
			// the two share the pre-encoded seed.
		}
	}
	return res, nil
}

// stagePlanOf returns the planned estimates for a prefilter stage.
func (p *Plan) stagePlanOf(stage string) stagePlan {
	for _, sp := range p.pre {
		if sp.name == stage {
			return sp
		}
	}
	return stagePlan{name: stage}
}

func (r *Result) record(stage string, in, out int, start time.Time) {
	r.recordStage(StageExplain{Stage: stage, In: in, Out: out}, start)
}

func (r *Result) recordCost(stage string, in, out int, cost int64, start time.Time) {
	r.recordStage(StageExplain{Stage: stage, In: in, Out: out, Cost: cost}, start)
}

func (r *Result) recordStage(se StageExplain, start time.Time) {
	se.ElapsedUS = time.Since(start).Microseconds()
	r.Explain = append(r.Explain, se)
}

// prefilter computes (or recalls) the table-ID set one predicate
// group admits, and reports the deterministic work units it spent.
// The cache key covers only the stage's own predicate group, so a
// change in an unrelated group (a different keyword next to the same
// meta predicate) still hits. Full-lake outputs are allowed-set
// independent and cache cleanly; a restricted evaluation (cost
// ordering only) returns allowed ∩ admit directly and is never
// cached.
func (p *Plan) prefilter(stage string, opts ExecOptions, allowed map[string]bool) ([]string, int64) {
	var key string
	if opts.Cache != nil {
		var kb qcache.KeyBuilder
		kb.Byte('P').U64(opts.Gen).Str(stage).Str(p.stagePredicates(stage))
		key = kb.String()
		if raw, ok := opts.Cache.Get(key); ok {
			var ids []string
			if json.Unmarshal(raw, &ids) == nil {
				return ids, 0
			}
		}
	}
	sp := p.stagePlanOf(stage)
	if p.order == OrderCost && allowed != nil && sp.unit > 0 {
		if restricted := int64(len(allowed)) * sp.unit; restricted < sp.cost {
			var ids []string
			for _, id := range sortedIDs(allowed) {
				if p.matchesMeta(p.sys.Catalog.Table(id)) {
					ids = append(ids, id)
				}
			}
			return ids, restricted
		}
	}
	var ids []string
	switch stage {
	case StageMeta:
		ids = p.metaFilter()
	case StageKeyword:
		ids = p.keywordFilter()
	case StageValues:
		ids = p.valuesFilter()
	}
	if opts.Cache != nil {
		if raw, err := json.Marshal(ids); err == nil {
			opts.Cache.Put(key, raw)
		}
	}
	return ids, sp.cost
}

// stagePredicates renders only the predicate group a stage evaluates,
// as its cache-key payload.
func (p *Plan) stagePredicates(stage string) string {
	pr := p.q.Predicates
	var group Predicates
	switch stage {
	case StageMeta:
		group = Predicates{
			ColumnNames: pr.ColumnNames, ColumnTypes: pr.ColumnTypes,
			MinRows: pr.MinRows, MaxRows: pr.MaxRows,
			MinCols: pr.MinCols, MaxCols: pr.MaxCols,
		}
	case StageKeyword:
		group = Predicates{Keywords: pr.Keywords}
	case StageValues:
		group = Predicates{Values: pr.Values}
	}
	b, _ := json.Marshal(group)
	return string(b)
}

func (p *Plan) metaFilter() []string {
	var out []string
	for _, t := range p.sys.Catalog.Tables() {
		if p.matchesMeta(t) {
			out = append(out, t.ID)
		}
	}
	return out
}

func (p *Plan) matchesMeta(t *table.Table) bool {
	pr := p.q.Predicates
	if pr.MinRows > 0 && t.NumRows() < pr.MinRows {
		return false
	}
	if pr.MaxRows > 0 && t.NumRows() > pr.MaxRows {
		return false
	}
	if pr.MinCols > 0 && t.NumCols() < pr.MinCols {
		return false
	}
	if pr.MaxCols > 0 && t.NumCols() > pr.MaxCols {
		return false
	}
	for _, want := range pr.ColumnNames {
		if !hasColumnNamed(t, want) {
			return false
		}
	}
	for _, want := range p.colTypes {
		found := false
		for _, c := range t.Columns {
			// Column types are inferred once at ingest and stored; re-running
			// InferType over the cell values here would repeat that work per
			// table × column × query.
			if c.Type == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func hasColumnNamed(t *table.Table, name string) bool {
	want := tokenize.Normalize(name)
	for _, c := range t.Columns {
		if tokenize.Normalize(c.Name) == want {
			return true
		}
	}
	return false
}

func (p *Plan) keywordFilter() []string {
	rs := p.sys.Keyword.BooleanSearch(p.q.Predicates.Keywords, p.sys.Catalog.Len(), true)
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TableID
	}
	sort.Strings(out)
	return out
}

// valuesFilter admits tables where every predicate value appears in
// some join-indexed column. A value outside the lake vocabulary
// admits nothing. Each value is answered straight from the join
// inverted index's posting list — the columns containing the value —
// so the work is Σ posting lengths rather than a
// tables × values × columns membership sweep over every ID set.
func (p *Plan) valuesFilter() []string {
	d := p.sys.Dict
	e := p.sys.Join
	vals := tokenize.NormalizeSet(p.q.Predicates.Values)
	if len(vals) == 0 || d == nil {
		return nil
	}
	var admit map[string]bool
	for _, v := range vals {
		id, ok := d.ID(v)
		if !ok {
			return nil
		}
		tabs := make(map[string]bool)
		for _, key := range e.ColumnsWithValue(id) {
			tid, _ := table.SplitColumnKey(key)
			tabs[tid] = true
		}
		if admit == nil {
			admit = tabs
		} else {
			for t := range admit {
				if !tabs[t] {
					delete(admit, t)
				}
			}
		}
		if len(admit) == 0 {
			return nil
		}
	}
	return sortedIDs(admit)
}

// sortedIDs renders the allowed set in deterministic order.
func sortedIDs(allowed map[string]bool) []string {
	out := make([]string, 0, len(allowed))
	for id := range allowed {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// keepAllowed filters table IDs by the allowed set, preserving order.
func keepAllowed(ids []string, allowed map[string]bool) []string {
	if allowed == nil {
		return ids
	}
	kept := ids[:0:0]
	for _, id := range ids {
		if allowed[id] {
			kept = append(kept, id)
		}
	}
	return kept
}

// runSearch executes the candidates and verify stages for the plan's
// relation, recording one explain row each.
func (p *Plan) runSearch(ctx context.Context, res *Result, allowed map[string]bool, in int) error {
	switch p.relation {
	case RelationJoin:
		return p.runJoin(ctx, res, allowed, in)
	case RelationUnion:
		return p.runUnion(ctx, res, allowed, in)
	default:
		return p.runAny(ctx, res, allowed, in)
	}
}

func (p *Plan) runJoin(ctx context.Context, res *Result, allowed map[string]bool, in int) error {
	e := p.sys.Join
	k := p.q.K
	if p.mode == ModeOverlap {
		if allowed == nil {
			// No predicates: JOSIE's own pruning is the candidate stage;
			// every indexed column is in play.
			start := time.Now()
			res.record(StageCandidates, in, e.NumColumns(), start)
			vstart := time.Now()
			ms, jst := e.TopKOverlapQueryStats(p.joinQ, k)
			res.Matches = ms
			res.recordCost(StageVerify, e.NumColumns(), len(ms),
				int64(jst.PostingsRead+jst.TokensRead), vstart)
			return nil
		}
		start := time.Now()
		var keys []string
		for _, id := range sortedIDs(allowed) {
			keys = append(keys, e.ColumnKeysOf(id)...)
		}
		res.recordCost(StageCandidates, in, len(keys), int64(len(keys)), start)
		vstart := time.Now()
		ms, ast, err := e.TopKOverlapAmongStatsCtx(ctx, p.joinQ, keys, k, p.order == OrderCost)
		if err != nil {
			return err
		}
		res.Matches = ms
		res.recordCost(StageVerify, len(keys), len(ms), ast.Work, vstart)
		return nil
	}
	// Containment: LSH Ensemble candidates, restricted, then exactly
	// verified — the unfiltered composition is literally
	// ContainmentSearchQueryCtx.
	start := time.Now()
	cands, err := e.ContainmentCandidatesQuery(p.joinQ, p.threshold)
	if err != nil {
		return err
	}
	if allowed != nil {
		kept := cands[:0:0]
		for _, key := range cands {
			id, _ := table.SplitColumnKey(key)
			if allowed[id] {
				kept = append(kept, key)
			}
		}
		cands = kept
	}
	res.recordCost(StageCandidates, in, len(cands), int64(len(cands)), start)
	vstart := time.Now()
	ms, err := e.VerifyContainmentQueryCtx(ctx, p.joinQ, cands, p.threshold)
	if err != nil {
		return err
	}
	if len(ms) > k {
		ms = ms[:k]
	}
	res.Matches = ms
	res.recordCost(StageVerify, len(cands), len(ms), int64(len(cands)), vstart)
	return nil
}

func (p *Plan) runUnion(ctx context.Context, res *Result, allowed map[string]bool, in int) error {
	sys, k := p.sys, p.q.K
	start := time.Now()
	var cands []string
	switch p.method {
	case MethodTUS:
		cands = keepAllowed(sys.TUS.Candidates(p.tusQ), allowed)
	case MethodSantos:
		cands = keepAllowed(sys.Santos.Candidates(p.santosQ, union.Hybrid), allowed)
	case MethodStarmie:
		cands = keepAllowed(sys.Starmie.CandidateTables(p.starmieQ, 64, false), allowed)
	case MethodD3L:
		// D3L has no sketch: its candidate set is the whole lake.
		cands = keepAllowed(sys.D3L.TableIDs(), allowed)
	}
	res.recordCost(StageCandidates, in, len(cands), int64(len(cands)), start)
	vstart := time.Now()
	var (
		rs  []union.Result
		err error
	)
	switch p.method {
	case MethodTUS:
		rs, err = sys.TUS.ScoreAmongCtx(ctx, p.tusQ, cands, k, union.EnsembleMeasure)
	case MethodSantos:
		rs, err = sys.Santos.ScoreAmongCtx(ctx, p.santosQ, cands, k, union.Hybrid)
	case MethodStarmie:
		for _, m := range sys.Starmie.ScoreTablesAmong(p.starmieQ, cands, k) {
			rs = append(rs, union.Result{TableID: m.TableID, Score: m.Score})
		}
	case MethodD3L:
		rs = sys.D3L.ScoreAmong(p.d3lQ, cands, k)
	}
	if err != nil {
		return err
	}
	res.Tables = rs
	res.recordCost(StageVerify, len(cands), len(rs), int64(len(cands)), vstart)
	return nil
}

// runAny blends both primitives: a candidate table's score is the max
// of its TUS union score and the best exact containment of the seed
// column among its columns. Deterministic (score desc, id asc), but
// not comparable to either bare endpoint — "any" answers "related in
// any way".
func (p *Plan) runAny(ctx context.Context, res *Result, allowed map[string]bool, in int) error {
	sys, k := p.sys, p.q.K
	start := time.Now()
	ucands := keepAllowed(sys.TUS.Candidates(p.tusQ), allowed)
	var jcands []string
	if len(p.joinQ.IDs) > 0 {
		all, err := sys.Join.ContainmentCandidatesQuery(p.joinQ, p.threshold)
		if err != nil {
			return err
		}
		for _, key := range all {
			id, _ := table.SplitColumnKey(key)
			if id == p.q.Seed.ID {
				continue
			}
			if allowed == nil || allowed[id] {
				jcands = append(jcands, key)
			}
		}
	}
	res.recordCost(StageCandidates, in, len(ucands)+len(jcands),
		int64(len(ucands)+len(jcands)), start)

	vstart := time.Now()
	urs, err := sys.TUS.ScoreAmongCtx(ctx, p.tusQ, ucands, len(ucands), union.EnsembleMeasure)
	if err != nil {
		return err
	}
	best := make(map[string]float64, len(urs))
	for _, r := range urs {
		best[r.TableID] = r.Score
	}
	if len(jcands) > 0 {
		ms, err := sys.Join.VerifyContainmentQueryCtx(ctx, p.joinQ, jcands, p.threshold)
		if err != nil {
			return err
		}
		for _, m := range ms {
			id, _ := table.SplitColumnKey(m.ColumnKey)
			if m.Containment > best[id] {
				best[id] = m.Containment
			}
		}
	}
	out := make([]union.Result, 0, len(best))
	for id, score := range best {
		out = append(out, union.Result{TableID: id, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].TableID < out[j].TableID
	})
	if len(out) > k {
		out = out[:k]
	}
	res.Tables = out
	res.recordCost(StageVerify, len(ucands)+len(jcands), len(out),
		int64(len(ucands)+len(jcands)), vstart)
	return nil
}
