package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/lake"
	"tablehound/internal/vecstore"
)

// vecLake builds one system over a moderate synthetic lake with the
// given vector-store options.
func vecLake(t *testing.T, opts Options) (*System, *datagen.Lake) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{
		Seed:              131,
		NumDomains:        12,
		DomainSize:        60,
		NumTemplates:      5,
		TablesPerTemplate: 4,
	})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		t.Fatal(err)
	}
	opts.Seed = 3
	sys, err := Build(cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// TestCentroidPrunedSearchBitIdentical is the pruning contract at the
// system level: a build with a coarse quantizer (nprobe = all) must
// answer every vector-search surface — Starmie table union, exact
// column vsearch, PEXESO fuzzy join — with results == (scores and
// order) to a build with pruning disabled.
func TestCentroidPrunedSearchBitIdentical(t *testing.T) {
	plain, gen := vecLake(t, Options{VecCentroids: -1})
	pruned, _ := vecLake(t, Options{VecCentroids: 96})

	if plain.Vecs.Centroids("starmie") != nil {
		t.Fatal("VecCentroids -1 still trained a centroid table")
	}
	if pruned.Vecs.Centroids("starmie") == nil {
		t.Fatal("forced VecCentroids trained no centroid table")
	}

	for _, q := range gen.Tables {
		got, err := pruned.Starmie.SearchTables(q, 5, 64, true)
		want, werr := plain.Starmie.SearchTables(q, 5, 64, true)
		if err != nil || werr != nil {
			t.Fatalf("starmie %s: errs %v / %v", q.ID, err, werr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("starmie tables %s:\npruned %+v\nplain  %+v", q.ID, got, want)
		}
	}

	// Exact column vsearch over every indexed vector as its own query:
	// the pruned scan must return the same hits in the same order.
	for _, key := range plain.Starmie.ColumnKeys() {
		v := plain.Starmie.VectorOf(key)
		got := pruned.Starmie.SearchColumns(v, 10, 0, true)
		want := plain.Starmie.SearchColumns(v, 10, 0, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vsearch %s:\npruned %+v\nplain  %+v", key, got, want)
		}
	}

	// Fuzzy matches must be identical; comparison counts may differ
	// either way (grouping by cluster reorders the early-exit scan),
	// but cluster skipping must actually engage somewhere.
	skips := 0
	for _, q := range gen.Tables[:5] {
		vals := q.Columns[0].Values
		got, gs := pruned.Fuzzy.Search(vals, 0.85, 0.5)
		want, _ := plain.Fuzzy.Search(vals, 0.85, 0.5)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fuzzy %s:\npruned %+v\nplain  %+v", q.ID, got, want)
		}
		skips += gs.ClusterSkips
	}
	if skips == 0 {
		t.Error("cluster pruning never skipped a slot group")
	}
}

// TestSnapshotLoadFileVecModes pins the file-loading matrix: the heap
// and mmap materializations of one snapshot must answer identically to
// the built system (nprobe = all), and "mmap"/"auto" must actually map
// on platforms that support it.
func TestSnapshotLoadFileVecModes(t *testing.T) {
	built, gen := vecLake(t, Options{VecCentroids: 96})
	path := filepath.Join(t.TempDir(), "sys.snap")
	if err := built.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, loaded *System) {
		t.Helper()
		if got, want := loaded.Vecs.BlobCRC(), built.Vecs.BlobCRC(); got != want {
			t.Fatalf("blob CRC %08x, want %08x", got, want)
		}
		if loaded.Vecs.Centroids("starmie") == nil {
			t.Fatal("centroid table lost in snapshot")
		}
		for _, q := range gen.Tables[:6] {
			got, err := loaded.Starmie.SearchTables(q, 5, 64, true)
			want, werr := built.Starmie.SearchTables(q, 5, 64, true)
			if err != nil || werr != nil {
				t.Fatalf("starmie %s: errs %v / %v", q.ID, err, werr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("starmie tables %s:\nloaded %+v\nbuilt  %+v", q.ID, got, want)
			}
			gotU, err := loaded.UnionableTables(q, 5)
			wantU, werr := built.UnionableTables(q, 5)
			if err != nil || werr != nil || !reflect.DeepEqual(gotU, wantU) {
				t.Fatalf("tus %s:\nloaded %+v (%v)\nbuilt  %+v (%v)", q.ID, gotU, err, wantU, werr)
			}
		}
		for _, key := range built.Starmie.ColumnKeys()[:20] {
			v := built.Starmie.VectorOf(key)
			if got, want := loaded.Starmie.SearchColumns(v, 10, 0, true), built.Starmie.SearchColumns(v, 10, 0, true); !reflect.DeepEqual(got, want) {
				t.Fatalf("vsearch %s:\nloaded %+v\nbuilt  %+v", key, got, want)
			}
		}
		vals := gen.Tables[0].Columns[0].Values
		gotF, _ := loaded.Fuzzy.Search(vals, 0.85, 0.5)
		wantF, _ := built.Fuzzy.Search(vals, 0.85, 0.5)
		if !reflect.DeepEqual(gotF, wantF) {
			t.Fatalf("fuzzy:\nloaded %+v\nbuilt  %+v", gotF, wantF)
		}
	}

	t.Run("heap", func(t *testing.T) {
		loaded, err := LoadFile(path, Options{VecMode: "heap"})
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Vecs.Mapped() {
			t.Error("VecMode heap produced a mapped store")
		}
		check(t, loaded)
	})
	t.Run("mmap", func(t *testing.T) {
		if !vecstore.MmapSupported() {
			if _, err := LoadFile(path, Options{VecMode: "mmap"}); err == nil {
				t.Fatal("VecMode mmap succeeded on an unsupported platform")
			}
			t.Skip("mmap unsupported on this platform")
		}
		loaded, err := LoadFile(path, Options{VecMode: "mmap"})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Vecs.Close()
		if !loaded.Vecs.Mapped() {
			t.Error("VecMode mmap produced an unmapped store")
		}
		check(t, loaded)
	})
	t.Run("auto", func(t *testing.T) {
		loaded, err := LoadFile(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Vecs.Close()
		if loaded.Vecs.Mapped() != vecstore.MmapSupported() {
			t.Errorf("auto mode: Mapped() = %v, MmapSupported() = %v", loaded.Vecs.Mapped(), vecstore.MmapSupported())
		}
		check(t, loaded)
	})
	t.Run("unknown mode", func(t *testing.T) {
		if _, err := LoadFile(path, Options{VecMode: "madvise"}); err == nil {
			t.Fatal("unknown VecMode accepted")
		}
	})
}

// TestModelSharesVecStoreRows pins the rebinding contract: after Build
// and after Load, the model's token vectors and the Starmie index's
// column vectors are the store's own rows (same backing array), not
// copies — that aliasing is what makes mmap sharing effective.
func TestModelSharesVecStoreRows(t *testing.T) {
	sys, _ := vecLake(t, Options{})
	mv, ok := sys.Vecs.View("model")
	if !ok {
		t.Fatal("no model segment")
	}
	toks := sys.Model.Tokens()
	if mv.Len() != len(toks) {
		t.Fatalf("model segment has %d rows, vocab %d", mv.Len(), len(toks))
	}
	for i, tok := range toks {
		row := mv.Vec(i)
		got := sys.Model.TokenVector(tok)
		if &got[0] != &row[0] {
			t.Fatalf("token %q vector is a copy, not a store row", tok)
		}
	}
	sv, ok := sys.Vecs.View("starmie")
	if !ok {
		t.Fatal("no starmie segment")
	}
	for i, key := range sys.Starmie.ColumnKeys() {
		row := sv.Vec(i)
		got := sys.Starmie.VectorOf(key)
		if &got[0] != &row[0] {
			t.Fatalf("column %q vector is a copy, not a store row", key)
		}
		if got.Norm() != sv.Norm(i) {
			t.Fatalf("column %q stored norm %v != computed %v", key, sv.Norm(i), got.Norm())
		}
	}
	// The stored norms must make the precomputed cosine bit-identical
	// to the from-scratch one.
	a := embedding.Vector(sv.Vec(0))
	b := embedding.Vector(sv.Vec(1))
	if got, want := embedding.CosineWithNorms(a, b, sv.Norm(0), sv.Norm(1)), embedding.Cosine(a, b); got != want {
		t.Fatalf("CosineWithNorms %v != Cosine %v", got, want)
	}
}
