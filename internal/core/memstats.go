// Memory observability for the dictionary-encoded indexes: MemStats
// walks the built System and reports, per index family, the resident
// bytes of the integer representation next to an estimate of the
// string-keyed structures it replaced. Rendered by `lakectl memstats`.
package core

import (
	"fmt"
	"strings"

	"tablehound/internal/dict"
)

// MemEntry is one line of the memory report.
type MemEntry struct {
	Name string
	// Sets is the number of encoded sets (columns, relationships, or
	// documents) the entry covers; 0 when not applicable.
	Sets int
	dict.Footprint
}

// Saved returns LegacyBytes - Bytes (negative when the encoded form is
// larger, e.g. for the dictionary itself, which has no legacy
// counterpart and is pure overhead repaid by the set entries).
func (e MemEntry) Saved() int64 { return e.LegacyBytes - e.Bytes }

// MemReport is the per-index memory accounting of a built System.
type MemReport struct {
	Entries []MemEntry
}

// Totals sums every entry.
func (r MemReport) Totals() MemEntry {
	t := MemEntry{Name: "total"}
	for _, e := range r.Entries {
		t.Sets += e.Sets
		t.Footprint.Accumulate(e.Footprint)
	}
	return t
}

// MemStats reports the resident footprint of the dictionary and of
// every index family encoded through it. Estimates use fixed per-entry
// overheads (string header 16 B, map entry 32 B), so numbers are
// comparable across runs rather than exact heap measurements.
func (s *System) MemStats() MemReport {
	var r MemReport
	add := func(name string, sets int, f dict.Footprint) {
		r.Entries = append(r.Entries, MemEntry{Name: name, Sets: sets, Footprint: f})
	}
	add("dict", 0, s.Dict.Footprint())
	if s.Join != nil {
		add("join-sets", s.Join.NumColumns(), s.Join.SetsFootprint())
	}
	if s.TUS != nil {
		add("tus-sets", s.TUS.NumTables(), s.TUS.SetsFootprint())
	}
	if s.Santos != nil {
		add("santos-dict", 0, s.Santos.PairDict().Footprint())
		add("santos-pairs", s.Santos.NumTables(), s.Santos.PairFootprint())
	}
	if s.Values != nil {
		terms, postings := s.Values.Stats()
		// Integer postings: 4 B term ID + 8 B tf per posting. Legacy
		// form: one map[string]float64 entry per posting (header +
		// value + bucket overhead; term bytes live in the vocabulary
		// either way).
		add("keyword-postings", s.Values.Len(), dict.Footprint{
			Count:       terms,
			Bytes:       int64(postings) * 12,
			LegacyBytes: int64(postings) * (16 + 8 + 32),
		})
	}
	if s.Vecs != nil {
		// The shared vector block. "Legacy" is what the pre-block form
		// cost: one heap slice per vector (24 B header) behind a map
		// entry (32 B), with no precomputed norms. Bytes is what is
		// actually heap-resident now — the full block when heap-loaded,
		// nothing when the block aliases mmap'd (file-backed, shared,
		// evictable) pages.
		blockBytes := s.Vecs.DataBytes() + s.Vecs.NormBytes()
		resident := blockBytes
		if s.Vecs.Mapped() {
			resident = 0
		}
		dim := int64(s.Vecs.Dim())
		add("vec-block", len(s.Vecs.Segments()), dict.Footprint{
			Count:       s.Vecs.Count(),
			Bytes:       resident,
			LegacyBytes: int64(s.Vecs.Count()) * (dim*4 + 24 + 32),
		})
		if cb := s.Vecs.CentroidBytes(); cb > 0 {
			// Pure overhead (like the dictionary), repaid in pruned
			// distance computations rather than bytes.
			add("vec-centroids", 0, dict.Footprint{Bytes: cb})
		}
	}
	if s.Fuzzy != nil {
		slots, refs := s.Fuzzy.VectorStats()
		// Vectors are float64s of the model dimension; sharing slots
		// across columns is the saving.
		dim := int64(s.Model.Dim())
		add("fuzzy-vectors", slots, dict.Footprint{
			Count:       refs,
			Bytes:       int64(slots)*dim*8 + int64(refs)*4,
			LegacyBytes: int64(refs) * dim * 8,
		})
	}
	return r
}

// Report renders the memory table.
func (r MemReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-16s %10s %10s %12s %12s %10s\n",
		"index", "sets", "entries", "bytes", "legacy", "saved")
	row := func(e MemEntry) {
		fmt.Fprintf(&b, "  %-16s %10d %10d %12s %12s %10s\n",
			e.Name, e.Sets, e.Count, humanBytes(e.Bytes), humanBytes(e.LegacyBytes), humanBytes(e.Saved()))
	}
	for _, e := range r.Entries {
		row(e)
	}
	row(r.Totals())
	return b.String()
}

func humanBytes(n int64) string {
	neg := ""
	if n < 0 {
		neg, n = "-", -n
	}
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%s%.1fGiB", neg, float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%s%.1fMiB", neg, float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%s%.1fKiB", neg, float64(n)/(1<<10))
	}
	return fmt.Sprintf("%s%dB", neg, n)
}
