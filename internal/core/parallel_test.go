package core

import (
	"reflect"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/union"
)

// buildAt builds the same seeded lake at a given parallelism level.
func buildAt(t *testing.T, parallelism int) (*System, *datagen.Lake) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{
		Seed:              97,
		NumDomains:        12,
		DomainSize:        60,
		NumTemplates:      5,
		TablesPerTemplate: 4,
	})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		t.Fatal(err)
	}
	sys, err := Build(cat, Options{KB: gen.BuildKB(0.8), Seed: 3, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// TestParallelBuildMatchesSequential is the pipeline's determinism
// contract: a Parallelism=8 build must answer every search surface
// identically to the Parallelism=1 (historical sequential) build.
func TestParallelBuildMatchesSequential(t *testing.T) {
	seq, gen := buildAt(t, 1)
	par, _ := buildAt(t, 8)

	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	gotK, err := par.KeywordSearch(topic, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantK, err := seq.KeywordSearch(topic, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK, wantK) {
		t.Errorf("keyword results differ:\npar %+v\nseq %+v", gotK, wantK)
	}

	qcol := gen.Tables[0].Columns[0]
	gotJ, err := par.JoinableColumns(qcol.Values, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantJ, err := seq.JoinableColumns(qcol.Values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotJ, wantJ) {
		t.Errorf("joinable results differ:\npar %+v\nseq %+v", gotJ, wantJ)
	}

	q := gen.Tables[0]
	gotU, err := par.UnionableTables(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := seq.UnionableTables(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotU, wantU) {
		t.Errorf("unionable results differ:\npar %+v\nseq %+v", gotU, wantU)
	}

	gotS, err := par.Starmie.SearchTables(q, 5, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	wantS, err := seq.Starmie.SearchTables(q, 5, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, wantS) {
		t.Errorf("starmie results differ:\npar %+v\nseq %+v", gotS, wantS)
	}

	gotF, _ := par.Fuzzy.Search(qcol.Values, 0.85, 0.5)
	wantF, _ := seq.Fuzzy.Search(qcol.Values, 0.85, 0.5)
	if !reflect.DeepEqual(gotF, wantF) {
		t.Errorf("fuzzy results differ:\npar %+v\nseq %+v", gotF, wantF)
	}

	gotSa, err := par.Santos.Search(q, 5, union.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	wantSa, err := seq.Santos.Search(q, 5, union.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSa, wantSa) {
		t.Errorf("santos results differ:\npar %+v\nseq %+v", gotSa, wantSa)
	}

	gotD, err := par.D3L.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := seq.D3L.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotD, wantD) {
		t.Errorf("d3l results differ:\npar %+v\nseq %+v", gotD, wantD)
	}

	val := gen.Tables[3].Columns[0].Values[0]
	gotV, err := par.ValueSearch(val, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := seq.ValueSearch(val, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotV, wantV) {
		t.Errorf("value-search results differ:\npar %+v\nseq %+v", gotV, wantV)
	}
}

func TestBuildStatsRecorded(t *testing.T) {
	sys, _ := buildAt(t, 4)
	bs := sys.BuildStats
	if bs == nil {
		t.Fatal("no BuildStats attached")
	}
	if bs.Parallelism != 4 {
		t.Errorf("Parallelism = %d", bs.Parallelism)
	}
	if bs.Total <= 0 {
		t.Error("Total not recorded")
	}
	if len(bs.Stages) != numStages {
		t.Fatalf("stages = %d, want %d", len(bs.Stages), numStages)
	}
	model, ok := bs.Stage("model")
	if !ok || model.Items == 0 || model.Wall <= 0 {
		t.Errorf("model stage not timed: %+v", model)
	}
	fuzzy, ok := bs.Stage("fuzzy")
	if !ok || fuzzy.Skipped || fuzzy.Items == 0 {
		t.Errorf("fuzzy stage not recorded: %+v", fuzzy)
	}
	if rep := bs.Report(); rep == "" {
		t.Error("empty report")
	}
}

func TestBuildStatsSkippedStages(t *testing.T) {
	gen := datagen.Generate(datagen.Config{Seed: 5, NumTemplates: 2, TablesPerTemplate: 2})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		t.Fatal(err)
	}
	sys, err := Build(cat, Options{SkipFuzzy: true, SkipGraph: true, SkipOrganization: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fuzzy", "graph", "org"} {
		st, ok := sys.BuildStats.Stage(name)
		if !ok || !st.Skipped {
			t.Errorf("stage %s not marked skipped: %+v", name, st)
		}
	}
}
