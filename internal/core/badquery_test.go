package core

import (
	"errors"
	"testing"

	"tablehound/internal/table"
	"tablehound/internal/union"
)

// TestBadQueriesReturnTypedError is the contract behind the serving
// layer's HTTP 400 mapping: every query surface reports an unusable
// query by wrapping table.ErrBadQuery instead of silently returning
// empty results.
func TestBadQueriesReturnTypedError(t *testing.T) {
	sys, _ := demoSystem(t)

	checks := []struct {
		name string
		run  func() error
	}{
		{"KeywordSearch empty", func() error { _, err := sys.KeywordSearch("", 5); return err }},
		{"KeywordSearch whitespace", func() error { _, err := sys.KeywordSearch("   \t\n", 5); return err }},
		{"ValueSearch empty", func() error { _, err := sys.ValueSearch(" ", 5); return err }},
		{"JoinableColumns nil", func() error { _, err := sys.JoinableColumns(nil, 5); return err }},
		{"JoinableColumns whitespace values", func() error {
			_, err := sys.JoinableColumns([]string{"", "  ", "\t"}, 5)
			return err
		}},
		{"ContainmentSearch empty", func() error { _, err := sys.ContainmentSearch(nil, 0.5, 5); return err }},
		{"UnionableTables no string columns", func() error {
			_, err := sys.UnionableTables(table.MustNew("q", "q", nil), 5)
			return err
		}},
		{"Santos unusable table", func() error {
			_, err := sys.Santos.Search(table.MustNew("q", "q", nil), 5, union.Hybrid)
			return err
		}},
		{"Starmie empty table", func() error {
			_, err := sys.Starmie.SearchTables(table.MustNew("q", "q", nil), 5, 64, false)
			return err
		}},
		{"D3L unusable table", func() error {
			_, err := sys.D3L.Search(table.MustNew("q", "q", nil), 5)
			return err
		}},
	}
	for _, c := range checks {
		err := c.run()
		if err == nil {
			t.Errorf("%s: want error wrapping table.ErrBadQuery, got nil", c.name)
			continue
		}
		if !errors.Is(err, table.ErrBadQuery) {
			t.Errorf("%s: err = %v, does not wrap table.ErrBadQuery", c.name, err)
		}
	}

	// Sane queries still work after the validation path.
	if _, err := sys.KeywordSearch("data", 5); err != nil {
		t.Errorf("valid keyword query failed: %v", err)
	}
}
