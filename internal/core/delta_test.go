package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/snap"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// assertSurfaceParity compares every search surface of got against
// want over a set of query tables. The parity contract is the delta
// subsystem's core promise: a system assembled from (base + deltas)
// answers bit-identically to one built from scratch over the merged
// catalog with the same frozen embedding model.
func assertSurfaceParity(t *testing.T, label string, got, want *System, gen *datagen.Lake, queryTables []*table.Table) {
	t.Helper()
	check := func(surface string, g, w any, gerr, werr error) {
		t.Helper()
		if gerr != nil || werr != nil {
			t.Fatalf("%s/%s: got err %v, want err %v", label, surface, gerr, werr)
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s/%s results differ:\ngot  %+v\nwant %+v", label, surface, g, w)
		}
	}

	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	gk, ge := got.KeywordSearch(topic, 10)
	wk, we := want.KeywordSearch(topic, 10)
	check("keyword", gk, wk, ge, we)

	for i, q := range queryTables {
		qcol := q.Columns[0]
		tag := fmt.Sprintf("%s-q%d", q.ID, i)

		gv, ge := got.ValueSearch(qcol.Values[0], 10)
		wv, we := want.ValueSearch(qcol.Values[0], 10)
		check("value-"+tag, gv, wv, ge, we)

		gj, ge := got.JoinableColumns(qcol.Values, 10)
		wj, we := want.JoinableColumns(qcol.Values, 10)
		check("join-overlap-"+tag, gj, wj, ge, we)

		gc, ge := got.ContainmentSearch(qcol.Values, 0.5, 10)
		wc, we := want.ContainmentSearch(qcol.Values, 0.5, 10)
		check("join-containment-"+tag, gc, wc, ge, we)

		// Queries mixing indexed values with dictionary-OOV strings:
		// the extended dictionary must treat unseen values exactly as a
		// from-scratch dictionary does.
		oov := append([]string{"zzz-delta-oov-1", "zzz-delta-oov-2"}, qcol.Values[:min(4, len(qcol.Values))]...)
		goov, ge := got.JoinableColumns(oov, 10)
		woov, we := want.JoinableColumns(oov, 10)
		check("join-oov-"+tag, goov, woov, ge, we)

		gu, ge := got.UnionableTables(q, 10)
		wu, we := want.UnionableTables(q, 10)
		check("tus-union-"+tag, gu, wu, ge, we)

		gsa, ge := got.Santos.Search(q, 5, union.Hybrid)
		wsa, we := want.Santos.Search(q, 5, union.Hybrid)
		check("santos-"+tag, gsa, wsa, ge, we)

		gd, ge := got.D3L.Search(q, 5)
		wd, we := want.D3L.Search(q, 5)
		check("d3l-"+tag, gd, wd, ge, we)

		gs, ge := got.Starmie.SearchTables(q, 5, 64, false)
		ws, we := want.Starmie.SearchTables(q, 5, 64, false)
		check("starmie-"+tag, gs, ws, ge, we)

		gf, _ := got.Fuzzy.Search(qcol.Values, 0.85, 0.5)
		wf, _ := want.Fuzzy.Search(qcol.Values, 0.85, 0.5)
		check("fuzzy-"+tag, gf, wf, nil, nil)
	}

	glab, gid, ge := got.Navigate(topic)
	wlab, wid, we := want.Navigate(topic)
	check("navigate-labels", glab, wlab, ge, we)
	check("navigate-table", gid, wid, nil, nil)

	wantTables := want.Catalog.Tables()
	from, to := wantTables[0].ID, wantTables[len(wantTables)-1].ID
	check("joinpath", got.JoinPath(from, to, 3), want.JoinPath(from, to, 3), nil, nil)

	gm := got.MatchSchemas(queryTables[0], queryTables[len(queryTables)-1], 0.5)
	wm := want.MatchSchemas(queryTables[0], queryTables[len(queryTables)-1], 0.5)
	check("match-schemas", gm, wm, nil, nil)
}

// TestDeltaMergeParity drives a sequence of add/remove deltas over a
// base snapshot — including a removed-then-re-added table ID and a
// remove+add replace within one delta — and checks that the merged
// system, the compacted system, and a reload of the compacted base all
// answer every surface bit-identically to a from-scratch build over
// the surviving tables (with the base's frozen model pinned, since
// deltas never retrain).
func TestDeltaMergeParity(t *testing.T) {
	gen := datagen.Generate(datagen.Config{Seed: 11, NumTemplates: 4, TablesPerTemplate: 4})
	all := append([]*table.Table(nil), gen.Tables...)
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if len(all) < 14 {
		t.Fatalf("datagen produced %d tables, need >= 14", len(all))
	}
	curated := gen.BuildKB(0.8)
	baseTables, pool := all[:10], all[10:]

	cat := lake.NewCatalog()
	if err := cat.AddBatch(baseTables); err != nil {
		t.Fatal(err)
	}
	base, err := Build(cat, Options{KB: curated, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.snap")
	if err := base.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}

	live := make(map[string]*table.Table, len(baseTables))
	for _, tb := range baseTables {
		live[tb.ID] = tb
	}
	var deltaPaths []string
	writeDelta := func(add []*table.Table, remove []string) {
		t.Helper()
		d, err := BuildDelta(basePath, deltaPaths, add, remove, Options{})
		if err != nil {
			t.Fatalf("BuildDelta: %v", err)
		}
		p := filepath.Join(dir, fmt.Sprintf("delta%d.thdb", len(deltaPaths)))
		if err := d.SaveFile(p); err != nil {
			t.Fatalf("SaveFile: %v", err)
		}
		deltaPaths = append(deltaPaths, p)
		for _, id := range remove {
			delete(live, id)
		}
		for _, tb := range add {
			live[tb.ID] = tb
		}
	}

	// Round 1: pure addition. Round 2: pure removal of one randomly
	// chosen base table plus one just-added table. Round 3: re-add the
	// removed base table (removed-then-re-added ID), replace pool[0]
	// in a single delta (tombstone + re-add), and add the remainder.
	rng := rand.New(rand.NewSource(42))
	victim := baseTables[rng.Intn(len(baseTables))]
	writeDelta(pool[:3], nil)
	writeDelta(nil, []string{victim.ID, pool[1].ID})
	writeDelta(append([]*table.Table{victim, pool[0]}, pool[3:]...), []string{pool[0].ID})

	merged, err := LoadChainFiles(basePath, deltaPaths, Options{})
	if err != nil {
		t.Fatalf("LoadChainFiles: %v", err)
	}

	finalIDs := sortedKeys(live)
	ordered := make([]*table.Table, len(finalIDs))
	for i, id := range finalIDs {
		ordered[i] = live[id]
	}
	fcat := lake.NewCatalog()
	if err := fcat.AddBatch(ordered); err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(fcat, Options{KB: curated, Seed: 3, Model: base.Model})
	if err != nil {
		t.Fatal(err)
	}

	var stableBase *table.Table
	for _, tb := range baseTables {
		if tb.ID != victim.ID {
			stableBase = tb
			break
		}
	}
	queryTables := []*table.Table{stableBase, victim, pool[0], pool[2]}
	assertSurfaceParity(t, "merged-vs-fresh", merged, fresh, gen, queryTables)

	if merged.Lineage == nil || merged.Lineage.Depth() != 3 {
		t.Fatalf("merged lineage = %+v, want depth 3", merged.Lineage)
	}
	finalHashes := make([]uint64, len(finalIDs))
	for i, id := range finalIDs {
		finalHashes[i] = live[id].ContentHash()
	}
	if want := snap.HashTables(finalIDs, finalHashes); merged.Lineage.Gen != want {
		t.Errorf("merged generation %016x, want %016x", merged.Lineage.Gen, want)
	}
	if !reflect.DeepEqual(merged.Lineage.TableIDs, finalIDs) {
		t.Errorf("merged table IDs %v, want %v", merged.Lineage.TableIDs, finalIDs)
	}
	if merged.Lineage.TombstoneCount() != 3 {
		t.Errorf("tombstone count = %d, want 3", merged.Lineage.TombstoneCount())
	}
	if merged.Catalog.Table(pool[1].ID) != nil {
		t.Errorf("removed table %q still in merged catalog", pool[1].ID)
	}

	// Compaction folds the chain into a new base: same answers, same
	// generation, zero depth — and new deltas chain onto it.
	outPath := filepath.Join(dir, "compacted.snap")
	csys, err := CompactFiles(basePath, deltaPaths, outPath, Options{})
	if err != nil {
		t.Fatalf("CompactFiles: %v", err)
	}
	if csys.Lineage.Depth() != 0 || csys.Lineage.Gen != merged.Lineage.Gen {
		t.Errorf("compacted lineage = %+v, want depth 0 at gen %016x", csys.Lineage, merged.Lineage.Gen)
	}
	assertSurfaceParity(t, "compacted-vs-fresh", csys, fresh, gen, queryTables)

	reloaded, err := LoadFile(outPath, Options{})
	if err != nil {
		t.Fatalf("LoadFile(compacted): %v", err)
	}
	if reloaded.Lineage.Gen != merged.Lineage.Gen {
		t.Errorf("reloaded compacted gen %016x, want %016x", reloaded.Lineage.Gen, merged.Lineage.Gen)
	}
	assertSurfaceParity(t, "reloaded-compacted-vs-fresh", reloaded, fresh, gen, queryTables)

	d4, err := BuildDelta(outPath, nil, nil, []string{pool[2].ID}, Options{})
	if err != nil {
		t.Fatalf("BuildDelta onto compacted base: %v", err)
	}
	p4 := filepath.Join(dir, "delta4.thdb")
	if err := d4.SaveFile(p4); err != nil {
		t.Fatal(err)
	}
	after, err := LoadChainFiles(outPath, []string{p4}, Options{})
	if err != nil {
		t.Fatalf("LoadChainFiles onto compacted base: %v", err)
	}
	if after.Catalog.Table(pool[2].ID) != nil {
		t.Errorf("table %q survives its tombstone on the compacted chain", pool[2].ID)
	}
	if after.Catalog.Len() != len(finalIDs)-1 {
		t.Errorf("post-compaction chain has %d tables, want %d", after.Catalog.Len(), len(finalIDs)-1)
	}
}

// deltaFixture builds a tiny base snapshot plus one valid delta and
// returns their paths along with the delta and the table it added.
func deltaFixture(t *testing.T) (basePath, deltaPath string, d *Delta, added *table.Table) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{Seed: 5, NumTemplates: 2, TablesPerTemplate: 2})
	all := append([]*table.Table(nil), gen.Tables...)
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	cat := lake.NewCatalog()
	if err := cat.AddBatch(all[:len(all)-1]); err != nil {
		t.Fatal(err)
	}
	base, err := Build(cat, Options{KB: gen.BuildKB(0.8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	basePath = filepath.Join(dir, "base.snap")
	if err := base.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}
	added = all[len(all)-1]
	d, err = BuildDelta(basePath, nil, []*table.Table{added}, nil, Options{})
	if err != nil {
		t.Fatalf("BuildDelta: %v", err)
	}
	deltaPath = filepath.Join(dir, "delta0.thdb")
	if err := d.SaveFile(deltaPath); err != nil {
		t.Fatal(err)
	}
	return basePath, deltaPath, d, added
}

// TestDeltaChainValidation pins the typed chain errors: a delta whose
// links do not match the lake it is applied to is rejected with
// ErrDeltaChain (never silently merged, never reported as corruption).
func TestDeltaChainValidation(t *testing.T) {
	basePath, deltaPath, d, added := deltaFixture(t)
	dir := filepath.Dir(deltaPath)

	saveVariant := func(name string, mutate func(*Delta)) string {
		t.Helper()
		v := *d
		mutate(&v)
		p := filepath.Join(dir, name)
		if err := v.SaveFile(p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("wrong parent generation", func(t *testing.T) {
		p := saveVariant("parent.thdb", func(v *Delta) { v.ParentGen ^= 1 })
		if _, err := LoadChainFiles(basePath, []string{p}, Options{}); !errors.Is(err, ErrDeltaChain) {
			t.Errorf("err = %v, want ErrDeltaChain", err)
		}
	})
	t.Run("wrong result generation", func(t *testing.T) {
		p := saveVariant("result.thdb", func(v *Delta) { v.ResultGen ^= 1 })
		if _, err := LoadChainFiles(basePath, []string{p}, Options{}); !errors.Is(err, ErrDeltaChain) {
			t.Errorf("err = %v, want ErrDeltaChain", err)
		}
	})
	t.Run("dictionary size mismatch", func(t *testing.T) {
		p := saveVariant("dict.thdb", func(v *Delta) { v.BaseDictSize++ })
		if _, err := LoadChainFiles(basePath, []string{p}, Options{}); !errors.Is(err, ErrDeltaChain) {
			t.Errorf("err = %v, want ErrDeltaChain", err)
		}
	})
	t.Run("same delta applied twice", func(t *testing.T) {
		if _, err := LoadChainFiles(basePath, []string{deltaPath, deltaPath}, Options{}); !errors.Is(err, ErrDeltaChain) {
			t.Errorf("err = %v, want ErrDeltaChain", err)
		}
	})
	t.Run("remove of absent table", func(t *testing.T) {
		if _, err := BuildDelta(basePath, nil, nil, []string{"no-such-table"}, Options{}); err == nil {
			t.Error("BuildDelta removing an absent table succeeded")
		}
	})
	t.Run("add of duplicate table", func(t *testing.T) {
		if _, err := BuildDelta(basePath, []string{deltaPath}, []*table.Table{added}, nil, Options{}); err == nil {
			t.Error("BuildDelta re-adding a live table without removal succeeded")
		}
	})
	t.Run("empty delta", func(t *testing.T) {
		if _, err := BuildDelta(basePath, nil, nil, nil, Options{}); err == nil {
			t.Error("BuildDelta with nothing to do succeeded")
		}
	})
}

// TestDeltaRejectsCorruption extends the corruption sweep to the delta
// format: truncation at every prefix and a flipped byte at every
// offset must surface ErrCorruptSnapshot (the version field, bytes
// 4..5, surfaces ErrVersionMismatch instead) — never a panic or a
// silent success.
func TestDeltaRejectsCorruption(t *testing.T) {
	_, deltaPath, _, _ := deltaFixture(t)
	good, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDelta(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine delta fails to load: %v", err)
	}

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(good); n += 97 {
			if _, err := LoadDelta(bytes.NewReader(good[:n])); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("truncated to %d bytes: err = %v, want ErrCorruptSnapshot", n, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, good...), 0xFF)
		if _, err := LoadDelta(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("err = %v, want ErrCorruptSnapshot", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 0xEE
		if _, err := LoadDelta(bytes.NewReader(bad)); !errors.Is(err, ErrVersionMismatch) {
			t.Errorf("err = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		bad := make([]byte, len(good))
		for off := 0; off < len(good); off += 101 {
			if off == 4 || off == 5 {
				continue // version bytes: ErrVersionMismatch, pinned above
			}
			copy(bad, good)
			bad[off] ^= 0x40
			if _, err := LoadDelta(bytes.NewReader(bad)); err == nil {
				t.Fatalf("flipped byte at %d: LoadDelta succeeded", off)
			} else if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("flipped byte at %d: err = %v, want ErrCorruptSnapshot", off, err)
			}
		}
	})
}

// mutateTable returns a deep copy of src with one value changed — same
// ID, same shape, different content.
func mutateTable(t *testing.T, src *table.Table) *table.Table {
	t.Helper()
	cols := make([]*table.Column, len(src.Columns))
	for i, c := range src.Columns {
		cols[i] = &table.Column{Name: c.Name, Type: c.Type, Values: append([]string(nil), c.Values...)}
	}
	cols[0].Values[0] += "-mutated"
	nt, err := table.New(src.ID, src.Name, cols)
	if err != nil {
		t.Fatal(err)
	}
	nt.Description = src.Description
	nt.Tags = src.Tags
	return nt
}

// TestReplaceDeltaChangesGeneration pins the content-folded generation
// contract: a replace delta (remove + add under the same table ID with
// different contents) must change the generation, because the serving
// tier keys its query cache on it — a membership-only hash would let a
// replace serve stale cached results. Re-adding bit-identical content
// is the one case where the generation may revert: the data really is
// equivalent, so surviving cache entries are still correct.
func TestReplaceDeltaChangesGeneration(t *testing.T) {
	gen := datagen.Generate(datagen.Config{Seed: 9, NumTemplates: 2, TablesPerTemplate: 2})
	all := append([]*table.Table(nil), gen.Tables...)
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	cat := lake.NewCatalog()
	if err := cat.AddBatch(all); err != nil {
		t.Fatal(err)
	}
	base, err := Build(cat, Options{KB: gen.BuildKB(0.8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.snap")
	if err := base.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}
	baseGen := base.Generation()
	victim := all[0]
	mut := mutateTable(t, victim)

	// Replace with different content: new generation.
	repl, err := BuildDelta(basePath, nil, []*table.Table{mut}, []string{victim.ID}, Options{})
	if err != nil {
		t.Fatalf("BuildDelta(replace): %v", err)
	}
	if repl.ParentGen != baseGen {
		t.Fatalf("replace delta ParentGen %016x, want base %016x", repl.ParentGen, baseGen)
	}
	if repl.ResultGen == baseGen {
		t.Fatal("replacing a table's contents left the generation unchanged; the serving cache would keep stale results")
	}
	rp := filepath.Join(dir, "replace.thdb")
	if err := repl.SaveFile(rp); err != nil {
		t.Fatal(err)
	}
	merged, err := LoadChainFiles(basePath, []string{rp}, Options{})
	if err != nil {
		t.Fatalf("LoadChainFiles(replace): %v", err)
	}
	if merged.Generation() == baseGen {
		t.Fatal("merged replace system reports the base generation")
	}

	// Replace with identical content: generation reverts (equivalent
	// data), by design.
	same, err := BuildDelta(basePath, nil, []*table.Table{victim}, []string{victim.ID}, Options{})
	if err != nil {
		t.Fatalf("BuildDelta(identical replace): %v", err)
	}
	if same.ResultGen != baseGen {
		t.Errorf("identical replace changed the generation: %016x != %016x", same.ResultGen, baseGen)
	}

	// Remove then re-add with different content across two deltas: the
	// final generation must not revert to the base's.
	d1, err := BuildDelta(basePath, nil, nil, []string{victim.ID}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(dir, "remove.thdb")
	if err := d1.SaveFile(p1); err != nil {
		t.Fatal(err)
	}
	d2, err := BuildDelta(basePath, []string{p1}, []*table.Table{mut}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResultGen == baseGen {
		t.Fatal("remove-then-re-add with different content reverted to the base generation")
	}
	// ... while re-adding the original bytes does revert.
	d2same, err := BuildDelta(basePath, []string{p1}, []*table.Table{victim}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2same.ResultGen != baseGen {
		t.Errorf("re-adding identical content did not revert the generation: %016x != %016x", d2same.ResultGen, baseGen)
	}
}

// TestLoadChainSkipsFoldedDeltas pins crash-safe compaction
// retirement: a compaction interrupted (or whose retirement renames
// failed) between installing the folded base and renaming the consumed
// delta files leaves deltas on disk that are already inside the base.
// Loaders must skip that folded prefix — reporting it via
// Lineage.Folded — instead of failing with ErrDeltaChain and stranding
// the daemon until manual cleanup.
func TestLoadChainSkipsFoldedDeltas(t *testing.T) {
	basePath, deltaPath, _, added := deltaFixture(t)
	dir := filepath.Dir(deltaPath)

	// Fold the chain into the base in place, as the daemon compactor
	// does — but "crash" before retiring the delta file.
	compacted, err := CompactFiles(basePath, []string{deltaPath}, basePath, Options{})
	if err != nil {
		t.Fatalf("CompactFiles: %v", err)
	}

	// The stale delta still in the spec must be skipped, not fatal.
	sys, err := LoadChainFiles(basePath, []string{deltaPath}, Options{})
	if err != nil {
		t.Fatalf("LoadChainFiles over a folded delta: %v", err)
	}
	if sys.Lineage.Depth() != 0 {
		t.Errorf("depth = %d, want 0 (delta already folded)", sys.Lineage.Depth())
	}
	if len(sys.Lineage.Folded) != 1 || sys.Lineage.Folded[0] != deltaPath {
		t.Errorf("Lineage.Folded = %v, want [%s]", sys.Lineage.Folded, deltaPath)
	}
	if sys.Generation() != compacted.Generation() {
		t.Errorf("generation %016x, want compacted %016x", sys.Generation(), compacted.Generation())
	}
	if sys.Catalog.Table(added.ID) == nil {
		t.Errorf("folded table %q missing from the catalog", added.ID)
	}

	// BuildDelta over the same stale spec must chain onto the folded
	// base, so `lakectl add` keeps working after the interrupted
	// compaction.
	d2, err := BuildDelta(basePath, []string{deltaPath}, nil, []string{added.ID}, Options{})
	if err != nil {
		t.Fatalf("BuildDelta over a folded delta: %v", err)
	}
	if d2.ParentGen != compacted.Generation() {
		t.Errorf("new delta ParentGen %016x, want folded base %016x", d2.ParentGen, compacted.Generation())
	}
	p2 := filepath.Join(dir, "d2.thdb")
	if err := d2.SaveFile(p2); err != nil {
		t.Fatal(err)
	}

	// Partial prefix: the stale folded delta followed by a live one —
	// skip the first, apply the second.
	sys2, err := LoadChainFiles(basePath, []string{deltaPath, p2}, Options{})
	if err != nil {
		t.Fatalf("LoadChainFiles(folded + live): %v", err)
	}
	if sys2.Lineage.Depth() != 1 || len(sys2.Lineage.Folded) != 1 {
		t.Errorf("depth = %d, folded = %v, want 1 and one folded path", sys2.Lineage.Depth(), sys2.Lineage.Folded)
	}
	if sys2.Catalog.Table(added.ID) != nil {
		t.Errorf("table %q survives its tombstone after the folded prefix", added.ID)
	}

	// A genuinely mismatched delta must still fail: folded-prefix
	// skipping only accepts chains that end exactly at the base's
	// generation.
	bad, err := LoadDeltaFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	bad.ParentGen ^= 1
	bad.ResultGen ^= 1
	bp := filepath.Join(dir, "bad.thdb")
	if err := bad.SaveFile(bp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChainFiles(basePath, []string{bp}, Options{}); !errors.Is(err, ErrDeltaChain) {
		t.Errorf("mismatched delta: err = %v, want ErrDeltaChain", err)
	}
}
