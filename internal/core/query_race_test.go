package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tablehound/internal/table"
	"tablehound/internal/union"
)

// queryInputs derives a representative query workload from a built
// system: a mid-catalog table plus its widest string column.
func queryInputs(t *testing.T, sys *System) (tableID string, colValues []string) {
	t.Helper()
	tbls := sys.Catalog.Tables()
	q := tbls[len(tbls)/2]
	for _, c := range q.Columns {
		if c.Type == table.TypeString && len(c.Values) > len(colValues) {
			colValues = c.Values
		}
	}
	if len(colValues) == 0 {
		colValues = q.Columns[0].Values
	}
	return q.ID, colValues
}

// TestConcurrentQueriesAllSurfaces exercises every System read surface
// from many goroutines against one shared build. Run under -race
// (make race) this is the proof behind the query-path concurrency
// contract documented in core.go and DESIGN.md.
func TestConcurrentQueriesAllSurfaces(t *testing.T) {
	sys, gen := demoSystem(t)
	qid, vals := queryInputs(t, sys)
	query := sys.Catalog.Table(qid)
	kw := gen.Tables[0].Name
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := sys.KeywordSearch(kw, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.ValueSearch(vals[0], 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.JoinableColumns(vals, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.ContainmentSearch(vals, 0.5, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.UnionableTables(query, 5); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.Santos.Search(query, 5, union.Hybrid); err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.Starmie.SearchTables(query, 5, 0, false); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := sys.Navigate(kw); err != nil {
					// Navigate can legitimately miss a topic; only hard
					// failures on the shared structures matter here.
					_ = err
				}
				if sys.Fuzzy != nil {
					sys.Fuzzy.Search(vals[:min(len(vals), 20)], 0.9, 0.5)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSystemQueryParallelismParity flips the query-parallelism knobs
// on one built system and checks that every surface returns results
// bit-identical to its sequential scan.
func TestSystemQueryParallelismParity(t *testing.T) {
	sys, _ := demoSystem(t)
	qid, vals := queryInputs(t, sys)
	query := sys.Catalog.Table(qid)
	setWorkers := func(n int) {
		sys.TUS.QueryParallelism = n
		sys.Santos.QueryParallelism = n
		sys.Join.QueryParallelism = n
		if sys.Fuzzy != nil {
			sys.Fuzzy.QueryParallelism = n
		}
	}
	type result struct {
		name string
		val  interface{}
	}
	snapshot := func() []result {
		tusRes, err := sys.UnionableTables(query, 5)
		if err != nil {
			t.Fatal(err)
		}
		santosRes, err := sys.Santos.Search(query, 5, union.Hybrid)
		if err != nil {
			t.Fatal(err)
		}
		contRes, err := sys.ContainmentSearch(vals, 0.5, 5)
		if err != nil {
			t.Fatal(err)
		}
		kwRes, err := sys.KeywordSearch("data", 5)
		if err != nil {
			t.Fatal(err)
		}
		out := []result{
			{"UnionableTables", tusRes},
			{"Santos", santosRes},
			{"Containment", contRes},
			{"Jaccard", sys.Join.JaccardSearch(vals, 0.05)},
			{"Keyword", kwRes},
		}
		if sys.Fuzzy != nil {
			fr, fs := sys.Fuzzy.Search(vals[:min(len(vals), 20)], 0.9, 0.3)
			out = append(out, result{"Fuzzy", fmt.Sprintf("%+v %+v", fr, fs)})
		}
		return out
	}
	setWorkers(1)
	want := snapshot()
	for _, n := range []int{2, 8} {
		setWorkers(n)
		got := snapshot()
		for i := range got {
			if !reflect.DeepEqual(got[i].val, want[i].val) {
				t.Errorf("workers=%d surface %s differs\ngot  %+v\nwant %+v",
					n, got[i].name, got[i].val, want[i].val)
			}
		}
	}
}
