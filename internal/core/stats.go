// Catalog statistics for the discover planner's cost model: per-table
// shape distributions and document frequencies of column names and
// inferred types, computed once at build time and persisted in the
// snapshot. The planner estimates each prefilter's selectivity from
// this block (plus the postings lengths already stored in the keyword
// and join indexes) without touching table contents at query time.
package core

import (
	"sort"

	"tablehound/internal/snap"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// CatalogStats summarizes the catalog for selectivity estimation.
// All counts are exact (the catalog is frozen at build time), so
// estimates over a single predicate factor are exact too; only the
// independence assumption across ANDed factors is approximate.
type CatalogStats struct {
	// Tables is the table count N.
	Tables int
	// Columns is the total column count across the lake.
	Columns int
	// Rows and Cols hold one entry per table — row and column counts —
	// sorted ascending, so range predicates answer by binary search.
	Rows []int
	Cols []int
	// ColNames maps each normalized column name to the number of
	// tables with at least one column of that name (the same
	// normalization the meta prefilter matches with).
	ColNames map[string]int
	// Types maps each inferred column type to the number of tables
	// with at least one column of that type.
	Types map[table.Type]int
}

// BuildCatalogStats computes the stats block over a table set.
func BuildCatalogStats(tables []*table.Table) *CatalogStats {
	cs := &CatalogStats{
		Tables:   len(tables),
		Rows:     make([]int, 0, len(tables)),
		Cols:     make([]int, 0, len(tables)),
		ColNames: make(map[string]int),
		Types:    make(map[table.Type]int),
	}
	for _, t := range tables {
		cs.Columns += t.NumCols()
		cs.Rows = append(cs.Rows, t.NumRows())
		cs.Cols = append(cs.Cols, t.NumCols())
		names := make(map[string]bool, t.NumCols())
		types := make(map[table.Type]bool)
		for _, c := range t.Columns {
			names[tokenize.Normalize(c.Name)] = true
			types[c.Type] = true
		}
		for n := range names {
			cs.ColNames[n]++
		}
		for ty := range types {
			cs.Types[ty]++
		}
	}
	sort.Ints(cs.Rows)
	sort.Ints(cs.Cols)
	return cs
}

// countRange counts entries of a sorted slice inside [min, max];
// min <= 0 means unbounded below, max <= 0 unbounded above.
func countRange(sorted []int, min, max int) int {
	lo := 0
	if min > 0 {
		lo = sort.SearchInts(sorted, min)
	}
	hi := len(sorted)
	if max > 0 {
		hi = sort.SearchInts(sorted, max+1)
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// CountRows returns how many tables have a row count in [min, max]
// (0 bounds mean unconstrained, matching the predicate convention).
func (cs *CatalogStats) CountRows(min, max int) int { return countRange(cs.Rows, min, max) }

// CountCols returns how many tables have a column count in [min, max].
func (cs *CatalogStats) CountCols(min, max int) int { return countRange(cs.Cols, min, max) }

// CountColName returns how many tables have a column whose normalized
// name matches the given raw name.
func (cs *CatalogStats) CountColName(name string) int {
	return cs.ColNames[tokenize.Normalize(name)]
}

// CountType returns how many tables have at least one column of the
// inferred type.
func (cs *CatalogStats) CountType(t table.Type) int { return cs.Types[t] }

// AppendSnapshot serializes the stats block. Map entries are written
// in sorted key order, so encoding is deterministic.
func (cs *CatalogStats) AppendSnapshot(e *snap.Encoder) {
	e.U64(uint64(cs.Tables))
	e.U64(uint64(cs.Columns))
	e.U64s(toU64s(cs.Rows))
	e.U64s(toU64s(cs.Cols))
	names := make([]string, 0, len(cs.ColNames))
	for n := range cs.ColNames {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.Str(n)
		e.U64(uint64(cs.ColNames[n]))
	}
	types := make([]int, 0, len(cs.Types))
	for ty := range cs.Types {
		types = append(types, int(ty))
	}
	sort.Ints(types)
	e.U32(uint32(len(types)))
	for _, ty := range types {
		e.U8(uint8(ty))
		e.U64(uint64(cs.Types[table.Type(ty)]))
	}
}

// DecodeCatalogStatsSnapshot reconstructs a stats block written by
// AppendSnapshot.
func DecodeCatalogStatsSnapshot(d *snap.Decoder) (*CatalogStats, error) {
	cs := &CatalogStats{
		Tables:   int(d.U64()),
		Columns:  int(d.U64()),
		Rows:     toInts(d.U64s()),
		Cols:     toInts(d.U64s()),
		ColNames: make(map[string]int),
		Types:    make(map[table.Type]int),
	}
	for i, n := 0, int(d.U32()); i < n && d.Err() == nil; i++ {
		name := d.Str()
		cs.ColNames[name] = int(d.U64())
	}
	for i, n := 0, int(d.U32()); i < n && d.Err() == nil; i++ {
		ty := table.Type(d.U8())
		cs.Types[ty] = int(d.U64())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	// The range accessors binary-search, so re-establish sortedness
	// rather than trusting the stream.
	sort.Ints(cs.Rows)
	sort.Ints(cs.Cols)
	return cs, nil
}

func toU64s(vs []int) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = uint64(v)
	}
	return out
}

func toInts(vs []uint64) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}
