// Incremental index maintenance: delta snapshots layer table
// additions and removals over an immutable base snapshot without
// rebuilding it.
//
// A delta is built by analyzing ONLY the new tables: their values
// extend the base dictionary append-only (dict.Extend — every base ID
// keeps its meaning, so base postings and signatures stay valid
// verbatim), and scratch engines over just those tables produce the
// new postings, MinHash signatures, and column vectors, encoded
// against the frozen base embedding model (training is globally
// corpus-coupled; retraining would invalidate every base vector).
// Removals are tombstones: the base bytes are untouched and the ID is
// masked at merge. Deltas chain by generation hash — each records the
// generation it applies to (ParentGen) and the generation that results
// (ResultGen = snap.HashTables over the sorted surviving table IDs and
// their content hashes) — so a stale or misordered delta is rejected
// with ErrDeltaChain, not silently merged. Folding content hashes into
// the generation means a replace (remove + add under the same ID with
// different bytes) produces a NEW generation: the serving tier keys
// its query cache on the generation, so membership-only hashing would
// let a replace serve stale cached results.
//
// Loading a chain (LoadChain*) materializes the merge: base and delta
// parts are folded per search surface through each engine's FromParts
// constructor, which replays the engine's own Build freeze, so the
// merged system answers every surface bit-identically to a
// from-scratch build over the merged catalog (with tables in sorted-ID
// order — the order lake.LoadCSVDir produces). Compaction
// (CompactFiles) is just LoadChain + Save: the fold becomes the next
// base and the chain resets.
package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tablehound/internal/apps"
	"tablehound/internal/aurum"
	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/join"
	"tablehound/internal/kb"
	"tablehound/internal/lake"
	"tablehound/internal/navigation"
	"tablehound/internal/parallel"
	"tablehound/internal/profile"
	"tablehound/internal/snap"
	"tablehound/internal/starmie"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/union"
	"tablehound/internal/vecstore"
)

// ErrDeltaChain marks a structurally sound delta that does not chain
// onto the state it is being applied to: wrong parent generation,
// dictionary size mismatch, a tombstone for an absent table, a re-add
// without a tombstone, or a result generation that does not hash the
// surviving membership. Distinct from ErrCorruptSnapshot (damaged
// bytes) — a chain error means the files are fine but mismatched.
var ErrDeltaChain = errors.New("core: delta chain mismatch")

// Lineage records where a system's table membership came from: the
// base snapshot's generation, the delta chain applied on top, and the
// resulting generation. The serving tier keys caches on Gen and
// reports Depth on health checks.
type Lineage struct {
	// BaseGen is the generation of the base snapshot — the generation
	// the last compaction produced (or the initial full build).
	BaseGen uint64
	// Gen is the generation after applying Deltas; equal to BaseGen
	// when the chain is empty.
	Gen uint64
	// TableIDs is the sorted live table-ID list at Gen, and
	// TableHashes the aligned per-table content hashes Gen folds in.
	TableIDs    []string
	TableHashes []uint64
	// Deltas describes the applied chain in order; empty for a system
	// loaded directly from a base snapshot or freshly built.
	Deltas []DeltaInfo
	// Folded lists delta files that were presented to the loader but
	// skipped because they are already folded into the base — the
	// residue of a compaction that crashed (or whose retirement rename
	// failed) between installing the new base and retiring its
	// consumed deltas. They are safe to retire or delete.
	Folded []string
}

// DeltaInfo is the footprint of one applied delta.
type DeltaInfo struct {
	Path       string
	Gen        uint64 // generation after this delta (its ResultGen)
	Tables     int    // tables added
	Tombstones int    // tables removed
	Bytes      int64  // on-disk size
}

// Generation returns the system's lake-content generation: the
// lineage generation when known (loaded or delta-merged systems), else
// the hash of the catalog's sorted (table ID, content hash) pairs
// (fresh in-memory builds). Two systems with the same generation hold
// the same live tables with the same contents and — by the delta
// parity invariant — answer every query bit-identically, which is what
// lets the serving tier keep its query cache across swaps that do not
// change the data while purging on any swap that does, including a
// replace that leaves the ID set unchanged.
func (s *System) Generation() uint64 {
	if s.Lineage != nil {
		return s.Lineage.Gen
	}
	ids := sortedTableIDs(s.Catalog)
	return snap.HashTables(ids, contentHashes(s.Catalog, ids))
}

// Depth reports the delta-chain length (0 for a plain base).
func (l *Lineage) Depth() int {
	if l == nil {
		return 0
	}
	return len(l.Deltas)
}

// TombstoneCount totals the tombstones across the applied chain.
func (l *Lineage) TombstoneCount() int {
	if l == nil {
		return 0
	}
	n := 0
	for _, d := range l.Deltas {
		n += d.Tombstones
	}
	return n
}

// LastCompactGen is the generation of the base the chain grows from —
// what the most recent compaction (or initial build) produced.
func (l *Lineage) LastCompactGen() uint64 {
	if l == nil {
		return 0
	}
	return l.BaseGen
}

// Delta snapshot framing: same CRC-framed section codec as the system
// snapshot, under its own magic so the two cannot be confused. Version
// 2 chains on content-folded generations (snap.HashTables) instead of
// membership-only hashes; v1 files fail with ErrVersionMismatch rather
// than a confusing chain error.
const (
	deltaMagic   uint32 = 0x54484442 // "THDB": tablehound delta binary
	deltaVersion uint16 = 2
)

// Delta section IDs, in stream order.
const (
	dsecMeta uint16 = iota + 1
	dsecDict
	dsecCatalog
	dsecJoin
	dsecTUS
	dsecSantos
	dsecD3L
	dsecStarmie
)

// Delta is one increment of lake membership: tombstones to mask,
// tables to add, the dictionary extension their values need, and the
// per-surface index parts analyzed over only those tables.
type Delta struct {
	// ParentGen is the generation this delta applies to; ResultGen is
	// the generation after applying it (snap.HashTables over the
	// sorted surviving table IDs and their content hashes).
	ParentGen uint64
	ResultGen uint64
	// BaseDictSize is the dictionary size the extension appends at: new
	// value IDs start here, so applying against any other dictionary
	// would scramble the ID space and is rejected.
	BaseDictSize int
	// Tombstones are the removed table IDs, sorted.
	Tombstones []string
	// NewValues are the dictionary extension in ID order (sorted; IDs
	// BaseDictSize..BaseDictSize+len-1).
	NewValues []string
	// Catalog holds the added tables verbatim (empty for a remove-only
	// delta).
	Catalog *lake.Catalog
	// JoinIDSets are the new tables' join postings, encoded in the
	// extended dictionary. Signatures are not stored: the merge
	// re-derives them through dict.Sign, bit-identically.
	JoinIDSets map[string]dict.IDSet
	// Per-surface parts for the added tables.
	TUS     []union.TUSTableParts
	Santos  []union.SantosTableParts
	D3L     []union.D3LTableParts
	Starmie []starmie.TableParts
}

// AddedIDs returns the sorted IDs of tables this delta adds.
func (d *Delta) AddedIDs() []string {
	return sortedTableIDs(d.Catalog)
}

// Save writes the delta as one self-contained CRC-framed stream.
func (d *Delta) Save(w io.Writer) error {
	if err := snap.WriteHeader(w, deltaMagic, deltaVersion, 0); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	if err := sw.Section(dsecMeta, func(e *snap.Encoder) {
		e.U64(d.ParentGen)
		e.U64(d.ResultGen)
		e.U32(uint32(d.BaseDictSize))
		e.Strs(d.Tombstones)
	}); err != nil {
		return err
	}
	if err := sw.Section(dsecDict, func(e *snap.Encoder) {
		e.Strs(d.NewValues)
	}); err != nil {
		return err
	}
	if err := sw.Section(dsecCatalog, d.Catalog.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(dsecJoin, func(e *snap.Encoder) {
		keys := make([]string, 0, len(d.JoinIDSets))
		for k := range d.JoinIDSets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.U32(uint32(len(keys)))
		for _, k := range keys {
			e.Str(k)
			e.U32s(d.JoinIDSets[k])
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(dsecTUS, func(e *snap.Encoder) {
		e.U32(uint32(len(d.TUS)))
		for _, t := range d.TUS {
			e.Str(t.ID)
			e.U32(uint32(len(t.Cols)))
			for _, c := range t.Cols {
				e.Str(c.Name)
				e.U32s(c.IDs)
				e.U64s(c.Sig)
				e.F32s(c.Vec)
				e.Str(c.SemType)
				e.F64(c.SemCover)
			}
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(dsecSantos, func(e *snap.Encoder) {
		e.U32(uint32(len(d.Santos)))
		for _, t := range d.Santos {
			e.Str(t.ID)
			e.U32(uint32(len(t.Rels)))
			for _, r := range t.Rels {
				e.Str(r.ColName)
				e.Strs(r.Pairs)
				e.Str(r.Pred)
				e.F64(r.PredFrac)
			}
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(dsecD3L, func(e *snap.Encoder) {
		e.U32(uint32(len(d.D3L)))
		for _, t := range d.D3L {
			e.Str(t.ID)
			e.U32(uint32(len(t.Cols)))
			for _, c := range t.Cols {
				e.U32(uint32(c.ColIdx))
				e.Strs(c.Distinct)
				e.F64s(c.Format)
				words := make([]string, 0, len(c.Words))
				for w := range c.Words {
					words = append(words, w)
				}
				sort.Strings(words)
				weights := make([]float64, len(words))
				for i, w := range words {
					weights[i] = c.Words[w]
				}
				e.Strs(words)
				e.F64s(weights)
				e.F32s(c.Vec)
			}
		}
	}); err != nil {
		return err
	}
	return sw.Section(dsecStarmie, func(e *snap.Encoder) {
		e.U32(uint32(len(d.Starmie)))
		for _, t := range d.Starmie {
			e.Str(t.ID)
			e.Strs(t.Keys)
			for _, v := range t.Vecs {
				e.F32s(v)
			}
		}
	})
}

// SaveFile writes the delta to path (created or truncated), buffered.
func (d *Delta) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := d.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDelta reads a delta written by Save. Structural damage surfaces
// ErrCorruptSnapshot; chain consistency is NOT checked here (apply
// time owns that — the same delta file can be valid for one lake and
// stale for another).
func LoadDelta(r io.Reader) (*Delta, error) {
	version, _, err := snap.ReadHeader(r, deltaMagic)
	if err != nil {
		return nil, err
	}
	if version != deltaVersion {
		return nil, fmt.Errorf("%w: found delta version %d, expected %d", ErrVersionMismatch, version, deltaVersion)
	}
	sr := snap.NewReader(r)
	d := &Delta{JoinIDSets: make(map[string]dict.IDSet)}
	if err := sr.Section(dsecMeta, func(dec *snap.Decoder) error {
		d.ParentGen = dec.U64()
		d.ResultGen = dec.U64()
		d.BaseDictSize = int(dec.U32())
		d.Tombstones = dec.Strs()
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecDict, func(dec *snap.Decoder) error {
		d.NewValues = dec.Strs()
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecCatalog, func(dec *snap.Decoder) error {
		var derr error
		d.Catalog, derr = lake.DecodeSnapshot(dec)
		return derr
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecJoin, func(dec *snap.Decoder) error {
		n := int(dec.U32())
		for i := 0; i < n; i++ {
			key := dec.Str()
			ids := dict.IDSet(dec.U32s())
			if err := dec.Err(); err != nil {
				return err
			}
			if _, dup := d.JoinIDSets[key]; dup {
				return fmt.Errorf("%w: duplicate join column %q", snap.ErrCorrupt, key)
			}
			d.JoinIDSets[key] = ids
		}
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecTUS, func(dec *snap.Decoder) error {
		n := int(dec.U32())
		for i := 0; i < n; i++ {
			t := union.TUSTableParts{ID: dec.Str()}
			ncols := int(dec.U32())
			if err := dec.Err(); err != nil {
				return err
			}
			for j := 0; j < ncols; j++ {
				c := union.TUSColumnParts{Name: dec.Str()}
				c.IDs = dict.IDSet(dec.U32s())
				c.Sig = dec.U64s()
				c.Vec = dec.F32s()
				c.SemType = dec.Str()
				c.SemCover = dec.F64()
				if err := dec.Err(); err != nil {
					return err
				}
				t.Cols = append(t.Cols, c)
			}
			d.TUS = append(d.TUS, t)
		}
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecSantos, func(dec *snap.Decoder) error {
		n := int(dec.U32())
		for i := 0; i < n; i++ {
			t := union.SantosTableParts{ID: dec.Str()}
			nrels := int(dec.U32())
			if err := dec.Err(); err != nil {
				return err
			}
			for j := 0; j < nrels; j++ {
				r := union.SantosRelParts{ColName: dec.Str()}
				r.Pairs = dec.Strs()
				r.Pred = dec.Str()
				r.PredFrac = dec.F64()
				if err := dec.Err(); err != nil {
					return err
				}
				t.Rels = append(t.Rels, r)
			}
			d.Santos = append(d.Santos, t)
		}
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecD3L, func(dec *snap.Decoder) error {
		n := int(dec.U32())
		for i := 0; i < n; i++ {
			t := union.D3LTableParts{ID: dec.Str()}
			ncols := int(dec.U32())
			if err := dec.Err(); err != nil {
				return err
			}
			for j := 0; j < ncols; j++ {
				c := union.D3LColumnParts{ColIdx: int(dec.U32())}
				c.Distinct = dec.Strs()
				c.Format = dec.F64s()
				words := dec.Strs()
				weights := dec.F64s()
				c.Vec = dec.F32s()
				if err := dec.Err(); err != nil {
					return err
				}
				if len(words) != len(weights) {
					return fmt.Errorf("%w: D3L column has %d words for %d weights", snap.ErrCorrupt, len(words), len(weights))
				}
				c.Words = make(map[string]float64, len(words))
				for k, w := range words {
					c.Words[w] = weights[k]
				}
				t.Cols = append(t.Cols, c)
			}
			d.D3L = append(d.D3L, t)
		}
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Section(dsecStarmie, func(dec *snap.Decoder) error {
		n := int(dec.U32())
		for i := 0; i < n; i++ {
			t := starmie.TableParts{ID: dec.Str()}
			t.Keys = dec.Strs()
			if err := dec.Err(); err != nil {
				return err
			}
			t.Vecs = make([]embedding.Vector, len(t.Keys))
			for j := range t.Keys {
				t.Vecs[j] = dec.F32s()
			}
			if err := dec.Err(); err != nil {
				return err
			}
			d.Starmie = append(d.Starmie, t)
		}
		return dec.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadDeltaFile loads a delta from a file written by SaveFile.
func LoadDeltaFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDelta(bufio.NewReaderSize(f, 1<<20))
}

// basePrefix is the cheap-to-read slice of a base snapshot that delta
// building needs: parameters, membership, and the three frozen
// foundations every delta encodes against (model, KB, dictionary). The
// expensive sections — engines, catalog, HNSW graphs — are framed
// through but never decoded, which is what keeps `lakectl add` far
// under the cost of a full load, let alone a rebuild.
type basePrefix struct {
	opts        Options // build parameters (not runtime knobs)
	gen         uint64
	tableIDs    []string
	tableHashes []uint64
	model       *embedding.Model
	kb          *kb.KB
	dict        *dict.Dict
}

// live returns the prefix's membership as an id → content-hash map,
// the state delta chains fold over.
func (p *basePrefix) live() map[string]uint64 {
	m := make(map[string]uint64, len(p.tableIDs))
	for i, id := range p.tableIDs {
		m[id] = p.tableHashes[i]
	}
	return m
}

// loadBasePrefix reads just the foundation sections of a base
// snapshot. All section frames are consumed (the vector blob must be
// reached for the model's rows) but only options, meta, model, KB, and
// dictionary are decoded.
func loadBasePrefix(path string) (*basePrefix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	version, _, err := snap.ReadHeader(r, snapMagic)
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("%w: found version %d, expected %d", ErrVersionMismatch, version, snapVersion)
	}
	sr := snap.NewReader(r)
	secs := make(map[uint16]*snap.Decoder, secVecs)
	for id := secOptions; id <= secVecs; id++ {
		d, err := sr.Payload(id)
		if err != nil {
			return nil, err
		}
		secs[id] = d
	}
	var store *vecstore.Store
	if err := decodeSection(secVecs, secs, func(d *snap.Decoder) error {
		dir, derr := vecstore.DecodeDirectory(d)
		if derr != nil {
			return derr
		}
		blobOff := int64(snapHeaderLen) + sr.Consumed()
		pad := vecstore.PadTo(blobOff)
		if pad > 0 {
			var padBuf [64]byte
			if _, rerr := io.ReadFull(r, padBuf[:pad]); rerr != nil {
				return fmt.Errorf("%w: short vector-blob padding: %v", ErrCorruptSnapshot, rerr)
			}
			for _, pb := range padBuf[:pad] {
				if pb != 0 {
					return fmt.Errorf("%w: nonzero vector-blob padding", ErrCorruptSnapshot)
				}
			}
		}
		store, derr = dir.ReadBlob(r)
		return derr
	}); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	p := &basePrefix{}
	if err := decodeSection(secOptions, secs, func(d *snap.Decoder) error {
		p.opts.EmbeddingDim = int(d.U32())
		p.opts.Seed = d.I64()
		p.opts.MinJoinCardinality = int(d.U32())
		p.opts.ContextWeight = d.F64()
		p.opts.OrgFanout = int(d.U32())
		p.opts.SkipOrganization = d.Bool()
		p.opts.SkipFuzzy = d.Bool()
		p.opts.SkipGraph = d.Bool()
		p.opts.VecCentroids = int(d.I64())
		return d.Err()
	}); err != nil {
		return nil, err
	}
	if err := decodeSection(secMeta, secs, func(d *snap.Decoder) error {
		p.gen = d.U64()
		p.tableIDs = d.Strs()
		p.tableHashes = d.U64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(p.tableHashes) != len(p.tableIDs) {
			return fmt.Errorf("%w: meta has %d content hashes for %d table IDs", ErrCorruptSnapshot, len(p.tableHashes), len(p.tableIDs))
		}
		if want := snap.HashTables(p.tableIDs, p.tableHashes); p.gen != want {
			return fmt.Errorf("%w: meta generation %016x does not hash its table set (%016x)", ErrCorruptSnapshot, p.gen, want)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	mv, ok := store.View("model")
	if !ok {
		return nil, fmt.Errorf("%w: vector directory has no model segment", ErrCorruptSnapshot)
	}
	if err := decodeSection(secModel, secs, func(d *snap.Decoder) error {
		var derr error
		p.model, derr = embedding.DecodeSnapshot(d, mv.Vec, mv.Len())
		return derr
	}); err != nil {
		return nil, err
	}
	if err := decodeSection(secKB, secs, func(d *snap.Decoder) error {
		if !d.Bool() {
			return d.Err()
		}
		var derr error
		p.kb, derr = kb.DecodeSnapshot(d)
		return derr
	}); err != nil {
		return nil, err
	}
	if err := decodeSection(secDict, secs, func(d *snap.Decoder) error {
		var derr error
		p.dict, derr = dict.DecodeSnapshot(d)
		return derr
	}); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildDelta analyzes a lake mutation — add tables, remove tables, or
// both (removes apply first, so add+remove of the same ID is a
// replace) — against the base snapshot at basePath with the deltas at
// deltaPaths already applied, and returns the delta that chains onto
// them. Only the new tables are analyzed; cost scales with the
// mutation, not the lake. Of opts only Parallelism is consulted; index
// parameters come from the base so delta parts are exchangeable with
// base parts.
func BuildDelta(basePath string, deltaPaths []string, add []*table.Table, remove []string, opts Options) (*Delta, error) {
	par := parallel.Resolve(opts.Parallelism)
	prefix, err := loadBasePrefix(basePath)
	if err != nil {
		return nil, err
	}
	live := prefix.live()
	d := prefix.dict
	gen := prefix.gen
	chain := make([]*Delta, len(deltaPaths))
	for i, p := range deltaPaths {
		dd, err := LoadDeltaFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		chain[i] = dd
	}
	// A compaction interrupted between installing the folded base and
	// retiring its consumed delta files leaves deltas on disk that are
	// already inside the base; skip that prefix instead of failing.
	for i := foldedPrefix(chain, gen); i < len(chain); i++ {
		if err := applyMembership(chain[i], deltaPaths[i], live, gen, d.Size()); err != nil {
			return nil, err
		}
		d = dict.Extend(d, chain[i].NewValues)
		gen = chain[i].ResultGen
	}

	removeSet := make(map[string]bool, len(remove))
	for _, id := range remove {
		if _, ok := live[id]; !ok {
			return nil, fmt.Errorf("core: cannot remove %q: not in the lake", id)
		}
		removeSet[id] = true
	}
	addSorted := make([]*table.Table, len(add))
	copy(addSorted, add)
	sort.Slice(addSorted, func(i, j int) bool { return addSorted[i].ID < addSorted[j].ID })
	for _, t := range addSorted {
		if _, ok := live[t.ID]; ok && !removeSet[t.ID] {
			return nil, fmt.Errorf("core: cannot add %q: already in the lake (remove it first to replace)", t.ID)
		}
	}
	if len(addSorted) == 0 && len(removeSet) == 0 {
		return nil, errors.New("core: empty delta: nothing to add or remove")
	}
	for id := range removeSet {
		delete(live, id)
	}

	baseSize := d.Size()
	var vals []string
	for _, t := range addSorted {
		for _, c := range t.Columns {
			vals = append(vals, tokenize.NormalizeSet(c.Values)...)
		}
	}
	ext := dict.Extend(d, vals)
	newIDs := make(dict.IDSet, 0, ext.Size()-baseSize)
	for i := baseSize; i < ext.Size(); i++ {
		newIDs = append(newIDs, uint32(i))
	}

	tombstones := make([]string, 0, len(removeSet))
	for id := range removeSet {
		tombstones = append(tombstones, id)
	}
	sort.Strings(tombstones)
	delta := &Delta{
		ParentGen:    gen,
		BaseDictSize: baseSize,
		Tombstones:   tombstones,
		NewValues:    ext.Decode(newIDs),
		Catalog:      lake.NewCatalog(),
		JoinIDSets:   make(map[string]dict.IDSet),
	}
	if len(addSorted) > 0 {
		if err := delta.Catalog.AddBatch(addSorted); err != nil {
			return nil, err
		}
		jb := join.NewBuilder(prefix.opts.MinJoinCardinality)
		jb.UseDict(ext)
		for _, t := range addSorted {
			jb.AddTable(t)
		}
		if jb.NumStaged() > 0 {
			eng, err := jb.Build()
			if err != nil {
				return nil, err
			}
			parts := eng.Parts()
			for _, k := range parts.Keys {
				delta.JoinIDSets[k] = parts.IDSets[k]
			}
		}
		tus, err := union.NewTUS(union.TUSConfig{Model: prefix.model, KB: prefix.kb, Dict: ext, NumHashes: 128})
		if err != nil {
			return nil, err
		}
		tus.AddTables(addSorted, par)
		if err := tus.Build(); err != nil {
			return nil, err
		}
		if delta.TUS, err = tus.Parts(); err != nil {
			return nil, err
		}
		santos := union.NewSantos(prefix.kb)
		for _, t := range addSorted {
			santos.AddTable(t)
		}
		delta.Santos = santos.Parts()
		d3l, err := union.NewD3L(prefix.model)
		if err != nil {
			return nil, err
		}
		for _, t := range addSorted {
			d3l.AddTable(t)
		}
		delta.D3L = d3l.Parts()
		sx := starmie.NewIndex(starmie.NewEncoder(prefix.model, prefix.opts.ContextWeight))
		sx.AddTables(addSorted, par)
		delta.Starmie = sx.Parts()
		for _, t := range addSorted {
			live[t.ID] = t.ContentHash()
		}
	}
	delta.ResultGen = contentGen(live)
	return delta, nil
}

// contentGen hashes a live (table ID → content hash) membership into
// a generation.
func contentGen(live map[string]uint64) uint64 {
	ids := sortedKeys(live)
	hashes := make([]uint64, len(ids))
	for i, id := range ids {
		hashes[i] = live[id]
	}
	return snap.HashTables(ids, hashes)
}

// foldedPrefix returns the number of leading deltas that are already
// folded into a base at gen: the longest prefix that chains internally
// and ends exactly at gen. A compaction that crashed — or whose
// retirement renames failed — between installing the folded base and
// retiring its consumed delta files leaves exactly such a prefix next
// to the new base; loaders skip it instead of hard-failing with
// ErrDeltaChain and stranding the daemon until manual cleanup. It
// returns 0 when the first delta chains onto gen directly (nothing
// folded) or when no consistent folded prefix exists, in which case
// the normal chain walk reports the precise mismatch.
func foldedPrefix(deltas []*Delta, gen uint64) int {
	if len(deltas) == 0 || deltas[0].ParentGen == gen {
		return 0
	}
	for k, d := range deltas {
		if k > 0 && d.ParentGen != deltas[k-1].ResultGen {
			return 0
		}
		if d.ResultGen == gen {
			return k + 1
		}
	}
	return 0
}

// applyMembership validates one delta's chain links against the
// current (gen, dictSize) state and folds its tombstones and additions
// into the live (table ID → content hash) map. It does NOT extend the
// dictionary — callers own that, so they control whether parts are
// also being merged.
func applyMembership(d *Delta, path string, live map[string]uint64, gen uint64, dictSize int) error {
	if d.ParentGen != gen {
		return fmt.Errorf("%w: delta %s chains onto generation %016x, lake is at %016x", ErrDeltaChain, path, d.ParentGen, gen)
	}
	if d.BaseDictSize != dictSize {
		return fmt.Errorf("%w: delta %s extends a dictionary of %d values, lake has %d", ErrDeltaChain, path, d.BaseDictSize, dictSize)
	}
	for _, id := range d.Tombstones {
		if _, ok := live[id]; !ok {
			return fmt.Errorf("%w: delta %s removes %q, which is not in the lake", ErrDeltaChain, path, id)
		}
		delete(live, id)
	}
	for _, t := range d.Catalog.Tables() {
		if _, ok := live[t.ID]; ok {
			return fmt.Errorf("%w: delta %s re-adds %q without a tombstone", ErrDeltaChain, path, t.ID)
		}
		live[t.ID] = t.ContentHash()
	}
	if want := contentGen(live); want != d.ResultGen {
		return fmt.Errorf("%w: delta %s declares result generation %016x, applying it yields %016x", ErrDeltaChain, path, d.ResultGen, want)
	}
	return nil
}

// LoadChainFiles loads a base snapshot plus an ordered delta chain and
// materializes the merge: one System answering every search surface
// bit-identically to a from-scratch build over the surviving tables.
// With no deltas it is exactly LoadFile. A leading run of deltas that
// are already folded into the base — left behind by a compaction
// interrupted between installing the new base and retiring its
// consumed delta files — is skipped and reported via Lineage.Folded
// rather than failing the load.
func LoadChainFiles(basePath string, deltaPaths []string, opts Options) (*System, error) {
	base, err := LoadFile(basePath, opts)
	if err != nil {
		return nil, err
	}
	if len(deltaPaths) == 0 {
		return base, nil
	}
	deltas := make([]*Delta, len(deltaPaths))
	infos := make([]DeltaInfo, len(deltaPaths))
	for i, p := range deltaPaths {
		dd, err := LoadDeltaFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		deltas[i] = dd
		var size int64
		if fi, serr := os.Stat(p); serr == nil {
			size = fi.Size()
		}
		infos[i] = DeltaInfo{Path: p, Gen: dd.ResultGen, Tables: dd.Catalog.Len(), Tombstones: len(dd.Tombstones), Bytes: size}
	}
	folded := foldedPrefix(deltas, base.Lineage.Gen)
	skipped := deltaPaths[:folded]
	if folded == len(deltas) {
		base.Lineage.Folded = skipped
		return base, nil
	}
	sys, err := ApplyDeltas(base, deltas[folded:], infos[folded:])
	if err != nil {
		return nil, err
	}
	sys.Lineage.Folded = skipped
	return sys, nil
}

// ApplyDeltas folds an ordered delta chain over a freshly loaded base
// system and returns the merged system. The base is consumed: its
// model is rebound onto the merged vector block, so it must not keep
// serving queries (load a fresh base per merge — LoadChainFiles does).
func ApplyDeltas(base *System, deltas []*Delta, infos []DeltaInfo) (*System, error) {
	start := time.Now()
	if base.Lineage == nil {
		return nil, errors.New("core: base system has no lineage (not loaded from a snapshot)")
	}
	bopts := base.buildOpts
	gen := base.Lineage.Gen
	ext := base.Dict
	liveTbl := make(map[string]*table.Table, base.Catalog.Len())
	for _, t := range base.Catalog.Tables() {
		liveTbl[t.ID] = t
	}
	// liveHash mirrors liveTbl as id → content hash — the membership
	// the generation chain folds over. Base hashes come from the
	// snapshot's meta section so they are never recomputed over the
	// full base catalog.
	if len(base.Lineage.TableHashes) != len(base.Lineage.TableIDs) {
		return nil, fmt.Errorf("core: base lineage has %d content hashes for %d table IDs", len(base.Lineage.TableHashes), len(base.Lineage.TableIDs))
	}
	liveHash := make(map[string]uint64, len(base.Lineage.TableIDs))
	for i, id := range base.Lineage.TableIDs {
		liveHash[id] = base.Lineage.TableHashes[i]
	}
	baseJoin := base.Join.Parts()
	joinSets := make(map[string]dict.IDSet, len(baseJoin.IDSets))
	for k, v := range baseJoin.IDSets {
		joinSets[k] = v
	}
	tusParts, err := base.TUS.Parts()
	if err != nil {
		return nil, err
	}
	tusBy := make(map[string]union.TUSTableParts, len(tusParts))
	for _, p := range tusParts {
		tusBy[p.ID] = p
	}
	santosBy := make(map[string]union.SantosTableParts)
	for _, p := range base.Santos.Parts() {
		santosBy[p.ID] = p
	}
	d3lBy := make(map[string]union.D3LTableParts)
	for _, p := range base.D3L.Parts() {
		d3lBy[p.ID] = p
	}
	starBy := make(map[string]starmie.TableParts)
	for _, p := range base.Starmie.Parts() {
		starBy[p.ID] = p
	}

	for i, dd := range deltas {
		path := fmt.Sprintf("delta[%d]", i)
		if i < len(infos) && infos[i].Path != "" {
			path = infos[i].Path
		}
		if dd.ParentGen != gen {
			return nil, fmt.Errorf("%w: delta %s chains onto generation %016x, lake is at %016x", ErrDeltaChain, path, dd.ParentGen, gen)
		}
		if dd.BaseDictSize != ext.Size() {
			return nil, fmt.Errorf("%w: delta %s extends a dictionary of %d values, lake has %d", ErrDeltaChain, path, dd.BaseDictSize, ext.Size())
		}
		for _, id := range dd.Tombstones {
			if liveTbl[id] == nil {
				return nil, fmt.Errorf("%w: delta %s removes %q, which is not in the lake", ErrDeltaChain, path, id)
			}
			delete(liveTbl, id)
			delete(liveHash, id)
			delete(tusBy, id)
			delete(santosBy, id)
			delete(d3lBy, id)
			delete(starBy, id)
			for key := range joinSets {
				if tid, _ := table.SplitColumnKey(key); tid == id {
					delete(joinSets, key)
				}
			}
		}
		for _, t := range dd.Catalog.Tables() {
			if liveTbl[t.ID] != nil {
				return nil, fmt.Errorf("%w: delta %s re-adds %q without a tombstone", ErrDeltaChain, path, t.ID)
			}
			liveTbl[t.ID] = t
			liveHash[t.ID] = t.ContentHash()
		}
		for key, ids := range dd.JoinIDSets {
			if _, dup := joinSets[key]; dup {
				return nil, fmt.Errorf("%w: delta %s re-adds join column %q", ErrDeltaChain, path, key)
			}
			joinSets[key] = ids
		}
		for _, p := range dd.TUS {
			tusBy[p.ID] = p
		}
		for _, p := range dd.Santos {
			santosBy[p.ID] = p
		}
		for _, p := range dd.D3L {
			d3lBy[p.ID] = p
		}
		for _, p := range dd.Starmie {
			starBy[p.ID] = p
		}
		ext = dict.Extend(ext, dd.NewValues)
		if want := contentGen(liveHash); want != dd.ResultGen {
			return nil, fmt.Errorf("%w: delta %s declares result generation %016x, applying it yields %016x", ErrDeltaChain, path, dd.ResultGen, want)
		}
		gen = dd.ResultGen
	}

	// Merged catalog in sorted-ID order — the canonical order a fresh
	// build over the same tables uses, which keeps the order-sensitive
	// rebuilt structures (keyword statistics) bit-identical.
	ids := sortedKeys(liveTbl)
	cat := lake.NewCatalog()
	ordered := make([]*table.Table, len(ids))
	for i, id := range ids {
		ordered[i] = liveTbl[id]
	}
	if err := cat.AddBatch(ordered); err != nil {
		return nil, err
	}
	// The merged system gets a fresh, sorted dictionary over the merged
	// catalog — identical to the one a from-scratch build constructs —
	// and the folded ID sets remap onto it. The extended dictionary is
	// only the deltas' transport encoding: keeping it would persist an
	// unsorted value table (which the dict snapshot codec rightly
	// rejects) and let stale values from removed tables accumulate
	// across compactions.
	freshDict, err := buildDict(ordered, bopts.Parallelism)
	if err != nil {
		return nil, err
	}
	const unmapped = ^uint32(0)
	remap := make([]uint32, ext.Size())
	for i := range remap {
		if id, ok := freshDict.ID(ext.Value(uint32(i))); ok {
			remap[i] = id
		} else {
			remap[i] = unmapped // value only in removed tables
		}
	}
	remapSet := func(ids dict.IDSet) (dict.IDSet, error) {
		out := make(dict.IDSet, len(ids))
		for i, id := range ids {
			if int(id) >= len(remap) || remap[id] == unmapped {
				return nil, fmt.Errorf("%w: ID %d references a value outside the merged lake", ErrDeltaChain, id)
			}
			out[i] = remap[id]
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out, nil
	}
	for key, set := range joinSets {
		ns, rerr := remapSet(set)
		if rerr != nil {
			return nil, fmt.Errorf("join column %q: %w", key, rerr)
		}
		joinSets[key] = ns
	}
	tusOrdered := partsInIDOrder(ids, tusBy)
	for ti := range tusOrdered {
		for ci := range tusOrdered[ti].Cols {
			ns, rerr := remapSet(tusOrdered[ti].Cols[ci].IDs)
			if rerr != nil {
				return nil, fmt.Errorf("TUS column %s.%s: %w", tusOrdered[ti].ID, tusOrdered[ti].Cols[ci].Name, rerr)
			}
			tusOrdered[ti].Cols[ci].IDs = ns
		}
	}
	mp := mergedParts{
		joinSets:      joinSets,
		numHashes:     baseJoin.NumHashes,
		numPartitions: baseJoin.NumPartitions,
		tus:           tusOrdered,
		santos:        partsInIDOrder(ids, santosBy),
		d3l:           partsInIDOrder(ids, d3lBy),
		starmie:       partsInIDOrder(ids, starBy),
	}
	sys, err := assembleMerged(cat, base.Model, base.KB, freshDict, mp, bopts)
	if err != nil {
		return nil, err
	}
	hashes := make([]uint64, len(ids))
	for i, id := range ids {
		hashes[i] = liveHash[id]
	}
	sys.Lineage = &Lineage{BaseGen: base.Lineage.Gen, Gen: gen, TableIDs: ids, TableHashes: hashes, Deltas: infos}
	sys.BuildStats.Total = time.Since(start)
	return sys, nil
}

// mergedParts carries the folded per-surface parts into assembly.
type mergedParts struct {
	joinSets      map[string]dict.IDSet
	numHashes     int
	numPartitions int
	tus           []union.TUSTableParts
	santos        []union.SantosTableParts
	d3l           []union.D3LTableParts
	starmie       []starmie.TableParts
}

// assembleMerged wires a System over the merged catalog: the heavy
// engines reassemble from parts through their FromParts constructors,
// and everything that Load already re-derives cheaply (keyword,
// profiles, entities, fuzzy, correlation, MATE, organization, graph)
// rebuilds from the merged catalog with the base's build parameters.
// Stage structure mirrors Build so merging parallelizes the same way.
func assembleMerged(cat *lake.Catalog, model *embedding.Model, curated *kb.KB, ext *dict.Dict, mp mergedParts, bopts Options) (*System, error) {
	tables := cat.Tables()
	s := &System{Catalog: cat, Model: model, KB: curated, Dict: ext, buildOpts: bopts}
	stats := newBuildStats(bopts.Parallelism)
	lookup := cat.Table
	stages := []struct {
		id   int
		skip bool
		run  func() (int, error)
	}{
		{stageKeyword, false, func() (int, error) {
			return buildKeyword(s, tables)
		}},
		{stageProfiles, false, func() (int, error) {
			s.Profiles = profile.NewIndexN(tables, bopts.Parallelism)
			return s.Profiles.Len(), nil
		}},
		{stageEntities, false, func() (int, error) {
			s.Entities = apps.NewEntityAugmenter(tables)
			return len(tables), nil
		}},
		{stageJoin, false, func() (int, error) {
			eng, err := join.NewEngineFromParts(ext, mp.joinSets, mp.numHashes, mp.numPartitions, bopts.Parallelism)
			if err != nil {
				return 0, fmt.Errorf("core: join merge: %w", err)
			}
			eng.QueryParallelism = bopts.QueryParallelism
			s.Join = eng
			return eng.NumColumns(), nil
		}},
		{stageFuzzy, bopts.SkipFuzzy, func() (int, error) {
			return buildFuzzy(s, tables, bopts)
		}},
		{stageCorr, false, func() (int, error) {
			return buildCorr(s, tables, bopts)
		}},
		{stageMate, false, func() (int, error) {
			s.Mate = join.NewMateIndex(tables)
			return len(tables), nil
		}},
		{stageTUS, false, func() (int, error) {
			tus, err := union.NewTUSFromParts(union.TUSConfig{Model: model, KB: curated, Dict: ext, NumHashes: 128}, mp.tus, lookup)
			if err != nil {
				return 0, err
			}
			tus.QueryParallelism = bopts.QueryParallelism
			s.TUS = tus
			return tus.NumTables(), nil
		}},
		{stageSantos, false, func() (int, error) {
			santos, err := union.NewSantosFromParts(curated, mp.santos, lookup)
			if err != nil {
				return 0, err
			}
			santos.QueryParallelism = bopts.QueryParallelism
			s.Santos = santos
			return santos.NumTables(), nil
		}},
		{stageD3L, false, func() (int, error) {
			d3l, err := union.NewD3LFromParts(model, mp.d3l, lookup)
			if err != nil {
				return 0, err
			}
			s.D3L = d3l
			return d3l.NumTables(), nil
		}},
		{stageStarmie, false, func() (int, error) {
			ix, err := starmie.NewIndexFromParts(starmie.NewEncoder(model, bopts.ContextWeight), mp.starmie)
			if err != nil {
				return 0, err
			}
			s.Starmie = ix
			return ix.NumColumns(), nil
		}},
		{stageOrg, bopts.SkipOrganization, func() (int, error) {
			s.Org = navigation.Organize(tables, model, navigation.Config{Fanout: bopts.OrgFanout, Seed: bopts.Seed})
			return len(tables), nil
		}},
		{stageGraph, bopts.SkipGraph, func() (int, error) {
			if g, err := aurum.Build(tables, aurum.Config{}); err == nil {
				s.Graph = g
			}
			return len(tables), nil
		}},
		{stageStats, false, func() (int, error) {
			s.Stats = BuildCatalogStats(tables)
			return len(tables), nil
		}},
	}
	err := parallel.ForEach(len(stages), bopts.Parallelism, func(i int) error {
		st := stages[i]
		if st.skip {
			stats.skip(st.id)
			return nil
		}
		return stats.time(st.id, st.run)
	})
	if err != nil {
		return nil, err
	}
	if err := stats.time(stageVecs, func() (int, error) {
		return buildVecStore(s, bopts)
	}); err != nil {
		return nil, err
	}
	stats.Stages[stageModel].Items = -1 // frozen base model, never retrained
	stats.Stages[stageDict].Items = -1  // extended, not rebuilt
	s.BuildStats = stats
	return s, nil
}

// partsInIDOrder flattens a parts map to a slice in sorted-table-ID
// order (dropping entries for tables no longer live — the tombstone
// deletes already removed those, so this is just the ordering pass).
func partsInIDOrder[P any](ids []string, by map[string]P) []P {
	out := make([]P, 0, len(by))
	for _, id := range ids {
		if p, ok := by[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// sortedKeys returns a map's string keys, sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExpandDeltas resolves a comma-separated delta-chain spec (the CLI
// and daemon -deltas flag) into ordered file paths. Each element may
// be a glob; glob matches are appended in sorted-name order (lakectl
// add names deltas so that name order is chain order), non-glob
// elements pass through verbatim. An empty spec is an empty chain.
func ExpandDeltas(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("core: deltas: bad pattern %q: %v", part, err)
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, part)
	}
	return paths, nil
}

// CompactFiles folds a base snapshot plus its delta chain into a new
// base at outPath (written to a temp file, then renamed, so readers —
// including mmap'd loads of an old base at the same path — never see a
// torn file). The merged system is returned so a server can hot-swap
// onto it without reloading. Compaction never retrains the embedding
// model: the frozen base model persists into the new base, by design —
// results stay bit-identical across compactions.
func CompactFiles(basePath string, deltaPaths []string, outPath string, opts Options) (*System, error) {
	sys, err := LoadChainFiles(basePath, deltaPaths, opts)
	if err != nil {
		return nil, err
	}
	tmp := outPath + ".compact.tmp"
	if err := sys.SaveFile(tmp); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, outPath); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	// The fold is now a base: depth resets, generation carries over.
	sys.Lineage = &Lineage{BaseGen: sys.Lineage.Gen, Gen: sys.Lineage.Gen, TableIDs: sys.Lineage.TableIDs, TableHashes: sys.Lineage.TableHashes}
	return sys, nil
}
