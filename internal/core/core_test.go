package core

import (
	"testing"

	"tablehound/internal/annotate"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/table"
)

func demoSystem(t *testing.T) (*System, *datagen.Lake) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{
		Seed:              51,
		NumDomains:        12,
		DomainSize:        80,
		NumTemplates:      5,
		TablesPerTemplate: 4,
	})
	cat := lake.NewCatalog()
	for _, tbl := range gen.Tables {
		if err := cat.Add(tbl); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := Build(cat, Options{KB: gen.BuildKB(0.8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestBuildWiresEverything(t *testing.T) {
	sys, _ := demoSystem(t)
	if sys.Model == nil || sys.Keyword == nil || sys.Join == nil ||
		sys.Fuzzy == nil || sys.Mate == nil || sys.TUS == nil ||
		sys.Santos == nil || sys.Starmie == nil || sys.Org == nil ||
		sys.Values == nil || sys.Profiles == nil || sys.Entities == nil {
		t.Fatal("missing components")
	}
	if sys.Corr == nil {
		t.Error("correlation engine missing despite numeric columns")
	}
}

func TestValueSearchEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	// Query a concrete cell value from a table.
	val := gen.Tables[3].Columns[0].Values[0]
	clusters, err := sys.ValueSearch(val, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatalf("no clusters for value %q", val)
	}
	found := false
	for _, cl := range clusters {
		for _, id := range cl.TableIDs {
			if id == gen.Tables[3].ID {
				found = true
			}
		}
	}
	if !found {
		t.Error("table containing the value not in any cluster")
	}
}

func TestProfilesEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	tp, ok := sys.Profiles.Profile(gen.Tables[0].ID)
	if !ok {
		t.Fatal("no profile for first table")
	}
	if tp.Rows != gen.Tables[0].NumRows() {
		t.Error("profile rows wrong")
	}
	// The generated metric column is numeric and must be range-
	// searchable.
	hits := sys.Profiles.NumericRangeSearch(-1e6, 1e6, 0)
	if len(hits) == 0 {
		t.Error("no numeric columns found by range search")
	}
}

func TestMatchSchemasEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	// Two tables of the same template share schema; combined matcher
	// aligns every template column.
	src, dst := gen.Tables[0], gen.Tables[1]
	corr := sys.MatchSchemas(src, dst, 0.4)
	if len(corr) < len(gen.Templates[0].Domains) {
		t.Errorf("correspondences = %d, want >= %d: %+v",
			len(corr), len(gen.Templates[0].Domains), corr)
	}
}

func TestD3LEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	q := gen.Tables[0]
	res, err := sys.D3L.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("D3L found nothing")
	}
	// The five-evidence score should also surface the same-template
	// tables near the top.
	truth := gen.UnionableWith(q.ID)
	hit := false
	for _, r := range res {
		if truth[r.TableID] {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no ground-truth unionable table in D3L top-3: %+v", res)
	}
}

func TestAugmentEntitiesEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	// Use a template table's first two columns as the relation; two
	// rows as examples, ask for a third entity.
	tbl := gen.Tables[0]
	ents := tbl.Columns[0].Values
	vals := tbl.Columns[1].Values
	examples := map[string]string{ents[0]: vals[0]}
	// Find a second distinct example and a target entity.
	var target string
	for i := 1; i < len(ents); i++ {
		if ents[i] != ents[0] {
			if len(examples) < 2 {
				examples[ents[i]] = vals[i]
			} else {
				target = ents[i]
				break
			}
		}
	}
	if target == "" {
		t.Skip("not enough distinct entities")
	}
	got := sys.AugmentEntities([]string{target}, examples)
	if len(got) == 0 {
		t.Fatalf("no augmentation for %q", target)
	}
}

func TestBuildEmptyCatalogFails(t *testing.T) {
	if _, err := Build(lake.NewCatalog(), Options{}); err == nil {
		t.Error("empty catalog should fail")
	}
}

func TestKeywordSearchEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	// Search for the first template's first domain name.
	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	res, err := sys.KeywordSearch(topic, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatalf("no results for topic %q", topic)
	}
}

func TestJoinableColumnsEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	q := gen.Tables[0].Columns[0]
	res, err := sys.JoinableColumns(q.Values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no joinable columns")
	}
	// The column itself is indexed and matches fully.
	if res[0].Containment < 0.99 {
		t.Errorf("top containment = %v", res[0].Containment)
	}
}

func TestUnionableTablesEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	q := gen.Tables[0]
	res, err := sys.UnionableTables(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no unionable tables")
	}
	truth := gen.UnionableWith(q.ID)
	if !truth[res[0].TableID] {
		t.Errorf("top unionable %s not in ground truth", res[0].TableID)
	}
}

func TestAnnotateEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	if _, err := sys.AnnotateTable(gen.Tables[0]); err == nil {
		t.Error("annotation before training should fail")
	}
	var examples []annotate.Example
	for _, tbl := range gen.Tables[:10] {
		for _, c := range tbl.Columns {
			if d, ok := gen.ColumnDomain[table.ColumnKey(tbl.ID, c.Name)]; ok {
				examples = append(examples, annotate.Example{
					Values: c.Values, Header: c.Name, Label: gen.DomainNames[d],
				})
			}
		}
	}
	if err := sys.TrainAnnotator(examples); err != nil {
		t.Fatal(err)
	}
	preds, err := sys.AnnotateTable(gen.Tables[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != gen.Tables[0].NumCols() {
		t.Errorf("predictions = %d", len(preds))
	}
}

func TestNavigateEndToEnd(t *testing.T) {
	sys, gen := demoSystem(t)
	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	labels, tableID, err := sys.Navigate(topic)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 || tableID == "" {
		t.Error("navigation returned nothing")
	}
	// SkipOrganization path.
	cat := lake.NewCatalog()
	for _, tbl := range gen.Tables[:4] {
		cat.Add(tbl)
	}
	sys2, err := Build(cat, Options{SkipOrganization: true, SkipFuzzy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys2.Navigate("x"); err == nil {
		t.Error("Navigate without organization should fail")
	}
	if sys2.Fuzzy != nil {
		t.Error("SkipFuzzy ignored")
	}
}
