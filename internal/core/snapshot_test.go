package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/union"
)

// roundTrip saves built to a buffer and loads it back at the given
// query parallelism, failing the test on any snapshot error.
func roundTrip(t *testing.T, built *System, qparallel int) *System {
	t.Helper()
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Options{QueryParallelism: qparallel})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return loaded
}

// TestSnapshotRoundTripParity is the snapshot subsystem's core
// contract: a loaded system must answer every search surface
// bit-identically to the system it was saved from.
func TestSnapshotRoundTripParity(t *testing.T) {
	built, gen := buildAt(t, 4)
	loaded := roundTrip(t, built, 0)

	check := func(surface string, got, want any, err, werr error) {
		t.Helper()
		if err != nil || werr != nil {
			t.Fatalf("%s: loaded err %v, built err %v", surface, err, werr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s results differ:\nloaded %+v\nbuilt  %+v", surface, got, want)
		}
	}

	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	gotK, err := loaded.KeywordSearch(topic, 10)
	wantK, werr := built.KeywordSearch(topic, 10)
	check("keyword", gotK, wantK, err, werr)

	val := gen.Tables[3].Columns[0].Values[0]
	gotV, err := loaded.ValueSearch(val, 10)
	wantV, werr := built.ValueSearch(val, 10)
	check("value", gotV, wantV, err, werr)

	qcol := gen.Tables[0].Columns[0]
	gotJ, err := loaded.JoinableColumns(qcol.Values, 10)
	wantJ, werr := built.JoinableColumns(qcol.Values, 10)
	check("join-overlap", gotJ, wantJ, err, werr)

	gotC, err := loaded.ContainmentSearch(qcol.Values, 0.5, 10)
	wantC, werr := built.ContainmentSearch(qcol.Values, 0.5, 10)
	check("join-containment", gotC, wantC, err, werr)

	// Queries mixing indexed values with dictionary-OOV strings must
	// agree too: the loaded dictionary has to treat unseen values the
	// same way the built one does.
	oov := append([]string{"zzz-snapshot-oov-1", "zzz-snapshot-oov-2"}, qcol.Values[:4]...)
	gotO, err := loaded.JoinableColumns(oov, 10)
	wantO, werr := built.JoinableColumns(oov, 10)
	check("join-oov", gotO, wantO, err, werr)

	q := gen.Tables[0]
	gotU, err := loaded.UnionableTables(q, 10)
	wantU, werr := built.UnionableTables(q, 10)
	check("tus-union", gotU, wantU, err, werr)

	gotSa, err := loaded.Santos.Search(q, 5, union.Hybrid)
	wantSa, werr := built.Santos.Search(q, 5, union.Hybrid)
	check("santos", gotSa, wantSa, err, werr)

	gotD, err := loaded.D3L.Search(q, 5)
	wantD, werr := built.D3L.Search(q, 5)
	check("d3l", gotD, wantD, err, werr)

	gotS, err := loaded.Starmie.SearchTables(q, 5, 64, false)
	wantS, werr := built.Starmie.SearchTables(q, 5, 64, false)
	check("starmie", gotS, wantS, err, werr)

	gotF, _ := loaded.Fuzzy.Search(qcol.Values, 0.85, 0.5)
	wantF, _ := built.Fuzzy.Search(qcol.Values, 0.85, 0.5)
	check("fuzzy", gotF, wantF, nil, nil)

	gotLabels, gotID, err := loaded.Navigate(topic)
	wantLabels, wantID, werr := built.Navigate(topic)
	check("navigate-labels", gotLabels, wantLabels, err, werr)
	check("navigate-table", gotID, wantID, nil, nil)

	from, to := gen.Tables[0].ID, gen.Tables[len(gen.Tables)-1].ID
	gotP := loaded.JoinPath(from, to, 3)
	wantP := built.JoinPath(from, to, 3)
	check("joinpath", gotP, wantP, nil, nil)

	gotM := loaded.MatchSchemas(gen.Tables[0], gen.Tables[1], 0.5)
	wantM := built.MatchSchemas(gen.Tables[0], gen.Tables[1], 0.5)
	check("match-schemas", gotM, wantM, nil, nil)
}

// TestSnapshotSkipFlagsRoundTrip checks that a snapshot of a system
// built with Skip* options loads with the same subsystems absent and
// the same stages marked skipped.
func TestSnapshotSkipFlagsRoundTrip(t *testing.T) {
	gen := datagen.Generate(datagen.Config{Seed: 5, NumTemplates: 2, TablesPerTemplate: 2})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		t.Fatal(err)
	}
	built, err := Build(cat, Options{SkipFuzzy: true, SkipGraph: true, SkipOrganization: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, built, 0)
	if loaded.Fuzzy != nil {
		t.Error("fuzzy joiner rebuilt despite SkipFuzzy snapshot")
	}
	if loaded.Graph != nil {
		t.Error("graph present despite SkipGraph snapshot")
	}
	if loaded.Org != nil {
		t.Error("organization present despite SkipOrganization snapshot")
	}
	for _, name := range []string{"fuzzy", "graph", "org"} {
		st, ok := loaded.BuildStats.Stage(name)
		if !ok || !st.Skipped {
			t.Errorf("stage %s not marked skipped after load: %+v", name, st)
		}
	}
}

// TestSnapshotRejectsCorruption exercises the corruption contract on
// the full-system format: truncation at every prefix length, a flipped
// byte at every offset, trailing garbage, and a wrong version must all
// surface ErrCorruptSnapshot (never a panic or a silent success).
func TestSnapshotRejectsCorruption(t *testing.T) {
	gen := datagen.Generate(datagen.Config{Seed: 5, NumTemplates: 2, TablesPerTemplate: 2})
	cat := lake.NewCatalog()
	if err := cat.AddBatch(gen.Tables); err != nil {
		t.Fatal(err)
	}
	built, err := Build(cat, Options{KB: gen.BuildKB(0.8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte{}, good...), 0xFF)
		if _, err := Load(bytes.NewReader(bad), Options{}); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("err = %v, want ErrCorruptSnapshot", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		// A clean header with the wrong version is a stale snapshot, not
		// bit rot: the typed ErrVersionMismatch (naming both versions)
		// lets operators tell the two apart, so it must not also satisfy
		// the corruption sentinel.
		bad := append([]byte{}, good...)
		bad[4] = 0xEE // version lives at header bytes 4..5
		_, err := Load(bytes.NewReader(bad), Options{})
		if !errors.Is(err, ErrVersionMismatch) {
			t.Errorf("err = %v, want ErrVersionMismatch", err)
		}
		if errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("version mismatch also satisfies ErrCorruptSnapshot: %v", err)
		}
		for _, want := range []string{"found version", "expected 5"} {
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("err %q does not name versions (%q missing)", err, want)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		// Every strict prefix must fail; step keeps runtime sane.
		for n := 0; n < len(good); n += 997 {
			if _, err := Load(bytes.NewReader(good[:n]), Options{}); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("truncated to %d bytes: err = %v, want ErrCorruptSnapshot", n, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		bad := make([]byte, len(good))
		for off := 0; off < len(good); off += 1009 {
			copy(bad, good)
			bad[off] ^= 0x40
			if _, err := Load(bytes.NewReader(bad), Options{}); err == nil {
				t.Fatalf("flipped byte at %d: Load succeeded", off)
			} else if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("flipped byte at %d: err = %v, want ErrCorruptSnapshot", off, err)
			}
		}
	})
}

// TestSaveRejectsPartialSystem pins that Save refuses to serialize a
// system that never went through Build.
func TestSaveRejectsPartialSystem(t *testing.T) {
	var buf bytes.Buffer
	if err := (&System{}).Save(&buf); err == nil {
		t.Fatal("Save of empty system succeeded")
	}
	if buf.Len() != 0 {
		t.Errorf("partial Save wrote %d bytes", buf.Len())
	}
}
