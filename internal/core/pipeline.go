// Build-pipeline observability: the stage list of the concurrent
// index-construction pipeline and the per-stage timing record attached
// to every built System. See DESIGN.md "Build pipeline & concurrency
// contracts" for the stage DAG and the types each stage may share.
package core

import (
	"fmt"
	"strings"
	"time"
)

// Stage indices. stageModel and stageDict are the shared dependencies
// and always run first (model, then the value dictionary); every other
// stage reads only the catalog, the trained model, the dictionary, and
// the optional KB, so the scheduler may run them in any order or
// concurrently.
const (
	stageModel = iota
	stageDict
	stageKeyword
	stageProfiles
	stageEntities
	stageJoin
	stageFuzzy
	stageCorr
	stageMate
	stageTUS
	stageSantos
	stageD3L
	stageStarmie
	stageOrg
	stageGraph
	stageStats
	stageVecs
	numStages
)

var stageNames = [numStages]string{
	"model", "dict", "keyword", "profiles", "entities", "join", "fuzzy",
	"corr", "mate", "tus", "santos", "d3l", "starmie", "org", "graph",
	"stats", "vecs",
}

// StageTiming records one pipeline stage's work.
type StageTiming struct {
	Name    string
	Skipped bool
	// Items is the stage's unit count: tables for per-table stages,
	// columns for column indexes, key/measure pairs for correlation.
	Items int
	// Wall is the stage's own elapsed time. Stages overlap when
	// Parallelism > 1, so stage walls can sum to more than Total.
	Wall time.Duration
}

// BuildStats is the observability record of one System construction —
// what each pipeline stage did and how long it took.
type BuildStats struct {
	// Parallelism is the worker budget the build ran with.
	Parallelism int
	// Total is the end-to-end build wall time.
	Total time.Duration
	// Stages lists every stage in canonical order (model first).
	Stages []StageTiming
}

func newBuildStats(parallelism int) *BuildStats {
	bs := &BuildStats{Parallelism: parallelism, Stages: make([]StageTiming, numStages)}
	for i := range bs.Stages {
		bs.Stages[i].Name = stageNames[i]
	}
	return bs
}

// time runs one stage and records its wall time and item count in the
// stage's own slot; distinct stages may therefore record concurrently.
func (bs *BuildStats) time(stage int, run func() (int, error)) error {
	start := time.Now()
	items, err := run()
	bs.Stages[stage].Wall = time.Since(start)
	bs.Stages[stage].Items = items
	return err
}

func (bs *BuildStats) skip(stage int) {
	bs.Stages[stage].Skipped = true
}

// Stage returns the timing record for a named stage.
func (bs *BuildStats) Stage(name string) (StageTiming, bool) {
	for _, st := range bs.Stages {
		if st.Name == name {
			return st, true
		}
	}
	return StageTiming{}, false
}

// Report renders the per-stage timing table, slowest stage first.
func (bs *BuildStats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "build: total %v, parallelism %d\n", bs.Total.Round(time.Microsecond), bs.Parallelism)
	order := make([]int, len(bs.Stages))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by wall, stable
		for j := i; j > 0 && bs.Stages[order[j]].Wall > bs.Stages[order[j-1]].Wall; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	fmt.Fprintf(&b, "  %-10s %8s %12s\n", "stage", "items", "wall")
	for _, i := range order {
		st := bs.Stages[i]
		if st.Skipped {
			fmt.Fprintf(&b, "  %-10s %8s %12s\n", st.Name, "-", "skipped")
			continue
		}
		fmt.Fprintf(&b, "  %-10s %8d %12v\n", st.Name, st.Items, st.Wall.Round(time.Microsecond))
	}
	return b.String()
}
