package core

import (
	"reflect"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/snap"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

func statsFixture(t *testing.T) ([]*table.Table, *CatalogStats) {
	t.Helper()
	gen := datagen.Generate(datagen.Config{Seed: 9, NumTemplates: 3, TablesPerTemplate: 3})
	return gen.Tables, BuildCatalogStats(gen.Tables)
}

// TestCatalogStatsCountsExact checks every marginal count the cost
// model consumes against a brute-force census of the same tables.
func TestCatalogStatsCountsExact(t *testing.T) {
	tables, st := statsFixture(t)
	n := len(tables)
	if st.Tables != n {
		t.Fatalf("Tables = %d, want %d", st.Tables, n)
	}
	wantCols := 0
	for _, tbl := range tables {
		wantCols += tbl.NumCols()
	}
	if st.Columns != wantCols {
		t.Errorf("Columns = %d, want %d", st.Columns, wantCols)
	}

	ranges := []struct{ min, max int }{
		{0, 0}, {1, 0}, {0, 10}, {5, 40}, {1000000, 0}, {0, 1}, {3, 3},
	}
	for _, r := range ranges {
		want := 0
		for _, tbl := range tables {
			rows := tbl.NumRows()
			if (r.min <= 0 || rows >= r.min) && (r.max <= 0 || rows <= r.max) {
				want++
			}
		}
		if got := st.CountRows(r.min, r.max); got != want {
			t.Errorf("CountRows(%d,%d) = %d, want %d", r.min, r.max, got, want)
		}
		want = 0
		for _, tbl := range tables {
			cols := tbl.NumCols()
			if (r.min <= 0 || cols >= r.min) && (r.max <= 0 || cols <= r.max) {
				want++
			}
		}
		if got := st.CountCols(r.min, r.max); got != want {
			t.Errorf("CountCols(%d,%d) = %d, want %d", r.min, r.max, got, want)
		}
	}

	// Column-name DF: every distinct name, plus a case variant, plus a
	// missing name.
	names := map[string]bool{"No Such Column Anywhere": true}
	for _, tbl := range tables {
		for _, c := range tbl.Columns {
			names[c.Name] = true
		}
	}
	for name := range names {
		want := 0
		for _, tbl := range tables {
			for _, c := range tbl.Columns {
				if tokenize.Normalize(c.Name) == tokenize.Normalize(name) {
					want++
					break
				}
			}
		}
		if got := st.CountColName(name); got != want {
			t.Errorf("CountColName(%q) = %d, want %d", name, got, want)
		}
	}

	for _, ty := range []table.Type{table.TypeBool, table.TypeInt, table.TypeFloat, table.TypeDate, table.TypeString} {
		want := 0
		for _, tbl := range tables {
			for _, c := range tbl.Columns {
				if c.Type == ty {
					want++
					break
				}
			}
		}
		if got := st.CountType(ty); got != want {
			t.Errorf("CountType(%v) = %d, want %d", ty, got, want)
		}
	}
}

// TestCatalogStatsSnapshotRoundtrip pins the stats section's wire
// format: encode, decode, deep-equal.
func TestCatalogStatsSnapshotRoundtrip(t *testing.T) {
	_, st := statsFixture(t)
	var e snap.Encoder
	st.AppendSnapshot(&e)
	d := snap.NewDecoder(e.Bytes())
	got, err := DecodeCatalogStatsSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("roundtrip diverged:\n got %+v\nwant %+v", got, st)
	}
}
