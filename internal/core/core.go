// Package core assembles the full table-discovery system of the
// tutorial's Figure 1: table understanding (embeddings, annotation),
// indexing (set, vector, sketch, inverted), the table search engine
// (keyword, joinable, unionable), navigation, and data-science
// support — all behind one System facade built over a lake catalog.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"tablehound/internal/annotate"
	"tablehound/internal/apps"
	"tablehound/internal/aurum"
	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/join"
	"tablehound/internal/kb"
	"tablehound/internal/keyword"
	"tablehound/internal/lake"
	"tablehound/internal/navigation"
	"tablehound/internal/parallel"
	"tablehound/internal/profile"
	"tablehound/internal/schema"
	"tablehound/internal/starmie"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/union"
	"tablehound/internal/vecstore"
)

// Options configures system construction. The zero value is usable.
type Options struct {
	// EmbeddingDim is the dense vector width (default 64).
	EmbeddingDim int
	// Seed drives every randomized structure (default 1).
	Seed int64
	// KB is an optional curated knowledge base for semantic measures.
	KB *kb.KB
	// Model, when non-nil, pins the embedding model instead of training
	// one from the catalog. Delta builds use it to encode new tables
	// against a base snapshot's frozen model (training is globally
	// corpus-coupled, so retraining would invalidate every base vector).
	// Build clones it, so the caller's copy is never rebound.
	Model *embedding.Model
	// MinJoinCardinality filters tiny columns from join indexing
	// (default 3).
	MinJoinCardinality int
	// ContextWeight is the Starmie encoder's context mix (default 0.3).
	ContextWeight float64
	// OrgFanout is the navigation fanout (default 4).
	OrgFanout int
	// SkipOrganization skips hierarchy building (it is the most
	// expensive optional step on large lakes).
	SkipOrganization bool
	// SkipFuzzy skips the fuzzy join index (vector per value).
	SkipFuzzy bool
	// SkipGraph skips the Aurum-style discovery graph, whose schema
	// linking is quadratic in the column count.
	SkipGraph bool
	// Parallelism bounds the worker pool of the construction pipeline:
	// after the shared embedding model is trained, the independent
	// index families build concurrently, and the heaviest stages fan
	// out per table or per column under the same budget. 0 means
	// runtime.GOMAXPROCS(0); 1 (or any negative value) runs the exact
	// sequential build, for reproducibility. Search results are
	// identical at every setting — only wall time changes.
	Parallelism int
	// QueryParallelism bounds the per-query fan-out inside a single
	// search call (TUS/Santos candidate scoring, join candidate
	// verification and exact scans, PEXESO matching). Same convention
	// as Parallelism: 0 = GOMAXPROCS, 1 or negative = sequential.
	// Results are bit-identical at every setting — only per-query
	// latency changes. When serving many concurrent queries, 1 is
	// usually right (the queries themselves saturate the cores);
	// larger values cut the latency of isolated queries.
	QueryParallelism int
	// VecCentroids controls the coarse quantizer trained over the
	// searchable vector sets (the Starmie column segment of the shared
	// vector block, and PEXESO's shared value vectors). 0 applies the
	// automatic policy — k ≈ √n once a set is large enough for pruning
	// to pay for the centroid pass; > 0 forces that cluster count;
	// < 0 disables centroid training entirely. Pruning is lossless
	// (bound-based), so results are bit-identical at every setting.
	VecCentroids int
	// VecNProbe bounds how many clusters Starmie's centroid-pruned
	// exact search visits per query. 0 (the default) visits every
	// cluster not provably excluded — bit-identical to the exhaustive
	// scan; > 0 caps the visit count, trading recall for fewer exact
	// distance computations. Runtime knob: not persisted in snapshots.
	VecNProbe int
	// VecMode selects how LoadFile materializes the snapshot's vector
	// blob: "auto" (default) memory-maps it where the platform
	// supports zero-copy mapping and falls back to a heap read
	// elsewhere; "mmap" requires the mapping; "heap" forces the
	// portable read. Ignored by Build and by Load from a plain reader
	// (always heap).
	VecMode string
}

func (o Options) withDefaults() Options {
	if o.EmbeddingDim <= 0 {
		o.EmbeddingDim = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinJoinCardinality <= 0 {
		o.MinJoinCardinality = 3
	}
	if o.ContextWeight == 0 {
		o.ContextWeight = 0.3
	}
	if o.OrgFanout == 0 {
		o.OrgFanout = 4
	}
	o.Parallelism = parallel.Resolve(o.Parallelism)
	o.QueryParallelism = parallel.Resolve(o.QueryParallelism)
	return o
}

// System is a fully wired table discovery system over one catalog.
type System struct {
	Catalog *lake.Catalog
	Model   *embedding.Model
	KB      *kb.KB
	// Dict is the lake-wide value dictionary: every distinct normalized
	// cell value interned to a dense uint32 ID. The set-based indexes
	// (Join, TUS, Fuzzy) encode their columns against it.
	Dict *dict.Dict
	// Vecs is the flat vector block behind the embedding model and the
	// Starmie column index: one contiguous float32 blob plus
	// precomputed norms, carved into named segments, optionally coarse-
	// quantized for cluster-pruned search. After Build or Load, Model
	// and Starmie alias rows of this store (which may itself alias an
	// mmap'd snapshot region — see Options.VecMode).
	Vecs *vecstore.Store

	Keyword  *keyword.Index
	Values   *keyword.ValueIndex
	Profiles *profile.Index
	Join     *join.Engine
	Fuzzy    *join.FuzzyJoiner
	Corr     *join.CorrEngine
	Mate     *join.MateIndex
	TUS      *union.TUS
	Santos   *union.Santos
	D3L      *union.D3L
	Starmie  *starmie.Index
	Org      *navigation.Organization
	Entities *apps.EntityAugmenter
	Graph    *aurum.Graph

	// Annotator is nil until TrainAnnotator is called.
	Annotator *annotate.Annotator

	// Stats is the catalog statistics block the discover planner's
	// cost model reads: per-table shape distributions and column
	// name/type document frequencies. Persisted in snapshots.
	Stats *CatalogStats

	// BuildStats records per-stage wall time and item counts for the
	// construction pipeline that produced this system.
	BuildStats *BuildStats

	// Lineage records where this system's table membership came from:
	// the base snapshot's generation, the delta chain applied on top
	// (empty when loaded directly or freshly built), and the resulting
	// generation. Nil on a fresh Build; set by Load and LoadChain.
	Lineage *Lineage

	// buildOpts is the resolved Options the system was constructed
	// with; Save persists it so Load can replay the rebuild-on-load
	// stages with the same parameters.
	buildOpts Options
}

// Build indexes the catalog into a System.
//
// Construction is a two-phase pipeline: the embedding model — the one
// dependency every index family shares — trains first, then the
// independent stages (keyword, profiles, join, fuzzy, union, Starmie,
// navigation, graph, ...) run on a bounded worker pool of
// Options.Parallelism goroutines, with per-table/per-column fan-out
// inside the heaviest stages. Every stage reads shared state only
// (catalog tables, the trained model, the KB) and writes its own
// System field, so results are identical at every parallelism level;
// per-stage wall times land in System.BuildStats.
func Build(catalog *lake.Catalog, opts Options) (*System, error) {
	opts = opts.withDefaults()
	tables := catalog.Tables()
	if len(tables) == 0 {
		return nil, errors.New("core: empty catalog")
	}
	s := &System{Catalog: catalog, KB: opts.KB, buildOpts: opts}
	stats := newBuildStats(opts.Parallelism)
	start := time.Now()

	// Table understanding: train embeddings on the lake's columns.
	// Every downstream stage reads this model, so it builds first.
	if err := stats.time(stageModel, func() (int, error) {
		if opts.Model != nil {
			s.Model = opts.Model.Clone()
			return s.Model.VocabSize(), nil
		}
		var contexts [][]string
		for _, t := range tables {
			for _, c := range t.Columns {
				if c.Type == table.TypeString || c.Type == table.TypeUnknown {
					contexts = append(contexts, c.Distinct())
				}
			}
		}
		s.Model = embedding.Train(contexts, embedding.Config{Dim: opts.EmbeddingDim, Seed: uint64(opts.Seed)})
		return len(contexts), nil
	}); err != nil {
		return nil, err
	}

	// The lake-wide value dictionary is the second shared dependency:
	// every set index encodes its columns against it. Per-table value
	// extraction fans out; the dictionary build itself sorts once and
	// is deterministic regardless of accumulation order.
	if err := stats.time(stageDict, func() (int, error) {
		var derr error
		s.Dict, derr = buildDict(tables, opts.Parallelism)
		if derr != nil {
			return 0, derr
		}
		return s.Dict.Size(), nil
	}); err != nil {
		return nil, err
	}

	// The remaining stages are mutually independent: each reads the
	// catalog, model, and KB, and writes one System field. They run on
	// the worker pool in declaration order (exactly sequentially when
	// Parallelism is 1).
	stages := []struct {
		id   int
		skip bool
		run  func() (int, error)
	}{
		{stageKeyword, false, func() (int, error) {
			// Keyword search over metadata and over cell values
			// (OCTOPUS-style).
			return buildKeyword(s, tables)
		}},
		{stageProfiles, false, func() (int, error) {
			// Auctus-style structured profiles.
			s.Profiles = profile.NewIndexN(tables, opts.Parallelism)
			return s.Profiles.Len(), nil
		}},
		{stageEntities, false, func() (int, error) {
			// InfoGather-style entity augmentation over the raw tables.
			s.Entities = apps.NewEntityAugmenter(tables)
			return len(tables), nil
		}},
		{stageJoin, false, func() (int, error) {
			// Joinable search: exact overlap + containment indexes,
			// encoded against the lake dictionary.
			jb := join.NewBuilder(opts.MinJoinCardinality)
			jb.UseDict(s.Dict)
			for _, t := range tables {
				jb.AddTable(t)
			}
			eng, err := jb.Build()
			if err != nil {
				return 0, fmt.Errorf("core: join index: %w", err)
			}
			eng.QueryParallelism = opts.QueryParallelism
			s.Join = eng
			return eng.NumColumns(), nil
		}},
		{stageFuzzy, opts.SkipFuzzy, func() (int, error) {
			// Fuzzy join (PEXESO-style): embedding a vector per value is
			// the single heaviest stage, so it fans out per column.
			return buildFuzzy(s, tables, opts)
		}},
		{stageCorr, false, func() (int, error) {
			// Correlation search: first string column as key, numeric
			// columns as measures.
			return buildCorr(s, tables, opts)
		}},
		{stageMate, false, func() (int, error) {
			// Multi-attribute join.
			s.Mate = join.NewMateIndex(tables)
			return len(tables), nil
		}},
		{stageTUS, false, func() (int, error) {
			tus, err := union.NewTUS(union.TUSConfig{Model: s.Model, KB: opts.KB, Dict: s.Dict, NumHashes: 128})
			if err != nil {
				return 0, err
			}
			tus.QueryParallelism = opts.QueryParallelism
			tus.AddTables(tables, opts.Parallelism)
			if err := tus.Build(); err != nil {
				return 0, err
			}
			s.TUS = tus
			return tus.NumTables(), nil
		}},
		{stageSantos, false, func() (int, error) {
			santos := union.NewSantos(opts.KB)
			santos.QueryParallelism = opts.QueryParallelism
			for _, t := range tables {
				santos.AddTable(t)
			}
			if santos.NumTables() > 0 {
				if err := santos.Build(); err != nil {
					return 0, err
				}
			}
			s.Santos = santos
			return santos.NumTables(), nil
		}},
		{stageD3L, false, func() (int, error) {
			d3l, err := union.NewD3L(s.Model)
			if err != nil {
				return 0, err
			}
			for _, t := range tables {
				d3l.AddTable(t)
			}
			s.D3L = d3l
			return d3l.NumTables(), nil
		}},
		{stageStarmie, false, func() (int, error) {
			// Starmie contextual retrieval: encoding fans out per table.
			s.Starmie = starmie.NewIndex(starmie.NewEncoder(s.Model, opts.ContextWeight))
			s.Starmie.AddTables(tables, opts.Parallelism)
			if err := s.Starmie.Build(); err != nil {
				return 0, err
			}
			return s.Starmie.NumColumns(), nil
		}},
		{stageOrg, opts.SkipOrganization, func() (int, error) {
			s.Org = navigation.Organize(tables, s.Model, navigation.Config{Fanout: opts.OrgFanout, Seed: opts.Seed})
			return len(tables), nil
		}},
		{stageGraph, opts.SkipGraph, func() (int, error) {
			// Aurum-style discovery graph for linkage navigation and
			// join paths. Lakes without usable string columns simply
			// have none (the build error is deliberately swallowed).
			if g, err := aurum.Build(tables, aurum.Config{}); err == nil {
				s.Graph = g
			}
			return len(tables), nil
		}},
		{stageStats, false, func() (int, error) {
			// Catalog statistics for the discover planner's cost model.
			s.Stats = BuildCatalogStats(tables)
			return len(tables), nil
		}},
	}
	err := parallel.ForEach(len(stages), opts.Parallelism, func(i int) error {
		st := stages[i]
		if st.skip {
			stats.skip(st.id)
			return nil
		}
		return stats.time(st.id, st.run)
	})
	if err != nil {
		return nil, err
	}
	// The vector store runs after the pool: it consolidates the model
	// and Starmie vectors — both frozen by now — into one flat block
	// and rebinds their owners onto it, so it must observe every stage.
	if err := stats.time(stageVecs, func() (int, error) {
		return buildVecStore(s, opts)
	}); err != nil {
		return nil, err
	}
	stats.Total = time.Since(start)
	s.BuildStats = stats
	return s, nil
}

// centroidK resolves the cluster count for a searchable vector set of
// n rows: a forced count (Options.VecCentroids > 0) wins, a negative
// setting disables, and the automatic policy trains k ≈ √n clusters
// once the set reaches minRows (below that an exhaustive scan is
// already cheap), capped at maxK when maxK > 0.
func centroidK(n, forced, minRows, maxK int) int {
	if forced != 0 {
		if forced < 0 {
			return 0
		}
		if forced > n {
			forced = n
		}
		return forced
	}
	if n < minRows {
		return 0
	}
	k := int(math.Sqrt(float64(n)))
	if maxK > 0 && k > maxK {
		k = maxK
	}
	return k
}

// buildVecStore consolidates the trained model's token vectors and the
// Starmie index's column vectors into one contiguous vecstore block,
// trains the coarse quantizer over the searchable (Starmie) segment,
// and rebinds both owners onto the block. Vector values are copied
// bit-for-bit, so every search surface is unchanged; only the backing
// memory moves — which is what makes snapshot reload O(1) and lets
// replicas share pages via mmap.
func buildVecStore(s *System, opts Options) (int, error) {
	b := vecstore.NewBuilder(s.Model.Dim())
	for _, tok := range s.Model.Tokens() {
		b.Append("model", s.Model.TokenVector(tok))
	}
	colKeys := s.Starmie.ColumnKeys()
	for _, key := range colKeys {
		b.Append("starmie", s.Starmie.VectorOf(key))
	}
	store, err := b.Build()
	if err != nil {
		return 0, err
	}
	if k := centroidK(len(colKeys), opts.VecCentroids, 128, 0); k > 0 {
		// Seeding from the key-set hash makes centroids a pure function
		// of the indexed lake: rebuilds are bit-reproducible.
		if err := store.TrainCentroids("starmie", k, vecstore.HashStrings(colKeys)); err != nil {
			return 0, err
		}
	}
	if mv, ok := store.View("model"); ok {
		if err := s.Model.Rebind(mv.Vec, mv.Len()); err != nil {
			return 0, err
		}
	}
	if sv, ok := store.View("starmie"); ok {
		if err := s.Starmie.Bind(sv, opts.VecNProbe); err != nil {
			return 0, err
		}
	}
	s.Vecs = store
	return store.Count(), nil
}

// JoinPath returns a chain of joinable-column hops connecting two
// tables via the discovery graph, or nil when none exists within
// maxHops.
func (s *System) JoinPath(fromTable, toTable string, maxHops int) []aurum.JoinHop {
	if s.Graph == nil {
		return nil
	}
	return s.Graph.JoinPath(fromTable, toTable, aurum.ContentSim, maxHops)
}

// buildDict constructs the lake-wide value dictionary over a table
// set: every distinct normalized cell value, IDs assigned in
// lexicographic order. Shared by Build's stageDict and by the delta
// merge path, which re-derives the dictionary over the merged catalog
// (the extended dictionary is only the deltas' transport encoding).
func buildDict(tables []*table.Table, parallelism int) (*dict.Dict, error) {
	perTable, err := parallel.Map(len(tables), parallelism, func(i int) ([]string, error) {
		var vals []string
		for _, c := range tables[i].Columns {
			vals = append(vals, tokenize.NormalizeSet(c.Values)...)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	db := dict.NewBuilder()
	for _, vals := range perTable {
		db.Add(vals...)
	}
	return db.Build(), nil
}

// buildKeyword constructs the metadata and cell-value keyword indexes
// over the catalog. Shared by Build's stageKeyword and by the delta
// merge path, which re-derives both indexes over the merged catalog.
func buildKeyword(s *System, tables []*table.Table) (int, error) {
	s.Keyword = keyword.NewIndex()
	s.Values = keyword.NewValueIndex()
	for _, t := range tables {
		s.Keyword.Add(t)
		s.Values.Add(t)
	}
	s.Keyword.Finish()
	s.Values.Finish()
	return len(tables), nil
}

// buildCorr constructs the correlation engine: first qualifying string
// column as key, numeric columns as measures. Shared by Build's
// stageCorr and by the delta merge path.
func buildCorr(s *System, tables []*table.Table, opts Options) (int, error) {
	cb := join.NewCorrBuilder(256)
	pairs := 0
	for _, t := range tables {
		var keyCol *table.Column
		for _, c := range t.Columns {
			if c.Type == table.TypeString && c.Cardinality() >= opts.MinJoinCardinality {
				keyCol = c
				break
			}
		}
		if keyCol == nil {
			continue
		}
		for _, c := range t.Columns {
			if !c.Type.IsNumeric() {
				continue
			}
			nums, n := numericAligned(keyCol, c)
			if n < 3 {
				continue
			}
			pk := join.PairKey(t.ID, keyCol.Name, c.Name)
			if err := cb.Add(pk, nums.keys, nums.vals); err == nil {
				pairs++
			}
		}
	}
	if pairs > 0 {
		eng, err := cb.Build()
		if err != nil {
			return 0, err
		}
		s.Corr = eng
	}
	return pairs, nil
}

// buildFuzzy constructs the fuzzy join index over the catalog. It is
// shared by Build's stageFuzzy and by Load, which re-derives the index
// from the loaded model/dictionary/catalog instead of storing a vector
// per value on disk; both paths produce bit-identical indexes.
func buildFuzzy(s *System, tables []*table.Table, opts Options) (int, error) {
	s.Fuzzy = join.NewFuzzyJoiner(s.Model, 4)
	s.Fuzzy.UseDict(s.Dict)
	s.Fuzzy.QueryParallelism = opts.QueryParallelism
	var batch []join.FuzzyColumn
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Type == table.TypeString && c.Cardinality() >= opts.MinJoinCardinality {
				batch = append(batch, join.FuzzyColumn{Key: table.ColumnKey(t.ID, c.Name), Values: c.Values})
			}
		}
	}
	if err := s.Fuzzy.AddColumns(batch, opts.Parallelism); err != nil {
		return 0, err
	}
	// Coarse-quantize the shared value vectors so queries can skip
	// whole clusters under the tau threshold (lossless, PEXESO-style
	// results unchanged). Value sets are much larger than column sets,
	// so the auto policy kicks in later and caps k.
	slots, _ := s.Fuzzy.VectorStats()
	if k := centroidK(slots, opts.VecCentroids, 1024, 128); k > 0 {
		keys := make([]string, len(batch))
		for i, c := range batch {
			keys[i] = c.Key
		}
		s.Fuzzy.BuildCentroids(k, vecstore.HashStrings(keys))
	}
	return len(batch), nil
}

type keyedNums struct {
	keys []string
	vals []float64
}

// numericAligned extracts (key, number) rows where both parse.
func numericAligned(keyCol, numCol *table.Column) (keyedNums, int) {
	var out keyedNums
	for r := 0; r < keyCol.Len() && r < numCol.Len(); r++ {
		k := keyCol.Values[r]
		if k == "" {
			continue
		}
		f, err := strconv.ParseFloat(numCol.Values[r], 64)
		if err != nil {
			continue
		}
		out.keys = append(out.keys, k)
		out.vals = append(out.vals, f)
	}
	return out, len(out.keys)
}

// TrainAnnotator fits the semantic type detector on labeled columns
// and attaches it to the system.
func (s *System) TrainAnnotator(examples []annotate.Example) error {
	a, err := annotate.Train(examples, annotate.Config{Seed: 1})
	if err != nil {
		return err
	}
	s.Annotator = a
	return nil
}

// AnnotateTable predicts semantic column types for a table, with
// Sato-style context smoothing. Requires TrainAnnotator first.
func (s *System) AnnotateTable(t *table.Table) ([]annotate.Prediction, error) {
	if s.Annotator == nil {
		return nil, errors.New("core: annotator not trained; call TrainAnnotator")
	}
	return s.Annotator.AnnotateTable(t, true), nil
}

// Query-path concurrency contract: once Build has returned, every
// search surface on System — KeywordSearch, ValueSearch,
// JoinableColumns, ContainmentSearch, UnionableTables, Navigate,
// MatchSchemas, and the engines reachable through the exported fields
// (Join, Fuzzy, TUS, Santos, D3L, Starmie, Org, Profiles) — is a pure
// read over frozen state and safe for unbounded concurrent use.
// Options.QueryParallelism bounds the fan-out *inside* one query;
// results are bit-identical at every setting.

// KeywordSearch ranks tables by metadata relevance. A query with no
// content wraps table.ErrBadQuery instead of silently matching
// nothing.
func (s *System) KeywordSearch(query string, k int) ([]keyword.Result, error) {
	if strings.TrimSpace(query) == "" {
		return nil, fmt.Errorf("core: empty keyword query: %w", table.ErrBadQuery)
	}
	return s.Keyword.Search(query, k), nil
}

// JoinableColumns returns the top-k columns by exact value overlap
// with the query column values. A query column that is empty after
// normalization (no values, or whitespace-only values) wraps
// table.ErrBadQuery instead of silently returning no matches.
func (s *System) JoinableColumns(values []string, k int) ([]join.Match, error) {
	q := s.Join.EncodeQuery(values)
	if len(q.IDs) == 0 {
		return nil, fmt.Errorf("core: query column has no usable values: %w", table.ErrBadQuery)
	}
	return s.Join.TopKOverlapQuery(q, k), nil
}

// ContainmentSearch returns columns whose containment of the query
// column is likely >= threshold (LSH Ensemble candidates, exactly
// verified).
func (s *System) ContainmentSearch(values []string, threshold float64, k int) ([]join.Match, error) {
	ms, err := s.Join.ContainmentSearch(values, threshold, true)
	if err != nil {
		return nil, err
	}
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

// UnionableTables returns the top-k unionable tables (TUS ensemble).
func (s *System) UnionableTables(query *table.Table, k int) ([]union.Result, error) {
	return s.TUS.Search(query, k, union.EnsembleMeasure)
}

// Navigate descends the organization toward a topic described by
// keywords, returning the visited labels and the reached table.
func (s *System) Navigate(topic string) (labels []string, tableID string, err error) {
	if s.Org == nil {
		return nil, "", errors.New("core: organization not built")
	}
	vec := s.Model.ColumnVector([]string{topic})
	labels, tableID = s.Org.Navigate(vec)
	return labels, tableID, nil
}

// ValueSearch ranks tables by keyword hits in cell values and groups
// the results into same-schema clusters (the OCTOPUS SEARCH shape).
// A query with no content wraps table.ErrBadQuery.
func (s *System) ValueSearch(query string, k int) ([]keyword.Cluster, error) {
	if strings.TrimSpace(query) == "" {
		return nil, fmt.Errorf("core: empty value-search query: %w", table.ErrBadQuery)
	}
	return s.Values.SearchClusters(query, k), nil
}

// MatchSchemas aligns the columns of two tables with the combined
// (name + instance + embedding) matcher.
func (s *System) MatchSchemas(src, dst *table.Table, threshold float64) []schema.Correspondence {
	m := schema.CombinedMatcher{
		Instance:   schema.InstanceMatcher{Model: s.Model},
		NameWeight: 0.3, // lake headers are unreliable; trust content
	}
	return schema.Match(src, dst, m, threshold)
}

// AugmentEntities fills an attribute for entities from a few example
// pairs via InfoGather-style holistic matching over the lake.
func (s *System) AugmentEntities(entities []string, examples map[string]string) map[string]apps.AttrValue {
	return s.Entities.AugmentByExample(entities, examples, 0.5)
}
