// Unified on-disk snapshots: Save serializes a fully built System into
// one versioned, checksummed binary stream; Load reconstructs a System
// that answers every search surface bit-identically to the one that
// was saved — without re-running the build pipeline.
//
// The format is a snap header followed by a fixed sequence of
// length-framed, CRC-checked sections, one per subsystem. Structures
// whose construction is deterministic-but-expensive are stored
// verbatim (embedding model, dictionary, inverted indexes, column
// analyses, HNSW topology); structures that are cheap, deterministic
// functions of already-stored state are rebuilt on load (LSH banding
// tables, posting maps, profile/entity/fuzzy indexes). Optional
// subsystems carry a presence flag so a snapshot of a system built
// with Skip* options round-trips exactly.
package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"tablehound/internal/apps"
	"tablehound/internal/aurum"
	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/join"
	"tablehound/internal/kb"
	"tablehound/internal/keyword"
	"tablehound/internal/lake"
	"tablehound/internal/navigation"
	"tablehound/internal/parallel"
	"tablehound/internal/profile"
	"tablehound/internal/snap"
	"tablehound/internal/starmie"
	"tablehound/internal/union"
	"tablehound/internal/vecstore"
)

// ErrCorruptSnapshot marks a system snapshot whose bytes or structure
// are invalid: truncation, checksum mismatch, trailing garbage, or
// internally inconsistent sections. It aliases the shared snap
// sentinel, so errors.Is matches either spelling.
var ErrCorruptSnapshot = snap.ErrCorrupt

// ErrVersionMismatch marks a structurally sound snapshot header whose
// version this binary does not speak — a stale (or too-new) snapshot
// rather than bit rot. It deliberately does NOT satisfy
// errors.Is(err, ErrCorruptSnapshot): operators react differently to
// "rebuild the snapshot" than to "the bytes are damaged". The wrapped
// message names the found and expected versions.
var ErrVersionMismatch = errors.New("core: snapshot version mismatch")

// Snapshot framing. Version 2 added the shared vector block: a
// directory section (secVecs) inside the framed stream, then the raw
// float32/norm blob as a 64-byte-aligned tail after the last section,
// which is what lets LoadFile map it zero-copy. Version 3 added the
// meta section (secMeta): the sorted table-ID list and its generation
// hash, which delta snapshots chain against. Version 4 folds
// per-table content hashes into the meta section and the generation,
// so replacing a table's contents (remove + add under the same ID)
// changes the generation — membership alone cannot tell such lakes
// apart, and the serving tier keys its query cache on the generation.
// Version 5 added the catalog-statistics section (secStats), the
// discover planner's cost-model input.
const (
	snapMagic   uint32 = 0x54485342 // "THSB": tablehound system binary
	snapVersion uint16 = 5

	// snapHeaderLen is the byte length of the snap header (magic,
	// version, flags) that precedes the first section; blob-offset
	// arithmetic below counts from it.
	snapHeaderLen = 8
)

// Section IDs, in stream order. The sequence is fixed; optional
// subsystems encode a presence flag inside their section rather than
// omitting it.
const (
	secOptions uint16 = iota + 1
	secMeta
	secCatalog
	secModel
	secKB
	secDict
	secKeyword
	secValues
	secJoin
	secCorr
	secMate
	secTUS
	secSantos
	secD3L
	secStarmie
	secOrg
	secGraph
	secStats
	secVecs
)

// Save writes the system as one self-contained snapshot stream.
// The system must be fully built (a Build result); partially
// constructed systems are rejected rather than half-written.
func (s *System) Save(w io.Writer) error {
	if s.Catalog == nil || s.Model == nil || s.Dict == nil || s.Keyword == nil ||
		s.Values == nil || s.Join == nil || s.Mate == nil || s.TUS == nil ||
		s.Santos == nil || s.D3L == nil || s.Starmie == nil || s.Stats == nil ||
		s.Vecs == nil {
		return fmt.Errorf("core: cannot snapshot a partially built system")
	}
	if err := snap.WriteHeader(w, snapMagic, snapVersion, 0); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	opts := s.buildOpts
	if err := sw.Section(secOptions, func(e *snap.Encoder) {
		e.U32(uint32(opts.EmbeddingDim))
		e.I64(opts.Seed)
		e.U32(uint32(opts.MinJoinCardinality))
		e.F64(opts.ContextWeight)
		e.U32(uint32(opts.OrgFanout))
		e.Bool(opts.SkipOrganization)
		e.Bool(opts.SkipFuzzy)
		e.Bool(opts.SkipGraph)
		e.I64(int64(opts.VecCentroids))
	}); err != nil {
		return err
	}
	// Meta: the sorted table-ID list, each table's content hash, and
	// the generation folding both. Delta snapshots record this
	// generation as their parent link, and the serving tier keys
	// caches on it — content hashes make a replaced table (same ID,
	// different bytes) a new generation.
	if err := sw.Section(secMeta, func(e *snap.Encoder) {
		ids := sortedTableIDs(s.Catalog)
		hashes := contentHashes(s.Catalog, ids)
		e.U64(snap.HashTables(ids, hashes))
		e.Strs(ids)
		e.U64s(hashes)
	}); err != nil {
		return err
	}
	if err := sw.Section(secCatalog, s.Catalog.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secModel, s.Model.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secKB, func(e *snap.Encoder) {
		e.Bool(s.KB != nil)
		if s.KB != nil {
			s.KB.AppendSnapshot(e)
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(secDict, s.Dict.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secKeyword, s.Keyword.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secValues, s.Values.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secJoin, func(e *snap.Encoder) {
		s.Join.AppendSnapshot(e, s.Dict)
	}); err != nil {
		return err
	}
	if err := sw.Section(secCorr, func(e *snap.Encoder) {
		e.Bool(s.Corr != nil)
		if s.Corr != nil {
			s.Corr.AppendSnapshot(e)
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(secMate, s.Mate.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secTUS, func(e *snap.Encoder) {
		s.TUS.AppendSnapshot(e, s.Dict)
	}); err != nil {
		return err
	}
	if err := sw.Section(secSantos, s.Santos.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secD3L, s.D3L.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secStarmie, s.Starmie.AppendSnapshot); err != nil {
		return err
	}
	if err := sw.Section(secOrg, func(e *snap.Encoder) {
		e.Bool(s.Org != nil)
		if s.Org != nil {
			s.Org.AppendSnapshot(e)
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(secGraph, func(e *snap.Encoder) {
		e.Bool(s.Graph != nil)
		if s.Graph != nil {
			s.Graph.AppendSnapshot(e)
		}
	}); err != nil {
		return err
	}
	if err := sw.Section(secStats, s.Stats.AppendSnapshot); err != nil {
		return err
	}
	// The vector block closes the stream: its directory (shape, segment
	// table, centroid tables, blob length + CRC) travels as a normal
	// CRC-framed section, then zero padding aligns the raw blob's first
	// byte to a 64-byte file offset so an mmap view of the data is
	// always well aligned, then the blob itself — the only bytes of the
	// snapshot outside the section framing.
	if err := sw.Section(secVecs, s.Vecs.AppendDirectory); err != nil {
		return err
	}
	if pad := vecstore.PadTo(snapHeaderLen + sw.Written()); pad > 0 {
		if _, err := w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	return s.Vecs.WriteBlob(w)
}

// Load reconstructs a system from a snapshot written by Save. Only the
// runtime knobs are taken from opts (Parallelism for the rebuild-on-
// load stages, QueryParallelism for the per-query fan-out of the
// loaded engines, VecNProbe for pruned search); everything else —
// catalog, model, KB, build parameters — comes from the snapshot. The
// loaded system answers every search surface bit-identically to the
// saved one. Load always reads the vector blob onto the heap; use
// LoadFile for the zero-copy mmap path.
func Load(r io.Reader, opts Options) (*System, error) {
	return load(r, nil, opts)
}

// load is the shared implementation: when blobFile is non-nil the
// vector blob is mmap'd from it at its recorded offset instead of
// being read (and CRC-verified) through r.
func load(r io.Reader, blobFile *os.File, opts Options) (*System, error) {
	start := time.Now()
	version, _, err := snap.ReadHeader(r, snapMagic)
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("%w: found version %d, expected %d", ErrVersionMismatch, version, snapVersion)
	}
	// Phase 1: read and checksum every section frame sequentially;
	// decoding is deferred so independent sections can decode in
	// parallel below.
	sr := snap.NewReader(r)
	secs := make(map[uint16]*snap.Decoder, secVecs)
	for id := secOptions; id <= secVecs; id++ {
		d, err := sr.Payload(id)
		if err != nil {
			return nil, err
		}
		secs[id] = d
	}

	// The vector block materializes before anything decodes: the model
	// and Starmie sections hold no vector bytes of their own, only
	// references into the block's segments. The directory is decoded
	// and fully validated (shape vs declared blob length, segment
	// cover, centroid tables) before any blob slice or mapping is
	// constructed; then the alignment pad is consumed and checked, and
	// the blob either decodes onto the heap (CRC-verified) or is
	// mmap'd at its recorded offset — O(1) in the vector count.
	var store *vecstore.Store
	if err := decodeSection(secVecs, secs, func(d *snap.Decoder) error {
		dir, derr := vecstore.DecodeDirectory(d)
		if derr != nil {
			return derr
		}
		blobOff := int64(snapHeaderLen) + sr.Consumed()
		pad := vecstore.PadTo(blobOff)
		if pad > 0 {
			var padBuf [64]byte
			if _, rerr := io.ReadFull(r, padBuf[:pad]); rerr != nil {
				return fmt.Errorf("%w: short vector-blob padding: %v", ErrCorruptSnapshot, rerr)
			}
			for _, pb := range padBuf[:pad] {
				if pb != 0 {
					return fmt.Errorf("%w: nonzero vector-blob padding", ErrCorruptSnapshot)
				}
			}
		}
		if blobFile != nil {
			store, derr = dir.MmapBlob(blobFile, blobOff+int64(pad))
			if derr != nil {
				return derr
			}
			// The mmap path never streams the blob through r, so the
			// reader's trailing-bytes check cannot run; the equivalent
			// guarantee is that the file ends exactly where the blob does.
			fi, serr := blobFile.Stat()
			if serr != nil {
				return serr
			}
			if want := uint64(blobOff) + uint64(pad) + dir.BlobLen; uint64(fi.Size()) != want {
				return fmt.Errorf("%w: %d trailing bytes after vector blob", ErrCorruptSnapshot, uint64(fi.Size())-want)
			}
			return nil
		}
		store, derr = dir.ReadBlob(r)
		return derr
	}); err != nil {
		return nil, err
	}
	if blobFile == nil {
		if err := sr.Close(); err != nil {
			return nil, err
		}
	}

	// Build options decode inline: they govern the rebuild stages.
	bopts := Options{}
	if err := decodeSection(secOptions, secs, func(d *snap.Decoder) error {
		bopts.EmbeddingDim = int(d.U32())
		bopts.Seed = d.I64()
		bopts.MinJoinCardinality = int(d.U32())
		bopts.ContextWeight = d.F64()
		bopts.OrgFanout = int(d.U32())
		bopts.SkipOrganization = d.Bool()
		bopts.SkipFuzzy = d.Bool()
		bopts.SkipGraph = d.Bool()
		bopts.VecCentroids = int(d.I64())
		return d.Err()
	}); err != nil {
		return nil, err
	}
	bopts.Parallelism = parallel.Resolve(opts.Parallelism)
	bopts.QueryParallelism = parallel.Resolve(opts.QueryParallelism)
	bopts.VecNProbe = opts.VecNProbe
	bopts.VecMode = opts.VecMode

	s := &System{Vecs: store}

	// Meta: the generation hash this snapshot's table membership and
	// content pin; delta chains validate against it and the serving
	// tier reports it.
	if err := decodeSection(secMeta, secs, func(d *snap.Decoder) error {
		gen := d.U64()
		ids := d.Strs()
		hashes := d.U64s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(hashes) != len(ids) {
			return fmt.Errorf("%w: meta has %d content hashes for %d table IDs", ErrCorruptSnapshot, len(hashes), len(ids))
		}
		if want := snap.HashTables(ids, hashes); gen != want {
			return fmt.Errorf("%w: meta generation %016x does not hash its table set (%016x)", ErrCorruptSnapshot, gen, want)
		}
		s.Lineage = &Lineage{BaseGen: gen, Gen: gen, TableIDs: ids, TableHashes: hashes}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2a: the foundation sections — everything later decodes
	// against the catalog, model, KB, and dictionary, so this wave runs
	// first; its members are mutually independent.
	g := newDecodeGroup(bopts.Parallelism > 1)
	g.run(secCatalog, secs, func(d *snap.Decoder) error {
		var derr error
		s.Catalog, derr = lake.DecodeSnapshot(d)
		return derr
	})
	mv, ok := store.View("model")
	if !ok {
		return nil, fmt.Errorf("%w: vector directory has no model segment", ErrCorruptSnapshot)
	}
	g.run(secModel, secs, func(d *snap.Decoder) error {
		var derr error
		s.Model, derr = embedding.DecodeSnapshot(d, mv.Vec, mv.Len())
		return derr
	})
	g.run(secKB, secs, func(d *snap.Decoder) error {
		if !d.Bool() {
			return d.Err()
		}
		var derr error
		s.KB, derr = kb.DecodeSnapshot(d)
		return derr
	})
	g.run(secDict, secs, func(d *snap.Decoder) error {
		var derr error
		s.Dict, derr = dict.DecodeSnapshot(d)
		return derr
	})
	g.run(secKeyword, secs, func(d *snap.Decoder) error {
		var derr error
		s.Keyword, derr = keyword.DecodeIndexSnapshot(d)
		return derr
	})
	g.run(secValues, secs, func(d *snap.Decoder) error {
		var derr error
		s.Values, derr = keyword.DecodeValueIndexSnapshot(d)
		return derr
	})
	g.run(secCorr, secs, func(d *snap.Decoder) error {
		if !d.Bool() {
			return d.Err()
		}
		var derr error
		s.Corr, derr = join.DecodeCorrSnapshot(d)
		return derr
	})
	g.run(secOrg, secs, func(d *snap.Decoder) error {
		if !d.Bool() {
			return d.Err()
		}
		var derr error
		s.Org, derr = navigation.DecodeSnapshot(d)
		return derr
	})
	g.run(secGraph, secs, func(d *snap.Decoder) error {
		if !d.Bool() {
			return d.Err()
		}
		var derr error
		s.Graph, derr = aurum.DecodeSnapshot(d)
		return derr
	})
	g.run(secStats, secs, func(d *snap.Decoder) error {
		var derr error
		s.Stats, derr = DecodeCatalogStatsSnapshot(d)
		return derr
	})
	if err := g.wait(); err != nil {
		return nil, err
	}
	bopts.KB = s.KB
	s.buildOpts = bopts
	lookup := s.Catalog.Table
	tables := s.Catalog.Tables()
	stats := newBuildStats(bopts.Parallelism)

	// Phase 2b: the search engines, each depending only on phase-2a
	// results, plus the rebuild-on-load stages (profiles, entities,
	// fuzzy) — cheap deterministic functions of the loaded catalog,
	// model, and dictionary that are not worth serializing.
	g = newDecodeGroup(bopts.Parallelism > 1)
	g.run(secJoin, secs, func(d *snap.Decoder) error {
		eng, derr := join.DecodeEngineSnapshot(d, s.Dict, bopts.Parallelism)
		if derr != nil {
			return derr
		}
		eng.QueryParallelism = bopts.QueryParallelism
		s.Join = eng
		return nil
	})
	g.run(secMate, secs, func(d *snap.Decoder) error {
		var derr error
		s.Mate, derr = join.DecodeMateSnapshot(d, lookup)
		return derr
	})
	g.run(secTUS, secs, func(d *snap.Decoder) error {
		tus, derr := union.DecodeTUSSnapshot(d, union.TUSConfig{Model: s.Model, KB: s.KB, Dict: s.Dict}, lookup)
		if derr != nil {
			return derr
		}
		tus.QueryParallelism = bopts.QueryParallelism
		s.TUS = tus
		return nil
	})
	g.run(secSantos, secs, func(d *snap.Decoder) error {
		santos, derr := union.DecodeSantosSnapshot(d, s.KB, lookup)
		if derr != nil {
			return derr
		}
		santos.QueryParallelism = bopts.QueryParallelism
		s.Santos = santos
		return nil
	})
	g.run(secD3L, secs, func(d *snap.Decoder) error {
		var derr error
		s.D3L, derr = union.DecodeD3LSnapshot(d, s.Model, lookup)
		return derr
	})
	sv, _ := store.View("starmie")
	g.run(secStarmie, secs, func(d *snap.Decoder) error {
		ix, derr := starmie.DecodeSnapshot(d, s.Model, sv)
		if derr != nil {
			return derr
		}
		ix.SetNProbe(bopts.VecNProbe)
		s.Starmie = ix
		return nil
	})
	g.do(func() error {
		return stats.time(stageProfiles, func() (int, error) {
			s.Profiles = profile.NewIndexN(tables, bopts.Parallelism)
			return s.Profiles.Len(), nil
		})
	})
	g.do(func() error {
		return stats.time(stageEntities, func() (int, error) {
			s.Entities = apps.NewEntityAugmenter(tables)
			return len(tables), nil
		})
	})
	if bopts.SkipFuzzy {
		stats.skip(stageFuzzy)
	} else {
		g.do(func() error {
			return stats.time(stageFuzzy, func() (int, error) {
				return buildFuzzy(s, tables, bopts)
			})
		})
	}
	if err := g.wait(); err != nil {
		return nil, err
	}

	for _, st := range []int{stageModel, stageDict, stageKeyword, stageJoin,
		stageCorr, stageMate, stageTUS, stageSantos, stageD3L, stageStarmie,
		stageStats, stageVecs} {
		stats.Stages[st].Items = -1 // loaded from snapshot, not rebuilt
	}
	if bopts.SkipOrganization {
		stats.skip(stageOrg)
	}
	if bopts.SkipGraph {
		stats.skip(stageGraph)
	}
	stats.Total = time.Since(start)
	s.BuildStats = stats
	return s, nil
}

// sortedTableIDs returns the catalog's table IDs in sorted order —
// the canonical order generation hashes are computed over.
func sortedTableIDs(c *lake.Catalog) []string {
	tables := c.Tables()
	ids := make([]string, len(tables))
	for i, t := range tables {
		ids[i] = t.ID
	}
	sort.Strings(ids)
	return ids
}

// contentHashes returns each table's content hash, aligned with ids.
func contentHashes(c *lake.Catalog, ids []string) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = c.Table(id).ContentHash()
	}
	return out
}

// decodeSection runs fn over one deferred section payload and applies
// the full-consumption check, wrapping failures with the section id.
func decodeSection(id uint16, secs map[uint16]*snap.Decoder, fn func(*snap.Decoder) error) error {
	d := secs[id]
	if err := fn(d); err != nil {
		return fmt.Errorf("section %d: %w", id, err)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("section %d: %w", id, err)
	}
	return nil
}

// decodeGroup runs decode tasks, concurrently when parallel (they are
// bounded in number, so no worker pool), and keeps the first error.
type decodeGroup struct {
	parallel bool
	wg       sync.WaitGroup
	mu       sync.Mutex
	err      error
}

func newDecodeGroup(parallel bool) *decodeGroup {
	return &decodeGroup{parallel: parallel}
}

func (g *decodeGroup) do(fn func() error) {
	if !g.parallel {
		if g.err == nil {
			if err := fn(); err != nil {
				g.setErr(err)
			}
		}
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.setErr(err)
		}
	}()
}

func (g *decodeGroup) run(id uint16, secs map[uint16]*snap.Decoder, fn func(*snap.Decoder) error) {
	g.do(func() error { return decodeSection(id, secs, fn) })
}

func (g *decodeGroup) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

func (g *decodeGroup) wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// SaveFile writes the snapshot to a file, buffered; the file is
// created (or truncated) and synced before return.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := s.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads a snapshot from a file written by SaveFile. The
// vector blob is materialized per opts.VecMode: "auto" (or empty)
// memory-maps it where supported and falls back to a heap read,
// "mmap" requires the mapping, "heap" forces the portable read.
// Mapped pages survive the file handle: they stay valid for the life
// of the process and are shared between replicas by the page cache.
func LoadFile(path string, opts Options) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var blobFile *os.File
	switch opts.VecMode {
	case "", "auto":
		if vecstore.MmapSupported() {
			blobFile = f
		}
	case "heap":
	case "mmap":
		if !vecstore.MmapSupported() {
			return nil, fmt.Errorf("core: VecMode \"mmap\": not supported on this platform")
		}
		blobFile = f
	default:
		return nil, fmt.Errorf("core: unknown VecMode %q (want auto, heap, or mmap)", opts.VecMode)
	}
	return load(bufio.NewReaderSize(f, 1<<20), blobFile, opts)
}
