package apps

import (
	"fmt"

	"tablehound/internal/table"
	"tablehound/internal/union"
)

// TrainingSetResult is the outcome of training-set discovery.
type TrainingSetResult struct {
	// Combined is the seed table extended with harvested rows.
	Combined *table.Table
	// Sources lists the lake tables rows were harvested from.
	Sources []string
	// RowsAdded counts harvested rows.
	RowsAdded int
}

// tableSearcher is the slice of union search the harvester needs.
type tableSearcher interface {
	Search(query *table.Table, k int, m union.Measure) ([]union.Result, error)
}

// DiscoverTrainingSet grows a labeled seed table with rows from
// unionable lake tables (Section 2.7: data lakes as a source of
// training data). Lake tables are retrieved with TUS, their columns
// aligned to the seed by name, and rows appended. minScore gates how
// unionable a source must be.
func DiscoverTrainingSet(seed *table.Table, tus tableSearcher, lookup func(string) *table.Table, k int, measure union.Measure, minScore float64) (*TrainingSetResult, error) {
	res, err := tus.Search(seed, k, measure)
	if err != nil {
		return nil, err
	}
	header := seed.Header()
	vals := make([][]string, len(header))
	for i, c := range seed.Columns {
		vals[i] = append(vals[i], c.Values...)
	}
	out := &TrainingSetResult{}
	for _, r := range res {
		if r.Score < minScore {
			continue
		}
		src := lookup(r.TableID)
		if src == nil {
			continue
		}
		idx := make([]int, len(header))
		usable := 0
		for i, h := range header {
			idx[i] = src.ColumnIndex(h)
			if idx[i] >= 0 {
				usable++
			}
		}
		// Require alignment on most of the schema; harvesting rows
		// with mostly missing cells hurts more than it helps.
		if usable*2 < len(header) {
			continue
		}
		for row := 0; row < src.NumRows(); row++ {
			for i := range header {
				if idx[i] >= 0 {
					vals[i] = append(vals[i], src.Columns[idx[i]].Values[row])
				} else {
					vals[i] = append(vals[i], "")
				}
			}
			out.RowsAdded++
		}
		out.Sources = append(out.Sources, r.TableID)
	}
	cols := make([]*table.Column, len(header))
	for i, h := range header {
		cols[i] = table.NewColumn(h, vals[i])
	}
	combined, err := table.New(seed.ID+"_extended", fmt.Sprintf("%s (+%d rows)", seed.Name, out.RowsAdded), cols)
	if err != nil {
		return nil, err
	}
	out.Combined = combined
	return out, nil
}
