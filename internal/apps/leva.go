package apps

import (
	"tablehound/internal/embedding"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// RelationalEmbedding implements the Leva idea (Zhao & Fernandez,
// SIGMOD 2022): learn entity representations from the relational
// structure around them — every row an entity appears in, across all
// its tables — and hand those vectors to a downstream model as
// features. Where ARDA joins in explicit numeric columns, relational
// embeddings capture categorical and cross-table signal implicitly.
//
// keyColumn names the entity column expected in each table; tables
// without it contribute nothing. Each row becomes one training
// context containing the entity and its co-occurring cell values.
func RelationalEmbedding(tables []*table.Table, keyColumn string, dim int, seed uint64) *EntityVectors {
	var contexts [][]string
	for _, t := range tables {
		ki := t.ColumnIndex(keyColumn)
		if ki < 0 {
			continue
		}
		for r := 0; r < t.NumRows(); r++ {
			e := tokenize.Normalize(t.Columns[ki].Values[r])
			if e == "" {
				continue
			}
			ctx := []string{e}
			for ci, c := range t.Columns {
				if ci == ki {
					continue
				}
				v := tokenize.Normalize(c.Values[r])
				if v != "" {
					ctx = append(ctx, v)
				}
			}
			if len(ctx) > 1 {
				contexts = append(contexts, ctx)
			}
		}
	}
	model := embedding.Train(contexts, embedding.Config{Dim: dim, Seed: seed})
	return &EntityVectors{model: model, dim: dim}
}

// EntityVectors exposes the learned entity representations.
type EntityVectors struct {
	model *embedding.Model
	dim   int
}

// Dim returns the vector dimension.
func (ev *EntityVectors) Dim() int { return ev.dim }

// Vector returns the entity's representation (char-gram fallback for
// unseen entities, as in the embedding package).
func (ev *EntityVectors) Vector(entity string) embedding.Vector {
	return ev.model.ValueVector(entity)
}

// FeatureMatrix builds a row-aligned feature matrix for the given
// entity keys, ready for FitRidge: one row per key, dim columns.
func (ev *EntityVectors) FeatureMatrix(keys []string) [][]float64 {
	out := make([][]float64, len(keys))
	for i, k := range keys {
		v := ev.Vector(k)
		row := make([]float64, ev.dim)
		for j, x := range v {
			row[j] = float64(x)
		}
		out[i] = row
	}
	return out
}
