package apps

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tablehound/internal/join"
	"tablehound/internal/kb"
	"tablehound/internal/table"
)

// augmentFixture builds a base table whose target is driven by a
// feature that lives in a separate lake table joined by key.
func augmentFixture(n int, seed int64) (base, lakeTbl, noiseTbl *table.Table) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	target := make([]string, n)
	feature := make([]string, n)
	noisef := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("entity_%04d", i)
		f := rng.NormFloat64() * 10
		feature[i] = fmt.Sprintf("%.3f", f)
		target[i] = fmt.Sprintf("%.3f", 3*f+rng.NormFloat64())
		noisef[i] = fmt.Sprintf("%.3f", rng.NormFloat64())
	}
	base = table.MustNew("base", "base", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("target", target),
	})
	lakeTbl = table.MustNew("lakefeat", "lake features", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("signal", feature),
		table.NewColumn("noise", noisef),
	})
	// A joinable table with no useful numeric signal.
	noiseTbl = table.MustNew("lakenoise", "lake noise", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("junk", noisef),
	})
	return base, lakeTbl, noiseTbl
}

func buildAugmenter(t *testing.T, tables ...*table.Table) *Augmenter {
	t.Helper()
	b := join.NewBuilder(2)
	byID := map[string]*table.Table{}
	for _, tbl := range tables {
		b.AddTable(tbl)
		byID[tbl.ID] = tbl
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return NewAugmenter(e, func(id string) *table.Table { return byID[id] })
}

func TestAugmenterFindsSignalFeature(t *testing.T) {
	base, lakeTbl, noiseTbl := augmentFixture(200, 1)
	a := buildAugmenter(t, base, lakeTbl, noiseTbl)
	feats, err := a.Discover(base, "id", "target", 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features discovered")
	}
	if feats[0].Source != "lakefeat.signal" {
		t.Errorf("top feature = %s, want lakefeat.signal", feats[0].Source)
	}
	if feats[0].Score < 0.9 {
		t.Errorf("signal score = %v", feats[0].Score)
	}
	if feats[0].Coverage < 0.99 {
		t.Errorf("coverage = %v", feats[0].Coverage)
	}
}

func TestAugmentImprovesDownstreamModel(t *testing.T) {
	base, lakeTbl, noiseTbl := augmentFixture(300, 2)
	a := buildAugmenter(t, base, lakeTbl, noiseTbl)
	feats, err := a.Discover(base, "id", "target", 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := base.Column("target").Numbers()
	// Baseline: intercept-only model.
	baseX := make([][]float64, len(y))
	for i := range baseX {
		baseX[i] = []float64{}
	}
	baseModel := FitRidge(baseX, y, 0.01, 100)
	baseRMSE := baseModel.RMSE(baseX, y)
	// Augmented: discovered features.
	augX := make([][]float64, len(y))
	for i := range augX {
		augX[i] = make([]float64, len(feats))
		for j, f := range feats {
			augX[i][j] = f.Values[i]
		}
	}
	augModel := FitRidge(augX, y, 0.01, 300)
	augRMSE := augModel.RMSE(augX, y)
	if math.IsNaN(augRMSE) || augRMSE > baseRMSE*0.5 {
		t.Errorf("augmented RMSE %.3f should be well below baseline %.3f", augRMSE, baseRMSE)
	}
}

func TestApplyAugmentation(t *testing.T) {
	base, lakeTbl, _ := augmentFixture(50, 3)
	a := buildAugmenter(t, base, lakeTbl)
	feats, err := a.Discover(base, "id", "target", 1, 0.5)
	if err != nil || len(feats) == 0 {
		t.Fatal(err, feats)
	}
	aug, err := Apply(base, feats)
	if err != nil {
		t.Fatal(err)
	}
	if aug.NumCols() != base.NumCols()+1 || aug.NumRows() != base.NumRows() {
		t.Errorf("augmented dims %dx%d", aug.NumRows(), aug.NumCols())
	}
	// Misaligned feature is rejected.
	bad := Feature{Source: "x", Values: []float64{1}}
	if _, err := Apply(base, []Feature{bad}); err == nil {
		t.Error("misaligned feature should fail")
	}
}

func TestAugmenterErrors(t *testing.T) {
	base, lakeTbl, _ := augmentFixture(20, 4)
	a := buildAugmenter(t, base, lakeTbl)
	if _, err := a.Discover(base, "nope", "target", 1, 0); err == nil {
		t.Error("missing key column should fail")
	}
	if _, err := a.Discover(base, "id", "nope", 1, 0); err == nil {
		t.Error("missing target column should fail")
	}
}

func TestRidgeRecoversLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = 2*a - 3*b + 1
	}
	m := FitRidge(x, y, 0.001, 500)
	if math.Abs(m.Weights[0]-2) > 0.2 || math.Abs(m.Weights[1]+3) > 0.2 {
		t.Errorf("weights = %v, want ~[2 -3 1]", m.Weights)
	}
	if rmse := m.RMSE(x, y); rmse > 0.5 {
		t.Errorf("RMSE = %v", rmse)
	}
	// Degenerate inputs do not panic.
	if FitRidge(nil, nil, 0.1, 10).Predict([]float64{1}) != 0 {
		t.Error("empty model should predict 0")
	}
}

func TestDetectHomographs(t *testing.T) {
	// "mercury" appears in planets and elements; all other values are
	// domain-exclusive.
	cols := []ValueColumn{
		{Key: "p1", Values: []string{"mercury", "venus", "mars", "jupiter"}},
		{Key: "p2", Values: []string{"venus", "mars", "saturn", "mercury"}},
		{Key: "e1", Values: []string{"mercury", "iron", "gold", "oxygen"}},
		{Key: "e2", Values: []string{"gold", "iron", "helium", "mercury"}},
	}
	res := DetectHomographs(cols, 3)
	if len(res) == 0 || res[0].Value != "mercury" {
		t.Fatalf("top homograph = %+v, want mercury", res)
	}
	// All others should score strictly lower.
	for _, r := range res[1:] {
		if r.Score >= res[0].Score {
			t.Errorf("value %q ties homograph", r.Value)
		}
	}
}

func TestStitchGroupsBySchema(t *testing.T) {
	t1 := table.MustNew("a1", "cities part 1", []*table.Column{
		table.NewColumn("city", []string{"boston", "nyc"}),
		table.NewColumn("state", []string{"ma", "ny"}),
	})
	t2 := table.MustNew("a2", "cities part 2", []*table.Column{
		table.NewColumn("state", []string{"ca", "ma"}), // different order
		table.NewColumn("city", []string{"la", "boston"}),
	})
	t3 := table.MustNew("b1", "other", []*table.Column{
		table.NewColumn("x", []string{"1"}),
	})
	out := Stitch([]*table.Table{t1, t2, t3})
	if len(out) != 2 {
		t.Fatalf("stitched groups = %d, want 2", len(out))
	}
	var stitched *table.Table
	for _, o := range out {
		if o.NumCols() == 2 {
			stitched = o
		}
	}
	if stitched == nil {
		t.Fatal("no stitched city table")
	}
	// 2 + 2 rows with ("boston","ma") deduplicated = 3.
	if stitched.NumRows() != 3 {
		t.Errorf("stitched rows = %d, want 3", stitched.NumRows())
	}
}

func TestCompleteKBFromStitchedTables(t *testing.T) {
	k := kb.New()
	// KB knows capitalOf for 3 of 6 pairs.
	for i := 0; i < 3; i++ {
		k.AddFact(fmt.Sprintf("city%d", i), "capitalOf", fmt.Sprintf("country%d", i))
	}
	cities := make([]string, 6)
	countries := make([]string, 6)
	for i := range cities {
		cities[i] = fmt.Sprintf("city%d", i)
		countries[i] = fmt.Sprintf("country%d", i)
	}
	tbl := table.MustNew("caps", "capitals", []*table.Column{
		table.NewColumn("city", cities),
		table.NewColumn("country", countries),
	})
	added := CompleteKB(k, []*table.Table{tbl}, "capitalOf", 0.4)
	if added != 3 {
		t.Errorf("added = %d, want 3", added)
	}
	if len(k.Predicates("city5", "country5")) == 0 {
		t.Error("new fact not asserted")
	}
	// Low-support tables contribute nothing.
	junk := table.MustNew("junk", "junk", []*table.Column{
		table.NewColumn("a", []string{"p", "q", "r", "s"}),
		table.NewColumn("b", []string{"w", "x", "y", "z"}),
	})
	if added := CompleteKB(k, []*table.Table{junk}, "capitalOf", 0.4); added != 0 {
		t.Errorf("junk table added %d facts", added)
	}
}
