package apps

import (
	"sort"
	"strings"

	"tablehound/internal/kb"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Stitch groups tables with the same schema signature (the sorted set
// of normalized column names) and unions each group's rows into one
// stitched table — Lehmberg & Bizer's preprocessing that makes web
// tables useful for matching and KB completion. Tables with unique
// schemas pass through unchanged.
func Stitch(tables []*table.Table) []*table.Table {
	groups := make(map[string][]*table.Table)
	var sigs []string
	for _, t := range tables {
		sig := schemaSignature(t)
		if _, ok := groups[sig]; !ok {
			sigs = append(sigs, sig)
		}
		groups[sig] = append(groups[sig], t)
	}
	sort.Strings(sigs)
	var out []*table.Table
	for _, sig := range sigs {
		group := groups[sig]
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		out = append(out, unionRows(group))
	}
	return out
}

func schemaSignature(t *table.Table) string {
	hs := make([]string, 0, t.NumCols())
	for _, h := range t.Header() {
		hs = append(hs, tokenize.Normalize(strings.ReplaceAll(h, "_", " ")))
	}
	sort.Strings(hs)
	return strings.Join(hs, "\x1f")
}

// union concatenates the groups' rows column-by-column (columns
// aligned by name; order from the first table), deduplicating rows.
func unionRows(group []*table.Table) *table.Table {
	first := group[0]
	header := first.Header()
	vals := make([][]string, len(header))
	seen := make(map[string]bool)
	for _, t := range group {
		idx := make([]int, len(header))
		for i, h := range header {
			idx[i] = t.ColumnIndex(h)
		}
		for r := 0; r < t.NumRows(); r++ {
			row := make([]string, len(header))
			for i, ci := range idx {
				if ci >= 0 {
					row[i] = t.Columns[ci].Values[r]
				}
			}
			key := strings.Join(row, "\x1f")
			if seen[key] {
				continue
			}
			seen[key] = true
			for i := range header {
				vals[i] = append(vals[i], row[i])
			}
		}
	}
	cols := make([]*table.Column, len(header))
	for i, h := range header {
		cols[i] = table.NewColumn(h, vals[i])
	}
	ids := make([]string, len(group))
	for i, t := range group {
		ids[i] = t.ID
	}
	sort.Strings(ids)
	return table.MustNew("stitched_"+ids[0], first.Name+" (stitched)", cols)
}

// CompleteKB mines new facts from tables for a predicate the KB
// already partially knows. For each table and adjacent column pair,
// if at least minSupport of the pair's value pairs carry `pred` in the
// KB, the remaining pairs are proposed as new `pred` facts. Returns
// the number of facts added. Stitching tables first consolidates
// evidence that is too thin per-shard — the Lehmberg & Bizer result.
func CompleteKB(k *kb.KB, tables []*table.Table, pred string, minSupport float64) int {
	added := 0
	for _, t := range tables {
		for a := 0; a+1 < t.NumCols(); a++ {
			b := a + 1
			var pairs [][2]string
			seen := make(map[[2]string]bool)
			for r := 0; r < t.NumRows(); r++ {
				s := tokenize.Normalize(t.Columns[a].Values[r])
				o := tokenize.Normalize(t.Columns[b].Values[r])
				if s == "" || o == "" {
					continue
				}
				p := [2]string{s, o}
				if !seen[p] {
					seen[p] = true
					pairs = append(pairs, p)
				}
			}
			if len(pairs) < 3 {
				continue
			}
			known := 0
			for _, p := range pairs {
				for _, kp := range k.Predicates(p[0], p[1]) {
					if kp == pred {
						known++
						break
					}
				}
			}
			if float64(known)/float64(len(pairs)) < minSupport || known == len(pairs) {
				continue
			}
			for _, p := range pairs {
				has := false
				for _, kp := range k.Predicates(p[0], p[1]) {
					if kp == pred {
						has = true
						break
					}
				}
				if !has {
					k.AddFact(p[0], pred, p[1])
					added++
				}
			}
		}
	}
	return added
}
