package apps

import (
	"sort"

	"tablehound/internal/graph"
	"tablehound/internal/tokenize"
)

// ScoredValue is one value ranked by homograph likelihood.
type ScoredValue struct {
	Value string
	Score float64
}

// ValueColumn pairs a column key with its values, the input to
// homograph detection.
type ValueColumn struct {
	Key    string
	Values []string
}

// DetectHomographs ranks data-lake values by betweenness centrality on
// the value-column bipartite graph (DomainNet, Leventidis et al. EDBT
// 2021). A homograph — one surface form used by several semantic
// domains — bridges otherwise disconnected column neighborhoods and
// therefore carries disproportionate shortest-path traffic. Returns
// the topK values with non-zero score, best first.
func DetectHomographs(cols []ValueColumn, topK int) []ScoredValue {
	// Node IDs: values then columns.
	valID := make(map[string]int32)
	var values []string
	for _, c := range cols {
		for _, v := range tokenize.NormalizeSet(c.Values) {
			if _, ok := valID[v]; !ok {
				valID[v] = int32(len(values))
				values = append(values, v)
			}
		}
	}
	n := len(values) + len(cols)
	adj := make(graph.Adjacency, n)
	for ci, c := range cols {
		cid := int32(len(values) + ci)
		for _, v := range tokenize.NormalizeSet(c.Values) {
			vid := valID[v]
			adj[vid] = append(adj[vid], cid)
			adj[cid] = append(adj[cid], vid)
		}
	}
	bc := graph.BetweennessCentrality(adj)
	out := make([]ScoredValue, 0, len(values))
	for i, v := range values {
		if bc[i] > 0 {
			out = append(out, ScoredValue{Value: v, Score: bc[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Value < out[j].Value
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}
