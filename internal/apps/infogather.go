package apps

import (
	"sort"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// AttrValue is one augmented attribute value for an entity.
type AttrValue struct {
	Value      string
	Confidence float64  // weighted vote share in (0, 1]
	Sources    []string // table IDs that voted for the value
}

// EntityAugmenter implements InfoGather-style entity augmentation
// (Yakout et al., SIGMOD 2012): given entities and a few example
// (entity, attribute value) pairs, find lake tables whose binary
// relations are consistent with the examples and propagate the
// attribute to the remaining entities by weighted voting — "holistic
// matching" in the original's terms, with each table's vote weighted
// by how many examples it confirms.
type EntityAugmenter struct {
	tables []*table.Table
}

// NewEntityAugmenter indexes the lake tables for augmentation.
func NewEntityAugmenter(tables []*table.Table) *EntityAugmenter {
	return &EntityAugmenter{tables: tables}
}

// relation is one (entity column, attribute column) mapping in a
// table, materialized as entity -> value (first occurrence wins).
type relation struct {
	tableID string
	mapping map[string]string
}

// relations enumerates all ordered column pairs of every table.
func (a *EntityAugmenter) relations() []relation {
	var out []relation
	for _, t := range a.tables {
		for i := range t.Columns {
			for j := range t.Columns {
				if i == j {
					continue
				}
				m := make(map[string]string)
				for r := 0; r < t.NumRows(); r++ {
					e := tokenize.Normalize(t.Columns[i].Values[r])
					v := tokenize.Normalize(t.Columns[j].Values[r])
					if e == "" || v == "" {
						continue
					}
					if _, dup := m[e]; !dup {
						m[e] = v
					}
				}
				if len(m) > 0 {
					out = append(out, relation{tableID: t.ID, mapping: m})
				}
			}
		}
	}
	return out
}

// AugmentByExample fills the attribute for every entity it can, given
// example pairs. minSupport is the fraction of examples a relation
// must confirm to vote directly (the precision knob; 0.5 is a sound
// default). Relations that touch no example can still vote through
// InfoGather's holistic matching: trust propagates from a directly
// confirmed relation to relations asserting the same (entity, value)
// pairs, scaled by their pair overlap — this is what lets a table
// covering only un-exemplified entities contribute.
func (a *EntityAugmenter) AugmentByExample(entities []string, examples map[string]string, minSupport float64) map[string]AttrValue {
	normExamples := make(map[string]string, len(examples))
	for e, v := range examples {
		normExamples[tokenize.Normalize(e)] = tokenize.Normalize(v)
	}
	if len(normExamples) == 0 {
		return nil
	}
	// Direct scoring: example agreement.
	type scored struct {
		rel   relation
		score float64
	}
	rels := a.relations()
	var voters []scored
	var unscored []relation
	for _, rel := range rels {
		agree, disagree := 0, 0
		for e, v := range normExamples {
			got, ok := rel.mapping[e]
			if !ok {
				continue
			}
			if got == v {
				agree++
			} else {
				disagree++
			}
		}
		if disagree > agree {
			continue // contradicts the examples: never trust
		}
		if agree == 0 {
			unscored = append(unscored, rel)
			continue
		}
		support := float64(agree) / float64(len(normExamples))
		if support >= minSupport {
			voters = append(voters, scored{rel, support})
		}
	}
	// Holistic propagation: an unscored relation inherits trust from
	// the direct voter it overlaps most (scaled by pair agreement).
	for _, rel := range unscored {
		best := 0.0
		for _, v := range voters {
			if v.score < minSupport {
				continue
			}
			if s := v.score * pairOverlap(rel, v.rel); s > best {
				best = s
			}
		}
		if best >= minSupport/2 {
			voters = append(voters, scored{rel, best})
		}
	}
	// Weighted voting per entity.
	out := make(map[string]AttrValue)
	for _, raw := range entities {
		e := tokenize.Normalize(raw)
		if _, isExample := normExamples[e]; isExample {
			continue
		}
		votes := make(map[string]float64)
		sources := make(map[string][]string)
		var total float64
		for _, v := range voters {
			val, ok := v.rel.mapping[e]
			if !ok {
				continue
			}
			votes[val] += v.score
			sources[val] = append(sources[val], v.rel.tableID)
			total += v.score
		}
		if total == 0 {
			continue
		}
		best, bestW := "", -1.0
		for val, w := range votes {
			if w > bestW || (w == bestW && val < best) {
				best, bestW = val, w
			}
		}
		src := dedupeSorted(sources[best])
		out[raw] = AttrValue{Value: best, Confidence: bestW / total, Sources: src}
	}
	return out
}

// AugmentByAttribute fills the attribute by header name instead of
// examples: relations whose attribute column name matches attrName
// (normalized) vote with uniform weight. This is InfoGather's
// augmentation-by-attribute-name operation.
func (a *EntityAugmenter) AugmentByAttribute(entities []string, entityCol, attrName string) map[string]AttrValue {
	wantE := tokenize.Normalize(entityCol)
	wantA := tokenize.Normalize(attrName)
	var voters []relation
	for _, t := range a.tables {
		var eIdx, aIdx = -1, -1
		for i, c := range t.Columns {
			switch tokenize.Normalize(c.Name) {
			case wantE:
				eIdx = i
			case wantA:
				aIdx = i
			}
		}
		if eIdx < 0 || aIdx < 0 {
			continue
		}
		m := make(map[string]string)
		for r := 0; r < t.NumRows(); r++ {
			e := tokenize.Normalize(t.Columns[eIdx].Values[r])
			v := tokenize.Normalize(t.Columns[aIdx].Values[r])
			if e != "" && v != "" {
				if _, dup := m[e]; !dup {
					m[e] = v
				}
			}
		}
		if len(m) > 0 {
			voters = append(voters, relation{tableID: t.ID, mapping: m})
		}
	}
	out := make(map[string]AttrValue)
	for _, raw := range entities {
		e := tokenize.Normalize(raw)
		votes := make(map[string]float64)
		sources := make(map[string][]string)
		var total float64
		for _, v := range voters {
			if val, ok := v.mapping[e]; ok {
				votes[val]++
				sources[val] = append(sources[val], v.tableID)
				total++
			}
		}
		if total == 0 {
			continue
		}
		best, bestW := "", -1.0
		for val, w := range votes {
			if w > bestW || (w == bestW && val < best) {
				best, bestW = val, w
			}
		}
		out[raw] = AttrValue{Value: best, Confidence: bestW / total, Sources: dedupeSorted(sources[best])}
	}
	return out
}

// pairOverlap is the fraction of the smaller relation's (entity,
// value) pairs asserted identically by the other.
func pairOverlap(a, b relation) float64 {
	small, big := a.mapping, b.mapping
	if len(big) < len(small) {
		small, big = big, small
	}
	if len(small) == 0 {
		return 0
	}
	n := 0
	for e, v := range small {
		if big[e] == v {
			n++
		}
	}
	return float64(n) / float64(len(small))
}

func dedupeSorted(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
