// Package apps implements the data-science applications of table
// discovery the tutorial surveys (Section 2.7): ARDA-style feature
// augmentation for machine learning, training-set discovery via union
// search, homograph detection over the lake's value graph (DomainNet),
// and table stitching for knowledge-base completion.
package apps

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tablehound/internal/join"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Feature is one augmentation feature discovered in the lake.
type Feature struct {
	// Source identifies the lake column ("tableID.column") providing
	// the feature values.
	Source string
	// Values are row-aligned with the base table (NaN when the join
	// key had no match).
	Values []float64
	// Score is the feature-selection score (absolute correlation with
	// the target on matched rows).
	Score float64
	// Coverage is the fraction of base rows with a join match.
	Coverage float64
}

// Augmenter performs ARDA-style automatic relational data
// augmentation: join the base table against lake tables discovered by
// joinable search, harvest their numeric columns as candidate
// features, and keep those that correlate with the prediction target.
type Augmenter struct {
	engine *join.Engine
	// lookup returns a lake table by ID.
	lookup func(id string) *table.Table
}

// NewAugmenter wires an augmenter over a join engine and a table
// resolver.
func NewAugmenter(engine *join.Engine, lookup func(id string) *table.Table) *Augmenter {
	return &Augmenter{engine: engine, lookup: lookup}
}

// Discover finds up to maxFeatures numeric features for the base
// table: key is the join column name, target the numeric prediction
// target column name. minCoverage drops features joining too few rows.
func (a *Augmenter) Discover(base *table.Table, key, target string, maxFeatures int, minCoverage float64) ([]Feature, error) {
	keyCol := base.Column(key)
	if keyCol == nil {
		return nil, fmt.Errorf("apps: base table has no column %q", key)
	}
	targetCol := base.Column(target)
	if targetCol == nil {
		return nil, fmt.Errorf("apps: base table has no column %q", target)
	}
	y := columnFloats(targetCol)
	// Joinable tables by key overlap.
	matches := a.engine.TopKOverlap(keyCol.Values, 20)
	var feats []Feature
	seenTables := make(map[string]bool)
	for _, m := range matches {
		tid, joinCol := table.SplitColumnKey(m.ColumnKey)
		if seenTables[tid] {
			continue
		}
		seenTables[tid] = true
		lakeTable := a.lookup(tid)
		if lakeTable == nil || lakeTable.ID == base.ID {
			continue
		}
		feats = append(feats, a.harvest(base, keyCol, y, lakeTable, joinCol, minCoverage)...)
	}
	sort.Slice(feats, func(i, j int) bool {
		if feats[i].Score != feats[j].Score {
			return feats[i].Score > feats[j].Score
		}
		return feats[i].Source < feats[j].Source
	})
	if len(feats) > maxFeatures {
		feats = feats[:maxFeatures]
	}
	return feats, nil
}

// harvest left-joins base to lakeTable on joinCol and extracts every
// numeric column as a candidate feature.
func (a *Augmenter) harvest(base *table.Table, keyCol *table.Column, y []float64, lakeTable *table.Table, joinCol string, minCoverage float64) []Feature {
	jc := lakeTable.Column(joinCol)
	if jc == nil {
		return nil
	}
	// Key -> first row index in the lake table.
	keyRow := make(map[string]int, jc.Len())
	for r, v := range jc.Values {
		n := tokenize.Normalize(v)
		if n == "" {
			continue
		}
		if _, dup := keyRow[n]; !dup {
			keyRow[n] = r
		}
	}
	var out []Feature
	for _, c := range lakeTable.Columns {
		if !c.Type.IsNumeric() {
			continue
		}
		vals := make([]float64, keyCol.Len())
		matched := 0
		var xs, ys []float64
		for r, kv := range keyCol.Values {
			vals[r] = math.NaN()
			lr, ok := keyRow[tokenize.Normalize(kv)]
			if !ok {
				continue
			}
			f, err := parseFloat(c.Values[lr])
			if err != nil {
				continue
			}
			vals[r] = f
			matched++
			if r < len(y) && !math.IsNaN(y[r]) {
				xs = append(xs, f)
				ys = append(ys, y[r])
			}
		}
		coverage := float64(matched) / float64(keyCol.Len())
		if coverage < minCoverage || len(xs) < 3 {
			continue
		}
		score := math.Abs(metrics.Pearson(xs, ys))
		out = append(out, Feature{
			Source:   table.ColumnKey(lakeTable.ID, c.Name),
			Values:   vals,
			Score:    score,
			Coverage: coverage,
		})
	}
	return out
}

// Apply appends the features to a copy of the base table (missing
// values become empty strings), returning the augmented table.
func Apply(base *table.Table, feats []Feature) (*table.Table, error) {
	cols := make([]*table.Column, 0, base.NumCols()+len(feats))
	cols = append(cols, base.Columns...)
	for i, f := range feats {
		if len(f.Values) != base.NumRows() {
			return nil, errors.New("apps: feature not row-aligned with base")
		}
		vals := make([]string, len(f.Values))
		for r, v := range f.Values {
			if !math.IsNaN(v) {
				vals[r] = fmt.Sprintf("%g", v)
			}
		}
		cols = append(cols, table.NewColumn(fmt.Sprintf("feat_%d_%s", i, f.Source), vals))
	}
	return table.New(base.ID+"_augmented", base.Name+" (augmented)", cols)
}

func columnFloats(c *table.Column) []float64 {
	out := make([]float64, c.Len())
	for i, v := range c.Values {
		f, err := parseFloat(v)
		if err != nil {
			out[i] = math.NaN()
			continue
		}
		out[i] = f
	}
	return out
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}
