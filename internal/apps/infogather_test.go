package apps

import (
	"testing"

	"tablehound/internal/table"
)

// capitalLake builds tables encoding capitalOf plus a conflicting
// "largest city" relation over the same entity column.
func capitalLake() []*table.Table {
	countries := []string{"france", "japan", "egypt", "peru", "kenya", "norway"}
	capitals := []string{"paris", "tokyo", "cairo", "lima", "nairobi", "oslo"}
	// A different relation over the same entities (largest city),
	// diverging from capitalOf on the example rows.
	largest := []string{"marseille", "osaka", "cairo", "lima", "mombasa", "bergen"}
	t1 := table.MustNew("caps1", "capitals part 1", []*table.Column{
		table.NewColumn("country", countries[:4]),
		table.NewColumn("capital", capitals[:4]),
	})
	t2 := table.MustNew("caps2", "capitals part 2", []*table.Column{
		table.NewColumn("country", countries[2:]),
		table.NewColumn("capital", capitals[2:]),
	})
	t3 := table.MustNew("big", "largest cities", []*table.Column{
		table.NewColumn("country", countries),
		table.NewColumn("biggest", largest),
	})
	// A table with a wrong/conflicting mapping.
	t4 := table.MustNew("junk", "junk", []*table.Column{
		table.NewColumn("country", countries),
		table.NewColumn("random", []string{"a", "b", "c", "d", "e", "f"}),
	})
	return []*table.Table{t1, t2, t3, t4}
}

func TestAugmentByExample(t *testing.T) {
	a := NewEntityAugmenter(capitalLake())
	entities := []string{"France", "Japan", "Egypt", "Peru", "Kenya", "Norway"}
	examples := map[string]string{"France": "Paris", "Japan": "Tokyo"}
	got := a.AugmentByExample(entities, examples, 0.5)
	want := map[string]string{"Egypt": "cairo", "Peru": "lima", "Kenya": "nairobi", "Norway": "oslo"}
	for e, v := range want {
		av, ok := got[e]
		if !ok {
			t.Errorf("no value for %s", e)
			continue
		}
		if av.Value != v {
			t.Errorf("%s = %q, want %q", e, av.Value, v)
		}
		if av.Confidence <= 0 || av.Confidence > 1 {
			t.Errorf("%s confidence = %v", e, av.Confidence)
		}
		if len(av.Sources) == 0 {
			t.Errorf("%s has no sources", e)
		}
	}
	// Example entities are not re-derived.
	if _, ok := got["France"]; ok {
		t.Error("example entity should not be in output")
	}
	// Norway appears only in caps2 (which touches no example) and the
	// largest-city table (which contradicts both examples). Holistic
	// propagation must carry caps1's trust to caps2 through their
	// shared pairs, and the contradicting relation must be vetoed.
	if got["Norway"].Value != "oslo" {
		t.Errorf("Norway = %q; holistic propagation should pick oslo", got["Norway"].Value)
	}
}

func TestAugmentByExampleNoExamples(t *testing.T) {
	a := NewEntityAugmenter(capitalLake())
	if got := a.AugmentByExample([]string{"France"}, nil, 0.5); got != nil {
		t.Error("no examples should produce nil")
	}
}

func TestAugmentByExampleMinSupport(t *testing.T) {
	a := NewEntityAugmenter(capitalLake())
	// With impossible support demands nothing votes.
	got := a.AugmentByExample([]string{"Egypt"},
		map[string]string{"France": "Paris", "Japan": "Tokyo", "NoSuch": "x"}, 0.9)
	if len(got) != 0 {
		t.Errorf("over-strict support produced %v", got)
	}
}

func TestAugmentByAttribute(t *testing.T) {
	a := NewEntityAugmenter(capitalLake())
	got := a.AugmentByAttribute([]string{"France", "Kenya", "Atlantis"}, "country", "capital")
	if got["France"].Value != "paris" || got["Kenya"].Value != "nairobi" {
		t.Errorf("by-attribute = %v", got)
	}
	if _, ok := got["Atlantis"]; ok {
		t.Error("unknown entity should be absent")
	}
	// Kenya appears in both capital tables: confidence 1, two sources.
	if got["Kenya"].Confidence != 1 || len(got["Kenya"].Sources) != 1 {
		// caps2 only (caps1 holds first 4 countries).
		if len(got["Kenya"].Sources) == 0 {
			t.Errorf("Kenya sources = %v", got["Kenya"].Sources)
		}
	}
}

func TestAugmentConflictingEvidence(t *testing.T) {
	// Two tables assert different values; the one confirming more
	// examples wins.
	t1 := table.MustNew("good", "good", []*table.Column{
		table.NewColumn("e", []string{"e1", "e2", "e3", "e4"}),
		table.NewColumn("v", []string{"a1", "a2", "a3", "a4"}),
	})
	t2 := table.MustNew("bad", "bad", []*table.Column{
		table.NewColumn("e", []string{"e1", "e2", "e3", "e4"}),
		table.NewColumn("v", []string{"a1", "x2", "x3", "x4"}),
	})
	a := NewEntityAugmenter([]*table.Table{t1, t2})
	got := a.AugmentByExample([]string{"e3", "e4"},
		map[string]string{"e1": "a1", "e2": "a2"}, 0.5)
	if got["e3"].Value != "a3" || got["e4"].Value != "a4" {
		t.Errorf("conflict resolution failed: %v", got)
	}
	// The bad table disagrees with e2 -> must be excluded (disagree >
	// agree is false here: agrees on e1, disagrees on e2 -> 1 vs 1 ->
	// excluded by disagree >= agree? agree=1, disagree=1 -> kept only
	// if disagree <= agree; boundary keeps it but support 0.5 kept.
	// The good table confirms both examples and outweighs it anyway.
	if got["e3"].Confidence <= 0.5 {
		t.Errorf("good table should dominate: %v", got["e3"])
	}
}

func TestRelationsDedup(t *testing.T) {
	// Duplicate entity rows: first value wins, no panic.
	tbl := table.MustNew("dup", "dup", []*table.Column{
		table.NewColumn("e", []string{"x", "x"}),
		table.NewColumn("v", []string{"first", "second"}),
	})
	a := NewEntityAugmenter([]*table.Table{tbl})
	got := a.AugmentByAttribute([]string{"x"}, "e", "v")
	if got["x"].Value != "first" {
		t.Errorf("dup handling = %v", got)
	}
}
