package apps

import (
	"fmt"
	"math"
	"testing"

	"tablehound/internal/embedding"
	"tablehound/internal/table"
)

// levaLake builds tables where an entity's hidden class is visible
// only through categorical co-occurrences: class-A entities appear
// with class-A attribute values across tables.
func levaLake(n int) ([]*table.Table, []string, []float64) {
	keys := make([]string, n)
	y := make([]float64, n)
	attr1 := make([]string, n)
	attr2 := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ent_%04d", i)
		class := i % 2
		y[i] = float64(class)
		attr1[i] = fmt.Sprintf("groupA_%d", class)   // class-determined
		attr2[i] = fmt.Sprintf("region_%d", class*3) // class-determined
	}
	t1 := table.MustNew("t1", "t1", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("grp", attr1),
	})
	t2 := table.MustNew("t2", "t2", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("region", attr2),
	})
	return []*table.Table{t1, t2}, keys, y
}

func TestRelationalEmbeddingSeparatesClasses(t *testing.T) {
	tables, keys, y := levaLake(200)
	ev := RelationalEmbedding(tables, "id", 32, 1)
	if ev.Dim() != 32 {
		t.Fatal("dim wrong")
	}
	// Same-class entities should be closer than cross-class ones.
	sameSim := embedding.Cosine(ev.Vector(keys[0]), ev.Vector(keys[2]))
	crossSim := embedding.Cosine(ev.Vector(keys[0]), ev.Vector(keys[1]))
	if sameSim <= crossSim {
		t.Errorf("same-class cos %v should exceed cross-class %v", sameSim, crossSim)
	}
	// A linear model on the embeddings should predict the class far
	// better than the intercept-only baseline.
	x := ev.FeatureMatrix(keys)
	split := len(keys) * 7 / 10
	m := FitRidge(x[:split], y[:split], 0.01, 300)
	rmse := m.RMSE(x[split:], y[split:])
	base := FitRidge(make([][]float64, split), y[:split], 0.01, 50)
	baseX := make([][]float64, len(keys)-split)
	for i := range baseX {
		baseX[i] = []float64{}
	}
	baseRMSE := base.RMSE(baseX, y[split:])
	if math.IsNaN(rmse) || rmse > baseRMSE*0.6 {
		t.Errorf("embedding RMSE %v should be well below baseline %v", rmse, baseRMSE)
	}
}

func TestRelationalEmbeddingSkipsKeylessTables(t *testing.T) {
	noKey := table.MustNew("x", "x", []*table.Column{
		table.NewColumn("other", []string{"a", "b"}),
	})
	ev := RelationalEmbedding([]*table.Table{noKey}, "id", 16, 1)
	// No contexts: vectors fall back to char-grams, still usable.
	v := ev.Vector("anything")
	if len(v) != 16 {
		t.Fatal("fallback vector wrong size")
	}
}
