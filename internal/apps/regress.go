package apps

import (
	"math"
)

// RidgeModel is a linear model fit with L2 regularization, used to
// quantify the downstream value of augmentation features (ARDA's
// evaluation loop: does adding the feature improve held-out error?).
type RidgeModel struct {
	Weights []float64 // includes bias as the last weight
}

// FitRidge fits y ~ X (rows = samples) with regularization lambda by
// gradient descent. Rows containing NaN are skipped. Features are
// standardized internally.
func FitRidge(x [][]float64, y []float64, lambda float64, epochs int) *RidgeModel {
	n := len(x)
	if n == 0 || len(y) < n {
		return &RidgeModel{}
	}
	d := len(x[0])
	mean, std := standardize(x, d)
	if epochs <= 0 {
		epochs = 200
	}
	w := make([]float64, d+1)
	// Full-batch gradient descent diverges when the step exceeds
	// 2/L(X'X); with standardized but possibly perfectly correlated
	// features L can reach d, so scale the step accordingly.
	lr := 1.0 / (1 + float64(d))
	for e := 0; e < epochs; e++ {
		grad := make([]float64, d+1)
		m := 0
		for i := 0; i < n; i++ {
			if rowHasNaN(x[i]) || math.IsNaN(y[i]) {
				continue
			}
			pred := w[d]
			for j := 0; j < d; j++ {
				pred += w[j] * norm(x[i][j], mean[j], std[j])
			}
			err := pred - y[i]
			for j := 0; j < d; j++ {
				grad[j] += err * norm(x[i][j], mean[j], std[j])
			}
			grad[d] += err
			m++
		}
		if m == 0 {
			break
		}
		for j := 0; j <= d; j++ {
			g := grad[j] / float64(m)
			if j < d {
				g += lambda * w[j]
			}
			w[j] -= lr * g
		}
	}
	// Fold standardization back into the weights for Predict.
	out := make([]float64, d+1)
	out[d] = w[d]
	for j := 0; j < d; j++ {
		out[j] = w[j] / std[j]
		out[d] -= w[j] * mean[j] / std[j]
	}
	return &RidgeModel{Weights: out}
}

// Predict evaluates the model on one row (NaN features contribute 0).
func (m *RidgeModel) Predict(row []float64) float64 {
	if len(m.Weights) == 0 {
		return 0
	}
	d := len(m.Weights) - 1
	pred := m.Weights[d]
	for j := 0; j < d && j < len(row); j++ {
		if !math.IsNaN(row[j]) {
			pred += m.Weights[j] * row[j]
		}
	}
	return pred
}

// RMSE computes root mean squared error on rows without NaN.
func (m *RidgeModel) RMSE(x [][]float64, y []float64) float64 {
	var se float64
	n := 0
	for i := range x {
		if rowHasNaN(x[i]) || i >= len(y) || math.IsNaN(y[i]) {
			continue
		}
		d := m.Predict(x[i]) - y[i]
		se += d * d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(se / float64(n))
}

func standardize(x [][]float64, d int) (mean, std []float64) {
	mean = make([]float64, d)
	std = make([]float64, d)
	cnt := make([]int, d)
	for i := range x {
		for j := 0; j < d; j++ {
			if !math.IsNaN(x[i][j]) {
				mean[j] += x[i][j]
				cnt[j]++
			}
		}
	}
	for j := 0; j < d; j++ {
		if cnt[j] > 0 {
			mean[j] /= float64(cnt[j])
		}
	}
	for i := range x {
		for j := 0; j < d; j++ {
			if !math.IsNaN(x[i][j]) {
				dd := x[i][j] - mean[j]
				std[j] += dd * dd
			}
		}
	}
	for j := 0; j < d; j++ {
		if cnt[j] > 1 {
			std[j] = math.Sqrt(std[j] / float64(cnt[j]-1))
		}
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return mean, std
}

func norm(v, mean, std float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return (v - mean) / std
}

func rowHasNaN(row []float64) bool {
	for _, v := range row {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}
