// Package navigation implements data-lake organization (Section 2.6
// of the tutorial; Nargesian et al., SIGMOD 2020): instead of a flat
// result list, tables are arranged in a topic hierarchy a user
// navigates by repeatedly choosing the most promising child. The
// package also provides RONIN-style online organization — building a
// hierarchy over just the results of a search — and the navigation
// cost model the paper's evaluation is based on: the number of items
// a user must examine before reaching a target table.
package navigation

import (
	"fmt"
	"sort"

	"tablehound/internal/embedding"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Node is one node of an organization. Leaves reference a table;
// internal nodes own children.
type Node struct {
	Label    string
	TableID  string  // non-empty for leaves
	Children []*Node // non-empty for internal nodes
	Vec      embedding.Vector
}

// IsLeaf reports whether the node references a table.
func (n *Node) IsLeaf() bool { return n.TableID != "" }

// Organization is a navigable hierarchy over tables.
type Organization struct {
	Root  *Node
	paths map[string][]*Node // table ID -> root..leaf path
}

// Config controls organization building.
type Config struct {
	// Fanout is the maximum children per internal node (default 4).
	Fanout int
	// Seed drives the deterministic clustering.
	Seed int64
	// KMeansIters bounds the per-split refinement (default 8).
	KMeansIters int
}

func (c Config) withDefaults() Config {
	if c.Fanout < 2 {
		c.Fanout = 4
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 8
	}
	return c
}

// tableVector embeds a table as the mean of its column vectors plus
// its metadata words.
func tableVector(t *table.Table, model *embedding.Model) embedding.Vector {
	v := embedding.Zero(model.Dim())
	n := 0
	for _, c := range t.Columns {
		if c.Type == table.TypeString || c.Type == table.TypeUnknown {
			v.Add(model.ColumnVector(c.Values))
			n++
		}
	}
	meta := t.Name + " " + t.Description
	for _, w := range tokenize.ContentWords(meta) {
		v.AddScaled(model.TokenVector(w), 0.5)
		n++
	}
	if n == 0 {
		return v
	}
	return v.Normalize()
}

// Organize builds a hierarchy over the tables by recursive balanced
// clustering of table embeddings.
func Organize(tables []*table.Table, model *embedding.Model, cfg Config) *Organization {
	cfg = cfg.withDefaults()
	leaves := make([]*Node, 0, len(tables))
	for _, t := range tables {
		leaves = append(leaves, &Node{
			Label:   t.Name,
			TableID: t.ID,
			Vec:     tableVector(t, model),
		})
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].TableID < leaves[j].TableID })
	root := split(leaves, cfg, 0)
	org := &Organization{Root: root, paths: make(map[string][]*Node)}
	org.indexPaths(root, nil)
	return org
}

// split recursively clusters nodes into at most Fanout children.
func split(nodes []*Node, cfg Config, depth int) *Node {
	if len(nodes) == 1 {
		return nodes[0]
	}
	parent := &Node{Vec: meanVec(nodes)}
	if len(nodes) <= cfg.Fanout {
		parent.Children = nodes
		parent.Label = groupLabel(nodes)
		return parent
	}
	clusters := kmeans(nodes, cfg.Fanout, cfg.KMeansIters, cfg.Seed+int64(depth))
	for _, cl := range clusters {
		if len(cl) == 0 {
			continue
		}
		parent.Children = append(parent.Children, split(cl, cfg, depth+1))
	}
	parent.Label = groupLabel(nodes)
	return parent
}

func meanVec(nodes []*Node) embedding.Vector {
	if len(nodes) == 0 {
		return nil
	}
	v := embedding.Zero(len(nodes[0].Vec))
	for _, n := range nodes {
		v.Add(n.Vec)
	}
	return v.Normalize()
}

// genericLabelWords carry no topical signal in table names.
var genericLabelWords = map[string]bool{
	"table": true, "data": true, "dataset": true, "file": true,
	"sheet": true, "export": true, "v1": true, "v2": true,
}

// groupLabel names a group by the most common topical word across
// member labels.
func groupLabel(nodes []*Node) string {
	counts := make(map[string]int)
	for _, n := range nodes {
		for _, w := range tokenize.ContentWords(n.Label) {
			if genericLabelWords[w] || len(w) <= 1 {
				continue
			}
			counts[w]++
		}
	}
	best, bestC := "", 0
	for w, c := range counts {
		if c > bestC || (c == bestC && w < best) {
			best, bestC = w, c
		}
	}
	if best == "" {
		return fmt.Sprintf("group of %d", len(nodes))
	}
	return best
}

// kmeans clusters nodes into k groups with deterministic farthest-
// point seeding, returning the groups.
func kmeans(nodes []*Node, k, iters int, seed int64) [][]*Node {
	if k > len(nodes) {
		k = len(nodes)
	}
	dim := len(nodes[0].Vec)
	centers := make([]embedding.Vector, 0, k)
	// Farthest-point init from a seed-dependent start.
	start := int(seed) % len(nodes)
	if start < 0 {
		start += len(nodes)
	}
	centers = append(centers, nodes[start].Vec.Clone())
	minD := make([]float64, len(nodes))
	for i, n := range nodes {
		minD[i] = 1 - embedding.Cosine(n.Vec, centers[0])
	}
	for len(centers) < k {
		best, bestD := 0, -1.0
		for i, d := range minD {
			if d > bestD {
				best, bestD = i, d
			}
		}
		c := nodes[best].Vec.Clone()
		centers = append(centers, c)
		for i, n := range nodes {
			if d := 1 - embedding.Cosine(n.Vec, c); d < minD[i] {
				minD[i] = d
			}
		}
	}
	assign := make([]int, len(nodes))
	for it := 0; it < iters; it++ {
		changed := false
		for i, n := range nodes {
			best, bestS := 0, -2.0
			for c, ctr := range centers {
				if s := embedding.Cosine(n.Vec, ctr); s > bestS {
					best, bestS = c, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := range centers {
			sum := embedding.Zero(dim)
			n := 0
			for i := range nodes {
				if assign[i] == c {
					sum.Add(nodes[i].Vec)
					n++
				}
			}
			if n > 0 {
				centers[c] = sum.Normalize()
			}
		}
		if !changed {
			break
		}
	}
	out := make([][]*Node, k)
	for i, n := range nodes {
		out[assign[i]] = append(out[assign[i]], n)
	}
	return out
}

func (o *Organization) indexPaths(n *Node, path []*Node) {
	path = append(path, n)
	if n.IsLeaf() {
		cp := make([]*Node, len(path))
		copy(cp, path)
		o.paths[n.TableID] = cp
		return
	}
	for _, c := range n.Children {
		o.indexPaths(c, path)
	}
}

// NumTables returns the number of leaves.
func (o *Organization) NumTables() int { return len(o.paths) }

// Depth returns the maximum leaf depth (root = 0).
func (o *Organization) Depth() int {
	d := 0
	for _, p := range o.paths {
		if len(p)-1 > d {
			d = len(p) - 1
		}
	}
	return d
}

// NavigationCost is the organization-navigation cost of reaching the
// target: at each internal node on the path the user examines every
// child; the total examined items is the cost (the SIGMOD 2020 user
// effort model with an ideal chooser). Returns -1 if absent.
func (o *Organization) NavigationCost(tableID string) int {
	path, ok := o.paths[tableID]
	if !ok {
		return -1
	}
	cost := 0
	for _, n := range path {
		cost += len(n.Children)
	}
	return cost
}

// FlatCost is the expected items examined scanning an unordered flat
// list of n tables: (n+1)/2.
func FlatCost(n int) float64 { return float64(n+1) / 2 }

// Navigate greedily descends toward the query vector, returning the
// visited labels and the reached table ID.
func (o *Organization) Navigate(query embedding.Vector) (labels []string, tableID string) {
	n := o.Root
	for n != nil && !n.IsLeaf() {
		labels = append(labels, n.Label)
		var best *Node
		bestS := -2.0
		for _, c := range n.Children {
			if s := embedding.Cosine(query, c.Vec); s > bestS {
				best, bestS = c, s
			}
		}
		n = best
	}
	if n != nil {
		labels = append(labels, n.Label)
		tableID = n.TableID
	}
	return labels, tableID
}

// OrganizeResults is the RONIN-style online mode: build a (small)
// organization over the tables returned by a search, so the user can
// refine by topic instead of paging a list.
func OrganizeResults(results []*table.Table, model *embedding.Model, cfg Config) *Organization {
	return Organize(results, model, cfg)
}
