package navigation

import (
	"fmt"

	"tablehound/internal/snap"
)

// maxOrgDepth bounds recursion when decoding a node tree, so a
// corrupt snapshot cannot drive unbounded stack growth.
const maxOrgDepth = 64

// AppendSnapshot encodes the organization's node tree recursively.
// The table-ID-to-path index is rebuilt on decode.
func (o *Organization) AppendSnapshot(e *snap.Encoder) {
	appendNode(e, o.Root)
}

func appendNode(e *snap.Encoder, n *Node) {
	e.Str(n.Label)
	e.Str(n.TableID)
	e.F32s(n.Vec)
	e.U32(uint32(len(n.Children)))
	for _, c := range n.Children {
		appendNode(e, c)
	}
}

// DecodeSnapshot rebuilds an organization written by AppendSnapshot.
func DecodeSnapshot(d *snap.Decoder) (*Organization, error) {
	root, err := decodeNode(d, 0)
	if err != nil {
		return nil, err
	}
	o := &Organization{Root: root, paths: make(map[string][]*Node)}
	o.indexPaths(root, nil)
	return o, nil
}

func decodeNode(d *snap.Decoder, depth int) (*Node, error) {
	if depth > maxOrgDepth {
		return nil, fmt.Errorf("%w: organization deeper than %d levels", snap.ErrCorrupt, maxOrgDepth)
	}
	n := &Node{
		Label:   d.Str(),
		TableID: d.Str(),
		Vec:     d.F32s(),
	}
	numChildren := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n.TableID != "" && numChildren > 0 {
		return nil, fmt.Errorf("%w: organization leaf %q has children", snap.ErrCorrupt, n.TableID)
	}
	for i := 0; i < numChildren; i++ {
		c, err := decodeNode(d, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}
