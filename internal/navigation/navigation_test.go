package navigation

import (
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
)

func navLake() (*datagen.Lake, *embedding.Model) {
	lake := datagen.Generate(datagen.Config{
		Seed:              41,
		NumDomains:        12,
		DomainSize:        80,
		NumTemplates:      8,
		TablesPerTemplate: 8,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 48, Seed: 4})
	return lake, model
}

func TestOrganizeCoversAllTables(t *testing.T) {
	lake, model := navLake()
	org := Organize(lake.Tables, model, Config{Fanout: 4, Seed: 1})
	if org.NumTables() != len(lake.Tables) {
		t.Fatalf("leaves = %d, want %d", org.NumTables(), len(lake.Tables))
	}
	for _, tbl := range lake.Tables {
		if org.NavigationCost(tbl.ID) < 0 {
			t.Errorf("table %s unreachable", tbl.ID)
		}
	}
	if org.NavigationCost("missing") != -1 {
		t.Error("missing table should cost -1")
	}
}

func TestFanoutRespected(t *testing.T) {
	lake, model := navLake()
	org := Organize(lake.Tables, model, Config{Fanout: 4, Seed: 1})
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) > 4 {
			t.Fatalf("node %q has %d children", n.Label, len(n.Children))
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(org.Root)
	if org.Depth() < 2 {
		t.Errorf("depth = %d for 64 tables at fanout 4", org.Depth())
	}
}

func TestNavigationCheaperThanFlat(t *testing.T) {
	// The SIGMOD'20 claim: mean navigation cost through the hierarchy
	// is far below scanning a flat list.
	lake, model := navLake()
	org := Organize(lake.Tables, model, Config{Fanout: 4, Seed: 1})
	total := 0.0
	for _, tbl := range lake.Tables {
		total += float64(org.NavigationCost(tbl.ID))
	}
	mean := total / float64(len(lake.Tables))
	flat := FlatCost(len(lake.Tables))
	if mean >= flat {
		t.Errorf("mean nav cost %.1f should beat flat %.1f", mean, flat)
	}
}

func TestNavigateReachesTopicTable(t *testing.T) {
	lake, model := navLake()
	org := Organize(lake.Tables, model, Config{Fanout: 4, Seed: 1})
	// Query with a table's own vector: navigation should land on a
	// table of the same template most of the time.
	hits := 0
	const trials = 16
	for i := 0; i < trials; i++ {
		q := lake.Tables[i*4%len(lake.Tables)]
		labels, reached := org.Navigate(tableVector(q, model))
		if len(labels) == 0 || reached == "" {
			t.Fatal("navigation returned nothing")
		}
		if lake.TableTemplate[reached] == lake.TableTemplate[q.ID] {
			hits++
		}
	}
	if hits < trials*3/5 {
		t.Errorf("navigation reached same-template table %d/%d times", hits, trials)
	}
}

func TestOrganizeResultsSmall(t *testing.T) {
	lake, model := navLake()
	org := OrganizeResults(lake.Tables[:6], model, Config{Fanout: 3, Seed: 2})
	if org.NumTables() != 6 {
		t.Errorf("NumTables = %d", org.NumTables())
	}
}

func TestSingleTableOrganization(t *testing.T) {
	lake, model := navLake()
	org := Organize(lake.Tables[:1], model, Config{})
	if org.NumTables() != 1 {
		t.Fatal("single-table org broken")
	}
	if cost := org.NavigationCost(lake.Tables[0].ID); cost != 0 {
		t.Errorf("single-table cost = %d", cost)
	}
}

func TestNodeLabels(t *testing.T) {
	lake, model := navLake()
	org := Organize(lake.Tables, model, Config{Fanout: 4, Seed: 1})
	if org.Root.Label == "" {
		t.Error("root should be labeled")
	}
	if org.Root.IsLeaf() {
		t.Error("root of 64 tables should not be a leaf")
	}
}
