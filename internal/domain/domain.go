// Package domain implements data-driven domain discovery (Section 2.2
// of the tutorial; D4, Ota et al. VLDB 2020): given only the columns
// of a data lake, recover the latent value domains — sets of values
// that are instances of one semantic concept — without supervision.
//
// The algorithm follows D4's structure in simplified form:
//
//  1. Column graph: columns are connected when their value sets
//     overlap strongly enough (robust signature: Jaccard or
//     containment of the smaller in the larger).
//  2. Candidate domains: connected components of the column graph
//     pool their values.
//  3. Noise pruning: a value stays in the domain only if it appears
//     in at least minSupport columns of the component — one-off
//     values (typos, free text) drop out.
//  4. Representatives: each domain is named by its most frequent
//     value (Li et al., KDD 2017).
package domain

import (
	"sort"

	"tablehound/internal/graph"
	"tablehound/internal/minhash"
	"tablehound/internal/tokenize"
)

// Column is one input column.
type Column struct {
	Key    string
	Values []string
}

// Domain is one discovered value domain.
type Domain struct {
	// Representative is the domain's most frequent value.
	Representative string
	Values         []string
	// Columns lists the column keys assigned to the domain.
	Columns []string
}

// Config controls discovery.
type Config struct {
	// SimilarityThreshold links two columns when the containment of
	// the smaller value set in the larger exceeds it (default 0.5).
	SimilarityThreshold float64
	// MinSupport keeps a value only if it occurs in at least this many
	// columns of its component (default 2; 1 keeps everything).
	MinSupport int
}

func (c Config) withDefaults() Config {
	if c.SimilarityThreshold <= 0 {
		c.SimilarityThreshold = 0.5
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	return c
}

// Discover clusters the columns' values into domains.
func Discover(cols []Column, cfg Config) []Domain {
	cfg = cfg.withDefaults()
	n := len(cols)
	if n == 0 {
		return nil
	}
	distinct := make([][]string, n)
	for i, c := range cols {
		distinct[i] = tokenize.NormalizeSet(c.Values)
	}
	// Column graph by containment of the smaller set in the larger.
	adj := make(graph.Adjacency, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			small, big := distinct[i], distinct[j]
			if len(big) < len(small) {
				small, big = big, small
			}
			if len(small) == 0 {
				continue
			}
			if minhash.ExactContainment(small, big) >= cfg.SimilarityThreshold {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	comp, numComp := graph.ConnectedComponents(adj)
	// Pool values with support counts per component.
	support := make([]map[string]int, numComp)
	colsOf := make([][]string, numComp)
	sizeOf := make([]int, numComp) // columns per component
	for i := range cols {
		c := comp[i]
		if support[c] == nil {
			support[c] = make(map[string]int)
		}
		for _, v := range distinct[i] {
			support[c][v]++
		}
		colsOf[c] = append(colsOf[c], cols[i].Key)
		sizeOf[c]++
	}
	var out []Domain
	for c := 0; c < numComp; c++ {
		minSup := cfg.MinSupport
		if sizeOf[c] < minSup {
			// Singleton components keep all their values; demanding
			// support 2 from one column would empty them.
			minSup = 1
		}
		var vals []string
		bestV, bestC := "", -1
		for v, s := range support[c] {
			if s < minSup {
				continue
			}
			vals = append(vals, v)
			if s > bestC || (s == bestC && v < bestV) {
				bestV, bestC = v, s
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Strings(vals)
		sort.Strings(colsOf[c])
		out = append(out, Domain{Representative: bestV, Values: vals, Columns: colsOf[c]})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Values) != len(out[j].Values) {
			return len(out[i].Values) > len(out[j].Values)
		}
		return out[i].Representative < out[j].Representative
	})
	return out
}

// AssignValues maps each distinct value to the index (into the domains
// slice) of the domain containing it, for clustering evaluation.
// Values in several domains go to the largest one.
func AssignValues(domains []Domain) map[string]int {
	out := make(map[string]int)
	// domains are sorted largest-first; first assignment wins.
	for i, d := range domains {
		for _, v := range d.Values {
			if _, taken := out[v]; !taken {
				out[v] = i
			}
		}
	}
	return out
}

// NaiveBaseline treats every column as its own domain — the strawman
// D4 improves on (no cross-column consolidation, duplicated domains).
func NaiveBaseline(cols []Column) []Domain {
	out := make([]Domain, 0, len(cols))
	for _, c := range cols {
		vals := tokenize.NormalizeSet(c.Values)
		if len(vals) == 0 {
			continue
		}
		sort.Strings(vals)
		out = append(out, Domain{Representative: vals[0], Values: vals, Columns: []string{c.Key}})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Values) != len(out[j].Values) {
			return len(out[i].Values) > len(out[j].Values)
		}
		return out[i].Representative < out[j].Representative
	})
	return out
}
