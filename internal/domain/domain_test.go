package domain

import (
	"fmt"
	"math/rand"
	"testing"

	"tablehound/internal/metrics"
)

// plantedColumns builds columns drawn from nDomains planted domains,
// plus per-column noise values. Returns the columns and the value ->
// true-domain labeling.
func plantedColumns(nDomains, colsPerDomain, valsPerCol int, noise float64, seed int64) ([]Column, map[string]int) {
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[string]int)
	vocab := make([][]string, nDomains)
	for d := range vocab {
		vocab[d] = make([]string, 60)
		for i := range vocab[d] {
			v := fmt.Sprintf("dom%02d_val%03d", d, i)
			vocab[d][i] = v
			truth[v] = d
		}
	}
	var cols []Column
	for d := 0; d < nDomains; d++ {
		for c := 0; c < colsPerDomain; c++ {
			var vals []string
			perm := rng.Perm(len(vocab[d]))
			for i := 0; i < valsPerCol && i < len(perm); i++ {
				vals = append(vals, vocab[d][perm[i]])
			}
			for i := 0; float64(i) < noise*float64(valsPerCol); i++ {
				vals = append(vals, fmt.Sprintf("noise_%d_%d_%d", d, c, i))
			}
			cols = append(cols, Column{Key: fmt.Sprintf("t%d.c%d", d, c), Values: vals})
		}
	}
	return cols, truth
}

func TestDiscoverRecoversPlantedDomains(t *testing.T) {
	cols, truth := plantedColumns(5, 6, 40, 0.1, 1)
	domains := Discover(cols, Config{})
	if len(domains) != 5 {
		t.Fatalf("discovered %d domains, want 5", len(domains))
	}
	// Evaluate with NMI over values present in both assignments.
	assign := AssignValues(domains)
	var pred, tru []int
	for v, d := range truth {
		if p, ok := assign[v]; ok {
			pred = append(pred, p)
			tru = append(tru, d)
		}
	}
	if nmi := metrics.NMI(pred, tru); nmi < 0.95 {
		t.Errorf("NMI = %.3f, want ~1", nmi)
	}
}

func TestNoisePruned(t *testing.T) {
	cols, _ := plantedColumns(3, 5, 40, 0.2, 2)
	domains := Discover(cols, Config{MinSupport: 2})
	for _, d := range domains {
		for _, v := range d.Values {
			if len(v) >= 5 && v[:5] == "noise" {
				t.Errorf("noise value %q survived pruning", v)
			}
		}
	}
}

func TestDiscoverBeatsNaiveBaseline(t *testing.T) {
	cols, truth := plantedColumns(4, 6, 30, 0.1, 3)
	d4 := Discover(cols, Config{})
	naive := NaiveBaseline(cols)
	score := func(domains []Domain) float64 {
		assign := AssignValues(domains)
		var pred, tru []int
		for v, d := range truth {
			if p, ok := assign[v]; ok {
				pred = append(pred, p)
				tru = append(tru, d)
			}
		}
		return metrics.NMI(pred, tru)
	}
	// Naive fragments each domain across 6 columns; D4 consolidates.
	if len(naive) <= len(d4) {
		t.Errorf("naive should fragment: naive=%d d4=%d", len(naive), len(d4))
	}
	if score(d4) <= score(naive) {
		t.Errorf("d4 NMI %.3f should beat naive %.3f", score(d4), score(naive))
	}
}

func TestRepresentativeIsMostFrequent(t *testing.T) {
	cols := []Column{
		{Key: "a", Values: []string{"x", "y", "z"}},
		{Key: "b", Values: []string{"x", "y", "w"}},
		{Key: "c", Values: []string{"x", "q", "y"}},
	}
	domains := Discover(cols, Config{SimilarityThreshold: 0.5, MinSupport: 1})
	if len(domains) != 1 {
		t.Fatalf("domains = %d", len(domains))
	}
	// x and y appear in 3 columns; tie broken lexicographically -> x.
	if domains[0].Representative != "x" {
		t.Errorf("representative = %q", domains[0].Representative)
	}
	if len(domains[0].Columns) != 3 {
		t.Errorf("columns = %v", domains[0].Columns)
	}
}

func TestSingletonColumnKeepsValues(t *testing.T) {
	cols := []Column{{Key: "solo", Values: []string{"a", "b", "c"}}}
	domains := Discover(cols, Config{MinSupport: 2})
	if len(domains) != 1 || len(domains[0].Values) != 3 {
		t.Errorf("singleton domain = %+v", domains)
	}
}

func TestEmptyInput(t *testing.T) {
	if Discover(nil, Config{}) != nil {
		t.Error("nil input should yield nil")
	}
	if got := NaiveBaseline([]Column{{Key: "e", Values: nil}}); len(got) != 0 {
		t.Errorf("empty columns should be dropped, got %v", got)
	}
}

func TestAssignValuesPrefersLargerDomain(t *testing.T) {
	domains := []Domain{
		{Representative: "big", Values: []string{"shared", "a", "b"}},
		{Representative: "small", Values: []string{"shared"}},
	}
	assign := AssignValues(domains)
	if assign["shared"] != 0 {
		t.Errorf("shared assigned to %d", assign["shared"])
	}
}
