// Append-only vocabulary extension for incremental (delta) index
// builds. A base dictionary assigns IDs [0, base.Size()) in
// lexicographic order; Extend keeps every one of those assignments
// verbatim and appends the delta's new values at IDs >= base.Size(),
// sorted among themselves. Postings encoded against the base stay
// valid byte for byte, which is the invariant that lets a delta
// snapshot carry only the new tables' postings.
//
// The extended dictionary is NOT globally sorted (only each extension
// block is), but nothing downstream requires global sortedness: set
// operations work on any consistent value->ID bijection, minhash
// signatures come from per-value hashes cached at intern time, and
// result tie-breaks use string keys, not IDs.
package dict

import (
	"sort"

	"tablehound/internal/minhash"
)

// Extend returns a new dictionary containing every entry of base at
// its original ID plus the given values (empties dropped, duplicates
// and already-interned values skipped) appended in sorted order at IDs
// starting at base.Size(). The base dictionary is not mutated and
// remains safe for concurrent readers. A nil base is treated as empty.
func Extend(base *Dict, values []string) *Dict {
	fresh := make(map[string]struct{})
	for _, v := range values {
		if v == "" {
			continue
		}
		if _, ok := base.ID(v); ok {
			continue
		}
		fresh[v] = struct{}{}
	}
	appended := make([]string, 0, len(fresh))
	for v := range fresh {
		appended = append(appended, v)
	}
	sort.Strings(appended)

	n := base.Size()
	d := &Dict{
		values: make([]string, 0, n+len(appended)),
		ids:    make(map[string]uint32, n+len(appended)),
		hashes: make([]uint64, 0, n+len(appended)),
	}
	if base != nil {
		d.values = append(d.values, base.values...)
		d.hashes = append(d.hashes, base.hashes...)
		for v, id := range base.ids {
			d.ids[v] = id
		}
	}
	for i, v := range appended {
		d.values = append(d.values, v)
		d.ids[v] = uint32(n + i)
		d.hashes = append(d.hashes, minhash.HashValue(v))
	}
	return d
}
