// Package dict implements the lake-wide value dictionary behind every
// exact set operation in the system: each distinct cell value is
// interned once to a dense uint32 ID, and all overlap/containment/
// Jaccard computations run on sorted integer postings (IDSet) instead
// of string hash maps — the representation JOSIE's posting lists and
// MATE's hash-based filters get their speed from.
//
// Determinism contract: Build assigns IDs in lexicographic order of
// the interned values, so ID order is exactly string order. Two builds
// over the same value multiset produce the same dictionary regardless
// of insertion order or parallelism, and any downstream structure that
// tie-breaks on IDs (e.g. the inverted index token ranking) behaves
// bit-identically to its historical string-keyed form.
//
// Out-of-vocabulary rule: query values are encoded through an Encoder,
// which assigns values missing from the dictionary ephemeral IDs at
// and above Size(). Indexed sets only ever contain IDs below Size(),
// so an OOV query value can never match an indexed value — exactly the
// semantics of probing a string map with an unindexed key — while
// still counting toward the query's cardinality (the denominator of
// containment and Jaccard).
package dict

import (
	"sort"

	"tablehound/internal/minhash"
)

// Dict is a frozen value dictionary. Build one with a Builder; a
// frozen Dict is immutable and safe for unbounded concurrent use.
type Dict struct {
	values []string          // ID -> value, sorted ascending
	ids    map[string]uint32 // value -> ID
	hashes []uint64          // ID -> minhash.HashValue(value), cached
}

// Builder accumulates distinct values before freezing them into a
// Dict. Not safe for concurrent use.
type Builder struct {
	seen map[string]struct{}
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[string]struct{})}
}

// Add interns values. Empty strings are dropped (they encode missing
// cells everywhere else in the system); duplicates are harmless.
func (b *Builder) Add(values ...string) {
	for _, v := range values {
		if v != "" {
			b.seen[v] = struct{}{}
		}
	}
}

// Len returns the number of distinct values staged so far.
func (b *Builder) Len() int { return len(b.seen) }

// Build freezes the staged values into a Dict, assigning IDs in
// lexicographic value order.
func (b *Builder) Build() *Dict {
	values := make([]string, 0, len(b.seen))
	for v := range b.seen {
		values = append(values, v)
	}
	sort.Strings(values)
	d := &Dict{
		values: values,
		ids:    make(map[string]uint32, len(values)),
		hashes: make([]uint64, len(values)),
	}
	for i, v := range values {
		d.ids[v] = uint32(i)
		d.hashes[i] = minhash.HashValue(v)
	}
	return d
}

// Size returns the number of interned values; valid IDs are
// [0, Size()). A nil Dict has size 0.
func (d *Dict) Size() int {
	if d == nil {
		return 0
	}
	return len(d.values)
}

// Value returns the interned string for an ID. The ID must be below
// Size().
func (d *Dict) Value(id uint32) string { return d.values[id] }

// ID returns the ID of a value, if interned.
func (d *Dict) ID(v string) (uint32, bool) {
	if d == nil {
		return 0, false
	}
	id, ok := d.ids[v]
	return id, ok
}

// HashID returns the cached minhash base hash of an interned value:
// HashID(id) == minhash.HashValue(Value(id)), computed once at Build.
// Signatures built from IDs through this path are bit-identical to
// signatures built from the underlying strings.
func (d *Dict) HashID(id uint32) uint64 { return d.hashes[id] }

// Sign computes the MinHash signature of an interned ID set from the
// cached value hashes — bit-identical to h.Sign over the decoded
// strings, without touching a byte of string data.
func (d *Dict) Sign(h *minhash.Hasher, ids IDSet) minhash.Signature {
	sig := make(minhash.Signature, h.K())
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, id := range ids {
		h.UpdateHash(sig, d.hashes[id])
	}
	return sig
}

// EncodeKnown encodes values that must all be interned, returning the
// sorted IDSet and true, or nil and false if any value (other than the
// empty string) is out of vocabulary. Duplicates are collapsed. Use
// this for index-side sets, where cross-set matching requires every
// member to share the lake-wide ID space.
func (d *Dict) EncodeKnown(values []string) (IDSet, bool) {
	if len(values) == 0 {
		return nil, true
	}
	ids := make([]uint32, 0, len(values))
	for _, v := range values {
		if v == "" {
			continue
		}
		id, ok := d.ID(v)
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
	}
	return newSortedDedup(ids), true
}

// Decode returns the values of an IDSet (ascending, i.e. sorted
// lexicographically). Every ID must be below Size().
func (d *Dict) Decode(ids IDSet) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.values[id]
	}
	return out
}

// Intern returns the dictionary's canonical instance of v when
// interned, else v unchanged. Callers that retain values long-term
// (e.g. universe maps) use it so one interned copy backs every
// retained reference.
func (d *Dict) Intern(v string) string {
	if id, ok := d.ID(v); ok {
		return d.values[id]
	}
	return v
}

// Encoder encodes query values against a Dict, assigning ephemeral
// IDs (>= Size()) to out-of-vocabulary values. Ephemeral assignments
// are memoized, so several columns of one query encoded through the
// same Encoder agree on shared OOV values. An Encoder is cheap, meant
// to live for one query, and not safe for concurrent use; the IDSets
// it returns are plain data and may be read concurrently. The Dict
// may be nil, in which case every value is ephemeral (still internally
// consistent — useful for comparing two ad-hoc sets).
type Encoder struct {
	d       *Dict
	oov     map[string]uint32
	oovHash []uint64
}

// Encoder returns a fresh query encoder over the dictionary.
func (d *Dict) Encoder() *Encoder { return &Encoder{d: d} }

func (e *Encoder) encode(v string) uint32 {
	if id, ok := e.d.ID(v); ok {
		return id
	}
	if id, ok := e.oov[v]; ok {
		return id
	}
	if e.oov == nil {
		e.oov = make(map[string]uint32)
	}
	id := uint32(e.d.Size() + len(e.oov))
	e.oov[v] = id
	e.oovHash = append(e.oovHash, minhash.HashValue(v))
	return id
}

// Encode returns the sorted IDSet of values (empties dropped,
// duplicates collapsed), assigning ephemeral IDs to OOV values.
func (e *Encoder) Encode(values []string) IDSet {
	ids := make([]uint32, 0, len(values))
	for _, v := range values {
		if v == "" {
			continue
		}
		ids = append(ids, e.encode(v))
	}
	return newSortedDedup(ids)
}

// EncodeHashes is Encode plus the minhash base hash of each member,
// parallel to the returned IDSet. Hashes of interned values come from
// the Build-time cache; OOV values are hashed once per encoder.
func (e *Encoder) EncodeHashes(values []string) (IDSet, []uint64) {
	ids := e.Encode(values)
	hashes := make([]uint64, len(ids))
	for i, id := range ids {
		hashes[i] = e.Hash(id)
	}
	return ids, hashes
}

// Hash returns the minhash base hash for an ID previously produced by
// this encoder (interned or ephemeral).
func (e *Encoder) Hash(id uint32) uint64 {
	if n := e.d.Size(); int(id) >= n {
		return e.oovHash[int(id)-n]
	}
	return e.d.hashes[id]
}

// newSortedDedup sorts ids ascending and collapses duplicates in
// place.
func newSortedDedup(ids []uint32) IDSet {
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return IDSet(out)
}

// Footprint describes the resident memory of a dictionary or of the
// ID-encoded sets built over it; see the memstats tooling.
type Footprint struct {
	Count       int   // interned values / encoded sets / set members
	Bytes       int64 // measured bytes of the integer representation
	LegacyBytes int64 // estimated bytes of the replaced string form
}

const (
	stringHeaderBytes = 16 // string header: pointer + length
	mapEntryOverhead  = 32 // amortized hash-map bucket cost per entry
)

// Footprint reports the dictionary's own cost: one canonical copy of
// every distinct value plus the ID map and hash cache.
func (d *Dict) Footprint() Footprint {
	var f Footprint
	if d == nil {
		return f
	}
	f.Count = len(d.values)
	for _, v := range d.values {
		f.Bytes += int64(len(v)) + stringHeaderBytes
	}
	// value->ID map entries and the hash cache.
	f.Bytes += int64(len(d.values)) * (stringHeaderBytes + 4 + mapEntryOverhead)
	f.Bytes += int64(len(d.hashes)) * 8
	return f
}

// SetFootprint reports the cost of one encoded set next to an
// estimate of the map[string]struct{} it replaced (per-member string
// payload + header + map overhead).
func (d *Dict) SetFootprint(ids IDSet) Footprint {
	f := Footprint{Count: len(ids), Bytes: int64(len(ids)) * 4}
	for _, id := range ids {
		if int(id) < d.Size() {
			f.LegacyBytes += int64(len(d.values[id])) + stringHeaderBytes + mapEntryOverhead
		} else {
			f.LegacyBytes += stringHeaderBytes + mapEntryOverhead
		}
	}
	return f
}

// Accumulate adds other into f field-wise.
func (f *Footprint) Accumulate(other Footprint) {
	f.Count += other.Count
	f.Bytes += other.Bytes
	f.LegacyBytes += other.LegacyBytes
}
