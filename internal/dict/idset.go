package dict

import "sort"

// IDSet is a sorted, duplicate-free slice of dictionary IDs — the
// integer posting-list form of a value set. The zero value is the
// empty set. An IDSet is plain read-only data: share it freely across
// goroutines.
type IDSet []uint32

// NewIDSet builds an IDSet from arbitrary IDs (copied, sorted,
// deduplicated).
func NewIDSet(ids []uint32) IDSet {
	cp := make([]uint32, len(ids))
	copy(cp, ids)
	return newSortedDedup(cp)
}

// Contains reports membership via binary search.
func (s IDSet) Contains(id uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// gallopRatio is the size skew beyond which Overlap switches from a
// linear merge to galloping (exponential) search: probing the large
// side in O(small * log large) beats scanning it linearly.
const gallopRatio = 16

// Overlap computes |A ∩ B|.
func Overlap(a, b IDSet) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopOverlap(a, b)
	}
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// gallopOverlap counts matches of the small set a inside the much
// larger b: for each member it doubles a probe step from the current
// position, then binary-searches the bracketed window.
func gallopOverlap(a, b IDSet) int {
	n, lo := 0, 0
	for _, x := range a {
		// Exponential probe: find hi with b[hi] >= x.
		step, hi := 1, lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-1, hi].
		i := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
		if i < len(b) && b[i] == x {
			n++
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return n
}

// Intersect returns A ∩ B as a new IDSet.
func Intersect(a, b IDSet) IDSet {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	out := make(IDSet, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Union returns A ∪ B as a new IDSet.
func Union(a, b IDSet) IDSet {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(IDSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Jaccard computes exact Jaccard similarity, matching
// minhash.JaccardSets bit for bit (two empty sets score 0).
func Jaccard(a, b IDSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := Overlap(a, b)
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Containment computes exact |Q ∩ X| / |Q|, matching
// minhash.ContainmentSets bit for bit (empty Q scores 0).
func Containment(q, x IDSet) float64 {
	if len(q) == 0 {
		return 0
	}
	return float64(Overlap(q, x)) / float64(len(q))
}
