package dict

import (
	"fmt"

	"tablehound/internal/minhash"
	"tablehound/internal/snap"
)

// AppendSnapshot encodes the dictionary. Only the sorted value table
// is written: the ID map and the cached minhash values are fully
// determined by it and are rebuilt on decode.
func (d *Dict) AppendSnapshot(e *snap.Encoder) {
	e.Strs(d.values)
}

// DecodeSnapshot rebuilds a dictionary written by AppendSnapshot,
// recomputing the value→ID map and the hash cache exactly as
// Builder.Build does, so the result is bit-identical to the original.
func DecodeSnapshot(sd *snap.Decoder) (*Dict, error) {
	values := sd.Strs()
	if sd.Err() != nil {
		return nil, sd.Err()
	}
	d := &Dict{
		values: values,
		ids:    make(map[string]uint32, len(values)),
		hashes: make([]uint64, len(values)),
	}
	for i, v := range values {
		if i > 0 && values[i-1] >= v {
			return nil, fmt.Errorf("%w: dictionary values not strictly sorted at index %d", snap.ErrCorrupt, i)
		}
		d.ids[v] = uint32(i)
		d.hashes[i] = minhash.HashValue(v)
	}
	return d, nil
}
