package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tablehound/internal/minhash"
)

// randValues draws n values (with duplicates and empties mixed in)
// from a vocabulary of size vocab.
func randValues(rng *rand.Rand, n, vocab int) []string {
	out := make([]string, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = "" // empties must be dropped everywhere
		default:
			out[i] = fmt.Sprintf("v%03d", rng.Intn(vocab))
		}
	}
	return out
}

func TestLexicographicIDAssignment(t *testing.T) {
	b := NewBuilder()
	b.Add("pear", "apple", "fig", "", "apple")
	d := b.Build()
	if d.Size() != 3 {
		t.Fatalf("size = %d, want 3 (empty dropped, dup collapsed)", d.Size())
	}
	want := []string{"apple", "fig", "pear"}
	for i, v := range want {
		if d.Value(uint32(i)) != v {
			t.Errorf("Value(%d) = %q, want %q", i, d.Value(uint32(i)), v)
		}
		if id, ok := d.ID(v); !ok || id != uint32(i) {
			t.Errorf("ID(%q) = %d,%v, want %d,true", v, id, ok, i)
		}
	}
}

func TestBuildOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := randValues(rng, 500, 200)
	b1 := NewBuilder()
	b1.Add(vals...)
	d1 := b1.Build()
	// Same multiset, reversed insertion order.
	b2 := NewBuilder()
	for i := len(vals) - 1; i >= 0; i-- {
		b2.Add(vals[i])
	}
	d2 := b2.Build()
	if d1.Size() != d2.Size() {
		t.Fatalf("sizes differ: %d vs %d", d1.Size(), d2.Size())
	}
	for id := uint32(0); int(id) < d1.Size(); id++ {
		if d1.Value(id) != d2.Value(id) {
			t.Fatalf("ID %d: %q vs %q", id, d1.Value(id), d2.Value(id))
		}
		if d1.HashID(id) != d2.HashID(id) {
			t.Fatalf("hash of ID %d differs", id)
		}
	}
}

// TestSetOpsMatchMinhashSets is the core parity property: Overlap,
// Jaccard, and Containment over encoded IDSets must be bit-identical
// to the string-set reference implementations in minhash — including
// duplicates, empties, and out-of-vocabulary query values.
func TestSetOpsMatchMinhashSets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// The dictionary covers only part of the vocabulary, so some
		// values are OOV and must flow through ephemeral IDs.
		lake := randValues(rng, 300, 150)
		db := NewBuilder()
		db.Add(lake...)
		d := db.Build()

		a := randValues(rng, rng.Intn(60), 200) // vocab 200 > 150: OOV mixed in
		b := randValues(rng, rng.Intn(60), 200)
		enc := d.Encoder()
		sa, sb := enc.Encode(a), enc.Encode(b)
		ra, rb := minhash.NewSet(a), minhash.NewSet(b)

		if got, want := Overlap(sa, sb), minhash.OverlapSets(ra, rb); got != want {
			t.Fatalf("trial %d: Overlap = %d, want %d", trial, got, want)
		}
		if got, want := Jaccard(sa, sb), minhash.JaccardSets(ra, rb); got != want {
			t.Fatalf("trial %d: Jaccard = %v, want %v", trial, got, want)
		}
		if got, want := Containment(sa, sb), minhash.ContainmentSets(ra, rb); got != want {
			t.Fatalf("trial %d: Containment = %v, want %v", trial, got, want)
		}
		if got, want := len(Intersect(sa, sb)), minhash.OverlapSets(ra, rb); got != want {
			t.Fatalf("trial %d: len(Intersect) = %d, want %d", trial, got, want)
		}
		if got, want := len(Union(sa, sb)), len(ra)+len(rb)-minhash.OverlapSets(ra, rb); got != want {
			t.Fatalf("trial %d: len(Union) = %d, want %d", trial, got, want)
		}
	}
}

func TestSetOpsEdgeCases(t *testing.T) {
	var empty IDSet
	some := IDSet{1, 5, 9}
	if Overlap(empty, empty) != 0 || Overlap(empty, some) != 0 {
		t.Error("overlap with empty must be 0")
	}
	if Jaccard(empty, empty) != 0 {
		t.Error("Jaccard(∅,∅) must be 0 (matching minhash.JaccardSets)")
	}
	if Jaccard(some, some) != 1 {
		t.Error("Jaccard(x,x) must be 1")
	}
	if Containment(empty, some) != 0 {
		t.Error("Containment with empty query must be 0")
	}
	if Containment(some, some) != 1 {
		t.Error("Containment(x,x) must be 1")
	}
	if Union(empty, empty) != nil || Intersect(empty, some) != nil {
		t.Error("empty results must be nil")
	}
}

// TestGallopMatchesLinear forces the galloping path (size skew beyond
// gallopRatio) and checks it against the plain merge.
func TestGallopMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		small := make([]uint32, rng.Intn(8)+1)
		for i := range small {
			small[i] = uint32(rng.Intn(10000))
		}
		big := make([]uint32, 1000+rng.Intn(2000))
		for i := range big {
			big[i] = uint32(rng.Intn(10000))
		}
		a, b := NewIDSet(small), NewIDSet(big)
		if len(b) < gallopRatio*len(a) {
			continue // skew too small; other trials cover it
		}
		want := 0
		for _, x := range a {
			if b.Contains(x) {
				want++
			}
		}
		if got := gallopOverlap(a, b); got != want {
			t.Fatalf("trial %d: gallopOverlap = %d, want %d", trial, got, want)
		}
		if got := Overlap(a, b); got != want {
			t.Fatalf("trial %d: Overlap = %d, want %d", trial, got, want)
		}
	}
}

func TestEncoderOOV(t *testing.T) {
	db := NewBuilder()
	db.Add("a", "b", "c")
	d := db.Build()
	enc := d.Encoder()
	ids := enc.Encode([]string{"b", "zzz", "yyy", "zzz", ""})
	if len(ids) != 3 {
		t.Fatalf("len = %d, want 3 (dup zzz collapsed, empty dropped)", len(ids))
	}
	oov := 0
	for _, id := range ids {
		if int(id) >= d.Size() {
			oov++
		}
	}
	if oov != 2 {
		t.Fatalf("oov count = %d, want 2", oov)
	}
	// Memoized: the same OOV value through the same encoder gets the
	// same ephemeral ID, so two columns of one query can overlap on it.
	again := enc.Encode([]string{"zzz"})
	if Overlap(ids, again) != 1 {
		t.Error("shared OOV value must overlap across one encoder's sets")
	}
	// A separate EncodeKnown must reject OOV outright.
	if _, ok := d.EncodeKnown([]string{"a", "zzz"}); ok {
		t.Error("EncodeKnown must fail on OOV input")
	}
	if got, ok := d.EncodeKnown([]string{"c", "a", "", "a"}); !ok || len(got) != 2 {
		t.Errorf("EncodeKnown = %v,%v, want 2 ids", got, ok)
	}
}

// TestSignParity: signatures computed from cached ID hashes must be
// bit-identical to signing the underlying strings, with and without
// OOV values in the set.
func TestSignParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lake := randValues(rng, 400, 150)
	db := NewBuilder()
	db.Add(lake...)
	d := db.Build()
	h := minhash.NewHasher(64, 42)
	for trial := 0; trial < 50; trial++ {
		vals := randValues(rng, rng.Intn(80), 200)
		distinct := make([]string, 0, len(vals))
		seen := map[string]bool{}
		for _, v := range vals {
			if v != "" && !seen[v] {
				seen[v] = true
				distinct = append(distinct, v)
			}
		}
		want := h.Sign(distinct)

		enc := d.Encoder()
		ids, hashes := enc.EncodeHashes(vals)
		got := h.SignHashes(hashes)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: signature slot %d differs", trial, i)
			}
		}
		// Fully in-vocabulary sets can sign straight off the dictionary.
		if known, ok := d.EncodeKnown(distinct); ok {
			ds := d.Sign(h, known)
			for i := range want {
				if ds[i] != want[i] {
					t.Fatalf("trial %d: Dict.Sign slot %d differs", trial, i)
				}
			}
		}
		_ = ids
	}
}

func TestHashValueMatchesFNV(t *testing.T) {
	// Reference FNV-1a (hash/fnv parameters) + splitmix64, as the
	// pre-inline implementation computed it.
	ref := func(v string) uint64 {
		h := uint64(14695981039346656037)
		for _, b := range []byte(v) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		// splitmix64
		x := h + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	for _, v := range []string{"", "a", "hello world", "Ünïcodé", "v042"} {
		if got, want := minhash.HashValue(v), ref(v); got != want {
			t.Errorf("HashValue(%q) = %#x, want %#x", v, got, want)
		}
	}
}

func TestDecodeIntern(t *testing.T) {
	db := NewBuilder()
	db.Add("b", "a", "c")
	d := db.Build()
	ids, _ := d.EncodeKnown([]string{"c", "a"})
	got := d.Decode(ids)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Decode = %v, want [a c]", got)
	}
	if d.Intern("a") != "a" || d.Intern("zzz") != "zzz" {
		t.Error("Intern must return the value either way")
	}
}

func TestFootprint(t *testing.T) {
	db := NewBuilder()
	db.Add("alpha", "beta", "gamma")
	d := db.Build()
	f := d.Footprint()
	if f.Count != 3 || f.Bytes <= 0 {
		t.Fatalf("dict footprint = %+v", f)
	}
	ids, _ := d.EncodeKnown([]string{"alpha", "beta"})
	sf := d.SetFootprint(ids)
	if sf.Count != 2 || sf.Bytes != 8 || sf.LegacyBytes <= sf.Bytes {
		t.Fatalf("set footprint = %+v", sf)
	}
	var tot Footprint
	tot.Accumulate(f)
	tot.Accumulate(sf)
	if tot.Count != 5 {
		t.Fatalf("accumulate count = %d", tot.Count)
	}
}

// TestConcurrentReads exercises the frozen-Dict concurrency contract
// under -race: unbounded concurrent ID lookups, set operations, and
// per-goroutine encoders over one shared dictionary.
func TestConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lake := randValues(rng, 1000, 400)
	db := NewBuilder()
	db.Add(lake...)
	d := db.Build()
	sets := make([]IDSet, 16)
	queries := make([][]string, 16)
	for i := range sets {
		vals := randValues(rand.New(rand.NewSource(int64(i))), 100, 500)
		queries[i] = vals
		sets[i], _ = d.EncodeKnown(lake[:50])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			enc := d.Encoder() // encoders are per-goroutine
			for i := range sets {
				q := enc.Encode(queries[i])
				_ = Overlap(q, sets[i])
				_ = Jaccard(q, sets[i])
				_ = Containment(q, sets[i])
				_, _ = d.ID(queries[i][0])
			}
		}(g)
	}
	wg.Wait()
}

func TestNewIDSetSortsAndDedups(t *testing.T) {
	s := NewIDSet([]uint32{5, 1, 5, 3, 1})
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("not sorted")
	}
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
}
