package snap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func testManifest() *Manifest {
	return &Manifest{
		Assign: AssignFNV1a,
		Shards: []ShardEntry{
			{Snapshot: "lake.0.snap", Generation: 0xdeadbeef, Tables: 17},
			{Snapshot: "lake.1.snap", Generation: 42, Tables: 13},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Assign != m.Assign || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Shards {
		if got.Shards[i] != m.Shards[i] {
			t.Errorf("shard %d: got %+v want %+v", i, got.Shards[i], m.Shards[i])
		}
	}
	if got.Hash() != m.Hash() {
		t.Errorf("hash changed across round trip: %x vs %x", got.Hash(), m.Hash())
	}
}

func TestManifestCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, testManifest()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(raw); n += 7 {
			if _, err := ReadManifest(bytes.NewReader(raw[:n])); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		for off := 0; off < len(raw); off += 5 {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x40
			if _, err := ReadManifest(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at %d silently accepted", off)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0xFF)
		if _, err := ReadManifest(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("unknown assign", func(t *testing.T) {
		var b bytes.Buffer
		bad := testManifest()
		bad.Assign = "md5"
		if err := WriteManifest(&b, bad); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(bytes.NewReader(b.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unknown assign: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestManifestHashDiscriminates(t *testing.T) {
	base := testManifest()
	mut := testManifest()
	mut.Shards[1].Generation++
	if base.Hash() == mut.Hash() {
		t.Error("generation change did not change the manifest hash")
	}
	grown := testManifest()
	grown.Shards = append(grown.Shards, ShardEntry{Snapshot: "lake.2.snap", Generation: 7, Tables: 1})
	if base.Hash() == grown.Hash() {
		t.Error("shard count change did not change the manifest hash")
	}
}

func TestShardOf(t *testing.T) {
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf("anything", 0); got != 0 {
		t.Fatalf("ShardOf(_, 0) = %d, want 0", got)
	}
	// Deterministic, in range, and not degenerate: 1000 distinct IDs
	// over 4 shards should give every shard a decent share.
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("table-%d", i)
		s := ShardOf(id, 4)
		if s != ShardOf(id, 4) {
			t.Fatalf("ShardOf(%q, 4) not deterministic", id)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%q, 4) = %d out of range", id, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 150 {
			t.Errorf("shard %d got only %d/1000 tables — assignment is skewed", s, n)
		}
	}
}

func TestHashIDsNoConcatCollision(t *testing.T) {
	if HashIDs([]string{"ab", "c"}) == HashIDs([]string{"a", "bc"}) {
		t.Error("HashIDs collides on concatenation ambiguity")
	}
	if HashIDs([]string{"a", "b"}) == HashIDs([]string{"b", "a"}) {
		t.Error("HashIDs is order-insensitive")
	}
}

func TestHashTablesContentSensitivity(t *testing.T) {
	ids := []string{"a", "b"}
	if HashTables(ids, []uint64{1, 2}) == HashTables(ids, []uint64{1, 3}) {
		t.Error("HashTables ignores a content-hash change")
	}
	if HashTables(ids, []uint64{1, 2}) == HashTables([]string{"a", "c"}, []uint64{1, 2}) {
		t.Error("HashTables ignores an ID change")
	}
	if HashTables([]string{"ab", "c"}, []uint64{1, 2}) == HashTables([]string{"a", "bc"}, []uint64{1, 2}) {
		t.Error("HashTables collides on concatenation ambiguity")
	}
	if HashTables(ids, []uint64{1, 2}) == HashIDs(ids) {
		t.Error("HashTables degenerates to HashIDs")
	}
}
