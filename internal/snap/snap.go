// Package snap is the low-level substrate of the on-disk snapshot
// format: a fixed header (magic, version, flags), length-framed
// sections with CRC32 checksums, and a fast little-endian binary
// codec for the bulk payloads (integer postings, float vectors,
// string tables) that gob is too slow for.
//
// Layout of a snapshot stream:
//
//	header   magic u32 | version u16 | flags u16
//	section  id u16 | payload length u64 | payload | crc32(id|len|payload) u32
//	...      (sections in a fixed, format-defined order)
//
// Corruption contract: every structural defect — truncated stream,
// wrong magic, unknown version, mismatched section id, checksum
// failure, a decoder running past the payload, or payload bytes left
// unconsumed after decoding — surfaces as an error satisfying
// errors.Is(err, ErrCorrupt). Callers alias ErrCorrupt for their own
// exported sentinel (e.g. core.ErrCorruptSnapshot).
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt marks a snapshot whose bytes are structurally invalid:
// truncated, checksum-mismatched, or carrying trailing garbage.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// maxSectionBytes bounds a single section payload. It exists purely
// so a corrupt length field cannot drive a multi-gigabyte allocation
// before the checksum gets a chance to reject the bytes.
const maxSectionBytes = 1 << 34 // 16 GiB

// --- header ---

// WriteHeader writes the fixed snapshot header.
func WriteHeader(w io.Writer, magic uint32, version, flags uint16) error {
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint16(h[4:], version)
	binary.LittleEndian.PutUint16(h[6:], flags)
	_, err := w.Write(h[:])
	return err
}

// ReadHeader reads and validates the header's magic, returning the
// version and flags for the caller to range-check.
func ReadHeader(r io.Reader, magic uint32) (version, flags uint16, err error) {
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(h[0:]); got != magic {
		return 0, 0, fmt.Errorf("%w: bad magic %#x (want %#x)", ErrCorrupt, got, magic)
	}
	return binary.LittleEndian.Uint16(h[4:]), binary.LittleEndian.Uint16(h[6:]), nil
}

// --- sections ---

// Writer frames encoded sections onto an io.Writer. The payload
// buffer is reused across sections.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64
}

// NewWriter returns a section writer over w. The caller writes the
// header first (WriteHeader), then sections in order.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Written reports the total bytes emitted through Section calls
// (frame headers, payloads, and checksums). It does not include the
// snapshot header, which the caller writes directly.
func (sw *Writer) Written() int64 { return sw.n }

// Section encodes one section with encode and writes it framed:
// id, payload length, payload, CRC32 over all of the former.
func (sw *Writer) Section(id uint16, encode func(*Encoder)) error {
	e := Encoder{buf: sw.buf[:0]}
	encode(&e)
	sw.buf = e.buf // keep the grown buffer for the next section

	var head [10]byte
	binary.LittleEndian.PutUint16(head[0:], id)
	binary.LittleEndian.PutUint64(head[2:], uint64(len(e.buf)))
	crc := crc32.NewIEEE()
	crc.Write(head[:])
	crc.Write(e.buf)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())

	if _, err := sw.w.Write(head[:]); err != nil {
		return err
	}
	if _, err := sw.w.Write(e.buf); err != nil {
		return err
	}
	if _, err := sw.w.Write(sum[:]); err != nil {
		return err
	}
	sw.n += int64(len(head)) + int64(len(e.buf)) + int64(len(sum))
	return nil
}

// Reader reads framed sections back. Sections must be requested in
// exactly the order they were written; any deviation is corruption.
type Reader struct {
	r   io.Reader
	buf []byte
	n   int64
}

// NewReader returns a section reader over r, to be used after the
// header has been read (ReadHeader).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Consumed reports the total bytes read through Section and Payload
// calls (frame headers, payloads, and checksums). It does not include
// the snapshot header, which the caller reads directly.
func (sr *Reader) Consumed() int64 { return sr.n }

// Section reads the next section, verifies its id and checksum, runs
// decode over the payload, and requires the decoder to consume the
// payload exactly — short reads, checksum mismatches, and leftover
// bytes all yield ErrCorrupt.
func (sr *Reader) Section(id uint16, decode func(*Decoder) error) error {
	var head [10]byte
	if _, err := io.ReadFull(sr.r, head[:]); err != nil {
		return fmt.Errorf("%w: section %d: short frame header: %v", ErrCorrupt, id, err)
	}
	gotID := binary.LittleEndian.Uint16(head[0:])
	if gotID != id {
		return fmt.Errorf("%w: section id %d where %d expected", ErrCorrupt, gotID, id)
	}
	n := binary.LittleEndian.Uint64(head[2:])
	if n > maxSectionBytes {
		return fmt.Errorf("%w: section %d: implausible length %d", ErrCorrupt, id, n)
	}
	if uint64(cap(sr.buf)) < n {
		sr.buf = make([]byte, n)
	}
	payload := sr.buf[:n]
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return fmt.Errorf("%w: section %d: short payload: %v", ErrCorrupt, id, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(sr.r, sum[:]); err != nil {
		return fmt.Errorf("%w: section %d: short checksum: %v", ErrCorrupt, id, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(head[:])
	crc.Write(payload)
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return fmt.Errorf("%w: section %d: checksum mismatch", ErrCorrupt, id)
	}

	sr.n += int64(len(head)) + int64(n) + int64(len(sum))

	d := Decoder{buf: payload}
	if err := decode(&d); err != nil {
		return err
	}
	if d.err != nil {
		return fmt.Errorf("section %d: %w", id, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: section %d: %d bytes left unconsumed", ErrCorrupt, id, len(d.buf)-d.off)
	}
	return nil
}

// Payload reads the next section, verifies its id and checksum, and
// returns a decoder over the payload for deferred decoding — the
// buffer is owned by the returned decoder, so payloads of consecutive
// sections can be decoded later, or concurrently. The caller must
// finish each decoder with Finish to get the full-consumption check
// Section performs inline.
func (sr *Reader) Payload(id uint16) (*Decoder, error) {
	var head [10]byte
	if _, err := io.ReadFull(sr.r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: section %d: short frame header: %v", ErrCorrupt, id, err)
	}
	gotID := binary.LittleEndian.Uint16(head[0:])
	if gotID != id {
		return nil, fmt.Errorf("%w: section id %d where %d expected", ErrCorrupt, gotID, id)
	}
	n := binary.LittleEndian.Uint64(head[2:])
	if n > maxSectionBytes {
		return nil, fmt.Errorf("%w: section %d: implausible length %d", ErrCorrupt, id, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: section %d: short payload: %v", ErrCorrupt, id, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(sr.r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: section %d: short checksum: %v", ErrCorrupt, id, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(head[:])
	crc.Write(payload)
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, fmt.Errorf("%w: section %d: checksum mismatch", ErrCorrupt, id)
	}
	sr.n += int64(len(head)) + int64(n) + int64(len(sum))
	return &Decoder{buf: payload}, nil
}

// Close verifies the stream ends exactly after the last section;
// trailing garbage is corruption.
func (sr *Reader) Close() error {
	var one [1]byte
	switch _, err := io.ReadFull(sr.r, one[:]); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("%w: trailing bytes after final section", ErrCorrupt)
	default:
		return err
	}
}

// --- encoder ---

// Encoder appends fixed-width little-endian primitives and
// length-prefixed composites to a byte buffer. It never fails.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer (for tests and ad hoc framing).
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a byte 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F32 appends a float32 by bit pattern.
func (e *Encoder) F32(v float32) { e.U32(math.Float32bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Strs appends a count-prefixed string slice.
func (e *Encoder) Strs(ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// U32s appends a count-prefixed []uint32.
func (e *Encoder) U32s(vs []uint32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// I32s appends a count-prefixed []int32.
func (e *Encoder) I32s(vs []int32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// U64s appends a count-prefixed []uint64.
func (e *Encoder) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// F64s appends a count-prefixed []float64.
func (e *Encoder) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// F32s appends a count-prefixed []float32.
func (e *Encoder) F32s(vs []float32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F32(v)
	}
}

// --- decoder ---

// Decoder reads back what Encoder wrote. Errors latch: after the
// first failure every method returns a zero value and Err() reports
// the (ErrCorrupt-wrapped) cause. Count prefixes are validated
// against the remaining payload before any allocation, so a corrupt
// count cannot drive an outsized make.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Err returns the latched decode error, if any.
// NewDecoder returns a decoder over a raw payload buffer, for
// callers that obtained the bytes outside the section framing.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

func (d *Decoder) Err() error { return d.err }

// Finish reports the decoder's terminal state: the latched error if
// decoding failed, or ErrCorrupt if payload bytes were left
// unconsumed. Callers of Payload use it to get the same contract
// Section enforces inline.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes left unconsumed", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// Remaining returns the unconsumed byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte and requires it to be 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads a float32.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// count reads a count prefix and checks it against the remaining
// bytes at minBytes per element.
func (d *Decoder) count(minBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*minBytes > d.Remaining() {
		d.fail("count %d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.count(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Strs reads a count-prefixed string slice.
func (d *Decoder) Strs() []string {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	return out
}

// U32s reads a count-prefixed []uint32.
func (d *Decoder) U32s() []uint32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.U32()
	}
	return out
}

// I32s reads a count-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// U64s reads a count-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// F64s reads a count-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// F32s reads a count-prefixed []float32.
func (d *Decoder) F32s() []float32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.F32()
	}
	return out
}
