package snap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

const testMagic uint32 = 0x74534e50

// encodeStream writes a two-section stream exercising every codec
// method and returns the bytes.
func encodeStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHeader(&buf, testMagic, 3, 0x0005); err != nil {
		t.Fatal(err)
	}
	w := NewWriter(&buf)
	if err := w.Section(1, func(e *Encoder) {
		e.U8(7)
		e.Bool(true)
		e.Bool(false)
		e.U32(0xdeadbeef)
		e.U64(1 << 60)
		e.I64(-42)
		e.F64(3.14159)
		e.Str("hello, snapshot")
		e.Str("")
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Section(2, func(e *Encoder) {
		e.Strs([]string{"a", "bb", ""})
		e.Strs(nil)
		e.U32s([]uint32{1, 2, 3})
		e.I32s([]int32{-1, 0, 5})
		e.U64s([]uint64{9, 8})
		e.F64s([]float64{0.5, -0.25})
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeStream(data []byte) error {
	r := bytes.NewReader(data)
	version, flags, err := ReadHeader(r, testMagic)
	if err != nil {
		return err
	}
	if version != 3 || flags != 0x0005 {
		return errors.New("wrong version/flags")
	}
	sr := NewReader(r)
	if err := sr.Section(1, func(d *Decoder) error {
		if d.U8() != 7 || !d.Bool() || d.Bool() {
			return errors.New("scalar mismatch")
		}
		if d.U32() != 0xdeadbeef || d.U64() != 1<<60 || d.I64() != -42 {
			return errors.New("integer mismatch")
		}
		if d.F64() != 3.14159 {
			return errors.New("float mismatch")
		}
		if d.Str() != "hello, snapshot" || d.Str() != "" {
			return errors.New("string mismatch")
		}
		return nil
	}); err != nil {
		return err
	}
	if err := sr.Section(2, func(d *Decoder) error {
		ss := d.Strs()
		if len(ss) != 3 || ss[0] != "a" || ss[1] != "bb" || ss[2] != "" {
			return errors.New("Strs mismatch")
		}
		if d.Strs() != nil {
			return errors.New("nil Strs mismatch")
		}
		u := d.U32s()
		if len(u) != 3 || u[2] != 3 {
			return errors.New("U32s mismatch")
		}
		i := d.I32s()
		if len(i) != 3 || i[0] != -1 {
			return errors.New("I32s mismatch")
		}
		if v := d.U64s(); len(v) != 2 || v[0] != 9 {
			return errors.New("U64s mismatch")
		}
		if f := d.F64s(); len(f) != 2 || f[1] != -0.25 {
			return errors.New("F64s mismatch")
		}
		return nil
	}); err != nil {
		return err
	}
	return sr.Close()
}

func TestRoundTrip(t *testing.T) {
	if err := decodeStream(encodeStream(t)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := encodeStream(t)
	data[0] ^= 0xff
	err := decodeStream(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

// TestTruncationEverywhere cuts the stream at every byte offset; no
// prefix may decode cleanly.
func TestTruncationEverywhere(t *testing.T) {
	data := encodeStream(t)
	for n := 0; n < len(data); n++ {
		err := decodeStream(data[:n])
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", n, err)
		}
	}
}

// TestBitFlipEverywhere flips one byte at every offset past the
// header; every flip must be rejected (checksums cover id, length,
// and payload).
func TestBitFlipEverywhere(t *testing.T) {
	data := encodeStream(t)
	for i := 8; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if err := decodeStream(mut); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	data := append(encodeStream(t), 0x00)
	err := decodeStream(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
}

func TestUnconsumedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Section(1, func(e *Encoder) { e.U64(1); e.U64(2) }); err != nil {
		t.Fatal(err)
	}
	err := NewReader(&buf).Section(1, func(d *Decoder) error {
		d.U64() // read only half the payload
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unconsumed payload: got %v, want ErrCorrupt", err)
	}
}

func TestWrongSectionID(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Section(1, func(e *Encoder) { e.U8(0) }); err != nil {
		t.Fatal(err)
	}
	err := NewReader(&buf).Section(2, func(d *Decoder) error {
		d.U8()
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong id: got %v, want ErrCorrupt", err)
	}
}

// TestCountGuard checks a corrupt count prefix fails before any
// outsized allocation: the decoder sees the count exceeds the
// remaining payload.
func TestCountGuard(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // claims a billion strings
	d := Decoder{buf: e.Bytes()}
	if out := d.Strs(); out != nil {
		t.Fatal("corrupt count produced a slice")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("corrupt count: got %v, want ErrCorrupt", d.Err())
	}
}

// TestEOFPassthrough: a reader error other than EOF on Close is
// passed through unchanged.
func TestEOFPassthrough(t *testing.T) {
	sr := NewReader(errReader{})
	if err := sr.Close(); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("got %v, want ErrClosedPipe", err)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrClosedPipe }
