// Shard manifests: when a lake is built as N partitioned snapshots
// (`lakectl build -shards N`), a small manifest file written next to
// the shard snapshots records how the partitioning was done — the
// shard count, the table→shard assignment function, and a per-shard
// content generation — so the serving tier can verify that a set of
// shard servers was built from the same partitioning before fanning
// queries across them.
//
// The manifest reuses the snapshot substrate (header + one CRC-framed
// section), so the corruption contract is identical: any structural
// defect satisfies errors.Is(err, ErrCorrupt).
package snap

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Manifest framing.
const (
	manifestMagic   uint32 = 0x54484d46 // "THMF": tablehound manifest
	manifestVersion uint16 = 1
	secManifest     uint16 = 1
)

// AssignFNV1a names the (only) table→shard assignment function:
// FNV-1a 64 over the table ID, modulo the shard count. Recorded in the
// manifest so a future format can introduce alternatives without
// ambiguity.
const AssignFNV1a = "fnv1a64"

// ShardEntry describes one shard of a partitioned lake.
type ShardEntry struct {
	// Snapshot is the shard's snapshot file name, relative to the
	// manifest's directory.
	Snapshot string
	// Generation is a content hash over the shard's table IDs in
	// catalog order — two builds over the same partition get the same
	// generation, any membership change gets a different one.
	Generation uint64
	// Tables is the shard's table count.
	Tables int
}

// Manifest records how a lake was partitioned into shard snapshots.
type Manifest struct {
	// Assign names the table→shard assignment function (AssignFNV1a).
	Assign string
	// Shards has one entry per shard, indexed by shard number.
	Shards []ShardEntry
}

// ShardOf assigns a table ID to a shard in [0, n): FNV-1a 64 over the
// ID, modulo n. The assignment is a pure function of the ID and the
// shard count, so the builder and the router always agree. n <= 1
// always yields shard 0.
func ShardOf(tableID string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv1a64(tableID) % uint64(n))
}

// HashIDs computes a shard generation: FNV-1a 64 chained over a
// sequence of table IDs (each ID hashed with its length prefix so
// concatenation ambiguities cannot collide).
func HashIDs(ids []string) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h = fnv1a64Step(h, fmt.Sprintf("%d:", len(id)))
		h = fnv1a64Step(h, id)
	}
	return h
}

// HashTables computes a content generation: FNV-1a 64 chained over
// (table ID, content hash) pairs — IDs length-prefixed as in HashIDs,
// each followed by its table's content hash. Unlike HashIDs (pure
// membership, which shard manifests use to verify partitioning), this
// generation changes whenever any table's contents change, not just
// when the ID set does — replacing a table (remove + add under the
// same ID) yields a new generation, which is what lets the serving
// tier key query caches on it. ids and hashes must be aligned.
func HashTables(ids []string, hashes []uint64) uint64 {
	h := uint64(fnvOffset64)
	for i, id := range ids {
		h = fnv1a64Step(h, fmt.Sprintf("%d:", len(id)))
		h = fnv1a64Step(h, id)
		h = fnv1a64Step(h, fmt.Sprintf("=%016x;", hashes[i]))
	}
	return h
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1a64(s string) uint64 { return fnv1a64Step(fnvOffset64, s) }

func fnv1a64Step(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Hash returns a single fingerprint of the whole manifest — shard
// count, assignment function, and every shard's generation — used by
// the router to refuse mixing shard servers built from different
// partitionings.
func (m *Manifest) Hash() uint64 {
	h := fnv1a64Step(fnvOffset64, fmt.Sprintf("%s|%d|", m.Assign, len(m.Shards)))
	for _, s := range m.Shards {
		h = fnv1a64Step(h, fmt.Sprintf("%d:%d|", s.Generation, s.Tables))
	}
	return h
}

// WriteManifest writes the manifest as a framed snapshot stream.
func WriteManifest(w io.Writer, m *Manifest) error {
	if err := WriteHeader(w, manifestMagic, manifestVersion, 0); err != nil {
		return err
	}
	sw := NewWriter(w)
	return sw.Section(secManifest, func(e *Encoder) {
		e.Str(m.Assign)
		e.U32(uint32(len(m.Shards)))
		for _, s := range m.Shards {
			e.Str(s.Snapshot)
			e.U64(s.Generation)
			e.U32(uint32(s.Tables))
		}
	})
}

// ReadManifest reads a manifest written by WriteManifest. Corruption
// in any form satisfies errors.Is(err, ErrCorrupt).
func ReadManifest(r io.Reader) (*Manifest, error) {
	version, _, err := ReadHeader(r, manifestMagic)
	if err != nil {
		return nil, err
	}
	if version != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported manifest version %d (want %d)", ErrCorrupt, version, manifestVersion)
	}
	sr := NewReader(r)
	m := &Manifest{}
	if err := sr.Section(secManifest, func(d *Decoder) error {
		m.Assign = d.Str()
		n := int(d.U32())
		if n < 0 || n*16 > d.Remaining() { // each entry is ≥ 4 (str len) + 8 + 4 bytes
			d.fail("implausible shard count %d", n)
			return d.Err()
		}
		m.Shards = make([]ShardEntry, n)
		for i := range m.Shards {
			m.Shards[i] = ShardEntry{
				Snapshot:   d.Str(),
				Generation: d.U64(),
				Tables:     int(d.U32()),
			}
		}
		return d.Err()
	}); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	if m.Assign != AssignFNV1a {
		return nil, fmt.Errorf("%w: unknown assignment function %q", ErrCorrupt, m.Assign)
	}
	return m, nil
}

// WriteManifestFile writes the manifest to a file.
func WriteManifestFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteManifest(bw, m); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifestFile reads a manifest from a file.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(bufio.NewReader(f))
}
