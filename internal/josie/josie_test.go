package josie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tablehound/internal/invindex"
	"tablehound/internal/minhash"
)

// randomLake builds n sets drawing tokens from a Zipf-like pool so
// that document frequencies are skewed, as in real data lakes.
func randomLake(t testing.TB, n int, seed int64) (*invindex.Index, map[string][]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, 5000)
	b := invindex.NewBuilder()
	raw := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		size := 5 + rng.Intn(60)
		vs := make([]string, size)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", zipf.Uint64())
		}
		key := fmt.Sprintf("set%04d", i)
		raw[key] = vs
		if err := b.Add(key, vs); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix, raw
}

// bruteTopK is the ground-truth reference.
func bruteTopK(raw map[string][]string, query []string, k int) []Result {
	var res []Result
	for key, vs := range raw {
		if ov := minhash.ExactOverlap(query, vs); ov > 0 {
			res = append(res, Result{Key: key, Overlap: ov})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Overlap != res[j].Overlap {
			return res[i].Overlap > res[j].Overlap
		}
		return res[i].Key < res[j].Key
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

func overlaps(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Overlap
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	ix, raw := randomLake(t, 300, 1)
	s := NewSearcher(ix)
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.3, 1, 5000)
	for trial := 0; trial < 20; trial++ {
		qn := 5 + rng.Intn(40)
		query := make([]string, qn)
		for i := range query {
			query[i] = fmt.Sprintf("tok%d", zipf.Uint64())
		}
		for _, k := range []int{1, 3, 10} {
			want := overlaps(bruteTopK(raw, query, k))
			for _, algo := range []Algorithm{MergeList, ProbeSet, Adaptive} {
				got := overlaps(s.TopK(query, k, algo))
				if !equalInts(got, want) {
					t.Errorf("trial %d k=%d %v: overlaps %v, want %v", trial, k, algo, got, want)
				}
			}
		}
	}
}

func TestTopKExactQueryFromLake(t *testing.T) {
	ix, raw := randomLake(t, 200, 3)
	s := NewSearcher(ix)
	// Query with an indexed set: it must rank itself first with
	// overlap equal to its own distinct size.
	query := raw["set0007"]
	res := s.TopK(query, 5, Adaptive)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Key != "set0007" {
		t.Errorf("self not ranked first: %v", res[0])
	}
	distinct := map[string]bool{}
	for _, v := range query {
		distinct[v] = true
	}
	if res[0].Overlap != len(distinct) {
		t.Errorf("self overlap = %d, want %d", res[0].Overlap, len(distinct))
	}
}

func TestEdgeCases(t *testing.T) {
	ix, _ := randomLake(t, 50, 4)
	s := NewSearcher(ix)
	if r := s.TopK(nil, 5, Adaptive); r != nil {
		t.Error("empty query should return nil")
	}
	if r := s.TopK([]string{"never-seen-token"}, 5, Adaptive); r != nil {
		t.Error("unknown-token query should return nil")
	}
	if r := s.TopK([]string{"tok1"}, 0, Adaptive); r != nil {
		t.Error("k=0 should return nil")
	}
}

func TestKLargerThanLake(t *testing.T) {
	ix, raw := randomLake(t, 20, 5)
	s := NewSearcher(ix)
	query := raw["set0000"]
	want := overlaps(bruteTopK(raw, query, 100))
	for _, algo := range []Algorithm{MergeList, ProbeSet, Adaptive} {
		got := overlaps(s.TopK(query, 100, algo))
		if !equalInts(got, want) {
			t.Errorf("%v: got %v, want %v", algo, got, want)
		}
	}
}

func TestAdaptiveDoesLessWorkThanMergeListOnLargeK(t *testing.T) {
	ix, raw := randomLake(t, 2000, 6)
	s := NewSearcher(ix)
	query := raw["set0100"]
	_, stMerge := s.TopKStats(query, 5, MergeList)
	_, stAdapt := s.TopKStats(query, 5, Adaptive)
	costMerge := float64(stMerge.PostingsRead) + float64(stMerge.TokensRead) + 32*float64(stMerge.SetsProbed)
	costAdapt := float64(stAdapt.PostingsRead) + float64(stAdapt.TokensRead) + 32*float64(stAdapt.SetsProbed)
	if costAdapt > costMerge*1.5 {
		t.Errorf("adaptive cost %.0f vastly exceeds mergelist %.0f", costAdapt, costMerge)
	}
}

func TestCostModelSwitchesStrategy(t *testing.T) {
	ix, raw := randomLake(t, 500, 7)
	query := raw["set0001"]
	// Expensive probes: adaptive avoids mid-stream probing and reads
	// more posting entries. Cheap probes raise the k-th bound early
	// and stop reading sooner.
	expensive := NewSearcherCost(ix, CostModel{ReadPosting: 1, ReadToken: 1000, ProbeSeek: 1e6})
	_, stE := expensive.TopKStats(query, 3, Adaptive)
	cheap := NewSearcherCost(ix, CostModel{ReadPosting: 1000, ReadToken: 0.001, ProbeSeek: 0})
	_, stC := cheap.TopKStats(query, 3, Adaptive)
	if stC.PostingsRead > stE.PostingsRead {
		t.Errorf("cheap probes should not read more postings: cheap=%d expensive=%d", stC.PostingsRead, stE.PostingsRead)
	}
	if stC.SetsProbed == 0 {
		t.Error("cheap probes should trigger mid-stream probing")
	}
}

func TestAlgorithmString(t *testing.T) {
	if MergeList.String() != "mergelist" || ProbeSet.String() != "probeset" || Adaptive.String() != "adaptive" {
		t.Error("Algorithm.String wrong")
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm should stringify")
	}
}
