// Package josie implements JOSIE (Zhu, Deng, Nargesian, Miller —
// SIGMOD 2019): exact top-k overlap set-similarity search for joinable
// table discovery. Given a query column's distinct values, it returns
// the k indexed columns with the largest exact value overlap.
//
// Three strategies are provided, matching the paper's ablation:
//
//   - MergeList reads the full posting list of every query token and
//     counts overlaps — optimal when lists are short.
//   - ProbeSet reads posting lists only to discover candidates, probing
//     each candidate's full token list for its exact overlap — optimal
//     when a few large candidates dominate.
//   - Adaptive (JOSIE proper) interleaves the two, using a cost model
//     and position-based overlap upper bounds to stop early.
//
// All three return the same exact result; they differ only in cost.
package josie

import (
	"fmt"
	"sort"

	"tablehound/internal/invindex"
)

// Algorithm selects the search strategy.
type Algorithm int

// Strategies. Adaptive is JOSIE's cost-based algorithm.
const (
	MergeList Algorithm = iota
	ProbeSet
	Adaptive
)

func (a Algorithm) String() string {
	switch a {
	case MergeList:
		return "mergelist"
	case ProbeSet:
		return "probeset"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Result is one search hit.
type Result struct {
	Key     string
	Overlap int
}

// CostModel weights the two primitive operations: scanning one posting
// entry and reading one token of a candidate set (plus a per-probe
// seek overhead). Relative magnitudes, not units, drive decisions.
type CostModel struct {
	ReadPosting float64 // cost per posting entry scanned
	ReadToken   float64 // cost per set token read during a probe
	ProbeSeek   float64 // fixed overhead per probe
}

// DefaultCost mirrors the disk-resident setting of the paper, where a
// probe pays a seek before streaming the set.
func DefaultCost() CostModel {
	return CostModel{ReadPosting: 1, ReadToken: 1, ProbeSeek: 32}
}

// Searcher answers top-k overlap queries against a frozen index.
// Safe for concurrent use.
type Searcher struct {
	ix   *invindex.Index
	cost CostModel
}

// NewSearcher wraps an index with the default cost model.
func NewSearcher(ix *invindex.Index) *Searcher {
	return &Searcher{ix: ix, cost: DefaultCost()}
}

// NewSearcherCost wraps an index with an explicit cost model.
func NewSearcherCost(ix *invindex.Index, cm CostModel) *Searcher {
	return &Searcher{ix: ix, cost: cm}
}

// Stats reports the work a query performed, for benchmarking.
type Stats struct {
	PostingsRead int
	SetsProbed   int
	TokensRead   int
}

// TopK returns the k sets with largest exact overlap with the query
// values, descending by overlap with key tiebreak. Sets with zero
// overlap are never returned.
func (s *Searcher) TopK(values []string, k int, algo Algorithm) []Result {
	r, _ := s.TopKStats(values, k, algo)
	return r
}

// TopKStats is TopK plus work counters.
func (s *Searcher) TopKStats(values []string, k int, algo Algorithm) ([]Result, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	return s.topK(s.ix.QueryRanks(values), k, algo, nil)
}

// TopKIDs is TopK for a query already interned to deduplicated
// dictionary IDs (an ID-built index); out-of-vocabulary IDs are
// dropped, exactly as unknown strings are. Results are identical to
// TopK over the decoded values.
func (s *Searcher) TopKIDs(ids []uint32, k int, algo Algorithm) []Result {
	r, _ := s.TopKIDsStats(ids, k, algo)
	return r
}

// TopKIDsStats is TopKIDs plus work counters.
func (s *Searcher) TopKIDsStats(ids []uint32, k int, algo Algorithm) ([]Result, Stats) {
	return s.TopKIDsAllowedStats(ids, k, algo, nil)
}

// TopKIDsAllowedStats restricts the search to the sets whose ID
// indexes true in allowed (nil = unrestricted): postings of masked-out
// sets are skipped during traversal, so the allowed set prunes inside
// the index instead of being enumerated and scored around it. Masked
// sets never become candidates, and the bounds and early-stop logic
// see only allowed candidates, which is the restricted search's own
// exact state; overlap values therefore match TopKIDsStats filtered to
// allowed sets and re-truncated to k. With MergeList the result is
// bit-identical to that filtered ranking — every allowed set with a
// shared token is counted exactly and tie-broken (overlap desc, key
// asc); ProbeSet and Adaptive may early-stop past an unverified
// candidate tied at the k-th overlap and pick a different tie
// representative. allowed must be sized to the index's NumSets when
// non-nil.
func (s *Searcher) TopKIDsAllowedStats(ids []uint32, k int, algo Algorithm, allowed []bool) ([]Result, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	return s.topK(s.ix.QueryRanksIDs(ids), k, algo, allowed)
}

func (s *Searcher) topK(q []int32, k int, algo Algorithm, allowed []bool) ([]Result, Stats) {
	var st Stats
	if len(q) == 0 {
		return nil, st
	}
	var res []Result
	switch algo {
	case MergeList:
		res = s.mergeList(q, k, &st, allowed)
	case ProbeSet:
		res = s.probeSet(q, k, &st, allowed)
	default:
		res = s.adaptive(q, k, &st, allowed)
	}
	return res, st
}

// mergeList reads every posting list fully and counts overlaps.
func (s *Searcher) mergeList(q []int32, k int, st *Stats, allowed []bool) []Result {
	counts := make(map[int32]int)
	for _, tok := range q {
		pl := s.ix.Postings(tok)
		st.PostingsRead += len(pl)
		for _, p := range pl {
			if allowed != nil && !allowed[p.Set] {
				continue
			}
			counts[p.Set]++
		}
	}
	return selectTopK(s.ix, counts, k)
}

// probeSet discovers candidates from posting lists (rarest token
// first) and probes each new candidate for its exact overlap. Reading
// stops once tokens remaining cannot beat the current k-th overlap.
func (s *Searcher) probeSet(q []int32, k int, st *Stats, allowed []bool) []Result {
	exact := make(map[int32]int)
	probed := make(map[int32]bool)
	for i, tok := range q {
		if kth := kthBest(exact, k); len(q)-i <= kth {
			break
		}
		pl := s.ix.Postings(tok)
		st.PostingsRead += len(pl)
		for _, p := range pl {
			if allowed != nil && !allowed[p.Set] {
				continue
			}
			if probed[p.Set] {
				continue
			}
			probed[p.Set] = true
			set := s.ix.Set(p.Set)
			st.SetsProbed++
			st.TokensRead += len(set) - int(p.Pos)
			// Tokens before p.Pos are ranked below tok and were already
			// covered by earlier query tokens (or absent from q), so
			// overlap seen so far (i matches impossible before first
			// shared token) is counted from the merge of suffixes plus
			// matches among earlier query tokens.
			ov := invindex.OverlapFrom(q, i, set, int(p.Pos))
			if i > 0 {
				ov += invindex.Overlap(q[:i], set[:p.Pos])
			}
			exact[p.Set] = ov
		}
	}
	return selectTopK(s.ix, exact, k)
}

// candidate tracks an unverified candidate during adaptive search.
type candidate struct {
	set     int32
	partial int   // matches counted from posting lists so far
	lastPos int32 // position in the set of the last matched token
}

// adaptive is JOSIE's cost-based algorithm: it streams posting lists
// accumulating partial overlaps (which are exact lower bounds), stops
// reading as soon as unread tokens cannot beat the running k-th lower
// bound, and verifies the surviving candidates. While streaming, it
// probes at most one candidate per token read — the one with the best
// upper bound — when the cost model prices the probe below the posting
// lists the tighter bound may save. Expensive probes therefore reduce
// it to early-stopping MergeList; cheap probes approach ProbeSet.
func (s *Searcher) adaptive(q []int32, k int, st *Stats, allowed []bool) []Result {
	exact := make(map[int32]int) // verified exact overlaps
	cands := make(map[int32]*candidate)
	verified := make(map[int32]bool)

	verify := func(c *candidate, remainIdx int) {
		set := s.ix.Set(c.set)
		st.SetsProbed++
		st.TokensRead += len(set) - int(c.lastPos)
		exact[c.set] = c.partial + invindex.OverlapFrom(q, remainIdx, set, int(c.lastPos)+1)
		verified[c.set] = true
		delete(cands, c.set)
	}

	// kthLB is the k-th best lower bound across verified overlaps and
	// unverified partial counts; both are true lower bounds.
	kthLB := func() int {
		if len(exact)+len(cands) < k {
			return 0
		}
		vals := make([]int, 0, len(exact)+len(cands))
		for _, v := range exact {
			vals = append(vals, v)
		}
		for _, c := range cands {
			vals = append(vals, c.partial)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(vals)))
		return vals[k-1]
	}

	// Remaining posting-list cost from query token i onward.
	listCost := make([]float64, len(q)+1)
	for i := len(q) - 1; i >= 0; i-- {
		listCost[i] = listCost[i+1] + s.cost.ReadPosting*float64(s.ix.DF(q[i]))
	}

	stop := len(q) // index of the first unread query token
	for i := 0; i < len(q); i++ {
		remaining := len(q) - i // tokens not yet read, including q[i]
		kth := kthLB()
		if remaining <= kth {
			stop = i
			break
		}
		// Cost-gated incremental probe: verify the candidate with the
		// best upper bound if a probe is cheap relative to what a
		// tighter kth bound can save in posting reads.
		if len(cands) > 0 {
			var best *candidate
			bestUB := kth
			for _, c := range cands {
				rest := s.ix.SetSize(c.set) - int(c.lastPos) - 1
				if remaining < rest {
					rest = remaining
				}
				ub := c.partial + rest
				if ub > bestUB || (best == nil && ub == bestUB && len(exact) < k) {
					best, bestUB = c, ub
				}
			}
			if best != nil {
				probeCost := s.cost.ProbeSeek + s.cost.ReadToken*float64(s.ix.SetSize(best.set)-int(best.lastPos))
				if probeCost < listCost[i]-listCost[min(i+remaining/2+1, len(q))] {
					verify(best, i)
				}
			}
		}
		pl := s.ix.Postings(q[i])
		st.PostingsRead += len(pl)
		for _, p := range pl {
			if allowed != nil && !allowed[p.Set] {
				continue
			}
			if verified[p.Set] {
				continue
			}
			c, ok := cands[p.Set]
			if !ok {
				c = &candidate{set: p.Set}
				cands[p.Set] = c
			}
			c.partial++
			c.lastPos = p.Pos
		}
	}
	// Final cleanup. If every query token was read, partial counts are
	// exact overlaps and no probes are needed. Otherwise verify in
	// upper-bound order so the k-th bound tightens fastest, and stop
	// once no remaining candidate can reach it.
	remaining := len(q) - stop
	if remaining == 0 {
		for set, c := range cands {
			exact[set] = c.partial
		}
	} else {
		byUB := make([]*candidate, 0, len(cands))
		ub := func(c *candidate) int {
			rest := s.ix.SetSize(c.set) - int(c.lastPos) - 1
			if remaining < rest {
				rest = remaining
			}
			return c.partial + rest
		}
		for _, c := range cands {
			byUB = append(byUB, c)
		}
		sort.Slice(byUB, func(i, j int) bool {
			if ub(byUB[i]) != ub(byUB[j]) {
				return ub(byUB[i]) > ub(byUB[j])
			}
			return byUB[i].set < byUB[j].set
		})
		kth := kthBest(exact, k)
		for _, c := range byUB {
			if u := ub(c); u < kth || (u == kth && len(exact) >= k && kth > 0) {
				// Sorted descending: nothing later can reach kth
				// strictly; equal-ub ties cannot change the k-th
				// overlap value once k exact results exist.
				break
			}
			verify(c, stop)
			kth = kthBest(exact, k)
		}
	}
	return selectTopK(s.ix, exact, k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// kthBest returns the k-th largest value in m, or 0 if fewer than k.
func kthBest(m map[int32]int, k int) int {
	if len(m) < k {
		return 0
	}
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	return vals[k-1]
}

// selectTopK orders overlaps descending (key tiebreak) and keeps k.
func selectTopK(ix *invindex.Index, overlaps map[int32]int, k int) []Result {
	res := make([]Result, 0, len(overlaps))
	for set, ov := range overlaps {
		if ov > 0 {
			res = append(res, Result{Key: ix.Key(set), Overlap: ov})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Overlap != res[j].Overlap {
			return res[i].Overlap > res[j].Overlap
		}
		return res[i].Key < res[j].Key
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}
