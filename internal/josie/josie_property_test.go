package josie

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tablehound/internal/invindex"
)

// TestExactnessProperty drives randomized small universes through all
// three strategies and checks the returned overlap values against
// brute force — the core correctness contract of the package.
func TestExactnessProperty(t *testing.T) {
	type spec struct {
		Seed   int64
		NumSet uint8
		K      uint8
	}
	f := func(s spec) bool {
		nSets := int(s.NumSet%40) + 5
		k := int(s.K%8) + 1
		rng := rand.New(rand.NewSource(s.Seed))
		b := invindex.NewBuilder()
		raw := make(map[string][]string, nSets)
		for i := 0; i < nSets; i++ {
			n := 1 + rng.Intn(15)
			vs := make([]string, n)
			for j := range vs {
				vs[j] = fmt.Sprintf("t%d", rng.Intn(30))
			}
			key := fmt.Sprintf("s%02d", i)
			raw[key] = vs
			if err := b.Add(key, vs); err != nil {
				return false
			}
		}
		ix, err := b.Build()
		if err != nil {
			return false
		}
		srch := NewSearcher(ix)
		qn := 1 + rng.Intn(15)
		query := make([]string, qn)
		for j := range query {
			query[j] = fmt.Sprintf("t%d", rng.Intn(30))
		}
		want := overlaps(bruteTopK(raw, query, k))
		for _, algo := range []Algorithm{MergeList, ProbeSet, Adaptive} {
			if !equalInts(overlaps(srch.TopK(query, k, algo)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStatsAccounting checks that the work counters are consistent:
// every strategy reads at least one posting for a non-empty query and
// probes never exceed the number of indexed sets.
func TestStatsAccounting(t *testing.T) {
	ix, raw := randomLake(t, 100, 11)
	s := NewSearcher(ix)
	for _, algo := range []Algorithm{MergeList, ProbeSet, Adaptive} {
		_, st := s.TopKStats(raw["set0001"], 5, algo)
		if st.PostingsRead <= 0 {
			t.Errorf("%v: no postings read", algo)
		}
		if st.SetsProbed > ix.NumSets() {
			t.Errorf("%v: probed %d > %d sets", algo, st.SetsProbed, ix.NumSets())
		}
		if algo == MergeList && st.SetsProbed != 0 {
			t.Errorf("mergelist probed %d sets", st.SetsProbed)
		}
	}
}
