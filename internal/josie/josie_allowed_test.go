package josie

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tablehound/internal/invindex"
)

// idLake builds an index straight from uint32 token IDs so tests
// control the vocabulary the allowed-mask queries use.
func idLake(t *testing.T, nSets int, seed int64) (*invindex.Index, [][]uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := invindex.NewBuilder()
	sets := make([][]uint32, nSets)
	for i := 0; i < nSets; i++ {
		n := 1 + rng.Intn(12)
		ids := make([]uint32, n)
		for j := range ids {
			ids[j] = uint32(rng.Intn(40))
		}
		sets[i] = ids
		if err := b.AddIDs(fmt.Sprintf("s%03d", i), ids); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix, sets
}

// TestTopKAllowedIsFilteredTopK pins the allowed-mask contract: the
// restricted result must equal the unrestricted full ranking filtered
// to allowed sets and re-truncated to k — bit-identically for
// MergeList (which counts every allowed candidate and tie-breaks
// canonically), and in overlap values for ProbeSet and Adaptive
// (whose early stopping may pick a different tie representative at
// the k-th position).
func TestTopKAllowedIsFilteredTopK(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ix, _ := idLake(t, 30, seed)
		s := NewSearcher(ix)
		rng := rand.New(rand.NewSource(seed + 1000))
		// TopKIDs takes deduplicated query IDs (EncodeQuery's contract).
		dedup := make(map[uint32]bool)
		for len(dedup) < 1+rng.Intn(10) {
			dedup[uint32(rng.Intn(40))] = true
		}
		query := make([]uint32, 0, len(dedup))
		for id := range dedup {
			query = append(query, id)
		}
		allowed := make([]bool, ix.NumSets())
		for i := range allowed {
			allowed[i] = rng.Intn(3) != 0
		}
		k := 1 + rng.Intn(6)
		// Oracle: full unrestricted ranking, filtered, truncated.
		full, _ := s.TopKIDsStats(query, ix.NumSets(), MergeList)
		var want []Result
		for _, r := range full {
			id, ok := ix.SetID(r.Key)
			if !ok {
				t.Fatalf("unknown key %q", r.Key)
			}
			if allowed[id] {
				want = append(want, r)
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		if got, _ := s.TopKIDsAllowedStats(query, k, MergeList, allowed); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d mergelist: allowed top-k = %v, want %v", seed, got, want)
		}
		for _, algo := range []Algorithm{ProbeSet, Adaptive} {
			got, _ := s.TopKIDsAllowedStats(query, k, algo, allowed)
			if len(got) != len(want) {
				t.Errorf("seed %d %v: %d results, want %d", seed, algo, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i].Overlap != want[i].Overlap {
					t.Errorf("seed %d %v: overlaps at %d = %v, want %v", seed, algo, i, got, want)
					break
				}
			}
		}
	}
}

// TestTopKAllowedNilMask checks that a nil mask is the unrestricted
// search, and an all-false mask returns nothing.
func TestTopKAllowedNilMask(t *testing.T) {
	ix, sets := idLake(t, 20, 7)
	s := NewSearcher(ix)
	query := sets[0]
	want, _ := s.TopKIDsStats(query, 5, Adaptive)
	got, _ := s.TopKIDsAllowedStats(query, 5, Adaptive, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nil mask diverged from unrestricted: %v vs %v", got, want)
	}
	none, _ := s.TopKIDsAllowedStats(query, 5, Adaptive, make([]bool, ix.NumSets()))
	if len(none) != 0 {
		t.Errorf("all-false mask returned %v", none)
	}
}
