package join

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAddColumnsMatchesSequential checks the batch loader's parity
// contract: AddColumns at any worker count must leave the joiner in
// the same state as the historical one-at-a-time AddColumn loop —
// same pivots, same search results.
func TestAddColumnsMatchesSequential(t *testing.T) {
	cols := make([]FuzzyColumn, 12)
	for i := range cols {
		vals := make([]string, 40)
		for j := range vals {
			vals[j] = fmt.Sprintf("entity_%02d_%04d", i, j)
		}
		cols[i] = FuzzyColumn{Key: fmt.Sprintf("lake.c%02d", i), Values: vals}
	}
	query := cols[3].Values

	seq := NewFuzzyJoiner(fuzzyModel(), 4)
	for _, c := range cols {
		if err := seq.AddColumn(c.Key, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		par := NewFuzzyJoiner(fuzzyModel(), 4)
		if err := par.AddColumns(cols, workers); err != nil {
			t.Fatal(err)
		}
		gotRes, gotStats := par.Search(query, 0.85, 0.5)
		wantRes, wantStats := seq.Search(query, 0.85, 0.5)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("workers=%d: results differ\ngot  %+v\nwant %+v", workers, gotRes, wantRes)
		}
		if gotStats != wantStats {
			t.Errorf("workers=%d: stats differ: got %+v want %+v", workers, gotStats, wantStats)
		}
	}

	// Duplicate keys in a batch are rejected like sequential ones.
	dup := NewFuzzyJoiner(fuzzyModel(), 4)
	if err := dup.AddColumns([]FuzzyColumn{cols[0], cols[0]}, 2); err == nil {
		t.Error("duplicate key in batch should fail")
	}
}
