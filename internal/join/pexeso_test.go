package join

import (
	"fmt"
	"math/rand"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
)

func fuzzyModel() *embedding.Model {
	// Char-gram fallback is all PEXESO needs; train on nothing.
	return embedding.Train(nil, embedding.Config{Dim: 64, Seed: 5})
}

func TestFuzzySearchFindsCorruptedColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clean := make([]string, 80)
	for i := range clean {
		clean[i] = fmt.Sprintf("organization_name_%04d", i)
	}
	dirty := datagen.CorruptValues(clean, 0.5, rng)
	other := make([]string, 80)
	for i := range other {
		other[i] = fmt.Sprintf("zzz_unrelated_%04d", i+5000)
	}
	f := NewFuzzyJoiner(fuzzyModel(), 4)
	if err := f.AddColumn("lake.dirty", dirty); err != nil {
		t.Fatal(err)
	}
	if err := f.AddColumn("lake.other", other); err != nil {
		t.Fatal(err)
	}
	res, st := f.Search(clean, 0.85, 0.5)
	if len(res) == 0 || res[0].ColumnKey != "lake.dirty" {
		t.Fatalf("results = %+v", res)
	}
	if res[0].MatchedFraction < 0.9 {
		t.Errorf("matched fraction = %v, want near 1 (typos tolerated)", res[0].MatchedFraction)
	}
	for _, m := range res {
		if m.ColumnKey == "lake.other" {
			t.Error("unrelated column matched")
		}
	}
	if st.Comparisons == 0 {
		t.Error("no comparisons recorded")
	}
}

func TestFuzzyPivotFilterPrunes(t *testing.T) {
	f := NewFuzzyJoiner(fuzzyModel(), 6)
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("completely_different_%04d", i)
	}
	f.AddColumn("lake.col", vals)
	q := []string{"zzzz_nothing_like_it_at_all"}
	_, st := f.Search(q, 0.95, 0)
	if st.PivotSkips == 0 {
		t.Error("pivot filter never pruned")
	}
	if st.Comparisons+st.PivotSkips != 200 {
		t.Errorf("work accounting: %d + %d != 200", st.Comparisons, st.PivotSkips)
	}
}

func TestFuzzyExactEquijoinMissesWhatFuzzyFinds(t *testing.T) {
	// The PEXESO headline: on corrupted keys, exact overlap collapses
	// while fuzzy matching holds.
	rng := rand.New(rand.NewSource(2))
	clean := make([]string, 100)
	for i := range clean {
		clean[i] = fmt.Sprintf("customer_record_%05d", i)
	}
	dirty := datagen.CorruptValues(clean, 0.9, rng)

	b := NewBuilder(1)
	b.AddColumn("lake.dirty", dirty)
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact := e.TopKOverlap(clean, 1)
	exactOverlap := 0
	if len(exact) > 0 {
		exactOverlap = exact[0].Overlap
	}

	f := NewFuzzyJoiner(fuzzyModel(), 4)
	f.AddColumn("lake.dirty", dirty)
	res, _ := f.Search(clean, 0.85, 0)
	if len(res) == 0 {
		t.Fatal("fuzzy search found nothing")
	}
	fuzzyMatched := int(res[0].MatchedFraction * 100)
	if fuzzyMatched <= exactOverlap+30 {
		t.Errorf("fuzzy %d should far exceed exact %d on 90%% corrupted keys", fuzzyMatched, exactOverlap)
	}
}

func TestFuzzyDuplicateColumn(t *testing.T) {
	f := NewFuzzyJoiner(fuzzyModel(), 2)
	f.AddColumn("k", []string{"a"})
	if err := f.AddColumn("k", []string{"b"}); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestFuzzyEmptyQuery(t *testing.T) {
	f := NewFuzzyJoiner(fuzzyModel(), 2)
	f.AddColumn("k", []string{"a"})
	res, _ := f.Search(nil, 0.9, 0)
	if res != nil {
		t.Error("empty query should return nil")
	}
}
