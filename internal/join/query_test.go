package join

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestTopKOverlapEmptyQuery pins the divide-by-zero guard: a query
// that normalizes to nothing returns no matches — never NaN scores.
func TestTopKOverlapEmptyQuery(t *testing.T) {
	e := demoEngine(t)
	for _, q := range [][]string{nil, {}, {"", "  ", "\t"}} {
		if res := e.TopKOverlap(q, 3); res != nil {
			t.Errorf("TopKOverlap(%q) = %+v, want nil", q, res)
		}
		res, _ := e.TopKOverlapAlgo(q, 3, 0)
		if res != nil {
			t.Errorf("TopKOverlapAlgo(%q) = %+v, want nil", q, res)
		}
	}
	// Sanity: a real query still produces finite containments.
	for _, m := range e.TopKOverlap(genVals("city", 10), 3) {
		if math.IsNaN(m.Containment) || math.IsInf(m.Containment, 0) {
			t.Errorf("non-finite containment: %+v", m)
		}
	}
}

// TestEngineQueryParallelismParity checks that every parallel query
// surface returns results bit-identical to the sequential scan.
func TestEngineQueryParallelismParity(t *testing.T) {
	e := demoEngine(t)
	q := genVals("city", 50)
	type run struct {
		name string
		exec func() interface{}
	}
	runs := []run{
		{"ContainmentSearch", func() interface{} {
			res, err := e.ContainmentSearch(q, 0.6, true)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"JaccardSearch", func() interface{} { return e.JaccardSearch(q, 0.05) }},
		{"ExactContainmentScan", func() interface{} { return e.ExactContainmentScan(q, 0.6) }},
	}
	for _, r := range runs {
		e.QueryParallelism = 1
		want := r.exec()
		for _, workers := range []int{2, 8} {
			e.QueryParallelism = workers
			if got := r.exec(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d differs\ngot  %+v\nwant %+v", r.name, workers, got, want)
			}
		}
	}
}

// TestEngineConcurrentQueries runs every read surface from many
// goroutines at once; under -race this proves queries never mutate
// the engine.
func TestEngineConcurrentQueries(t *testing.T) {
	e := demoEngine(t)
	e.QueryParallelism = 2
	q := genVals("city", 50)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				e.TopKOverlap(q, 3)
				if _, err := e.ContainmentSearch(q, 0.6, true); err != nil {
					t.Error(err)
					return
				}
				e.JaccardSearch(q, 0.05)
				e.ExactContainmentScan(q, 0.6)
			}
		}()
	}
	wg.Wait()
}

// TestFuzzyQueryParallelismParity checks PEXESO's fan-out: matches
// AND work-counter stats are identical at any worker count.
func TestFuzzyQueryParallelismParity(t *testing.T) {
	f := NewFuzzyJoiner(fuzzyModel(), 4)
	for c := 0; c < 4; c++ {
		vals := make([]string, 60)
		for i := range vals {
			vals[i] = fmt.Sprintf("col%d_value_%04d", c, i)
		}
		if err := f.AddColumn(fmt.Sprintf("lake.c%d", c), vals); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]string, 60)
	for i := range q {
		q[i] = fmt.Sprintf("col1_value_%04d", i)
	}
	f.QueryParallelism = 1
	wantRes, wantSt := f.Search(q, 0.85, 0.3)
	for _, workers := range []int{2, 8} {
		f.QueryParallelism = workers
		gotRes, gotSt := f.Search(q, 0.85, 0.3)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("workers=%d results differ\ngot  %+v\nwant %+v", workers, gotRes, wantRes)
		}
		if gotSt != wantSt {
			t.Errorf("workers=%d stats differ: got %+v, want %+v", workers, gotSt, wantSt)
		}
	}
}

// TestFuzzyConcurrentSearch proves the PEXESO read path is race-free.
func TestFuzzyConcurrentSearch(t *testing.T) {
	f := NewFuzzyJoiner(fuzzyModel(), 4)
	vals := make([]string, 40)
	for i := range vals {
		vals[i] = fmt.Sprintf("shared_value_%04d", i)
	}
	if err := f.AddColumn("lake.a", vals); err != nil {
		t.Fatal(err)
	}
	f.QueryParallelism = 2
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				f.Search(vals[:20], 0.85, 0.3)
			}
		}()
	}
	wg.Wait()
}
