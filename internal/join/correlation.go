package join

import (
	"errors"
	"sort"

	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/metrics"
	"tablehound/internal/sketch"
	"tablehound/internal/tokenize"
)

// CorrMatch is one correlated-column hit: a (key column, numeric
// column) pair whose numeric values correlate with the query's after
// joining on the key.
type CorrMatch struct {
	ColumnKey   string  // key of the (keyCol, numCol) pair, "table.key|num"
	QCROverlap  int     // shared QCR tokens (sketch evidence)
	Correlation float64 // exact Pearson on the joined keys (when verified)
}

// CorrEngine indexes keyed numeric columns by their QCR tokens so
// "find columns correlated with mine" becomes top-k overlap search —
// the sketch-based index of Santos et al. (ICDE 2022).
type CorrEngine struct {
	sketchSize int
	inv        *invindex.Index
	searcher   *josie.Searcher
	data       map[string]map[string]float64 // pairKey -> key -> value
}

// CorrBuilder stages keyed numeric columns.
type CorrBuilder struct {
	sketchSize int
	tokens     map[string][]string
	data       map[string]map[string]float64
	order      []string
}

// NewCorrBuilder creates a builder; sketchSize bounds QCR tokens per
// column (0 = unbounded).
func NewCorrBuilder(sketchSize int) *CorrBuilder {
	return &CorrBuilder{
		sketchSize: sketchSize,
		tokens:     make(map[string][]string),
		data:       make(map[string]map[string]float64),
	}
}

// PairKey names an indexed (key column, numeric column) pair.
func PairKey(tableID, keyCol, numCol string) string {
	return tableID + "." + keyCol + "|" + numCol
}

// Add stages one keyed numeric column under pairKey.
func (b *CorrBuilder) Add(pairKey string, keys []string, vals []float64) error {
	if _, dup := b.tokens[pairKey]; dup {
		return errors.New("join: duplicate correlation pair " + pairKey)
	}
	norm := make([]string, len(keys))
	for i, k := range keys {
		norm[i] = tokenize.Normalize(k)
	}
	toks := sketch.QCRTokens(norm, vals, b.sketchSize)
	if len(toks) == 0 {
		return errors.New("join: empty keyed column " + pairKey)
	}
	b.tokens[pairKey] = toks
	m := make(map[string]float64, len(keys))
	for i, k := range norm {
		if k == "" {
			continue
		}
		if _, seen := m[k]; !seen && i < len(vals) {
			m[k] = vals[i]
		}
	}
	b.data[pairKey] = m
	b.order = append(b.order, pairKey)
	return nil
}

// Build freezes the builder into a CorrEngine.
func (b *CorrBuilder) Build() (*CorrEngine, error) {
	if len(b.order) == 0 {
		return nil, errors.New("join: no correlation pairs staged")
	}
	sort.Strings(b.order)
	ib := invindex.NewBuilder()
	for _, k := range b.order {
		if err := ib.Add(k, b.tokens[k]); err != nil {
			return nil, err
		}
	}
	ix, err := ib.Build()
	if err != nil {
		return nil, err
	}
	return &CorrEngine{
		sketchSize: b.sketchSize,
		inv:        ix,
		searcher:   josie.NewSearcher(ix),
		data:       b.data,
	}, nil
}

// TopK returns the k columns most likely correlated (or, with
// negative=true, anticorrelated) with the query keyed series, ranked
// by QCR token overlap and verified with exact Pearson correlation
// over the joined keys.
func (e *CorrEngine) TopK(keys []string, vals []float64, k int, negative bool) []CorrMatch {
	norm := make([]string, len(keys))
	for i, s := range keys {
		norm[i] = tokenize.Normalize(s)
	}
	toks := sketch.QCRTokens(norm, vals, e.sketchSize)
	if negative {
		toks = sketch.FlipTokens(toks)
	}
	res := e.searcher.TopK(toks, k, josie.Adaptive)
	out := make([]CorrMatch, 0, len(res))
	qm := make(map[string]float64, len(norm))
	for i, s := range norm {
		if s == "" {
			continue
		}
		if _, seen := qm[s]; !seen && i < len(vals) {
			qm[s] = vals[i]
		}
	}
	for _, r := range res {
		out = append(out, CorrMatch{
			ColumnKey:   r.Key,
			QCROverlap:  r.Overlap,
			Correlation: e.exactCorrelation(qm, r.Key),
		})
	}
	return out
}

// BruteForceTopK scans all indexed pairs computing exact correlations
// after the join — the baseline the sketch index accelerates.
func (e *CorrEngine) BruteForceTopK(keys []string, vals []float64, k int, negative bool) []CorrMatch {
	qm := make(map[string]float64, len(keys))
	for i, s := range keys {
		n := tokenize.Normalize(s)
		if n == "" {
			continue
		}
		if _, seen := qm[n]; !seen && i < len(vals) {
			qm[n] = vals[i]
		}
	}
	pairKeys := make([]string, 0, len(e.data))
	for pk := range e.data {
		pairKeys = append(pairKeys, pk)
	}
	sort.Strings(pairKeys)
	out := make([]CorrMatch, 0, len(pairKeys))
	for _, pk := range pairKeys {
		c := e.exactCorrelation(qm, pk)
		out = append(out, CorrMatch{ColumnKey: pk, Correlation: c})
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Correlation, out[j].Correlation
		if negative {
			ci, cj = -ci, -cj
		}
		if ci != cj {
			return ci > cj
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// exactCorrelation joins the query map with an indexed pair on keys
// and computes Pearson correlation over the intersection.
func (e *CorrEngine) exactCorrelation(qm map[string]float64, pairKey string) float64 {
	tm := e.data[pairKey]
	keys := make([]string, 0, len(qm))
	for k := range qm {
		if _, ok := tm[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		return 0
	}
	sort.Strings(keys)
	x := make([]float64, len(keys))
	y := make([]float64, len(keys))
	for i, k := range keys {
		x[i], y[i] = qm[k], tm[k]
	}
	return metrics.Pearson(x, y)
}

// NumPairs returns the number of indexed keyed numeric columns.
func (e *CorrEngine) NumPairs() int { return len(e.data) }
