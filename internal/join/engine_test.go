package join

import (
	"fmt"
	"testing"

	"tablehound/internal/josie"
	"tablehound/internal/table"
)

func genVals(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%04d", prefix, i)
	}
	return out
}

func demoEngine(t *testing.T) *Engine {
	t.Helper()
	b := NewBuilder(2)
	b.AddColumn("big.city", genVals("city", 500))       // superset domain
	b.AddColumn("small.city", genVals("city", 60))      // subset
	b.AddColumn("half.city", genVals("city", 30))       // smaller subset
	b.AddColumn("other.person", genVals("person", 100)) // disjoint
	b.AddColumn("mixed.place", append(genVals("city", 40), genVals("country", 40)...))
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTopKOverlap(t *testing.T) {
	e := demoEngine(t)
	q := genVals("city", 50)
	res := e.TopKOverlap(q, 3)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// big.city and small.city both contain all 50; mixed has 40.
	if res[0].Overlap != 50 || res[1].Overlap != 50 {
		t.Errorf("top overlaps = %d, %d, want 50, 50", res[0].Overlap, res[1].Overlap)
	}
	if res[2].ColumnKey != "mixed.place" || res[2].Overlap != 40 {
		t.Errorf("third = %+v", res[2])
	}
	if res[0].Containment != 1.0 {
		t.Errorf("containment = %v", res[0].Containment)
	}
}

func TestTopKOverlapAlgoStats(t *testing.T) {
	e := demoEngine(t)
	q := genVals("city", 50)
	for _, algo := range []josie.Algorithm{josie.MergeList, josie.ProbeSet, josie.Adaptive} {
		res, st := e.TopKOverlapAlgo(q, 2, algo)
		if len(res) != 2 || res[0].Overlap != 50 {
			t.Errorf("%v: res = %+v", algo, res)
		}
		if st.PostingsRead == 0 {
			t.Errorf("%v: no postings read", algo)
		}
	}
}

func TestContainmentSearchVerified(t *testing.T) {
	e := demoEngine(t)
	q := genVals("city", 50)
	res, err := e.ContainmentSearch(q, 0.7, true)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, m := range res {
		keys[m.ColumnKey] = true
		if m.Containment < 0.7 {
			t.Errorf("verified match below threshold: %+v", m)
		}
	}
	if !keys["big.city"] || !keys["small.city"] {
		t.Errorf("missing true containers: %v", keys)
	}
	if keys["other.person"] {
		t.Error("disjoint column retrieved")
	}
}

func TestContainmentSearchEmptyQuery(t *testing.T) {
	e := demoEngine(t)
	if _, err := e.ContainmentSearch(nil, 0.5, true); err == nil {
		t.Error("empty query should error")
	}
}

func TestJaccardBiasAgainstLargeDomains(t *testing.T) {
	// The documented weakness: a small subset column scores higher
	// Jaccard than a large superset column, even though the superset
	// fully contains the query too.
	e := demoEngine(t)
	q := genVals("city", 50)
	res := e.JaccardSearch(q, 0.05)
	var bigJ, smallJ float64
	for _, m := range res {
		switch m.ColumnKey {
		case "big.city":
			bigJ = m.Jaccard
		case "small.city":
			smallJ = m.Jaccard
		}
	}
	if smallJ <= bigJ {
		t.Errorf("Jaccard bias not reproduced: small=%v big=%v", smallJ, bigJ)
	}
	// Containment treats both as perfect containers.
	exact := e.ExactContainmentScan(q, 0.99)
	found := map[string]bool{}
	for _, m := range exact {
		found[m.ColumnKey] = true
	}
	if !found["big.city"] || !found["small.city"] {
		t.Error("containment scan should find both containers")
	}
}

func TestBuilderFiltersAndDedups(t *testing.T) {
	b := NewBuilder(5)
	b.AddColumn("tiny.col", []string{"a", "b"}) // below min cardinality
	b.AddColumn("ok.col", genVals("v", 10))
	b.AddColumn("ok.col", genVals("w", 10)) // duplicate key ignored
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if e.NumColumns() != 1 {
		t.Errorf("NumColumns = %d, want 1", e.NumColumns())
	}
	vals, ok := e.ColumnValues("ok.col")
	if !ok || len(vals) != 10 || vals[0][0] != 'v' {
		t.Error("first Add should win for duplicate keys")
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := NewBuilder(1).Build(); err == nil {
		t.Error("empty Build should fail")
	}
}

func TestAddTableOnlyStringColumns(t *testing.T) {
	tbl := table.MustNew("t", "t", []*table.Column{
		table.NewColumn("name", genVals("name", 20)),
		table.NewColumn("score", []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20"}),
	})
	b := NewBuilder(2)
	b.AddTable(tbl)
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if e.NumColumns() != 1 {
		t.Errorf("NumColumns = %d, want 1 (numeric skipped)", e.NumColumns())
	}
}
