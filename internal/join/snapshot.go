package join

import (
	"fmt"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// AppendSnapshot encodes the join engine against the system dictionary
// sysDict: when the engine's sets are encoded in that dictionary (the
// common case) only a flag is stored and the loaded engine shares the
// container's copy; when Build fell back to a self-built dictionary it
// is serialized inline. Each column stores both its ID set and its
// MinHash signature — the signature is derivable from the set, but
// re-signing every column dominates load time, so the bytes buy back
// startup latency. The LSH Ensemble itself is not stored: its Build
// sorts domains by (size, key), so it is rebuilt bit-identically from
// the stored domains.
func (e *Engine) AppendSnapshot(enc *snap.Encoder, sysDict *dict.Dict) {
	shared := e.dict == sysDict
	enc.Bool(shared)
	if !shared {
		e.dict.AppendSnapshot(enc)
	}
	e.hasher.AppendSnapshot(enc)
	numHashes, numPart := e.ensemble.Params()
	enc.U32(uint32(numHashes))
	enc.U32(uint32(numPart))
	enc.Strs(e.keys)
	for _, key := range e.keys {
		enc.U32s(e.idsets[key])
		enc.U64s(e.dict.Sign(e.hasher, e.idsets[key]))
	}
	e.inv.AppendSnapshot(enc)
}

// DecodeEngineSnapshot rebuilds an engine written by AppendSnapshot.
// sysDict is the container's loaded dictionary, substituted when the
// snapshot recorded a shared encoding. parallelism bounds the workers
// used to rebuild the ensemble's banded indexes.
func DecodeEngineSnapshot(d *snap.Decoder, sysDict *dict.Dict, parallelism int) (*Engine, error) {
	shared := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	dc := sysDict
	if !shared {
		var err error
		if dc, err = dict.DecodeSnapshot(d); err != nil {
			return nil, err
		}
	} else if dc == nil {
		return nil, fmt.Errorf("%w: join engine shares a dictionary the snapshot does not carry", snap.ErrCorrupt)
	}
	hasher, err := minhash.DecodeSnapshot(d)
	if err != nil {
		return nil, err
	}
	numHashes := int(d.U32())
	numPart := int(d.U32())
	keys := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if numHashes != hasher.K() {
		return nil, fmt.Errorf("%w: ensemble width %d vs hasher width %d", snap.ErrCorrupt, numHashes, hasher.K())
	}
	if numPart <= 0 {
		return nil, fmt.Errorf("%w: ensemble partitions %d", snap.ErrCorrupt, numPart)
	}
	if !sort.StringsAreSorted(keys) {
		return nil, fmt.Errorf("%w: join engine keys not sorted", snap.ErrCorrupt)
	}
	idsets := make(map[string]dict.IDSet, len(keys))
	ens := lshensemble.New(numHashes, numPart)
	for _, key := range keys {
		ids := dict.IDSet(d.U32s())
		sig := minhash.Signature(d.U64s())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := idsets[key]; dup {
			return nil, fmt.Errorf("%w: duplicate join column %q", snap.ErrCorrupt, key)
		}
		if len(sig) != numHashes {
			return nil, fmt.Errorf("%w: join column %q signature has %d hashes, want %d", snap.ErrCorrupt, key, len(sig), numHashes)
		}
		idsets[key] = ids
		if err := ens.Add(lshensemble.Domain{Key: key, Size: len(ids), Sig: sig}); err != nil {
			return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
		}
	}
	if len(keys) > 0 {
		if err := ens.BuildN(parallelism); err != nil {
			return nil, fmt.Errorf("%w: %v", snap.ErrCorrupt, err)
		}
	}
	ix, err := invindex.DecodeSnapshot(d)
	if err != nil {
		return nil, err
	}
	if ix.NumSets() != len(keys) {
		return nil, fmt.Errorf("%w: inverted index has %d sets for %d join columns", snap.ErrCorrupt, ix.NumSets(), len(keys))
	}
	return &Engine{
		inv:      ix,
		searcher: josie.NewSearcher(ix),
		ensemble: ens,
		hasher:   hasher,
		dict:     dc,
		idsets:   idsets,
		keys:     keys,
	}, nil
}

// AppendSnapshot encodes the correlation engine: the QCR inverted
// index plus the joined (key, value) data maps, pair keys and inner
// keys both in sorted order.
func (e *CorrEngine) AppendSnapshot(enc *snap.Encoder) {
	enc.U32(uint32(e.sketchSize))
	e.inv.AppendSnapshot(enc)
	pairKeys := make([]string, 0, len(e.data))
	for pk := range e.data {
		pairKeys = append(pairKeys, pk)
	}
	sort.Strings(pairKeys)
	enc.U32(uint32(len(pairKeys)))
	for _, pk := range pairKeys {
		enc.Str(pk)
		m := e.data[pk]
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		enc.U32(uint32(len(ks)))
		for _, k := range ks {
			enc.Str(k)
			enc.F64(m[k])
		}
	}
}

// DecodeCorrSnapshot rebuilds a correlation engine written by
// AppendSnapshot.
func DecodeCorrSnapshot(d *snap.Decoder) (*CorrEngine, error) {
	sketchSize := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	ix, err := invindex.DecodeSnapshot(d)
	if err != nil {
		return nil, err
	}
	numPairs := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	data := make(map[string]map[string]float64, numPairs)
	for i := 0; i < numPairs; i++ {
		pk := d.Str()
		n := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		m := make(map[string]float64, n)
		for j := 0; j < n; j++ {
			k := d.Str()
			v := d.F64()
			if d.Err() != nil {
				return nil, d.Err()
			}
			m[k] = v
		}
		if len(m) != n {
			return nil, fmt.Errorf("%w: duplicate key in correlation pair %q", snap.ErrCorrupt, pk)
		}
		if _, dup := data[pk]; dup {
			return nil, fmt.Errorf("%w: duplicate correlation pair %q", snap.ErrCorrupt, pk)
		}
		data[pk] = m
	}
	return &CorrEngine{
		sketchSize: sketchSize,
		inv:        ix,
		searcher:   josie.NewSearcher(ix),
		data:       data,
	}, nil
}

// AppendSnapshot encodes the MATE index: per-table normalized cell
// matrices and XASH super keys verbatim, and the value posting lists
// in sorted value order (each list's row references stay in build
// order: table, then row, then column).
func (m *MateIndex) AppendSnapshot(enc *snap.Encoder) {
	enc.Strs(m.ids)
	for _, id := range m.ids {
		mt := m.tables[id]
		enc.U64s(mt.keys)
		enc.U32(uint32(len(mt.norm)))
		for _, row := range mt.norm {
			enc.Strs(row)
		}
	}
	values := make([]string, 0, len(m.posting))
	for v := range m.posting {
		values = append(values, v)
	}
	sort.Strings(values)
	enc.U32(uint32(len(values)))
	for _, v := range values {
		refs := m.posting[v]
		enc.Str(v)
		tis := make([]int32, len(refs))
		rows := make([]int32, len(refs))
		cols := make([]int32, len(refs))
		for i, r := range refs {
			tis[i], rows[i], cols[i] = r.tableIdx, r.row, int32(r.col)
		}
		enc.I32s(tis)
		enc.I32s(rows)
		enc.I32s(cols)
	}
}

// DecodeMateSnapshot rebuilds a MATE index written by AppendSnapshot.
// Table pointers are rewired through lookup (the loaded catalog).
func DecodeMateSnapshot(d *snap.Decoder, lookup func(id string) *table.Table) (*MateIndex, error) {
	ids := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	m := &MateIndex{
		tables:  make(map[string]*mateTable, len(ids)),
		ids:     ids,
		posting: make(map[string][]rowRef),
	}
	for _, id := range ids {
		tbl := lookup(id)
		if tbl == nil {
			return nil, fmt.Errorf("%w: MATE table %q missing from catalog", snap.ErrCorrupt, id)
		}
		keys := d.U64s()
		rows := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if len(keys) != rows {
			return nil, fmt.Errorf("%w: MATE table %q has %d super keys for %d rows", snap.ErrCorrupt, id, len(keys), rows)
		}
		norm := make([][]string, rows)
		for r := 0; r < rows; r++ {
			norm[r] = d.Strs()
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		if _, dup := m.tables[id]; dup {
			return nil, fmt.Errorf("%w: duplicate MATE table %q", snap.ErrCorrupt, id)
		}
		m.tables[id] = &mateTable{tbl: tbl, keys: keys, norm: norm}
	}
	numValues := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numValues; i++ {
		v := d.Str()
		tis := d.I32s()
		rows := d.I32s()
		cols := d.I32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if len(rows) != len(tis) || len(cols) != len(tis) {
			return nil, fmt.Errorf("%w: MATE posting %q has ragged reference arrays", snap.ErrCorrupt, v)
		}
		refs := make([]rowRef, len(tis))
		for j := range tis {
			if tis[j] < 0 || int(tis[j]) >= len(ids) {
				return nil, fmt.Errorf("%w: MATE row reference table %d out of range", snap.ErrCorrupt, tis[j])
			}
			refs[j] = rowRef{tableIdx: tis[j], row: rows[j], col: int16(cols[j])}
		}
		if _, dup := m.posting[v]; dup {
			return nil, fmt.Errorf("%w: duplicate MATE posting value %q", snap.ErrCorrupt, v)
		}
		m.posting[v] = refs
	}
	return m, nil
}
