// Package join implements joinable table search (Section 2.4 of the
// tutorial): given a query column, find data-lake columns that can
// join with it. It unifies the surveyed strategies behind one engine:
//
//   - exact top-k overlap search (JOSIE),
//   - approximate containment search (LSH Ensemble), with optional
//     exact verification,
//   - exact Jaccard threshold search (the Das Sarma-era baseline whose
//     bias against large domains LSH Ensemble fixes),
//   - fuzzy/semantic join via embeddings with pivot filtering (PEXESO),
//   - multi-attribute join via row super-keys (MATE), and
//   - correlation-aware join discovery via QCR sketches.
//
// All exact set arithmetic runs on dictionary-interned integer
// postings (see internal/dict): columns are encoded once at build
// time, queries once at query entry, and every overlap/containment/
// Jaccard is a sorted-integer merge instead of a string-map probe.
package join

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"tablehound/internal/dict"
	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
	"tablehound/internal/parallel"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// DefaultNumHashes is the MinHash signature length used by the engine.
const DefaultNumHashes = 128

// Match is one joinable column hit.
type Match struct {
	ColumnKey   string  // table.ColumnKey of the matched column
	Overlap     int     // exact value overlap (when computed)
	Containment float64 // |Q ∩ X| / |Q| (when computed)
	Jaccard     float64 // (when computed)
}

// Builder stages columns for a join Engine.
type Builder struct {
	minCardinality int
	numHashes      int
	numPartitions  int
	dict           *dict.Dict
	cols           map[string][]string
	order          []string
}

// NewBuilder creates a Builder. Columns with fewer than minCardinality
// distinct values are skipped (tiny columns join with everything and
// pollute results); pass 1 to keep all non-empty columns.
func NewBuilder(minCardinality int) *Builder {
	if minCardinality < 1 {
		minCardinality = 1
	}
	return &Builder{
		minCardinality: minCardinality,
		numHashes:      DefaultNumHashes,
		numPartitions:  8,
		cols:           make(map[string][]string),
	}
}

// UseDict supplies a lake-wide value dictionary covering every staged
// value. Build encodes columns through it so the engine shares one ID
// space with the rest of the system; if the dictionary turns out not
// to cover some staged value, Build falls back to a self-built
// dictionary (cross-column matching must stay within one ID space).
func (b *Builder) UseDict(d *dict.Dict) { b.dict = d }

// AddTable stages every string-typed column of the table.
func (b *Builder) AddTable(t *table.Table) {
	for _, c := range t.Columns {
		if c.Type != table.TypeString && c.Type != table.TypeDate && c.Type != table.TypeUnknown {
			continue
		}
		b.AddColumn(table.ColumnKey(t.ID, c.Name), c.Values)
	}
}

// AddColumn stages one column under a unique key.
func (b *Builder) AddColumn(key string, values []string) {
	distinct := tokenize.NormalizeSet(values)
	if len(distinct) < b.minCardinality {
		return
	}
	if _, dup := b.cols[key]; dup {
		return
	}
	b.cols[key] = distinct
	b.order = append(b.order, key)
}

// NumStaged reports how many columns passed the cardinality filter so
// far. Incremental (delta) builds check it before Build, which rejects
// an empty stage: a batch of new tables may legitimately contribute no
// joinable columns.
func (b *Builder) NumStaged() int { return len(b.order) }

// Build freezes the staged columns into an Engine.
func (b *Builder) Build() (*Engine, error) {
	if len(b.order) == 0 {
		return nil, errors.New("join: no columns staged")
	}
	sort.Strings(b.order)
	// Encode every column through the provided dictionary; if it lacks
	// coverage (or none was given), build one over the staged values.
	d := b.dict
	idsets := make(map[string]dict.IDSet, len(b.cols))
	covered := d != nil
	if covered {
		for _, key := range b.order {
			ids, ok := d.EncodeKnown(b.cols[key])
			if !ok {
				covered = false
				break
			}
			idsets[key] = ids
		}
	}
	if !covered {
		db := dict.NewBuilder()
		for _, vals := range b.cols {
			db.Add(vals...)
		}
		d = db.Build()
		idsets = make(map[string]dict.IDSet, len(b.cols))
		for _, key := range b.order {
			ids, ok := d.EncodeKnown(b.cols[key])
			if !ok {
				return nil, fmt.Errorf("join: self-built dictionary missing value of column %q", key)
			}
			idsets[key] = ids
		}
	}
	inv := invindex.NewBuilder()
	hasher := minhash.NewHasher(b.numHashes, 42)
	ens := lshensemble.New(b.numHashes, b.numPartitions)
	for _, key := range b.order {
		ids := idsets[key]
		if err := inv.AddIDs(key, ids); err != nil {
			return nil, err
		}
		sig := d.Sign(hasher, ids)
		if err := ens.Add(lshensemble.Domain{Key: key, Size: len(ids), Sig: sig}); err != nil {
			return nil, err
		}
	}
	ix, err := inv.Build()
	if err != nil {
		return nil, err
	}
	if err := ens.Build(); err != nil {
		return nil, err
	}
	return &Engine{
		inv:      ix,
		searcher: josie.NewSearcher(ix),
		ensemble: ens,
		hasher:   hasher,
		dict:     d,
		idsets:   idsets,
		keys:     b.order,
	}, nil
}

// Engine answers joinable-column queries. Every search method is a
// pure read over state frozen by Builder.Build, so the engine is safe
// for concurrent queries.
type Engine struct {
	inv      *invindex.Index
	searcher *josie.Searcher
	ensemble *lshensemble.Index
	hasher   *minhash.Hasher
	dict     *dict.Dict
	idsets   map[string]dict.IDSet // per-column ID-encoded value sets
	keys     []string              // sorted column keys (scan order)

	// QueryParallelism bounds the per-query fan-out of candidate
	// verification (ContainmentSearch) and the exact-scan baselines
	// (JaccardSearch, ExactContainmentScan): 0 = GOMAXPROCS, negative
	// or 1 = sequential. Results are bit-identical at every setting.
	// Set before serving queries.
	QueryParallelism int
}

// NumColumns returns the number of indexed columns.
func (e *Engine) NumColumns() int { return len(e.keys) }

// Dict returns the dictionary the engine's sets are encoded in.
func (e *Engine) Dict() *dict.Dict { return e.dict }

// IDSet returns the indexed value-ID set for a column key (nil when
// the column is not join-indexed). The set is frozen shared state:
// callers must not mutate it.
func (e *Engine) IDSet(key string) dict.IDSet { return e.idsets[key] }

// ColumnValues returns the indexed distinct values of a column key,
// sorted ascending.
func (e *Engine) ColumnValues(key string) ([]string, bool) {
	ids, ok := e.idsets[key]
	if !ok {
		return nil, false
	}
	return e.dict.Decode(ids), true
}

// SetsFootprint reports the resident cost of the engine's ID-encoded
// column sets next to an estimate of the per-column string maps they
// replaced.
func (e *Engine) SetsFootprint() dict.Footprint {
	var f dict.Footprint
	for _, key := range e.keys {
		f.Accumulate(e.dict.SetFootprint(e.idsets[key]))
	}
	return f
}

// Query is a query column encoded once against the engine's
// dictionary: the sorted ID set of its distinct normalized values and
// the parallel minhash base hashes. Encode once, reuse across the
// engine's *Query methods; a Query is plain data and safe to share.
type Query struct {
	IDs    dict.IDSet
	Hashes []uint64
}

// EncodeQuery normalizes, deduplicates, and dictionary-encodes a query
// column. Out-of-vocabulary values get ephemeral IDs that can never
// match an indexed value but still count toward the query cardinality.
func (e *Engine) EncodeQuery(values []string) Query {
	ids, hashes := e.dict.Encoder().EncodeHashes(tokenize.NormalizeSet(values))
	return Query{IDs: ids, Hashes: hashes}
}

// TopKOverlap returns the k columns with largest exact value overlap
// with the query (JOSIE). Values are normalized before matching; a
// query with no usable values returns nil.
func (e *Engine) TopKOverlap(values []string, k int) []Match {
	return e.TopKOverlapQuery(e.EncodeQuery(values), k)
}

// TopKOverlapQuery is TopKOverlap over a pre-encoded query.
func (e *Engine) TopKOverlapQuery(q Query, k int) []Match {
	ms, _ := e.TopKOverlapQueryStats(q, k)
	return ms
}

// TopKOverlapQueryStats is TopKOverlapQuery plus JOSIE work counters,
// for planners that account per-stage cost.
func (e *Engine) TopKOverlapQueryStats(q Query, k int) ([]Match, josie.Stats) {
	if len(q.IDs) == 0 {
		return nil, josie.Stats{}
	}
	res, jst := e.searcher.TopKIDsStats(q.IDs, k, josie.Adaptive)
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{
			ColumnKey:   r.Key,
			Overlap:     r.Overlap,
			Containment: float64(r.Overlap) / float64(len(q.IDs)),
		}
	}
	return out, jst
}

// TopKOverlapAlgo is TopKOverlap with an explicit JOSIE strategy, for
// the benchmark ablation.
func (e *Engine) TopKOverlapAlgo(values []string, k int, algo josie.Algorithm) ([]Match, josie.Stats) {
	q := e.EncodeQuery(values)
	if len(q.IDs) == 0 {
		return nil, josie.Stats{}
	}
	res, st := e.searcher.TopKIDsStats(q.IDs, k, algo)
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{ColumnKey: r.Key, Overlap: r.Overlap, Containment: float64(r.Overlap) / float64(len(q.IDs))}
	}
	return out, st
}

// ContainmentSearch returns columns whose containment of the query is
// likely >= threshold, via LSH Ensemble. With verify, candidates are
// checked against exact containment (integer-set merges against the
// precomputed per-column ID sets) and false positives dropped; the
// verification fans out over QueryParallelism workers.
func (e *Engine) ContainmentSearch(values []string, threshold float64, verify bool) ([]Match, error) {
	return e.ContainmentSearchQuery(e.EncodeQuery(values), threshold, verify)
}

// ContainmentSearchQuery is ContainmentSearch over a pre-encoded query.
func (e *Engine) ContainmentSearchQuery(q Query, threshold float64, verify bool) ([]Match, error) {
	return e.ContainmentSearchQueryCtx(context.Background(), q, threshold, verify)
}

// ContainmentSearchQueryCtx is ContainmentSearchQuery with cooperative
// cancellation: candidate verification checks ctx between candidates,
// so a cancelled request stops burning verification work and returns
// ctx.Err(). Results of a run that completes are bit-identical to the
// context-free call. An empty query wraps table.ErrBadQuery.
func (e *Engine) ContainmentSearchQueryCtx(ctx context.Context, q Query, threshold float64, verify bool) ([]Match, error) {
	cands, err := e.ContainmentCandidatesQuery(q, threshold)
	if err != nil {
		return nil, err
	}
	return e.verifyContainment(ctx, q, cands, threshold, verify)
}

// ContainmentCandidatesQuery runs only the LSH Ensemble candidate
// generation of a containment search: the column keys whose containment
// of the query is likely >= threshold, unverified. A staged query
// planner uses it to intersect the sketch candidates with a prefiltered
// allow-set before paying for exact verification; composing it with
// VerifyContainmentQueryCtx over the full candidate list reproduces
// ContainmentSearchQueryCtx bit-identically. An empty query wraps
// table.ErrBadQuery.
func (e *Engine) ContainmentCandidatesQuery(q Query, threshold float64) ([]string, error) {
	if len(q.IDs) == 0 {
		return nil, fmt.Errorf("join: empty query column: %w", table.ErrBadQuery)
	}
	sig := e.hasher.SignHashes(q.Hashes)
	return e.ensemble.Query(sig, len(q.IDs), threshold)
}

// VerifyContainmentQueryCtx exactly verifies the given candidate
// column keys against the query and returns those with containment >=
// threshold, ordered (containment desc, column key asc). Per-candidate
// verification is independent, so restricting the candidate list and
// verifying is bit-identical to verifying everything and filtering.
func (e *Engine) VerifyContainmentQueryCtx(ctx context.Context, q Query, cands []string, threshold float64) ([]Match, error) {
	if len(q.IDs) == 0 {
		return nil, fmt.Errorf("join: empty query column: %w", table.ErrBadQuery)
	}
	return e.verifyContainment(ctx, q, cands, threshold, true)
}

func (e *Engine) verifyContainment(ctx context.Context, q Query, cands []string, threshold float64, verify bool) ([]Match, error) {
	type verdict struct {
		m    Match
		keep bool
	}
	verdicts, err := parallel.MapCtx(ctx, len(cands), parallel.Resolve(e.QueryParallelism), func(i int) (verdict, error) {
		m := Match{ColumnKey: cands[i]}
		if verify {
			c := dict.Containment(q.IDs, e.idsets[cands[i]])
			if c < threshold {
				return verdict{}, nil
			}
			m.Containment = c
			m.Overlap = int(c*float64(len(q.IDs)) + 0.5)
		}
		return verdict{m: m, keep: true}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, v := range verdicts {
		if v.keep {
			out = append(out, v.m)
		}
	}
	sortMatches(out, func(m Match) float64 { return m.Containment })
	return out, nil
}

// TopKOverlapAmongCtx is the restricted exact-overlap search: it
// scores only the given candidate column keys (exact integer-set
// overlap, fanned out over QueryParallelism workers), keeps those with
// overlap > 0, and returns the top k ordered (overlap desc, column key
// asc) — JOSIE's exact comparator. Because per-column overlaps are
// independent, the result equals an unbounded TopKOverlapQuery filtered
// to the candidate set and truncated to k; a staged planner uses it to
// push table-level predicates below the exact scoring.
func (e *Engine) TopKOverlapAmongCtx(ctx context.Context, q Query, cands []string, k int) ([]Match, error) {
	if len(q.IDs) == 0 {
		return nil, fmt.Errorf("join: empty query column: %w", table.ErrBadQuery)
	}
	overlaps, err := parallel.MapCtx(ctx, len(cands), parallel.Resolve(e.QueryParallelism), func(i int) (int, error) {
		return dict.Overlap(q.IDs, e.idsets[cands[i]]), nil
	})
	if err != nil {
		return nil, err
	}
	var out []Match
	for i, key := range cands {
		if overlaps[i] > 0 {
			out = append(out, Match{
				ColumnKey:   key,
				Overlap:     overlaps[i],
				Containment: float64(overlaps[i]) / float64(len(q.IDs)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ValueDF returns how many indexed columns contain the dictionary ID
// (0 for out-of-vocabulary or never-indexed values) — the posting-list
// length a planner's cost model prices a value lookup at.
func (e *Engine) ValueDF(id uint32) int {
	rank := e.inv.RankOfID(id)
	if rank < 0 {
		return 0
	}
	return int(e.inv.DF(rank))
}

// ColumnsWithValue returns the keys of every indexed column containing
// the dictionary ID, in sorted key order (the posting list of the
// value, decoded). Nil for out-of-vocabulary IDs. Callers must not
// mutate the result beyond their own copy.
func (e *Engine) ColumnsWithValue(id uint32) []string {
	rank := e.inv.RankOfID(id)
	if rank < 0 {
		return nil
	}
	pl := e.inv.Postings(rank)
	out := make([]string, len(pl))
	for i, p := range pl {
		// Set IDs are assigned in sorted-key order and posting lists are
		// sorted by set ID, so the decoded keys come out sorted.
		out[i] = e.inv.Key(p.Set)
	}
	return out
}

// AmongStats reports how a restricted overlap search ran: which path
// was chosen and the deterministic work units both paths were priced
// at. Work units are wall-clock-free (posting entries scanned, set
// tokens merged, candidates handled), so explain output is stable
// across runs.
type AmongStats struct {
	// Pushdown is true when the allowed set was pushed into JOSIE's
	// posting traversal instead of enumerating and scoring candidates.
	Pushdown bool
	// Work is the units the chosen path actually spent.
	Work int64
	// EnumCost and PushCost are the a-priori estimates the choice was
	// made from.
	EnumCost int64
	PushCost int64
}

// TopKOverlapAmongStatsCtx is TopKOverlapAmongCtx with a cost-based
// choice of execution path: it either enumerates the candidate columns
// and scores each exactly (cheap when few survive the prefilters), or
// masks JOSIE's posting traversal to the candidate set (cheap when the
// query's posting lists are shorter than the candidates' combined
// token lists). Both paths return bit-identical results — the exact
// top-k overlap among cands, ordered (overlap desc, key asc) — so the
// choice is free; AmongStats records it. allowPushdown false pins the
// enumerate path (the baseline planners compare against).
func (e *Engine) TopKOverlapAmongStatsCtx(ctx context.Context, q Query, cands []string, k int, allowPushdown bool) ([]Match, AmongStats, error) {
	if len(q.IDs) == 0 {
		return nil, AmongStats{}, fmt.Errorf("join: empty query column: %w", table.ErrBadQuery)
	}
	var st AmongStats
	for _, key := range cands {
		st.EnumCost += int64(len(q.IDs) + len(e.idsets[key]))
	}
	// The masked traversal scans at most every query token's posting
	// list plus the mask build over the candidate list.
	for _, id := range q.IDs {
		st.PushCost += int64(e.ValueDF(id))
	}
	st.PushCost += int64(len(cands))
	if allowPushdown && st.PushCost < st.EnumCost {
		st.Pushdown = true
		allowed := make([]bool, e.inv.NumSets())
		for _, key := range cands {
			if sid, ok := e.inv.SetID(key); ok {
				allowed[sid] = true
			}
		}
		// MergeList, not Adaptive: the masked traversal must be
		// bit-identical to enumerate-and-score, and only MergeList counts
		// every allowed candidate exactly and tie-breaks canonically
		// (Adaptive may early-stop past an unverified candidate tied at
		// the k-th overlap). Its full posting-list reads are exactly what
		// PushCost priced, so the cost gate already paid for them.
		res, jst := e.searcher.TopKIDsAllowedStats(q.IDs, k, josie.MergeList, allowed)
		st.Work = int64(jst.PostingsRead+jst.TokensRead) + int64(len(cands))
		// var, not make: zero hits must stay a nil slice, like the
		// enumerate path's.
		var out []Match
		for _, r := range res {
			out = append(out, Match{
				ColumnKey:   r.Key,
				Overlap:     r.Overlap,
				Containment: float64(r.Overlap) / float64(len(q.IDs)),
			})
		}
		return out, st, nil
	}
	st.Work = st.EnumCost
	ms, err := e.TopKOverlapAmongCtx(ctx, q, cands, k)
	return ms, st, err
}

// ColumnKeysOf returns the indexed column keys of one table, in sorted
// order. Table IDs contain no dots (table.ColumnKey's contract), so
// the half-open prefix range over the sorted key list is exact.
func (e *Engine) ColumnKeysOf(tableID string) []string {
	prefix := tableID + "."
	lo := sort.SearchStrings(e.keys, prefix)
	hi := lo
	for hi < len(e.keys) && strings.HasPrefix(e.keys[hi], prefix) {
		hi++
	}
	return e.keys[lo:hi:hi]
}

// JaccardSearch is the exact-scan baseline: every indexed column is
// compared with exact Jaccard similarity; columns >= threshold are
// returned sorted by similarity. Illustrates both the cost of
// scanning and Jaccard's bias against large domains. The scan fans
// out over QueryParallelism workers.
func (e *Engine) JaccardSearch(values []string, threshold float64) []Match {
	qids := e.dict.Encoder().Encode(tokenize.NormalizeSet(values))
	scores, _ := parallel.Map(len(e.keys), parallel.Resolve(e.QueryParallelism), func(i int) (float64, error) {
		return dict.Jaccard(qids, e.idsets[e.keys[i]]), nil
	})
	var out []Match
	for i, key := range e.keys {
		if scores[i] >= threshold {
			out = append(out, Match{ColumnKey: key, Jaccard: scores[i]})
		}
	}
	sortMatches(out, func(m Match) float64 { return m.Jaccard })
	return out
}

// ExactContainmentScan is the brute-force containment baseline used to
// measure LSH Ensemble recall. The scan fans out over
// QueryParallelism workers.
func (e *Engine) ExactContainmentScan(values []string, threshold float64) []Match {
	qids := e.dict.Encoder().Encode(tokenize.NormalizeSet(values))
	scores, _ := parallel.Map(len(e.keys), parallel.Resolve(e.QueryParallelism), func(i int) (float64, error) {
		return dict.Containment(qids, e.idsets[e.keys[i]]), nil
	})
	var out []Match
	for i, key := range e.keys {
		if scores[i] >= threshold {
			out = append(out, Match{ColumnKey: key, Containment: scores[i]})
		}
	}
	sortMatches(out, func(m Match) float64 { return m.Containment })
	return out
}

// sortMatches orders matches by score descending, breaking ties by
// column key — the shared result order of every scan surface.
func sortMatches(ms []Match, score func(Match) float64) {
	sort.Slice(ms, func(i, j int) bool {
		si, sj := score(ms[i]), score(ms[j])
		if si != sj {
			return si > sj
		}
		return ms[i].ColumnKey < ms[j].ColumnKey
	})
}
