// Package join implements joinable table search (Section 2.4 of the
// tutorial): given a query column, find data-lake columns that can
// join with it. It unifies the surveyed strategies behind one engine:
//
//   - exact top-k overlap search (JOSIE),
//   - approximate containment search (LSH Ensemble), with optional
//     exact verification,
//   - exact Jaccard threshold search (the Das Sarma-era baseline whose
//     bias against large domains LSH Ensemble fixes),
//   - fuzzy/semantic join via embeddings with pivot filtering (PEXESO),
//   - multi-attribute join via row super-keys (MATE), and
//   - correlation-aware join discovery via QCR sketches.
package join

import (
	"errors"
	"sort"

	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// DefaultNumHashes is the MinHash signature length used by the engine.
const DefaultNumHashes = 128

// Match is one joinable column hit.
type Match struct {
	ColumnKey   string  // table.ColumnKey of the matched column
	Overlap     int     // exact value overlap (when computed)
	Containment float64 // |Q ∩ X| / |Q| (when computed)
	Jaccard     float64 // (when computed)
}

// Builder stages columns for a join Engine.
type Builder struct {
	minCardinality int
	numHashes      int
	numPartitions  int
	cols           map[string][]string
	order          []string
}

// NewBuilder creates a Builder. Columns with fewer than minCardinality
// distinct values are skipped (tiny columns join with everything and
// pollute results); pass 1 to keep all non-empty columns.
func NewBuilder(minCardinality int) *Builder {
	if minCardinality < 1 {
		minCardinality = 1
	}
	return &Builder{
		minCardinality: minCardinality,
		numHashes:      DefaultNumHashes,
		numPartitions:  8,
		cols:           make(map[string][]string),
	}
}

// AddTable stages every string-typed column of the table.
func (b *Builder) AddTable(t *table.Table) {
	for _, c := range t.Columns {
		if c.Type != table.TypeString && c.Type != table.TypeDate && c.Type != table.TypeUnknown {
			continue
		}
		b.AddColumn(table.ColumnKey(t.ID, c.Name), c.Values)
	}
}

// AddColumn stages one column under a unique key.
func (b *Builder) AddColumn(key string, values []string) {
	distinct := tokenize.NormalizeSet(values)
	if len(distinct) < b.minCardinality {
		return
	}
	if _, dup := b.cols[key]; dup {
		return
	}
	b.cols[key] = distinct
	b.order = append(b.order, key)
}

// Build freezes the staged columns into an Engine.
func (b *Builder) Build() (*Engine, error) {
	if len(b.order) == 0 {
		return nil, errors.New("join: no columns staged")
	}
	sort.Strings(b.order)
	inv := invindex.NewBuilder()
	hasher := minhash.NewHasher(b.numHashes, 42)
	ens := lshensemble.New(b.numHashes, b.numPartitions)
	for _, key := range b.order {
		vals := b.cols[key]
		if err := inv.Add(key, vals); err != nil {
			return nil, err
		}
		sig := hasher.Sign(vals)
		if err := ens.Add(lshensemble.Domain{Key: key, Size: len(vals), Sig: sig}); err != nil {
			return nil, err
		}
	}
	ix, err := inv.Build()
	if err != nil {
		return nil, err
	}
	if err := ens.Build(); err != nil {
		return nil, err
	}
	return &Engine{
		inv:      ix,
		searcher: josie.NewSearcher(ix),
		ensemble: ens,
		hasher:   hasher,
		cols:     b.cols,
	}, nil
}

// Engine answers joinable-column queries. Safe for concurrent reads.
type Engine struct {
	inv      *invindex.Index
	searcher *josie.Searcher
	ensemble *lshensemble.Index
	hasher   *minhash.Hasher
	cols     map[string][]string
}

// NumColumns returns the number of indexed columns.
func (e *Engine) NumColumns() int { return len(e.cols) }

// ColumnValues returns the indexed distinct values of a column key.
func (e *Engine) ColumnValues(key string) ([]string, bool) {
	v, ok := e.cols[key]
	return v, ok
}

// TopKOverlap returns the k columns with largest exact value overlap
// with the query (JOSIE). Values are normalized before matching.
func (e *Engine) TopKOverlap(values []string, k int) []Match {
	q := tokenize.NormalizeSet(values)
	res := e.searcher.TopK(q, k, josie.Adaptive)
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{
			ColumnKey:   r.Key,
			Overlap:     r.Overlap,
			Containment: float64(r.Overlap) / float64(len(q)),
		}
	}
	return out
}

// TopKOverlapAlgo is TopKOverlap with an explicit JOSIE strategy, for
// the benchmark ablation.
func (e *Engine) TopKOverlapAlgo(values []string, k int, algo josie.Algorithm) ([]Match, josie.Stats) {
	q := tokenize.NormalizeSet(values)
	res, st := e.searcher.TopKStats(q, k, algo)
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{ColumnKey: r.Key, Overlap: r.Overlap, Containment: float64(r.Overlap) / float64(len(q))}
	}
	return out, st
}

// ContainmentSearch returns columns whose containment of the query is
// likely >= threshold, via LSH Ensemble. With verify, candidates are
// checked against exact containment and false positives dropped.
func (e *Engine) ContainmentSearch(values []string, threshold float64, verify bool) ([]Match, error) {
	q := tokenize.NormalizeSet(values)
	if len(q) == 0 {
		return nil, errors.New("join: empty query column")
	}
	sig := e.hasher.Sign(q)
	cands, err := e.ensemble.Query(sig, len(q), threshold)
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, key := range cands {
		m := Match{ColumnKey: key}
		if verify {
			c := minhash.ExactContainment(q, e.cols[key])
			if c < threshold {
				continue
			}
			m.Containment = c
			m.Overlap = int(c*float64(len(q)) + 0.5)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	return out, nil
}

// JaccardSearch is the exact-scan baseline: every indexed column is
// compared with exact Jaccard similarity; columns >= threshold are
// returned sorted by similarity. Illustrates both the cost of
// scanning and Jaccard's bias against large domains.
func (e *Engine) JaccardSearch(values []string, threshold float64) []Match {
	q := tokenize.NormalizeSet(values)
	keys := make([]string, 0, len(e.cols))
	for k := range e.cols {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Match
	for _, key := range keys {
		j := minhash.ExactJaccard(q, e.cols[key])
		if j >= threshold {
			out = append(out, Match{ColumnKey: key, Jaccard: j})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	return out
}

// ExactContainmentScan is the brute-force containment baseline used to
// measure LSH Ensemble recall.
func (e *Engine) ExactContainmentScan(values []string, threshold float64) []Match {
	q := tokenize.NormalizeSet(values)
	keys := make([]string, 0, len(e.cols))
	for k := range e.cols {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Match
	for _, key := range keys {
		c := minhash.ExactContainment(q, e.cols[key])
		if c >= threshold {
			out = append(out, Match{ColumnKey: key, Containment: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	return out
}
