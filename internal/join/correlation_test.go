package join

import (
	"fmt"
	"math/rand"
	"testing"

	"tablehound/internal/datagen"
)

func corrEngine(t *testing.T, seed int64) (*CorrEngine, []string, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys, x, yPos := datagen.CorrelatedSeries(500, 0.95, rng)
	b := NewCorrBuilder(128)
	if err := b.Add("lake.k|pos", keys, yPos); err != nil {
		t.Fatal(err)
	}
	// Anticorrelated column.
	yNeg := make([]float64, len(x))
	for i := range yNeg {
		yNeg[i] = -0.95*x[i] + rng.NormFloat64()*0.3
	}
	if err := b.Add("lake.k|neg", keys, yNeg); err != nil {
		t.Fatal(err)
	}
	// Independent columns.
	for c := 0; c < 20; c++ {
		y := make([]float64, len(x))
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		if err := b.Add(fmt.Sprintf("lake.k|rand%02d", c), keys, y); err != nil {
			t.Fatal(err)
		}
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return e, keys, x
}

func TestCorrTopKFindsCorrelated(t *testing.T) {
	e, keys, x := corrEngine(t, 1)
	res := e.TopK(keys, x, 3, false)
	if len(res) == 0 || res[0].ColumnKey != "lake.k|pos" {
		t.Fatalf("top = %+v, want lake.k|pos", res)
	}
	if res[0].Correlation < 0.8 {
		t.Errorf("verified correlation = %v", res[0].Correlation)
	}
}

func TestCorrTopKNegative(t *testing.T) {
	e, keys, x := corrEngine(t, 2)
	res := e.TopK(keys, x, 3, true)
	if len(res) == 0 || res[0].ColumnKey != "lake.k|neg" {
		t.Fatalf("top = %+v, want lake.k|neg", res)
	}
	if res[0].Correlation > -0.8 {
		t.Errorf("verified correlation = %v, want strongly negative", res[0].Correlation)
	}
}

func TestCorrMatchesBruteForce(t *testing.T) {
	e, keys, x := corrEngine(t, 3)
	sketchTop := e.TopK(keys, x, 1, false)
	bruteTop := e.BruteForceTopK(keys, x, 1, false)
	if len(sketchTop) == 0 || len(bruteTop) == 0 {
		t.Fatal("no results")
	}
	if sketchTop[0].ColumnKey != bruteTop[0].ColumnKey {
		t.Errorf("sketch top %q != brute top %q", sketchTop[0].ColumnKey, bruteTop[0].ColumnKey)
	}
}

func TestCorrBuilderErrors(t *testing.T) {
	b := NewCorrBuilder(64)
	if err := b.Add("p", nil, nil); err == nil {
		t.Error("empty pair should fail")
	}
	if err := b.Add("q", []string{"a"}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("q", []string{"b"}, []float64{2}); err == nil {
		t.Error("duplicate pair should fail")
	}
	if _, err := NewCorrBuilder(1).Build(); err == nil {
		t.Error("empty Build should fail")
	}
}

func TestCorrExactCorrelationRequiresOverlap(t *testing.T) {
	b := NewCorrBuilder(0)
	b.Add("lake.k|a", []string{"x", "y", "z", "w"}, []float64{1, 2, 3, 4})
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Query joins on zero keys: correlation must be 0, not NaN.
	res := e.TopK([]string{"p", "q", "r"}, []float64{1, 2, 3}, 1, false)
	for _, m := range res {
		if m.Correlation != 0 {
			t.Errorf("no-overlap correlation = %v", m.Correlation)
		}
	}
	if e.NumPairs() != 1 {
		t.Error("NumPairs wrong")
	}
}

func TestPairKey(t *testing.T) {
	if PairKey("t1", "key", "metric") != "t1.key|metric" {
		t.Error("PairKey format changed")
	}
}
