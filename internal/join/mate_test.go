package join

import (
	"fmt"
	"testing"

	"tablehound/internal/table"
)

// compositeTable builds a table with first+last name composite keys.
func compositeTable(id string, n, offset int, extra string) *table.Table {
	first := make([]string, n)
	last := make([]string, n)
	note := make([]string, n)
	for i := range first {
		first[i] = fmt.Sprintf("first_%03d", (i+offset)%50)
		last[i] = fmt.Sprintf("last_%03d", (i+offset)%40)
		note[i] = fmt.Sprintf("%s_%d", extra, i)
	}
	return table.MustNew(id, id, []*table.Column{
		table.NewColumn("fname", first),
		table.NewColumn("lname", last),
		table.NewColumn("note", note),
	})
}

// shuffledNames shares first names but misaligns last names, so rows
// match on attribute 1 but not the composite.
func shuffledNames(id string, n int) *table.Table {
	first := make([]string, n)
	last := make([]string, n)
	for i := range first {
		first[i] = fmt.Sprintf("first_%03d", i%50)
		last[i] = fmt.Sprintf("last_%03d", (i+7)%40) // misaligned
	}
	return table.MustNew(id, id, []*table.Column{
		table.NewColumn("fname", first),
		table.NewColumn("lname", last),
	})
}

func TestMateFindsCompositeJoins(t *testing.T) {
	aligned := compositeTable("aligned", 60, 0, "x")
	shuffled := shuffledNames("shuffled", 60)
	m := NewMateIndex([]*table.Table{aligned, shuffled})

	q := compositeTable("query", 40, 0, "q")
	res, _ := m.Search([][]string{q.Columns[0].Values, q.Columns[1].Values}, 5, true)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].TableID != "aligned" {
		t.Fatalf("top = %+v, want aligned", res[0])
	}
	if res[0].Rows < 35 {
		t.Errorf("aligned rows = %d, want ~40", res[0].Rows)
	}
	if res[0].Columns[0] != "fname" || res[0].Columns[1] != "lname" {
		t.Errorf("matched columns = %v", res[0].Columns)
	}
	// The shuffled table matches single attributes but few composite
	// rows; it must rank below or match far fewer rows.
	for _, r := range res[1:] {
		if r.TableID == "shuffled" && r.Rows >= res[0].Rows {
			t.Errorf("shuffled rows %d should be << aligned %d", r.Rows, res[0].Rows)
		}
	}
}

func TestMateSuperKeyPrunes(t *testing.T) {
	tables := []*table.Table{
		compositeTable("a", 200, 0, "x"),
		shuffledNames("b", 200),
	}
	m := NewMateIndex(tables)
	q := compositeTable("q", 50, 0, "q")
	query := [][]string{q.Columns[0].Values, q.Columns[1].Values}

	resOn, stOn := m.Search(query, 5, true)
	resOff, stOff := m.Search(query, 5, false)
	// Same answers.
	if len(resOn) != len(resOff) {
		t.Fatalf("filter changed result count: %d vs %d", len(resOn), len(resOff))
	}
	for i := range resOn {
		if resOn[i].TableID != resOff[i].TableID || resOn[i].Rows != resOff[i].Rows {
			t.Errorf("filter changed results: %+v vs %+v", resOn[i], resOff[i])
		}
	}
	// But less verification work.
	if stOn.Verified >= stOff.Verified {
		t.Errorf("super key should reduce verifications: on=%d off=%d", stOn.Verified, stOff.Verified)
	}
	if stOn.Pruned == 0 {
		t.Error("no rows pruned by super key")
	}
}

func TestMateEdgeCases(t *testing.T) {
	m := NewMateIndex([]*table.Table{compositeTable("a", 10, 0, "x")})
	if res, _ := m.Search(nil, 5, true); res != nil {
		t.Error("nil query should return nil")
	}
	if res, _ := m.Search([][]string{{}}, 5, true); res != nil {
		t.Error("empty query should return nil")
	}
	if res, _ := m.Search([][]string{{"a"}}, 0, true); res != nil {
		t.Error("k=0 should return nil")
	}
	// Single attribute degenerates to value join.
	res, _ := m.Search([][]string{{"first_003"}}, 5, true)
	if len(res) != 1 || res[0].Rows != 1 {
		t.Errorf("single-attr = %+v", res)
	}
}

func TestMateThreeAttributes(t *testing.T) {
	a := compositeTable("a", 50, 0, "note")
	m := NewMateIndex([]*table.Table{a})
	// Query on all three columns including the note column.
	q := [][]string{
		{a.Columns[0].Values[3]},
		{a.Columns[1].Values[3]},
		{a.Columns[2].Values[3]},
	}
	res, _ := m.Search(q, 5, true)
	if len(res) != 1 || res[0].Rows != 1 {
		t.Fatalf("3-attr = %+v", res)
	}
	// A wrong third value kills the match.
	q[2][0] = "nonexistent"
	res, _ = m.Search(q, 5, true)
	if len(res) != 0 {
		t.Errorf("wrong third attr matched: %+v", res)
	}
}
