// Merge support for incremental (delta) index maintenance: a built
// engine can be decomposed into its frozen per-column parts, and an
// engine can be assembled from parts gathered across a base snapshot
// and a chain of deltas. Because column sets are dictionary-encoded
// and the extended dictionary preserves every base ID (dict.Extend),
// base ID sets are reused verbatim; signatures are re-derived through
// dict.Sign — the exact function Build uses — so the assembled engine
// answers every query bit-identically to a from-scratch build over the
// merged catalog.
package join

import (
	"errors"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
)

// EngineParts is the portable state of a join engine: the encoded
// column sets plus the sketch parameters. Everything else (inverted
// index, LSH bands, signatures) is a deterministic function of these.
type EngineParts struct {
	Keys          []string               // sorted column keys
	IDSets        map[string]dict.IDSet  // per-column encoded value sets
	NumHashes     int                    // MinHash signature width
	NumPartitions int                    // LSH Ensemble partition count
}

// Parts returns the engine's frozen column state. The returned maps
// and slices alias the engine's own (the engine is immutable after
// Build, so sharing is safe); callers merging parts must copy the map
// before mutating it.
func (e *Engine) Parts() EngineParts {
	numHashes, numPart := e.ensemble.Params()
	return EngineParts{
		Keys:          e.keys,
		IDSets:        e.idsets,
		NumHashes:     numHashes,
		NumPartitions: numPart,
	}
}

// NewEngineFromParts assembles an engine over columns already encoded
// in d. It replays Build's freeze exactly — sorted key order, the same
// hasher seed, dict-derived signatures, deterministic band
// construction — so an engine assembled from (base + delta) parts is
// bit-identical to one built from scratch over the union of their
// columns. parallelism bounds the ensemble's band-building workers.
func NewEngineFromParts(d *dict.Dict, idsets map[string]dict.IDSet, numHashes, numPartitions, parallelism int) (*Engine, error) {
	if len(idsets) == 0 {
		return nil, errors.New("join: no columns to assemble")
	}
	keys := make([]string, 0, len(idsets))
	for key := range idsets {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	inv := invindex.NewBuilder()
	hasher := minhash.NewHasher(numHashes, 42)
	ens := lshensemble.New(numHashes, numPartitions)
	for _, key := range keys {
		ids := idsets[key]
		if err := inv.AddIDs(key, ids); err != nil {
			return nil, err
		}
		sig := d.Sign(hasher, ids)
		if err := ens.Add(lshensemble.Domain{Key: key, Size: len(ids), Sig: sig}); err != nil {
			return nil, err
		}
	}
	ix, err := inv.Build()
	if err != nil {
		return nil, err
	}
	if err := ens.BuildN(parallelism); err != nil {
		return nil, err
	}
	return &Engine{
		inv:      ix,
		searcher: josie.NewSearcher(ix),
		ensemble: ens,
		hasher:   hasher,
		dict:     d,
		idsets:   idsets,
		keys:     keys,
	}, nil
}
