package join

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomEngine builds a lake of nCols columns over a small shared
// vocabulary so overlaps are plentiful.
func randomEngine(t *testing.T, nCols int, seed int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(2)
	for i := 0; i < nCols; i++ {
		n := 3 + rng.Intn(30)
		vs := make([]string, n)
		for j := range vs {
			vs[j] = fmt.Sprintf("v%03d", rng.Intn(120))
		}
		b.AddColumn(fmt.Sprintf("t%02d.c%02d", i/3, i%3), vs)
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTopKOverlapAmongPushdownParity pins the contract that the masked
// posting-traversal path and the enumerate-and-score path return
// bit-identical rankings for any candidate subset, including
// candidates that are out of the index and queries with
// out-of-vocabulary values.
func TestTopKOverlapAmongPushdownParity(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 12; seed++ {
		e := randomEngine(t, 24, seed)
		rng := rand.New(rand.NewSource(seed + 500))
		qvals := make([]string, 4+rng.Intn(12))
		for j := range qvals {
			qvals[j] = fmt.Sprintf("v%03d", rng.Intn(130)) // some OOV
		}
		q := e.EncodeQuery(qvals)
		if len(q.IDs) == 0 {
			continue
		}
		var cands []string
		for _, key := range append([]string(nil), e.keys...) {
			if rng.Intn(2) == 0 {
				cands = append(cands, key)
			}
		}
		cands = append(cands, "ghost.col") // unindexed candidate
		k := 1 + rng.Intn(8)
		want, err := e.TopKOverlapAmongCtx(ctx, q, cands, k)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := e.TopKOverlapAmongStatsCtx(ctx, q, cands, k, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d (pushdown=%v): among = %v, want %v", seed, st.Pushdown, got, want)
		}
		// The pinned-enumerate call must never push down.
		pinned, pst, err := e.TopKOverlapAmongStatsCtx(ctx, q, cands, k, false)
		if err != nil {
			t.Fatal(err)
		}
		if pst.Pushdown {
			t.Errorf("seed %d: allowPushdown=false still pushed down", seed)
		}
		if !reflect.DeepEqual(pinned, want) {
			t.Errorf("seed %d: pinned enumerate diverged", seed)
		}
	}
}

// TestPushdownReadsFewerPostings drives the adversarial shape the
// pushdown exists for — a short query against a large candidate set —
// and checks the masked traversal both triggers and is priced below
// enumerate-then-score.
func TestPushdownReadsFewerPostings(t *testing.T) {
	b := NewBuilder(2)
	// Many wide candidate columns sharing a domain, one rare value.
	for i := 0; i < 40; i++ {
		vs := genVals("city", 200)
		if i == 0 {
			vs = append(vs, "needle")
		}
		b.AddColumn(fmt.Sprintf("t%02d.wide", i), vs)
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := e.EncodeQuery([]string{"needle", "city_0001", "city_0002"})
	cands := append([]string(nil), e.keys...)
	ms, st, err := e.TopKOverlapAmongStatsCtx(context.Background(), q, cands, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Pushdown {
		t.Fatalf("short query over %d wide candidates did not push down: %+v", len(cands), st)
	}
	if st.Work >= st.EnumCost {
		t.Errorf("pushdown work %d not below enumerate cost %d", st.Work, st.EnumCost)
	}
	if len(ms) == 0 || ms[0].ColumnKey != "t00.wide" {
		t.Errorf("needle column not ranked first: %v", ms)
	}
}

// TestValueDFAndColumnsWithValue checks the posting-derived accessors
// the planner's values prefilter and cost model are built on.
func TestValueDFAndColumnsWithValue(t *testing.T) {
	e := demoEngine(t)
	id, ok := e.Dict().ID("city_0001")
	if !ok {
		t.Fatal("city_0001 not in dict")
	}
	cols := e.ColumnsWithValue(id)
	if got := e.ValueDF(id); got != len(cols) {
		t.Errorf("ValueDF = %d, columns = %d", got, len(cols))
	}
	want := map[string]bool{"big.city": true, "small.city": true, "half.city": true, "mixed.place": true}
	if len(cols) != len(want) {
		t.Fatalf("columns with city_0001 = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %s", c)
		}
	}
	if df := e.ValueDF(1 << 30); df != 0 {
		t.Errorf("OOV ValueDF = %d, want 0", df)
	}
	if cols := e.ColumnsWithValue(1 << 30); cols != nil {
		t.Errorf("OOV ColumnsWithValue = %v, want nil", cols)
	}
}
