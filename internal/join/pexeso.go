package join

import (
	"errors"
	"math"
	"sort"

	"tablehound/internal/embedding"
	"tablehound/internal/parallel"
	"tablehound/internal/tokenize"
)

// FuzzyMatch is one fuzzy-joinable column hit.
type FuzzyMatch struct {
	ColumnKey string
	// MatchedFraction is the fraction of query values with at least
	// one target value above the similarity threshold — PEXESO's
	// joinability measure.
	MatchedFraction float64
}

// FuzzyStats counts the work a fuzzy query performed, exposing the
// effect of pivot filtering.
type FuzzyStats struct {
	Comparisons int // full vector similarity computations
	PivotSkips  int // candidates pruned by the pivot filter
}

// FuzzyJoiner finds columns that join with a query column under
// vector similarity rather than equality — the PEXESO approach to
// dirty or semantically equivalent join keys. Values are embedded
// (trained model with char-gram fallback) and a value matches if its
// cosine similarity exceeds tau.
//
// Candidate pruning uses pivot-based metric filtering: each indexed
// vector stores its distance to p shared pivot vectors; by the
// triangle inequality a candidate x can match query q only if
// |d(q,pi) - d(x,pi)| <= r for every pivot, where r is the distance
// radius corresponding to tau. Vectors failing the test are skipped
// without a similarity computation.
type FuzzyJoiner struct {
	model     *embedding.Model
	numPivots int
	pivots    []embedding.Vector
	cols      map[string]*fuzzyColumn
	keys      []string

	// QueryParallelism bounds the per-query fan-out in Search (query-
	// value embedding and per-column verification): 0 = GOMAXPROCS,
	// negative or 1 = sequential. Results and stats are bit-identical
	// at every setting. Set before serving queries.
	QueryParallelism int
}

type fuzzyColumn struct {
	values []string
	vecs   []embedding.Vector
	// pivotDist[i][p] = Euclidean distance of vecs[i] to pivot p.
	pivotDist [][]float64
}

// NewFuzzyJoiner creates a joiner over the given embedding model with
// numPivots pivot vectors (4-8 is typical).
func NewFuzzyJoiner(model *embedding.Model, numPivots int) *FuzzyJoiner {
	if numPivots <= 0 {
		numPivots = 4
	}
	return &FuzzyJoiner{model: model, numPivots: numPivots, cols: make(map[string]*fuzzyColumn)}
}

// choosePivots runs farthest-point selection over the first indexed
// column's vectors. Pivots drawn from the data spread across the
// populated region of the space; random pivots in high dimension are
// nearly equidistant from everything and prune nothing.
func (f *FuzzyJoiner) choosePivots(vecs []embedding.Vector) {
	if len(vecs) == 0 {
		return
	}
	f.pivots = append(f.pivots, vecs[0])
	minDist := make([]float64, len(vecs))
	for i, v := range vecs {
		minDist[i] = euclid(v, vecs[0])
	}
	for len(f.pivots) < f.numPivots {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 || bestD == 0 {
			break
		}
		p := vecs[best]
		f.pivots = append(f.pivots, p)
		for i, v := range vecs {
			if d := euclid(v, p); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
}

// AddColumn indexes a column's distinct values.
func (f *FuzzyJoiner) AddColumn(key string, values []string) error {
	if _, dup := f.cols[key]; dup {
		return errors.New("join: duplicate fuzzy column " + key)
	}
	distinct := tokenize.NormalizeSet(values)
	fc := &fuzzyColumn{values: distinct}
	for _, v := range distinct {
		fc.vecs = append(fc.vecs, f.model.ValueVector(v))
	}
	if len(f.pivots) == 0 {
		f.choosePivots(fc.vecs)
	}
	for _, vec := range fc.vecs {
		fc.pivotDist = append(fc.pivotDist, f.pivotDistances(vec))
	}
	f.cols[key] = fc
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	return nil
}

// FuzzyColumn is one column staged for batch indexing via AddColumns.
type FuzzyColumn struct {
	Key    string
	Values []string
}

// AddColumns indexes a batch of columns using up to workers goroutines
// for the embedding work, producing exactly the state a sequential
// AddColumn loop over the same batch would. Value embedding and pivot
// distances (the dominant costs) fan out per column; pivot selection
// and map insertion — the order-sensitive steps — run sequentially in
// batch order. The embedding model is only read, never written.
func (f *FuzzyJoiner) AddColumns(cols []FuzzyColumn, workers int) error {
	// Phase 1 (parallel): normalize and embed every column.
	fcs, err := parallel.Map(len(cols), workers, func(i int) (*fuzzyColumn, error) {
		distinct := tokenize.NormalizeSet(cols[i].Values)
		fc := &fuzzyColumn{values: distinct}
		fc.vecs = make([]embedding.Vector, len(distinct))
		for j, v := range distinct {
			fc.vecs[j] = f.model.ValueVector(v)
		}
		return fc, nil
	})
	if err != nil {
		return err
	}
	// Phase 2 (sequential): duplicate checks and pivot selection, in
	// batch order — pivots come from the first committed column with
	// vectors, exactly as in the incremental path.
	for i, fc := range fcs {
		if _, dup := f.cols[cols[i].Key]; dup {
			return errors.New("join: duplicate fuzzy column " + cols[i].Key)
		}
		f.cols[cols[i].Key] = fc
		f.keys = append(f.keys, cols[i].Key)
		if len(f.pivots) == 0 {
			f.choosePivots(fc.vecs)
		}
	}
	// Phase 3 (parallel): pivot distances per column.
	if err := parallel.ForEach(len(fcs), workers, func(i int) error {
		fc := fcs[i]
		fc.pivotDist = make([][]float64, len(fc.vecs))
		for j, vec := range fc.vecs {
			fc.pivotDist[j] = f.pivotDistances(vec)
		}
		return nil
	}); err != nil {
		return err
	}
	sort.Strings(f.keys)
	return nil
}

func (f *FuzzyJoiner) pivotDistances(v embedding.Vector) []float64 {
	out := make([]float64, len(f.pivots))
	for i, p := range f.pivots {
		out[i] = euclid(v, p)
	}
	return out
}

// euclid for unit vectors: sqrt(2 - 2*dot).
func euclid(a, b embedding.Vector) float64 {
	return math.Sqrt(math.Max(0, 2-2*a.Dot(b)))
}

// Search returns columns where at least minFraction of the query's
// distinct values fuzzy-match some target value at cosine >= tau,
// ranked by matched fraction. Search is a pure read and safe for
// concurrent use; query embedding and per-column verification fan out
// over QueryParallelism workers into indexed slots, with the stats
// summed in column order, so results are bit-identical to the
// sequential scan.
func (f *FuzzyJoiner) Search(values []string, tau, minFraction float64) ([]FuzzyMatch, FuzzyStats) {
	var st FuzzyStats
	q := tokenize.NormalizeSet(values)
	if len(q) == 0 {
		return nil, st
	}
	workers := parallel.Resolve(f.QueryParallelism)
	qv := make([]embedding.Vector, len(q))
	qp := make([][]float64, len(q))
	parallel.ForEach(len(q), workers, func(i int) error {
		qv[i] = f.model.ValueVector(q[i])
		qp[i] = f.pivotDistances(qv[i])
		return nil
	})
	// Matching radius: cosine >= tau on unit vectors means Euclidean
	// distance <= sqrt(2 - 2 tau).
	r := math.Sqrt(math.Max(0, 2-2*tau))
	type colResult struct {
		matched int
		st      FuzzyStats
	}
	results, _ := parallel.Map(len(f.keys), workers, func(i int) (colResult, error) {
		fc := f.cols[f.keys[i]]
		var cr colResult
		for j := range q {
			if f.valueMatches(qv[j], qp[j], fc, tau, r, &cr.st) {
				cr.matched++
			}
		}
		return cr, nil
	})
	var out []FuzzyMatch
	for i, key := range f.keys {
		st.Comparisons += results[i].st.Comparisons
		st.PivotSkips += results[i].st.PivotSkips
		frac := float64(results[i].matched) / float64(len(q))
		if frac >= minFraction {
			out = append(out, FuzzyMatch{ColumnKey: key, MatchedFraction: frac})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MatchedFraction != out[j].MatchedFraction {
			return out[i].MatchedFraction > out[j].MatchedFraction
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	return out, st
}

func (f *FuzzyJoiner) valueMatches(qv embedding.Vector, qp []float64, fc *fuzzyColumn, tau, r float64, st *FuzzyStats) bool {
candidates:
	for i := range fc.vecs {
		for p := range f.pivots {
			d := qp[p] - fc.pivotDist[i][p]
			if d < 0 {
				d = -d
			}
			if d > r {
				st.PivotSkips++
				continue candidates
			}
		}
		st.Comparisons++
		if qv.Dot(fc.vecs[i]) >= tau {
			return true
		}
	}
	return false
}
