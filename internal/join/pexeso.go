package join

import (
	"errors"
	"math"
	"sort"

	"tablehound/internal/dict"
	"tablehound/internal/embedding"
	"tablehound/internal/parallel"
	"tablehound/internal/tokenize"
	"tablehound/internal/vecstore"
)

// FuzzyMatch is one fuzzy-joinable column hit.
type FuzzyMatch struct {
	ColumnKey string
	// MatchedFraction is the fraction of query values with at least
	// one target value above the similarity threshold — PEXESO's
	// joinability measure.
	MatchedFraction float64
}

// FuzzyStats counts the work a fuzzy query performed, exposing the
// effect of pivot filtering and (when centroids are built) cluster
// pruning. Every candidate a query value considers lands in exactly
// one bucket: compared, pivot-skipped, or cluster-skipped.
type FuzzyStats struct {
	Comparisons  int // full vector similarity computations
	PivotSkips   int // candidates pruned by the pivot filter
	ClusterSkips int // candidates pruned wholesale by centroid bounds
}

// FuzzyJoiner finds columns that join with a query column under
// vector similarity rather than equality — the PEXESO approach to
// dirty or semantically equivalent join keys. Values are embedded
// (trained model with char-gram fallback) and a value matches if its
// cosine similarity exceeds tau.
//
// Candidate pruning uses pivot-based metric filtering: each indexed
// vector stores its distance to p shared pivot vectors; by the
// triangle inequality a candidate x can match query q only if
// |d(q,pi) - d(x,pi)| <= r for every pivot, where r is the distance
// radius corresponding to tau. Vectors failing the test are skipped
// without a similarity computation.
//
// Each distinct lake value is embedded exactly once: columns hold
// integer slots into shared vector and pivot-distance tables, so a
// value appearing in many columns costs one embedding, one distance
// row, and one canonical string (interned through the lake
// dictionary when one is supplied).
type FuzzyJoiner struct {
	model     *embedding.Model
	numPivots int
	pivots    []embedding.Vector
	dict      *dict.Dict
	slotOf    map[string]int32   // distinct value -> slot
	slotVec   []embedding.Vector // slot -> embedding
	slotPD    [][]float64        // slot -> distance per pivot
	cols      map[string]*fuzzyColumn
	keys      []string
	// cents, when built, buckets the shared slots by nearest centroid;
	// each column then groups its slots per cluster so a query value
	// can discard a whole group when the cluster's dot upper bound
	// falls short of tau (lossless — see valueMatchesPruned).
	cents *vecstore.Centroids

	// QueryParallelism bounds the per-query fan-out in Search (query-
	// value embedding and per-column verification): 0 = GOMAXPROCS,
	// negative or 1 = sequential. Results and stats are bit-identical
	// at every setting. Set before serving queries.
	QueryParallelism int
}

// fuzzyColumn is one indexed column: slots into the joiner's shared
// vector tables, in normalized distinct-value order. groups is the
// same slot set bucketed by centroid cluster (built lazily by
// BuildCentroids; nil means scan slots directly).
type fuzzyColumn struct {
	slots  []int32
	groups []slotGroup
}

// slotGroup is one column's slots that share a centroid cluster.
type slotGroup struct {
	cluster int32
	slots   []int32
}

// NewFuzzyJoiner creates a joiner over the given embedding model with
// numPivots pivot vectors (4-8 is typical).
func NewFuzzyJoiner(model *embedding.Model, numPivots int) *FuzzyJoiner {
	if numPivots <= 0 {
		numPivots = 4
	}
	return &FuzzyJoiner{
		model:     model,
		numPivots: numPivots,
		slotOf:    make(map[string]int32),
		cols:      make(map[string]*fuzzyColumn),
	}
}

// UseDict supplies the lake dictionary, used to intern the canonical
// string behind each vector slot so slot keys share storage with the
// rest of the system.
func (f *FuzzyJoiner) UseDict(d *dict.Dict) { f.dict = d }

// choosePivots runs farthest-point selection over the first indexed
// column's vectors. Pivots drawn from the data spread across the
// populated region of the space; random pivots in high dimension are
// nearly equidistant from everything and prune nothing.
func (f *FuzzyJoiner) choosePivots(vecs []embedding.Vector) {
	if len(vecs) == 0 {
		return
	}
	f.pivots = append(f.pivots, vecs[0])
	minDist := make([]float64, len(vecs))
	for i, v := range vecs {
		minDist[i] = euclid(v, vecs[0])
	}
	for len(f.pivots) < f.numPivots {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 || bestD == 0 {
			break
		}
		p := vecs[best]
		f.pivots = append(f.pivots, p)
		for i, v := range vecs {
			if d := euclid(v, p); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
}

// slot returns the shared slot of a value, embedding it on first
// sight. Pivot distances are filled separately (pivots may not exist
// yet). Not safe for concurrent use.
func (f *FuzzyJoiner) slot(v string) int32 {
	if s, ok := f.slotOf[v]; ok {
		return s
	}
	s := int32(len(f.slotVec))
	f.slotOf[f.dict.Intern(v)] = s
	f.slotVec = append(f.slotVec, f.model.ValueVector(v))
	f.slotPD = append(f.slotPD, nil)
	return s
}

// colVecs materializes a column's vectors in value order (for pivot
// selection).
func (f *FuzzyJoiner) colVecs(fc *fuzzyColumn) []embedding.Vector {
	out := make([]embedding.Vector, len(fc.slots))
	for i, s := range fc.slots {
		out[i] = f.slotVec[s]
	}
	return out
}

// fillPivotDistances computes distance rows for every slot that lacks
// one. Sequential; the batch path parallelizes the same work per slot.
func (f *FuzzyJoiner) fillPivotDistances() {
	for s := range f.slotPD {
		if f.slotPD[s] == nil {
			f.slotPD[s] = f.pivotDistances(f.slotVec[s])
		}
	}
}

// AddColumn indexes a column's distinct values.
func (f *FuzzyJoiner) AddColumn(key string, values []string) error {
	if _, dup := f.cols[key]; dup {
		return errors.New("join: duplicate fuzzy column " + key)
	}
	distinct := tokenize.NormalizeSet(values)
	fc := &fuzzyColumn{slots: make([]int32, len(distinct))}
	for j, v := range distinct {
		fc.slots[j] = f.slot(v)
	}
	if len(f.pivots) == 0 {
		f.choosePivots(f.colVecs(fc))
	}
	f.fillPivotDistances()
	f.cols[key] = fc
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	f.dropCentroids()
	return nil
}

// FuzzyColumn is one column staged for batch indexing via AddColumns.
type FuzzyColumn struct {
	Key    string
	Values []string
}

// AddColumns indexes a batch of columns using up to workers goroutines
// for the embedding work, producing exactly the state a sequential
// AddColumn loop over the same batch would. Normalization, the
// embedding of newly seen values, and pivot-distance rows (the
// dominant costs) fan out; duplicate checks, slot assignment, and
// pivot selection — the order-sensitive steps — run sequentially in
// batch order. The embedding model is only read, never written.
func (f *FuzzyJoiner) AddColumns(cols []FuzzyColumn, workers int) error {
	// Phase 1 (parallel): normalize every column.
	distincts, err := parallel.Map(len(cols), workers, func(i int) ([]string, error) {
		return tokenize.NormalizeSet(cols[i].Values), nil
	})
	if err != nil {
		return err
	}
	// Phase 2 (sequential): duplicate checks and slot assignment in
	// batch order; embedding of new slots is deferred to phase 3.
	var newVals []string
	base := len(f.slotVec)
	fcs := make([]*fuzzyColumn, len(cols))
	for i, distinct := range distincts {
		if _, dup := f.cols[cols[i].Key]; dup {
			return errors.New("join: duplicate fuzzy column " + cols[i].Key)
		}
		fc := &fuzzyColumn{slots: make([]int32, len(distinct))}
		for j, v := range distinct {
			s, ok := f.slotOf[v]
			if !ok {
				s = int32(len(f.slotVec))
				f.slotOf[f.dict.Intern(v)] = s
				f.slotVec = append(f.slotVec, nil)
				f.slotPD = append(f.slotPD, nil)
				newVals = append(newVals, v)
			}
			fc.slots[j] = s
		}
		fcs[i] = fc
		f.cols[cols[i].Key] = fc
		f.keys = append(f.keys, cols[i].Key)
	}
	// Phase 3 (parallel): embed newly seen values, one writer per slot.
	if err := parallel.ForEach(len(newVals), workers, func(i int) error {
		f.slotVec[base+i] = f.model.ValueVector(newVals[i])
		return nil
	}); err != nil {
		return err
	}
	// Phase 4 (sequential): pivot selection from the first committed
	// column with vectors, exactly as in the incremental path.
	for _, fc := range fcs {
		if len(f.pivots) > 0 {
			break
		}
		f.choosePivots(f.colVecs(fc))
	}
	// Phase 5 (parallel): distance rows for slots lacking one.
	missing := make([]int32, 0, len(newVals))
	for s := range f.slotPD {
		if f.slotPD[s] == nil {
			missing = append(missing, int32(s))
		}
	}
	if err := parallel.ForEach(len(missing), workers, func(i int) error {
		s := missing[i]
		f.slotPD[s] = f.pivotDistances(f.slotVec[s])
		return nil
	}); err != nil {
		return err
	}
	sort.Strings(f.keys)
	f.dropCentroids()
	return nil
}

// BuildCentroids trains a deterministic k-means table over the shared
// slot vectors (seeded k-means++, bit-reproducible for a given seed)
// and buckets every column's slots by cluster, enabling lossless
// cluster pruning in Search. Call after all columns are indexed;
// adding columns afterwards drops the table. k is clamped to the
// number of slots; k <= 0 is a no-op.
func (f *FuzzyJoiner) BuildCentroids(k int, seed uint64) {
	n := len(f.slotVec)
	if n == 0 || k <= 0 {
		return
	}
	c := vecstore.Train(func(i int) []float32 { return f.slotVec[i] }, n, f.model.Dim(), k, seed)
	f.cents = c
	for _, fc := range f.cols {
		fc.buildGroups(c)
	}
}

// buildGroups buckets the column's slots by cluster, clusters in
// ascending order, slots in original (normalized distinct-value)
// order within each.
func (fc *fuzzyColumn) buildGroups(c *vecstore.Centroids) {
	by := make(map[int32][]int32)
	clusters := make([]int32, 0, 8)
	for _, s := range fc.slots {
		j := c.AssignOf(int(s))
		if _, ok := by[j]; !ok {
			clusters = append(clusters, j)
		}
		by[j] = append(by[j], s)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a] < clusters[b] })
	fc.groups = make([]slotGroup, len(clusters))
	for i, j := range clusters {
		fc.groups[i] = slotGroup{cluster: j, slots: by[j]}
	}
}

// dropCentroids invalidates cluster state after post-build mutation.
func (f *FuzzyJoiner) dropCentroids() {
	if f.cents == nil {
		return
	}
	f.cents = nil
	for _, fc := range f.cols {
		fc.groups = nil
	}
}

// VectorStats returns the number of distinct embedded vectors (shared
// slots) and the total per-column value references into them — the
// dedup ratio the slot tables buy.
func (f *FuzzyJoiner) VectorStats() (slots, refs int) {
	slots = len(f.slotVec)
	for _, fc := range f.cols {
		refs += len(fc.slots)
	}
	return slots, refs
}

func (f *FuzzyJoiner) pivotDistances(v embedding.Vector) []float64 {
	out := make([]float64, len(f.pivots))
	for i, p := range f.pivots {
		out[i] = euclid(v, p)
	}
	return out
}

// euclid for unit vectors: sqrt(2 - 2*dot).
func euclid(a, b embedding.Vector) float64 {
	return math.Sqrt(math.Max(0, 2-2*a.Dot(b)))
}

// Search returns columns where at least minFraction of the query's
// distinct values fuzzy-match some target value at cosine >= tau,
// ranked by matched fraction. Search is a pure read and safe for
// concurrent use; query embedding and per-column verification fan out
// over QueryParallelism workers into indexed slots, with the stats
// summed in column order, so results are bit-identical to the
// sequential scan. Query values already present in the slot tables
// reuse their cached vector and distance row instead of re-embedding.
func (f *FuzzyJoiner) Search(values []string, tau, minFraction float64) ([]FuzzyMatch, FuzzyStats) {
	var st FuzzyStats
	q := tokenize.NormalizeSet(values)
	if len(q) == 0 {
		return nil, st
	}
	workers := parallel.Resolve(f.QueryParallelism)
	qv := make([]embedding.Vector, len(q))
	qp := make([][]float64, len(q))
	var maxd [][]float64 // per query value: per-cluster dot upper bounds
	if f.cents != nil {
		maxd = make([][]float64, len(q))
	}
	parallel.ForEach(len(q), workers, func(i int) error {
		if s, ok := f.slotOf[q[i]]; ok {
			qv[i], qp[i] = f.slotVec[s], f.slotPD[s]
		} else {
			qv[i] = f.model.ValueVector(q[i])
			qp[i] = f.pivotDistances(qv[i])
		}
		if maxd != nil {
			maxd[i] = f.cents.MaxDots(qv[i], nil)
		}
		return nil
	})
	// Matching radius: cosine >= tau on unit vectors means Euclidean
	// distance <= sqrt(2 - 2 tau).
	r := math.Sqrt(math.Max(0, 2-2*tau))
	type colResult struct {
		matched int
		st      FuzzyStats
	}
	results, _ := parallel.Map(len(f.keys), workers, func(i int) (colResult, error) {
		fc := f.cols[f.keys[i]]
		var cr colResult
		for j := range q {
			var hit bool
			if maxd != nil && fc.groups != nil {
				hit = f.valueMatchesPruned(qv[j], qp[j], maxd[j], fc, tau, r, &cr.st)
			} else {
				hit = f.valueMatches(qv[j], qp[j], fc, tau, r, &cr.st)
			}
			if hit {
				cr.matched++
			}
		}
		return cr, nil
	})
	var out []FuzzyMatch
	for i, key := range f.keys {
		st.Comparisons += results[i].st.Comparisons
		st.PivotSkips += results[i].st.PivotSkips
		st.ClusterSkips += results[i].st.ClusterSkips
		frac := float64(results[i].matched) / float64(len(q))
		if frac >= minFraction {
			out = append(out, FuzzyMatch{ColumnKey: key, MatchedFraction: frac})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MatchedFraction != out[j].MatchedFraction {
			return out[i].MatchedFraction > out[j].MatchedFraction
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	return out, st
}

func (f *FuzzyJoiner) valueMatches(qv embedding.Vector, qp []float64, fc *fuzzyColumn, tau, r float64, st *FuzzyStats) bool {
	return f.matchSlots(qv, qp, fc.slots, tau, r, st)
}

// valueMatchesPruned is valueMatches over the column's cluster
// groups: a group whose cluster dot bound (plus the bound's error
// margin) falls below tau cannot contain a match — every member x
// has qv·x <= maxd[cluster] — so all its candidates are skipped
// without touching their vectors or pivot rows. The boolean result
// is always identical to valueMatches; only the work differs.
func (f *FuzzyJoiner) valueMatchesPruned(qv embedding.Vector, qp, maxd []float64, fc *fuzzyColumn, tau, r float64, st *FuzzyStats) bool {
	for _, g := range fc.groups {
		if maxd[g.cluster]+vecstore.BoundEps < tau {
			st.ClusterSkips += len(g.slots)
			continue
		}
		if f.matchSlots(qv, qp, g.slots, tau, r, st) {
			return true
		}
	}
	return false
}

func (f *FuzzyJoiner) matchSlots(qv embedding.Vector, qp []float64, slots []int32, tau, r float64, st *FuzzyStats) bool {
candidates:
	for _, s := range slots {
		pd := f.slotPD[s]
		for p := range f.pivots {
			d := qp[p] - pd[p]
			if d < 0 {
				d = -d
			}
			if d > r {
				st.PivotSkips++
				continue candidates
			}
		}
		st.Comparisons++
		if qv.Dot(f.slotVec[s]) >= tau {
			return true
		}
	}
	return false
}
