package join

import (
	"sort"

	"tablehound/internal/minhash"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// MultiMatch is one multi-attribute joinable table hit.
type MultiMatch struct {
	TableID string
	// Columns[i] is the matched column name for query attribute i.
	Columns []string
	// Rows is the number of query rows with a full composite match.
	Rows int
}

// MateStats exposes the super-key filter's pruning power.
type MateStats struct {
	Candidates int // rows fetched via the single-attribute index
	Pruned     int // rows rejected by the super-key filter alone
	Verified   int // rows fully compared value-by-value
}

// MateIndex supports multi-attribute (composite-key) join search in
// the style of MATE (Esmailoghli et al., VLDB 2022): a conventional
// inverted index over one attribute retrieves candidate rows, and a
// per-row fixed-width bit signature over all cell values (the XASH
// super key) rejects rows that cannot match the remaining attributes
// without touching the data.
type MateIndex struct {
	tables map[string]*mateTable
	ids    []string
	// posting maps a normalized value to the rows containing it.
	posting map[string][]rowRef
}

type mateTable struct {
	tbl  *table.Table
	keys []uint64 // row -> super key (XASH signature of all cells)
	// norm[r][c] = normalized cell values.
	norm [][]string
}

type rowRef struct {
	tableIdx int32
	row      int32
	col      int16
}

// xash sets two bits per value in a 64-bit signature, positions
// derived from the value hash. A row's super key is the OR over its
// cells; containment of a value's bits is necessary for presence.
func xash(v string) uint64 {
	h := minhash.HashValue(v)
	return 1<<(h%64) | 1<<((h>>8)%64)
}

// NewMateIndex indexes the given tables.
func NewMateIndex(tables []*table.Table) *MateIndex {
	m := &MateIndex{
		tables:  make(map[string]*mateTable, len(tables)),
		posting: make(map[string][]rowRef),
	}
	for ti, t := range tables {
		mt := &mateTable{tbl: t}
		rows := t.NumRows()
		mt.keys = make([]uint64, rows)
		mt.norm = make([][]string, rows)
		for r := 0; r < rows; r++ {
			mt.norm[r] = make([]string, t.NumCols())
			var super uint64
			for c, col := range t.Columns {
				nv := tokenize.Normalize(col.Values[r])
				mt.norm[r][c] = nv
				if nv != "" {
					super |= xash(nv)
					m.posting[nv] = append(m.posting[nv], rowRef{int32(ti), int32(r), int16(c)})
				}
			}
			mt.keys[r] = super
		}
		m.tables[t.ID] = mt
		m.ids = append(m.ids, t.ID)
	}
	return m
}

// Search finds tables joinable with the query on ALL the given
// attribute columns simultaneously. query[i] is the i-th attribute's
// values, row-aligned across attributes. Returns tables ranked by the
// number of query rows that match some row of the table on every
// attribute, with useSuperKey controlling the XASH filter (the
// benchmark ablation).
func (m *MateIndex) Search(query [][]string, k int, useSuperKey bool) ([]MultiMatch, MateStats) {
	var st MateStats
	if len(query) == 0 || len(query[0]) == 0 || k <= 0 {
		return nil, st
	}
	nAttrs := len(query)
	nRows := len(query[0])
	type tableHit struct {
		rows int
		cols map[int]map[int16]int // attr -> col -> votes
	}
	hits := make(map[int32]*tableHit)
	for r := 0; r < nRows; r++ {
		qvals := make([]string, nAttrs)
		var qbits uint64
		ok := true
		for a := 0; a < nAttrs; a++ {
			if r >= len(query[a]) {
				ok = false
				break
			}
			qvals[a] = tokenize.Normalize(query[a][r])
			if qvals[a] == "" {
				ok = false
				break
			}
			qbits |= xash(qvals[a])
		}
		if !ok {
			continue
		}
		// Candidates: rows containing the first attribute's value.
		seen := make(map[[2]int32]bool)
		for _, ref := range m.posting[qvals[0]] {
			rk := [2]int32{ref.tableIdx, ref.row}
			if seen[rk] {
				continue
			}
			seen[rk] = true
			st.Candidates++
			mt := m.tables[m.ids[ref.tableIdx]]
			if useSuperKey && mt.keys[ref.row]&qbits != qbits {
				st.Pruned++
				continue
			}
			st.Verified++
			cols := matchRow(mt.norm[ref.row], qvals)
			if cols == nil {
				continue
			}
			h := hits[ref.tableIdx]
			if h == nil {
				h = &tableHit{cols: make(map[int]map[int16]int)}
				hits[ref.tableIdx] = h
			}
			h.rows++
			for a, c := range cols {
				if h.cols[a] == nil {
					h.cols[a] = make(map[int16]int)
				}
				h.cols[a][c]++
			}
		}
	}
	out := make([]MultiMatch, 0, len(hits))
	for ti, h := range hits {
		mt := m.tables[m.ids[ti]]
		mm := MultiMatch{TableID: m.ids[ti], Rows: h.rows, Columns: make([]string, nAttrs)}
		for a := 0; a < nAttrs; a++ {
			bestC, bestV := int16(-1), 0
			for c, v := range h.cols[a] {
				if v > bestV || (v == bestV && c < bestC) {
					bestC, bestV = c, v
				}
			}
			if bestC >= 0 {
				mm.Columns[a] = mt.tbl.Columns[bestC].Name
			}
		}
		out = append(out, mm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rows != out[j].Rows {
			return out[i].Rows > out[j].Rows
		}
		return out[i].TableID < out[j].TableID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, st
}

// matchRow checks that every query value appears somewhere in the row,
// each in a distinct column, returning attr -> column or nil.
func matchRow(row []string, qvals []string) []int16 {
	used := make(map[int16]bool, len(qvals))
	out := make([]int16, len(qvals))
	for a, qv := range qvals {
		found := int16(-1)
		for c, rv := range row {
			if rv == qv && !used[int16(c)] {
				found = int16(c)
				break
			}
		}
		if found < 0 {
			return nil
		}
		used[found] = true
		out[a] = found
	}
	return out
}
