package lsh

import (
	"fmt"
	"math"
	"testing"

	"tablehound/internal/minhash"
)

func genSet(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return out
}

func TestCollisionProbabilityCurve(t *testing.T) {
	// S-curve must be monotone in j and hit the endpoints.
	if p := CollisionProbability(0, 16, 8); p != 0 {
		t.Errorf("P(0) = %v", p)
	}
	if p := CollisionProbability(1, 16, 8); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(1) = %v", p)
	}
	prev := -1.0
	for j := 0.0; j <= 1.0; j += 0.05 {
		p := CollisionProbability(j, 16, 8)
		if p < prev {
			t.Fatalf("S-curve not monotone at j=%v", j)
		}
		prev = p
	}
}

func TestOptimalParamsRespectsBudget(t *testing.T) {
	for _, th := range []float64{0.2, 0.5, 0.8} {
		b, r := OptimalParams(th, 128, 0.5, 0.5)
		if b*r > 128 {
			t.Errorf("threshold %v: b*r = %d exceeds budget", th, b*r)
		}
		// Higher thresholds need more rows per band (steeper curve).
		if th == 0.8 && r < 2 {
			t.Errorf("threshold 0.8 chose r=%d, want steeper", r)
		}
	}
}

func TestOptimalParamsThresholdMonotone(t *testing.T) {
	_, rLow := OptimalParams(0.2, 128, 0.5, 0.5)
	_, rHigh := OptimalParams(0.9, 128, 0.5, 0.5)
	if rHigh < rLow {
		t.Errorf("rows at t=0.9 (%d) < rows at t=0.2 (%d)", rHigh, rLow)
	}
}

func TestIndexFindsSimilarMissesDissimilar(t *testing.T) {
	h := minhash.NewHasher(128, 42)
	b, r := OptimalParams(0.7, 128, 0.5, 0.5)
	ix := New(b, r)

	base := genSet("v", 200)
	// near: ~90% Jaccard with base.
	near := append(genSet("v", 180), genSet("n", 20)...)
	far := genSet("far", 200)
	if err := ix.Add("near", h.Sign(near)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("far", h.Sign(far)); err != nil {
		t.Fatal(err)
	}
	got := ix.Query(h.Sign(base))
	found := map[string]bool{}
	for _, k := range got {
		found[k] = true
	}
	if !found["near"] {
		t.Error("high-similarity key not retrieved")
	}
	if found["far"] {
		t.Error("disjoint key retrieved")
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestQueryBandsSubset(t *testing.T) {
	h := minhash.NewHasher(64, 1)
	ix := New(16, 4)
	sig := h.Sign(genSet("a", 50))
	if err := ix.Add("a", sig); err != nil {
		t.Fatal(err)
	}
	// Probing a prefix of bands must return a subset of full Query.
	full := ix.Query(sig)
	sub := ix.QueryBands(sig, 4)
	if len(sub) > len(full) {
		t.Error("band-prefix query returned more than full query")
	}
	if len(full) != 1 {
		t.Errorf("self query returned %v", full)
	}
	if got := ix.QueryBands(sig, 0); got != nil {
		t.Errorf("0 bands should return nil, got %v", got)
	}
	if got := ix.QueryBands(sig, 100); len(got) != 1 {
		t.Errorf("excess bands should clamp, got %v", got)
	}
}

func TestAddRejectsShortSignature(t *testing.T) {
	ix := New(4, 4)
	if err := ix.Add("x", make(minhash.Signature, 8)); err == nil {
		t.Error("want error for short signature")
	}
}

func TestSignatureLookup(t *testing.T) {
	h := minhash.NewHasher(16, 1)
	ix := New(4, 4)
	sig := h.Sign([]string{"a"})
	ix.Add("k", sig)
	got, ok := ix.Signature("k")
	if !ok || len(got) != 16 {
		t.Error("Signature lookup failed")
	}
	if _, ok := ix.Signature("missing"); ok {
		t.Error("missing key reported present")
	}
}

func TestFalseProbabilitiesBehavior(t *testing.T) {
	// More bands at fixed rows => more false positives, fewer negatives.
	fp1, fn1 := FalseProbabilities(0.5, 4, 4)
	fp2, fn2 := FalseProbabilities(0.5, 32, 4)
	if fp2 < fp1 {
		t.Errorf("fp should grow with bands: %v -> %v", fp1, fp2)
	}
	if fn2 > fn1 {
		t.Errorf("fn should shrink with bands: %v -> %v", fn1, fn2)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(0, 4)
}
