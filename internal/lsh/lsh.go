// Package lsh implements classic MinHash LSH with banding: a signature
// of k hashes is split into b bands of r rows; two sets collide in a
// band with probability J^r, so the probability of colliding in at
// least one band follows the S-curve 1-(1-J^r)^b. This is the index
// used by TUS and the per-partition building block of LSH Ensemble.
package lsh

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"tablehound/internal/minhash"
)

// Index is a banded MinHash LSH index mapping string keys to signatures.
// It is not safe for concurrent mutation.
type Index struct {
	bands, rows int
	tables      []map[uint64][]string // band -> bucket hash -> keys
	keys        map[string]minhash.Signature
}

// New creates an index with b bands of r rows. Signatures added must
// have at least b*r hashes; extra hashes are ignored.
func New(bands, rows int) *Index {
	return NewSized(bands, rows, 0)
}

// NewSized is New with capacity hints: each band's bucket map and the
// key map are presized for `expected` keys, skipping the incremental
// map growth that dominates bulk index construction.
func NewSized(bands, rows, expected int) *Index {
	if bands <= 0 || rows <= 0 {
		panic(fmt.Sprintf("lsh: bands=%d rows=%d must be positive", bands, rows))
	}
	if expected < 0 {
		expected = 0
	}
	t := make([]map[uint64][]string, bands)
	for i := range t {
		t[i] = make(map[uint64][]string, expected)
	}
	return &Index{bands: bands, rows: rows, tables: t, keys: make(map[string]minhash.Signature, expected)}
}

// Params returns the (bands, rows) configuration.
func (ix *Index) Params() (bands, rows int) { return ix.bands, ix.rows }

// Len returns the number of indexed keys.
func (ix *Index) Len() int { return len(ix.keys) }

// bucket hashes one band slice of a signature.
func bucket(band []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range band {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Add indexes a signature under key. Re-adding a key double-indexes it;
// callers should use unique keys.
func (ix *Index) Add(key string, sig minhash.Signature) error {
	if len(sig) < ix.bands*ix.rows {
		return fmt.Errorf("lsh: signature has %d hashes, need %d", len(sig), ix.bands*ix.rows)
	}
	ix.keys[key] = sig
	for b := 0; b < ix.bands; b++ {
		h := bucket(sig[b*ix.rows : (b+1)*ix.rows])
		ix.tables[b][h] = append(ix.tables[b][h], key)
	}
	return nil
}

// Query returns the candidate keys colliding with sig in any band.
func (ix *Index) Query(sig minhash.Signature) []string {
	return ix.QueryBands(sig, ix.bands)
}

// QueryBands probes only the first n bands. Using fewer bands lowers
// the collision probability to 1-(1-j^r)^n, which lets one physical
// index serve several sensitivity levels (LSH Ensemble's bootstrap).
func (ix *Index) QueryBands(sig minhash.Signature, n int) []string {
	if n > ix.bands {
		n = ix.bands
	}
	if len(sig) < n*ix.rows || n <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for b := 0; b < n; b++ {
		h := bucket(sig[b*ix.rows : (b+1)*ix.rows])
		for _, k := range ix.tables[b][h] {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// Signature returns the stored signature for key, if present.
func (ix *Index) Signature(key string) (minhash.Signature, bool) {
	s, ok := ix.keys[key]
	return s, ok
}

// CollisionProbability returns the probability that two sets with
// Jaccard similarity j collide in at least one band: 1-(1-j^r)^b.
func CollisionProbability(j float64, bands, rows int) float64 {
	return 1 - math.Pow(1-math.Pow(j, float64(rows)), float64(bands))
}

// FalseProbabilities numerically integrates the S-curve to estimate
// false-positive mass below the threshold and false-negative mass
// above it, the objective LSH Ensemble minimizes when tuning (b, r).
func FalseProbabilities(threshold float64, bands, rows int) (fp, fn float64) {
	const steps = 100
	dx := threshold / steps
	for i := 0; i < steps; i++ {
		x := dx * (float64(i) + 0.5)
		fp += CollisionProbability(x, bands, rows) * dx
	}
	dy := (1 - threshold) / steps
	for i := 0; i < steps; i++ {
		y := threshold + dy*(float64(i)+0.5)
		fn += (1 - CollisionProbability(y, bands, rows)) * dy
	}
	return fp, fn
}

// OptimalParams chooses (bands, rows) with bands*rows <= numHashes
// minimizing weighted false-positive + false-negative mass at the given
// Jaccard threshold. Weights follow datasketch's convention.
func OptimalParams(threshold float64, numHashes int, fpWeight, fnWeight float64) (bands, rows int) {
	best := math.Inf(1)
	bands, rows = 1, numHashes
	for b := 1; b <= numHashes; b++ {
		maxR := numHashes / b
		for r := 1; r <= maxR; r++ {
			fp, fn := FalseProbabilities(threshold, b, r)
			cost := fpWeight*fp + fnWeight*fn
			if cost < best {
				best = cost
				bands, rows = b, r
			}
		}
	}
	return bands, rows
}
