// Package learned implements a piecewise-linear learned index over
// sorted keys (PGM/PLEX style), exploring the tutorial's Section 3
// question of whether learned indexes are effective beyond single-
// table data structures. The index is built with the classic
// shrinking-cone greedy segmentation: each segment is the longest run
// of keys a single linear model predicts within ±Epsilon positions,
// so a lookup is a segment search plus a bounded local search — a
// handful of comparisons versus log2(n) for binary search.
package learned

import (
	"errors"
	"sort"
)

// DefaultEpsilon bounds the model's position error.
const DefaultEpsilon = 32

// segment is one linear model: pos ≈ slope*(key-start) + intercept.
type segment struct {
	start     uint64
	slope     float64
	intercept int
}

// Index is an immutable learned index over sorted distinct keys.
type Index struct {
	keys     []uint64
	segments []segment
	eps      int
}

// New builds an index over keys, which must be sorted ascending and
// distinct. eps <= 0 uses DefaultEpsilon.
func New(keys []uint64, eps int) (*Index, error) {
	if len(keys) == 0 {
		return nil, errors.New("learned: no keys")
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, errors.New("learned: keys must be sorted and distinct")
		}
	}
	ix := &Index{keys: keys, eps: eps}
	ix.build()
	return ix, nil
}

// build runs the shrinking-cone segmentation: maintain the feasible
// slope interval [loSlope, hiSlope] such that every key in the
// current segment is predicted within ±eps; start a new segment when
// the interval empties.
func (ix *Index) build() {
	n := len(ix.keys)
	start := 0
	for start < n {
		base := ix.keys[start]
		lo, hi := 0.0, 1e300
		end := start + 1
		for end < n {
			dx := float64(ix.keys[end] - base)
			dy := float64(end - start)
			// Feasible slopes put key[end] within ±eps of position.
			sLo := (dy - float64(ix.eps)) / dx
			sHi := (dy + float64(ix.eps)) / dx
			if sLo > lo {
				lo = sLo
			}
			if sHi < hi {
				hi = sHi
			}
			if lo > hi {
				break
			}
			end++
		}
		slope := (lo + hi) / 2
		if hi == 1e300 { // single-key segment
			slope = 0
		}
		ix.segments = append(ix.segments, segment{start: base, slope: slope, intercept: start})
		start = end
	}
}

// NumSegments returns the number of linear segments.
func (ix *Index) NumSegments() int { return len(ix.segments) }

// Len returns the number of keys.
func (ix *Index) Len() int { return len(ix.keys) }

// Epsilon returns the maximum position error of the models.
func (ix *Index) Epsilon() int { return ix.eps }

// Lookup returns the position of key, or (insertion position, false)
// when absent.
func (ix *Index) Lookup(key uint64) (int, bool) {
	// Segment search: last segment with start <= key.
	si := sort.Search(len(ix.segments), func(i int) bool {
		return ix.segments[i].start > key
	}) - 1
	if si < 0 {
		return 0, false
	}
	seg := ix.segments[si]
	pred := seg.intercept + int(seg.slope*float64(key-seg.start)+0.5)
	lo := pred - ix.eps
	hi := pred + ix.eps + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(ix.keys) {
		hi = len(ix.keys)
	}
	// Bounded local search inside the error window.
	p := lo + sort.Search(hi-lo, func(i int) bool { return ix.keys[lo+i] >= key })
	if p < len(ix.keys) && ix.keys[p] == key {
		return p, true
	}
	// The window can miss when the key falls between segments; fall
	// back to the invariant-preserving exact answer.
	if p == hi || p == lo {
		p = sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= key })
		if p < len(ix.keys) && ix.keys[p] == key {
			return p, true
		}
	}
	return p, false
}

// BinaryLookup is the classic baseline over the same keys.
func (ix *Index) BinaryLookup(key uint64) (int, bool) {
	p := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= key })
	return p, p < len(ix.keys) && ix.keys[p] == key
}
