package learned

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[rng.Uint64()>>1] = true
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestLookupFindsEveryKey(t *testing.T) {
	keys := sortedKeys(10000, 1)
	ix, err := New(keys, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		p, ok := ix.Lookup(k)
		if !ok || p != i {
			t.Fatalf("Lookup(%d) = %d,%v want %d,true", k, p, ok, i)
		}
	}
}

func TestLookupMissesAbsentKeys(t *testing.T) {
	keys := []uint64{10, 20, 30, 40}
	ix, err := New(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 15, 35, 99} {
		if _, ok := ix.Lookup(k); ok {
			t.Errorf("absent key %d reported present", k)
		}
	}
	// Insertion positions match binary search.
	for _, k := range []uint64{5, 15, 25, 35, 99} {
		p, _ := ix.Lookup(k)
		bp, _ := ix.BinaryLookup(k)
		if p != bp {
			t.Errorf("insertion pos for %d: learned %d, binary %d", k, p, bp)
		}
	}
}

func TestAgreesWithBinarySearchProperty(t *testing.T) {
	keys := sortedKeys(3000, 2)
	ix, err := New(keys, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k uint64) bool {
		k >>= 1
		p1, ok1 := ix.Lookup(k)
		p2, ok2 := ix.BinaryLookup(k)
		return p1 == p2 && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSegmentCountReasonable(t *testing.T) {
	// Uniform random keys are near-linear in CDF: very few segments.
	keys := sortedKeys(100000, 3)
	ix, err := New(keys, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSegments() > len(keys)/100 {
		t.Errorf("segments = %d for %d uniform keys", ix.NumSegments(), len(keys))
	}
	if ix.Len() != 100000 || ix.Epsilon() != 64 {
		t.Error("accessors wrong")
	}
}

func TestSequentialKeysOneSegment(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 7
	}
	ix, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSegments() != 1 {
		t.Errorf("perfectly linear keys need %d segments", ix.NumSegments())
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Error("empty keys should fail")
	}
	if _, err := New([]uint64{3, 2}, 8); err == nil {
		t.Error("unsorted keys should fail")
	}
	if _, err := New([]uint64{2, 2}, 8); err == nil {
		t.Error("duplicate keys should fail")
	}
	ix, err := New([]uint64{7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Epsilon() != DefaultEpsilon {
		t.Error("default epsilon not applied")
	}
	if p, ok := ix.Lookup(7); !ok || p != 0 {
		t.Error("singleton lookup failed")
	}
	if _, ok := ix.Lookup(3); ok {
		t.Error("key below all segments should miss")
	}
}
