package annotate

import (
	"sort"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Dictionary is the lookup baseline: it memorizes the training values
// per label and types a column by majority vote over exact hits. High
// precision on seen values, no generalization — the KB-style extreme
// of the precision/coverage trade-off.
type Dictionary struct {
	byValue map[string]map[string]int // value -> label -> votes
}

// TrainDictionary builds the baseline from labeled columns.
func TrainDictionary(examples []Example) *Dictionary {
	d := &Dictionary{byValue: make(map[string]map[string]int)}
	for _, ex := range examples {
		for _, v := range tokenize.NormalizeSet(ex.Values) {
			m := d.byValue[v]
			if m == nil {
				m = make(map[string]int)
				d.byValue[v] = m
			}
			m[ex.Label]++
		}
	}
	return d
}

// Predict returns the majority label over exact value hits and the
// fraction of values that hit; ("", 0) when nothing matches.
func (d *Dictionary) Predict(values []string, _ string) (string, float64) {
	votes := make(map[string]int)
	hits := 0
	distinct := tokenize.NormalizeSet(values)
	for _, v := range distinct {
		if m, ok := d.byValue[v]; ok {
			hits++
			for l, c := range m {
				votes[l] += c
			}
		}
	}
	if hits == 0 || len(distinct) == 0 {
		return "", 0
	}
	labels := make([]string, 0, len(votes))
	for l := range votes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	best := labels[0]
	for _, l := range labels[1:] {
		if votes[l] > votes[best] {
			best = l
		}
	}
	return best, float64(hits) / float64(len(distinct))
}

// RulePredict is the hand-written-rules baseline: it can only name
// syntactic types (int, float, date, bool, text) — the pre-learning
// state of the art the learned detectors are measured against.
func RulePredict(values []string, _ string) (string, float64) {
	switch table.InferType(values) {
	case table.TypeInt:
		return "int", 1
	case table.TypeFloat:
		return "float", 1
	case table.TypeDate:
		return "date", 1
	case table.TypeBool:
		return "bool", 1
	case table.TypeString:
		return "text", 1
	default:
		return "", 0
	}
}
