// Package annotate implements semantic column-type detection (Section
// 2.2 of the tutorial): assigning a semantic type ("city", "gene",
// "currency") to a column from its values. Three detectors are
// provided, mirroring the lineage the tutorial surveys:
//
//   - a Sherlock-style learned detector: hand-crafted statistical
//     features plus hashed bag-of-values, classified by multinomial
//     logistic regression trained in-package;
//   - a Sato-style variant that smooths per-column predictions with
//     the table's topic (the mean prediction of sibling columns);
//   - dictionary and rule baselines the learned models are compared
//     against in the papers.
package annotate

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"tablehound/internal/minhash"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Feature layout: statistical features + hashed value tokens + hashed
// header tokens.
const (
	numStats   = 12
	valueHash  = 96
	headerHash = 32
	// FeatureDim is the total feature vector length.
	FeatureDim = numStats + valueHash + headerHash
)

// Example is one labeled training column.
type Example struct {
	Values []string
	Header string
	Label  string
}

// Features extracts the Sherlock-style feature vector of a column.
func Features(values []string, header string) []float64 {
	f := make([]float64, FeatureDim)
	distinct := tokenize.NormalizeSet(values)
	n := len(values)
	if n == 0 {
		return f
	}
	var sumLen, numeric, dates, alpha, digitChars, totalChars float64
	counts := make(map[string]int)
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		counts[v]++
		sumLen += float64(len(v))
		if _, err := strconv.ParseFloat(v, 64); err == nil {
			numeric++
		}
		if table.InferType([]string{v}) == table.TypeDate {
			dates++
		}
		hasAlpha := false
		for _, ch := range v {
			totalChars++
			switch {
			case ch >= '0' && ch <= '9':
				digitChars++
			case (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z'):
				hasAlpha = true
			}
		}
		if hasAlpha {
			alpha++
		}
	}
	nn := float64(n)
	f[0] = sumLen / nn / 32            // mean length (scaled)
	f[1] = numeric / nn                // numeric fraction
	f[2] = dates / nn                  // date fraction
	f[3] = alpha / nn                  // alphabetic fraction
	f[4] = float64(len(distinct)) / nn // distinct ratio
	f[5] = entropy(counts, n)          // value entropy (normalized)
	if totalChars > 0 {
		f[6] = digitChars / totalChars // digit char fraction
	}
	f[7] = lenStd(values, sumLen/nn) / 16 // length spread
	f[8] = prefixShare(distinct)          // shared-prefix signal
	f[9] = avgWords(distinct)             // words per value (scaled)
	f[10] = 1                             // bias
	f[11] = math.Min(1, nn/256)           // column size signal
	// Hashed bag of value tokens (normalized counts).
	for _, v := range distinct {
		for _, w := range tokenize.Words(v) {
			f[numStats+int(minhash.HashValue(w)%valueHash)] += 1 / float64(len(distinct)+1)
		}
	}
	// Hashed header tokens.
	for _, w := range tokenize.Words(header) {
		f[numStats+valueHash+int(minhash.HashValue(w)%headerHash)] += 0.5
	}
	return f
}

func entropy(counts map[string]int, n int) float64 {
	if n == 0 || len(counts) < 2 {
		return 0
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(len(counts)))
}

func lenStd(values []string, mean float64) float64 {
	if len(values) < 2 {
		return 0
	}
	var s float64
	for _, v := range values {
		d := float64(len(v)) - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)-1))
}

// prefixShare measures how much of the values share their first 3
// characters with the modal prefix — synthetic and real code-like
// domains (ISO codes, IDs) score high.
func prefixShare(distinct []string) float64 {
	if len(distinct) == 0 {
		return 0
	}
	pref := make(map[string]int)
	for _, v := range distinct {
		p := v
		if len(p) > 3 {
			p = p[:3]
		}
		pref[p]++
	}
	best := 0
	for _, c := range pref {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(len(distinct))
}

func avgWords(distinct []string) float64 {
	if len(distinct) == 0 {
		return 0
	}
	var w float64
	for _, v := range distinct {
		w += float64(len(tokenize.Words(v)))
	}
	return math.Min(1, w/float64(len(distinct))/4)
}

// Config controls training.
type Config struct {
	Epochs       int     // default 30
	LearningRate float64 // default 0.3
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.3
	}
	return c
}

// Annotator is a trained multinomial logistic-regression type detector.
type Annotator struct {
	labels []string
	w      [][]float64 // label -> weights
}

// Train fits the detector on labeled columns.
func Train(examples []Example, cfg Config) (*Annotator, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, errors.New("annotate: no training examples")
	}
	labelSet := make(map[string]int)
	for _, ex := range examples {
		if _, ok := labelSet[ex.Label]; !ok {
			labelSet[ex.Label] = len(labelSet)
		}
	}
	labels := make([]string, len(labelSet))
	for l, i := range labelSet {
		labels[i] = l
	}
	sort.Strings(labels)
	for i, l := range labels {
		labelSet[l] = i
	}
	feats := make([][]float64, len(examples))
	ys := make([]int, len(examples))
	for i, ex := range examples {
		feats[i] = Features(ex.Values, ex.Header)
		ys[i] = labelSet[ex.Label]
	}
	a := &Annotator{labels: labels, w: make([][]float64, len(labels))}
	for i := range a.w {
		a.w[i] = make([]float64, FeatureDim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	order := rng.Perm(len(examples))
	probs := make([]float64, len(labels))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			a.softmax(feats[i], probs)
			for c := range a.w {
				g := probs[c]
				if c == ys[i] {
					g -= 1
				}
				if g == 0 {
					continue
				}
				wc := a.w[c]
				for d, x := range feats[i] {
					if x != 0 {
						wc[d] -= lr * g * x
					}
				}
			}
		}
	}
	return a, nil
}

func (a *Annotator) softmax(x []float64, out []float64) {
	maxZ := math.Inf(-1)
	for c, wc := range a.w {
		var z float64
		for d, v := range x {
			if v != 0 {
				z += wc[d] * v
			}
		}
		out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxZ)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Labels returns the label vocabulary, sorted.
func (a *Annotator) Labels() []string { return a.labels }

// Scores returns the per-label probabilities for a column.
func (a *Annotator) Scores(values []string, header string) map[string]float64 {
	probs := make([]float64, len(a.labels))
	a.softmax(Features(values, header), probs)
	out := make(map[string]float64, len(a.labels))
	for i, l := range a.labels {
		out[l] = probs[i]
	}
	return out
}

// Predict returns the most likely type and its probability.
func (a *Annotator) Predict(values []string, header string) (string, float64) {
	probs := make([]float64, len(a.labels))
	a.softmax(Features(values, header), probs)
	best := 0
	for c := range probs {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return a.labels[best], probs[best]
}

// Prediction is one column's annotation.
type Prediction struct {
	Column string
	Label  string
	Score  float64
}

// AnnotateTable predicts a type for every column. With satoSmoothing,
// each column's distribution is mixed with the table topic — the mean
// distribution of its sibling columns — before the argmax, the way
// Sato uses table context to fix locally ambiguous columns.
func (a *Annotator) AnnotateTable(t *table.Table, satoSmoothing bool) []Prediction {
	dists := make([][]float64, len(t.Columns))
	for i, c := range t.Columns {
		dists[i] = make([]float64, len(a.labels))
		a.softmax(Features(c.Values, c.Name), dists[i])
	}
	out := make([]Prediction, len(t.Columns))
	for i, c := range t.Columns {
		d := dists[i]
		if satoSmoothing && len(t.Columns) > 1 {
			topic := make([]float64, len(a.labels))
			for j := range t.Columns {
				if j == i {
					continue
				}
				for k, v := range dists[j] {
					topic[k] += v
				}
			}
			mixed := make([]float64, len(d))
			for k := range d {
				mixed[k] = 0.8*d[k] + 0.2*topic[k]/float64(len(t.Columns)-1)
			}
			d = mixed
		}
		best := 0
		for k := range d {
			if d[k] > d[best] {
				best = k
			}
		}
		out[i] = Prediction{Column: c.Name, Label: a.labels[best], Score: d[best]}
	}
	return out
}
