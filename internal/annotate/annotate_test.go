package annotate

import (
	"fmt"
	"math/rand"
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/table"
)

// typedCorpus builds labeled columns from a generated lake: the label
// is the ground-truth domain name. Returns train and test splits with
// disjoint columns (but shared domains).
func typedCorpus(t *testing.T) (train, test []Example) {
	t.Helper()
	lake := datagen.Generate(datagen.Config{
		Seed:              31,
		NumDomains:        10,
		DomainSize:        150,
		NumTemplates:      8,
		TablesPerTemplate: 6,
		NoiseCols:         -1,
		NumericCols:       -1,
	})
	rng := rand.New(rand.NewSource(5))
	for _, tbl := range lake.Tables {
		for _, c := range tbl.Columns {
			d, ok := lake.ColumnDomain[table.ColumnKey(tbl.ID, c.Name)]
			if !ok {
				continue
			}
			ex := Example{Values: c.Values, Header: "col", Label: lake.DomainNames[d]}
			if rng.Float64() < 0.7 {
				train = append(train, ex)
			} else {
				test = append(test, ex)
			}
		}
	}
	return train, test
}

func accuracy(predict func([]string, string) (string, float64), test []Example) float64 {
	hit := 0
	for _, ex := range test {
		if l, _ := predict(ex.Values, ex.Header); l == ex.Label {
			hit++
		}
	}
	return float64(hit) / float64(len(test))
}

func TestLearnedAnnotatorAccuracy(t *testing.T) {
	train, test := typedCorpus(t)
	a, err := Train(train, Config{Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(a.Predict, test); acc < 0.8 {
		t.Errorf("learned accuracy = %.3f, want >= 0.8", acc)
	}
}

func TestLearnedBeatsRuleBaseline(t *testing.T) {
	train, test := typedCorpus(t)
	a, err := Train(train, Config{Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	learned := accuracy(a.Predict, test)
	rule := accuracy(RulePredict, test)
	if learned <= rule {
		t.Errorf("learned %.3f should beat rules %.3f on semantic types", learned, rule)
	}
}

func TestDictionaryBaselineHighPrecisionOnSeen(t *testing.T) {
	train, test := typedCorpus(t)
	d := TrainDictionary(train)
	// Values are shared between train and test columns of the same
	// domain, so dictionary lookup performs well here...
	if acc := accuracy(d.Predict, test); acc < 0.8 {
		t.Errorf("dictionary accuracy on overlapping vocab = %.3f", acc)
	}
	// ...but it cannot type unseen values at all.
	if l, conf := d.Predict([]string{"never", "seen", "values"}, ""); l != "" || conf != 0 {
		t.Errorf("dictionary on unseen = %q, %v", l, conf)
	}
}

func TestSatoSmoothingFixesAmbiguousColumn(t *testing.T) {
	// Train on two domains with distinct vocabularies plus an
	// ambiguous "shared" vocabulary that appears under both labels in
	// proportion to the table topic.
	var train []Example
	for i := 0; i < 30; i++ {
		train = append(train,
			Example{Values: vals("citya", 20, i), Header: "h", Label: "city"},
			Example{Values: vals("generic", 20, i), Header: "h", Label: "city"},
			Example{Values: vals("teamb", 20, i), Header: "h", Label: "team"},
		)
	}
	a, err := Train(train, Config{Epochs: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A table whose siblings are clearly "city": the ambiguous column
	// should lean city under smoothing.
	tbl := table.MustNew("t", "t", []*table.Column{
		table.NewColumn("a", vals("citya", 20, 99)),
		table.NewColumn("b", vals("citya", 20, 98)),
		table.NewColumn("amb", vals("generic", 20, 97)),
	})
	smoothed := a.AnnotateTable(tbl, true)
	if smoothed[2].Label != "city" {
		t.Errorf("smoothed ambiguous label = %q", smoothed[2].Label)
	}
	// Smoothing changes scores relative to the raw pass.
	raw := a.AnnotateTable(tbl, false)
	if raw[2].Score == smoothed[2].Score {
		t.Error("smoothing had no effect on scores")
	}
}

func vals(prefix string, n, salt int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%03d", prefix, (i*7+salt)%50)
	}
	return out
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestFeaturesShapeAndSignals(t *testing.T) {
	f := Features([]string{"2020-01-01", "2021-05-05"}, "date_col")
	if len(f) != FeatureDim {
		t.Fatalf("dim = %d", len(f))
	}
	if f[2] != 1 { // date fraction
		t.Errorf("date fraction = %v", f[2])
	}
	fn := Features([]string{"1", "2", "3"}, "n")
	if fn[1] != 1 { // numeric fraction
		t.Errorf("numeric fraction = %v", fn[1])
	}
	if fe := Features(nil, "x"); len(fe) != FeatureDim {
		t.Error("empty column features wrong size")
	}
	// Distinct ratio: repeated values lower it.
	fr := Features([]string{"a", "a", "a", "b"}, "")
	if fr[4] != 0.5 {
		t.Errorf("distinct ratio = %v", fr[4])
	}
}

func TestScoresSumToOne(t *testing.T) {
	train, _ := typedCorpus(t)
	a, err := Train(train[:50], Config{Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Scores([]string{"city_0001", "city_0002"}, "h")
	var sum float64
	for _, v := range s {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("score sum = %v", sum)
	}
	if len(a.Labels()) == 0 {
		t.Error("no labels")
	}
}

func TestRulePredictTypes(t *testing.T) {
	cases := []struct {
		vals []string
		want string
	}{
		{[]string{"1", "2"}, "int"},
		{[]string{"1.5", "2.5"}, "float"},
		{[]string{"2020-01-01"}, "date"},
		{[]string{"true", "false"}, "bool"},
		{[]string{"hello", "world"}, "text"},
	}
	for _, c := range cases {
		if got, _ := RulePredict(c.vals, ""); got != c.want {
			t.Errorf("RulePredict(%v) = %q, want %q", c.vals, got, c.want)
		}
	}
	if got, conf := RulePredict(nil, ""); got != "" || conf != 0 {
		t.Error("empty column should be unknown")
	}
}
