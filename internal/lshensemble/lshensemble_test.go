package lshensemble

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tablehound/internal/minhash"
)

const numHashes = 128

func genSet(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return out
}

// skewedLake builds domains with Zipf-like sizes; domain i of size s
// has values "u-i-*" except planted containers of the query.
func skewedLake(t *testing.T, ix *Index, h *minhash.Hasher, rng *rand.Rand, n int, query []string, containers map[string]float64) map[string][]string {
	t.Helper()
	lake := make(map[string][]string)
	for i := 0; i < n; i++ {
		size := 10 + int(1000*rng.ExpFloat64()/4)
		key := fmt.Sprintf("dom%d", i)
		vals := genSet(fmt.Sprintf("u-%d", i), size)
		lake[key] = vals
	}
	// Iterate planted containers in sorted order: map-order iteration
	// would consume rng values nondeterministically across runs.
	ckeys := make([]string, 0, len(containers))
	for key := range containers {
		ckeys = append(ckeys, key)
	}
	sort.Strings(ckeys)
	for _, key := range ckeys {
		frac := containers[key]
		size := 50 + rng.Intn(400)
		nShared := int(frac * float64(len(query)))
		vals := append([]string{}, query[:nShared]...)
		vals = append(vals, genSet("filler-"+key, size)...)
		lake[key] = vals
	}
	lkeys := make([]string, 0, len(lake))
	for key := range lake {
		lkeys = append(lkeys, key)
	}
	sort.Strings(lkeys)
	for _, key := range lkeys {
		vals := lake[key]
		if err := ix.Add(Domain{Key: key, Size: len(vals), Sig: h.Sign(vals)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return lake
}

func TestQueryFindsHighContainmentDomains(t *testing.T) {
	h := minhash.NewHasher(numHashes, 42)
	rng := rand.New(rand.NewSource(1))
	ix := New(numHashes, 8)
	query := genSet("q", 100)
	containers := map[string]float64{"hit1": 0.95, "hit2": 0.8, "miss": 0.1}
	skewedLake(t, ix, h, rng, 200, query, containers)

	got, err := ix.Query(h.Sign(query), 100, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, k := range got {
		found[k] = true
	}
	if !found["hit1"] || !found["hit2"] {
		t.Errorf("missed planted containers, got %d candidates: hit1=%v hit2=%v", len(got), found["hit1"], found["hit2"])
	}
}

func TestLowContainmentMostlyExcluded(t *testing.T) {
	h := minhash.NewHasher(numHashes, 42)
	rng := rand.New(rand.NewSource(2))
	ix := New(numHashes, 8)
	query := genSet("q", 100)
	skewedLake(t, ix, h, rng, 300, query, map[string]float64{"hit": 0.9})

	got, err := ix.Query(h.Sign(query), 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// The 300 random domains are disjoint from the query; candidate
	// list should be a small fraction of the lake.
	if len(got) > 100 {
		t.Errorf("too many false candidates: %d of 301", len(got))
	}
}

func TestPartitionBoundsAreSorted(t *testing.T) {
	h := minhash.NewHasher(numHashes, 3)
	ix := New(numHashes, 4)
	for i := 1; i <= 40; i++ {
		vals := genSet(fmt.Sprintf("d%d", i), i*5)
		if err := ix.Add(Domain{Key: fmt.Sprintf("d%d", i), Size: i * 5, Sig: h.Sign(vals)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	bounds := ix.PartitionBounds()
	if len(bounds) != 4 {
		t.Fatalf("partitions = %d, want 4", len(bounds))
	}
	for i, b := range bounds {
		if b[0] > b[1] {
			t.Errorf("partition %d: lower %d > upper %d", i, b[0], b[1])
		}
		if i > 0 && bounds[i-1][1] > b[0] {
			t.Errorf("partition %d overlaps previous", i)
		}
	}
	if s, ok := ix.DomainSize("d10"); !ok || s != 50 {
		t.Errorf("DomainSize(d10) = %d,%v", s, ok)
	}
}

func TestJaccardThresholdFormula(t *testing.T) {
	// Containment 1.0 of a query equal in size to the partition upper
	// bound implies Jaccard >= |Q|/(|Q|+u-|Q|) = |Q|/u.
	j := jaccardThreshold(1.0, 100, 100)
	if j < 0.99 {
		t.Errorf("j = %v, want ~1", j)
	}
	// Larger upper bound loosens the Jaccard bound.
	j1 := jaccardThreshold(0.8, 100, 200)
	j2 := jaccardThreshold(0.8, 100, 2000)
	if j2 >= j1 {
		t.Errorf("bound should loosen with upper: %v -> %v", j1, j2)
	}
}

func TestAPIErrors(t *testing.T) {
	ix := New(numHashes, 2)
	if _, err := ix.Query(make(minhash.Signature, numHashes), 10, 0.5); err == nil {
		t.Error("Query before Build should fail")
	}
	if err := ix.Add(Domain{Key: "x", Size: 0, Sig: make(minhash.Signature, numHashes)}); err == nil {
		t.Error("zero-size domain should fail")
	}
	if err := ix.Add(Domain{Key: "x", Size: 5, Sig: make(minhash.Signature, 4)}); err == nil {
		t.Error("short signature should fail")
	}
	if err := ix.Build(); err == nil {
		t.Error("Build with no domains should fail")
	}
	ix2 := New(numHashes, 2)
	h := minhash.NewHasher(numHashes, 1)
	ix2.Add(Domain{Key: "a", Size: 3, Sig: h.Sign(genSet("a", 3))})
	if err := ix2.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Build(); err == nil {
		t.Error("double Build should fail")
	}
	if err := ix2.Add(Domain{Key: "b", Size: 3, Sig: h.Sign(genSet("b", 3))}); err == nil {
		t.Error("Add after Build should fail")
	}
	if _, err := ix2.Query(h.Sign(genSet("a", 3)), 0, 0.5); err == nil {
		t.Error("querySize 0 should fail")
	}
	if _, err := ix2.Query(h.Sign(genSet("a", 3)), 3, 1.5); err == nil {
		t.Error("threshold > 1 should fail")
	}
}

func TestMorePartitionsImprovePrecision(t *testing.T) {
	// The headline LSH Ensemble property: with skewed cardinalities, a
	// partitioned index produces fewer false candidates than a single
	// partition, without losing the true containers.
	query := genSet("q", 100)
	build := func(parts int) *Index {
		h := minhash.NewHasher(numHashes, 42)
		rng := rand.New(rand.NewSource(7))
		ix := New(numHashes, parts)
		skewedLake(t, ix, h, rng, 400, query, map[string]float64{"hit": 0.9})
		return ix
	}
	h := minhash.NewHasher(numHashes, 42)
	sig := h.Sign(query)

	c1, err := build(1).Query(sig, 100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := build(16).Query(sig, 100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	in := func(cs []string, k string) bool {
		for _, c := range cs {
			if c == k {
				return true
			}
		}
		return false
	}
	if !in(c16, "hit") {
		t.Fatal("16-partition index lost the true container")
	}
	if len(c16) > len(c1)+5 {
		t.Errorf("partitioning should not blow up candidates: 1 part=%d, 16 parts=%d", len(c1), len(c16))
	}
}
