// Package lshensemble implements LSH Ensemble (Zhu, Nargesian, Pu,
// Miller — VLDB 2016) for Internet-scale domain search: given a query
// column Q and a containment threshold t, find indexed domains X with
// |Q ∩ X| / |Q| >= t, robustly under skewed domain cardinalities.
//
// The index partitions domains by cardinality into equi-depth
// partitions. Within a partition with cardinality upper bound u, a
// containment threshold t converts to a Jaccard lower bound
//
//	j*(t) = t|Q| / (|Q| + u - t|Q|)
//
// so each partition can be probed with MinHash LSH tuned to j*. To
// support query-time thresholds, every partition keeps one banded
// index per row count r in {1, 2, 4, ...} (the paper's bootstrap);
// at query time the (b, r) minimizing false-positive+false-negative
// mass at j* is selected and only the first b bands are probed.
package lshensemble

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tablehound/internal/lsh"
	"tablehound/internal/minhash"
)

// Domain is one indexable column: a key, its distinct-value count, and
// its MinHash signature.
type Domain struct {
	Key  string
	Size int
	Sig  minhash.Signature
}

// Index is an LSH Ensemble over domains. Construct with New, Add all
// domains, then call Build before querying.
type Index struct {
	numHashes int
	numPart   int
	pending   []Domain
	parts     []*partition
	built     bool
}

type partition struct {
	lower, upper int                // inclusive cardinality range
	byRows       map[int]*lsh.Index // rows r -> banded index with floor(k/r) bands
	sizes        map[string]int     // key -> domain size, for post-filtering
}

// rowChoices are the row counts each partition maintains an index for.
func rowChoices(numHashes int) []int {
	var rs []int
	for r := 1; r <= numHashes; r *= 2 {
		rs = append(rs, r)
	}
	return rs
}

// New creates an ensemble with the given signature length and number of
// cardinality partitions. numPart=1 degenerates to plain MinHash LSH,
// which is the baseline the paper improves on.
func New(numHashes, numPart int) *Index {
	if numHashes <= 0 || numPart <= 0 {
		panic(fmt.Sprintf("lshensemble: numHashes=%d numPart=%d must be positive", numHashes, numPart))
	}
	return &Index{numHashes: numHashes, numPart: numPart}
}

// Add stages a domain for indexing. Must be called before Build.
func (ix *Index) Add(d Domain) error {
	if ix.built {
		return errors.New("lshensemble: Add after Build")
	}
	if len(d.Sig) < ix.numHashes {
		return fmt.Errorf("lshensemble: signature has %d hashes, need %d", len(d.Sig), ix.numHashes)
	}
	if d.Size <= 0 {
		return fmt.Errorf("lshensemble: domain %q has non-positive size %d", d.Key, d.Size)
	}
	ix.pending = append(ix.pending, d)
	return nil
}

// Build partitions the staged domains by cardinality (equi-depth) and
// constructs the per-partition banded indexes.
func (ix *Index) Build() error { return ix.BuildN(1) }

// BuildN is Build with the per-partition banded indexes constructed by
// up to `parallelism` workers (<=1 means sequential). Each (partition,
// row-count) index is independent and is filled by one worker in the
// same sorted domain order the sequential build uses, so the built
// index is identical at every parallelism level.
func (ix *Index) BuildN(parallelism int) error {
	if ix.built {
		return errors.New("lshensemble: Build called twice")
	}
	if len(ix.pending) == 0 {
		return errors.New("lshensemble: no domains added")
	}
	sort.Slice(ix.pending, func(i, j int) bool {
		if ix.pending[i].Size != ix.pending[j].Size {
			return ix.pending[i].Size < ix.pending[j].Size
		}
		return ix.pending[i].Key < ix.pending[j].Key
	})
	n := len(ix.pending)
	p := ix.numPart
	if p > n {
		p = n
	}
	type job struct {
		part  *partition
		chunk []Domain
		rows  int
	}
	var jobs []job
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		if lo >= hi {
			continue
		}
		chunk := ix.pending[lo:hi]
		part := &partition{
			lower:  chunk[0].Size,
			upper:  chunk[len(chunk)-1].Size,
			byRows: make(map[int]*lsh.Index),
			sizes:  make(map[string]int, len(chunk)),
		}
		for _, d := range chunk {
			part.sizes[d.Key] = d.Size
		}
		for _, r := range rowChoices(ix.numHashes) {
			part.byRows[r] = lsh.NewSized(ix.numHashes/r, r, len(chunk))
			jobs = append(jobs, job{part: part, chunk: chunk, rows: r})
		}
		ix.parts = append(ix.parts, part)
	}
	fill := func(j job) error {
		sub := j.part.byRows[j.rows]
		for _, d := range j.chunk {
			if err := sub.Add(d.Key, d.Sig); err != nil {
				return err
			}
		}
		return nil
	}
	if parallelism <= 1 || len(jobs) <= 1 {
		for _, j := range jobs {
			if err := fill(j); err != nil {
				return err
			}
		}
	} else {
		if parallelism > len(jobs) {
			parallelism = len(jobs)
		}
		var (
			next int64 = -1
			wg   sync.WaitGroup
			mu   sync.Mutex
			ferr error
		)
		wg.Add(parallelism)
		for w := 0; w < parallelism; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(jobs) {
						return
					}
					if err := fill(jobs[i]); err != nil {
						mu.Lock()
						if ferr == nil {
							ferr = err
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if ferr != nil {
			return ferr
		}
	}
	ix.pending = nil
	ix.built = true
	return nil
}

// NumPartitions returns the number of non-empty partitions built.
func (ix *Index) NumPartitions() int { return len(ix.parts) }

// Params returns the configured signature length and target partition
// count — the New arguments that, together with the added domains,
// fully determine the built index (Build sorts domains itself, so
// reconstruction from the same inputs is deterministic).
func (ix *Index) Params() (numHashes, numPart int) { return ix.numHashes, ix.numPart }

// jaccardThreshold converts a containment threshold into the Jaccard
// lower bound within a partition with cardinality upper bound u.
func jaccardThreshold(t float64, querySize, upper int) float64 {
	q := float64(querySize)
	j := t * q / (q + float64(upper) - t*q)
	if j > 1 {
		j = 1
	}
	if j <= 0 {
		j = 1e-9
	}
	return j
}

// paramCache memoizes optimalBootstrap: the numeric integration is
// ~10^4 S-curve evaluations, far too slow to repeat per query per
// partition. Thresholds are quantized to 1e-3 for the cache key.
var paramCache sync.Map // [2]int{numHashes, round(j*1000)} -> [2]int{b, r}

// optimalBootstrap picks (bands, rows) among the bootstrap row choices
// minimizing FP+FN mass at Jaccard threshold j.
func optimalBootstrap(j float64, numHashes int) (bands, rows int) {
	key := [2]int{numHashes, int(j*1000 + 0.5)}
	if v, ok := paramCache.Load(key); ok {
		p := v.([2]int)
		return p[0], p[1]
	}
	best := math.Inf(1)
	bands, rows = 1, numHashes
	for _, r := range rowChoices(numHashes) {
		maxB := numHashes / r
		for b := 1; b <= maxB; b++ {
			fp, fn := lsh.FalseProbabilities(j, b, r)
			cost := fp + fn
			if cost < best {
				best = cost
				bands, rows = b, r
			}
		}
	}
	paramCache.Store(key, [2]int{bands, rows})
	return bands, rows
}

// Query returns candidate domain keys whose containment of the query is
// likely >= threshold. querySize is the distinct-value count of the
// query column. Candidates are approximate: verify with exact
// containment for precision-critical uses.
func (ix *Index) Query(sig minhash.Signature, querySize int, threshold float64) ([]string, error) {
	if !ix.built {
		return nil, errors.New("lshensemble: Query before Build")
	}
	if querySize <= 0 {
		return nil, fmt.Errorf("lshensemble: querySize must be positive, got %d", querySize)
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("lshensemble: threshold %v out of [0,1]", threshold)
	}
	seen := make(map[string]bool)
	var out []string
	for _, part := range ix.parts {
		// A domain X can contain fraction t of Q only if |X| >= t|Q|.
		if float64(part.upper) < threshold*float64(querySize) {
			continue
		}
		j := jaccardThreshold(threshold, querySize, part.upper)
		b, r := optimalBootstrap(j, ix.numHashes)
		for _, k := range part.byRows[r].QueryBands(sig, b) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out, nil
}

// DomainSize returns the indexed size of a domain key, if present.
func (ix *Index) DomainSize(key string) (int, bool) {
	for _, p := range ix.parts {
		if s, ok := p.sizes[key]; ok {
			return s, true
		}
	}
	return 0, false
}

// PartitionBounds returns the (lower, upper) cardinality bound of each
// partition, for introspection and tests.
func (ix *Index) PartitionBounds() [][2]int {
	out := make([][2]int, len(ix.parts))
	for i, p := range ix.parts {
		out[i] = [2]int{p.lower, p.upper}
	}
	return out
}
