// Package graph supplies the graph algorithms table discovery leans
// on: maximum-weight bipartite matching (TUS aggregates column-level
// unionability to table level with it), betweenness centrality
// (DomainNet ranks homographs with it), and component utilities.
package graph

import "math"

// MaxWeightBipartiteMatching computes a maximum-weight matching of a
// bipartite graph given as a weight matrix w[i][j] >= 0 for left node
// i and right node j. It returns match[i] = j (or -1 if i unmatched)
// and the total weight. Implemented as the Hungarian algorithm with
// potentials in O(n^3); matching a left node to a dummy (zero-weight)
// right node models leaving it unmatched, so partial matchings with
// rectangular inputs are handled.
func MaxWeightBipartiteMatching(w [][]float64) ([]int, float64) {
	nl := len(w)
	if nl == 0 {
		return nil, 0
	}
	nr := 0
	for _, row := range w {
		if len(row) > nr {
			nr = len(row)
		}
	}
	if nr == 0 {
		out := make([]int, nl)
		for i := range out {
			out[i] = -1
		}
		return out, 0
	}
	// Square cost matrix: n = max(nl, nr), cost = maxW - weight so
	// minimizing cost maximizes weight; dummy cells cost maxW.
	n := nl
	if nr > n {
		n = nr
	}
	maxW := 0.0
	for _, row := range w {
		for _, v := range row {
			if v > maxW {
				maxW = v
			}
		}
	}
	cost := func(i, j int) float64 {
		if i < nl && j < len(w[i]) {
			return maxW - w[i][j]
		}
		return maxW
	}
	// Hungarian algorithm (Jonker-Volgenant style with potentials),
	// 1-indexed internal arrays per the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	match := make([]int, nl)
	for i := range match {
		match[i] = -1
	}
	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j] - 1
		if i >= 0 && i < nl && j-1 < len(w[i]) {
			match[i] = j - 1
			total += w[i][j-1]
		}
	}
	return match, total
}
