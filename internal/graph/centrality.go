package graph

// Adjacency is an undirected graph as adjacency lists over node IDs
// 0..n-1. Callers are responsible for symmetry.
type Adjacency [][]int32

// BetweennessCentrality computes exact betweenness centrality for all
// nodes of an unweighted undirected graph using Brandes' algorithm in
// O(V*E). DomainNet's homograph detector ranks data-lake values by
// this score on the value-column bipartite graph: homographs bridge
// otherwise separate neighborhoods and score high.
func BetweennessCentrality(adj Adjacency) []float64 {
	n := len(adj)
	cb := make([]float64, n)
	// Reusable buffers.
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := range sigma {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != int32(s) {
				cb[w] += delta[w]
			}
		}
	}
	// Undirected: each pair counted twice.
	for i := range cb {
		cb[i] /= 2
	}
	return cb
}

// ConnectedComponents labels each node with a component ID (dense,
// starting at 0) and returns the labels plus the component count.
func ConnectedComponents(adj Adjacency) ([]int, int) {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int32
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp, next
}

// Degrees returns the degree of every node.
func Degrees(adj Adjacency) []int {
	out := make([]int, len(adj))
	for i, nbrs := range adj {
		out[i] = len(nbrs)
	}
	return out
}
