package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatchingSimple(t *testing.T) {
	// Optimal: 0->1 (9), 1->0 (8) = 17 beats greedy 0->0(7)+1->1(6)=13
	// and 0->1(9)+1->1(6) which is infeasible.
	w := [][]float64{
		{7, 9},
		{8, 6},
	}
	match, total := MaxWeightBipartiteMatching(w)
	if total != 17 {
		t.Fatalf("total = %v, want 17", total)
	}
	if match[0] != 1 || match[1] != 0 {
		t.Errorf("match = %v", match)
	}
}

func TestMatchingRectangular(t *testing.T) {
	// More left nodes than right: one left node stays unmatched.
	w := [][]float64{
		{5},
		{9},
		{1},
	}
	match, total := MaxWeightBipartiteMatching(w)
	if total != 9 {
		t.Fatalf("total = %v, want 9", total)
	}
	matched := 0
	for i, m := range match {
		if m == 0 {
			matched++
			if i != 1 {
				t.Errorf("wrong left node matched: %v", match)
			}
		}
	}
	if matched != 1 {
		t.Errorf("matched count = %d", matched)
	}
}

func TestMatchingEmpty(t *testing.T) {
	if m, total := MaxWeightBipartiteMatching(nil); m != nil || total != 0 {
		t.Error("nil input should yield nil, 0")
	}
	m, total := MaxWeightBipartiteMatching([][]float64{{}, {}})
	if total != 0 || m[0] != -1 || m[1] != -1 {
		t.Errorf("empty rows: match=%v total=%v", m, total)
	}
}

// bruteMatch enumerates all assignments for small instances.
func bruteMatch(w [][]float64) float64 {
	nl := len(w)
	nr := 0
	for _, r := range w {
		if len(r) > nr {
			nr = len(r)
		}
	}
	used := make([]bool, nr)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == nl {
			return 0
		}
		best := rec(i + 1) // leave i unmatched
		for j := 0; j < len(w[i]); j++ {
			if !used[j] {
				used[j] = true
				if v := w[i][j] + rec(i+1); v > best {
					best = v
				}
				used[j] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nl := 1 + rng.Intn(5)
		nr := 1 + rng.Intn(5)
		w := make([][]float64, nl)
		for i := range w {
			w[i] = make([]float64, nr)
			for j := range w[i] {
				w[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		_, got := MaxWeightBipartiteMatching(w)
		want := bruteMatch(w)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: got %v, want %v for %v", trial, got, want, w)
		}
	}
}

func TestMatchingValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := make([][]float64, 8)
	for i := range w {
		w[i] = make([]float64, 8)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	match, total := MaxWeightBipartiteMatching(w)
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range match {
		if j < 0 {
			continue
		}
		if seen[j] {
			t.Fatal("right node matched twice")
		}
		seen[j] = true
		sum += w[i][j]
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("reported total %v != assignment sum %v", total, sum)
	}
}

// path builds a path graph 0-1-2-...-n-1.
func path(n int) Adjacency {
	adj := make(Adjacency, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], int32(i+1))
		adj[i+1] = append(adj[i+1], int32(i))
	}
	return adj
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2: node 1 lies on the single 0..2 path => bc = 1.
	bc := BetweennessCentrality(path(3))
	if bc[0] != 0 || bc[2] != 0 || bc[1] != 1 {
		t.Errorf("bc = %v", bc)
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and 4 leaves: center bc = C(4,2) = 6.
	adj := make(Adjacency, 5)
	for i := 1; i <= 4; i++ {
		adj[0] = append(adj[0], int32(i))
		adj[i] = append(adj[i], 0)
	}
	bc := BetweennessCentrality(adj)
	if bc[0] != 6 {
		t.Errorf("center bc = %v, want 6", bc[0])
	}
	for i := 1; i <= 4; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf %d bc = %v", i, bc[i])
		}
	}
}

func TestBetweennessBridge(t *testing.T) {
	// Two triangles joined by a bridge node: the bridge scores highest.
	// 0-1-2 triangle, 5-6-7 triangle, bridge 2-4-5... node 4 connects.
	adj := make(Adjacency, 8)
	edge := func(a, b int32) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	edge(0, 1)
	edge(1, 2)
	edge(0, 2)
	edge(5, 6)
	edge(6, 7)
	edge(5, 7)
	edge(2, 4)
	edge(4, 5)
	bc := BetweennessCentrality(adj)
	for i, v := range bc {
		if i != 4 && v >= bc[4] {
			t.Errorf("node %d bc %v >= bridge bc %v", i, v, bc[4])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	adj := make(Adjacency, 5)
	adj[0] = []int32{1}
	adj[1] = []int32{0}
	adj[3] = []int32{4}
	adj[4] = []int32{3}
	comp, n := ConnectedComponents(adj)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[3] != comp[4] || comp[0] == comp[2] || comp[2] == comp[3] {
		t.Errorf("labels = %v", comp)
	}
	ds := Degrees(adj)
	if ds[0] != 1 || ds[2] != 0 {
		t.Errorf("Degrees = %v", ds)
	}
}
