package minhash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func genSet(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return out
}

// overlapping builds two sets of size n sharing exactly `shared` values.
func overlapping(n, shared int) (a, b []string) {
	common := genSet("c", shared)
	a = append(append([]string{}, common...), genSet("a", n-shared)...)
	b = append(append([]string{}, common...), genSet("b", n-shared)...)
	return a, b
}

func TestJaccardEstimateAccuracy(t *testing.T) {
	h := NewHasher(256, 42)
	for _, shared := range []int{0, 100, 250, 400, 500} {
		a, b := overlapping(500, shared)
		truth := ExactJaccard(a, b)
		est := Jaccard(h.Sign(a), h.Sign(b))
		if math.Abs(est-truth) > 0.08 {
			t.Errorf("shared=%d: estimate %.3f vs truth %.3f", shared, est, truth)
		}
	}
}

func TestIdenticalSetsJaccardOne(t *testing.T) {
	h := NewHasher(64, 1)
	a := genSet("x", 50)
	if j := Jaccard(h.Sign(a), h.Sign(a)); j != 1 {
		t.Errorf("self Jaccard = %v, want 1", j)
	}
}

func TestSignOrderAndDupInvariance(t *testing.T) {
	h := NewHasher(64, 7)
	a := []string{"x", "y", "z"}
	b := []string{"z", "y", "x", "x", "z"}
	sa, sb := h.Sign(a), h.Sign(b)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("signature depends on order or duplicates")
		}
	}
}

func TestMergeIsUnion(t *testing.T) {
	h := NewHasher(128, 3)
	a := genSet("a", 100)
	b := genSet("b", 100)
	sa, sb := h.Sign(a), h.Sign(b)
	union := h.Sign(append(append([]string{}, a...), b...))
	Merge(sa, sb)
	for i := range sa {
		if sa[i] != union[i] {
			t.Fatal("Merge != signature of union")
		}
	}
}

func TestContainmentEstimate(t *testing.T) {
	h := NewHasher(256, 9)
	// Q (100 values) fully contained in X (1000 values).
	q := genSet("q", 100)
	x := append(genSet("q", 100), genSet("x", 900)...)
	c := Containment(h.Sign(q), h.Sign(x), 100, 1000)
	if c < 0.75 {
		t.Errorf("containment of subset = %.3f, want near 1", c)
	}
	// Disjoint sets.
	y := genSet("y", 500)
	c = Containment(h.Sign(q), h.Sign(y), 100, 500)
	if c > 0.2 {
		t.Errorf("containment of disjoint = %.3f, want near 0", c)
	}
}

func TestExactMeasures(t *testing.T) {
	a := []string{"1", "2", "3", "4"}
	b := []string{"3", "4", "5", "6"}
	if j := ExactJaccard(a, b); j != 2.0/6.0 {
		t.Errorf("ExactJaccard = %v", j)
	}
	if c := ExactContainment(a, b); c != 0.5 {
		t.Errorf("ExactContainment = %v", c)
	}
	if o := ExactOverlap(a, b); o != 2 {
		t.Errorf("ExactOverlap = %v", o)
	}
	if ExactJaccard(nil, nil) != 0 || ExactContainment(nil, b) != 0 {
		t.Error("empty-set measures should be 0")
	}
}

func TestUpdateIncremental(t *testing.T) {
	h := NewHasher(64, 5)
	full := h.Sign([]string{"a", "b", "c"})
	inc := h.Sign([]string{"a"})
	h.Update(inc, "b")
	h.Update(inc, "c")
	for i := range full {
		if full[i] != inc[i] {
			t.Fatal("incremental Update diverges from Sign")
		}
	}
}

func TestSeedChangesSignature(t *testing.T) {
	a := genSet("a", 10)
	s1 := NewHasher(32, 1).Sign(a)
	s2 := NewHasher(32, 2).Sign(a)
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical signatures")
	}
}

// Property: Jaccard estimate is symmetric and within [0,1].
func TestJaccardProperties(t *testing.T) {
	h := NewHasher(64, 11)
	f := func(xs, ys []string) bool {
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		sx, sy := h.Sign(xs), h.Sign(ys)
		j1, j2 := Jaccard(sx, sy), Jaccard(sy, sx)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHasherPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for k=0")
		}
	}()
	NewHasher(0, 1)
}
