// Package minhash implements MinHash signatures for estimating Jaccard
// similarity and set containment between value sets, equivalent to the
// datasketch MinHash the surveyed systems (LSH Ensemble, TUS) build on.
//
// A signature is k 64-bit minimums under k pairwise-independent hash
// permutations. E[matching fraction] = Jaccard(A, B), and containment
// can be derived from the Jaccard estimate plus the set cardinalities.
package minhash

import "fmt"

// Signature is a MinHash signature: one minimum per permutation.
type Signature []uint64

// Hasher produces signatures with k permutations derived from a seed.
// It is safe for concurrent use after construction.
type Hasher struct {
	k    int
	a, b []uint64 // permutation i is h -> a[i]*h + b[i] (mod 2^64)
}

// splitmix64 is a strong 64-bit mixer used to derive permutation
// parameters deterministically from the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewHasher creates a Hasher with k permutations seeded by seed.
func NewHasher(k int, seed uint64) *Hasher {
	if k <= 0 {
		panic(fmt.Sprintf("minhash: k must be positive, got %d", k))
	}
	h := &Hasher{k: k, a: make([]uint64, k), b: make([]uint64, k)}
	s := seed
	for i := 0; i < k; i++ {
		s = splitmix64(s)
		h.a[i] = s | 1 // odd multiplier => bijection mod 2^64
		s = splitmix64(s)
		h.b[i] = s
	}
	return h
}

// K returns the number of permutations.
func (h *Hasher) K() int { return h.k }

// FNV-1a parameters (hash/fnv), inlined so hashing a value allocates
// nothing: the stdlib digest costs a heap object plus a []byte copy of
// the string per call, and HashValue sits on every signing hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashValue returns the base 64-bit hash of a value: FNV-1a over the
// string bytes, passed through a splitmix64 finalizer — raw FNV of
// short sequential strings is not uniform enough for order-statistic
// sketches (KMV). Allocation-free; bit-identical to the historical
// hash/fnv implementation. Callers holding dictionary IDs should
// prefer the dict package's cached HashID path, which avoids
// re-hashing the string entirely.
func HashValue(v string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= fnvPrime64
	}
	return splitmix64(h)
}

// Sign computes the signature of a value set. Duplicates are harmless
// (minimum is idempotent). An empty set yields an all-max signature.
func (h *Hasher) Sign(values []string) Signature {
	sig := make(Signature, h.k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, v := range values {
		h.Update(sig, v)
	}
	return sig
}

// SignHashes computes a signature from pre-hashed values.
func (h *Hasher) SignHashes(hashes []uint64) Signature {
	sig := make(Signature, h.k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, hv := range hashes {
		h.UpdateHash(sig, hv)
	}
	return sig
}

// Update folds one value into an existing signature.
func (h *Hasher) Update(sig Signature, v string) {
	h.UpdateHash(sig, HashValue(v))
}

// UpdateHash folds one pre-hashed value into an existing signature.
func (h *Hasher) UpdateHash(sig Signature, hv uint64) {
	for i := 0; i < h.k; i++ {
		p := h.a[i]*hv + h.b[i]
		if p < sig[i] {
			sig[i] = p
		}
	}
}

// Merge sets dst to the signature of the union of the two underlying
// sets. Signatures must come from the same Hasher.
func Merge(dst, src Signature) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Jaccard estimates the Jaccard similarity of the underlying sets.
func Jaccard(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	m := 0
	for i := range a {
		if a[i] == b[i] {
			m++
		}
	}
	return float64(m) / float64(len(a))
}

// Containment estimates |Q ∩ X| / |Q| from the Jaccard estimate and the
// exact cardinalities of Q and X, via |Q∩X| = J/(1+J) * (|Q|+|X|).
func Containment(q, x Signature, qSize, xSize int) float64 {
	if qSize == 0 {
		return 0
	}
	j := Jaccard(q, x)
	inter := j / (1 + j) * float64(qSize+xSize)
	c := inter / float64(qSize)
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Set is a precomputed value set for repeated exact comparisons.
// Indexes that verify many queries against the same columns build a
// Set per column once (at index-build time) instead of rebuilding a
// hash map on every query. Empty strings are dropped, matching the
// Exact* functions' treatment of missing values. A Set is read-only
// after construction and safe for concurrent use.
type Set map[string]struct{}

// NewSet builds a Set from values (duplicates and empties dropped).
func NewSet(vs []string) Set {
	s := make(Set, len(vs))
	for _, v := range vs {
		if v != "" {
			s[v] = struct{}{}
		}
	}
	return s
}

// OverlapSets computes |A∩B| by iterating the smaller set.
func OverlapSets(a, b Set) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for v := range a {
		if _, ok := b[v]; ok {
			inter++
		}
	}
	return inter
}

// JaccardSets computes exact Jaccard similarity of two Sets.
func JaccardSets(a, b Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := OverlapSets(a, b)
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// ContainmentSets computes exact |Q∩X|/|Q|.
func ContainmentSets(q, x Set) float64 {
	if len(q) == 0 {
		return 0
	}
	return float64(OverlapSets(q, x)) / float64(len(q))
}

// ExactJaccard computes exact Jaccard similarity of two string sets
// (which may contain duplicates); used as ground truth in tests.
func ExactJaccard(a, b []string) float64 {
	return JaccardSets(NewSet(a), NewSet(b))
}

// ExactContainment computes exact |Q∩X|/|Q| treating inputs as sets.
func ExactContainment(q, x []string) float64 {
	return ContainmentSets(NewSet(q), NewSet(x))
}

// ExactOverlap computes |A∩B| treating inputs as sets.
func ExactOverlap(a, b []string) int {
	return OverlapSets(NewSet(a), NewSet(b))
}
