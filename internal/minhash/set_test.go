package minhash

import "testing"

func TestNewSetDropsEmpties(t *testing.T) {
	s := NewSet([]string{"a", "", "b", "a", ""})
	if len(s) != 2 {
		t.Fatalf("len = %d, want 2", len(s))
	}
	if _, ok := s[""]; ok {
		t.Error("empty string retained")
	}
}

// TestSetHelpersMatchExact pins the precomputed-set path to the
// legacy slice-based functions: same inputs, same answers.
func TestSetHelpersMatchExact(t *testing.T) {
	cases := []struct{ a, b []string }{
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}},
		{[]string{"a", "a", ""}, []string{"a"}},
		{nil, []string{"x"}},
		{nil, nil},
		{[]string{"p", "q", "r", "s"}, []string{"q"}},
	}
	for _, c := range cases {
		sa, sb := NewSet(c.a), NewSet(c.b)
		if got, want := OverlapSets(sa, sb), ExactOverlap(c.a, c.b); got != want {
			t.Errorf("OverlapSets(%v,%v) = %d, want %d", c.a, c.b, got, want)
		}
		if got, want := JaccardSets(sa, sb), ExactJaccard(c.a, c.b); got != want {
			t.Errorf("JaccardSets(%v,%v) = %v, want %v", c.a, c.b, got, want)
		}
		if got, want := ContainmentSets(sa, sb), ExactContainment(c.a, c.b); got != want {
			t.Errorf("ContainmentSets(%v,%v) = %v, want %v", c.a, c.b, got, want)
		}
	}
}

func TestOverlapSetsSymmetric(t *testing.T) {
	big := NewSet([]string{"a", "b", "c", "d", "e"})
	small := NewSet([]string{"c", "d", "x"})
	if OverlapSets(big, small) != OverlapSets(small, big) {
		t.Error("OverlapSets is not symmetric")
	}
	if OverlapSets(big, small) != 2 {
		t.Errorf("overlap = %d, want 2", OverlapSets(big, small))
	}
}
