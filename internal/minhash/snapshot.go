package minhash

import (
	"fmt"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the hasher's permutation parameters. Hashers
// are tiny (k pairs of uint64), so storing them beats relying on
// every index remembering its construction seed.
func (h *Hasher) AppendSnapshot(e *snap.Encoder) {
	e.U32(uint32(h.k))
	e.U64s(h.a)
	e.U64s(h.b)
}

// DecodeSnapshot rebuilds a hasher written by AppendSnapshot.
func DecodeSnapshot(d *snap.Decoder) (*Hasher, error) {
	k := int(d.U32())
	a := d.U64s()
	b := d.U64s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if k <= 0 || len(a) != k || len(b) != k {
		return nil, fmt.Errorf("%w: hasher k=%d with %d/%d parameters", snap.ErrCorrupt, k, len(a), len(b))
	}
	return &Hasher{k: k, a: a, b: b}, nil
}
