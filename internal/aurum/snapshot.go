package aurum

import (
	"fmt"

	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// AppendSnapshot encodes the discovery graph: construction config,
// the sorted column-key nodes, and each node's adjacency list in its
// built (weight-sorted) order. Edge targets are stored as indices into
// the node list — the graph averages several edges per node, so
// repeating full column keys would dominate the section and decode
// time. The column-to-table maps are rebuilt on decode by splitting
// the column keys.
func (g *Graph) AppendSnapshot(e *snap.Encoder) {
	e.F64(g.cfg.ContentThreshold)
	e.F64(g.cfg.SchemaThreshold)
	e.F64(g.cfg.PKFKContainment)
	e.F64(g.cfg.PKFKUniqueness)
	e.U32(uint32(g.cfg.NumHashes))
	e.Strs(g.nodes)
	for _, k := range g.nodes {
		es := g.adj[k]
		e.U32(uint32(len(es)))
		for _, edge := range es {
			e.U32(uint32(g.byKey[edge.To]))
			e.U8(uint8(edge.Kind))
			e.F64(edge.Weight)
		}
	}
}

// DecodeSnapshot rebuilds a graph written by AppendSnapshot.
func DecodeSnapshot(d *snap.Decoder) (*Graph, error) {
	cfg := Config{
		ContentThreshold: d.F64(),
		SchemaThreshold:  d.F64(),
		PKFKContainment:  d.F64(),
		PKFKUniqueness:   d.F64(),
		NumHashes:        int(d.U32()),
	}
	nodes := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	g := &Graph{
		cfg:     cfg,
		byKey:   make(map[string]int, len(nodes)),
		adj:     make(map[string][]Edge),
		tableOf: make(map[string]string, len(nodes)),
		colsOf:  make(map[string][]string),
	}
	for i, k := range nodes {
		if _, dup := g.byKey[k]; dup {
			return nil, fmt.Errorf("%w: duplicate graph node %q", snap.ErrCorrupt, k)
		}
		g.nodes = append(g.nodes, k)
		g.byKey[k] = i
		id, _ := table.SplitColumnKey(k)
		g.tableOf[k] = id
		g.colsOf[id] = append(g.colsOf[id], k)
	}
	for _, k := range nodes {
		numEdges := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if numEdges == 0 {
			continue
		}
		es := make([]Edge, numEdges)
		for j := 0; j < numEdges; j++ {
			toIdx := int(d.U32())
			kind := EdgeKind(d.U8())
			weight := d.F64()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if toIdx < 0 || toIdx >= len(nodes) {
				return nil, fmt.Errorf("%w: graph edge to node index %d of %d", snap.ErrCorrupt, toIdx, len(nodes))
			}
			if kind < SchemaSim || kind > PKFK {
				return nil, fmt.Errorf("%w: graph edge kind %d", snap.ErrCorrupt, kind)
			}
			es[j] = Edge{From: k, To: nodes[toIdx], Kind: kind, Weight: weight}
		}
		g.adj[k] = es
	}
	return g, nil
}
