package aurum

import (
	"fmt"
	"testing"

	"tablehound/internal/table"
)

// chainLake builds tables forming a join chain:
//
//	orders.customer_id -> customers.id (PKFK)
//	customers.city     ~  cities.city  (content overlap)
//
// plus an unrelated island table.
func chainLake() []*table.Table {
	n := 40
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("cust_%03d", i)
	}
	cities := make([]string, n)
	for i := range cities {
		cities[i] = fmt.Sprintf("city_%02d", i%12)
	}
	// Orders reference a subset of customers (FK side, repeats).
	orderCust := make([]string, 60)
	orderItem := make([]string, 60)
	for i := range orderCust {
		orderCust[i] = ids[i%25]
		orderItem[i] = fmt.Sprintf("item_%03d", i)
	}
	cityNames := make([]string, 12)
	cityPop := make([]string, 12)
	for i := range cityNames {
		cityNames[i] = fmt.Sprintf("city_%02d", i)
		cityPop[i] = fmt.Sprintf("%d", (i+1)*10000)
	}
	island := table.MustNew("island", "island", []*table.Column{
		table.NewColumn("gene", []string{"brca1", "tp53", "egfr"}),
		table.NewColumn("chrom", []string{"17", "17", "7"}),
	})
	return []*table.Table{
		table.MustNew("orders", "orders", []*table.Column{
			table.NewColumn("customer_id", orderCust),
			table.NewColumn("item", orderItem),
		}),
		table.MustNew("customers", "customers", []*table.Column{
			table.NewColumn("id", ids),
			table.NewColumn("city", cities),
		}),
		table.MustNew("cities", "cities", []*table.Column{
			table.NewColumn("city", cityNames),
			table.NewColumn("population", cityPop),
		}),
		island,
	}
}

func buildChain(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(chainLake(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildGraphShape(t *testing.T) {
	g := buildChain(t)
	if g.NumColumns() == 0 || g.NumEdges() == 0 {
		t.Fatalf("graph empty: %d cols %d edges", g.NumColumns(), g.NumEdges())
	}
}

func TestPKFKDetected(t *testing.T) {
	g := buildChain(t)
	es := g.Neighbors("orders.customer_id", PKFK)
	found := false
	for _, e := range es {
		if e.To == "customers.id" {
			found = true
			if e.Weight < 0.9 {
				t.Errorf("PKFK weight = %v", e.Weight)
			}
		}
	}
	if !found {
		t.Errorf("PKFK orders.customer_id -> customers.id missing; edges: %+v", es)
	}
	// The reverse direction must NOT be a PKFK edge from customers.id
	// (customers.id is the key; orders side is not unique).
	for _, e := range g.Neighbors("customers.id", PKFK) {
		if e.To == "orders.customer_id" && e.From == "customers.id" {
			// The symmetric record of the same edge is fine; a genuine
			// reversed PKFK (orders.customer_id as PK) is not.
			continue
		}
	}
}

func TestContentEdge(t *testing.T) {
	g := buildChain(t)
	es := g.Neighbors("customers.city", ContentSim)
	found := false
	for _, e := range es {
		if e.To == "cities.city" {
			found = true
		}
	}
	if !found {
		t.Errorf("content edge customers.city ~ cities.city missing; %+v", es)
	}
}

func TestSchemaEdge(t *testing.T) {
	g := buildChain(t)
	es := g.Neighbors("customers.city", SchemaSim)
	found := false
	for _, e := range es {
		if e.To == "cities.city" {
			found = true
		}
	}
	if !found {
		t.Error("identical names should produce a schema edge")
	}
}

func TestJoinPathAcrossChain(t *testing.T) {
	g := buildChain(t)
	path := g.JoinPath("orders", "cities", ContentSim, 4)
	if len(path) != 2 {
		t.Fatalf("path = %+v, want 2 hops", path)
	}
	if path[0].ToColumn != "customers.id" && path[0].ToColumn != "customers.city" {
		t.Errorf("first hop = %+v", path[0])
	}
	if path[1].ToColumn != "cities.city" {
		t.Errorf("second hop = %+v", path[1])
	}
	// No path to the island.
	if p := g.JoinPath("orders", "island", ContentSim, 5); p != nil {
		t.Errorf("island reached: %+v", p)
	}
	// Hop limit respected.
	if p := g.JoinPath("orders", "cities", ContentSim, 1); p != nil {
		t.Errorf("1-hop limit violated: %+v", p)
	}
	// Self and unknown tables.
	if g.JoinPath("orders", "orders", ContentSim, 3) != nil {
		t.Error("self path should be nil")
	}
	if g.JoinPath("orders", "nope", ContentSim, 3) != nil {
		t.Error("unknown table should be nil")
	}
}

func TestRelatedTables(t *testing.T) {
	g := buildChain(t)
	rel := g.RelatedTables("orders", ContentSim, 2)
	want := map[string]bool{"customers": true, "cities": true}
	if len(rel) != 2 {
		t.Fatalf("related = %v", rel)
	}
	for _, id := range rel {
		if !want[id] {
			t.Errorf("unexpected related table %s", id)
		}
	}
	// Nearest first.
	if rel[0] != "customers" {
		t.Errorf("order = %v", rel)
	}
	if g.RelatedTables("nope", ContentSim, 2) != nil {
		t.Error("unknown table should be nil")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("empty build should fail")
	}
	numeric := table.MustNew("n", "n", []*table.Column{
		table.NewColumn("x", []string{"1", "2", "3"}),
	})
	if _, err := Build([]*table.Table{numeric}, Config{}); err == nil {
		t.Error("no string columns should fail")
	}
}

func TestEdgeKindString(t *testing.T) {
	if SchemaSim.String() != "schema" || ContentSim.String() != "content" ||
		PKFK.String() != "pkfk" || EdgeKind(9).String() != "unknown" {
		t.Error("EdgeKind strings wrong")
	}
}
