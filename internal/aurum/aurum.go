// Package aurum implements an Aurum-style discovery graph (Fernandez
// et al., ICDE 2018; the "navigation over a linkage graph" mode of
// Section 2.6): columns are nodes of an enterprise knowledge graph
// whose edges record content similarity, schema similarity, and
// candidate PK-FK relationships. Discovery queries become graph
// primitives — neighbors of a column, and join paths connecting two
// tables through chains of joinable columns.
package aurum

import (
	"errors"
	"sort"

	"tablehound/internal/lsh"
	"tablehound/internal/minhash"
	"tablehound/internal/schema"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// EdgeKind labels a graph edge.
type EdgeKind int

// Edge kinds, from weakest to strongest join evidence.
const (
	SchemaSim  EdgeKind = iota // similar column names
	ContentSim                 // overlapping value sets
	PKFK                       // containment + uniqueness: key/foreign-key
)

func (k EdgeKind) String() string {
	switch k {
	case SchemaSim:
		return "schema"
	case ContentSim:
		return "content"
	case PKFK:
		return "pkfk"
	}
	return "unknown"
}

// Edge is one relationship in the graph.
type Edge struct {
	From, To string // column keys
	Kind     EdgeKind
	Weight   float64
}

// Config tunes graph construction.
type Config struct {
	// ContentThreshold is the minimum Jaccard for a content edge
	// (default 0.25).
	ContentThreshold float64
	// SchemaThreshold is the minimum name similarity for a schema
	// edge (default 0.75).
	SchemaThreshold float64
	// PKFKContainment is the minimum containment of the FK side in
	// the PK side (default 0.85).
	PKFKContainment float64
	// PKFKUniqueness is the minimum distinct ratio of the PK side
	// (default 0.9).
	PKFKUniqueness float64
	// NumHashes is the MinHash width for candidate generation
	// (default 128).
	NumHashes int
}

func (c Config) withDefaults() Config {
	if c.ContentThreshold <= 0 {
		c.ContentThreshold = 0.25
	}
	if c.SchemaThreshold <= 0 {
		c.SchemaThreshold = 0.75
	}
	if c.PKFKContainment <= 0 {
		c.PKFKContainment = 0.85
	}
	if c.PKFKUniqueness <= 0 {
		c.PKFKUniqueness = 0.9
	}
	if c.NumHashes <= 0 {
		c.NumHashes = 128
	}
	return c
}

// Graph is the built discovery graph. Construct with Build; read-only
// afterwards.
type Graph struct {
	cfg   Config
	nodes []string // sorted column keys
	byKey map[string]int
	adj   map[string][]Edge
	// tableOf maps a column key to its table ID.
	tableOf map[string]string
	// colsOf maps a table ID to its column keys.
	colsOf map[string][]string
}

// nodeData carries per-column build state.
type nodeData struct {
	key      string
	tableID  string
	name     string
	distinct []string
	unique   float64 // distinct/rows
	sig      minhash.Signature
}

// Build constructs the graph over the tables' string-like columns.
func Build(tables []*table.Table, cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	hasher := minhash.NewHasher(cfg.NumHashes, 31)
	var nodes []nodeData
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Type != table.TypeString && c.Type != table.TypeDate && c.Type != table.TypeUnknown {
				continue
			}
			distinct := tokenize.NormalizeSet(c.Values)
			if len(distinct) < 2 {
				continue
			}
			nodes = append(nodes, nodeData{
				key:      table.ColumnKey(t.ID, c.Name),
				tableID:  t.ID,
				name:     c.Name,
				distinct: distinct,
				unique:   float64(len(distinct)) / float64(c.Len()),
				sig:      hasher.Sign(distinct),
			})
		}
	}
	if len(nodes) == 0 {
		return nil, errors.New("aurum: no usable columns")
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].key < nodes[j].key })
	g := &Graph{
		cfg:     cfg,
		byKey:   make(map[string]int, len(nodes)),
		adj:     make(map[string][]Edge),
		tableOf: make(map[string]string, len(nodes)),
		colsOf:  make(map[string][]string),
	}
	for i, n := range nodes {
		g.nodes = append(g.nodes, n.key)
		g.byKey[n.key] = i
		g.tableOf[n.key] = n.tableID
		g.colsOf[n.tableID] = append(g.colsOf[n.tableID], n.key)
	}
	// Content candidates via LSH, verified exactly.
	b, r := lsh.OptimalParams(cfg.ContentThreshold, cfg.NumHashes, 0.7, 0.3)
	ix := lsh.New(b, r)
	for _, n := range nodes {
		if err := ix.Add(n.key, n.sig); err != nil {
			return nil, err
		}
	}
	seen := make(map[[2]int]bool)
	for i, n := range nodes {
		for _, cand := range ix.Query(n.sig) {
			j := g.byKey[cand]
			if j == i || n.tableID == nodes[j].tableID {
				continue
			}
			a, bb := i, j
			if bb < a {
				a, bb = bb, a
			}
			if seen[[2]int{a, bb}] {
				continue
			}
			seen[[2]int{a, bb}] = true
			g.linkContent(&nodes[a], &nodes[bb])
		}
	}
	// Schema edges: name similarity across tables (exhaustive over
	// distinct names, which are few compared to columns).
	g.linkSchemas(nodes)
	for k := range g.adj {
		es := g.adj[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Weight != es[j].Weight {
				return es[i].Weight > es[j].Weight
			}
			return es[i].To < es[j].To
		})
	}
	return g, nil
}

// linkContent verifies a candidate pair and adds content and PK-FK
// edges as evidence warrants.
func (g *Graph) linkContent(a, b *nodeData) {
	jac := minhash.ExactJaccard(a.distinct, b.distinct)
	if jac >= g.cfg.ContentThreshold {
		g.addEdge(Edge{From: a.key, To: b.key, Kind: ContentSim, Weight: jac})
	}
	// PK-FK: the FK side's values are contained in a near-unique PK
	// side. Test both directions.
	g.testPKFK(a, b)
	g.testPKFK(b, a)
}

// testPKFK adds a PKFK edge when fk's values sit inside pk's and pk
// looks like a key.
func (g *Graph) testPKFK(pk, fk *nodeData) {
	if pk.unique < g.cfg.PKFKUniqueness {
		return
	}
	c := minhash.ExactContainment(fk.distinct, pk.distinct)
	if c >= g.cfg.PKFKContainment {
		g.addEdge(Edge{From: fk.key, To: pk.key, Kind: PKFK, Weight: c})
	}
}

func (g *Graph) linkSchemas(nodes []nodeData) {
	m := schema.NameMatcher{}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i].tableID == nodes[j].tableID {
				continue
			}
			ci := table.NewColumn(nodes[i].name, nil)
			cj := table.NewColumn(nodes[j].name, nil)
			if s := m.Score(ci, cj); s >= g.cfg.SchemaThreshold {
				g.addEdge(Edge{From: nodes[i].key, To: nodes[j].key, Kind: SchemaSim, Weight: s})
			}
		}
	}
}

// addEdge records the edge in both directions.
func (g *Graph) addEdge(e Edge) {
	g.adj[e.From] = append(g.adj[e.From], e)
	g.adj[e.To] = append(g.adj[e.To], Edge{From: e.To, To: e.From, Kind: e.Kind, Weight: e.Weight})
}

// NumColumns returns the node count.
func (g *Graph) NumColumns() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// Neighbors returns a column's edges, optionally filtered by kind
// (pass -1 for all), strongest first.
func (g *Graph) Neighbors(columnKey string, kind EdgeKind) []Edge {
	var out []Edge
	for _, e := range g.adj[columnKey] {
		if kind < 0 || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// JoinHop is one step of a join path: join leftCol with rightCol.
type JoinHop struct {
	FromColumn string
	ToColumn   string
	Kind       EdgeKind
	Weight     float64
}

// JoinPath finds the shortest chain of joinable-column hops that
// connects two tables, preferring stronger evidence (PKFK > content)
// at equal length. minKind restricts usable edges (ContentSim skips
// schema-only edges). Returns nil when no path exists or maxHops is
// exceeded.
func (g *Graph) JoinPath(fromTable, toTable string, minKind EdgeKind, maxHops int) []JoinHop {
	if fromTable == toTable || maxHops <= 0 {
		return nil
	}
	start, okS := g.colsOf[fromTable]
	_, okT := g.colsOf[toTable]
	if !okS || !okT {
		return nil
	}
	// BFS over tables: state = table ID; transition = any edge of
	// sufficient kind from any of its columns.
	type state struct {
		tableID string
		path    []JoinHop
	}
	visited := map[string]bool{fromTable: true}
	queue := []state{{tableID: fromTable}}
	_ = start
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.path) >= maxHops {
			continue
		}
		// Deterministic expansion order.
		cols := append([]string{}, g.colsOf[cur.tableID]...)
		sort.Strings(cols)
		for _, col := range cols {
			for _, e := range g.adj[col] {
				if e.Kind < minKind {
					continue
				}
				next := g.tableOf[e.To]
				if visited[next] {
					continue
				}
				hop := JoinHop{FromColumn: e.From, ToColumn: e.To, Kind: e.Kind, Weight: e.Weight}
				path := append(append([]JoinHop{}, cur.path...), hop)
				if next == toTable {
					return path
				}
				visited[next] = true
				queue = append(queue, state{tableID: next, path: path})
			}
		}
	}
	return nil
}

// RelatedTables returns tables reachable from the given table within
// maxHops over edges of at least minKind, nearest first.
func (g *Graph) RelatedTables(tableID string, minKind EdgeKind, maxHops int) []string {
	if _, ok := g.colsOf[tableID]; !ok {
		return nil
	}
	visited := map[string]int{tableID: 0}
	queue := []string{tableID}
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if visited[cur] >= maxHops {
			continue
		}
		cols := append([]string{}, g.colsOf[cur]...)
		sort.Strings(cols)
		for _, col := range cols {
			for _, e := range g.adj[col] {
				if e.Kind < minKind {
					continue
				}
				next := g.tableOf[e.To]
				if _, seen := visited[next]; seen {
					continue
				}
				visited[next] = visited[cur] + 1
				out = append(out, next)
				queue = append(queue, next)
			}
		}
	}
	return out
}
