// Package schema implements schema matching between table pairs in
// the style the Valentine benchmark (Koutras et al., ICDE 2021)
// evaluates: given two tables, produce a ranked list of column
// correspondences. Three matcher families are provided — name-based
// (label similarity), instance-based (value-distribution similarity),
// and the combined matcher — since which family wins depends on
// whether a lake's headers are trustworthy, the trade-off Section 2.1
// of the tutorial highlights.
package schema

import (
	"sort"
	"strings"

	"tablehound/internal/embedding"
	"tablehound/internal/minhash"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Correspondence is one proposed column match.
type Correspondence struct {
	Source string // column name in the source table
	Target string // column name in the target table
	Score  float64
}

// Matcher scores a source/target column pair.
type Matcher interface {
	// Score returns similarity in [0, 1].
	Score(src, dst *table.Column) float64
	// Name identifies the matcher in reports.
	Name() string
}

// NameMatcher compares column labels: exact, tokenized-Jaccard, and
// edit-distance signals combined — the schema-only family.
type NameMatcher struct{}

// Name implements Matcher.
func (NameMatcher) Name() string { return "name" }

// Score implements Matcher.
func (NameMatcher) Score(src, dst *table.Column) float64 {
	a := normLabel(src.Name)
	b := normLabel(dst.Name)
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		return 1
	}
	// Token Jaccard over label words.
	ta := tokenize.Words(a)
	tb := tokenize.Words(b)
	jac := minhash.ExactJaccard(ta, tb)
	// Normalized edit similarity on the raw labels.
	ed := 1 - float64(editDistance(a, b))/float64(max(len(a), len(b)))
	if jac > ed {
		return jac
	}
	return ed
}

func normLabel(s string) string {
	return tokenize.Normalize(strings.ReplaceAll(strings.ReplaceAll(s, "_", " "), "-", " "))
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InstanceMatcher compares column contents: exact value overlap
// (Jaccard) blended with embedding cosine, so both shared-vocabulary
// and same-domain-different-values pairs score well. Type mismatches
// are vetoed — a numeric column never matches a text column.
type InstanceMatcher struct {
	// Model supplies column embeddings; nil disables the semantic
	// component.
	Model *embedding.Model
}

// Name implements Matcher.
func (m InstanceMatcher) Name() string { return "instance" }

// Score implements Matcher.
func (m InstanceMatcher) Score(src, dst *table.Column) float64 {
	if src.Type.IsNumeric() != dst.Type.IsNumeric() {
		return 0
	}
	if src.Type.IsNumeric() {
		return numericAffinity(src, dst)
	}
	a := tokenize.NormalizeSet(src.Values)
	b := tokenize.NormalizeSet(dst.Values)
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	jac := minhash.ExactJaccard(a, b)
	if m.Model == nil {
		return jac
	}
	cos := (embedding.Cosine(m.Model.ColumnVector(a), m.Model.ColumnVector(b)) + 1) / 2
	if jac > cos {
		return jac
	}
	return cos
}

// numericAffinity compares numeric columns by range overlap.
func numericAffinity(a, b *table.Column) float64 {
	na, ca := a.Numbers()
	nb, cb := b.Numbers()
	if ca == 0 || cb == 0 {
		return 0
	}
	loA, hiA := minMax(na)
	loB, hiB := minMax(nb)
	lo := loA
	if loB > lo {
		lo = loB
	}
	hi := hiA
	if hiB < hi {
		hi = hiB
	}
	if hi <= lo {
		return 0
	}
	span := hiA - loA
	if hiB-loB > span {
		span = hiB - loB
	}
	if span == 0 {
		return 1
	}
	return (hi - lo) / span
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// CombinedMatcher blends name and instance evidence; the weight
// controls trust in headers (lakes with unreliable metadata should
// use a low name weight, per the tutorial's Section 2.1 discussion).
type CombinedMatcher struct {
	Instance   InstanceMatcher
	NameWeight float64 // in [0, 1]
}

// Name implements Matcher.
func (CombinedMatcher) Name() string { return "combined" }

// Score implements Matcher.
func (m CombinedMatcher) Score(src, dst *table.Column) float64 {
	w := m.NameWeight
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	return w*(NameMatcher{}).Score(src, dst) + (1-w)*m.Instance.Score(src, dst)
}

// Match produces the one-to-one correspondences between two tables
// under a matcher, greedily by descending score, keeping pairs with
// score >= threshold.
func Match(src, dst *table.Table, m Matcher, threshold float64) []Correspondence {
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for i, sc := range src.Columns {
		for j, dc := range dst.Columns {
			if s := m.Score(sc, dc); s >= threshold {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	usedS := make(map[int]bool)
	usedD := make(map[int]bool)
	var out []Correspondence
	for _, c := range cands {
		if usedS[c.i] || usedD[c.j] {
			continue
		}
		usedS[c.i] = true
		usedD[c.j] = true
		out = append(out, Correspondence{
			Source: src.Columns[c.i].Name,
			Target: dst.Columns[c.j].Name,
			Score:  c.score,
		})
	}
	return out
}
