package schema

import (
	"fmt"
	"testing"

	"tablehound/internal/embedding"
	"tablehound/internal/table"
)

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func TestNameMatcher(t *testing.T) {
	m := NameMatcher{}
	cases := []struct {
		a, b string
		min  float64
		max  float64
	}{
		{"city", "city", 1, 1},
		{"city_name", "CityName", 0.3, 1}, // camel not split, but edit-similar
		{"city_name", "name of city", 0.5, 1},
		{"population", "xyzzy", 0, 0.35},
		{"", "city", 0, 0},
	}
	for _, c := range cases {
		got := m.Score(col(c.a, "x"), col(c.b, "x"))
		if got < c.min || got > c.max {
			t.Errorf("NameMatcher(%q, %q) = %v, want in [%v, %v]", c.a, c.b, got, c.min, c.max)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestInstanceMatcherValueOverlap(t *testing.T) {
	m := InstanceMatcher{}
	a := col("a", "boston", "nyc", "chicago")
	b := col("b", "boston", "nyc", "denver")
	c := col("c", "apple", "pear", "plum")
	if sAB, sAC := m.Score(a, b), m.Score(a, c); sAB <= sAC {
		t.Errorf("overlapping columns %v should beat disjoint %v", sAB, sAC)
	}
}

func TestInstanceMatcherTypeVeto(t *testing.T) {
	m := InstanceMatcher{}
	num := col("n", "1", "2", "3")
	txt := col("t", "a", "b", "c")
	if s := m.Score(num, txt); s != 0 {
		t.Errorf("numeric-text pair scored %v", s)
	}
}

func TestInstanceMatcherNumericRanges(t *testing.T) {
	m := InstanceMatcher{}
	a := col("a", "1", "50", "100")
	b := col("b", "40", "90", "110") // heavy range overlap
	c := col("c", "5000", "9000")    // disjoint range
	if sAB, sAC := m.Score(a, b), m.Score(a, c); sAB <= sAC {
		t.Errorf("range-overlapping %v should beat disjoint %v", sAB, sAC)
	}
	if s := m.Score(a, a); s != 1 {
		t.Errorf("identical numeric column score = %v", s)
	}
}

func TestInstanceMatcherSemantic(t *testing.T) {
	// Disjoint values from the same trained domain match only with a
	// model.
	contexts := [][]string{
		{"boston", "nyc", "chicago", "denver", "austin", "miami"},
		{"boston", "denver", "austin", "seattle", "dallas"},
		{"apple", "pear", "plum", "fig", "mango"},
	}
	model := embedding.Train(contexts, embedding.Config{Dim: 48, Seed: 1})
	a := col("a", "boston", "nyc", "chicago")
	b := col("b", "seattle", "dallas", "austin") // disjoint, same domain
	plain := InstanceMatcher{}
	sem := InstanceMatcher{Model: model}
	if plain.Score(a, b) >= sem.Score(a, b) {
		t.Errorf("semantic component should lift disjoint same-domain score: %v vs %v",
			plain.Score(a, b), sem.Score(a, b))
	}
}

func TestCombinedMatcherWeighting(t *testing.T) {
	// Same name, different content vs different name, same content.
	nameAlike := [2]*table.Column{col("city", "a1", "a2"), col("city", "zz1", "zz2")}
	contentAlike := [2]*table.Column{col("col_x", "v1", "v2"), col("col_y", "v1", "v2")}
	headerTrusting := CombinedMatcher{NameWeight: 0.9}
	contentTrusting := CombinedMatcher{NameWeight: 0.1}
	if headerTrusting.Score(nameAlike[0], nameAlike[1]) <= headerTrusting.Score(contentAlike[0], contentAlike[1]) {
		t.Error("header-trusting matcher should prefer name match")
	}
	if contentTrusting.Score(contentAlike[0], contentAlike[1]) <= contentTrusting.Score(nameAlike[0], nameAlike[1]) {
		t.Error("content-trusting matcher should prefer content match")
	}
	// Weight clamping.
	if (CombinedMatcher{NameWeight: 5}).Score(nameAlike[0], nameAlike[1]) > 1.001 {
		t.Error("weight not clamped")
	}
}

func TestMatchOneToOne(t *testing.T) {
	src := table.MustNew("s", "s", []*table.Column{
		col("city", "boston", "nyc"),
		col("state", "ma", "ny"),
		col("misc", "q1", "q2"),
	})
	dst := table.MustNew("d", "d", []*table.Column{
		col("town", "boston", "nyc"),
		col("region", "ma", "ny"),
	})
	corr := Match(src, dst, InstanceMatcher{}, 0.5)
	if len(corr) != 2 {
		t.Fatalf("correspondences = %+v", corr)
	}
	seen := map[string]string{}
	for _, c := range corr {
		if prev, dup := seen[c.Target]; dup {
			t.Errorf("target %s matched twice (%s, %s)", c.Target, prev, c.Source)
		}
		seen[c.Target] = c.Source
	}
	if seen["town"] != "city" || seen["region"] != "state" {
		t.Errorf("wrong mapping: %v", seen)
	}
}

func TestMatchThreshold(t *testing.T) {
	src := table.MustNew("s", "s", []*table.Column{col("a", "x")})
	dst := table.MustNew("d", "d", []*table.Column{col("b", "y")})
	if corr := Match(src, dst, InstanceMatcher{}, 0.9); len(corr) != 0 {
		t.Errorf("below-threshold pair matched: %+v", corr)
	}
}

func TestMatchValentineStyleScenario(t *testing.T) {
	// A Valentine-style case: renamed headers, partially overlapping
	// instances. The combined matcher recovers the alignment that the
	// name matcher alone misses.
	n := 30
	vals := func(prefix string, lo int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s_%03d", prefix, lo+i)
		}
		return out
	}
	src := table.MustNew("s", "s", []*table.Column{
		table.NewColumn("employee_name", vals("person", 0)),
		table.NewColumn("office", vals("city", 0)),
	})
	dst := table.MustNew("d", "d", []*table.Column{
		table.NewColumn("staff", vals("person", 10)),  // renamed, overlapping values
		table.NewColumn("location", vals("city", 10)), // renamed, overlapping values
	})
	byName := Match(src, dst, NameMatcher{}, 0.5)
	combined := Match(src, dst, CombinedMatcher{NameWeight: 0.3}, 0.3)
	if len(byName) >= len(combined) {
		t.Errorf("name-only found %d, combined %d — instances should help", len(byName), len(combined))
	}
	want := map[string]string{"staff": "employee_name", "location": "office"}
	got := map[string]string{}
	for _, c := range combined {
		got[c.Target] = c.Source
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("combined mapping %v, want %v", got, want)
		}
	}
}
