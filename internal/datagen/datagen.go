// Package datagen generates synthetic data lakes with known ground
// truth. It substitutes for the open-data corpora (data.gov,
// WebDataCommons) the surveyed systems evaluate on: the generator
// controls exactly the distributional properties those evaluations
// exercise — skewed domain cardinalities, shared semantic domains
// across tables, functional relationships between column pairs,
// homographs, and dirty variants — and therefore yields exact rather
// than pooled relevance judgments.
//
// The model: a lake has D value domains (semantic types). A table
// template is a list of column domains plus, for each adjacent column
// pair, a template-specific functional mapping between the domains.
// Tables instantiated from the same template are unionable in the
// SANTOS sense (same domains and same relationships); tables from
// different templates that reuse domains are the relationship-
// confusable negatives SANTOS distinguishes and column-only methods
// confuse.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"tablehound/internal/kb"
	"tablehound/internal/table"
)

// domainBaseNames seed human-readable domain names; extra domains get
// synthetic names.
var domainBaseNames = []string{
	"city", "country", "person", "company", "product", "team",
	"airport", "currency", "language", "species", "element", "drug",
	"university", "river", "mountain", "movie", "gene", "street",
	"dish", "sport", "festival", "museum", "planet", "mineral",
}

// Config controls lake generation. Zero fields take defaults.
type Config struct {
	Seed              int64
	NumDomains        int // semantic domains (default 24)
	DomainSize        int // base values per domain (default 200)
	NumTemplates      int // table templates (default 10)
	TablesPerTemplate int // unionable group size (default 8)
	ColsMin, ColsMax  int // columns per template (default 3..5)
	RowsMin, RowsMax  int // rows per table (default 30..120)
	NumHomographs     int // values planted in two domains (default 0)
	NoiseCols         int // extra unique-value columns per table (default 1)
	NumericCols       int // extra numeric columns per table (default 1)
	// DisjointInstances samples each template instance's entities from
	// its own window of the entity space, so unionable tables share a
	// domain but few concrete values — the regime where set-overlap
	// union search fails and semantic/NL measures are required.
	DisjointInstances bool
}

func (c Config) withDefaults() Config {
	if c.NumDomains <= 0 {
		c.NumDomains = 24
	}
	if c.DomainSize <= 0 {
		c.DomainSize = 200
	}
	if c.NumTemplates <= 0 {
		c.NumTemplates = 10
	}
	if c.TablesPerTemplate <= 0 {
		c.TablesPerTemplate = 8
	}
	if c.ColsMin <= 0 {
		c.ColsMin = 3
	}
	if c.ColsMax < c.ColsMin {
		c.ColsMax = c.ColsMin + 2
	}
	if c.RowsMin <= 0 {
		c.RowsMin = 30
	}
	if c.RowsMax < c.RowsMin {
		c.RowsMax = c.RowsMin + 90
	}
	// Zero means default; pass a negative count to disable.
	if c.NoiseCols == 0 {
		c.NoiseCols = 1
	} else if c.NoiseCols < 0 {
		c.NoiseCols = 0
	}
	if c.NumericCols == 0 {
		c.NumericCols = 1
	} else if c.NumericCols < 0 {
		c.NumericCols = 0
	}
	return c
}

// Template describes one table schema in the lake.
type Template struct {
	ID      int
	Domains []int // column position -> domain
	// mapping[j] maps an entity index to the value index of column
	// j; adjacent columns therefore stand in a fixed functional
	// relationship specific to this template.
	mapping [][]int
}

// Lake is a generated corpus plus its ground truth.
type Lake struct {
	Config      Config
	Tables      []*table.Table
	Domains     [][]string // domain -> vocabulary
	DomainNames []string
	Templates   []Template
	// ColumnDomain maps table.ColumnKey -> domain index; noise and
	// numeric columns are absent.
	ColumnDomain map[string]int
	// TableTemplate maps table ID -> template index.
	TableTemplate map[string]int
	Homographs    []string
}

// Generate builds a lake.
func Generate(cfg Config) *Lake {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &Lake{
		Config:        cfg,
		ColumnDomain:  make(map[string]int),
		TableTemplate: make(map[string]int),
	}
	// Domains with Zipf-skewed sizes: domain d has size roughly
	// DomainSize * 4 / (rank+1), floor 20.
	for d := 0; d < cfg.NumDomains; d++ {
		name := fmt.Sprintf("dom%02d", d)
		if d < len(domainBaseNames) {
			name = domainBaseNames[d]
		}
		size := cfg.DomainSize * 4 / (d%8 + 1)
		if size < 20 {
			size = 20
		}
		vals := make([]string, size)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s_%04d", name, i)
		}
		l.Domains = append(l.Domains, vals)
		l.DomainNames = append(l.DomainNames, name)
	}
	// Homographs: one surface form planted into two domains.
	for h := 0; h < cfg.NumHomographs; h++ {
		a := rng.Intn(cfg.NumDomains)
		b := rng.Intn(cfg.NumDomains)
		for b == a {
			b = rng.Intn(cfg.NumDomains)
		}
		v := fmt.Sprintf("homograph_%02d", h)
		l.Domains[a] = append(l.Domains[a], v)
		l.Domains[b] = append(l.Domains[b], v)
		l.Homographs = append(l.Homographs, v)
	}
	// Templates: random column domains (distinct within a template)
	// and per-column entity->value mappings. When there are more
	// domains than templates, template t gets domain t as a private
	// primary no other template uses, so no template's schema is a
	// subset of another's — otherwise "unionable = same template"
	// ground truth would be wrong (a superset-schema table is
	// genuinely unionable with a subset-schema query).
	for t := 0; t < cfg.NumTemplates; t++ {
		nc := cfg.ColsMin + rng.Intn(cfg.ColsMax-cfg.ColsMin+1)
		var doms []int
		if cfg.NumDomains > cfg.NumTemplates {
			doms = append(doms, t)
			pool := rng.Perm(cfg.NumDomains - cfg.NumTemplates)
			for i := 0; i < nc-1 && i < len(pool); i++ {
				doms = append(doms, cfg.NumTemplates+pool[i])
			}
		} else {
			doms = rng.Perm(cfg.NumDomains)[:nc]
		}
		tpl := Template{ID: t, Domains: append([]int{}, doms...)}
		for _, d := range doms {
			tpl.mapping = append(tpl.mapping, rng.Perm(len(l.Domains[d])))
		}
		l.Templates = append(l.Templates, tpl)
	}
	// Tables.
	for t := range l.Templates {
		for i := 0; i < cfg.TablesPerTemplate; i++ {
			l.addTable(rng, t, i)
		}
	}
	return l
}

// addTable instantiates one table from a template.
func (l *Lake) addTable(rng *rand.Rand, tplIdx, inst int) {
	cfg := l.Config
	tpl := l.Templates[tplIdx]
	id := fmt.Sprintf("t%03d_%02d", tplIdx, inst)
	rows := cfg.RowsMin + rng.Intn(cfg.RowsMax-cfg.RowsMin+1)
	cols := make([]*table.Column, 0, len(tpl.Domains)+cfg.NoiseCols+cfg.NumericCols)

	// Entity indices drive all template columns of a row, so the
	// template's functional relationships hold exactly.
	entities := make([]int, rows)
	pool := len(tpl.mapping[0])
	lo, span := 0, pool
	if cfg.DisjointInstances && cfg.TablesPerTemplate > 1 {
		span = pool / cfg.TablesPerTemplate
		if span < 5 {
			span = 5
		}
		lo = (inst * span) % pool
	}
	for r := range entities {
		entities[r] = (lo + rng.Intn(span)) % pool
	}
	for j, d := range tpl.Domains {
		vals := make([]string, rows)
		m := tpl.mapping[j]
		dom := l.Domains[d]
		for r, e := range entities {
			vals[r] = dom[m[e%len(m)]%len(dom)]
		}
		name := fmt.Sprintf("%s_%d", l.DomainNames[d], j)
		col := table.NewColumn(name, vals)
		cols = append(cols, col)
		l.ColumnDomain[table.ColumnKey(id, name)] = d
	}
	for n := 0; n < cfg.NoiseCols; n++ {
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = fmt.Sprintf("uniq_%s_%d_%d", id, n, r)
		}
		cols = append(cols, table.NewColumn(fmt.Sprintf("note_%d", n), vals))
	}
	for n := 0; n < cfg.NumericCols; n++ {
		vals := make([]string, rows)
		for r, e := range entities {
			vals[r] = fmt.Sprintf("%.2f", float64(e)*1.7+rng.NormFloat64()*3)
		}
		cols = append(cols, table.NewColumn(fmt.Sprintf("metric_%d", n), vals))
	}
	tbl := table.MustNew(id, fmt.Sprintf("%s table %d", l.DomainNames[tpl.Domains[0]], inst), cols)
	tbl.Description = fmt.Sprintf("synthetic table about %s", describe(l, tpl))
	tbl.Tags = []string{l.DomainNames[tpl.Domains[0]], fmt.Sprintf("template%d", tplIdx)}
	l.Tables = append(l.Tables, tbl)
	l.TableTemplate[id] = tplIdx
}

func describe(l *Lake, tpl Template) string {
	s := ""
	for i, d := range tpl.Domains {
		if i > 0 {
			s += " and "
		}
		s += l.DomainNames[d]
	}
	return s
}

// Table returns the table with the given ID, or nil.
func (l *Lake) Table(id string) *table.Table {
	for _, t := range l.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// UnionableWith returns the ground-truth unionable table IDs for a
// query table: the other instances of its template.
func (l *Lake) UnionableWith(tableID string) map[string]bool {
	tpl, ok := l.TableTemplate[tableID]
	if !ok {
		return nil
	}
	out := make(map[string]bool)
	for id, t := range l.TableTemplate {
		if t == tpl && id != tableID {
			out[id] = true
		}
	}
	return out
}

// SameDomainColumns returns the ground-truth set of column keys drawn
// from the same domain as the given column (excluding itself).
func (l *Lake) SameDomainColumns(columnKey string) map[string]bool {
	d, ok := l.ColumnDomain[columnKey]
	if !ok {
		return nil
	}
	out := make(map[string]bool)
	for k, kd := range l.ColumnDomain {
		if kd == d && k != columnKey {
			out[k] = true
		}
	}
	return out
}

// BuildKB constructs the ground-truth ontology over the lake's
// domains with the given entity coverage in [0, 1]: each domain is a
// type under a group parent, each covered value is typed, and each
// template's adjacent column relationships become predicates. This is
// the curated-KB stand-in for TUS-semantic and SANTOS.
func (l *Lake) BuildKB(coverage float64) *kb.KB {
	rng := rand.New(rand.NewSource(l.Config.Seed + 1000))
	k := kb.New()
	for d, name := range l.DomainNames {
		group := fmt.Sprintf("group%d", d/4)
		k.AddType(group, "root")
		k.AddType(name, group)
		for _, v := range l.Domains[d] {
			if rng.Float64() < coverage {
				k.AddEntity(v, name)
			}
		}
	}
	// Relationship facts per template pair, predicate named by the
	// template's mapping so different relationships over the same
	// domains get different predicates.
	for _, tpl := range l.Templates {
		for j := 0; j+1 < len(tpl.Domains); j++ {
			da, db := tpl.Domains[j], tpl.Domains[j+1]
			pred := fmt.Sprintf("rel_%s_%s_t%d", l.DomainNames[da], l.DomainNames[db], tpl.ID)
			ma, mb := tpl.mapping[j], tpl.mapping[j+1]
			n := len(ma)
			if len(mb) < n {
				n = len(mb)
			}
			for e := 0; e < n; e++ {
				a := l.Domains[da][ma[e]%len(l.Domains[da])]
				b := l.Domains[db][mb[e]%len(l.Domains[db])]
				if rng.Float64() < coverage {
					k.AddFact(a, pred, b)
				}
			}
		}
	}
	return k
}

// ColumnContexts returns each template-backed column's distinct values
// as one context per column — the training corpus for embeddings.
func (l *Lake) ColumnContexts() [][]string {
	var out [][]string
	for _, t := range l.Tables {
		for _, c := range t.Columns {
			if _, ok := l.ColumnDomain[table.ColumnKey(t.ID, c.Name)]; ok {
				out = append(out, c.Distinct())
			}
		}
	}
	return out
}

// CorruptValues returns a copy of values where each value is, with
// probability rate, perturbed by a single-character edit (the dirty
// join-key scenario fuzzy joins address).
func CorruptValues(values []string, rate float64, rng *rand.Rand) []string {
	out := make([]string, len(values))
	for i, v := range values {
		if rng.Float64() >= rate || len(v) < 3 {
			out[i] = v
			continue
		}
		pos := 1 + rng.Intn(len(v)-2)
		switch rng.Intn(3) {
		case 0: // substitution
			out[i] = v[:pos] + string(rune('a'+rng.Intn(26))) + v[pos+1:]
		case 1: // deletion
			out[i] = v[:pos] + v[pos+1:]
		default: // transposition
			out[i] = v[:pos-1] + string(v[pos]) + string(v[pos-1]) + v[pos+1:]
		}
	}
	return out
}

// CorrelatedSeries generates two numeric series over n keys with the
// target Pearson correlation rho (approximately): y = rho*x +
// sqrt(1-rho^2)*noise.
func CorrelatedSeries(n int, rho float64, rng *rand.Rand) (keys []string, x, y []float64) {
	keys = make([]string, n)
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("key_%05d", i)
		x[i] = rng.NormFloat64()
		y[i] = rho*x[i] + rng.NormFloat64()*math.Sqrt(math.Max(0, 1-rho*rho))
	}
	return keys, x, y
}
