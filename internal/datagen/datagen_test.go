package datagen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tablehound/internal/metrics"
	"tablehound/internal/table"
)

func smallLake() *Lake {
	return Generate(Config{
		Seed:              7,
		NumDomains:        12,
		DomainSize:        100,
		NumTemplates:      4,
		TablesPerTemplate: 3,
		NumHomographs:     2,
	})
}

func TestGenerateShape(t *testing.T) {
	l := smallLake()
	if len(l.Tables) != 12 {
		t.Fatalf("tables = %d, want 4*3", len(l.Tables))
	}
	if len(l.Domains) != 12 || len(l.DomainNames) != 12 {
		t.Fatalf("domains = %d", len(l.Domains))
	}
	for _, tbl := range l.Tables {
		if tbl.NumRows() < 30 || tbl.NumRows() > 120 {
			t.Errorf("table %s rows = %d out of range", tbl.ID, tbl.NumRows())
		}
		if tbl.NumCols() < 3+2 { // template cols + noise + numeric
			t.Errorf("table %s cols = %d", tbl.ID, tbl.NumCols())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := smallLake()
	b := smallLake()
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("nondeterministic table count")
	}
	for i := range a.Tables {
		if a.Tables[i].ID != b.Tables[i].ID {
			t.Fatal("nondeterministic table IDs")
		}
		if a.Tables[i].Columns[0].Values[0] != b.Tables[i].Columns[0].Values[0] {
			t.Fatal("nondeterministic values")
		}
	}
}

func TestColumnDomainGroundTruth(t *testing.T) {
	l := smallLake()
	for key, d := range l.ColumnDomain {
		tid, cname := table.SplitColumnKey(key)
		tbl := l.Table(tid)
		if tbl == nil {
			t.Fatalf("ground truth references missing table %s", tid)
		}
		col := tbl.Column(cname)
		if col == nil {
			t.Fatalf("ground truth references missing column %s", key)
		}
		// Every value must belong to the domain vocabulary.
		vocab := make(map[string]bool, len(l.Domains[d]))
		for _, v := range l.Domains[d] {
			vocab[v] = true
		}
		for _, v := range col.Values {
			if !vocab[v] {
				t.Fatalf("column %s value %q not in domain %d", key, v, d)
			}
		}
	}
}

func TestUnionableGroundTruth(t *testing.T) {
	l := smallLake()
	id := l.Tables[0].ID
	un := l.UnionableWith(id)
	if len(un) != 2 {
		t.Fatalf("unionable set size = %d, want 2", len(un))
	}
	for other := range un {
		if l.TableTemplate[other] != l.TableTemplate[id] {
			t.Error("unionable table from different template")
		}
	}
	if un[id] {
		t.Error("table unionable with itself")
	}
	if l.UnionableWith("nope") != nil {
		t.Error("unknown table should yield nil")
	}
}

func TestRelationshipsHoldWithinTemplate(t *testing.T) {
	// Within one table, the (col0, col1) value pairs form a function:
	// each col0 value maps to exactly one col1 value. And two tables of
	// the same template share that function.
	l := smallLake()
	t0, t1 := l.Tables[0], l.Tables[1]
	if l.TableTemplate[t0.ID] != l.TableTemplate[t1.ID] {
		t.Fatal("test assumes first two tables share a template")
	}
	mapping := map[string]string{}
	collect := func(tbl *table.Table) {
		for r := 0; r < tbl.NumRows(); r++ {
			a, b := tbl.Columns[0].Values[r], tbl.Columns[1].Values[r]
			if prev, ok := mapping[a]; ok && prev != b {
				t.Fatalf("relationship not functional: %q -> %q and %q", a, prev, b)
			}
			mapping[a] = b
		}
	}
	collect(t0)
	collect(t1)
}

func TestSameDomainColumns(t *testing.T) {
	l := smallLake()
	var anyKey string
	for k := range l.ColumnDomain {
		anyKey = k
		break
	}
	same := l.SameDomainColumns(anyKey)
	for k := range same {
		if l.ColumnDomain[k] != l.ColumnDomain[anyKey] {
			t.Error("SameDomainColumns returned cross-domain column")
		}
	}
	if same[anyKey] {
		t.Error("column should not be same-domain with itself")
	}
	if l.SameDomainColumns("missing.key") != nil {
		t.Error("unknown column should yield nil")
	}
}

func TestHomographsPlanted(t *testing.T) {
	l := smallLake()
	if len(l.Homographs) != 2 {
		t.Fatalf("homographs = %d", len(l.Homographs))
	}
	for _, h := range l.Homographs {
		n := 0
		for _, dom := range l.Domains {
			for _, v := range dom {
				if v == h {
					n++
				}
			}
		}
		if n < 2 {
			t.Errorf("homograph %q appears in %d domains", h, n)
		}
	}
}

func TestBuildKBCoverage(t *testing.T) {
	l := smallLake()
	full := l.BuildKB(1.0)
	half := l.BuildKB(0.5)
	var all []string
	for _, dom := range l.Domains {
		all = append(all, dom...)
	}
	if c := full.Coverage(all); c != 1 {
		t.Errorf("full KB coverage = %v", c)
	}
	c := half.Coverage(all)
	if c < 0.4 || c > 0.6 {
		t.Errorf("half KB coverage = %v", c)
	}
	if full.NumFacts() == 0 {
		t.Error("KB should contain relation facts")
	}
	// Domain typing matches ground truth.
	v := l.Domains[3][0]
	types := full.AllTypes(v)
	found := false
	for _, typ := range types {
		if typ == l.DomainNames[3] {
			found = true
		}
	}
	if !found {
		t.Errorf("value %q types %v missing domain name %q", v, types, l.DomainNames[3])
	}
}

func TestColumnContexts(t *testing.T) {
	l := smallLake()
	ctxs := l.ColumnContexts()
	if len(ctxs) != len(l.ColumnDomain) {
		t.Errorf("contexts = %d, want %d", len(ctxs), len(l.ColumnDomain))
	}
}

func TestCorruptValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = "city_name_1234"
	}
	out := CorruptValues(vals, 0.5, rng)
	changed := 0
	for i := range out {
		if out[i] != vals[i] {
			changed++
			// Single edit: length within 1 and mostly same prefix.
			if math.Abs(float64(len(out[i])-len(vals[i]))) > 1 {
				t.Errorf("corruption too large: %q", out[i])
			}
		}
	}
	if changed < 60 || changed > 140 {
		t.Errorf("changed = %d of 200 at rate 0.5", changed)
	}
	// Rate 0 changes nothing; short strings are left alone.
	same := CorruptValues([]string{"ab"}, 1.0, rng)
	if same[0] != "ab" {
		t.Error("short string should not be corrupted")
	}
}

func TestCorrelatedSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys, x, y := CorrelatedSeries(2000, 0.9, rng)
	if len(keys) != 2000 {
		t.Fatal("wrong length")
	}
	if r := metrics.Pearson(x, y); math.Abs(r-0.9) > 0.05 {
		t.Errorf("pearson = %v, want ~0.9", r)
	}
	_, x2, y2 := CorrelatedSeries(2000, 0, rng)
	if r := metrics.Pearson(x2, y2); math.Abs(r) > 0.1 {
		t.Errorf("independent pearson = %v", r)
	}
}

func TestDisjointInstancesReduceOverlap(t *testing.T) {
	mk := func(disjoint bool) *Lake {
		return Generate(Config{
			Seed: 9, NumDomains: 12, DomainSize: 300,
			NumTemplates: 3, TablesPerTemplate: 6,
			RowsMin: 40, RowsMax: 40, DisjointInstances: disjoint,
		})
	}
	overlap := func(l *Lake) float64 {
		a := l.Tables[0].Columns[0].Distinct()
		b := l.Tables[1].Columns[0].Distinct()
		inter := 0
		set := map[string]bool{}
		for _, v := range a {
			set[v] = true
		}
		for _, v := range b {
			if set[v] {
				inter++
			}
		}
		return float64(inter) / float64(len(a))
	}
	shared := overlap(mk(false))
	disjoint := overlap(mk(true))
	if disjoint >= shared {
		t.Errorf("disjoint instances should share fewer values: %v vs %v", disjoint, shared)
	}
	if disjoint > 0.2 {
		t.Errorf("disjoint instance overlap = %v, want near 0", disjoint)
	}
}

func TestTemplatesNotSubsets(t *testing.T) {
	l := Generate(Config{Seed: 4, NumDomains: 16, NumTemplates: 6, TablesPerTemplate: 2})
	for i := range l.Templates {
		for j := range l.Templates {
			if i == j {
				continue
			}
			// Template i's private primary (domain index i) must not
			// appear in template j.
			for _, d := range l.Templates[j].Domains {
				if d == l.Templates[i].Domains[0] {
					t.Fatalf("template %d's primary domain reused by template %d", i, j)
				}
			}
		}
	}
}

func TestTableMetadata(t *testing.T) {
	l := smallLake()
	for _, tbl := range l.Tables {
		if tbl.Description == "" || len(tbl.Tags) == 0 {
			t.Errorf("table %s missing metadata", tbl.ID)
		}
		if !strings.Contains(tbl.Description, "synthetic") {
			t.Errorf("description = %q", tbl.Description)
		}
	}
}
