package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tablehound/internal/embedding"
	"tablehound/internal/hnsw"
	"tablehound/internal/invindex"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/minhash"
)

// E6HNSW reproduces the HNSW parameter study (Malkov & Yashunin,
// TPAMI 2020, Fig 3 shape): recall@10 rises with efSearch toward 1
// while latency grows, and stays far below brute-force scan time.
func E6HNSW() Report {
	const (
		n   = 15000
		dim = 48
	)
	rng := rand.New(rand.NewSource(606))
	randUnit := func() embedding.Vector {
		v := make(embedding.Vector, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v.Normalize()
	}
	// Clustered corpus: the regime HNSW's heuristic selection handles.
	centers := make([]embedding.Vector, 40)
	for i := range centers {
		centers[i] = randUnit()
	}
	g := hnsw.New(hnsw.Config{M: 16, EfConstruction: 100, Seed: 6})
	buildTime := timeIt(func() {
		for i := 0; i < n; i++ {
			v := centers[i%len(centers)].Clone()
			v.AddScaled(randUnit(), 0.35)
			if err := g.Add(fmt.Sprintf("v%05d", i), v.Normalize()); err != nil {
				panic(err)
			}
		}
	})
	queries := make([]embedding.Vector, 30)
	for i := range queries {
		v := centers[rng.Intn(len(centers))].Clone()
		v.AddScaled(randUnit(), 0.35)
		queries[i] = v.Normalize()
	}
	rep := Report{
		ID:     "E6",
		Title:  fmt.Sprintf("HNSW: recall@10 vs efSearch (n=%d, build %.1fs)", n, buildTime.Seconds()),
		Header: []string{"efSearch", "recall@10", "query_ms", "scan_ms"},
		Notes:  "recall climbs toward 1 with efSearch; query latency stays far below linear scan",
	}
	var scanTime time.Duration
	truth := make([]map[string]bool, len(queries))
	scanTime = timeIt(func() {
		for i, q := range queries {
			truth[i] = map[string]bool{}
			for _, r := range g.BruteForce(q, 10) {
				truth[i][r.Key] = true
			}
		}
	})
	scanPer := scanTime / time.Duration(len(queries))
	for _, ef := range []int{10, 20, 40, 80, 160, 320} {
		hits, total := 0, 0
		var elapsed time.Duration
		for i, q := range queries {
			var res []hnsw.Result
			elapsed += timeIt(func() { res = g.Search(q, 10, ef) })
			for _, r := range res {
				if truth[i][r.Key] {
					hits++
				}
			}
			total += len(truth[i])
		}
		rep.Rows = append(rep.Rows, []string{
			d(ef), f(float64(hits) / float64(total)),
			ms(elapsed / time.Duration(len(queries))), ms(scanPer),
		})
	}
	return rep
}

// E16Scalability addresses the tutorial's Section 3 indexing
// discussion: build and query cost of the three index families (set
// LSH ensemble, inverted lists/JOSIE, HNSW vectors) as the lake
// grows. Build time grows near-linearly; query time stays sub-linear
// for the indexes while the scan baseline grows linearly.
func E16Scalability() Report {
	rep := Report{
		ID:     "E16",
		Title:  "Index scalability: build and query time vs lake size",
		Header: []string{"columns", "index", "build_ms", "query_ms", "scan_ms"},
		Notes:  "index query time grows sub-linearly with lake size; scan grows linearly",
	}
	rng := rand.New(rand.NewSource(1616))
	zipf := rand.NewZipf(rng, 1.2, 1, 30000)
	for _, size := range []int{1000, 4000, 16000} {
		cols := make([][]string, size)
		for i := range cols {
			n := 10 + rng.Intn(50)
			vs := make([]string, n)
			for j := range vs {
				vs[j] = fmt.Sprintf("tok%d", zipf.Uint64())
			}
			cols[i] = vs
		}
		query := cols[size/2]

		// Per-query timings average several repetitions after one
		// untimed warm-up, so one-off costs (parameter-tuning caches,
		// allocator warmth) and scheduler noise do not dominate.
		const reps = 5
		avg := func(fn func()) time.Duration {
			fn() // warm up
			return timeIt(func() {
				for r := 0; r < reps; r++ {
					fn()
				}
			}) / reps
		}

		// Inverted index + JOSIE.
		var ix *invindex.Index
		bJosie := timeIt(func() {
			ib := invindex.NewBuilder()
			for i, vs := range cols {
				ib.Add(fmt.Sprintf("c%05d", i), vs)
			}
			var err error
			ix, err = ib.Build()
			if err != nil {
				panic(err)
			}
		})
		s := josie.NewSearcher(ix)
		qJosie := avg(func() { s.TopK(query, 10, josie.Adaptive) })

		// Scan baseline: exact overlap against every column.
		qScan := avg(func() {
			for _, vs := range cols {
				minhash.ExactOverlap(query, vs)
			}
		})

		// LSH ensemble.
		hasher := minhash.NewHasher(128, 1)
		var ens *lshensemble.Index
		bEns := timeIt(func() {
			ens = lshensemble.New(128, 8)
			for i, vs := range cols {
				ens.Add(lshensemble.Domain{Key: fmt.Sprintf("c%05d", i), Size: len(vs), Sig: hasher.Sign(vs)})
			}
			if err := ens.Build(); err != nil {
				panic(err)
			}
		})
		qsig := hasher.Sign(query)
		qEns := avg(func() {
			if _, err := ens.Query(qsig, len(query), 0.7); err != nil {
				panic(err)
			}
		})

		// HNSW over char-gram column vectors.
		vecs := make([]embedding.Vector, size)
		for i, vs := range cols {
			v := embedding.Zero(32)
			for _, t := range vs {
				v.Add(embedding.RandomVector(t, 32, 3))
			}
			vecs[i] = v.Normalize()
		}
		var g *hnsw.Graph
		bHNSW := timeIt(func() {
			g = hnsw.New(hnsw.Config{M: 8, EfConstruction: 40, Seed: 2})
			for i, v := range vecs {
				g.Add(fmt.Sprintf("c%05d", i), v)
			}
		})
		qHNSW := avg(func() { g.Search(vecs[size/2], 10, 40) })

		rep.Rows = append(rep.Rows,
			[]string{d(size), "josie-inverted", ms(bJosie), ms(qJosie), ms(qScan)},
			[]string{d(size), "lsh-ensemble", ms(bEns), ms(qEns), ms(qScan)},
			[]string{d(size), "hnsw", ms(bHNSW), ms(qHNSW), ms(qScan)},
		)
	}
	return rep
}
