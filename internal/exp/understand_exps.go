package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"tablehound/internal/annotate"
	"tablehound/internal/apps"
	"tablehound/internal/datagen"
	"tablehound/internal/domain"
	"tablehound/internal/embedding"
	"tablehound/internal/kb"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
)

// E7Annotate reproduces the learned column-typing result (Sherlock,
// KDD 2019 Table 2 / Sato VLDB 2020 shape): the learned detector far
// exceeds dictionary and rule baselines on semantic types, and
// Sato-style table-context smoothing adds a further increment.
func E7Annotate() Report {
	// Per-domain vocabularies with a held-out value range: training
	// columns draw from values 0..209, test columns from 210..299, so
	// every test value is unseen. The dictionary baseline (exact value
	// memorization) then collapses while the learned detector keeps
	// generalizing from value shape and word structure — the Sherlock
	// result.
	const nDomains = 14
	names := []string{"city", "gene", "team", "drug", "river", "movie",
		"dish", "sport", "planet", "street", "festival", "museum", "currency", "language"}
	rng := rand.New(rand.NewSource(7))
	mkCol := func(dom int, lo, hi, n int) []string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s_%04d", names[dom], lo+rng.Intn(hi-lo))
		}
		return vals
	}
	var train []annotate.Example
	for dom := 0; dom < nDomains; dom++ {
		for c := 0; c < 12; c++ {
			train = append(train, annotate.Example{
				Values: mkCol(dom, 0, 210, 40+rng.Intn(40)),
				Header: "col",
				Label:  names[dom],
			})
		}
	}
	var testTables []*table.Table
	labelOf := make(map[string]string)
	for t := 0; t < 20; t++ {
		var cols []*table.Column
		n := 50
		id := fmt.Sprintf("test%02d", t)
		for j := 0; j < 3; j++ {
			dom := (t*3 + j) % nDomains
			name := fmt.Sprintf("c%d", j)
			cols = append(cols, table.NewColumn(name, mkCol(dom, 210, 300, n)))
			labelOf[table.ColumnKey(id, name)] = names[dom]
		}
		testTables = append(testTables, table.MustNew(id, id, cols))
	}
	a, err := annotate.Train(train, annotate.Config{Epochs: 20, Seed: 1})
	if err != nil {
		panic(err)
	}
	dict := annotate.TrainDictionary(train)

	type method struct {
		name    string
		predict func(tbl *table.Table) []annotate.Prediction
	}
	methods := []method{
		{"rules", func(tbl *table.Table) []annotate.Prediction {
			out := make([]annotate.Prediction, len(tbl.Columns))
			for i, c := range tbl.Columns {
				l, s := annotate.RulePredict(c.Values, c.Name)
				out[i] = annotate.Prediction{Column: c.Name, Label: l, Score: s}
			}
			return out
		}},
		{"dictionary", func(tbl *table.Table) []annotate.Prediction {
			out := make([]annotate.Prediction, len(tbl.Columns))
			for i, c := range tbl.Columns {
				l, s := dict.Predict(c.Values, c.Name)
				out[i] = annotate.Prediction{Column: c.Name, Label: l, Score: s}
			}
			return out
		}},
		{"learned", func(tbl *table.Table) []annotate.Prediction {
			return a.AnnotateTable(tbl, false)
		}},
		{"learned+sato", func(tbl *table.Table) []annotate.Prediction {
			return a.AnnotateTable(tbl, true)
		}},
	}
	rep := Report{
		ID:     "E7",
		Title:  "Semantic column typing: learned detector vs baselines",
		Header: []string{"method", "accuracy", "coverage"},
		Notes:  "learned > dictionary > rules on semantic-type accuracy; rules cannot name semantic types at all",
	}
	for _, m := range methods {
		hit, total, covered := 0, 0, 0
		for _, tbl := range testTables {
			preds := m.predict(tbl)
			for i, c := range tbl.Columns {
				want, ok := labelOf[table.ColumnKey(tbl.ID, c.Name)]
				if !ok {
					continue
				}
				total++
				if preds[i].Label != "" {
					covered++
				}
				if preds[i].Label == want {
					hit++
				}
			}
		}
		rep.Rows = append(rep.Rows, []string{
			m.name, f(float64(hit) / float64(total)), f(float64(covered) / float64(total)),
		})
	}
	return rep
}

// E8Domain reproduces the data-driven domain discovery result (Ota et
// al., VLDB 2020, Fig 7 shape): co-occurrence clustering recovers the
// planted domains (high NMI, right domain count) where per-column
// treatment fragments them.
func E8Domain() Report {
	rng := rand.New(rand.NewSource(808))
	const (
		nDomains  = 8
		colsPer   = 7
		valsPer   = 50
		noiseFrac = 0.15
	)
	truth := make(map[string]int)
	var cols []domain.Column
	for d := 0; d < nDomains; d++ {
		vocab := make([]string, 80)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("dom%02d_val%03d", d, i)
			truth[vocab[i]] = d
		}
		for c := 0; c < colsPer; c++ {
			perm := rng.Perm(len(vocab))
			var vals []string
			for i := 0; i < valsPer; i++ {
				vals = append(vals, vocab[perm[i]])
			}
			for i := 0; float64(i) < noiseFrac*valsPer; i++ {
				vals = append(vals, fmt.Sprintf("noise_%d_%d_%d", d, c, i))
			}
			cols = append(cols, domain.Column{Key: fmt.Sprintf("t%d.c%d", d, c), Values: vals})
		}
	}
	score := func(domains []domain.Domain) (nmi float64, n int) {
		assign := domain.AssignValues(domains)
		var pred, tru []int
		for v, d := range truth {
			if p, ok := assign[v]; ok {
				pred = append(pred, p)
				tru = append(tru, d)
			}
		}
		return metrics.NMI(pred, tru), len(domains)
	}
	d4, d4N := score(domain.Discover(cols, domain.Config{}))
	naive, naiveN := score(domain.NaiveBaseline(cols))
	rep := Report{
		ID:     "E8",
		Title:  "Domain discovery: co-occurrence clustering vs per-column baseline",
		Header: []string{"method", "NMI", "domains_found", "domains_true"},
		Notes:  "discovery NMI near 1 with the true domain count; the baseline fragments each domain across its columns",
	}
	rep.Rows = append(rep.Rows,
		[]string{"d4-style", f(d4), d(d4N), d(nDomains)},
		[]string{"per-column", f(naive), d(naiveN), d(nDomains)},
	)
	return rep
}

// E12Homograph reproduces the DomainNet result (Leventidis et al.,
// EDBT 2021, Table 4 shape): betweenness centrality over the
// value-column graph ranks planted homographs above unambiguous
// values.
func E12Homograph() Report {
	lake := datagen.Generate(datagen.Config{
		Seed:              1212,
		NumDomains:        10,
		DomainSize:        60,
		NumTemplates:      8,
		TablesPerTemplate: 4,
		NumHomographs:     6,
		NoiseCols:         -1,
		NumericCols:       -1,
	})
	var cols []apps.ValueColumn
	for _, t := range lake.Tables {
		for _, c := range t.Columns {
			cols = append(cols, apps.ValueColumn{Key: table.ColumnKey(t.ID, c.Name), Values: c.Values})
		}
	}
	ranked := apps.DetectHomographs(cols, 0)
	truth := make(map[string]bool, len(lake.Homographs))
	for _, h := range lake.Homographs {
		truth[h] = true
	}
	ids := make([]string, len(ranked))
	for i, r := range ranked {
		ids[i] = r.Value
	}
	rep := Report{
		ID:     "E12",
		Title:  "Homograph detection via betweenness centrality (6 planted)",
		Header: []string{"k", "precision@k", "recall@k"},
		Notes:  "planted homographs dominate the top of the centrality ranking",
	}
	for _, k := range []int{3, 6, 12} {
		rep.Rows = append(rep.Rows, []string{
			d(k),
			f(metrics.PrecisionAtK(ids, truth, k)),
			f(metrics.RecallAtK(ids, truth, k)),
		})
	}
	return rep
}

// E17KBvsLM examines the tutorial's Section 3 "common wisdom": on a
// semantic column-matching task, the KB gives near-perfect precision
// on the pairs it covers but misses uncovered pairs, while embeddings
// cover everything at lower precision; the hybrid takes both.
func E17KBvsLM() Report {
	lake := datagen.Generate(datagen.Config{
		Seed:              1717,
		NumDomains:        16,
		DomainSize:        120,
		NumTemplates:      8,
		TablesPerTemplate: 6,
		DisjointInstances: true,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 64, Seed: 17})
	// KB coverage is per-DOMAIN: real KBs lack whole long-tail
	// concepts, not random values. A covered domain is fully typed; an
	// uncovered one is entirely absent, so pairs drawn from it leave
	// the KB undecided.
	buildDomainKB := func(coverage float64) *kb.KB {
		covered := int(coverage*float64(len(lake.Domains)) + 0.5)
		k := kb.New()
		for d := 0; d < covered; d++ {
			name := lake.DomainNames[d]
			k.AddType(name, "root")
			for _, v := range lake.Domains[d] {
				k.AddEntity(v, name)
			}
		}
		return k
	}
	rep := Report{
		ID:     "E17",
		Title:  "KB vs embeddings: same-domain column-pair detection",
		Header: []string{"method", "kb_coverage", "precision", "recall", "F1"},
		Notes:  "KB recall tracks its concept coverage while its precision stays near 1; embedding recall is coverage-independent; the hybrid dominates both",
	}
	// Sample column pairs with ground truth: same domain or not.
	type pair struct {
		a, b []string
		same bool
	}
	rng := rand.New(rand.NewSource(17))
	var keys []string
	for k := range lake.ColumnDomain {
		keys = append(keys, k)
	}
	// Deterministic order before sampling.
	sort.Strings(keys)
	var pairs []pair
	for i := 0; i < 300; i++ {
		ka := keys[rng.Intn(len(keys))]
		kbk := keys[rng.Intn(len(keys))]
		ta, ca := table.SplitColumnKey(ka)
		tb, cb := table.SplitColumnKey(kbk)
		colA := lake.Table(ta).Column(ca)
		colB := lake.Table(tb).Column(cb)
		pairs = append(pairs, pair{
			a:    colA.Values,
			b:    colB.Values,
			same: lake.ColumnDomain[ka] == lake.ColumnDomain[kbk],
		})
	}
	for _, cov := range []float64{0.3, 0.7} {
		curated := buildDomainKB(cov)
		evalOne := func(name string, match func(p pair) (bool, bool)) {
			tp, fp, fn := 0, 0, 0
			for _, p := range pairs {
				pred, decided := match(p)
				if !decided {
					pred = false
				}
				switch {
				case pred && p.same:
					tp++
				case pred && !p.same:
					fp++
				case !pred && p.same:
					fn++
				}
			}
			p, r, f1 := metrics.PRF(tp, fp, fn)
			rep.Rows = append(rep.Rows, []string{name, f(cov), f(p), f(r), f(f1)})
		}
		kbMatch := func(p pair) (bool, bool) {
			ta, _, okA := curated.DominantType(p.a, 0.5)
			tb, _, okB := curated.DominantType(p.b, 0.5)
			if !okA || !okB {
				return false, false
			}
			return curated.TypeSimilarity(ta, tb) > 0.9, true
		}
		emMatch := func(p pair) (bool, bool) {
			va := model.ColumnVector(p.a)
			vb := model.ColumnVector(p.b)
			return embedding.Cosine(va, vb) > 0.5, true
		}
		evalOne("kb", kbMatch)
		evalOne("embeddings", emMatch)
		evalOne("hybrid", func(p pair) (bool, bool) {
			if pred, decided := kbMatch(p); decided {
				return pred, true
			}
			return emMatch(p)
		})
	}
	return rep
}
