package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/metrics"
	"tablehound/internal/starmie"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// unionLake builds the shared union-search benchmark lake. Disjoint
// instances make unionable tables share domains but few concrete
// values — the regime TUS's evaluation targets, where pure set
// overlap under-performs semantic measures.
func unionLake(seed int64) (*datagen.Lake, *embedding.Model) {
	lake := datagen.Generate(datagen.Config{
		Seed:              seed,
		NumDomains:        20,
		DomainSize:        150,
		NumTemplates:      10,
		TablesPerTemplate: 8,
		DisjointInstances: true,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 64, Seed: uint64(seed)})
	return lake, model
}

// E3TUS reproduces the table union search measure comparison
// (Nargesian et al., VLDB 2018, Table 3 shape): MAP of the set,
// semantic, and NL unionability measures and their ensemble, with the
// ensemble at least matching every single measure.
func E3TUS() Report {
	lake, model := unionLake(303)
	tus, err := union.NewTUS(union.TUSConfig{Model: model, KB: lake.BuildKB(0.85), Exhaustive: true})
	if err != nil {
		panic(err)
	}
	for _, t := range lake.Tables {
		tus.AddTable(t)
	}
	if err := tus.Build(); err != nil {
		panic(err)
	}
	rep := Report{
		ID:     "E3",
		Title:  "TUS: MAP by unionability measure (k=7, 10 query templates)",
		Header: []string{"measure", "MAP", "P@7", "query_ms"},
		Notes:  "ensemble >= each individual measure; set alone misses disjoint same-domain columns, sem alone limited by KB coverage",
	}
	k := 7
	for _, m := range []union.Measure{union.SetMeasure, union.SemMeasure, union.NLMeasure, union.EnsembleMeasure} {
		var retrieved [][]string
		var relevant []map[string]bool
		var pAtK float64
		var elapsed time.Duration
		nq := 0
		for tpl := 0; tpl < 10; tpl++ {
			q := lake.Tables[tpl*8]
			var res []union.Result
			elapsed += timeIt(func() {
				var err error
				res, err = tus.Search(q, k, m)
				if err != nil {
					panic(err)
				}
			})
			ids := make([]string, len(res))
			for i, r := range res {
				ids[i] = r.TableID
			}
			truth := lake.UnionableWith(q.ID)
			retrieved = append(retrieved, ids)
			relevant = append(relevant, truth)
			pAtK += metrics.PrecisionAtK(ids, truth, k)
			nq++
		}
		rep.Rows = append(rep.Rows, []string{
			m.String(), f(metrics.MAP(retrieved, relevant)), f(pAtK / float64(nq)),
			ms(elapsed / time.Duration(nq)),
		})
	}
	return rep
}

// E4Santos reproduces the SANTOS result (Khatiwada et al., SIGMOD
// 2023, Fig 5 shape): on relationship-confusable tables — same column
// domains, different relationships — relationship-aware search keeps
// precision high where column-only search confuses the groups.
func E4Santos() Report {
	// Two groups per domain pair with the same domains but different
	// functional mappings, across several domain pairs.
	const (
		groupsPerPair = 2
		tablesPer     = 6
		nPairs        = 4
		nRows         = 80
	)
	var tables []*table.Table
	groupOf := make(map[string]string)
	for p := 0; p < nPairs; p++ {
		for g := 0; g < groupsPerPair; g++ {
			shift := g * 7
			for t := 0; t < tablesPer; t++ {
				a := make([]string, nRows)
				bvals := make([]string, nRows)
				for r := 0; r < nRows; r++ {
					i := (t*11 + r) % 40
					a[r] = fmt.Sprintf("p%d_subj_%02d", p, i)
					bvals[r] = fmt.Sprintf("p%d_obj_%02d", p, (i+shift)%40)
				}
				id := fmt.Sprintf("p%dg%d_%d", p, g, t)
				groupOf[id] = fmt.Sprintf("p%dg%d", p, g)
				tables = append(tables, table.MustNew(id, id, []*table.Column{
					table.NewColumn("subject", a),
					table.NewColumn("object", bvals),
				}))
			}
		}
	}
	santos := union.NewSantos(nil)
	model := embedding.Train(columnContexts(tables), embedding.Config{Dim: 64, Seed: 4})
	tus, err := union.NewTUS(union.TUSConfig{Model: model, Exhaustive: true})
	if err != nil {
		panic(err)
	}
	for _, t := range tables {
		santos.AddTable(t)
		tus.AddTable(t)
	}
	if err := santos.Build(); err != nil {
		panic(err)
	}
	if err := tus.Build(); err != nil {
		panic(err)
	}
	rep := Report{
		ID:     "E4",
		Title:  "SANTOS vs column-only union search on relationship-confusable tables",
		Header: []string{"method", "P@5", "MAP"},
		Notes:  "SANTOS separates same-domain/different-relationship groups; column-only methods confuse them (~half precision)",
	}
	k := 5
	eval := func(search func(q *table.Table) []string) (float64, float64) {
		var pAtK float64
		var retrieved [][]string
		var relevant []map[string]bool
		nq := 0
		for _, t := range tables {
			if t.ID[len(t.ID)-2:] != "_0" {
				continue // one query per group
			}
			ids := search(t)
			truth := make(map[string]bool)
			for id, g := range groupOf {
				if g == groupOf[t.ID] && id != t.ID {
					truth[id] = true
				}
			}
			pAtK += metrics.PrecisionAtK(ids, truth, k)
			retrieved = append(retrieved, ids)
			relevant = append(relevant, truth)
			nq++
		}
		return pAtK / float64(nq), metrics.MAP(retrieved, relevant)
	}
	pS, mS := eval(func(q *table.Table) []string {
		res, err := santos.Search(q, k, union.SynthOnly)
		if err != nil {
			panic(err)
		}
		return resultIDs(res)
	})
	pT, mT := eval(func(q *table.Table) []string {
		res, err := tus.Search(q, k, union.SetMeasure)
		if err != nil {
			panic(err)
		}
		return resultIDs(res)
	})
	rep.Rows = append(rep.Rows,
		[]string{"santos-synth", f(pS), f(mS)},
		[]string{"column-only(set)", f(pT), f(mT)},
	)
	return rep
}

func resultIDs(rs []union.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TableID
	}
	return out
}

func columnContexts(tables []*table.Table) [][]string {
	var out [][]string
	for _, t := range tables {
		for _, c := range t.Columns {
			out = append(out, c.Distinct())
		}
	}
	return out
}

// E5Starmie reproduces the Starmie efficiency result (Fan et al.,
// 2022, Fig 8 shape): contextualized column retrieval with HNSW
// approaches the linear-scan accuracy at a fraction of its latency,
// and context-aware encoding beats context-free encoding on MAP.
func E5Starmie() Report {
	lake, model := unionLake(505)
	rep := Report{
		ID:     "E5",
		Title:  "Starmie: contextual encoders + HNSW vs linear scan",
		Header: []string{"encoder", "retrieval", "MAP", "query_ms"},
		Notes:  "contextual MAP >= context-free MAP; HNSW column-retrieval latency flattens while scan grows linearly with lake size",
	}
	for _, ctx := range []struct {
		name string
		w    float64
	}{{"context-free", 0}, {"contextual", 0.3}} {
		ix := starmie.NewIndex(starmie.NewEncoder(model, ctx.w))
		for _, t := range lake.Tables {
			ix.AddTable(t)
		}
		if err := ix.Build(); err != nil {
			panic(err)
		}
		for _, mode := range []struct {
			name  string
			exact bool
		}{{"hnsw", false}, {"scan", true}} {
			var retrieved [][]string
			var relevant []map[string]bool
			var elapsed time.Duration
			nq := 0
			for tpl := 0; tpl < 10; tpl++ {
				q := lake.Tables[tpl*8]
				var res []starmie.Result
				elapsed += timeIt(func() {
					var err error
					res, err = ix.SearchTables(q, 7, 64, mode.exact)
					if err != nil {
						panic(err)
					}
				})
				ids := make([]string, len(res))
				for i, r := range res {
					ids[i] = r.TableID
				}
				retrieved = append(retrieved, ids)
				relevant = append(relevant, lake.UnionableWith(q.ID))
				nq++
			}
			rep.Rows = append(rep.Rows, []string{
				ctx.name, mode.name,
				f(metrics.MAP(retrieved, relevant)),
				ms(elapsed / time.Duration(nq)),
			})
		}
	}
	// Column-retrieval scaling: the efficiency half of the result.
	// Starmie's index advantage appears as lakes grow; measure raw
	// column top-10 retrieval at increasing column counts.
	enc := starmie.NewEncoder(model, 0.3)
	qv := enc.EncodeColumns(lake.Tables[0])[0]
	rng := rand.New(rand.NewSource(55))
	randUnit := func() embedding.Vector {
		v := make(embedding.Vector, model.Dim())
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v.Normalize()
	}
	for _, n := range []int{4000, 16000, 64000} {
		// Synthetic filler columns stand in for a larger lake.
		big := starmie.NewIndex(enc)
		for i := 0; i < n; i++ {
			big.AddVector(fmt.Sprintf("t%06d.c", i), randUnit())
		}
		if err := big.Build(); err != nil {
			panic(err)
		}
		const reps = 20
		var tH, tS time.Duration
		for r := 0; r < reps; r++ {
			tH += timeIt(func() { big.SearchColumns(qv, 10, 64, false) })
			tS += timeIt(func() { big.SearchColumns(qv, 10, 0, true) })
		}
		rep.Rows = append(rep.Rows,
			[]string{fmt.Sprintf("cols=%d", n), "hnsw", "-", ms(tH / reps)},
			[]string{fmt.Sprintf("cols=%d", n), "scan", "-", ms(tS / reps)},
		)
	}
	return rep
}
