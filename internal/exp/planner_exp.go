package exp

import (
	"context"
	"fmt"
	"reflect"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/discover"
	"tablehound/internal/lake"
	"tablehound/internal/table"
)

// E25Planner quantifies the cost-based discover planner against the
// fixed cheap→expensive stage order on an adversarial query: a broad
// metadata predicate (several column names plus a type, expensive per
// table, admitting much of the lake) next to a one-term keyword that
// admits a single template. The fixed order pays the full-lake meta
// sweep first; the cost order runs the selective keyword first, then
// evaluates meta only over its survivors. Both orders must return
// bit-identical results — the rows report deterministic work units
// (StageExplain.Cost summed over prefilter + candidates stages), not
// wall time.
//
// The last row measures the JOSIE allowed-set pushdown in isolation:
// restricted top-k overlap over every indexed column, answered by
// masking posting lists during traversal (work = postings + tokens
// read) versus enumerating each candidate's ID set (the EnumCost the
// engine would otherwise pay), with result parity against the
// unpushed path.
func E25Planner() Report {
	rep := Report{
		ID:    "E25",
		Title: "cost-based planner: stage reordering + JOSIE allowed-set pushdown",
		Header: []string{
			"scenario", "relation", "fixed_cost", "cost_cost", "ratio", "identical",
		},
	}

	gen := datagen.Generate(datagen.Config{
		Seed:              2500,
		NumDomains:        6,
		DomainSize:        120,
		NumTemplates:      12,
		TablesPerTemplate: 10,
		NoiseCols:         2,
	})
	cat := lake.NewCatalog()
	for _, t := range gen.Tables {
		if err := cat.Add(t); err != nil {
			panic(err)
		}
	}
	sys, err := core.Build(cat, core.Options{KB: gen.BuildKB(0.8), Seed: 25})
	if err != nil {
		panic(err)
	}

	// The adversarial predicate pairs. Every generated table carries
	// the note_0/note_1/metric_0 noise columns, so those names plus a
	// string type form a meta predicate that is expensive per table
	// (unit ≈ 5) yet admits the whole lake; the one-term keyword
	// admits a single template. The fixed order pays the full meta
	// sweep before the keyword can narrow anything.
	//
	// totalMeta is provably total from the exact marginal counts in
	// the stats block — the cost order skips it outright. broadMeta
	// swaps one noise column for the seed's widest-coverage domain
	// column: near-total but not provable, so the cost order runs it
	// last, restricted to the keyword's survivors.
	seed := gen.Tables[0]
	totalMeta := discover.Predicates{
		ColumnNames: []string{"note_0", "note_1", "metric_0"},
		ColumnTypes: []string{"string"},
		Keywords:    "template0",
	}
	broadMeta := discover.Predicates{
		ColumnNames: []string{"note_0", "metric_0", widestDomainColumn(gen, seed)},
		ColumnTypes: []string{"string"},
		Keywords:    "template0",
	}

	scenarios := []struct {
		name string
		q    discover.Query
	}{
		{"union-tus/total-meta+kw", discover.Query{
			Relation: "union", Method: "tus", K: 5,
			Seed: seed, Predicates: totalMeta,
		}},
		{"join-overlap/broad-meta+kw", discover.Query{
			Relation: "join", K: 5,
			Values: seed.Columns[0].Values, Predicates: broadMeta,
		}},
	}
	for _, sc := range scenarios {
		fixed := mustRunOrdered(sys, sc.q, discover.OrderFixed)
		cost := mustRunOrdered(sys, sc.q, discover.OrderCost)
		identical := reflect.DeepEqual(fixed.Matches, cost.Matches) &&
			reflect.DeepEqual(fixed.Tables, cost.Tables)
		fc, cc := planCost(fixed.Explain), planCost(cost.Explain)
		rep.Rows = append(rep.Rows, []string{
			sc.name, sc.q.Relation, d64(fc), d64(cc),
			fmt.Sprintf("%.1fx", float64(fc)/float64(max(cc, 1))), yesNo(identical),
		})
	}

	// Pushdown in isolation: top-k overlap restricted to every indexed
	// column. Enumerating reads each candidate's whole ID set; the
	// pushed traversal reads only the query tokens' posting lists.
	e := sys.Join
	q := e.EncodeQuery(seed.Columns[0].Values)
	var cands []string
	for _, t := range gen.Tables {
		cands = append(cands, e.ColumnKeysOf(t.ID)...)
	}
	ctx := context.Background()
	pushed, ast, err := e.TopKOverlapAmongStatsCtx(ctx, q, cands, 10, true)
	if err != nil {
		panic(err)
	}
	plain, err := e.TopKOverlapAmongCtx(ctx, q, cands, 10)
	if err != nil {
		panic(err)
	}
	identical := ast.Pushdown && reflect.DeepEqual(pushed, plain)
	rep.Rows = append(rep.Rows, []string{
		"pushdown/all-columns", "join", d64(ast.EnumCost), d64(ast.Work),
		fmt.Sprintf("%.1fx", float64(ast.EnumCost)/float64(max(ast.Work, 1))),
		yesNo(identical),
	})

	rep.Notes = "cost ordering must cut prefilter+candidates work >=3x on the adversarial pair; the pushdown must read fewer postings than candidate enumeration; every row bit-identical across paths"
	return rep
}

func mustRunOrdered(sys *core.System, q discover.Query, ord discover.Order) *discover.Result {
	p, err := discover.NewPlanOrdered(sys, q, ord)
	if err != nil {
		panic(err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// widestDomainColumn returns the seed's domain column name that the
// largest number of lake tables share — broad enough that the planner
// estimates near-total selectivity, but (unlike the noise columns)
// not provably total.
func widestDomainColumn(gen *datagen.Lake, seed *table.Table) string {
	best, bestCov := seed.Columns[0].Name, 0
	for _, name := range domainColumnNames(gen, seed) {
		cov := 0
		for _, t := range gen.Tables {
			if t.Column(name) != nil {
				cov++
			}
		}
		if cov > bestCov {
			best, bestCov = name, cov
		}
	}
	return best
}

// planCost sums the deterministic work units of the prefilter and
// candidates stages — the part of the plan the ordering can change.
// Verify cost is excluded: both orders verify the same survivor set.
func planCost(ex []discover.StageExplain) int64 {
	var total int64
	for _, st := range ex {
		switch st.Stage {
		case discover.StageMeta, discover.StageKeyword, discover.StageValues,
			discover.StageCandidates:
			total += st.Cost
		}
	}
	return total
}

func d64(v int64) string { return fmt.Sprintf("%d", v) }
