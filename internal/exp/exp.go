// Package exp implements the reproduction experiments indexed in
// DESIGN.md: for each headline result of a system surveyed by the
// tutorial, a function regenerates the corresponding table/figure
// series on a synthetic lake with exact ground truth. The functions
// are shared by `lakectl exp <id>` (human-readable tables) and the
// root benchmark harness (testing.B metrics).
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is one experiment's regenerated table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes states the paper-shape expectation the rows should show.
	Notes string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "shape: %s\n", r.Notes)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func() Report

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{
	"e1":  E1LSHEnsemble,
	"e2":  E2Josie,
	"e3":  E3TUS,
	"e4":  E4Santos,
	"e5":  E5Starmie,
	"e6":  E6HNSW,
	"e7":  E7Annotate,
	"e8":  E8Domain,
	"e9":  E9QCR,
	"e10": E10Mate,
	"e11": E11Pexeso,
	"e12": E12Homograph,
	"e13": E13Navigation,
	"e14": E14Arda,
	"e15": E15Keyword,
	"e16": E16Scalability,
	"e17": E17KBvsLM,
	"e18": E18Stitch,
	"e19": E19Learned,
	"e20": E20QueryTimeAnnotation,
	"e21": E21Valentine,
	"e22": E22Aurum,
	"e23": E23D3L,
	"e24": E24Discover,
	"e25": E25Planner,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// d formats an integer.
func d(v int) string { return fmt.Sprintf("%d", v) }

// ms formats a duration in milliseconds.
func ms(dur time.Duration) string {
	return fmt.Sprintf("%.2f", float64(dur.Microseconds())/1000)
}

// timeIt measures one call.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
