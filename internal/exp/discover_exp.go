package exp

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/discover"
	"tablehound/internal/join"
	"tablehound/internal/lake"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/union"
)

// E24Discover exercises the conditional-discovery planner on a
// LakeBench-style scenario suite: structured queries mixing join and
// union seeds with schema, keyword, and cell-value predicates. For
// every scenario the staged plan (prefilter → candidates → verify) is
// checked against the bare engine run to exhaustion and post-filtered
// — the result lists must be identical — while the explain blocks
// quantify how many exact verifications the prefilters saved.
func E24Discover() Report {
	rep := Report{
		ID:    "E24",
		Title: "conditional discovery: staged planner vs bare engine + post-filter",
		Header: []string{
			"scenario", "relation", "bare_verify", "staged_verify",
			"reduction", "identical", "p@k", "r@k", "prefilter_ms", "verify_ms",
		},
	}

	// Few domains: templates share vocabulary, so the engines' own
	// candidate generation stays broad and the predicates do real
	// pruning work. (SANTOS is absent from the suite: its KB-driven
	// candidates already collapse to the template group on this
	// generator, leaving no verification for prefilters to save.)
	gen := datagen.Generate(datagen.Config{
		Seed:              2400,
		NumDomains:        6,
		DomainSize:        120,
		NumTemplates:      10,
		TablesPerTemplate: 5,
	})
	cat := lake.NewCatalog()
	for _, t := range gen.Tables {
		if err := cat.Add(t); err != nil {
			panic(err)
		}
	}
	sys, err := core.Build(cat, core.Options{KB: gen.BuildKB(0.8), Seed: 24})
	if err != nil {
		panic(err)
	}

	seed := func(tpl int) *table.Table { return gen.Tables[tpl*gen.Config.TablesPerTemplate] }
	scenarios := []struct {
		name string
		q    discover.Query
	}{
		{"join-overlap/schema", discover.Query{
			Relation: "join", K: 5,
			Values:     seed(0).Columns[0].Values,
			Predicates: discover.Predicates{ColumnNames: domainColumnNames(gen, seed(0))},
		}},
		{"join-containment/schema", discover.Query{
			Relation: "join", Mode: "containment", Threshold: 0.1, K: 5,
			Values:     seed(7).Columns[0].Values,
			Predicates: discover.Predicates{ColumnNames: domainColumnNames(gen, seed(7))},
		}},
		{"union-tus/schema", discover.Query{
			Relation: "union", Method: "tus", K: 5,
			Seed:       seed(3),
			Predicates: discover.Predicates{ColumnNames: domainColumnNames(gen, seed(3))},
		}},
		{"union-tus/keywords", discover.Query{
			Relation: "union", Method: "tus", K: 5,
			Seed:       seed(1),
			Predicates: discover.Predicates{Keywords: domainKeywords(gen, seed(1))},
		}},
		{"union-starmie/schema+rows", discover.Query{
			Relation: "union", Method: "starmie", K: 5,
			Seed:       seed(2),
			Predicates: discover.Predicates{ColumnNames: domainColumnNames(gen, seed(2)), MaxRows: 70},
		}},
		{"union-d3l/values", discover.Query{
			Relation: "union", Method: "d3l", K: 5,
			Seed:       seed(8),
			Predicates: discover.Predicates{Values: seedProbeValues(gen, seed(8))},
		}},
	}

	minReduction := 0.0
	allIdentical := true
	for _, sc := range scenarios {
		staged := mustRun(sys, sc.q)

		// The bare baseline: same seed, no predicates, k large enough to
		// rank every candidate the engine would verify.
		bare := sc.q
		bare.Predicates = discover.Predicates{}
		if bare.Relation == "join" {
			bare.K = sys.Join.NumColumns()
		} else {
			bare.K = sys.Catalog.Len()
		}
		full := mustRun(sys, bare)

		allowed := allowedSet(sys, sc.q.Predicates)
		var identical bool
		var retrieved []string
		if sc.q.Relation == "join" {
			baseline := filterMatches(full.Matches, allowed, sc.q.K)
			identical = reflect.DeepEqual(staged.Matches, baseline)
		} else {
			baseline := filterTables(full.Tables, allowed, sc.q.K)
			identical = reflect.DeepEqual(staged.Tables, baseline)
			for _, r := range staged.Tables {
				retrieved = append(retrieved, r.TableID)
			}
		}
		allIdentical = allIdentical && identical

		bareVerify := stageIn(full.Explain, discover.StageVerify)
		stagedVerify := stageIn(staged.Explain, discover.StageVerify)
		reduction := float64(bareVerify) / float64(max(stagedVerify, 1))
		if minReduction == 0 || reduction < minReduction {
			minReduction = reduction
		}

		pAtK, rAtK := "-", "-"
		if sc.q.Relation != "join" {
			truth := gen.UnionableWith(sc.q.Seed.ID)
			pAtK = f(metrics.PrecisionAtK(retrieved, truth, sc.q.K))
			rAtK = f(metrics.RecallAtK(retrieved, truth, sc.q.K))
		}
		rep.Rows = append(rep.Rows, []string{
			sc.name, sc.q.Relation, d(bareVerify), d(stagedVerify),
			fmt.Sprintf("%.1fx", reduction), yesNo(identical), pAtK, rAtK,
			ms(prefilterTime(staged.Explain)), ms(stageTime(staged.Explain, discover.StageVerify)),
		})
	}
	rep.Notes = fmt.Sprintf(
		"every scenario's staged result list must be bit-identical to the bare ranking post-filtered (identical=%s); prefilters cut exact verification by >=5x (min observed %.1fx)",
		yesNo(allIdentical), minReduction)
	return rep
}

func mustRun(sys *core.System, q discover.Query) *discover.Result {
	p, err := discover.NewPlan(sys, q)
	if err != nil {
		panic(err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// domainColumnNames lists the domain-backed column names of a seed
// table (skipping noise and numeric columns) — the full-schema
// predicate that pins candidates to the seed's template.
func domainColumnNames(gen *datagen.Lake, t *table.Table) []string {
	var out []string
	for _, c := range t.Columns {
		if _, ok := gen.ColumnDomain[table.ColumnKey(t.ID, c.Name)]; ok {
			out = append(out, c.Name)
		}
	}
	return out
}

// domainKeywords joins the names of all the seed's domains — an AND
// query against the metadata keyword index.
func domainKeywords(gen *datagen.Lake, t *table.Table) string {
	kw := ""
	for _, c := range t.Columns {
		if d, ok := gen.ColumnDomain[table.ColumnKey(t.ID, c.Name)]; ok {
			if kw != "" {
				kw += " "
			}
			kw += gen.DomainNames[d]
		}
	}
	return kw
}

// seedProbeValues picks one cell value from each of the seed's first
// two domain columns, the "must contain these values" predicate.
func seedProbeValues(gen *datagen.Lake, t *table.Table) []string {
	var out []string
	for _, c := range t.Columns {
		if _, ok := gen.ColumnDomain[table.ColumnKey(t.ID, c.Name)]; ok && len(c.Values) > 0 {
			out = append(out, c.Values[0])
			if len(out) == 2 {
				break
			}
		}
	}
	return out
}

// allowedSet recomputes the predicate-admitted table set from first
// principles (catalog stats, normalized schema scan, keyword index,
// join-index membership) so the baseline filter is independent of the
// planner's prefilter implementation.
func allowedSet(sys *core.System, pr discover.Predicates) map[string]bool {
	var kw map[string]bool
	if pr.HasKeywords() {
		kw = make(map[string]bool)
		for _, r := range sys.Keyword.BooleanSearch(pr.Keywords, sys.Catalog.Len(), true) {
			kw[r.TableID] = true
		}
	}
	out := make(map[string]bool)
	for _, t := range sys.Catalog.Tables() {
		if kw != nil && !kw[t.ID] {
			continue
		}
		if admitsTable(sys, t, pr) {
			out[t.ID] = true
		}
	}
	return out
}

func admitsTable(sys *core.System, t *table.Table, pr discover.Predicates) bool {
	if pr.MinRows > 0 && t.NumRows() < pr.MinRows {
		return false
	}
	if pr.MaxRows > 0 && t.NumRows() > pr.MaxRows {
		return false
	}
	if pr.MinCols > 0 && t.NumCols() < pr.MinCols {
		return false
	}
	if pr.MaxCols > 0 && t.NumCols() > pr.MaxCols {
		return false
	}
	for _, want := range pr.ColumnNames {
		w := tokenize.Normalize(want)
		found := false
		for _, c := range t.Columns {
			if tokenize.Normalize(c.Name) == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	// Cell values must appear in some join-indexed column — the
	// documented predicate semantics.
	for _, v := range tokenize.NormalizeSet(pr.Values) {
		id, ok := sys.Dict.ID(v)
		if !ok {
			return false
		}
		found := false
		for _, key := range sys.Join.ColumnKeysOf(t.ID) {
			if sys.Join.IDSet(key).Contains(id) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func filterMatches(ms []join.Match, allowed map[string]bool, k int) []join.Match {
	var out []join.Match
	for _, m := range ms {
		if id, _ := table.SplitColumnKey(m.ColumnKey); allowed[id] {
			out = append(out, m)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func filterTables(rs []union.Result, allowed map[string]bool, k int) []union.Result {
	var out []union.Result
	for _, r := range rs {
		if allowed[r.TableID] {
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// stageIn returns the candidate count entering the named stage.
func stageIn(ex []discover.StageExplain, stage string) int {
	for _, st := range ex {
		if st.Stage == stage {
			return st.In
		}
	}
	return 0
}

func stageTime(ex []discover.StageExplain, stage string) time.Duration {
	for _, st := range ex {
		if st.Stage == stage {
			return time.Duration(st.ElapsedUS) * time.Microsecond
		}
	}
	return 0
}

// prefilterTime sums the elapsed time of every prefilter stage.
func prefilterTime(ex []discover.StageExplain) time.Duration {
	var total time.Duration
	for _, st := range ex {
		switch st.Stage {
		case discover.StageMeta, discover.StageKeyword, discover.StageValues:
			total += time.Duration(st.ElapsedUS) * time.Microsecond
		}
	}
	return total
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
