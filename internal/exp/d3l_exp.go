package exp

import (
	"sort"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/graph"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
	"tablehound/internal/union"
)

// E23D3L reproduces the D3L evidence ablation (Bogatu et al., ICDE
// 2020, Table III shape): related-table search with each evidence type
// alone versus all five combined, across two regimes — tables that
// share values, and tables from the same domains with disjoint values.
// No single evidence wins both regimes; the combination does.
func E23D3L() Report {
	rep := Report{
		ID:     "E23",
		Title:  "D3L: five-evidence related-table search, ablation by evidence",
		Header: []string{"regime", "evidence", "MAP"},
		Notes:  "value evidence wins only when instances overlap; words/embedding carry the disjoint regime; the combined score is competitive in both (the generator's clean headers also favor name evidence here — E21 covers its failure mode)",
	}
	for _, regime := range []struct {
		name     string
		disjoint bool
	}{{"overlapping", false}, {"disjoint", true}} {
		lake := datagen.Generate(datagen.Config{
			Seed:              2300,
			NumDomains:        14,
			DomainSize:        150,
			NumTemplates:      6,
			TablesPerTemplate: 4,
			DisjointInstances: regime.disjoint,
		})
		model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 48, Seed: 23})
		d3l, err := union.NewD3L(model)
		if err != nil {
			panic(err)
		}
		for _, t := range lake.Tables {
			d3l.AddTable(t)
		}
		// Evidence selectors over the Evidence struct.
		kinds := []struct {
			name string
			get  func(e union.Evidence) float64
		}{
			{"name", func(e union.Evidence) float64 { return e.Name }},
			{"value", func(e union.Evidence) float64 { return e.Value }},
			{"format", func(e union.Evidence) float64 { return e.Format }},
			{"words", func(e union.Evidence) float64 { return e.Words }},
			{"embed", func(e union.Evidence) float64 { return e.Embed }},
			{"combined", func(e union.Evidence) float64 { return e.Combined() }},
		}
		for _, kind := range kinds {
			var retrieved [][]string
			var relevant []map[string]bool
			for tpl := 0; tpl < 6; tpl++ {
				q := lake.Tables[tpl*4]
				ids := rankTablesByEvidence(d3l, lake, q, kind.get, 5)
				retrieved = append(retrieved, ids)
				relevant = append(relevant, lake.UnionableWith(q.ID))
			}
			rep.Rows = append(rep.Rows, []string{
				regime.name, kind.name, f(metrics.MAP(retrieved, relevant)),
			})
		}
	}
	return rep
}

// rankTablesByEvidence scores every lake table against the query
// using one evidence selector, aggregating column pairs by bipartite
// matching (the same aggregation D3L.Search uses for the combined
// score).
func rankTablesByEvidence(d *union.D3L, lake *datagen.Lake, query *table.Table, get func(union.Evidence) float64, k int) []string {
	type scored struct {
		id    string
		score float64
	}
	qcols := usableColumns(query)
	var res []scored
	for _, t := range lake.Tables {
		if t.ID == query.ID {
			continue
		}
		ccols := usableColumns(t)
		if len(ccols) == 0 || len(qcols) == 0 {
			continue
		}
		w := make([][]float64, len(qcols))
		for i, qc := range qcols {
			w[i] = make([]float64, len(ccols))
			for j, cc := range ccols {
				w[i][j] = get(d.ColumnEvidence(qc, cc))
			}
		}
		_, total := graph.MaxWeightBipartiteMatching(w)
		res = append(res, scored{t.ID, total / float64(len(qcols))})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].score != res[j].score {
			return res[i].score > res[j].score
		}
		return res[i].id < res[j].id
	})
	ids := make([]string, 0, k)
	for i := 0; i < len(res) && i < k; i++ {
		ids = append(ids, res[i].id)
	}
	return ids
}

func usableColumns(t *table.Table) []*table.Column {
	var out []*table.Column
	for _, c := range t.Columns {
		if c.Type == table.TypeString || c.Type == table.TypeUnknown {
			if c.Cardinality() >= 2 {
				out = append(out, c)
			}
		}
	}
	return out
}
