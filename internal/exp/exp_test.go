package exp

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// cell parses Rows[r][c] as a float.
func cell(t *testing.T, rep Report, r, c int) float64 {
	t.Helper()
	if r >= len(rep.Rows) || c >= len(rep.Rows[r]) {
		t.Fatalf("%s: no cell (%d,%d)", rep.ID, r, c)
	}
	v, err := strconv.ParseFloat(rep.Rows[r][c], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", rep.ID, r, c, rep.Rows[r][c])
	}
	return v
}

// row finds the first row whose first cells match the given prefix.
func row(t *testing.T, rep Report, prefix ...string) int {
	t.Helper()
	for i, r := range rep.Rows {
		ok := true
		for j, p := range prefix {
			if j >= len(r) || r[j] != p {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	t.Fatalf("%s: no row with prefix %v", rep.ID, prefix)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 25 {
		t.Fatalf("registry has %d experiments, want 25", len(Registry))
	}
	ids := IDs()
	if ids[0] != "e1" || ids[len(ids)-1] != "e25" {
		t.Errorf("IDs order: %v", ids)
	}
}

func TestE21Shape(t *testing.T) {
	rep := E21Valentine()
	nameFull := cell(t, rep, row(t, rep, "1.000", "name"), 2)
	instFull := cell(t, rep, row(t, rep, "1.000", "instance"), 2)
	combFull := cell(t, rep, row(t, rep, "1.000", "combined"), 2)
	if nameFull > 0.2 {
		t.Errorf("name matcher should collapse under full rename: %v", nameFull)
	}
	if instFull < 0.9 || combFull < 0.9 {
		t.Errorf("instance %v / combined %v should survive renames", instFull, combFull)
	}
	if c0 := cell(t, rep, row(t, rep, "0.000", "combined"), 2); c0 < 0.9 {
		t.Errorf("combined at zero rename = %v", c0)
	}
}

func TestE22Shape(t *testing.T) {
	rep := E22Aurum()
	within := row(t, rep, "within-chain endpoints")
	if cell(t, rep, within, 1) != cell(t, rep, within, 2) {
		t.Errorf("not all chains recovered: %v of %v",
			cell(t, rep, within, 1), cell(t, rep, within, 2))
	}
	cross := row(t, rep, "cross-chain pairs")
	if cell(t, rep, cross, 1) != 0 {
		t.Errorf("hallucinated %v cross-chain paths", cell(t, rep, cross, 1))
	}
}

func TestE19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E19Learned()
	// Few segments on hash-distributed keys; learned lookups not
	// slower than binary search at the largest size and eps=64.
	r := row(t, rep, "1000000", "64")
	if cell(t, rep, r, 2) > 1000 {
		t.Errorf("segments = %v, want few", cell(t, rep, r, 2))
	}
	if cell(t, rep, r, 3) > cell(t, rep, r, 4)*1.1 {
		t.Errorf("learned %vns should not lose to binary %vns", cell(t, rep, r, 3), cell(t, rep, r, 4))
	}
}

func TestE20Shape(t *testing.T) {
	rep := E20QueryTimeAnnotation()
	// Online cost after one query is far below batch; it approaches
	// batch as coverage grows.
	first := 0
	if cell(t, rep, first, 1) >= cell(t, rep, first, 2)/2 {
		t.Errorf("one-query online cost %v should be far below batch %v",
			cell(t, rep, first, 1), cell(t, rep, first, 2))
	}
	last := len(rep.Rows) - 1
	if cell(t, rep, last, 3) <= cell(t, rep, first, 3) {
		t.Error("annotated-table count should grow with queries")
	}
}

func TestReportString(t *testing.T) {
	rep := Report{ID: "EX", Title: "t", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n"}
	s := rep.String()
	for _, want := range []string{"EX", "bb", "shape:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestE1Shape(t *testing.T) {
	rep := E1LSHEnsemble()
	if len(rep.Rows) < 4 {
		t.Fatal("too few rows")
	}
	first, last := 0, len(rep.Rows)-1
	if cell(t, rep, first, 1) < 0.9 {
		t.Errorf("1-partition recall = %v", cell(t, rep, first, 1))
	}
	if cell(t, rep, last, 2) < cell(t, rep, first, 2)*5 {
		t.Errorf("precision should improve sharply with partitions: %v -> %v",
			cell(t, rep, first, 2), cell(t, rep, last, 2))
	}
	if cell(t, rep, last, 1) < 0.6 {
		t.Errorf("recall at max partitions too low: %v", cell(t, rep, last, 1))
	}
}

func TestE3Shape(t *testing.T) {
	rep := E3TUS()
	ens := cell(t, rep, row(t, rep, "ensemble"), 1)
	set := cell(t, rep, row(t, rep, "set"), 1)
	sem := cell(t, rep, row(t, rep, "sem"), 1)
	nl := cell(t, rep, row(t, rep, "nl"), 1)
	for _, m := range []float64{set, sem, nl} {
		if ens < m-0.02 {
			t.Errorf("ensemble MAP %v below component %v", ens, m)
		}
	}
	if set > ens-0.1 {
		t.Errorf("set measure should clearly trail ensemble on disjoint instances: set=%v ens=%v", set, ens)
	}
}

func TestE4Shape(t *testing.T) {
	rep := E4Santos()
	santos := cell(t, rep, row(t, rep, "santos-synth"), 1)
	colOnly := cell(t, rep, row(t, rep, "column-only(set)"), 1)
	if santos < colOnly+0.3 {
		t.Errorf("SANTOS P@5 %v should far exceed column-only %v", santos, colOnly)
	}
	if santos < 0.9 {
		t.Errorf("SANTOS P@5 = %v", santos)
	}
}

func TestE7Shape(t *testing.T) {
	rep := E7Annotate()
	learned := cell(t, rep, row(t, rep, "learned"), 1)
	dict := cell(t, rep, row(t, rep, "dictionary"), 1)
	rules := cell(t, rep, row(t, rep, "rules"), 1)
	if learned < 0.8 {
		t.Errorf("learned accuracy = %v", learned)
	}
	if learned <= dict || learned <= rules {
		t.Errorf("learned %v must beat dictionary %v and rules %v", learned, dict, rules)
	}
}

func TestE8Shape(t *testing.T) {
	rep := E8Domain()
	d4 := cell(t, rep, row(t, rep, "d4-style"), 1)
	naive := cell(t, rep, row(t, rep, "per-column"), 1)
	if d4 < 0.95 || d4 <= naive {
		t.Errorf("d4 NMI %v should be ~1 and beat naive %v", d4, naive)
	}
}

func TestE9Shape(t *testing.T) {
	rep := E9QCR()
	for i := range rep.Rows {
		if p := cell(t, rep, i, 2); p < 0.8 {
			t.Errorf("row %d precision = %v", i, p)
		}
	}
}

func TestE10Shape(t *testing.T) {
	rep := E10Mate()
	offRow := row(t, rep, "2", "off")
	onRow := row(t, rep, "2", "xash")
	if cell(t, rep, onRow, 3) >= cell(t, rep, offRow, 3) {
		t.Error("xash should verify fewer rows")
	}
	if cell(t, rep, onRow, 4) == 0 {
		t.Error("xash pruned nothing")
	}
}

func TestE11Shape(t *testing.T) {
	rep := E11Pexeso()
	last := len(rep.Rows) - 1
	exact := cell(t, rep, last, 1)
	fuzzy := cell(t, rep, last, 2)
	if fuzzy < exact+0.3 {
		t.Errorf("at max corruption fuzzy %v should far exceed exact %v", fuzzy, exact)
	}
	if fuzzy < 0.9 {
		t.Errorf("fuzzy matched fraction = %v", fuzzy)
	}
}

func TestE12Shape(t *testing.T) {
	rep := E12Homograph()
	if p := cell(t, rep, row(t, rep, "6"), 1); p < 0.5 {
		t.Errorf("P@6 = %v", p)
	}
}

func TestE13Shape(t *testing.T) {
	rep := E13Navigation()
	for i := range rep.Rows {
		nav := cell(t, rep, i, 2)
		flat := cell(t, rep, i, 3)
		if nav >= flat {
			t.Errorf("row %d: nav cost %v >= flat %v", i, nav, flat)
		}
	}
	// Navigation advantage grows with lake size.
	firstRatio := cell(t, rep, 0, 3) / cell(t, rep, 0, 2)
	lastRatio := cell(t, rep, len(rep.Rows)-1, 3) / cell(t, rep, len(rep.Rows)-1, 2)
	if lastRatio <= firstRatio {
		t.Errorf("flat/nav ratio should grow with size: %v -> %v", firstRatio, lastRatio)
	}
}

func TestE14Shape(t *testing.T) {
	rep := E14Arda()
	base := cell(t, rep, row(t, rep, "base-only"), 1)
	arda := cell(t, rep, row(t, rep, "arda-selected"), 1)
	if arda > base*0.5 {
		t.Errorf("ARDA RMSE %v should be well below base %v", arda, base)
	}
}

func TestE15Shape(t *testing.T) {
	rep := E15Keyword()
	bm := cell(t, rep, row(t, rep, "bm25"), 1)
	bo := cell(t, rep, row(t, rep, "boolean"), 1)
	if bm <= bo {
		t.Errorf("BM25 MAP %v should beat boolean %v", bm, bo)
	}
}

func TestE17Shape(t *testing.T) {
	rep := E17KBvsLM()
	// At low coverage: KB recall < embedding recall; hybrid F1 >= both.
	kbLow := row(t, rep, "kb", "0.300")
	emLow := row(t, rep, "embeddings", "0.300")
	hyLow := row(t, rep, "hybrid", "0.300")
	if cell(t, rep, kbLow, 3) >= cell(t, rep, emLow, 3) {
		t.Error("KB recall should trail embeddings at low coverage")
	}
	if cell(t, rep, hyLow, 4) < cell(t, rep, kbLow, 4) || cell(t, rep, hyLow, 4) < cell(t, rep, emLow, 4) {
		t.Error("hybrid F1 should dominate both components")
	}
	if cell(t, rep, kbLow, 2) < 0.95 {
		t.Errorf("KB precision = %v, want near 1", cell(t, rep, kbLow, 2))
	}
}

func TestE18Shape(t *testing.T) {
	rep := E18Stitch()
	raw := cell(t, rep, row(t, rep, "raw-shards"), 2)
	st := cell(t, rep, row(t, rep, "stitched"), 2)
	if st <= raw+10 {
		t.Errorf("stitched facts %v should far exceed raw %v", st, raw)
	}
}

func TestE23Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E23D3L()
	valOver := cell(t, rep, row(t, rep, "overlapping", "value"), 2)
	valDis := cell(t, rep, row(t, rep, "disjoint", "value"), 2)
	combOver := cell(t, rep, row(t, rep, "overlapping", "combined"), 2)
	combDis := cell(t, rep, row(t, rep, "disjoint", "combined"), 2)
	if valDis >= valOver-0.2 {
		t.Errorf("value evidence should collapse on disjoint instances: %v -> %v", valOver, valDis)
	}
	if combOver < 0.9 || combDis < 0.9 {
		t.Errorf("combined MAP should stay high in both regimes: %v / %v", combOver, combDis)
	}
}

func TestE24Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E24Discover()
	if len(rep.Rows) < 6 {
		t.Fatalf("too few scenarios: %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		// Staged result lists must match the bare engine post-filtered.
		if r[5] != "yes" {
			t.Errorf("%s: staged result differs from bare post-filtered baseline", r[0])
		}
		// Prefilters must cut exact verification work at least 5x.
		var red float64
		if _, err := fmt.Sscanf(r[4], "%fx", &red); err != nil {
			t.Fatalf("%s: bad reduction cell %q", r[0], r[4])
		}
		if red < 5 {
			t.Errorf("%s: verify-candidate reduction %.1fx < 5x", r[0], red)
		}
	}
}

func TestE25Shape(t *testing.T) {
	rep := E25Planner()
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r[5] != "yes" {
			t.Errorf("%s: results diverged across planner paths", r[0])
		}
		var ratio float64
		if _, err := fmt.Sscanf(r[4], "%fx", &ratio); err != nil {
			t.Fatalf("%s: bad ratio cell %q", r[0], r[4])
		}
		switch r[0] {
		case "pushdown/all-columns":
			// Pushdown must strictly beat enumerating candidate ID sets.
			if ratio <= 1 {
				t.Errorf("%s: pushdown work ratio %.1fx, want > 1x", r[0], ratio)
			}
		default:
			// Cost ordering must cut prefilter+candidates work >= 3x.
			if ratio < 3 {
				t.Errorf("%s: cost-order work ratio %.1fx < 3x", r[0], ratio)
			}
		}
	}
}

// Heavy experiments run fully only outside -short.
func TestE2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E2Josie()
	// Adaptive cost <= 1.2x the better extreme at every k.
	for _, k := range []string{"1", "5", "10", "25", "50"} {
		merge := cell(t, rep, row(t, rep, k, "mergelist"), 2)
		probe := cell(t, rep, row(t, rep, k, "probeset"), 2)
		adapt := cell(t, rep, row(t, rep, k, "adaptive"), 2)
		best := merge
		if probe < best {
			best = probe
		}
		if adapt > best*1.25 {
			t.Errorf("k=%s: adaptive cost %v exceeds best strategy %v", k, adapt, best)
		}
	}
}

func TestE5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E5Starmie()
	ctx := cell(t, rep, row(t, rep, "contextual", "scan"), 2)
	free := cell(t, rep, row(t, rep, "context-free", "scan"), 2)
	if ctx < free-0.02 {
		t.Errorf("contextual MAP %v below context-free %v", ctx, free)
	}
	// At the largest synthetic size, HNSW beats scan latency.
	h := cell(t, rep, row(t, rep, "cols=64000", "hnsw"), 3)
	s := cell(t, rep, row(t, rep, "cols=64000", "scan"), 3)
	if h >= s {
		t.Errorf("hnsw %vms should beat scan %vms at 64k columns", h, s)
	}
}

func TestE6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E6HNSW()
	first := cell(t, rep, 0, 1)
	last := cell(t, rep, len(rep.Rows)-1, 1)
	if last < first {
		t.Errorf("recall should grow with efSearch: %v -> %v", first, last)
	}
	if last < 0.9 {
		t.Errorf("recall at max ef = %v", last)
	}
	// Query far cheaper than scan at max ef.
	if cell(t, rep, len(rep.Rows)-1, 2) >= cell(t, rep, len(rep.Rows)-1, 3) {
		t.Error("hnsw query not cheaper than scan")
	}
}

func TestE16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment")
	}
	rep := E16Scalability()
	// At the largest size every index queries faster than the scan.
	for _, ix := range []string{"josie-inverted", "lsh-ensemble", "hnsw"} {
		r := row(t, rep, "16000", ix)
		if cell(t, rep, r, 3) >= cell(t, rep, r, 4) {
			t.Errorf("%s query not cheaper than scan at 16k", ix)
		}
	}
}
